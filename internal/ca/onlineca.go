// Package ca implements the MyProxy Online Certificate Authority at the
// heart of GCMU (§IV.A of the paper): a CA tied to the site's local
// identity domain through PAM that issues short-lived X.509 user
// certificates with the local username embedded in the distinguished
// name. Because the username is in the DN, the GridFTP AUTHZ callout can
// map certificate to account with no gridmap file (§IV.C).
package ca

import (
	"crypto"
	"crypto/x509"
	"errors"
	"fmt"
	"sync"
	"time"

	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/pam"
)

// DefaultLifetime is the default short-lived certificate lifetime; Globus
// Connect issues credentials on this order so compromise windows stay
// small and revocation is unnecessary.
const DefaultLifetime = 12 * time.Hour

// OnlineCA couples a signing CA with a PAM stack.
type OnlineCA struct {
	// CA is the signing authority (typically created at GCMU install).
	CA *gsi.CA
	// Auth is the PAM stack users authenticate against (LDAP/NIS/RADIUS/
	// OTP — Fig 3 step 2).
	Auth *pam.Stack
	// SubjectPrefix is prepended to issued DNs; the final CN is the local
	// username. E.g. "/O=Grid/OU=siteA" + alice -> "/O=Grid/OU=siteA/CN=alice".
	SubjectPrefix gsi.DN
	// Lifetime of issued certificates (DefaultLifetime if zero).
	Lifetime time.Duration
	// MaxLifetime caps client-requested lifetimes.
	MaxLifetime time.Duration

	mu     sync.Mutex
	issued int64
}

// ErrBadLifetime is returned for non-positive or excessive lifetimes.
var ErrBadLifetime = errors.New("ca: requested lifetime not permitted")

// New creates an online CA.
func New(signing *gsi.CA, auth *pam.Stack, subjectPrefix gsi.DN) *OnlineCA {
	return &OnlineCA{CA: signing, Auth: auth, SubjectPrefix: subjectPrefix}
}

// SubjectFor returns the DN the CA would issue for a username.
func (o *OnlineCA) SubjectFor(username string) gsi.DN {
	return o.SubjectPrefix.AppendCN(username)
}

// Issued returns how many certificates have been issued.
func (o *OnlineCA) Issued() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.issued
}

// Logon authenticates the user through PAM and, on success, signs a
// short-lived certificate over the caller-supplied public key. The private
// key never reaches the CA — the subscriber generates it locally (§IV.A).
func (o *OnlineCA) Logon(username string, conv pam.Conversation, pub crypto.PublicKey, lifetime time.Duration) (*gsi.Credential, error) {
	if o.Auth == nil {
		return nil, errors.New("ca: no authentication stack configured")
	}
	acct, err := o.Auth.Authenticate(username, conv)
	if err != nil {
		return nil, fmt.Errorf("ca: authentication failed for %q: %w", username, err)
	}
	return o.IssuePreauthed(acct.Name, pub, lifetime)
}

// IssuePreauthed signs a certificate for an account that has already been
// authenticated by the caller (the MyProxy server authenticates early in
// its protocol, before the client transmits its public key).
func (o *OnlineCA) IssuePreauthed(username string, pub crypto.PublicKey, lifetime time.Duration) (*gsi.Credential, error) {
	if lifetime == 0 {
		lifetime = o.Lifetime
	}
	if lifetime == 0 {
		lifetime = DefaultLifetime
	}
	max := o.MaxLifetime
	if max == 0 {
		max = 7 * 24 * time.Hour
	}
	if lifetime < 0 || lifetime > max {
		return nil, fmt.Errorf("%w: %v", ErrBadLifetime, lifetime)
	}
	cert, err := o.CA.IssueForKey(pub, gsi.IssueOptions{
		Subject:  o.SubjectFor(username),
		Lifetime: lifetime,
	})
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	o.issued++
	o.mu.Unlock()
	return &gsi.Credential{Cert: cert, Chain: []*x509.Certificate{o.CA.Certificate()}}, nil
}
