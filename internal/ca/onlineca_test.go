package ca

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/pam"
)

func onlineCA(t *testing.T) (*OnlineCA, *gsi.TrustStore) {
	t.Helper()
	signing, err := gsi.NewCA("/O=GCMU/OU=siteA/CN=CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	dir := pam.NewLDAPDirectory("dc=siteA")
	dir.AddEntry("alice", "pw")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	stack := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	trust := gsi.NewTrustStore()
	trust.AddCA(signing.Certificate())
	return New(signing, stack, "/O=GCMU/OU=siteA"), trust
}

func freshKey(t *testing.T) *ecdsa.PublicKey {
	t.Helper()
	k, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &k.PublicKey
}

func TestLogonIssuesAndCounts(t *testing.T) {
	o, trust := onlineCA(t)
	cred, err := o.Logon("alice", pam.PasswordConv("pw"), freshKey(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cred.DN() != "/O=GCMU/OU=siteA/CN=alice" {
		t.Fatalf("DN %q", cred.DN())
	}
	if _, err := trust.Verify(cred.FullChain(), time.Now()); err != nil {
		t.Fatal(err)
	}
	// Default lifetime applies when zero is requested.
	if lifetime := time.Until(cred.Cert.NotAfter); lifetime > DefaultLifetime+time.Hour {
		t.Fatalf("lifetime %v exceeds default", lifetime)
	}
	if o.Issued() != 1 {
		t.Fatalf("issued %d", o.Issued())
	}
}

func TestLogonAuthFailures(t *testing.T) {
	o, _ := onlineCA(t)
	if _, err := o.Logon("alice", pam.PasswordConv("bad"), freshKey(t), 0); err == nil {
		t.Fatal("bad password issued")
	}
	if _, err := o.Logon("ghost", pam.PasswordConv("pw"), freshKey(t), 0); err == nil {
		t.Fatal("unknown user issued")
	}
	if o.Issued() != 0 {
		t.Fatalf("issued %d after failures", o.Issued())
	}
	// No stack configured fails closed.
	bare := &OnlineCA{CA: o.CA}
	if _, err := bare.Logon("alice", pam.PasswordConv("pw"), freshKey(t), 0); err == nil {
		t.Fatal("stackless CA issued")
	}
}

func TestLifetimePolicy(t *testing.T) {
	o, _ := onlineCA(t)
	if _, err := o.Logon("alice", pam.PasswordConv("pw"), freshKey(t), 30*24*time.Hour); !errors.Is(err, ErrBadLifetime) {
		t.Fatalf("excessive lifetime: %v", err)
	}
	if _, err := o.Logon("alice", pam.PasswordConv("pw"), freshKey(t), -time.Hour); !errors.Is(err, ErrBadLifetime) {
		t.Fatalf("negative lifetime: %v", err)
	}
	o.MaxLifetime = time.Hour
	if _, err := o.Logon("alice", pam.PasswordConv("pw"), freshKey(t), 2*time.Hour); !errors.Is(err, ErrBadLifetime) {
		t.Fatalf("above MaxLifetime: %v", err)
	}
	cred, err := o.Logon("alice", pam.PasswordConv("pw"), freshKey(t), 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if time.Until(cred.Cert.NotAfter) > time.Hour {
		t.Fatal("requested lifetime not honored")
	}
}

func TestSubjectFor(t *testing.T) {
	o, _ := onlineCA(t)
	if got := o.SubjectFor("bob"); got != "/O=GCMU/OU=siteA/CN=bob" {
		t.Fatalf("SubjectFor %q", got)
	}
}

func TestIssuePreauthedSkipsPAM(t *testing.T) {
	o, trust := onlineCA(t)
	// No password needed: the caller vouches for the authentication.
	cred, err := o.IssuePreauthed("alice", freshKey(t), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if cred.DN().LastCN() != "alice" {
		t.Fatalf("DN %q", cred.DN())
	}
	if _, err := trust.Verify(cred.FullChain(), time.Now()); err != nil {
		t.Fatal(err)
	}
}
