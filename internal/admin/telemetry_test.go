package admin

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/tsdb"
)

var tt0 = time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)

func TestTelemetryEndpointsDisabled(t *testing.T) {
	ts := httptest.NewServer(New(obs.Nop()).Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/timeseries", "/alerts", "/debug/stream"} {
		if code, _, _ := get(t, ts, path); code != http.StatusServiceUnavailable {
			t.Errorf("%s without telemetry: status %d, want 503", path, code)
		}
	}
}

func TestTimeseriesEndpoint(t *testing.T) {
	o := obs.Nop()
	s := New(o)
	rec := tsdb.New(tsdb.Options{})
	s.SetTelemetry(rec, tsdb.NewEngine(rec, o, nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	now := time.Now()
	for i := 0; i < 10; i++ {
		rec.Observe("transfer.task.t1.throughput", now.Add(time.Duration(i-10)*time.Second), float64(i))
	}
	rec.Observe("other.series", now, 1)

	code, body, hdr := get(t, ts, "/debug/timeseries?series=transfer.task.")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var out struct {
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				T time.Time `json:"t"`
				V float64   `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(out.Series) != 1 || out.Series[0].Name != "transfer.task.t1.throughput" {
		t.Fatalf("series = %+v, want only the task series", out.Series)
	}
	if len(out.Series[0].Points) != 10 {
		t.Errorf("points = %d, want 10", len(out.Series[0].Points))
	}

	// Relative since + step: only the last ~5s, rebucketed at 2s.
	code, body, _ = get(t, ts, "/debug/timeseries?series=transfer.task.&since=5s&step=2s")
	if code != http.StatusOK {
		t.Fatalf("since/step status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(out.Series) != 1 || len(out.Series[0].Points) >= 10 || len(out.Series[0].Points) == 0 {
		t.Errorf("since/step gave %+v, want a shorter rebucketed tail", out.Series)
	}

	// Malformed parameters are 400s, not 500s.
	if code, _, _ := get(t, ts, "/debug/timeseries?since=yesterday"); code != http.StatusBadRequest {
		t.Errorf("bad since: status %d, want 400", code)
	}
	if code, _, _ := get(t, ts, "/debug/timeseries?step=-3s"); code != http.StatusBadRequest {
		t.Errorf("bad step: status %d, want 400", code)
	}
}

func TestAlertsEndpoint(t *testing.T) {
	o := obs.Nop()
	s := New(o)
	rec := tsdb.New(tsdb.Options{})
	eng := tsdb.NewEngine(rec, o, []tsdb.Rule{
		{Name: "calm", Series: "x", Kind: tsdb.KindThreshold, Op: tsdb.OpGreater, Value: 100},
		{Name: "hot", Series: "x", Kind: tsdb.KindThreshold, Op: tsdb.OpGreater, Value: 1},
	})
	s.SetTelemetry(rec, eng)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rec.Observe("x", tt0, 50)
	eng.Eval(tt0)

	code, body, _ := get(t, ts, "/alerts")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		Active int `json:"active"`
		Alerts []struct {
			Rule  struct{ Name string }
			State string `json:"state"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Active != 1 || len(out.Alerts) != 2 {
		t.Fatalf("alerts = %+v, want 2 rules with 1 active", out)
	}
	// Firing sorts first.
	if out.Alerts[0].Rule.Name != "hot" || out.Alerts[0].State != "firing" {
		t.Errorf("first alert = %+v, want the firing rule", out.Alerts[0])
	}
}

// sseClient tails /debug/stream, recording event names and raw frames.
type sseClient struct {
	mu     sync.Mutex
	events []string
	raw    []string
	done   chan struct{}
}

func startSSE(t *testing.T, ts *httptest.Server) *sseClient {
	t.Helper()
	c := &sseClient{done: make(chan struct{})}
	resp, err := ts.Client().Get(ts.URL + "/debug/stream")
	if err != nil {
		t.Fatalf("GET /debug/stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("stream Content-Type = %q", ct)
	}
	t.Cleanup(func() { resp.Body.Close() })
	go func() {
		defer close(c.done)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			c.mu.Lock()
			c.raw = append(c.raw, line)
			if strings.HasPrefix(line, "event: ") {
				c.events = append(c.events, strings.TrimPrefix(line, "event: "))
			}
			c.mu.Unlock()
		}
	}()
	return c
}

func (c *sseClient) snapshot() (events, raw []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.events...), append([]string(nil), c.raw...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStreamMultiClientDelivery(t *testing.T) {
	o := obs.Nop()
	s := New(o)
	stop := s.EnableTelemetry(o, []tsdb.Rule{})
	defer stop()
	ts := httptest.NewServer(s.Handler())
	// Cleanup, not defer: the SSE response bodies (closed by startSSE's
	// later-registered cleanups) must close before ts.Close, or Close
	// waits forever on the live streams.
	t.Cleanup(ts.Close)

	c1 := startSSE(t, ts)
	c2 := startSSE(t, ts)
	waitFor(t, "both clients subscribed", func() bool { return s.StreamClientCount() == 2 })

	// An eventlog append fans out to every client.
	o.EventLog().Append("transfer.start", "task", "t1")
	for _, c := range []*sseClient{c1, c2} {
		waitFor(t, "event frame", func() bool {
			events, _ := c.snapshot()
			for _, e := range events {
				if e == "event" {
					return true
				}
			}
			return false
		})
	}
	_, raw := c1.snapshot()
	found := false
	for _, line := range raw {
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"transfer.start"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("event payload missing from frames: %v", raw)
	}

	// Metric deltas: bump a counter, the delta publisher broadcasts it.
	o.Registry().Counter("transfer.tasks_total").Add(3)
	waitFor(t, "metrics frame", func() bool {
		events, _ := c2.snapshot()
		for _, e := range events {
			if e == "metrics" {
				return true
			}
		}
		return false
	})
}

func TestStreamSlowClientEviction(t *testing.T) {
	o := obs.Nop()
	s := New(o)
	rec := tsdb.New(tsdb.Options{})
	s.SetTelemetry(rec, tsdb.NewEngine(rec, o, nil))

	// Subscribe directly at the hub and never drain: once the buffer
	// overflows the hub must evict (close) the client rather than block
	// the broadcaster.
	_, ch := s.hub.subscribe()
	if s.StreamClientCount() != 1 {
		t.Fatalf("clients = %d, want 1", s.StreamClientCount())
	}
	for i := 0; i < streamBuffer+5; i++ {
		s.hub.broadcast(jsonFrame("event", map[string]int{"i": i}))
	}
	if s.StreamClientCount() != 0 {
		t.Fatalf("slow client not evicted: %d clients", s.StreamClientCount())
	}
	// The channel was closed with exactly the buffered frames inside.
	n := 0
	for range ch {
		n++
	}
	if n != streamBuffer {
		t.Errorf("drained %d frames, want %d", n, streamBuffer)
	}

	// End-to-end: a client that disconnects is unsubscribed by its
	// handler, so the hub's view returns to zero.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/stream")
	if err != nil {
		t.Fatalf("GET /debug/stream: %v", err)
	}
	waitFor(t, "stream subscribed", func() bool { return s.StreamClientCount() == 1 })
	resp.Body.Close()
	waitFor(t, "handler unsubscribed", func() bool { return s.StreamClientCount() == 0 })
}

func TestStreamHeartbeat(t *testing.T) {
	o := obs.Nop()
	s := New(o)
	rec := tsdb.New(tsdb.Options{})
	s.SetTelemetry(rec, tsdb.NewEngine(rec, o, nil))
	s.heartbeat = 20 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close) // before startSSE's body-close cleanup (LIFO)

	c := startSSE(t, ts)
	waitFor(t, "heartbeat comments", func() bool {
		_, raw := c.snapshot()
		n := 0
		for _, line := range raw {
			if line == ": hb" {
				n++
			}
		}
		return n >= 2
	})
}

func TestEnableTelemetrySamplesAndAlerts(t *testing.T) {
	o := obs.Nop()
	s := New(o)
	stop := s.EnableTelemetry(o, nil)
	defer stop()

	if o.Series == nil {
		t.Fatal("EnableTelemetry did not install o.Series")
	}
	rec, eng := s.telemetry()
	if rec == nil || eng == nil {
		t.Fatal("telemetry not installed")
	}
	// The sampler picks up registry state in the background (1s cadence).
	o.Registry().Gauge("g").Set(9)
	waitFor(t, "background sample", func() bool {
		p, ok := rec.Latest("g")
		return ok && p.V == 9
	})
	// Components feed explicit timelines through the obs bundle.
	o.TimeSeries().Observe("transfer.task.x.throughput", time.Now(), 1e6)
	if _, ok := rec.Latest("transfer.task.x.throughput"); !ok {
		t.Fatal("o.Series observation did not reach the recorder")
	}
	stop()
	stop() // idempotent
}

func TestStreamLastEventIDResume(t *testing.T) {
	o := obs.Nop()
	s := New(o)
	stop := s.EnableTelemetry(o, []tsdb.Rule{})
	defer stop()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Three events happen while the "dashboard" is disconnected.
	e1 := o.EventLog().Append("transfer.start", "task", "t1")
	o.EventLog().Append("transfer.progress", "task", "t1")
	o.EventLog().Append("transfer.done", "task", "t1")

	// Reconnect having seen only the first event: the two missed events
	// replay immediately, each with its id line.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/debug/stream", nil)
	req.Header.Set("Last-Event-ID", strconv.FormatInt(e1.Seq, 10))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })

	c := &sseClient{done: make(chan struct{})}
	go func() {
		defer close(c.done)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			c.mu.Lock()
			c.raw = append(c.raw, line)
			if strings.HasPrefix(line, "event: ") {
				c.events = append(c.events, strings.TrimPrefix(line, "event: "))
			}
			c.mu.Unlock()
		}
	}()

	countPayload := func(substr string) int {
		_, raw := c.snapshot()
		n := 0
		for _, line := range raw {
			if strings.HasPrefix(line, "data: ") && strings.Contains(line, substr) {
				n++
			}
		}
		return n
	}
	waitFor(t, "replayed events", func() bool {
		return countPayload(`"transfer.progress"`) == 1 && countPayload(`"transfer.done"`) == 1
	})
	if got := countPayload(`"transfer.start"`); got != 0 {
		t.Errorf("event before Last-Event-ID replayed %d times, want 0", got)
	}
	// id lines carry the eventlog sequence numbers.
	_, raw := c.snapshot()
	ids := 0
	for _, line := range raw {
		if strings.HasPrefix(line, "id: ") {
			if _, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64); err != nil {
				t.Errorf("bad id line %q", line)
			}
			ids++
		}
	}
	if ids != 2 {
		t.Errorf("got %d id lines after replay, want 2", ids)
	}

	// A live event arrives exactly once — the replay boundary must not
	// duplicate or swallow it.
	waitFor(t, "subscription live", func() bool { return s.StreamClientCount() == 1 })
	o.EventLog().Append("transfer.start", "task", "t2")
	waitFor(t, "live event after resume", func() bool { return countPayload(`"t2"`) >= 1 })
	if got := countPayload(`"t2"`); got != 1 {
		t.Errorf("live event delivered %d times, want 1", got)
	}

	// A malformed Last-Event-ID is a 400, not a silent full replay.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/debug/stream", nil)
	req2.Header.Set("Last-Event-ID", "not-a-number")
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed Last-Event-ID: status %d, want 400", resp2.StatusCode)
	}
}
