// Package admin is the telemetry export plane shared by every daemon: a
// stdlib net/http server exposing the process's obs bundle to external
// scrapers and operators. The paper's Globus Online layer exists so that
// operators can see transfer state without shelling into endpoints; this
// is the equivalent surface for the reproduction's daemons.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition (?format=json for JSON)
//	/healthz       liveness probes (200 ok / 503 with failing probe names)
//	/readyz        readiness probes (same contract, separate set)
//	/debug/spans   the live span forest as JSON
//	/debug/events  the structured event ring as JSON (?n= limit, ?type= prefix)
//	/debug/streams per-stream wire telemetry (stream-health table; ?format=text)
//	/debug/series  time-series lifecycle inventory: live vs tombstoned series
//	/tenants       per-DN tenant attribution: top-K table plus sketch summary
//	/debug/pprof/  the standard on-demand Go profiling endpoints; for the
//	               retained capture history see /debug/profile/continuous
//	/debug/profile/continuous  the continuous profiler's window ring
//	               (listing, /top, /diff, /raw — see profile.go)
//
// The admin listener is a real OS socket (net.Listen), deliberately
// outside the simulated network substrate the daemons move data over:
// external tools — curl, Prometheus, a browser — must be able to reach
// it.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/obs/expfmt"
	"gridftp.dev/instant/internal/obs/profile"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/obs/tenant"
	"gridftp.dev/instant/internal/obs/tsdb"
)

// Probe reports one aspect of process health; nil means healthy.
type Probe func() error

// Server serves the admin endpoints for one obs bundle.
type Server struct {
	o   *obs.Obs
	mux *http.ServeMux

	mu     sync.Mutex
	health map[string]Probe
	ready  map[string]Probe

	// Telemetry plane (telemetry.go): the time-series recorder and alert
	// engine behind /debug/timeseries, /alerts, and /debug/stream, plus
	// the SSE fan-out hub. heartbeat overrides the stream keepalive
	// cadence (0 = default; tests shrink it).
	rec       *tsdb.Recorder
	engine    *tsdb.Engine
	hub       streamHub
	heartbeat time.Duration

	// fleet is the federation head's HTTP plane (internal/obs/fleet),
	// delegated to under /fleet/ and /v1/metrics; nil answers 503 so the
	// admin plane keeps one shape whether or not this daemon federates.
	fleet http.Handler

	// profiler is the continuous profiler behind /debug/profile/continuous
	// (profile.go); nil answers 503.
	profiler *profile.Profiler

	// streams is the per-stream wire-telemetry registry behind
	// /debug/streams; nil answers 503 so the route keeps one shape whether
	// or not this daemon tracks data streams.
	streams *streamstats.Registry

	// tenants is the per-DN accounting plane behind /tenants
	// (internal/obs/tenant); nil answers 503.
	tenants *tenant.Accountant

	srv *http.Server
	ln  net.Listener
}

// New builds an admin server over the given obs bundle (nil is valid and
// serves empty telemetry).
func New(o *obs.Obs) *Server {
	s := &Server{
		o:      o,
		mux:    http.NewServeMux(),
		health: make(map[string]Probe),
		ready:  make(map[string]Probe),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.probeHandler(&s.health))
	s.mux.HandleFunc("/readyz", s.probeHandler(&s.ready))
	s.mux.HandleFunc("/debug/spans", s.handleSpans)
	s.mux.HandleFunc("/debug/events", s.handleEvents)
	s.mux.HandleFunc("/debug/timeseries", s.handleTimeseries)
	s.mux.HandleFunc("/debug/streams", s.handleStreams)
	s.mux.HandleFunc("/debug/stream", s.handleStream)
	s.mux.HandleFunc("/debug/series", s.handleSeries)
	s.mux.HandleFunc("/tenants", s.handleTenants)
	s.mux.HandleFunc("/alerts", s.handleAlerts)
	s.mux.HandleFunc("/fleet/", s.handleFleet)
	s.mux.HandleFunc("/v1/metrics", s.handleFleet)
	s.mux.HandleFunc("/v1/profile", s.handleFleet)
	s.mux.HandleFunc("/v1/tenants", s.handleFleet)
	s.mux.HandleFunc("/debug/profile/continuous", s.handleProfileContinuous)
	s.mux.HandleFunc("/debug/profile/continuous/top", s.handleProfileTop)
	s.mux.HandleFunc("/debug/profile/continuous/diff", s.handleProfileDiff)
	s.mux.HandleFunc("/debug/profile/continuous/raw", s.handleProfileRaw)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the admin mux (for httptest and for embedding the
// admin plane under an existing server).
func (s *Server) Handler() http.Handler { return s.mux }

// SetFleet mounts a fleet federation handler (internal/obs/fleet) under
// /fleet/ and /v1/metrics. Nil unmounts; the routes then answer 503.
func (s *Server) SetFleet(h http.Handler) {
	s.mu.Lock()
	s.fleet = h
	s.mu.Unlock()
}

// SetStreamStats mounts a per-stream wire-telemetry registry
// (internal/obs/streamstats) under /debug/streams. Nil unmounts; the
// route then answers 503.
func (s *Server) SetStreamStats(reg *streamstats.Registry) {
	s.mu.Lock()
	s.streams = reg
	s.mu.Unlock()
}

// SetTenants mounts a per-DN accounting plane (internal/obs/tenant)
// under /tenants. Nil unmounts; the route then answers 503.
func (s *Server) SetTenants(a *tenant.Accountant) {
	s.mu.Lock()
	s.tenants = a
	s.mu.Unlock()
}

// handleTenants serves the top-K tenant attribution table plus sketch
// summary (capacity, admissions, evictions, max overestimate). ?k=
// widens or narrows the table; the sketch's configured TopK is the
// default.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	acct := s.tenants
	s.mu.Unlock()
	if acct == nil {
		http.Error(w, "tenant accounting not enabled", http.StatusServiceUnavailable)
		return
	}
	k := 0
	if raw := r.URL.Query().Get("k"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
		k = n
	}
	tenants := acct.TopK(k)
	if tenants == nil {
		tenants = []tenant.Stat{}
	}
	writeJSON(w, map[string]any{
		"tenants": tenants,
		"summary": acct.Stats(),
	})
}

// handleSeries serves the time-series lifecycle inventory: every series
// the recorder holds with its state (live or retired), point count, and
// — for tombstones — when it was retired and when the sweeper will
// reclaim it. This is the operator's view into cardinality governance:
// what obs.tsdb.series_active counts, by name.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rec := s.rec
	s.mu.Unlock()
	if rec == nil {
		http.Error(w, "telemetry recording not enabled", http.StatusServiceUnavailable)
		return
	}
	inv := rec.Inventory()
	if prefix := r.URL.Query().Get("series"); prefix != "" {
		kept := inv[:0:0]
		for _, si := range inv {
			if strings.HasPrefix(si.Name, prefix) {
				kept = append(kept, si)
			}
		}
		inv = kept
	}
	if inv == nil {
		inv = []tsdb.SeriesInfo{}
	}
	live, tombstoned, retiredTotal := rec.LifecycleStats()
	writeJSON(w, map[string]any{
		"series":        inv,
		"live":          live,
		"tombstoned":    tombstoned,
		"retired_total": retiredTotal,
	})
}

// handleStreams serves the stream-health table: per-transfer, per-stream
// wire telemetry (bytes, EWMA throughput, RTT, retransmits, stall state).
// JSON by default; ?format=text renders the same table an operator sees
// in benchreport's dashboard.
func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	reg := s.streams
	s.mu.Unlock()
	if reg == nil {
		http.Error(w, "stream telemetry not enabled", http.StatusServiceUnavailable)
		return
	}
	transfers := reg.Health()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, streamstats.FormatTable(transfers))
		return
	}
	if transfers == nil {
		transfers = []streamstats.TransferHealth{}
	}
	writeJSON(w, map[string]any{"transfers": transfers})
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.fleet
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "fleet federation not enabled", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// AddHealth registers a liveness probe under name (replacing any probe
// of the same name).
func (s *Server) AddHealth(name string, p Probe) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health[name] = p
}

// AddReadiness registers a readiness probe under name.
func (s *Server) AddReadiness(name string, p Probe) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ready[name] = p
}

// ListenAndServe binds addr (e.g. ":9970" or "127.0.0.1:0") and serves
// in the background, returning the bound address.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	srv := s.srv
	s.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr(), nil
}

// Addr returns the bound address ("" before ListenAndServe).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// AwaitInterrupt blocks until SIGINT or SIGTERM — the hold loop daemons
// use when started with -admin so the endpoints stay scrapeable.
func AwaitInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(ch)
	<-ch
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "instant-gridftp admin plane")
	fmt.Fprintln(w, "  /metrics        Prometheus text exposition (?format=json)")
	fmt.Fprintln(w, "  /healthz        liveness probes")
	fmt.Fprintln(w, "  /readyz         readiness probes")
	fmt.Fprintln(w, "  /debug/spans    span forest (JSON)")
	fmt.Fprintln(w, "  /debug/events   event ring (JSON; ?n=50 ?type=transfer.)")
	fmt.Fprintln(w, "  /alerts         SLO alert rules with live state (JSON)")
	fmt.Fprintln(w, "  /debug/timeseries  recorded series (JSON; ?series= ?since=30s ?step=5s)")
	fmt.Fprintln(w, "  /debug/stream   live SSE feed (metric deltas, events, alerts)")
	fmt.Fprintln(w, "  /debug/streams  per-stream wire telemetry / stream-health table (JSON; ?format=text)")
	fmt.Fprintln(w, "  /debug/series   time-series lifecycle inventory (JSON; ?series= prefix)")
	fmt.Fprintln(w, "  /tenants        per-DN top-K tenant attribution (JSON; ?k=)")
	fmt.Fprintln(w, "  /fleet/         fleet federation plane (instances, metrics, timeseries, bundles, profile)")
	fmt.Fprintln(w, "  /v1/metrics     fleet metric push ingest (POST, expfmt)")
	fmt.Fprintln(w, "  /v1/tenants     fleet tenant-table push ingest (POST, JSON)")
	fmt.Fprintln(w, "  /debug/profile/continuous  continuous profiler windows (JSON; /top /diff /raw)")
	fmt.Fprintln(w, "  /debug/pprof/   on-demand Go profiling (continuous history: /debug/profile/continuous)")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.o.Registry()
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		if err := expfmt.WriteJSON(w, reg); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", expfmt.TextContentType)
	if err := expfmt.WriteText(w, reg); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// probeHandler serves one probe set: 200 with a per-probe "name: ok"
// report, or 503 listing what failed. An empty set is healthy — a daemon
// that registered nothing has nothing that can fail.
func (s *Server) probeHandler(set *map[string]Probe) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		probes := make(map[string]Probe, len(*set))
		for name, p := range *set {
			probes[name] = p
		}
		s.mu.Unlock()
		names := make([]string, 0, len(probes))
		for name := range probes {
			names = append(names, name)
		}
		sort.Strings(names)
		var b strings.Builder
		failed := 0
		for _, name := range names {
			if err := probes[name](); err != nil {
				failed++
				fmt.Fprintf(&b, "%s: %v\n", name, err)
			} else {
				fmt.Fprintf(&b, "%s: ok\n", name)
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if failed > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if b.Len() == 0 {
			b.WriteString("ok\n")
		}
		w.Write([]byte(b.String()))
	}
}

// spanJSON is one span (and its subtree) in the /debug/spans response.
// The trace/span ids make the snapshot consumable by the cross-process
// collector (internal/obs/collector), which stitches /debug/spans
// exports from several daemons into one distributed trace.
type spanJSON struct {
	ID           int64             `json:"id"`
	Name         string            `json:"name"`
	TraceID      string            `json:"trace_id,omitempty"`
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Start        time.Time         `json:"start"`
	DurationMS   float64           `json:"duration_ms"`
	Ended        bool              `json:"ended"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Err          string            `json:"err,omitempty"`
	Children     []*spanJSON       `json:"children,omitempty"`
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	spans := s.o.Tracer().Spans()
	// ?trace=<hex id> narrows the snapshot to one distributed trace —
	// what a collector scrapes when reassembling a specific transfer.
	if want := r.URL.Query().Get("trace"); want != "" {
		kept := spans[:0:0]
		for _, sp := range spans {
			if sp.TraceID == want {
				kept = append(kept, sp)
			}
		}
		spans = kept
	}
	nodes := make(map[int64]*spanJSON, len(spans))
	var roots []*spanJSON
	for _, sp := range spans {
		nodes[sp.ID] = &spanJSON{
			ID: sp.ID, Name: sp.Name, Start: sp.Start,
			TraceID: sp.TraceID, SpanID: sp.SpanID, ParentSpanID: sp.ParentSpanID,
			DurationMS: float64(sp.Duration) / float64(time.Millisecond),
			Ended:      sp.Ended, Attrs: sp.Attrs, Err: sp.Err,
		}
	}
	for _, sp := range spans {
		node := nodes[sp.ID]
		if parent, ok := nodes[sp.Parent]; ok && sp.Parent != 0 {
			parent.Children = append(parent.Children, node)
		} else {
			// Root, or an orphan whose parent was evicted from the
			// bounded span buffer — surface it at top level either way.
			roots = append(roots, node)
		}
	}
	if roots == nil {
		roots = []*spanJSON{}
	}
	writeJSON(w, map[string]any{"spans": roots})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := -1
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	events := s.o.EventLog().Events()
	if prefix := r.URL.Query().Get("type"); prefix != "" {
		kept := events[:0:0]
		for _, ev := range events {
			if strings.HasPrefix(ev.Type, prefix) {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	if n >= 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	if events == nil {
		events = []eventlog.Event{}
	}
	writeJSON(w, map[string]any{"events": events})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
