package admin

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/fleet"
	"gridftp.dev/instant/internal/obs/tenant"
	"gridftp.dev/instant/internal/obs/tsdb"
)

func TestTenantsEndpoint(t *testing.T) {
	s := New(obs.Nop())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 503 until an accountant is mounted — same pattern as the other
	// optional planes.
	if code, _, _ := get(t, ts, "/tenants"); code != http.StatusServiceUnavailable {
		t.Fatalf("/tenants unmounted = %d, want 503", code)
	}

	a := tenant.New(tenant.Options{Capacity: 8, TopK: 4})
	a.BytesMoved("/CN=alice", 700)
	a.BytesMoved("/CN=bob", 300)
	a.TaskSubmitted("/CN=bob")
	s.SetTenants(a)

	code, body, hdr := get(t, ts, "/tenants")
	if code != http.StatusOK {
		t.Fatalf("/tenants = %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		Tenants []tenant.Stat  `json:"tenants"`
		Summary tenant.Summary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("body: %v\n%s", err, body)
	}
	if len(doc.Tenants) != 2 || doc.Tenants[0].DN != "/CN=alice" || doc.Tenants[0].Rank != 1 {
		t.Fatalf("tenants = %+v", doc.Tenants)
	}
	if doc.Summary.Tracked != 2 || doc.Summary.Capacity != 8 {
		t.Fatalf("summary = %+v", doc.Summary)
	}

	if code, _, _ := get(t, ts, "/tenants?k=1"); code != http.StatusOK {
		t.Fatalf("/tenants?k=1 = %d", code)
	}
	code, body, _ = get(t, ts, "/tenants?k=1")
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.Tenants) != 1 {
		t.Fatalf("k=1 tenants = %+v (%v)", doc.Tenants, err)
	}
	if code, _, _ = get(t, ts, "/tenants?k=zero"); code != http.StatusBadRequest {
		t.Fatalf("/tenants?k=zero = %d, want 400", code)
	}
}

// TestTenantPushRouteForwardsToFleet: the pusher targets
// /v1/tenants on the head's admin plane, which must forward to the
// mounted fleet handler like /v1/metrics does (regression: the route
// was missing and pushes 404ed).
func TestTenantPushRouteForwardsToFleet(t *testing.T) {
	s := New(obs.Nop())
	fl := fleet.New(fleet.Options{Obs: obs.Nop()})
	s.SetFleet(fl.Handler())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `[{"dn":"/CN=pusher","hash":"00000000","weight":10,"bytes":10}]`
	resp, err := ts.Client().Post(
		ts.URL+"/v1/tenants?instance=ep1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /v1/tenants via admin mux = %d, want 204", resp.StatusCode)
	}
	code, out, _ := get(t, ts, "/fleet/tenants")
	if code != http.StatusOK || !strings.Contains(out, "/CN=pusher") {
		t.Fatalf("GET /fleet/tenants = %d %q, want the pushed DN", code, out)
	}
}

func TestSeriesEndpoint(t *testing.T) {
	s := New(obs.Nop())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _, _ := get(t, ts, "/debug/series"); code != http.StatusServiceUnavailable {
		t.Fatalf("/debug/series without recorder = %d, want 503", code)
	}

	rec := tsdb.New(tsdb.Options{})
	s.SetTelemetry(rec, nil)
	t0 := time.Unix(1000, 0)
	rec.Observe("transfer.task.t1.throughput", t0, 1)
	rec.Observe("gridftp.stream.s1.rtt", t0, 2)
	rec.RetireAt("transfer.task.t1.", t0)

	code, body, _ := get(t, ts, "/debug/series")
	if code != http.StatusOK {
		t.Fatalf("/debug/series = %d: %s", code, body)
	}
	var doc struct {
		Series       []tsdb.SeriesInfo `json:"series"`
		Live         int               `json:"live"`
		Tombstoned   int               `json:"tombstoned"`
		RetiredTotal int64             `json:"retired_total"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("body: %v\n%s", err, body)
	}
	if doc.Live != 2 || doc.Tombstoned != 1 || doc.RetiredTotal != 1 {
		t.Fatalf("lifecycle counts = %+v", doc)
	}
	states := map[string]string{}
	for _, si := range doc.Series {
		states[si.Name] = si.State
	}
	if states["transfer.task.t1.throughput"] != "retired" || states["gridftp.stream.s1.rtt"] != "live" {
		t.Fatalf("states = %+v", states)
	}

	// Prefix filter narrows the inventory, not the counts.
	_, body, _ = get(t, ts, "/debug/series?series=gridftp.")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("filtered body: %v", err)
	}
	if len(doc.Series) != 1 || doc.Series[0].Name != "gridftp.stream.s1.rtt" {
		t.Fatalf("filtered series = %+v", doc.Series)
	}
}
