package admin_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gridftp.dev/instant/internal/admin"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/pam"
)

// TestAdminPlaneEndToEnd is the acceptance scenario: a GCMU endpoint
// serving real transfers while its obs bundle is scraped through the
// admin plane — /metrics must expose the control-channel command
// histogram in Prometheus form, and /debug/events the session, auth,
// and transfer lifecycle.
func TestAdminPlaneEndToEnd(t *testing.T) {
	o := obs.Nop()
	nw := netsim.NewNetwork()
	dir := pam.NewLDAPDirectory("dc=siteA")
	dir.AddEntry("alice", "secret")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	stack := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	ep, err := gcmu.Install(gcmu.Options{
		Name: "siteA", Host: nw.Host("siteA"), Auth: stack, Accounts: accounts, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	ts := httptest.NewServer(admin.New(o).Handler())
	defer ts.Close()

	client, err := ep.Connect(nw.Host("laptop"), "alice", pam.PasswordConv("secret"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := client.Put("/e2e.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	dst := dsi.NewBufferFile(nil)
	if _, err := client.Get("/e2e.bin", dst); err != nil {
		t.Fatal(err)
	}

	fetch := func(path string) string {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := fetch("/metrics")
	for _, want := range []string{
		"# TYPE gridftp_server_command_seconds histogram",
		`gridftp_server_command_seconds_bucket{le="+Inf"}`,
		"gridftp_server_command_seconds_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var doc struct {
		Events []eventlog.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(fetch("/debug/events")), &doc); err != nil {
		t.Fatal(err)
	}
	types := make(map[string]int)
	for _, ev := range doc.Events {
		types[ev.Type]++
	}
	for _, want := range []string{
		eventlog.EndpointInstall,
		eventlog.SessionOpen,
		eventlog.AuthSuccess,
		eventlog.TransferStart,
		eventlog.TransferComplete,
	} {
		if types[want] == 0 {
			t.Errorf("/debug/events missing %q (have %v)", want, types)
		}
	}
}
