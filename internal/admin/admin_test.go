package admin

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsEndpoint(t *testing.T) {
	o := obs.Nop()
	o.Registry().Counter("gridftp.server.sessions").Add(2)
	o.Registry().Histogram("gridftp.server.command_seconds", obs.DefaultDurationBuckets).Observe(0.003)
	ts := httptest.NewServer(New(o).Handler())
	defer ts.Close()

	code, body, hdr := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"gridftp_server_sessions 2",
		`gridftp_server_command_seconds_bucket{le="+Inf"} 1`,
		"gridftp_server_command_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, hdr = get(t, ts, "/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json: status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Errorf("json body invalid: %v", err)
	}
}

func TestProbes(t *testing.T) {
	s := New(obs.Nop())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Empty probe sets are healthy.
	if code, body, _ := get(t, ts, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz empty = %d %q", code, body)
	}

	s.AddReadiness("endpoint", func() error { return errors.New("not yet installed") })
	code, body, _ := get(t, ts, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/readyz with failing probe = %d, want 503", code)
	}
	if !strings.Contains(body, "endpoint: not yet installed") {
		t.Errorf("/readyz body = %q", body)
	}

	s.AddReadiness("endpoint", func() error { return nil })
	if code, body, _ := get(t, ts, "/readyz"); code != http.StatusOK || !strings.Contains(body, "endpoint: ok") {
		t.Errorf("/readyz after flip = %d %q", code, body)
	}
	// Health is a separate probe set.
	if code, _, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
}

func TestSpansEndpoint(t *testing.T) {
	o := obs.Nop()
	parent := o.Tracer().StartSpan("task")
	child := parent.Child("attempt")
	child.End()
	parent.End()
	ts := httptest.NewServer(New(o).Handler())
	defer ts.Close()

	_, body, _ := get(t, ts, "/debug/spans")
	var doc struct {
		Spans []struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "task" {
		t.Fatalf("spans = %+v, want one root 'task'", doc.Spans)
	}
	if len(doc.Spans[0].Children) != 1 || doc.Spans[0].Children[0].Name != "attempt" {
		t.Errorf("children = %+v, want one 'attempt'", doc.Spans[0].Children)
	}
}

// TestSpansTraceFilter checks the ?trace= query narrows the snapshot to
// one distributed trace and that spans carry their wire ids — the
// contract the cross-process collector scrapes against.
func TestSpansTraceFilter(t *testing.T) {
	o := obs.Nop()
	t1 := o.Tracer().StartSpan("task-one")
	t1.Child("data").End()
	t1.End()
	t2 := o.Tracer().StartSpan("task-two")
	t2.End()
	ts := httptest.NewServer(New(o).Handler())
	defer ts.Close()

	type node struct {
		Name         string `json:"name"`
		TraceID      string `json:"trace_id"`
		SpanID       string `json:"span_id"`
		ParentSpanID string `json:"parent_span_id"`
		Children     []node `json:"children"`
	}
	decode := func(body string) []node {
		var doc struct {
			Spans []node `json:"spans"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, body)
		}
		return doc.Spans
	}

	_, body, _ := get(t, ts, "/debug/spans")
	if spans := decode(body); len(spans) != 2 {
		t.Fatalf("unfiltered roots = %d, want 2", len(spans))
	}

	_, body, _ = get(t, ts, "/debug/spans?trace="+t1.TraceID.String())
	spans := decode(body)
	if len(spans) != 1 || spans[0].Name != "task-one" {
		t.Fatalf("trace filter returned %+v, want only task-one", spans)
	}
	root := spans[0]
	if root.TraceID != t1.TraceID.String() || root.SpanID != t1.SpanID.String() {
		t.Errorf("root ids %s/%s, want %s/%s", root.TraceID, root.SpanID, t1.TraceID, t1.SpanID)
	}
	if len(root.Children) != 1 || root.Children[0].ParentSpanID != t1.SpanID.String() {
		t.Errorf("child parent link = %+v", root.Children)
	}

	_, body, _ = get(t, ts, "/debug/spans?trace=deadbeef")
	if spans := decode(body); len(spans) != 0 {
		t.Errorf("unknown trace id returned %+v, want empty", spans)
	}
}

func TestEventsEndpoint(t *testing.T) {
	o := obs.Nop()
	o.EventLog().Append(eventlog.SessionOpen, "session", "s1")
	o.EventLog().Append(eventlog.TransferStart, "session", "s1", "path", "/a")
	o.EventLog().Append(eventlog.TransferComplete, "session", "s1", "path", "/a")
	ts := httptest.NewServer(New(o).Handler())
	defer ts.Close()

	decode := func(body string) []eventlog.Event {
		var doc struct {
			Events []eventlog.Event `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, body)
		}
		return doc.Events
	}

	_, body, _ := get(t, ts, "/debug/events")
	if evs := decode(body); len(evs) != 3 || evs[0].Type != eventlog.SessionOpen {
		t.Errorf("all events = %+v", evs)
	}
	_, body, _ = get(t, ts, "/debug/events?type=transfer.")
	if evs := decode(body); len(evs) != 2 {
		t.Errorf("type filter: %+v", evs)
	}
	_, body, _ = get(t, ts, "/debug/events?n=1")
	if evs := decode(body); len(evs) != 1 || evs[0].Type != eventlog.TransferComplete {
		t.Errorf("n=1: %+v", evs)
	}
	if code, _, _ := get(t, ts, "/debug/events?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("n=bogus: status %d, want 400", code)
	}
}

func TestListenAndServe(t *testing.T) {
	s := New(obs.Nop())
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() != addr.String() {
		t.Errorf("Addr() = %q, want %q", s.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz over real socket = %d", resp.StatusCode)
	}
}
