package admin

import (
	"fmt"
	"net/http"
	"strconv"

	"gridftp.dev/instant/internal/obs/profile"
)

// This file mounts the continuous-profiling plane. Where /debug/pprof/
// serves on-demand captures (you ask, then wait), these endpoints serve
// the profiler's retained history: what the process looked like over
// the last five minutes of 10s windows, without having had to be
// watching at the time.
//
//	/debug/profile/continuous       window listing + newest summary (JSON)
//	/debug/profile/continuous/top   latest top-N table (?kind=heap&n=10)
//	/debug/profile/continuous/diff  diff two windows (?base=3&cur=7&kind=heap)
//	/debug/profile/continuous/raw   raw gzipped pprof (?id=7&kind=cpu)

// SetProfiler mounts a continuous profiler's endpoints. Nil unmounts;
// the routes then answer 503, keeping the admin plane one shape whether
// or not the daemon runs the profiler.
func (s *Server) SetProfiler(p *profile.Profiler) {
	s.mu.Lock()
	s.profiler = p
	s.mu.Unlock()
}

// getProfiler returns the mounted profiler or writes the 503.
func (s *Server) getProfiler(w http.ResponseWriter) (*profile.Profiler, bool) {
	s.mu.Lock()
	p := s.profiler
	s.mu.Unlock()
	if p == nil {
		http.Error(w, "continuous profiling not enabled", http.StatusServiceUnavailable)
		return nil, false
	}
	return p, true
}

func (s *Server) handleProfileContinuous(w http.ResponseWriter, r *http.Request) {
	p, ok := s.getProfiler(w)
	if !ok {
		return
	}
	latest, ready := p.ProfileSummary()
	resp := map[string]any{
		"interval_seconds": p.Interval().Seconds(),
		"kinds":            p.KindsSorted(),
		"windows":          p.Windows(),
		"ready":            ready,
	}
	if ready {
		resp["latest"] = latest
	}
	writeJSON(w, resp)
}

func (s *Server) handleProfileTop(w http.ResponseWriter, r *http.Request) {
	p, ok := s.getProfiler(w)
	if !ok {
		return
	}
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = profile.KindHeap
	}
	n := 10
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	writeJSON(w, map[string]any{"kind": kind, "frames": p.Top(kind, n)})
}

func (s *Server) handleProfileDiff(w http.ResponseWriter, r *http.Request) {
	p, ok := s.getProfiler(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	base, err1 := strconv.Atoi(q.Get("base"))
	cur, err2 := strconv.Atoi(q.Get("cur"))
	if err1 != nil || err2 != nil {
		http.Error(w, "base and cur window ids required", http.StatusBadRequest)
		return
	}
	kind := q.Get("kind")
	if kind == "" {
		kind = profile.KindHeap
	}
	frames, ok := p.DiffWindows(base, cur, kind)
	if !ok {
		http.Error(w, "window not in the raw-capture tier", http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"kind": kind, "base": base, "cur": cur, "frames": frames})
}

func (s *Server) handleProfileRaw(w http.ResponseWriter, r *http.Request) {
	p, ok := s.getProfiler(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	id, err := strconv.Atoi(q.Get("id"))
	if err != nil {
		http.Error(w, "id parameter required", http.StatusBadRequest)
		return
	}
	kind := q.Get("kind")
	if kind == "" {
		kind = profile.KindCPU
	}
	data, ok := p.Raw(id, kind)
	if !ok {
		http.Error(w, "no raw capture for that window/kind", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s-window%d.pprof.gz", kind, id))
	w.Write(data)
}
