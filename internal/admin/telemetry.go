package admin

// Telemetry endpoints over the time-series flight recorder and SLO alert
// engine (internal/obs/tsdb):
//
//	/debug/timeseries  recorded series as JSON (?series= prefix filter,
//	                   ?since= RFC3339 or relative duration, ?step= rebucket)
//	/alerts            every alert rule with live state, firing first
//	/debug/stream      SSE live feed: metric deltas, new events, alert
//	                   transitions, with heartbeats and slow-client eviction
//
// The endpoints answer 503 until SetTelemetry (usually via
// EnableTelemetry) installs a recorder, so the admin plane's shape is
// identical across daemons whether or not they record history.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/obs/tsdb"
)

// streamFrame is one SSE message: an event name plus a JSON payload.
// Frames carrying an eventlog entry also carry its monotone sequence
// number as the SSE id, which is what makes Last-Event-ID resume work;
// id 0 means the frame type has no resume semantics (metrics, alerts).
type streamFrame struct {
	event string
	data  []byte
	id    int64
}

// streamBuffer is each /debug/stream client's channel depth. A client
// that falls this far behind the broadcast stream is evicted — the feed
// is a live tail, not a reliable queue, and a stalled reader must not
// block the eventlog tap that feeds it.
const streamBuffer = 64

// streamHub fans frames out to the connected /debug/stream clients.
type streamHub struct {
	mu      sync.Mutex
	clients map[int]chan streamFrame
	next    int
}

func (h *streamHub) subscribe() (int, chan streamFrame) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.clients == nil {
		h.clients = make(map[int]chan streamFrame)
	}
	id := h.next
	h.next++
	ch := make(chan streamFrame, streamBuffer)
	h.clients[id] = ch
	return id, ch
}

func (h *streamHub) unsubscribe(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.clients, id)
}

func (h *streamHub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.clients)
}

// broadcast delivers the frame to every client without ever blocking:
// the callers are synchronous taps inside eventlog.Append and
// Engine.Eval. A client whose buffer is full is evicted (channel closed)
// so one stalled curl cannot make the whole process's event path lag.
func (h *streamHub) broadcast(f streamFrame) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, ch := range h.clients {
		select {
		case ch <- f:
		default:
			close(ch)
			delete(h.clients, id)
		}
	}
}

func jsonFrame(event string, v any) streamFrame {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"marshal_error":%q}`, err.Error()))
	}
	return streamFrame{event: event, data: data}
}

// SetTelemetry installs the recorder and alert engine behind
// /debug/timeseries, /alerts, and /debug/stream. Either may be nil; the
// corresponding endpoints then answer 503.
func (s *Server) SetTelemetry(rec *tsdb.Recorder, eng *tsdb.Engine) {
	s.mu.Lock()
	s.rec, s.engine = rec, eng
	s.mu.Unlock()
}

func (s *Server) telemetry() (*tsdb.Recorder, *tsdb.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec, s.engine
}

// StreamClientCount reports the number of connected /debug/stream
// clients (eviction and shutdown visibility for tests and operators).
func (s *Server) StreamClientCount() int { return s.hub.count() }

// EnableTelemetry wires a full recording pipeline into the server: a
// recorder with default geometry (1s raw / 15s aggregate), an alert
// engine over rules (nil = tsdb.DefaultRules()), the background registry
// sampler, and the live-stream taps. The recorder is installed as
// o.Series, so components with explicit timelines (PERF markers) feed it
// through obs.TimeSeries(). The returned stop halts the sampler, the
// delta publisher, and the taps; it is idempotent.
func (s *Server) EnableTelemetry(o *obs.Obs, rules []tsdb.Rule) (stop func()) {
	if rules == nil {
		rules = tsdb.DefaultRules()
	}
	rec := tsdb.New(tsdb.Options{})
	eng := tsdb.NewEngine(rec, o, rules)
	if o != nil {
		o.Series = rec
	}
	s.SetTelemetry(rec, eng)

	// Live-stream taps: every appended event and every alert transition
	// becomes an SSE frame the moment it happens.
	untapEvents := o.EventLog().Tap(func(ev eventlog.Event) {
		f := jsonFrame("event", ev)
		f.id = ev.Seq
		s.hub.broadcast(f)
	})
	untapAlerts := eng.Tap(func(tr tsdb.Transition) {
		s.hub.broadcast(jsonFrame("alert", tr))
	})

	// Background sampler: registry → recorder → alert evaluation.
	stopSampler := rec.Start(o.Registry(), eng)

	// Metric-delta publisher: on each sampling interval, send connected
	// stream clients only the counters/gauges that changed since the last
	// tick — a live diff, cheap enough to run at the raw cadence.
	deltaStop := make(chan struct{})
	deltaDone := make(chan struct{})
	go func() {
		defer close(deltaDone)
		tick := time.NewTicker(rec.Options().RawStep)
		defer tick.Stop()
		prev := make(map[string]int64)
		for {
			select {
			case <-tick.C:
				if s.hub.count() == 0 {
					// Still track values so a new client's first delta
					// frame is a diff, not a full dump.
					for _, m := range o.Registry().Snapshot() {
						prev[m.Name] = m.Value
					}
					continue
				}
				changed := make(map[string]int64)
				for _, m := range o.Registry().Snapshot() {
					if v, ok := prev[m.Name]; !ok || v != m.Value {
						changed[m.Name] = m.Value
					}
					prev[m.Name] = m.Value
				}
				if len(changed) > 0 {
					s.hub.broadcast(jsonFrame("metrics", map[string]any{
						"t": time.Now().UTC(), "changed": changed,
					}))
				}
			case <-deltaStop:
				return
			}
		}
	}()

	var once sync.Once
	return func() {
		once.Do(func() {
			close(deltaStop)
			<-deltaDone
			stopSampler()
			untapEvents()
			untapAlerts()
		})
	}
}

// parseSince interprets the ?since= query value: empty means all
// retained history, a Go duration means "that long ago", otherwise
// RFC3339.
func parseSince(v string, now time.Time) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	if d, err := time.ParseDuration(v); err == nil {
		if d < 0 {
			d = -d
		}
		return now.Add(-d), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("since: want duration (30s) or RFC3339: %v", err)
	}
	return t, nil
}

func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	rec, _ := s.telemetry()
	if rec == nil {
		http.Error(w, "time-series recorder not enabled", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	var prefixes []string
	for _, p := range strings.Split(q.Get("series"), ",") {
		if p = strings.TrimSpace(p); p != "" {
			prefixes = append(prefixes, p)
		}
	}
	now := time.Now()
	since, err := parseSince(q.Get("since"), now)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var step time.Duration
	if v := q.Get("step"); v != "" {
		step, err = time.ParseDuration(v)
		if err != nil || step < 0 {
			http.Error(w, "step: want a positive Go duration (15s)", http.StatusBadRequest)
			return
		}
	}
	series := rec.DumpSeries(prefixes, since, step)
	if series == nil {
		series = []tsdb.SeriesDump{}
	}
	writeJSON(w, map[string]any{"now": now.UTC(), "series": series})
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	_, eng := s.telemetry()
	if eng == nil {
		http.Error(w, "alert engine not enabled", http.StatusServiceUnavailable)
		return
	}
	alerts := eng.Alerts()
	// Firing first, then pending, then inactive; stable by name within a
	// state so the operator view doesn't shuffle between refreshes.
	rank := map[tsdb.State]int{tsdb.StateFiring: 0, tsdb.StatePending: 1, tsdb.StateInactive: 2}
	sort.SliceStable(alerts, func(i, j int) bool {
		if rank[alerts[i].State] != rank[alerts[j].State] {
			return rank[alerts[i].State] < rank[alerts[j].State]
		}
		return alerts[i].Rule.Name < alerts[j].Rule.Name
	})
	if alerts == nil {
		alerts = []tsdb.Alert{}
	}
	writeJSON(w, map[string]any{"alerts": alerts, "active": len(eng.Active())})
}

// streamHeartbeat is the default keepalive cadence for /debug/stream;
// tests shrink Server.heartbeat to observe it without waiting.
const streamHeartbeat = 15 * time.Second

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rec, _ := s.telemetry()
	if rec == nil {
		http.Error(w, "telemetry stream not enabled", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	// Validate the resume cursor before committing the 200/SSE headers.
	resume := int64(-1)
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		lastID, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || lastID < 0 {
			http.Error(w, "bad Last-Event-ID", http.StatusBadRequest)
			return
		}
		resume = lastID
	}

	id, ch := s.hub.subscribe()
	defer s.hub.unsubscribe(id)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	if _, err := fmt.Fprintf(w, ": connected client=%d\n\n", id); err != nil {
		return
	}
	fl.Flush()

	writeFrame := func(f streamFrame) bool {
		if f.id > 0 {
			if _, err := fmt.Fprintf(w, "id: %d\n", f.id); err != nil {
				return false
			}
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.event, f.data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// Last-Event-ID resume: replay retained events the client missed
	// while disconnected. The subscription is already live, so an event
	// appended during the replay is not lost — it arrives on the channel
	// and is skipped there if the replay already covered it.
	var replayed int64
	if resume >= 0 {
		for _, ev := range s.o.EventLog().Events() {
			if ev.Seq <= resume {
				continue
			}
			f := jsonFrame("event", ev)
			f.id = ev.Seq
			if !writeFrame(f) {
				return
			}
			replayed = ev.Seq
		}
	}

	hb := s.heartbeat
	if hb <= 0 {
		hb = streamHeartbeat
	}
	tick := time.NewTicker(hb)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			// SSE comment frame: keeps proxies and clients from timing
			// out an idle feed without emitting a data event.
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		case f, ok := <-ch:
			if !ok {
				// Evicted by the hub for falling behind; the closed
				// channel is the signal to hang up.
				return
			}
			if f.id > 0 && f.id <= replayed {
				continue // already delivered by the resume replay
			}
			if !writeFrame(f) {
				return
			}
		}
	}
}
