package gsi

import (
	"crypto/x509"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mustCA(t *testing.T, dn DN) *CA {
	t.Helper()
	ca, err := NewCA(dn, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func mustIssue(t *testing.T, ca *CA, opts IssueOptions) *Credential {
	t.Helper()
	if opts.Lifetime == 0 {
		opts.Lifetime = time.Hour
	}
	cred, err := ca.Issue(opts)
	if err != nil {
		t.Fatal(err)
	}
	return cred
}

func TestDNRoundTrip(t *testing.T) {
	cases := []DN{
		"/C=US/O=Grid/CN=alice",
		"/O=GCMU/OU=siteA/CN=bob/CN=proxy",
		"/CN=just-a-cn",
		"/C=US/ST=IL/L=Argonne/O=ANL/OU=MCS/CN=host\\/gridftp.example.org",
	}
	for _, dn := range cases {
		attrs, err := parseDN(dn)
		if err != nil {
			t.Fatalf("%s: %v", dn, err)
		}
		if got := formatDN(attrs); got != dn {
			t.Errorf("round trip %q -> %q", dn, got)
		}
	}
}

func TestDNParseErrors(t *testing.T) {
	for _, bad := range []DN{"no-slash", "/noequals", "/=emptykey", "/X=unsupported"} {
		if _, err := parseDN(bad); err == nil {
			t.Errorf("parseDN(%q) should fail", bad)
		}
	}
}

func TestDNThroughCertificate(t *testing.T) {
	// A DN must survive the trip through actual X.509 encoding, including
	// stacked CNs for proxies.
	ca := mustCA(t, "/C=US/O=Grid/CN=Test CA")
	if got := ca.DN(); got != "/C=US/O=Grid/CN=Test CA" {
		t.Fatalf("CA DN through cert: %q", got)
	}
	user := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/OU=users/CN=alice"})
	if got := user.DN(); got != "/O=Grid/OU=users/CN=alice" {
		t.Fatalf("user DN through cert: %q", got)
	}
	proxy, err := NewProxy(user, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := proxy.DN(); got != "/O=Grid/OU=users/CN=alice/CN=proxy" {
		t.Fatalf("proxy DN: %q", got)
	}
	if got := proxy.Identity(); got != "/O=Grid/OU=users/CN=alice" {
		t.Fatalf("proxy identity: %q", got)
	}
}

func TestCNHelpers(t *testing.T) {
	d := DN("/O=x/CN=a/CN=b")
	if got := d.LastCN(); got != "b" {
		t.Fatalf("LastCN=%q", got)
	}
	if got := d.StripLastCN(); got != "/O=x/CN=a" {
		t.Fatalf("StripLastCN=%q", got)
	}
	if got := d.AppendCN("c"); got != "/O=x/CN=a/CN=b/CN=c" {
		t.Fatalf("AppendCN=%q", got)
	}
	if got := DN("/O=x").StripLastCN(); got != "/O=x" {
		t.Fatalf("StripLastCN with no CN=%q", got)
	}
	if cns := d.CNs(); len(cns) != 2 || cns[0] != "a" || cns[1] != "b" {
		t.Fatalf("CNs=%v", cns)
	}
}

func TestDNMatches(t *testing.T) {
	d := DN("/O=Grid/OU=users/CN=alice")
	for pattern, want := range map[string]bool{
		"/O=Grid/*":                 true,
		"*":                         true,
		"/O=Grid/OU=users/CN=alice": true,
		"/O=Other/*":                false,
		"/O=Grid/OU=users/CN=bob":   false,
	} {
		if got := d.Matches(pattern); got != want {
			t.Errorf("Matches(%q)=%v want %v", pattern, got, want)
		}
	}
}

func TestPropertyAppendStripCN(t *testing.T) {
	f := func(raw string) bool {
		cn := strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' || r == 0 || r == '=' || r == '\\' {
				return 'x'
			}
			return r
		}, raw)
		if cn == "" {
			cn = "x"
		}
		base := DN("/O=Grid/CN=base")
		d := base.AppendCN(cn)
		return d.StripLastCN() == base && d.LastCN() == cn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIssueAndVerify(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA-A")
	user := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/OU=siteA/CN=alice"})
	trust := NewTrustStore()
	if err := trust.AddCA(ca.Certificate()); err != nil {
		t.Fatal(err)
	}
	id, err := trust.Verify(user.FullChain(), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id.Identity != "/O=Grid/OU=siteA/CN=alice" {
		t.Fatalf("identity %q", id.Identity)
	}
	if id.IssuerCA != "/O=Grid/CN=CA-A" {
		t.Fatalf("issuer CA %q", id.IssuerCA)
	}
	if id.ProxyDepth != 0 {
		t.Fatalf("proxy depth %d", id.ProxyDepth)
	}
}

func TestVerifyRejectsUnknownCA(t *testing.T) {
	caA := mustCA(t, "/O=Grid/CN=CA-A")
	caB := mustCA(t, "/O=Grid/CN=CA-B")
	user := mustIssue(t, caA, IssueOptions{Subject: "/O=Grid/CN=alice"})
	trust := NewTrustStore()
	trust.AddCA(caB.Certificate())
	if _, err := trust.Verify(user.FullChain(), time.Now()); err == nil {
		t.Fatal("verification against wrong CA should fail")
	}
}

func TestVerifyRejectsForgedChain(t *testing.T) {
	// An attacker CA with the same DN as the trusted CA must not verify.
	real := mustCA(t, "/O=Grid/CN=CA-A")
	fake := mustCA(t, "/O=Grid/CN=CA-A")
	user := mustIssue(t, fake, IssueOptions{Subject: "/O=Grid/CN=mallory"})
	trust := NewTrustStore()
	trust.AddCA(real.Certificate())
	if _, err := trust.Verify(user.FullChain(), time.Now()); err == nil {
		t.Fatal("chain signed by DN-colliding fake CA should fail")
	}
}

func TestProxyChainVerifies(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA-A")
	user := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=alice"})
	proxy, err := NewProxy(user, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Second-level proxy (proxy of a proxy), as produced by delegation.
	proxy2, err := NewProxy(proxy, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())
	for _, cred := range []*Credential{proxy, proxy2} {
		id, err := trust.Verify(cred.FullChain(), time.Now())
		if err != nil {
			t.Fatal(err)
		}
		if id.Identity != "/O=Grid/CN=alice" {
			t.Fatalf("identity %q", id.Identity)
		}
	}
	id, _ := trust.Verify(proxy2.FullChain(), time.Now())
	if id.ProxyDepth != 2 {
		t.Fatalf("proxy depth %d, want 2", id.ProxyDepth)
	}
}

func TestProxyChainMissingIssuerRejected(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA-A")
	alice := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=alice"})
	bob := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=bob"})
	proxy, err := NewProxy(alice, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())
	// Chain claims bob is the issuer of alice's proxy: no certificate with
	// the proxy's issuer DN is present, so the walk must fail.
	if _, err := trust.Verify([]*x509.Certificate{proxy.Cert, bob.Cert, ca.Certificate()}, time.Now()); err == nil {
		t.Fatal("proxy chain without its true issuer accepted")
	}
}

func TestProxySignatureForgedRejected(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA-A")
	alice1 := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=alice"})
	alice2 := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=alice"}) // same DN, different key
	proxy, err := NewProxy(alice1, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())
	// Present the proxy with a same-DN cert whose key did NOT sign it.
	if _, err := trust.Verify([]*x509.Certificate{proxy.Cert, alice2.Cert, ca.Certificate()}, time.Now()); err == nil {
		t.Fatal("proxy with mismatched issuer key accepted")
	}
}

func TestProxyLifetimeClamped(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA")
	user := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=u", Lifetime: time.Hour})
	proxy, err := NewProxy(user, ProxyOptions{Lifetime: 100 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Cert.NotAfter.After(user.Cert.NotAfter) {
		t.Fatal("proxy lifetime must nest within issuer lifetime")
	}
}

func TestLimitedProxy(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA")
	user := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=u"})
	lp, err := NewProxy(user, ProxyOptions{Limited: true})
	if err != nil {
		t.Fatal(err)
	}
	if lp.DN().LastCN() != "limited proxy" {
		t.Fatalf("limited proxy CN: %q", lp.DN())
	}
	if !IsProxy(lp.Cert) {
		t.Fatal("limited proxy should be recognized as proxy")
	}
}

func TestSigningPolicyEnforced(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA-A")
	inPolicy := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/OU=siteA/CN=ok"})
	outOfPolicy := mustIssue(t, ca, IssueOptions{Subject: "/O=Evil/CN=bad"})
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())
	trust.AddPolicy(&SigningPolicy{CA: ca.DN(), Subjects: []string{"/O=Grid/*"}})
	if _, err := trust.Verify(inPolicy.FullChain(), time.Now()); err != nil {
		t.Fatalf("in-policy subject rejected: %v", err)
	}
	if _, err := trust.Verify(outOfPolicy.FullChain(), time.Now()); err == nil {
		t.Fatal("out-of-policy subject accepted")
	}
}

func TestSigningPolicyParseFormat(t *testing.T) {
	text := `# EACL for Test CA
access_id_CA  X509  '/O=Grid/CN=Test CA'
pos_rights    globus CA:sign
cond_subjects globus '"/O=Grid/*" "/O=Lab/*"'
`
	p, err := ParseSigningPolicy(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.CA != "/O=Grid/CN=Test CA" || len(p.Subjects) != 2 {
		t.Fatalf("parsed %+v", p)
	}
	// Round trip.
	p2, err := ParseSigningPolicy(FormatSigningPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	if p2.CA != p.CA || len(p2.Subjects) != len(p.Subjects) {
		t.Fatalf("round trip %+v", p2)
	}
	if !p.Allows("/O=Lab/CN=x") || p.Allows("/O=Other/CN=x") {
		t.Fatal("Allows misbehaves")
	}
}

func TestSigningPolicyParseErrors(t *testing.T) {
	bad := []string{
		"",
		"access_id_CA X509 '/O=x'\n", // missing rights+subjects
		"access_id_CA PGP '/O=x'\npos_rights globus CA:sign\ncond_subjects globus '\"/a/*\"'\n",
		"pos_rights globus CA:sign\ncond_subjects globus '\"/a/*\"'\n", // no CA
		"garbage line here\n",
	}
	for _, text := range bad {
		if _, err := ParseSigningPolicy(text); err == nil {
			t.Errorf("ParseSigningPolicy(%q) should fail", text)
		}
	}
}

func TestExpiredCertificateRejected(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA")
	user := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=u", Lifetime: time.Hour})
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())
	if _, err := trust.Verify(user.FullChain(), time.Now().Add(2*time.Hour)); err == nil {
		t.Fatal("expired certificate accepted")
	}
	if _, err := trust.Verify(user.FullChain(), time.Now().Add(-time.Hour)); err == nil {
		t.Fatal("not-yet-valid certificate accepted")
	}
}

func TestDirectTrustSelfSigned(t *testing.T) {
	ss, err := SelfSignedCredential("/CN=dcsc-random", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore()
	if _, err := trust.Verify(ss.FullChain(), time.Now()); err == nil {
		t.Fatal("untrusted self-signed accepted")
	}
	trust.AddDirect(ss.Cert)
	id, err := trust.Verify(ss.FullChain(), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id.Identity != "/CN=dcsc-random" {
		t.Fatalf("identity %q", id.Identity)
	}
	// A *different* self-signed cert with same DN must still be rejected.
	ss2, _ := SelfSignedCredential("/CN=dcsc-random", time.Hour)
	if _, err := trust.Verify(ss2.FullChain(), time.Now()); err == nil {
		t.Fatal("directly-trusted lookup must be exact-certificate, not DN")
	}
}

func TestTrustStoreClone(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA")
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())
	clone := trust.Clone()
	ca2 := mustCA(t, "/O=Grid/CN=CA2")
	clone.AddCA(ca2.Certificate())
	if len(trust.CAs()) != 1 {
		t.Fatal("clone mutation leaked into original")
	}
	if len(clone.CAs()) != 2 {
		t.Fatal("clone missing added CA")
	}
}

func TestPEMBundleRoundTrip(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA")
	user := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=u"})
	proxy, err := NewProxy(user, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pemData, err := proxy.EncodePEM()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePEM(pemData)
	if err != nil {
		t.Fatal(err)
	}
	if got.DN() != proxy.DN() {
		t.Fatalf("DN %q after round trip", got.DN())
	}
	if len(got.Chain) != len(proxy.Chain) {
		t.Fatalf("chain length %d, want %d", len(got.Chain), len(proxy.Chain))
	}
	if got.Key == nil {
		t.Fatal("key lost in round trip")
	}
	// The reconstituted credential must still verify.
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())
	if _, err := trust.Verify(got.FullChain(), time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePEMErrors(t *testing.T) {
	if _, err := DecodePEM([]byte("not pem")); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := DecodePEM(nil); err == nil {
		t.Fatal("empty should fail")
	}
}

func TestIssueRejectsBadInput(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA")
	if _, err := ca.Issue(IssueOptions{Subject: "/O=Grid/CN=u"}); err == nil {
		t.Fatal("zero lifetime should fail")
	}
	if _, err := ca.Issue(IssueOptions{Subject: "bad-dn", Lifetime: time.Hour}); err == nil {
		t.Fatal("bad DN should fail")
	}
}

func TestHostCertHasServerUsage(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA")
	host := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=host\\/gridftp.siteA", Host: true, DNSNames: []string{"gridftp.siteA"}})
	found := false
	for _, eku := range host.Cert.ExtKeyUsage {
		if eku == 2 /* x509.ExtKeyUsageServerAuth */ {
			found = true
		}
	}
	if !found {
		t.Fatal("host cert missing server-auth EKU")
	}
}
