package gsi

import (
	"testing"
	"time"
)

func TestProxyChainDepthLimit(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA")
	cred := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=u"})
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())

	// Proxies of proxies up to a depth the verifier must refuse.
	cur := cred
	for i := 0; i < maxChainDepth+2; i++ {
		next, err := NewProxy(cur, ProxyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	if _, err := trust.Verify(cur.FullChain(), time.Now()); err == nil {
		t.Fatal("over-deep proxy chain accepted")
	}
	// A reasonable depth still verifies.
	mid := cred
	for i := 0; i < 4; i++ {
		next, err := NewProxy(mid, ProxyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mid = next
	}
	id, err := trust.Verify(mid.FullChain(), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id.ProxyDepth != 4 {
		t.Fatalf("depth %d", id.ProxyDepth)
	}
}

func TestDelegatedLifetimeClamped(t *testing.T) {
	ca := mustCA(t, "/O=Grid/CN=CA")
	// Short-lived issuer: the delegated proxy cannot outlive it.
	cred := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=u", Lifetime: 30 * time.Minute})
	proxy, err := NewProxy(cred, ProxyOptions{Lifetime: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Cert.NotAfter.After(cred.Cert.NotAfter) {
		t.Fatal("proxy outlives its issuer")
	}
	// An expired issuer cannot delegate at all.
	expired := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=v", Lifetime: time.Millisecond})
	time.Sleep(5 * time.Millisecond)
	if _, err := NewProxy(expired, ProxyOptions{}); err == nil {
		t.Fatal("expired issuer produced a proxy")
	}
}
