package gsi

import (
	"bufio"
	"fmt"
	"strings"
)

// SigningPolicy restricts which subject DNs a CA may sign, mirroring the
// Globus *.signing_policy EACL files installed next to trusted CA
// certificates. A CA with no registered policy may sign anything (the
// server's *default* CA certificates are expected to be protected by
// policies; DCSC-supplied CAs explicitly are not — §V.A).
type SigningPolicy struct {
	// CA is the DN of the CA the policy applies to.
	CA DN
	// Subjects are the DN patterns the CA may sign ('*' suffix wildcard).
	Subjects []string
}

// Allows reports whether the policy permits the CA to have signed subject.
func (p *SigningPolicy) Allows(subject DN) bool {
	for _, pat := range p.Subjects {
		if subject.Matches(pat) {
			return true
		}
	}
	return false
}

// ParseSigningPolicy parses the Globus signing_policy file format:
//
//	access_id_CA  X509  '/C=US/O=Grid/CN=Example CA'
//	pos_rights    globus CA:sign
//	cond_subjects globus '"/C=US/O=Grid/*" "/C=US/O=Lab/*"'
//
// Comment lines start with '#'. Only the globus CA:sign right is modelled.
func ParseSigningPolicy(data string) (*SigningPolicy, error) {
	var p SigningPolicy
	sawRights := false
	sc := bufio.NewScanner(strings.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitPolicyLine(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("gsi: malformed signing policy line %q", line)
		}
		switch fields[0] {
		case "access_id_CA":
			if fields[1] != "X509" {
				return nil, fmt.Errorf("gsi: unsupported access_id_CA type %q", fields[1])
			}
			p.CA = DN(fields[2])
		case "pos_rights":
			if fields[1] != "globus" || fields[2] != "CA:sign" {
				return nil, fmt.Errorf("gsi: unsupported pos_rights %q %q", fields[1], fields[2])
			}
			sawRights = true
		case "cond_subjects":
			if fields[1] != "globus" {
				return nil, fmt.Errorf("gsi: unsupported cond_subjects namespace %q", fields[1])
			}
			for _, sub := range splitQuotedList(fields[2]) {
				p.Subjects = append(p.Subjects, sub)
			}
		default:
			return nil, fmt.Errorf("gsi: unknown signing policy directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.CA == "" {
		return nil, fmt.Errorf("gsi: signing policy missing access_id_CA")
	}
	if !sawRights {
		return nil, fmt.Errorf("gsi: signing policy missing pos_rights")
	}
	if len(p.Subjects) == 0 {
		return nil, fmt.Errorf("gsi: signing policy missing cond_subjects")
	}
	return &p, nil
}

// FormatSigningPolicy renders the policy in the Globus file format.
func FormatSigningPolicy(p *SigningPolicy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "access_id_CA  X509  '%s'\n", p.CA)
	fmt.Fprintf(&b, "pos_rights    globus CA:sign\n")
	quoted := make([]string, len(p.Subjects))
	for i, s := range p.Subjects {
		quoted[i] = `"` + s + `"`
	}
	fmt.Fprintf(&b, "cond_subjects globus '%s'\n", strings.Join(quoted, " "))
	return b.String()
}

// splitPolicyLine splits on whitespace but keeps single-quoted segments
// intact (quotes stripped).
func splitPolicyLine(line string) []string {
	var fields []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '\'' {
			j := strings.IndexByte(line[i+1:], '\'')
			if j < 0 {
				fields = append(fields, line[i+1:])
				return fields
			}
			fields = append(fields, line[i+1:i+1+j])
			i += j + 2
			continue
		}
		j := strings.IndexAny(line[i:], " \t")
		if j < 0 {
			fields = append(fields, line[i:])
			break
		}
		fields = append(fields, line[i:i+j])
		i += j
	}
	return fields
}

// splitQuotedList splits `"/a/*" "/b/*"` into its double-quoted members.
func splitQuotedList(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			s = strings.TrimSpace(s)
			if s != "" {
				out = append(out, s)
			}
			return out
		}
		end := strings.IndexByte(s[start+1:], '"')
		if end < 0 {
			out = append(out, s[start+1:])
			return out
		}
		out = append(out, s[start+1:start+1+end])
		s = s[start+end+2:]
	}
}
