package gsi

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"time"
)

// TLSCertificate converts the credential into a crypto/tls certificate
// (leaf first, then the chain, as TLS requires).
func (c *Credential) TLSCertificate() tls.Certificate {
	raw := make([][]byte, 0, len(c.Chain)+1)
	raw = append(raw, c.Cert.Raw)
	for _, cc := range c.Chain {
		raw = append(raw, cc.Raw)
	}
	return tls.Certificate{
		Certificate: raw,
		PrivateKey:  c.Key,
		Leaf:        c.Cert,
	}
}

// verifyCallback builds a VerifyPeerCertificate hook that applies GSI
// chain validation (proxy-aware, signing-policy-enforcing) in place of the
// stdlib verifier, which rejects proxy chains.
func verifyCallback(trust *TrustStore) func([][]byte, [][]*x509.Certificate) error {
	return func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
		_, err := trust.VerifyRaw(rawCerts, time.Now())
		return err
	}
}

// ServerTLSConfig builds a TLS server configuration that presents cred and
// demands a client certificate verified against trust with GSI semantics.
func ServerTLSConfig(cred *Credential, trust *TrustStore) *tls.Config {
	return &tls.Config{
		Certificates:          []tls.Certificate{cred.TLSCertificate()},
		ClientAuth:            tls.RequireAnyClientCert,
		InsecureSkipVerify:    true, // GSI verification below replaces stdlib verification
		VerifyPeerCertificate: verifyCallback(trust),
		MinVersion:            tls.VersionTLS12,
		// GSI peers build a fresh config per connection, so issued session
		// tickets can never be redeemed; minting them just burns a key
		// schedule per data-channel handshake.
		SessionTicketsDisabled: true,
	}
}

// ServerTLSConfigNoClientAuth builds a TLS server configuration that
// presents cred but does not demand a client certificate — the MyProxy
// logon case, where the connecting user has no certificate yet (obtaining
// one is the point of the exchange) and authenticates with site
// credentials inside the session instead.
func ServerTLSConfigNoClientAuth(cred *Credential) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{cred.TLSCertificate()},
		MinVersion:   tls.VersionTLS12,
	}
}

// ClientTLSConfig builds a TLS client configuration that presents cred
// (which may be nil for an anonymous client) and verifies the server
// against trust with GSI semantics.
func ClientTLSConfig(cred *Credential, trust *TrustStore) *tls.Config {
	cfg := &tls.Config{
		InsecureSkipVerify:    true, // GSI verification below replaces stdlib verification
		VerifyPeerCertificate: verifyCallback(trust),
		MinVersion:            tls.VersionTLS12,
	}
	if cred != nil {
		cfg.Certificates = []tls.Certificate{cred.TLSCertificate()}
	}
	return cfg
}

// PeerIdentity re-verifies the handshake's peer chain and returns the GSI
// identity; callers use it after the handshake to learn who connected.
func PeerIdentity(conn *tls.Conn, trust *TrustStore) (*VerifiedIdentity, error) {
	state := conn.ConnectionState()
	if len(state.PeerCertificates) == 0 {
		return nil, errors.New("gsi: peer presented no certificate")
	}
	return trust.Verify(state.PeerCertificates, time.Now())
}

// HandshakeServer wraps conn in a server-side TLS session using cred/trust
// and returns the connection plus the verified client identity.
func HandshakeServer(conn net.Conn, cred *Credential, trust *TrustStore) (*tls.Conn, *VerifiedIdentity, error) {
	tc := tls.Server(conn, ServerTLSConfig(cred, trust))
	if err := tc.Handshake(); err != nil {
		return nil, nil, fmt.Errorf("gsi: server handshake: %w", err)
	}
	id, err := PeerIdentity(tc, trust)
	if err != nil {
		tc.Close()
		return nil, nil, err
	}
	return tc, id, nil
}

// HandshakeClient wraps conn in a client-side TLS session using cred/trust
// and returns the connection plus the verified server identity.
func HandshakeClient(conn net.Conn, cred *Credential, trust *TrustStore) (*tls.Conn, *VerifiedIdentity, error) {
	tc := tls.Client(conn, ClientTLSConfig(cred, trust))
	if err := tc.Handshake(); err != nil {
		return nil, nil, fmt.Errorf("gsi: client handshake: %w", err)
	}
	id, err := PeerIdentity(tc, trust)
	if err != nil {
		tc.Close()
		return nil, nil, err
	}
	return tc, id, nil
}
