package gsi

import (
	"bytes"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"sync"
	"time"
)

// maxChainDepth bounds certificate-path walks.
const maxChainDepth = 16

// VerifiedIdentity is the outcome of a successful chain verification.
type VerifiedIdentity struct {
	// Identity is the end-entity DN with proxy levels stripped — the DN
	// authorization (gridmap, AUTHZ callout) operates on.
	Identity DN
	// Subject is the leaf certificate's full subject DN.
	Subject DN
	// ProxyDepth counts proxy levels on the leaf (0 = plain EE cert).
	ProxyDepth int
	// IssuerCA is the DN of the trust anchor that rooted the chain; empty
	// when the leaf itself was directly trusted (self-signed DCSC context).
	IssuerCA DN
	// Leaf is the verified leaf certificate.
	Leaf *x509.Certificate
}

// TrustStore holds trust anchors and signing policies: the contents of a
// /etc/grid-security/certificates directory. It is safe for concurrent use.
// Cloning is cheap, which is how DCSC overlays per-data-channel contexts on
// top of a server's default trust roots.
type TrustStore struct {
	mu       sync.RWMutex
	roots    map[DN]*x509.Certificate
	direct   map[[32]byte]*x509.Certificate
	policies map[DN]*SigningPolicy

	// vmu guards vcache, the chain-verification memo. GridFTP performs
	// the same chain walk for every data-channel handshake of a parallel
	// transfer (and twice per handshake: the TLS callback plus
	// PeerIdentity), which made ECDSA verification and DER re-parsing the
	// top allocators on the E2 hot path. Successful verifications are
	// cached by chain digest and replayed while `now` stays inside the
	// chain's validity window; any mutation of the store empties the memo.
	vmu    sync.RWMutex
	vcache map[[32]byte]*verifyCacheEntry
}

// verifyCacheEntry is one memoized successful verification: the identity
// plus the time window (validity intersection across the chain and its
// anchor) within which the outcome remains sound.
type verifyCacheEntry struct {
	id        *VerifiedIdentity
	notBefore time.Time
	notAfter  time.Time
}

// verifyCacheMax bounds the memo; the map resets wholesale when full
// (chains per store are few — users × proxies — so eviction is rare).
const verifyCacheMax = 256

// chainKey digests a leaf-first chain as a hash of per-certificate
// hashes: collision-unambiguous without concatenation, and — unlike
// sha256.New, whose state escapes through the hash.Hash interface —
// entirely stack-allocated on the handshake hot path.
func chainKey(raws [][]byte) [32]byte {
	var buf [maxChainDepth * sha256.Size]byte
	n := 0
	for _, raw := range raws {
		d := sha256.Sum256(raw)
		n += copy(buf[n:], d[:])
	}
	return sha256.Sum256(buf[:n])
}

func (t *TrustStore) cachedVerify(key [32]byte, now time.Time) (*VerifiedIdentity, bool) {
	t.vmu.RLock()
	e := t.vcache[key]
	t.vmu.RUnlock()
	if e == nil || now.Before(e.notBefore) || now.After(e.notAfter) {
		return nil, false
	}
	return e.id, true
}

func (t *TrustStore) storeVerify(key [32]byte, id *VerifiedIdentity, chain []*x509.Certificate) {
	e := &verifyCacheEntry{id: id}
	for i, c := range chain {
		if i == 0 || c.NotBefore.After(e.notBefore) {
			e.notBefore = c.NotBefore
		}
		if i == 0 || c.NotAfter.Before(e.notAfter) {
			e.notAfter = c.NotAfter
		}
	}
	if id.IssuerCA != "" {
		if root := t.rootFor(id.IssuerCA); root != nil {
			if root.NotBefore.After(e.notBefore) {
				e.notBefore = root.NotBefore
			}
			if root.NotAfter.Before(e.notAfter) {
				e.notAfter = root.NotAfter
			}
		}
	}
	t.vmu.Lock()
	if t.vcache == nil || len(t.vcache) >= verifyCacheMax {
		t.vcache = make(map[[32]byte]*verifyCacheEntry)
	}
	t.vcache[key] = e
	t.vmu.Unlock()
}

// invalidateVerifyCache empties the memo; every store mutation calls it,
// since new anchors, policies, or direct certs change verification
// outcomes.
func (t *TrustStore) invalidateVerifyCache() {
	t.vmu.Lock()
	t.vcache = nil
	t.vmu.Unlock()
}

// NewTrustStore returns an empty trust store.
func NewTrustStore() *TrustStore {
	return &TrustStore{
		roots:    make(map[DN]*x509.Certificate),
		direct:   make(map[[32]byte]*x509.Certificate),
		policies: make(map[DN]*SigningPolicy),
	}
}

// AddCA registers a CA certificate as a trust anchor.
func (t *TrustStore) AddCA(cert *x509.Certificate) error {
	if !cert.IsCA {
		return fmt.Errorf("gsi: %q is not a CA certificate", CertDN(cert))
	}
	t.mu.Lock()
	t.roots[CertDN(cert)] = cert
	t.mu.Unlock()
	t.invalidateVerifyCache()
	return nil
}

// AddPolicy registers a signing policy for a CA DN.
func (t *TrustStore) AddPolicy(p *SigningPolicy) {
	t.mu.Lock()
	t.policies[p.CA] = p
	t.mu.Unlock()
	t.invalidateVerifyCache()
}

// AddDirect registers a specific (typically self-signed end-entity)
// certificate as directly trusted — the DCSC self-signed context case.
func (t *TrustStore) AddDirect(cert *x509.Certificate) {
	t.mu.Lock()
	t.direct[sha256.Sum256(cert.Raw)] = cert
	t.mu.Unlock()
	t.invalidateVerifyCache()
}

// Policy returns the signing policy registered for a CA DN, if any.
func (t *TrustStore) Policy(ca DN) *SigningPolicy {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.policies[ca]
}

// CAs returns the DNs of all registered CA anchors.
func (t *TrustStore) CAs() []DN {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]DN, 0, len(t.roots))
	for dn := range t.roots {
		out = append(out, dn)
	}
	return out
}

// Clone returns an independent copy of the store.
func (t *TrustStore) Clone() *TrustStore {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := NewTrustStore()
	for k, v := range t.roots {
		c.roots[k] = v
	}
	for k, v := range t.direct {
		c.direct[k] = v
	}
	for k, v := range t.policies {
		c.policies[k] = v
	}
	return c
}

func (t *TrustStore) rootFor(dn DN) *x509.Certificate {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.roots[dn]
}

func (t *TrustStore) isDirect(cert *x509.Certificate) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	got, ok := t.direct[sha256.Sum256(cert.Raw)]
	return ok && bytes.Equal(got.Raw, cert.Raw)
}

// Verify validates a leaf-first certificate chain against the store,
// accepting GSI proxy chains that stdlib x509.Verify rejects. Rules:
//
//   - every certificate must be inside its validity window at now;
//   - a proxy may only be issued by the certificate whose subject it
//     extends (one extra proxy CN), with a nested lifetime;
//   - the end-entity certificate must chain to a trusted CA anchor, and if
//     that CA has a signing policy, the signed subject must match it;
//   - alternatively the leaf may be directly trusted (exact-certificate
//     trust, used for DCSC self-signed contexts).
func (t *TrustStore) Verify(chain []*x509.Certificate, now time.Time) (*VerifiedIdentity, error) {
	if len(chain) == 0 {
		return nil, errors.New("gsi: empty certificate chain")
	}
	if len(chain) > maxChainDepth {
		return t.verifyChain(chain, now) // over-deep chains are rejected uncached
	}
	raws := make([][]byte, len(chain))
	for i, c := range chain {
		if len(c.Raw) == 0 {
			return t.verifyChain(chain, now) // synthetic cert, not cacheable
		}
		raws[i] = c.Raw
	}
	key := chainKey(raws)
	if id, ok := t.cachedVerify(key, now); ok {
		return id, nil
	}
	id, err := t.verifyChain(chain, now)
	if err != nil {
		return nil, err
	}
	t.storeVerify(key, id, chain)
	return id, nil
}

// verifyChain is the uncached chain walk behind Verify.
func (t *TrustStore) verifyChain(chain []*x509.Certificate, now time.Time) (*VerifiedIdentity, error) {
	leaf := chain[0]
	id := &VerifiedIdentity{
		Subject:    CertDN(leaf),
		Identity:   BaseIdentity(leaf),
		ProxyDepth: ProxyDepth(leaf),
		Leaf:       leaf,
	}

	// Directly trusted leaf short-circuits the walk.
	if t.isDirect(leaf) {
		if now.Before(leaf.NotBefore) || now.After(leaf.NotAfter) {
			return nil, fmt.Errorf("gsi: certificate %q outside validity window", id.Subject)
		}
		return id, nil
	}

	// Index the supplied extra certificates by subject for issuer lookup.
	bySubject := make(map[DN][]*x509.Certificate)
	for _, c := range chain[1:] {
		dn := CertDN(c)
		bySubject[dn] = append(bySubject[dn], c)
	}

	cur := leaf
	for depth := 0; depth < maxChainDepth; depth++ {
		if now.Before(cur.NotBefore) || now.After(cur.NotAfter) {
			return nil, fmt.Errorf("gsi: certificate %q outside validity window", CertDN(cur))
		}
		issuerDN := IssuerDN(cur)

		// Anchor in the trust store?
		if root := t.rootFor(issuerDN); root != nil {
			if err := cur.CheckSignatureFrom(root); err != nil {
				return nil, fmt.Errorf("gsi: signature of %q by anchor %q invalid: %w",
					CertDN(cur), issuerDN, err)
			}
			if now.After(root.NotAfter) || now.Before(root.NotBefore) {
				return nil, fmt.Errorf("gsi: trust anchor %q expired", issuerDN)
			}
			if err := t.checkPolicy(issuerDN, cur); err != nil {
				return nil, err
			}
			id.IssuerCA = issuerDN
			return id, nil
		}

		// Self-signed certificate reached: either directly trusted, or the
		// chain terminates at an untrusted root.
		if issuerDN == CertDN(cur) {
			if t.isDirect(cur) {
				return id, nil
			}
			if err := cur.CheckSignatureFrom(cur); err == nil || cur.CheckSignature(cur.SignatureAlgorithm, cur.RawTBSCertificate, cur.Signature) == nil {
				return nil, fmt.Errorf("gsi: chain for %q terminates at untrusted root %q", id.Subject, issuerDN)
			}
		}

		// Otherwise the issuer must be among the supplied certificates.
		issuer, err := pickIssuer(cur, bySubject[issuerDN])
		if err != nil {
			return nil, fmt.Errorf("gsi: cannot build chain for %q: %w", id.Subject, err)
		}
		if issuer.IsCA {
			if err := cur.CheckSignatureFrom(issuer); err != nil {
				return nil, fmt.Errorf("gsi: signature of %q by %q invalid: %w",
					CertDN(cur), issuerDN, err)
			}
			if err := t.checkPolicy(issuerDN, cur); err != nil {
				return nil, err
			}
		} else {
			// Non-CA issuer: only legal for proxy certificates.
			if err := ValidateProxyLink(cur, issuer, now); err != nil {
				return nil, err
			}
		}
		cur = issuer
	}
	return nil, fmt.Errorf("gsi: chain for %q exceeds maximum depth %d", id.Subject, maxChainDepth)
}

// checkPolicy enforces a signing policy if (and only if) one is registered
// for the CA — DCSC-supplied CAs have none and are exempt (§V.A).
func (t *TrustStore) checkPolicy(ca DN, signed *x509.Certificate) error {
	p := t.Policy(ca)
	if p == nil {
		return nil
	}
	subject := CertDN(signed)
	if !p.Allows(subject) {
		return fmt.Errorf("gsi: signing policy for %q forbids subject %q", ca, subject)
	}
	return nil
}

// pickIssuer selects the candidate that actually verifies cur's signature.
func pickIssuer(cur *x509.Certificate, candidates []*x509.Certificate) (*x509.Certificate, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("no certificate for issuer %q supplied and issuer is not a trust anchor", IssuerDN(cur))
	}
	var lastErr error
	for _, cand := range candidates {
		var err error
		if cand.IsCA {
			err = cur.CheckSignatureFrom(cand)
		} else {
			err = cand.CheckSignature(cur.SignatureAlgorithm, cur.RawTBSCertificate, cur.Signature)
		}
		if err == nil {
			return cand, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("no supplied certificate verifies signature: %w", lastErr)
}

// VerifyRaw parses DER certificates (as provided by crypto/tls's
// VerifyPeerCertificate callback) and verifies them.
func (t *TrustStore) VerifyRaw(rawCerts [][]byte, now time.Time) (*VerifiedIdentity, error) {
	if len(rawCerts) == 0 {
		return nil, errors.New("gsi: empty certificate chain")
	}
	// The memo is consulted on the raw DER bytes before any parsing: a
	// data-channel handshake whose chain was already verified costs one
	// digest, not seventeen signature checks and a fresh parse tree.
	cacheable := len(rawCerts) <= maxChainDepth
	var key [sha256.Size]byte
	if cacheable {
		key = chainKey(rawCerts)
		if id, ok := t.cachedVerify(key, now); ok {
			return id, nil
		}
	}
	chain := make([]*x509.Certificate, 0, len(rawCerts))
	for _, raw := range rawCerts {
		c, err := x509.ParseCertificate(raw)
		if err != nil {
			return nil, fmt.Errorf("gsi: unparsable peer certificate: %w", err)
		}
		chain = append(chain, c)
	}
	id, err := t.verifyChain(chain, now)
	if err != nil {
		return nil, err
	}
	if cacheable {
		t.storeVerify(key, id, chain)
	}
	return id, nil
}
