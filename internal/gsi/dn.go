// Package gsi implements the Grid Security Infrastructure pieces that
// GridFTP and GCMU depend on: an X.509 certificate-authority toolkit,
// RFC 3820-style proxy certificates, custom chain verification that accepts
// proxy chains (which stdlib crypto/x509 rejects), Globus-style CA signing
// policies, credential PEM bundles, TLS configuration builders, and
// credential delegation over an established channel.
package gsi

import (
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"fmt"
	"strings"
)

// DN is a distinguished name in Globus "slash" form, e.g.
// "/C=US/O=Grid/OU=GCMU/CN=alice". The empty DN is "".
type DN string

// attr is one RDN attribute in order of appearance.
type attr struct {
	Key   string
	Value string
}

var (
	oidCountry      = asn1.ObjectIdentifier{2, 5, 4, 6}
	oidOrganization = asn1.ObjectIdentifier{2, 5, 4, 10}
	oidOrgUnit      = asn1.ObjectIdentifier{2, 5, 4, 11}
	oidCommonName   = asn1.ObjectIdentifier{2, 5, 4, 3}
	oidLocality     = asn1.ObjectIdentifier{2, 5, 4, 7}
	oidProvince     = asn1.ObjectIdentifier{2, 5, 4, 8}
)

var keyToOID = map[string]asn1.ObjectIdentifier{
	"C":  oidCountry,
	"ST": oidProvince,
	"L":  oidLocality,
	"O":  oidOrganization,
	"OU": oidOrgUnit,
	"CN": oidCommonName,
}

func oidToKey(oid asn1.ObjectIdentifier) string {
	for k, v := range keyToOID {
		if v.Equal(oid) {
			return k
		}
	}
	return ""
}

// parseDN splits a slash-form DN into attributes. It tolerates values
// containing escaped slashes ("\/").
func parseDN(dn DN) ([]attr, error) {
	s := string(dn)
	if s == "" {
		return nil, nil
	}
	if !strings.HasPrefix(s, "/") {
		return nil, fmt.Errorf("gsi: DN %q must start with '/'", dn)
	}
	var attrs []attr
	var cur strings.Builder
	var parts []string
	esc := false
	for _, r := range s[1:] {
		switch {
		case esc:
			cur.WriteRune(r)
			esc = false
		case r == '\\':
			esc = true
		case r == '/':
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	parts = append(parts, cur.String())
	for _, p := range parts {
		k, v, ok := strings.Cut(p, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("gsi: malformed RDN %q in DN %q", p, dn)
		}
		key := strings.ToUpper(strings.TrimSpace(k))
		if _, known := keyToOID[key]; !known {
			return nil, fmt.Errorf("gsi: unsupported RDN key %q in DN %q", key, dn)
		}
		attrs = append(attrs, attr{Key: key, Value: v})
	}
	return attrs, nil
}

func formatDN(attrs []attr) DN {
	var b strings.Builder
	for _, a := range attrs {
		b.WriteByte('/')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(strings.ReplaceAll(a.Value, "/", `\/`))
	}
	return DN(b.String())
}

// CertDN extracts the subject DN of a parsed certificate, preserving RDN
// order including stacked proxy CNs.
func CertDN(cert *x509.Certificate) DN {
	return nameDN(cert.Subject)
}

// IssuerDN extracts the issuer DN of a parsed certificate.
func IssuerDN(cert *x509.Certificate) DN {
	return nameDN(cert.Issuer)
}

func nameDN(n pkix.Name) DN {
	var attrs []attr
	for _, atv := range n.Names {
		key := oidToKey(atv.Type)
		if key == "" {
			continue
		}
		if s, ok := atv.Value.(string); ok {
			attrs = append(attrs, attr{Key: key, Value: s})
		}
	}
	if len(attrs) == 0 {
		// Name was built programmatically (not parsed): fall back to fields.
		add := func(key string, vals ...string) {
			for _, v := range vals {
				if v != "" {
					attrs = append(attrs, attr{key, v})
				}
			}
		}
		add("C", n.Country...)
		add("ST", n.Province...)
		add("L", n.Locality...)
		add("O", n.Organization...)
		add("OU", n.OrganizationalUnit...)
		add("CN", n.CommonName)
	}
	return formatDN(attrs)
}

// DNToName converts a slash-form DN into a pkix.Name suitable for
// certificate creation. All attributes are carried in ExtraNames so the
// marshaled RDN sequence preserves order exactly — required for proxy
// subjects, which stack multiple CN RDNs.
func DNToName(dn DN) (pkix.Name, error) {
	attrs, err := parseDN(dn)
	if err != nil {
		return pkix.Name{}, err
	}
	var n pkix.Name
	for _, a := range attrs {
		n.ExtraNames = append(n.ExtraNames, pkix.AttributeTypeAndValue{
			Type:  keyToOID[a.Key],
			Value: a.Value,
		})
	}
	return n, nil
}

// Valid reports whether the DN parses.
func (d DN) Valid() bool {
	_, err := parseDN(d)
	return err == nil && d != ""
}

// CNs returns all CN values of the DN in order.
func (d DN) CNs() []string {
	attrs, err := parseDN(d)
	if err != nil {
		return nil
	}
	var cns []string
	for _, a := range attrs {
		if a.Key == "CN" {
			cns = append(cns, a.Value)
		}
	}
	return cns
}

// LastCN returns the final CN RDN, which for GCMU-issued certificates is
// the local username and for proxies is the proxy marker.
func (d DN) LastCN() string {
	cns := d.CNs()
	if len(cns) == 0 {
		return ""
	}
	return cns[len(cns)-1]
}

// AppendCN returns the DN extended with one more CN RDN (used to derive
// proxy subjects from their issuer's subject).
func (d DN) AppendCN(cn string) DN {
	return d + DN("/CN="+strings.ReplaceAll(cn, "/", `\/`))
}

// StripLastCN returns the DN with its final CN removed, or the DN itself
// if it has no CN.
func (d DN) StripLastCN() DN {
	attrs, err := parseDN(d)
	if err != nil {
		return d
	}
	last := -1
	for i, a := range attrs {
		if a.Key == "CN" {
			last = i
		}
	}
	if last < 0 {
		return d
	}
	return formatDN(append(attrs[:last:last], attrs[last+1:]...))
}

// Matches reports whether the DN matches a Globus signing-policy pattern,
// where a trailing '*' is a prefix wildcard (e.g. "/O=Grid/*").
func (d DN) Matches(pattern string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(string(d), strings.TrimSuffix(pattern, "*"))
	}
	return string(d) == pattern
}
