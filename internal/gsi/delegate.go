package gsi

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"encoding/base64"
	"fmt"
	"io"
	"time"
)

// Credential delegation (RFC 3820 model): the receiving party generates a
// key pair locally — the private key never crosses the wire — and sends the
// public key to the delegator, who signs a proxy certificate over it and
// returns the certificate plus its chain. GridFTP performs this exchange on
// the (already authenticated and encrypted) control channel so the server
// can authenticate data channels on the user's behalf; SSH's inability to
// do this is one of GridFTP-Lite's limitations the paper calls out (§III.B).

// AcceptDelegation runs the receiving side of a delegation exchange over
// rw: generate a key, send the public key, read back the signed proxy
// certificate bundle.
func AcceptDelegation(rw io.ReadWriter) (*Credential, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	pubDER, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, err
	}
	if err := writeB64Line(rw, pubDER); err != nil {
		return nil, fmt.Errorf("gsi: delegation send key: %w", err)
	}
	bundle, err := readB64Line(rw)
	if err != nil {
		return nil, fmt.Errorf("gsi: delegation read bundle: %w", err)
	}
	cred, err := DecodePEM(bundle)
	if err != nil {
		return nil, err
	}
	cred.Key = key
	return cred, nil
}

// Delegate runs the giving side of a delegation exchange over rw: read the
// peer's public key, sign a proxy over it with cred, send back the proxy
// certificate and full chain.
func Delegate(rw io.ReadWriter, cred *Credential, lifetime time.Duration) error {
	pubDER, err := readB64Line(rw)
	if err != nil {
		return fmt.Errorf("gsi: delegation read key: %w", err)
	}
	pub, err := x509.ParsePKIXPublicKey(pubDER)
	if err != nil {
		return fmt.Errorf("gsi: delegation bad public key: %w", err)
	}
	proxyCert, err := SignProxy(cred, pub, ProxyOptions{Lifetime: lifetime})
	if err != nil {
		return err
	}
	out := &Credential{
		Cert:  proxyCert,
		Chain: append([]*x509.Certificate{cred.Cert}, cred.Chain...),
	}
	bundle, err := out.EncodePEM()
	if err != nil {
		return err
	}
	if err := writeB64Line(rw, bundle); err != nil {
		return fmt.Errorf("gsi: delegation send bundle: %w", err)
	}
	return nil
}

func writeB64Line(w io.Writer, data []byte) error {
	_, err := fmt.Fprintf(w, "%s\n", base64.StdEncoding.EncodeToString(data))
	return err
}

// readB64Line reads a base64 line byte-by-byte so it never consumes bytes
// beyond the newline — delegation runs mid-stream on the control channel
// and must not swallow the protocol data that follows.
func readB64Line(r io.Reader) ([]byte, error) {
	var line []byte
	buf := make([]byte, 1)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if buf[0] == '\n' {
			break
		}
		line = append(line, buf[0])
		if len(line) > 4<<20 {
			return nil, fmt.Errorf("gsi: delegation message too large")
		}
	}
	return base64.StdEncoding.DecodeString(string(line))
}
