package gsi

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"
)

// Credential bundles a certificate, its private key, and the chain of
// intermediate/issuer certificates up to (and conventionally including)
// the root, matching the layout of a Globus proxy file.
type Credential struct {
	Cert  *x509.Certificate
	Key   *ecdsa.PrivateKey
	Chain []*x509.Certificate // issuer-first order, leaf's issuer at [0]

	// idOnce memoizes DN/Identity: both are pure functions of Cert, and
	// every data-channel setup consults Identity, so rebuilding the DN
	// string (and re-parsing it to strip proxy CNs) per connection showed
	// up in transfer profiles.
	idOnce   sync.Once
	subject  DN
	identity DN
}

func (c *Credential) resolveIdentity() {
	c.idOnce.Do(func() {
		c.subject = CertDN(c.Cert)
		d := c.subject
		for cn := d.LastCN(); isProxyCN(cn); cn = d.LastCN() {
			d = d.StripLastCN()
		}
		c.identity = d
	})
}

// DN returns the subject DN of the credential's certificate.
func (c *Credential) DN() DN { c.resolveIdentity(); return c.subject }

// Identity returns the credential's end-entity DN with any proxy CN
// markers stripped, i.e. the DN authorization decisions are made on.
func (c *Credential) Identity() DN {
	c.resolveIdentity()
	return c.identity
}

// Expired reports whether the certificate is outside its validity window.
func (c *Credential) Expired(now time.Time) bool {
	return now.After(c.Cert.NotAfter) || now.Before(c.Cert.NotBefore)
}

// FullChain returns the leaf followed by the chain, the order TLS expects.
func (c *Credential) FullChain() []*x509.Certificate {
	out := make([]*x509.Certificate, 0, len(c.Chain)+1)
	out = append(out, c.Cert)
	out = append(out, c.Chain...)
	return out
}

var serialMu sync.Mutex
var serialCounter = big.NewInt(time.Now().UnixNano() & 0xffffff)

func nextSerial() *big.Int {
	serialMu.Lock()
	defer serialMu.Unlock()
	serialCounter = new(big.Int).Add(serialCounter, big.NewInt(1))
	return new(big.Int).Set(serialCounter)
}

// CA is a certificate authority: a self-signed (or intermediate) CA
// credential plus issuance helpers.
type CA struct {
	Cred *Credential
}

// NewCA creates a self-signed root CA with the given subject DN.
func NewCA(subject DN, lifetime time.Duration) (*CA, error) {
	name, err := DNToName(subject)
	if err != nil {
		return nil, err
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	now := time.Now().Add(-time.Minute)
	tmpl := &x509.Certificate{
		SerialNumber:          nextSerial(),
		Subject:               name,
		NotBefore:             now,
		NotAfter:              now.Add(lifetime),
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign | x509.KeyUsageDigitalSignature,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Cred: &Credential{Cert: cert, Key: key}}, nil
}

// DN returns the CA's subject DN.
func (ca *CA) DN() DN { return ca.Cred.DN() }

// Certificate returns the CA certificate.
func (ca *CA) Certificate() *x509.Certificate { return ca.Cred.Cert }

// IssueOptions controls end-entity issuance.
type IssueOptions struct {
	Subject  DN
	Lifetime time.Duration
	// Host marks a host (server) certificate; otherwise a user certificate.
	Host bool
	// DNSNames are SANs for host certificates.
	DNSNames []string
}

// Issue creates an end-entity certificate signed by the CA and returns the
// full credential (with the CA cert in the chain).
func (ca *CA) Issue(opts IssueOptions) (*Credential, error) {
	if opts.Lifetime <= 0 {
		return nil, errors.New("gsi: issue: non-positive lifetime")
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	cert, err := ca.sign(&key.PublicKey, opts)
	if err != nil {
		return nil, err
	}
	return &Credential{Cert: cert, Key: key, Chain: []*x509.Certificate{ca.Cred.Cert}}, nil
}

// IssueForKey signs a certificate over a caller-supplied public key — the
// online-CA path, where the subscriber generates the key locally and only
// a signing request reaches the CA.
func (ca *CA) IssueForKey(pub crypto.PublicKey, opts IssueOptions) (*x509.Certificate, error) {
	if opts.Lifetime <= 0 {
		return nil, errors.New("gsi: issue: non-positive lifetime")
	}
	return ca.sign(pub, opts)
}

func (ca *CA) sign(pub crypto.PublicKey, opts IssueOptions) (*x509.Certificate, error) {
	pkixName, err := DNToName(opts.Subject)
	if err != nil {
		return nil, err
	}
	now := time.Now().Add(-time.Minute)
	notAfter := now.Add(opts.Lifetime)
	if notAfter.After(ca.Cred.Cert.NotAfter) {
		notAfter = ca.Cred.Cert.NotAfter
	}
	eku := []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth}
	if opts.Host {
		eku = append(eku, x509.ExtKeyUsageServerAuth)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          nextSerial(),
		Subject:               pkixName,
		NotBefore:             now,
		NotAfter:              notAfter,
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:           eku,
		BasicConstraintsValid: true,
		DNSNames:              opts.DNSNames,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cred.Cert, pub, ca.Cred.Key)
	if err != nil {
		return nil, err
	}
	return x509.ParseCertificate(der)
}

// SelfSignedCredential creates a standalone self-signed end-entity
// credential — the "random, self-signed certificate" clients may use as a
// high-security DCSC context (§V of the paper).
func SelfSignedCredential(subject DN, lifetime time.Duration) (*Credential, error) {
	name, err := DNToName(subject)
	if err != nil {
		return nil, err
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	now := time.Now().Add(-time.Minute)
	tmpl := &x509.Certificate{
		SerialNumber:          nextSerial(),
		Subject:               name,
		NotBefore:             now,
		NotAfter:              now.Add(lifetime),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth, x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Credential{Cert: cert, Key: key}, nil
}

// --- PEM bundle encoding (proxy-file layout: cert, key, chain) ---

// EncodePEM serializes the credential as certificate, private key, then
// chain certificates, matching the Globus proxy-file layout the DCSC P
// command transports.
func (c *Credential) EncodePEM() ([]byte, error) {
	var out []byte
	out = append(out, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: c.Cert.Raw})...)
	if c.Key != nil {
		kb, err := x509.MarshalECPrivateKey(c.Key)
		if err != nil {
			return nil, err
		}
		out = append(out, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: kb})...)
	}
	for _, cc := range c.Chain {
		out = append(out, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: cc.Raw})...)
	}
	return out, nil
}

// DecodePEM parses a credential bundle: the first certificate is the leaf,
// an optional private key may appear anywhere, remaining certificates form
// the chain (order preserved).
func DecodePEM(data []byte) (*Credential, error) {
	var cred Credential
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		switch block.Type {
		case "CERTIFICATE":
			cert, err := x509.ParseCertificate(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("gsi: bad certificate in bundle: %w", err)
			}
			if cred.Cert == nil {
				cred.Cert = cert
			} else {
				cred.Chain = append(cred.Chain, cert)
			}
		case "EC PRIVATE KEY":
			key, err := x509.ParseECPrivateKey(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("gsi: bad private key in bundle: %w", err)
			}
			if cred.Key != nil {
				return nil, errors.New("gsi: multiple private keys in bundle")
			}
			cred.Key = key
		default:
			return nil, fmt.Errorf("gsi: unexpected PEM block %q in bundle", block.Type)
		}
	}
	if cred.Cert == nil {
		return nil, errors.New("gsi: no certificate in bundle")
	}
	return &cred, nil
}

// EncodeCertPEM serializes a single certificate.
func EncodeCertPEM(cert *x509.Certificate) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: cert.Raw})
}

// DecodeCertPEM parses the first certificate in a PEM buffer.
func DecodeCertPEM(data []byte) (*x509.Certificate, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != "CERTIFICATE" {
		return nil, errors.New("gsi: no certificate PEM block")
	}
	return x509.ParseCertificate(block.Bytes)
}
