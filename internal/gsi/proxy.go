package gsi

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"fmt"
	"strconv"
	"time"
)

// proxyCNPrefix marks proxy certificates. RFC 3820 uses a numeric CN plus a
// ProxyCertInfo extension; legacy Globus proxies use CN=proxy. We follow the
// legacy convention ("proxy" or "limited proxy" or a numeric serial prefixed
// form) because it is self-describing in the DN, which is what the AUTHZ
// callout and gridmap matching operate on.
const (
	proxyCN        = "proxy"
	limitedProxyCN = "limited proxy"
)

// isProxyCN reports whether a CN value marks a proxy certificate level.
func isProxyCN(cn string) bool {
	if cn == proxyCN || cn == limitedProxyCN {
		return true
	}
	// RFC 3820 style: purely numeric CN.
	if cn == "" {
		return false
	}
	_, err := strconv.ParseUint(cn, 10, 64)
	return err == nil
}

// ProxyOptions controls proxy-certificate generation.
type ProxyOptions struct {
	// Lifetime of the proxy; clamped to the issuer's remaining lifetime.
	// Defaults to 12 hours, the conventional Globus proxy lifetime.
	Lifetime time.Duration
	// Limited marks a limited proxy (may authenticate but not be further
	// delegated for job submission; GridFTP treats it as a normal proxy).
	Limited bool
	// Key lets the caller supply the (remotely generated) key pair for
	// delegation; when nil a fresh key is generated.
	PublicKey crypto.PublicKey
}

// NewProxy derives a proxy credential from issuer: a fresh key pair and a
// certificate whose subject is the issuer's subject plus one proxy CN,
// signed by the issuer's (end-entity or proxy) key.
func NewProxy(issuer *Credential, opts ProxyOptions) (*Credential, error) {
	if issuer.Key == nil {
		return nil, errors.New("gsi: proxy issuer has no private key")
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	cert, err := SignProxy(issuer, &key.PublicKey, opts)
	if err != nil {
		return nil, err
	}
	chain := append([]*x509.Certificate{issuer.Cert}, issuer.Chain...)
	return &Credential{Cert: cert, Key: key, Chain: chain}, nil
}

// SignProxy signs a proxy certificate over pub with the issuer credential —
// the primitive used both locally (NewProxy) and for delegation, where the
// key pair lives on the remote end.
func SignProxy(issuer *Credential, pub crypto.PublicKey, opts ProxyOptions) (*x509.Certificate, error) {
	if issuer.Key == nil {
		return nil, errors.New("gsi: proxy issuer has no private key")
	}
	lifetime := opts.Lifetime
	if lifetime <= 0 {
		lifetime = 12 * time.Hour
	}
	cn := proxyCN
	if opts.Limited {
		cn = limitedProxyCN
	}
	subject := CertDN(issuer.Cert).AppendCN(cn)
	name, err := DNToName(subject)
	if err != nil {
		return nil, err
	}
	now := time.Now().Add(-time.Minute)
	notAfter := now.Add(lifetime)
	if notAfter.After(issuer.Cert.NotAfter) {
		notAfter = issuer.Cert.NotAfter
	}
	if !notAfter.After(now) {
		return nil, errors.New("gsi: issuer credential already expired")
	}
	tmpl := &x509.Certificate{
		SerialNumber:          nextSerial(),
		Subject:               name,
		NotBefore:             now,
		NotAfter:              notAfter,
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth, x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, issuer.Cert, pub, issuer.Key)
	if err != nil {
		return nil, err
	}
	return x509.ParseCertificate(der)
}

// IsProxy reports whether cert is a proxy certificate: its subject is its
// issuer's subject plus exactly one proxy-marker CN.
func IsProxy(cert *x509.Certificate) bool {
	subj := CertDN(cert)
	last := subj.LastCN()
	if !isProxyCN(last) {
		return false
	}
	return subj.StripLastCN() == IssuerDN(cert)
}

// ProxyDepth returns how many proxy levels the certificate's subject
// carries (0 for a plain end-entity certificate).
func ProxyDepth(cert *x509.Certificate) int {
	d := CertDN(cert)
	n := 0
	for isProxyCN(d.LastCN()) {
		n++
		d = d.StripLastCN()
	}
	return n
}

// BaseIdentity strips all proxy CN levels from the certificate's subject,
// yielding the end-entity identity DN.
func BaseIdentity(cert *x509.Certificate) DN {
	d := CertDN(cert)
	for isProxyCN(d.LastCN()) {
		d = d.StripLastCN()
	}
	return d
}

// ValidateProxyLink checks that child is a well-formed proxy issued by
// parent: subject derivation, signature, and nested validity window.
func ValidateProxyLink(child, parent *x509.Certificate, now time.Time) error {
	if !IsProxy(child) {
		return fmt.Errorf("gsi: %q is not a proxy certificate", CertDN(child))
	}
	if CertDN(child).StripLastCN() != CertDN(parent) {
		return fmt.Errorf("gsi: proxy subject %q not derived from issuer subject %q",
			CertDN(child), CertDN(parent))
	}
	if err := child.CheckSignatureFrom(parent); err != nil {
		// CheckSignatureFrom refuses non-CA issuers; fall back to a direct
		// signature check, which is exactly what GSI proxy validation does.
		if err := parent.CheckSignature(child.SignatureAlgorithm, child.RawTBSCertificate, child.Signature); err != nil {
			return fmt.Errorf("gsi: proxy signature invalid: %w", err)
		}
	}
	if now.Before(child.NotBefore) || now.After(child.NotAfter) {
		return fmt.Errorf("gsi: proxy certificate %q outside validity window", CertDN(child))
	}
	if child.NotAfter.After(parent.NotAfter) {
		return fmt.Errorf("gsi: proxy lifetime exceeds issuer lifetime")
	}
	return nil
}
