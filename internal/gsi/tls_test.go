package gsi

import (
	"net"
	"testing"
	"time"

	"gridftp.dev/instant/internal/netsim"
)

// handshakePair establishes a mutually authenticated TLS session between a
// simulated client and server and returns both verified identities.
func handshakePair(t *testing.T, clientCred, serverCred *Credential, clientTrust, serverTrust *TrustStore) (*VerifiedIdentity, *VerifiedIdentity, error) {
	t.Helper()
	nw := netsim.NewNetwork()
	l, err := nw.Listen("server", 2811)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type result struct {
		id  *VerifiedIdentity
		err error
	}
	srvCh := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			srvCh <- result{nil, err}
			return
		}
		tc, id, err := HandshakeServer(c, serverCred, serverTrust)
		if err == nil {
			// Complete one byte of application data so the client-side
			// handshake (which may finish lazily) is fully driven.
			buf := make([]byte, 1)
			tc.Read(buf)
			tc.Write([]byte{'y'})
			tc.Close()
		}
		srvCh <- result{id, err}
	}()

	conn, err := nw.Dial("client", "server:2811")
	if err != nil {
		t.Fatal(err)
	}
	tc, srvID, err := HandshakeClient(conn, clientCred, clientTrust)
	if err != nil {
		conn.Close()
		res := <-srvCh
		_ = res
		return nil, nil, err
	}
	tc.Write([]byte{'x'})
	buf := make([]byte, 1)
	tc.SetReadDeadline(time.Now().Add(5 * time.Second))
	tc.Read(buf)
	tc.Close()
	res := <-srvCh
	if res.err != nil {
		return nil, nil, res.err
	}
	return res.id, srvID, nil
}

func testSite(t *testing.T, caDN DN) (*CA, *Credential, *Credential) {
	t.Helper()
	ca := mustCA(t, caDN)
	host := mustIssue(t, ca, IssueOptions{Subject: caDN.StripLastCN().AppendCN("host-gridftp"), Host: true})
	user := mustIssue(t, ca, IssueOptions{Subject: caDN.StripLastCN().AppendCN("alice")})
	return ca, host, user
}

func TestTLSMutualAuthWithProxy(t *testing.T) {
	ca, host, user := testSite(t, "/O=Grid/CN=CA-A")
	proxy, err := NewProxy(user, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())

	clientID, serverID, err := handshakePair(t, proxy, host, trust, trust)
	if err != nil {
		t.Fatal(err)
	}
	if clientID.Identity != "/O=Grid/CN=alice" {
		t.Fatalf("server saw client identity %q", clientID.Identity)
	}
	if clientID.ProxyDepth != 1 {
		t.Fatalf("server saw proxy depth %d", clientID.ProxyDepth)
	}
	if serverID.Identity != "/O=Grid/CN=host-gridftp" {
		t.Fatalf("client saw server identity %q", serverID.Identity)
	}
}

func TestTLSRejectsCrossCA(t *testing.T) {
	caA, hostA, _ := testSite(t, "/O=Grid/CN=CA-A")
	_, _, userB := testSite(t, "/O=Grid/CN=CA-B")
	proxyB, err := NewProxy(userB, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Server trusts only CA-A; client presents a CA-B proxy.
	serverTrust := NewTrustStore()
	serverTrust.AddCA(caA.Certificate())
	clientTrust := serverTrust.Clone()
	if _, _, err := handshakePair(t, proxyB, hostA, clientTrust, serverTrust); err == nil {
		t.Fatal("handshake with untrusted client CA should fail")
	}
}

func TestTLSRejectsClientWithoutCert(t *testing.T) {
	ca, host, _ := testSite(t, "/O=Grid/CN=CA-A")
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())
	if _, _, err := handshakePair(t, nil, host, trust, trust); err == nil {
		t.Fatal("anonymous client should be rejected (control channel auth is obligatory)")
	}
}

func TestDelegationOverConn(t *testing.T) {
	ca, _, user := testSite(t, "/O=Grid/CN=CA-A")
	proxy, err := NewProxy(user, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()

	type res struct {
		cred *Credential
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			ch <- res{nil, err}
			return
		}
		defer c.Close()
		cred, err := AcceptDelegation(c)
		ch <- res{cred, err}
	}()
	c, err := nw.Dial("c", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := Delegate(c, proxy, time.Hour); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.cred.Key == nil {
		t.Fatal("delegated credential missing locally generated key")
	}
	if r.cred.Identity() != "/O=Grid/CN=alice" {
		t.Fatalf("delegated identity %q", r.cred.Identity())
	}
	if ProxyDepth(r.cred.Cert) != 2 {
		t.Fatalf("delegated proxy depth %d, want 2", ProxyDepth(r.cred.Cert))
	}
	// Delegated credential verifies against the CA.
	trust := NewTrustStore()
	trust.AddCA(ca.Certificate())
	if _, err := trust.Verify(r.cred.FullChain(), time.Now()); err != nil {
		t.Fatal(err)
	}
	// And the delegated credential can itself authenticate a TLS session.
	host := mustIssue(t, ca, IssueOptions{Subject: "/O=Grid/CN=host-x", Host: true})
	if _, _, err := handshakePair(t, r.cred, host, trust, trust); err != nil {
		t.Fatal(err)
	}
}

func TestDelegationDoesNotOverread(t *testing.T) {
	// Data written immediately after the delegation exchange must be
	// readable by both sides (no buffering swallowed it).
	_, _, user := testSite(t, "/O=Grid/CN=CA-A")
	proxy, _ := NewProxy(user, ProxyOptions{})
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()
	ch := make(chan error, 1)
	go func() {
		c, _ := l.Accept()
		defer c.Close()
		if _, err := AcceptDelegation(c); err != nil {
			ch <- err
			return
		}
		buf := make([]byte, 5)
		if _, err := readFull(c, buf); err != nil {
			ch <- err
			return
		}
		if string(buf) != "after" {
			ch <- &net.OpError{Op: "check"}
			return
		}
		ch <- nil
	}()
	c, _ := nw.Dial("c", "s:1")
	defer c.Close()
	if err := Delegate(c, proxy, time.Hour); err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("after"))
	if err := <-ch; err != nil {
		t.Fatalf("post-delegation data corrupted: %v", err)
	}
}

func readFull(c net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := c.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
