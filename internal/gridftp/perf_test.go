package gridftp

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
)

// TestPerfMarkerWireRoundTrip sends a 112 marker through a real control
// connection — WriteReply multi-line framing, ReadReply reassembly — and
// checks every field survives.
func TestPerfMarkerWireRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := ftp.NewConn(a), ftp.NewConn(b)

	want := PerfMarker{
		Timestamp:    time.Unix(1328000000, 250_000_000),
		Stripe:       3,
		StripeBytes:  1 << 20,
		TotalStripes: 4,
	}
	go ca.WriteReply(CodePerfMarker, perfMarkerLines(want)...)
	r, err := cb.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != CodePerfMarker {
		t.Fatalf("code %d, want %d", r.Code, CodePerfMarker)
	}
	got, ok := ParsePerfMarker(r)
	if !ok {
		t.Fatalf("ParsePerfMarker rejected %v", r.Lines)
	}
	if got.Stripe != want.Stripe || got.StripeBytes != want.StripeBytes || got.TotalStripes != want.TotalStripes {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// Timestamps are rendered with millisecond precision.
	if d := got.Timestamp.Sub(want.Timestamp); d < -2*time.Millisecond || d > 2*time.Millisecond {
		t.Fatalf("timestamp drift %v (got %v, want %v)", d, got.Timestamp, want.Timestamp)
	}
}

func TestParsePerfMarkerRejects(t *testing.T) {
	good := perfMarkerLines(PerfMarker{Stripe: 0, StripeBytes: 10, TotalStripes: 1})
	cases := []ftp.Reply{
		{Code: ftp.CodeRestartMarker, Lines: good},                  // wrong code
		{Code: CodePerfMarker, Lines: []string{"Range Marker 0-5"}}, // wrong body
		{Code: CodePerfMarker, Lines: good[:2]},                     // fields missing
		{Code: CodePerfMarker},                                      // empty
	}
	for i, r := range cases {
		if _, ok := ParsePerfMarker(r); ok {
			t.Errorf("case %d: reply %v should not parse as a perf marker", i, r.Lines)
		}
	}
}

// TestPerfTrackerEmitter drives the tracker from concurrent writers (as
// the data goroutines do) and checks the emitter's final flush carries the
// end totals for every stripe.
func TestPerfTrackerEmitter(t *testing.T) {
	tr := &perfTracker{}
	var wg sync.WaitGroup
	const stripes, adds, chunk = 4, 50, 1024
	for s := 0; s < stripes; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				tr.add(s, chunk)
			}
		}(s)
	}
	wg.Wait()
	if got := tr.total(); got != stripes*adds*chunk {
		t.Fatalf("tracker total %d, want %d", got, stripes*adds*chunk)
	}

	var markers []PerfMarker
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		perfEmitter(tr, time.Millisecond, func(m PerfMarker) { markers = append(markers, m) }, stop)
	}()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	<-done

	// The final flush reports every stripe with its end total.
	final := make(map[int]int64)
	for _, m := range markers {
		final[m.Stripe] = m.StripeBytes
		if m.TotalStripes != stripes {
			t.Errorf("marker reports %d total stripes, want %d", m.TotalStripes, stripes)
		}
	}
	if len(final) != stripes {
		t.Fatalf("markers covered %d stripes, want %d", len(final), stripes)
	}
	for s := 0; s < stripes; s++ {
		if final[s] != adds*chunk {
			t.Errorf("stripe %d final bytes %d, want %d", s, final[s], adds*chunk)
		}
	}
}

func TestPerfEmitterDisabled(t *testing.T) {
	tr := &perfTracker{}
	tr.add(0, 100)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		perfEmitter(tr, 0, func(PerfMarker) { t.Error("emitter fired with interval 0") }, stop)
	}()
	close(stop)
	<-done
}

// TestPerfMarkersDuringTransfer is the end-to-end round trip the ISSUE
// asks for: a multi-stripe MODE E PUT and GET against a live server, with
// the client parsing in-flight 112 replies; the per-stripe totals must sum
// to exactly the bytes on disk.
func TestPerfMarkersDuringTransfer(t *testing.T) {
	nw := netsim.NewNetwork()
	// Shape the link so writers are paced: with an unshaped pipe one fast
	// stream can drain the whole job queue before the others get
	// scheduled, collapsing the transfer to a single active stripe.
	nw.SetLink("laptop", "siteA", netsim.LinkParams{RTT: 2 * time.Millisecond})
	s := newSite(t, nw, "siteA", func(c *ServerConfig) {
		c.MarkerInterval = 5 * time.Millisecond
	})

	proxy, err := gsi.NewProxy(s.user, gsi.ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.Nop()
	c, err := DialWithOptions(nw.Host("laptop"), s.addr, proxy, s.trust, DialOptions{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Delegate(time.Hour); err != nil {
		t.Fatal(err)
	}
	const stripes = 4
	if err := c.SetParallelism(stripes); err != nil {
		t.Fatal(err)
	}

	var cbMarkers int
	c.OnPerf(func(m PerfMarker) {
		if m.StripeBytes <= 0 || m.Stripe < 0 || m.Stripe >= m.TotalStripes {
			t.Errorf("implausible marker %+v", m)
		}
		cbMarkers++
	})

	// PUT: the receiving server tracks per-stripe bytes and emits 112s on
	// our control channel while we send.
	payload := pattern(16*DefaultBlockSize + 12345)
	stats, err := c.Put("/perf.bin", dsi.NewBufferFile(payload))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != int64(len(payload)) {
		t.Fatalf("put moved %d bytes, want %d", stats.Bytes, len(payload))
	}
	total, gotStripes, markers := c.PerfSnapshot()
	if total != int64(len(payload)) {
		t.Fatalf("perf total %d, want %d (stripes %d, markers %d)", total, len(payload), gotStripes, markers)
	}
	if gotStripes < 2 || gotStripes > stripes {
		t.Errorf("perf markers covered %d stripes, want 2..%d (multi-stripe)", gotStripes, stripes)
	}
	if markers < gotStripes {
		t.Errorf("observed %d markers, want >= %d (one per active stripe)", markers, gotStripes)
	}
	if cbMarkers != markers {
		t.Errorf("OnPerf saw %d markers, PerfSnapshot counted %d", cbMarkers, markers)
	}
	if disk := s.readFile(t, "/perf.bin"); !bytes.Equal(disk, payload) {
		t.Fatalf("disk content mismatch (%d vs %d bytes)", len(disk), len(payload))
	}

	// GET: the sending server reports its stripes; totals must again match.
	dst := dsi.NewBufferFile(nil)
	if _, err := c.Get("/perf.bin", dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatalf("get content mismatch (%d vs %d bytes)", len(dst.Bytes()), len(payload))
	}
	total, gotStripes, _ = c.PerfSnapshot()
	if total != int64(len(payload)) {
		t.Fatalf("perf total after GET %d, want %d", total, len(payload))
	}
	if gotStripes < 2 || gotStripes > stripes {
		t.Errorf("GET perf markers covered %d stripes, want 2..%d", gotStripes, stripes)
	}

	// Client-side metrics fed by the marker stream and the send path.
	reg := o.Metrics
	if v := reg.Counter("gridftp.client.perf_markers").Value(); v <= 0 {
		t.Errorf("gridftp.client.perf_markers = %d, want > 0", v)
	}
	if v := reg.Counter("gridftp.client.bytes_sent").Value(); v != int64(len(payload)) {
		t.Errorf("gridftp.client.bytes_sent = %d, want %d", v, len(payload))
	}
	if v := reg.Gauge("gridftp.client.perf_bytes").Value(); v != int64(len(payload)) {
		t.Errorf("gridftp.client.perf_bytes gauge = %d, want %d", v, len(payload))
	}
}

// TestFeatAdvertisesPerf pins the FEAT listing: clients discover the
// extension before relying on 112 replies.
func TestFeatAdvertisesPerf(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), false)
	feats, err := c.Features()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range feats {
		if f == "PERF" {
			return
		}
	}
	t.Fatalf("FEAT does not advertise PERF: %v", feats)
}
