package gridftp

import (
	"strings"
	"testing"

	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/netsim"
)

// rawSession opens an authenticated control channel and returns the
// protocol-level connection for hand-driven command tests.
func rawSession(t *testing.T, s *site, nw *netsim.Network) *ftp.Conn {
	t.Helper()
	c := s.connect(t, nw.Host("laptop"), false)
	return c.ctrl
}

// TestServerSurvivesGarbageCommands throws malformed and unexpected input
// at an authenticated session: every line must produce an orderly error
// reply (or drop), never a hang or panic, and the session must remain
// usable afterwards.
func TestServerSurvivesGarbageCommands(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	ctrl := rawSession(t, s, nw)

	garbage := []string{
		"XYZZY",
		"RETR",                      // RETR with no path and no data channel
		"STOR /x",                   // STOR with no data channel
		"OPTS RETR Parallelism=0;",  // out of range
		"OPTS RETR Parallelism=-3;", // negative
		"OPTS RETR BlockSize=7;",    // too small
		"MODE Q",
		"TYPE Z",
		"PORT not-an-address",
		"SPOR",
		"REST -5",
		"REST 10-5",
		"ERET P x y /f",
		"DCSC",
		"CKSM MD5",
		"RNTO /x", // RNTO without RNFR
		"MLST /does/not/exist",
		"CWD /does/not/exist",
		"SIZE /does/not/exist",
	}
	for _, line := range garbage {
		name, params, _ := strings.Cut(line, " ")
		if err := ctrl.Cmd(name, "%s", params); err != nil {
			t.Fatalf("send %q: %v", line, err)
		}
		r, err := ctrl.ReadFinalReply(nil)
		if err != nil {
			t.Fatalf("no reply for %q: %v", line, err)
		}
		if r.Code < 400 {
			t.Errorf("garbage %q got success reply %s", line, r)
		}
	}
	// Session still healthy.
	if err := ctrl.Cmd("NOOP", ""); err != nil {
		t.Fatal(err)
	}
	if r, err := ctrl.ReadFinalReply(nil); err != nil || r.Code != 200 {
		t.Fatalf("session dead after garbage: %v %v", r, err)
	}
}

// TestServerRejectsOversizeParallelism guards the resource bound.
func TestServerRejectsOversizeParallelism(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	ctrl := rawSession(t, s, nw)
	ctrl.Cmd("OPTS", "RETR Parallelism=999,999,999;")
	r, err := ctrl.ReadFinalReply(nil)
	if err != nil || r.Code != ftp.CodeParamSyntaxError {
		t.Fatalf("parallelism 999: %v %v", r, err)
	}
}

// TestRelativePathsResolveAgainstCWD exercises CWD-relative addressing
// across command types.
func TestRelativePathsResolveAgainstCWD(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	if err := c.Mkdir("/deep"); err != nil {
		t.Fatal(err)
	}
	if err := c.Chdir("/deep"); err != nil {
		t.Fatal(err)
	}
	s.putFile(t, "/deep/rel.bin", pattern(100))
	if n, err := c.Size("rel.bin"); err != nil || n != 100 {
		t.Fatalf("relative SIZE: %d %v", n, err)
	}
	if _, err := c.Checksum("MD5", "rel.bin", 0, -1); err != nil {
		t.Fatalf("relative CKSM: %v", err)
	}
	if err := c.Rename("rel.bin", "rel2.bin"); err != nil {
		t.Fatalf("relative RNFR/RNTO: %v", err)
	}
	if err := c.Delete("rel2.bin"); err != nil {
		t.Fatalf("relative DELE: %v", err)
	}
}
