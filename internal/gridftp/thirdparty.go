package gridftp

import (
	"fmt"
	"time"

	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/obs"
)

// DCSCTarget selects which endpoint of a third-party transfer receives a
// DCSC command.
type DCSCTarget int

const (
	// DCSCNone sends no DCSC command (conventional DCAU: both endpoints
	// must trust each other's CA).
	DCSCNone DCSCTarget = iota
	// DCSCSource installs the context on the source (sending) server.
	DCSCSource
	// DCSCDest installs the context on the destination (receiving) server.
	DCSCDest
	// DCSCBoth installs the context on both servers — used with a random
	// self-signed credential for clients that "desire higher security"
	// (§V).
	DCSCBoth
)

// ThirdPartyOptions configure a third-party transfer.
type ThirdPartyOptions struct {
	// Striped requests SPAS/SPOR striped listeners on the destination.
	Striped bool
	// DCSC, when non-nil, is the credential installed per DCSCTarget.
	DCSC       *gsi.Credential
	DCSCTarget DCSCTarget
	// Restart seeds the transfer with already-received ranges.
	Restart []Range
	// OnMarker receives restart markers from the destination.
	OnMarker func([]Range)
	// Trace, when valid, is forwarded to both endpoints via SITE TRACE so
	// the source's RETR span and the destination's STOR span join the
	// caller's distributed trace. Endpoints without the TRACE feature
	// simply keep rooting their spans locally.
	Trace obs.SpanContext
}

// ThirdPartyResult reports the outcome.
type ThirdPartyResult struct {
	Duration time.Duration
	// Markers holds the last restart markers observed (for retries).
	Markers []Range
}

// ThirdParty performs a third-party transfer: the client directs src to
// send srcPath directly to dst as dstPath — data never touches the client
// (§II.C, §VII of the paper). The destination is the listener, the source
// issues the connects, exactly as the protocol requires.
func ThirdParty(src *Client, srcPath string, dst *Client, dstPath string, opts ThirdPartyOptions) (*ThirdPartyResult, error) {
	if opts.DCSC != nil {
		switch opts.DCSCTarget {
		case DCSCSource:
			if err := src.SendDCSC(opts.DCSC); err != nil {
				return nil, fmt.Errorf("gridftp: DCSC to source: %w", err)
			}
		case DCSCDest:
			if err := dst.SendDCSC(opts.DCSC); err != nil {
				return nil, fmt.Errorf("gridftp: DCSC to destination: %w", err)
			}
		case DCSCBoth:
			if err := src.SendDCSC(opts.DCSC); err != nil {
				return nil, fmt.Errorf("gridftp: DCSC to source: %w", err)
			}
			if err := dst.SendDCSC(opts.DCSC); err != nil {
				return nil, fmt.Errorf("gridftp: DCSC to destination: %w", err)
			}
		}
	}

	if opts.Trace.Valid() {
		if _, err := src.PropagateTrace(opts.Trace); err != nil {
			return nil, fmt.Errorf("gridftp: trace to source: %w", err)
		}
		if _, err := dst.PropagateTrace(opts.Trace); err != nil {
			return nil, fmt.Errorf("gridftp: trace to destination: %w", err)
		}
	}

	// Both endpoints must agree on the data channel parameters; the
	// client has already negotiated them per-session. Passive first: the
	// destination (receiver) listens.
	addrs, err := dst.Passive(opts.Striped)
	if err != nil {
		return nil, fmt.Errorf("gridftp: destination passive: %w", err)
	}
	if err := src.Port(addrs); err != nil {
		return nil, fmt.Errorf("gridftp: source port: %w", err)
	}
	if len(opts.Restart) > 0 {
		marker := FromRanges(opts.Restart).Marker()
		if _, err := dst.cmdExpect("REST", marker, ftp.CodeNeedAccount); err != nil {
			return nil, fmt.Errorf("gridftp: destination REST: %w", err)
		}
		if _, err := src.cmdExpect("REST", marker, ftp.CodeNeedAccount); err != nil {
			return nil, fmt.Errorf("gridftp: source REST: %w", err)
		}
	}

	start := time.Now()
	dst.resetPerf()
	var lastMarkers []Range

	// Issue STOR on the destination and RETR on the source; the replies
	// stream back concurrently on the two control channels.
	dst.countCommand("STOR")
	if err := dst.ctrl.Cmd("STOR", "%s", dstPath); err != nil {
		return nil, err
	}
	src.countCommand("RETR")
	if err := src.ctrl.Cmd("RETR", "%s", srcPath); err != nil {
		return nil, err
	}

	type final struct {
		reply ftp.Reply
		err   error
	}
	dstCh := make(chan final, 1)
	go func() {
		r, err := dst.ctrl.ReadFinalReply(func(p ftp.Reply) {
			if ranges := dst.handlePreliminary(p); ranges != nil {
				lastMarkers = ranges
				if opts.OnMarker != nil {
					opts.OnMarker(ranges)
				}
			}
		})
		dstCh <- final{r, err}
	}()
	srcReply, srcErr := src.ctrl.ReadFinalReply(nil)
	dstFinal := <-dstCh

	res := &ThirdPartyResult{Duration: time.Since(start), Markers: lastMarkers}
	if srcErr != nil {
		return res, fmt.Errorf("gridftp: source control channel: %w", srcErr)
	}
	if dstFinal.err != nil {
		return res, fmt.Errorf("gridftp: destination control channel: %w", dstFinal.err)
	}
	if err := srcReply.Err(); err != nil {
		return res, fmt.Errorf("gridftp: source: %w", err)
	}
	if err := dstFinal.reply.Err(); err != nil {
		return res, fmt.Errorf("gridftp: destination: %w", err)
	}
	return res, nil
}
