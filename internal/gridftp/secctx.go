package gridftp

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gridftp.dev/instant/internal/gsi"
)

// DCAUMode is the data channel authentication mode (RFC 2228 / GridFTP).
type DCAUMode byte

const (
	// DCAUNone disables data channel authentication entirely.
	DCAUNone DCAUMode = 'N'
	// DCAUSelf requires the peer to hold the session user's credential
	// (the GridFTP default for third-party transfers).
	DCAUSelf DCAUMode = 'A'
	// DCAUSubject requires a particular peer subject (unimplemented
	// subject pinning is treated as DCAUSelf plus a subject check).
	DCAUSubject DCAUMode = 'S'
)

// ProtLevel is the data channel protection level (PROT command).
type ProtLevel byte

const (
	// ProtClear: authenticate (per DCAU) then transfer in cleartext.
	ProtClear ProtLevel = 'C'
	// ProtSafe: integrity protection (HMAC framing) without encryption.
	ProtSafe ProtLevel = 'S'
	// ProtPrivate: full TLS encryption and integrity.
	ProtPrivate ProtLevel = 'P'
)

// SecurityContext is the security configuration applied to data channels:
// the credential to present and the trust used to validate the peer. DCSC
// (§V of the paper) swaps this context out per-session without touching
// the control channel login.
type SecurityContext struct {
	// Cred is presented on data channel handshakes.
	Cred *gsi.Credential
	// Trust validates the remote party. Per §V.A it combines the server's
	// default CA certificates (and their signing policies) with any
	// self-signed certificates delivered in a DCSC P command.
	Trust *gsi.TrustStore
	// ExpectIdentity, when non-empty, additionally pins the peer's GSI
	// identity (DCAU's mutual-validation of the *user's* credential).
	ExpectIdentity gsi.DN

	// cfgOnce memoizes the TLS configs so the N parallel data connections
	// of one transfer share a config (and crypto/tls's internal per-config
	// caches) instead of rebuilding certificate chains per connection.
	cfgOnce   sync.Once
	serverCfg *tls.Config
	clientCfg *tls.Config
}

// tlsConfig returns the memoized TLS config for the requested side.
func (ctx *SecurityContext) tlsConfig(isListener bool) *tls.Config {
	ctx.cfgOnce.Do(func() {
		ctx.serverCfg = gsi.ServerTLSConfig(ctx.Cred, ctx.Trust)
		ctx.clientCfg = gsi.ClientTLSConfig(ctx.Cred, ctx.Trust)
	})
	if isListener {
		return ctx.serverCfg
	}
	return ctx.clientCfg
}

// DecodeDCSCBlob parses the base64 payload of "DCSC P <blob>": a PEM
// bundle of certificate, private key, and optional extra certificates.
// It returns the credential plus a trust overlay built per §V.A: default
// roots plus all self-signed certificates from the blob.
func DecodeDCSCBlob(blob string, defaults *gsi.TrustStore) (*SecurityContext, error) {
	raw, err := base64.StdEncoding.DecodeString(blob)
	if err != nil {
		return nil, fmt.Errorf("gridftp: DCSC blob is not valid base64: %w", err)
	}
	cred, err := gsi.DecodePEM(raw)
	if err != nil {
		return nil, fmt.Errorf("gridftp: DCSC blob: %w", err)
	}
	if cred.Key == nil {
		return nil, errors.New("gridftp: DCSC blob missing private key")
	}
	trust := defaults.Clone()
	for _, cert := range cred.FullChain() {
		// Self-signed certificates in (1) and (3) become trust anchors;
		// no signing policy is required for them (§V.A).
		if gsi.CertDN(cert) == gsi.IssuerDN(cert) {
			if cert.IsCA {
				if err := trust.AddCA(cert); err != nil {
					return nil, err
				}
			} else {
				trust.AddDirect(cert)
			}
		}
	}
	return &SecurityContext{Cred: cred, Trust: trust}, nil
}

// EncodeDCSCBlob serializes a credential into the DCSC P payload form.
func EncodeDCSCBlob(cred *gsi.Credential) (string, error) {
	pemData, err := cred.EncodePEM()
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(pemData), nil
}

// secureData authenticates and protects one data connection according to
// dcau/prot. The listening side acts as TLS server. After authentication,
// ProtClear steps down to the raw connection and ProtSafe steps down to an
// HMAC-framed integrity layer keyed over the authenticated channel; both
// preserve DCAU's authentication guarantee while avoiding bulk encryption
// (which the paper notes costs an order of magnitude on fast links, §II.C).
func secureData(conn net.Conn, ctx *SecurityContext, dcau DCAUMode, prot ProtLevel, isListener bool) (net.Conn, error) {
	if dcau == DCAUNone {
		if prot != ProtClear {
			return nil, errors.New("gridftp: PROT requires DCAU")
		}
		return conn, nil
	}
	if ctx == nil || ctx.Cred == nil {
		return nil, errors.New("gridftp: data channel authentication requires a credential (delegate or DCSC first)")
	}
	var tc *tls.Conn
	if isListener {
		tc = tls.Server(conn, ctx.tlsConfig(true))
	} else {
		tc = tls.Client(conn, ctx.tlsConfig(false))
	}
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := tc.Handshake(); err != nil {
		return nil, fmt.Errorf("gridftp: data channel auth: %w", err)
	}
	conn.SetDeadline(time.Time{})
	id, err := gsi.PeerIdentity(tc, ctx.Trust)
	if err != nil {
		return nil, fmt.Errorf("gridftp: data channel peer: %w", err)
	}
	if ctx.ExpectIdentity != "" && id.Identity != ctx.ExpectIdentity {
		return nil, fmt.Errorf("gridftp: data channel peer identity %q, want %q", id.Identity, ctx.ExpectIdentity)
	}
	switch prot {
	case ProtPrivate:
		return tc, nil
	case ProtClear, ProtSafe:
		return stepDown(tc, conn, prot, isListener)
	default:
		return nil, fmt.Errorf("gridftp: unknown PROT level %c", prot)
	}
}

// stepDown finishes the authenticated TLS exchange and continues on the
// raw connection, optionally inserting an integrity layer. The exchange is
// over-read-proof in both data directions:
//
//   - the listener TLS-writes the integrity key and then raw-reads a
//     one-byte ack, so its tls.Conn performs no reads after the handshake
//     and cannot buffer raw-phase bytes;
//   - the connector TLS-reads the key — at which point the listener has
//     sent nothing further, so there is nothing to over-read — and then
//     raw-writes the ack;
//   - whichever side sends application data does so only after the ack,
//     by which time both tls.Conn objects are quiesced.
func stepDown(tc *tls.Conn, raw net.Conn, prot ProtLevel, isListener bool) (net.Conn, error) {
	var key [32]byte
	var ack [1]byte
	if isListener {
		if prot == ProtSafe {
			if _, err := rand.Read(key[:]); err != nil {
				return nil, err
			}
		}
		if _, err := tc.Write(key[:]); err != nil {
			return nil, fmt.Errorf("gridftp: step-down send: %w", err)
		}
		if _, err := io.ReadFull(raw, ack[:]); err != nil {
			return nil, fmt.Errorf("gridftp: step-down ack: %w", err)
		}
	} else {
		if _, err := io.ReadFull(tc, key[:]); err != nil {
			return nil, fmt.Errorf("gridftp: step-down recv: %w", err)
		}
		ack[0] = 0x17
		if _, err := raw.Write(ack[:]); err != nil {
			return nil, fmt.Errorf("gridftp: step-down ack: %w", err)
		}
	}
	if prot == ProtClear {
		return raw, nil
	}
	return newIntegrityConn(raw, key), nil
}

// integrityConn provides integrity-only protection (PROT S): payload
// frames carry an HMAC-SHA256 tag with a per-direction sequence number,
// detecting tampering, truncation, and reordering without encrypting.
type integrityConn struct {
	net.Conn
	key     [32]byte
	rbuf    []byte // decoded-but-unread payload
	rseq    uint64
	wseq    uint64
	scratch []byte
}

func newIntegrityConn(conn net.Conn, key [32]byte) *integrityConn {
	return &integrityConn{Conn: conn, key: key}
}

const integrityTagLen = 32
const maxIntegrityFrame = 1 << 20

func (c *integrityConn) mac(seq uint64, payload []byte) []byte {
	m := hmac.New(sha256.New, c.key[:])
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], seq)
	m.Write(s[:])
	m.Write(payload)
	return m.Sum(nil)
}

// Write implements net.Conn with [len(4)][payload][tag(32)] framing.
func (c *integrityConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxIntegrityFrame {
			n = maxIntegrityFrame
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(n))
		tag := c.mac(c.wseq, p[:n])
		c.wseq++
		if _, err := c.Conn.Write(hdr[:]); err != nil {
			return total, err
		}
		if _, err := c.Conn.Write(p[:n]); err != nil {
			return total, err
		}
		if _, err := c.Conn.Write(tag); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// Read implements net.Conn, verifying each frame's tag.
func (c *integrityConn) Read(p []byte) (int, error) {
	if len(c.rbuf) == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(c.Conn, hdr[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxIntegrityFrame {
			return 0, fmt.Errorf("gridftp: integrity frame too large (%d)", n)
		}
		if cap(c.scratch) < int(n)+integrityTagLen {
			c.scratch = make([]byte, n+integrityTagLen)
		}
		buf := c.scratch[:int(n)+integrityTagLen]
		if _, err := io.ReadFull(c.Conn, buf); err != nil {
			return 0, err
		}
		payload, tag := buf[:n], buf[n:]
		want := c.mac(c.rseq, payload)
		c.rseq++
		if !hmac.Equal(tag, want) {
			return 0, errors.New("gridftp: data channel integrity check failed")
		}
		c.rbuf = payload
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// CloseWrite forwards half-close to the transport.
func (c *integrityConn) CloseWrite() error {
	if hc, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return hc.CloseWrite()
	}
	return nil
}
