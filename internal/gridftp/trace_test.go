package gridftp

import (
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
)

// obsSite builds a site whose server records into a fresh obs bundle.
func obsSite(t *testing.T, nw *netsim.Network, name string, mut ...func(*ServerConfig)) (*site, *obs.Obs) {
	t.Helper()
	o := obs.Nop()
	muts := append([]func(*ServerConfig){func(cfg *ServerConfig) { cfg.Obs = o }}, mut...)
	return newSite(t, nw, name, muts...), o
}

func TestSiteHelpAndUnknown(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), false)

	r, err := c.cmdExpect("SITE", "HELP", 200)
	if err != nil {
		t.Fatalf("SITE HELP: %v", err)
	}
	text := strings.Join(r.Lines, "\n")
	for _, want := range []string{"HELP", "TRACE"} {
		if !strings.Contains(text, want) {
			t.Errorf("SITE HELP missing %q:\n%s", want, text)
		}
	}

	if _, err := c.cmdExpect("SITE", "FROBNICATE", 500); err != nil {
		t.Fatalf("unknown SITE subcommand: want 500, got %v", err)
	}
	if _, err := c.cmdExpect("SITE", "", 501); err != nil {
		t.Fatalf("bare SITE: want 501, got %v", err)
	}
	// The session must still work after rejected SITE commands.
	if err := c.Noop(); err != nil {
		t.Fatalf("session poisoned after SITE errors: %v", err)
	}
}

func TestSiteTraceBindsTransferSpans(t *testing.T) {
	nw := netsim.NewNetwork()
	s, o := obsSite(t, nw, "siteA")
	s.putFile(t, "/data.bin", pattern(128<<10))
	c := s.connect(t, nw.Host("laptop"), true)

	if !c.SupportsTrace() {
		t.Fatal("server should advertise TRACE")
	}
	caller := obs.NewTracer()
	parent := caller.StartSpan("task")
	joined, err := c.PropagateTrace(parent.Context())
	if err != nil || !joined {
		t.Fatalf("PropagateTrace: joined=%v err=%v", joined, err)
	}

	if _, err := c.Get("/data.bin", dsi.NewBufferFile(nil)); err != nil {
		t.Fatal(err)
	}

	var retr *obs.SpanInfo
	for _, si := range o.Trace.Spans() {
		if si.Name == "gridftp.retr" {
			retr = &si
			break
		}
	}
	if retr == nil {
		t.Fatalf("no gridftp.retr span recorded; have %v", o.Trace.Spans())
	}
	if retr.TraceID != parent.TraceID.String() {
		t.Errorf("retr span trace id = %s, want %s", retr.TraceID, parent.TraceID)
	}
	if retr.ParentSpanID != parent.SpanID.String() {
		t.Errorf("retr span parent = %s, want %s", retr.ParentSpanID, parent.SpanID)
	}
	if !retr.Ended {
		t.Error("retr span not ended")
	}
	if retr.Attrs["path"] != "/data.bin" {
		t.Errorf("retr span path attr = %q", retr.Attrs["path"])
	}
}

func TestSiteTraceMalformedDoesNotPoisonSession(t *testing.T) {
	nw := netsim.NewNetwork()
	s, o := obsSite(t, nw, "siteA")
	s.putFile(t, "/data.bin", pattern(64<<10))
	c := s.connect(t, nw.Host("laptop"), true)

	for _, bad := range []string{"TRACE", "TRACE nonsense", "TRACE 00-zz-zz-01"} {
		if _, err := c.cmdExpect("SITE", bad, 501); err != nil {
			t.Fatalf("SITE %s: want 501, got %v", bad, err)
		}
	}
	// The transfer still works, and its span roots locally (fresh trace).
	if _, err := c.Get("/data.bin", dsi.NewBufferFile(nil)); err != nil {
		t.Fatalf("session poisoned after malformed SITE TRACE: %v", err)
	}
	for _, si := range o.Trace.Spans() {
		if si.Name == "gridftp.retr" {
			if si.ParentSpanID != "" {
				t.Errorf("span should root locally after rejected traceparent, parent=%s", si.ParentSpanID)
			}
			if si.TraceID == "" {
				t.Error("locally rooted span has no trace id")
			}
			return
		}
	}
	t.Fatal("no gridftp.retr span recorded")
}

// TestSiteTraceMalformedKeepsPriorContext proves a rejected traceparent
// leaves a previously installed context in force.
func TestSiteTraceMalformedKeepsPriorContext(t *testing.T) {
	nw := netsim.NewNetwork()
	s, o := obsSite(t, nw, "siteA")
	s.putFile(t, "/data.bin", pattern(8<<10))
	c := s.connect(t, nw.Host("laptop"), true)

	caller := obs.NewTracer()
	parent := caller.StartSpan("task")
	if joined, err := c.PropagateTrace(parent.Context()); err != nil || !joined {
		t.Fatalf("PropagateTrace: joined=%v err=%v", joined, err)
	}
	if _, err := c.cmdExpect("SITE", "TRACE garbage", 501); err != nil {
		t.Fatalf("want 501, got %v", err)
	}
	if _, err := c.Get("/data.bin", dsi.NewBufferFile(nil)); err != nil {
		t.Fatal(err)
	}
	for _, si := range o.Trace.Spans() {
		if si.Name == "gridftp.retr" {
			if si.TraceID != parent.TraceID.String() {
				t.Errorf("prior trace context lost: got %s want %s", si.TraceID, parent.TraceID)
			}
			return
		}
	}
	t.Fatal("no gridftp.retr span recorded")
}

func TestTraceDisabledDegradesGracefully(t *testing.T) {
	nw := netsim.NewNetwork()
	s, o := obsSite(t, nw, "siteA", func(cfg *ServerConfig) { cfg.DisableTrace = true })
	s.putFile(t, "/data.bin", pattern(32<<10))
	c := s.connect(t, nw.Host("laptop"), true)

	if c.SupportsTrace() {
		t.Fatal("DisableTrace server must not advertise TRACE")
	}
	caller := obs.NewTracer()
	parent := caller.StartSpan("task")
	joined, err := c.PropagateTrace(parent.Context())
	if err != nil {
		t.Fatalf("PropagateTrace against no-TRACE server must not error: %v", err)
	}
	if joined {
		t.Fatal("PropagateTrace should report not joined")
	}
	// SITE TRACE sent anyway is rejected as unknown, and SITE HELP hides it.
	if _, err := c.cmdExpect("SITE", "TRACE "+obs.Inject(parent.Context()), 500); err != nil {
		t.Fatalf("SITE TRACE on disabled server: want 500, got %v", err)
	}
	r, err := c.cmdExpect("SITE", "HELP", 200)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Join(r.Lines, "\n"), "TRACE") {
		t.Error("SITE HELP should not list TRACE when disabled")
	}
	// Transfers still work; spans root locally.
	if _, err := c.Get("/data.bin", dsi.NewBufferFile(nil)); err != nil {
		t.Fatal(err)
	}
	for _, si := range o.Trace.Spans() {
		if si.Name == "gridftp.retr" && si.TraceID == parent.TraceID.String() {
			t.Error("span joined remote trace despite DisableTrace")
		}
	}
}

func TestThirdPartyTraceJoinsBothEndpoints(t *testing.T) {
	nw := netsim.NewNetwork()
	srcSite, srcObs := obsSite(t, nw, "src")
	dstSite, dstObs := obsSite(t, nw, "dst")
	// Cross-trust so the third-party data channels authenticate.
	srcSite.trust.AddCA(dstSite.ca.Certificate())
	dstSite.trust.AddCA(srcSite.ca.Certificate())
	dstSite.gridmap.AddEntry(srcSite.user.DN(), "alice")
	srcSite.putFile(t, "/src.bin", pattern(256<<10))

	laptop := nw.Host("laptop")
	src := srcSite.connect(t, laptop, true)
	proxy, err := gsi.NewProxy(srcSite.user, gsi.ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Dial(laptop, dstSite.addr, proxy, dstSite.trust)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dst.Close() })
	if err := dst.Delegate(time.Hour); err != nil {
		t.Fatal(err)
	}

	caller := obs.NewTracer()
	parent := caller.StartSpan("task")
	if _, err := ThirdParty(src, "/src.bin", dst, "/dst.bin", ThirdPartyOptions{
		Trace: parent.Context(),
	}); err != nil {
		t.Fatal(err)
	}
	if got := dstSite.readFile(t, "/dst.bin"); len(got) != 256<<10 {
		t.Fatalf("destination file has %d bytes", len(got))
	}

	check := func(o *obs.Obs, name string) {
		t.Helper()
		for _, si := range o.Trace.Spans() {
			if si.Name == name {
				if si.TraceID != parent.TraceID.String() {
					t.Errorf("%s trace id = %s, want %s", name, si.TraceID, parent.TraceID)
				}
				if si.ParentSpanID != parent.SpanID.String() {
					t.Errorf("%s parent = %s, want %s", name, si.ParentSpanID, parent.SpanID)
				}
				return
			}
		}
		t.Errorf("no %s span recorded", name)
	}
	check(srcObs, "gridftp.retr")
	check(dstObs, "gridftp.stor")
}
