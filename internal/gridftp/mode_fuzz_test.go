package gridftp

import (
	"bytes"
	"testing"
)

// FuzzReadBlock exercises the MODE E block parser against adversarial
// wire bytes: truncated headers, flag combinations, oversize counts, and
// zero-count control blocks. Invariants: no panic, the negotiated length
// limit is enforced, a successful parse reports exactly Count payload
// bytes, and every accepted block round-trips through WriteBlock.
func FuzzReadBlock(f *testing.F) {
	frame := func(desc byte, count, offset uint64, payload []byte) []byte {
		b := make([]byte, blockHeaderLen+len(payload))
		putBlockHeader(b, desc, count, offset)
		copy(b[blockHeaderLen:], payload)
		return b
	}
	f.Add([]byte{})                                                           // empty stream
	f.Add([]byte{DescEOD, 0x00, 0x01})                                        // truncated header
	f.Add(frame(DescEOF, 0, 4, nil))                                          // EOF control: stream count in offset
	f.Add(frame(DescEOD, 0, 0, nil))                                          // EOD control
	f.Add(frame(DescEOF|DescEOD, 0, 1, nil))                                  // EOF+EOD combo
	f.Add(frame(DescRestartable, 5, 1024, []byte("hello")))                   // ordinary data block
	f.Add(frame(DescRestartable|DescEOD, 3, 0, []byte("end")))                // data block closing its stream
	f.Add(frame(DescRestartable, 1<<40, 0, nil))                              // oversize count
	f.Add(frame(0, 8, 0, []byte("shrt")))                                     // count larger than payload
	f.Add(append(frame(0, 2, 0, []byte("ab")), frame(DescEOD, 0, 0, nil)...)) // two blocks back to back

	f.Fuzz(func(t *testing.T, raw []byte) {
		const limit = 1 << 16
		b, _, err := ReadBlock(bytes.NewReader(raw), nil, limit)
		if err != nil {
			return
		}
		if b.Count > limit {
			t.Fatalf("accepted block of length %d past limit %d", b.Count, limit)
		}
		if uint64(len(b.Data)) != b.Count {
			t.Fatalf("Count %d but %d payload bytes", b.Count, len(b.Data))
		}
		var out bytes.Buffer
		if err := WriteBlock(&out, &b); err != nil {
			t.Fatalf("round-trip write: %v", err)
		}
		rb, _, err := ReadBlock(&out, nil, limit)
		if err != nil {
			t.Fatalf("round-trip read: %v", err)
		}
		if rb.Desc != b.Desc || rb.Count != b.Count || rb.Offset != b.Offset || !bytes.Equal(rb.Data, b.Data) {
			t.Fatalf("round-trip mismatch: %+v != %+v", rb, b)
		}
	})
}
