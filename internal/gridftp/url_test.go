package gridftp

import "testing"

func TestParseURL(t *testing.T) {
	cases := []struct {
		in   string
		want URL
	}{
		{"gsiftp://siteA/data/x.bin", URL{"gsiftp", "siteA:2811", "/data/x.bin"}},
		{"gsiftp://siteA:3000/x", URL{"gsiftp", "siteA:3000", "/x"}},
		{"sshftp://siteB/y", URL{"sshftp", "siteB:22", "/y"}},
		{"file:/tmp/z", URL{"file", "", "/tmp/z"}},
		{"file:///tmp/z", URL{"file", "", "/tmp/z"}},
		{"gsiftp://siteA/", URL{"gsiftp", "siteA:2811", "/"}},
	}
	for _, tc := range cases {
		got, err := ParseURL(tc.in)
		if err != nil {
			t.Errorf("ParseURL(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseURL(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if got.IsLocal() != (tc.want.Scheme == "file") {
			t.Errorf("IsLocal(%q)", tc.in)
		}
	}
	for _, bad := range []string{"", "http://x/y", "gsiftp:///nohost", "no-scheme", "file:relative"} {
		if _, err := ParseURL(bad); err == nil {
			t.Errorf("ParseURL(%q) should fail", bad)
		}
	}
	// Round trip via String.
	u, _ := ParseURL("gsiftp://siteA:2811/a/b")
	if u.String() != "gsiftp://siteA:2811/a/b" {
		t.Fatalf("String: %s", u)
	}
	f, _ := ParseURL("file:/a")
	if f.String() != "file:/a" {
		t.Fatalf("String: %s", f)
	}
}
