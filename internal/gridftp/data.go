package gridftp

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/usagestats"
	"gridftp.dev/instant/internal/xio"
)

// deflateDriver is the shared MODE E compression driver: one instance,
// because its flate writer/reader pools are what make per-channel
// compression affordable on channel-caching workloads.
var deflateDriver = &xio.DeflateDriver{}

// maybeDeflate layers DEFLATE over a secured channel when the session
// negotiated "OPTS RETR Deflate=1;". Compression sits above the security
// layer (compress-then-encrypt) and below the MODE E framing, so block
// headers and payload travel as one continuous DEFLATE stream that
// survives pooled-channel reuse.
func maybeDeflate(sec net.Conn, on bool) net.Conn {
	if !on {
		return sec
	}
	return deflateDriver.Wrap(sec)
}

func msDuration(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

// dataTimeout returns the configured wait bound for data connections.
func (sess *session) dataTimeout() time.Duration {
	if d := sess.srv.cfg.DataTimeout; d > 0 {
		return d
	}
	return 30 * time.Second
}

// dataChannel is one established (and secured) data connection.
type dataChannel struct {
	raw net.Conn
	sec net.Conn
	// acceptor records the TCP role (and hence TLS role) this end played.
	acceptor bool
}

func (d *dataChannel) close() {
	d.raw.Close()
}

// sessionData manages a session's data channel state: passive listeners,
// active targets, and the cross-transfer channel cache. Channel caching
// avoids re-paying connection setup and DCAU handshakes for every file,
// which is what makes lots-of-small-files workloads viable (§II.A [11]).
// Both ends of a session see the same negotiation commands, so their
// pools flush in lockstep and stay consistent.
type sessionData struct {
	listeners []net.Listener
	portAddrs []string

	// acceptCh/acceptErr are fed by one pump goroutine per listener,
	// started when the listeners open. A single owner per listener is
	// essential: per-transfer Accept goroutines would race and strand
	// connections in abandoned channels when a transfer is canceled.
	acceptCh  chan net.Conn
	acceptErr chan error

	// pools of idle channels, by TCP role.
	pooledAccepted []*dataChannel
	pooledDialed   []*dataChannel

	cacheDisabled bool
}

// startPumps launches one accept pump per listener. Pumps exit when their
// listener closes.
func (d *sessionData) startPumps() {
	d.acceptCh = make(chan net.Conn, 64)
	d.acceptErr = make(chan error, len(d.listeners))
	for _, l := range d.listeners {
		go func(l net.Listener, conns chan net.Conn, errs chan error) {
			for {
				c, err := l.Accept()
				if err != nil {
					errs <- err
					return
				}
				select {
				case conns <- c:
				default:
					c.Close() // backlog overflow: refuse
				}
			}
		}(l, d.acceptCh, d.acceptErr)
	}
}

// flush closes every pooled channel; called whenever the data channel
// parameters (mode, parallelism, protection, DCSC) change.
func (d *sessionData) flush() {
	for _, ch := range d.pooledAccepted {
		ch.close()
	}
	for _, ch := range d.pooledDialed {
		ch.close()
	}
	d.pooledAccepted = nil
	d.pooledDialed = nil
}

// closeAll tears down all data state at session end.
func (d *sessionData) closeAll() {
	d.flush()
	for _, l := range d.listeners {
		l.Close()
	}
	d.listeners = nil
}

func (d *sessionData) closeListeners() {
	for _, l := range d.listeners {
		l.Close()
	}
	d.listeners = nil
}

// handlePassive opens listener(s) and reports their addresses. For a
// striped server, SPAS opens one listener per stripe node (§II.B); PASV
// opens a single listener on the PI host.
func (sess *session) handlePassive(striped bool) {
	sess.data.closeListeners()
	sess.data.flush()
	sess.data.portAddrs = nil

	hosts := []interface {
		Listen(port int) (net.Listener, error)
	}{sess.srv.host}
	if striped && len(sess.srv.cfg.StripeNodes) > 0 {
		hosts = hosts[:0]
		for _, n := range sess.srv.cfg.StripeNodes {
			hosts = append(hosts, n.Host)
		}
	}
	var addrs []string
	for _, h := range hosts {
		l, err := h.Listen(0)
		if err != nil {
			sess.data.closeListeners()
			sess.reply(ftp.CodeCantOpenData, errText(err))
			return
		}
		sess.data.listeners = append(sess.data.listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	sess.data.startPumps()
	if striped {
		lines := append([]string{"Entering Striped Passive Mode"}, addrs...)
		lines = append(lines, "End")
		sess.reply(ftp.CodeEnteringExtPasv, lines...)
		return
	}
	sess.reply(ftp.CodeEnteringPassive, fmt.Sprintf("Entering Passive Mode (%s)", addrs[0]))
}

// handlePort records the remote data address(es) for active transfers.
func (sess *session) handlePort(params string, striped bool) {
	addrs := strings.Fields(params)
	if len(addrs) == 0 {
		sess.reply(ftp.CodeParamSyntaxError, "No data address given")
		return
	}
	if !striped && len(addrs) > 1 {
		sess.reply(ftp.CodeParamSyntaxError, "PORT takes one address (use SPOR)")
		return
	}
	for _, a := range addrs {
		if _, _, err := net.SplitHostPort(a); err != nil {
			sess.reply(ftp.CodeParamSyntaxError, "Bad data address "+a)
			return
		}
	}
	sess.data.closeListeners()
	sess.data.flush()
	sess.data.portAddrs = addrs
	sess.reply(ftp.CodeOK, "Data address(es) accepted")
}

// dialHosts returns the hosts outbound data connections originate from:
// the stripe nodes for a striped server, else the PI host.
func (sess *session) dialHosts() []*dialHost {
	tr := sess.spec.Transport
	if len(sess.srv.cfg.StripeNodes) > 0 {
		out := make([]*dialHost, len(sess.srv.cfg.StripeNodes))
		for i, n := range sess.srv.cfg.StripeNodes {
			out[i] = &dialHost{host: n.Host, tr: tr}
		}
		return out
	}
	return []*dialHost{{host: sess.srv.host, tr: tr}}
}

type dialHost struct {
	host *netsim.Host
	tr   netsim.Transport
}

func (d *dialHost) dial(target string) (net.Conn, error) {
	return d.host.DialTransport(target, d.tr)
}

// establishChannels produces n secured data channels, reusing the pool
// when possible. Dialed channels connect round-robin from the dial hosts
// to the stored port addresses; accepted channels come off the passive
// listeners.
func (sess *session) establishChannels(n int) ([]*dataChannel, error) {
	d := &sess.data
	switch {
	case len(d.portAddrs) > 0:
		if len(d.pooledDialed) == n {
			chans := d.pooledDialed
			d.pooledDialed = nil
			return chans, nil
		}
		for _, ch := range d.pooledDialed {
			ch.close()
		}
		d.pooledDialed = nil
		hosts := sess.dialHosts()
		// Establish all channels concurrently: connection setup and DCAU
		// handshakes would otherwise serialize N round trips.
		chans := make([]*dataChannel, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				addr := d.portAddrs[i%len(d.portAddrs)]
				raw, err := hosts[i%len(hosts)].dial(addr)
				if err != nil {
					errs[i] = fmt.Errorf("dial data %s: %w", addr, err)
					return
				}
				sec, err := secureData(raw, sess.dataContext(), sess.spec.DCAU, sess.spec.Prot, false)
				if err != nil {
					raw.Close()
					errs[i] = err
					return
				}
				chans[i] = &dataChannel{raw: raw, sec: maybeDeflate(sec, sess.spec.Deflate)}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				closeChannels(compactChannels(chans))
				return nil, err
			}
		}
		return chans, nil
	case len(d.listeners) > 0:
		if len(d.pooledAccepted) == n {
			chans := d.pooledAccepted
			d.pooledAccepted = nil
			return chans, nil
		}
		for _, ch := range d.pooledAccepted {
			ch.close()
		}
		d.pooledAccepted = nil
		// Accept serially (one listener feed) but run the DCAU handshakes
		// concurrently so N connections cost one handshake latency.
		accept := sess.multiAccept()
		chans := make([]*dataChannel, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			raw, err := accept(nil)
			if err != nil {
				wg.Wait()
				closeChannels(compactChannels(chans))
				return nil, fmt.Errorf("accept data: %w", err)
			}
			wg.Add(1)
			go func(i int, raw net.Conn) {
				defer wg.Done()
				sec, err := secureData(raw, sess.dataContext(), sess.spec.DCAU, sess.spec.Prot, true)
				if err != nil {
					raw.Close()
					errs[i] = err
					return
				}
				chans[i] = &dataChannel{raw: raw, sec: maybeDeflate(sec, sess.spec.Deflate), acceptor: true}
			}(i, raw)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				closeChannels(compactChannels(chans))
				return nil, err
			}
		}
		return chans, nil
	default:
		return nil, errors.New("no data channel established (use PASV/SPAS or PORT/SPOR)")
	}
}

// multiAccept returns an accept function fed by the session's listener
// pumps. It honors the stop channel so a receive that has already
// concluded does not leave an accept blocked for its full timeout.
func (sess *session) multiAccept() func(stop <-chan struct{}) (net.Conn, error) {
	conns, errs := sess.data.acceptCh, sess.data.acceptErr
	return func(stop <-chan struct{}) (net.Conn, error) {
		if conns == nil {
			return nil, errors.New("no passive listeners")
		}
		if stop == nil {
			stop = make(chan struct{})
		}
		t := time.NewTimer(sess.dataTimeout())
		defer t.Stop()
		select {
		case c := <-conns:
			return c, nil
		case err := <-errs:
			return nil, err
		case <-stop:
			return nil, errors.New("transfer concluded")
		case <-t.C:
			return nil, errors.New("timed out waiting for data connection")
		}
	}
}

func closeChannels(chans []*dataChannel) {
	for _, ch := range chans {
		ch.close()
	}
}

// parallelSecureAccept turns a raw accept source into one that performs
// DCAU handshakes concurrently: a pump goroutine keeps accepting raw
// connections and securing each on its own goroutine, so N inbound
// channels cost one handshake latency instead of N. onNew is invoked
// (serialized) with each secured channel so the caller can track it for
// pooling. The pump stops when stop closes or the raw source fails.
func parallelSecureAccept(rawAccept func(stop <-chan struct{}) (net.Conn, error),
	ctx *SecurityContext, dcau DCAUMode, prot ProtLevel, deflate bool,
	onNew func(*dataChannel)) func(stop <-chan struct{}) (net.Conn, error) {

	secured := make(chan net.Conn, 64)
	errCh := make(chan error, 1)
	var once sync.Once
	var mu sync.Mutex

	start := func(stop <-chan struct{}) {
		go func() {
			for {
				raw, err := rawAccept(stop)
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				go func(raw net.Conn) {
					sec, err := secureData(raw, ctx, dcau, prot, true)
					if err != nil {
						raw.Close()
						select {
						case errCh <- err:
						default:
						}
						return
					}
					sec = maybeDeflate(sec, deflate)
					mu.Lock()
					onNew(&dataChannel{raw: raw, sec: sec, acceptor: true})
					mu.Unlock()
					select {
					case secured <- sec:
					case <-stop:
						// Transfer concluded before this channel was used.
					}
				}(raw)
			}
		}()
	}

	return func(stop <-chan struct{}) (net.Conn, error) {
		once.Do(func() { start(stop) })
		if stop == nil {
			stop = make(chan struct{})
		}
		select {
		case c := <-secured:
			return c, nil
		case err := <-errCh:
			return nil, err
		case <-stop:
			return nil, errors.New("transfer concluded")
		}
	}
}

// compactChannels drops nil slots (failed concurrent establishment).
func compactChannels(chans []*dataChannel) []*dataChannel {
	out := chans[:0]
	for _, ch := range chans {
		if ch != nil {
			out = append(out, ch)
		}
	}
	return out
}

// retire returns channels to the pool (MODE E with caching) or closes
// them (stream mode, caching disabled, or failed transfer).
func (sess *session) retire(chans []*dataChannel, ok bool) {
	if !ok || sess.spec.Mode != ModeExtended || sess.data.cacheDisabled || sess.srv.cfg.DisableChannelCache {
		closeChannels(chans)
		return
	}
	if len(chans) > 0 && chans[0].acceptor {
		sess.data.pooledAccepted = chans
	} else {
		sess.data.pooledDialed = chans
	}
}

// requireDataAuth checks the DCAU prerequisites before a transfer.
func (sess *session) requireDataAuth() bool {
	if sess.spec.DCAU == DCAUNone {
		return true
	}
	if sess.dataContext() == nil {
		sess.reply(ftp.CodeNotLoggedIn,
			"Data channel authentication requires a delegated credential or DCSC context")
		return false
	}
	return true
}

// handleRetr sends a file. off/length >= 0 restrict to a region (ERET).
func (sess *session) handleRetr(params string, off, length int64) {
	p, err := sess.resolve(params)
	if err != nil {
		sess.reply(ftp.CodeBadFileName, errText(err))
		return
	}
	if !sess.requireDataAuth() {
		return
	}
	f, err := sess.srv.cfg.Storage.Open(sess.localUser, p)
	if err != nil {
		sess.reply(ftp.CodeFileUnavailable, errText(err))
		return
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		sess.reply(ftp.CodeLocalError, errText(err))
		return
	}
	var ranges []Range
	switch {
	case off >= 0:
		end := off + length
		if end > size {
			end = size
		}
		if off > size {
			off = size
		}
		ranges = []Range{{off, end}}
	case len(sess.restart) > 0:
		ranges = FromRanges(sess.restart).Missing(size)
		sess.restart = nil
	default:
		ranges = []Range{{0, size}}
	}

	sess.cmdSpan.SetAttr("path", p)
	sess.cmdSpan.SetAttr("size", size)
	est := sess.cmdSpan.Child("gridftp.data.establish")
	chans, err := sess.establishChannels(sess.spec.Parallelism)
	est.SetError(err)
	est.End()
	if err != nil {
		sess.reply(ftp.CodeCantOpenData, errText(err))
		return
	}
	sess.reply(ftp.CodeFileStatusOK, fmt.Sprintf("Opening data connection for %s (%d bytes)", p, size))
	sess.eventTransfer(eventlog.TransferStart, "RETR", p, size)
	start := time.Now()
	var sendErr error
	if sess.spec.Mode == ModeExtended {
		// Emit in-flight 112 performance markers (per-stripe bytes sent)
		// while the send runs; the final set is flushed before the
		// completion reply so the last marker carries the end totals.
		perf := &perfTracker{}
		perfStop := make(chan struct{})
		perfDone := make(chan struct{})
		go func() {
			defer close(perfDone)
			perfEmitter(perf, sess.markerInterval(), sess.emitPerf, perfStop)
		}()
		conns, tracker := sess.trackChannels("RETR", chans)
		tracker.SetAbort(func() { abortChannels(chans) })
		sendErr = sendModeE(conns, f, ranges, sess.spec.BlockSize, perf.add)
		if tracker.StallAborted() && sendErr != nil {
			sendErr = fmt.Errorf("stalled stream aborted by watchdog: %w", sendErr)
		}
		tracker.Done(sendErr)
		close(perfStop)
		<-perfDone
	} else {
		from := int64(0)
		if len(ranges) > 0 {
			from = ranges[0].Start
		}
		sendErr = sendStream(chans[0].sec, f, from, size, sess.spec.BlockSize)
	}
	if sendErr != nil {
		closeChannels(chans)
		sess.data.flush()
		sess.observeTransfer(time.Since(start), false)
		sess.eventAbort("RETR", p, sendErr)
		sess.reply(ftp.CodeTransferAborted, errText(sendErr))
		return
	}
	sess.retire(chans, true)
	sess.reportUsage("RETR", p, totalLen(ranges), time.Since(start))
	sess.reply(ftp.CodeClosingData, "Transfer complete")
}

// handleStor receives a file, emitting restart markers while it runs.
func (sess *session) handleStor(params string) {
	p, err := sess.resolve(params)
	if err != nil {
		sess.reply(ftp.CodeBadFileName, errText(err))
		return
	}
	if !sess.requireDataAuth() {
		return
	}
	restart := sess.restart
	sess.restart = nil
	var f dsi.File
	if len(restart) > 0 {
		// Resuming: keep existing contents.
		f, err = sess.srv.cfg.Storage.Open(sess.localUser, p)
		if err != nil {
			f, err = sess.srv.cfg.Storage.Create(sess.localUser, p)
		}
	} else {
		f, err = sess.srv.cfg.Storage.Create(sess.localUser, p)
	}
	if err != nil {
		sess.reply(ftp.CodeFileUnavailable, errText(err))
		return
	}
	defer f.Close()
	if hint := sess.alloHint; hint > 0 {
		sess.alloHint = 0
		preallocate(f, hint)
	}

	sess.cmdSpan.SetAttr("path", p)
	start := time.Now()
	if sess.spec.Mode == ModeStream {
		est := sess.cmdSpan.Child("gridftp.data.establish")
		chans, err := sess.establishChannels(1)
		est.SetError(err)
		est.End()
		if err != nil {
			sess.reply(ftp.CodeCantOpenData, errText(err))
			return
		}
		sess.reply(ftp.CodeFileStatusOK, "Opening data connection")
		sess.eventTransfer(eventlog.TransferStart, "STOR", p, -1)
		offset := int64(0)
		if len(restart) == 1 && restart[0].Start == 0 {
			offset = restart[0].End
		}
		n, recvErr := recvStream(chans[0].sec, f, offset, sess.spec.BlockSize)
		closeChannels(chans)
		if recvErr != nil {
			sess.observeTransfer(time.Since(start), false)
			sess.eventAbort("STOR", p, recvErr)
			sess.reply(ftp.CodeTransferAborted, errText(recvErr))
			return
		}
		sess.reportUsage("STOR", p, n, time.Since(start))
		sess.reply(ftp.CodeClosingData, "Transfer complete")
		return
	}

	// MODE E receive with restart markers. The receiver accepts channels
	// dynamically: pooled channels first, then fresh ones off the
	// listeners.
	received := FromRanges(restart)
	pooled := sess.data.pooledAccepted
	sess.data.pooledAccepted = nil
	var fresh []*dataChannel
	pi := 0
	var acceptRaw func(stop <-chan struct{}) (net.Conn, error)
	if len(sess.data.listeners) > 0 {
		acceptRaw = sess.multiAccept()
	}
	var freshMu sync.Mutex
	sealed := false
	var securedAccept func(stop <-chan struct{}) (net.Conn, error)
	if acceptRaw != nil {
		securedAccept = parallelSecureAccept(acceptRaw, sess.dataContext(),
			sess.spec.DCAU, sess.spec.Prot, sess.spec.Deflate, func(ch *dataChannel) {
				freshMu.Lock()
				if sealed {
					// The transfer already concluded; a late handshake's
					// channel has no owner, so drop it.
					freshMu.Unlock()
					ch.close()
					return
				}
				fresh = append(fresh, ch)
				freshMu.Unlock()
			})
	}
	accept := func(stop <-chan struct{}) (net.Conn, error) {
		if pi < len(pooled) {
			ch := pooled[pi]
			pi++
			return ch.sec, nil
		}
		if securedAccept == nil {
			return nil, errors.New("no data channel source")
		}
		return securedAccept(stop)
	}

	if sess.data.portAddrs != nil && acceptRaw == nil && len(pooled) == 0 {
		// Receiver was put in active mode: dial out instead.
		chans, err := sess.establishChannels(sess.spec.Parallelism)
		if err != nil {
			sess.reply(ftp.CodeCantOpenData, errText(err))
			return
		}
		pooled = chans
		accept = func(stop <-chan struct{}) (net.Conn, error) {
			if pi < len(pooled) {
				ch := pooled[pi]
				pi++
				return ch.sec, nil
			}
			return nil, errors.New("sender wants more channels than parallelism")
		}
	}

	// Stream telemetry: instrument each data connection as it joins the
	// transfer, and give the stall watchdog a cancel path into the receive
	// loop (closing cancelOnStall makes recvModeE close its active conns).
	var tracker *streamstats.Transfer
	var cancelOnStall chan struct{}
	if reg := sess.srv.cfg.Streams; reg != nil {
		tracker = reg.Begin(sess.streamLabel("STOR"), "STOR")
		cancelOnStall = make(chan struct{})
		var cancelOnce sync.Once
		tracker.SetAbort(func() { cancelOnce.Do(func() { close(cancelOnStall) }) })
		base := accept
		idx := 0 // accept runs on recvModeE's single acceptor goroutine
		accept = func(stop <-chan struct{}) (net.Conn, error) {
			c, err := base(stop)
			if err != nil {
				return c, err
			}
			i := idx
			idx++
			return tracker.Wrap(i, c, c), nil
		}
	}

	sess.reply(ftp.CodeFileStatusOK, "Opening data connection")
	sess.eventTransfer(eventlog.TransferStart, "STOR", p, -1)

	stop := make(chan struct{})
	markerDone := make(chan struct{})
	// Capture the command span before launching the marker goroutine: it
	// must not read sess.cmdSpan concurrently with the command loop.
	cmdSpan := sess.cmdSpan
	go func() {
		defer close(markerDone)
		markerEmitter(received, sess.markerInterval(), func(m string) {
			sess.reply(ftp.CodeRestartMarker, "Range Marker "+m)
			// Each restart marker is a durable checkpoint: record it so
			// /debug/events shows how far a later resume could pick up.
			kv := []any{"component", "gridftp-server", "session", sess.id,
				"path", p, "ranges", m}
			sess.srv.cfg.Obs.EventLog().Append(eventlog.Checkpoint, traceFields(kv, cmdSpan)...)
		}, stop)
	}()
	// Performance markers ride alongside restart markers: restart markers
	// carry *which ranges* landed (for checkpointing), perf markers carry
	// *per-stripe throughput counters* (for in-flight monitoring).
	perf := &perfTracker{}
	perfDone := make(chan struct{})
	go func() {
		defer close(perfDone)
		perfEmitter(perf, sess.markerInterval(), sess.emitPerf, stop)
	}()
	res := recvModeE(accept, f, received, sess.spec.BlockSize, perf.add, cancelOnStall)
	if tracker.StallAborted() && res.Err != nil {
		res.Err = fmt.Errorf("stalled stream aborted by watchdog: %w", res.Err)
	}
	tracker.Done(res.Err)
	close(stop)
	<-markerDone
	<-perfDone

	// Any pooled channels the sender declined to reuse are stale: close them.
	for _, ch := range pooled[pi:] {
		ch.close()
	}
	freshMu.Lock()
	sealed = true
	all := append(pooled[:pi:pi], fresh...)
	freshMu.Unlock()
	if res.Err != nil {
		closeChannels(all)
		sess.data.flush()
		sess.observeTransfer(time.Since(start), false)
		sess.eventAbort("STOR", p, res.Err)
		sess.reply(ftp.CodeTransferAborted, errText(res.Err))
		return
	}
	sess.retire(all, true)
	sess.reportUsage("STOR", p, res.Received.Covered(), time.Since(start))
	sess.reply(ftp.CodeClosingData, "Transfer complete")
}

func (sess *session) markerInterval() time.Duration {
	if sess.spec.MarkerInterval > 0 {
		return sess.spec.MarkerInterval
	}
	return sess.srv.cfg.MarkerInterval
}

// handleMlsd streams a machine-readable directory listing over a fresh,
// uncached data connection (stream mode regardless of session mode).
func (sess *session) handleMlsd(params string) {
	p, err := sess.resolve(params)
	if err != nil {
		sess.reply(ftp.CodeBadFileName, errText(err))
		return
	}
	infos, err := sess.srv.cfg.Storage.List(sess.localUser, p)
	if err != nil {
		sess.reply(ftp.CodeFileUnavailable, errText(err))
		return
	}
	if !sess.requireDataAuth() {
		return
	}
	sess.data.flush() // MLSD never reuses transfer channels
	chans, err := sess.establishChannels(1)
	if err != nil {
		sess.reply(ftp.CodeCantOpenData, errText(err))
		return
	}
	sess.reply(ftp.CodeFileStatusOK, "Opening data connection for MLSD")
	var listing strings.Builder
	for _, fi := range infos {
		listing.WriteString(mlstFacts(fi))
		listing.WriteString("\r\n")
	}
	_, werr := chans[0].sec.Write([]byte(listing.String()))
	if hc, ok := chans[0].sec.(interface{ CloseWrite() error }); ok && werr == nil {
		werr = hc.CloseWrite()
	}
	closeChannels(chans)
	if werr != nil {
		sess.reply(ftp.CodeTransferAborted, errText(werr))
		return
	}
	sess.reply(ftp.CodeClosingData, "MLSD complete")
}

// emitPerf writes one 112 performance marker on the control channel
// (serialized with all other replies via replyMu).
func (sess *session) emitPerf(m PerfMarker) {
	sess.reply(CodePerfMarker, perfMarkerLines(m)...)
}

// traceFields appends span's wire ids to an event's key/value list so
// events and spans cross-reference; a nil span appends nothing.
func traceFields(kv []any, span *obs.Span) []any {
	if span != nil {
		kv = append(kv, "trace", span.TraceID.String(), "span", span.SpanID.String())
	}
	return kv
}

// eventTransfer records a transfer lifecycle event (size < 0 = unknown,
// e.g. an inbound STOR whose length only the sender knows).
func (sess *session) eventTransfer(typ, op, path string, size int64) {
	kv := []any{"component", "gridftp-server", "session", sess.id,
		"user", sess.localUser, "op", op, "path", path}
	if size >= 0 {
		kv = append(kv, "size", size)
	}
	sess.srv.cfg.Obs.EventLog().Append(typ, traceFields(kv, sess.cmdSpan)...)
}

func (sess *session) eventAbort(op, path string, err error) {
	kv := []any{"component", "gridftp-server", "session", sess.id,
		"user", sess.localUser, "op", op, "path", path, "err", err.Error()}
	sess.srv.cfg.Obs.EventLog().Append(eventlog.TransferAbort, traceFields(kv, sess.cmdSpan)...)
}

// observeTransfer feeds the transfer latency histograms: the unlabeled
// aggregate plus the ok|err outcome split. The command span's trace id
// rides along as the bucket exemplar so a fleet-level latency alert can
// name a representative transfer trace.
func (sess *session) observeTransfer(dur time.Duration, ok bool) {
	reg := sess.srv.cfg.Obs.Registry()
	var traceID string
	if sess.cmdSpan != nil {
		traceID = sess.cmdSpan.TraceID.String()
	}
	reg.Histogram("gridftp.server.transfer_seconds", obs.DefaultDurationBuckets).
		ObserveExemplar(dur.Seconds(), traceID)
	outcome := "outcome=ok"
	if !ok {
		outcome = "outcome=err"
	}
	reg.Histogram(obs.Name("gridftp.server.transfer_seconds", outcome), obs.DefaultDurationBuckets).
		ObserveExemplar(dur.Seconds(), traceID)
}

func (sess *session) reportUsage(op, path string, bytes int64, dur time.Duration) {
	reg := sess.srv.cfg.Obs.Registry()
	reg.Counter("gridftp.server.transfers_total").Inc()
	reg.Counter(obs.Name("gridftp.server.bytes", op)).Add(bytes)
	if sess.identity != nil {
		sess.srv.cfg.Tenants.BytesMoved(string(sess.identity.Identity), bytes)
	}
	sess.observeTransfer(dur, true)
	sess.cmdSpan.SetAttr("bytes", bytes)
	sess.log.Info("transfer complete",
		"op", op, "path", path, "bytes", bytes, "dur", dur.Round(time.Microsecond))
	kv := []any{"component", "gridftp-server", "session", sess.id,
		"user", sess.localUser, "op", op, "path", path,
		"bytes", bytes, "dur", dur.Round(time.Microsecond).String()}
	sess.srv.cfg.Obs.EventLog().Append(eventlog.TransferComplete, traceFields(kv, sess.cmdSpan)...)
	if sess.srv.cfg.Usage == nil {
		return
	}
	sess.srv.cfg.Usage.Report(usagestats.TransferRecord{
		Endpoint: sess.srv.cfg.EndpointName,
		User:     sess.localUser,
		Op:       op,
		Path:     path,
		Bytes:    bytes,
		Duration: dur,
		When:     time.Now(),
	})
}

// streamLabel names this session's current transfer in the stream-health
// plane: the SITE TASK label when one is installed — with a "-src" suffix
// on RETR, so the sending leg of a third-party transfer stays
// distinguishable from the receiving leg under one task prefix — or empty,
// which makes the registry generate a per-transfer label.
func (sess *session) streamLabel(verb string) string {
	if sess.task == "" {
		return ""
	}
	if verb == "RETR" {
		return sess.task + "-src"
	}
	return sess.task
}

// trackChannels registers a MODE E transfer's data channels with the
// server's stream-telemetry registry and returns the instrumented conns
// (or the plain secured conns when no registry is configured). The raw
// conn rides along as the wire-counter source — TCP_INFO or netsim
// WireStatus — which a TLS payload wrapper cannot provide.
func (sess *session) trackChannels(verb string, chans []*dataChannel) ([]net.Conn, *streamstats.Transfer) {
	conns := secConns(chans)
	reg := sess.srv.cfg.Streams
	if reg == nil {
		return conns, nil
	}
	t := reg.Begin(sess.streamLabel(verb), verb)
	for i, ch := range chans {
		conns[i] = t.Wrap(i, ch.sec, ch.raw)
	}
	return conns, t
}

// abortChannels force-closes data connections, preferring a hard abort
// (netsim's TCP RST analogue) so even writers paced out by a rate limiter
// release immediately. The stall watchdog uses this to fail a stalled
// transfer fast enough for the retry to matter.
func abortChannels(chans []*dataChannel) {
	for _, ch := range chans {
		if ab, ok := ch.raw.(interface{ Abort() }); ok {
			ab.Abort()
		} else {
			ch.raw.Close()
		}
	}
}

func secConns(chans []*dataChannel) []net.Conn {
	out := make([]net.Conn, len(chans))
	for i, ch := range chans {
		out[i] = ch.sec
	}
	return out
}

func totalLen(rs []Range) int64 {
	var n int64
	for _, r := range rs {
		n += r.Len()
	}
	return n
}
