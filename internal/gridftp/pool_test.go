package gridftp

import (
	"bytes"
	"sync"
	"testing"
)

// TestBufferPoolConcurrentLease hammers one pool from 16 goroutines (the
// shape of a p=16 parallel receive): every holder fills its lease with a
// goroutine-unique pattern and re-checks it after yielding. A pool that
// ever hands the same buffer to two concurrent holders fails the pattern
// check, and under -race the overlapping writes are reported directly.
func TestBufferPoolConcurrentLease(t *testing.T) {
	const size = 4096
	p := NewBufferPool(size)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(pat byte) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				buf := p.Lease()
				if len(buf) != size {
					errs <- "short lease"
					return
				}
				for j := range buf {
					buf[j] = pat
				}
				for j := range buf {
					if buf[j] != pat {
						errs <- "buffer shared between concurrent holders"
						return
					}
				}
				p.Release(buf)
			}
		}(byte(g + 1))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestBufferPoolReleaseForeign verifies that buffers of the wrong size are
// dropped rather than pooled, so a resized lease can never poison later
// leases with a short buffer.
func TestBufferPoolReleaseForeign(t *testing.T) {
	p := NewBufferPool(1024)
	p.Release(make([]byte, 16)) // wrong capacity: must be dropped
	if got := p.Lease(); len(got) != 1024 {
		t.Fatalf("lease after foreign release: len %d, want 1024", len(got))
	}
	if poolFor(2048) == poolFor(4096) {
		t.Fatal("poolFor must key pools by size")
	}
	if poolFor(2048) != poolFor(2048) {
		t.Fatal("poolFor must return the same pool for the same size")
	}
}

// TestReadBlockPooledAliasing pins down the pooled-receive contract: a
// block returned by ReadBlock aliases the lease, so a consumer must copy
// the payload (as WriteAt does) before the next ReadBlock reuses the
// buffer. The copy must survive the reuse, and the stale Block.Data must
// observably alias the new contents — if it ever stops aliasing, the fast
// path has started allocating per block again.
func TestReadBlockPooledAliasing(t *testing.T) {
	pool := NewBufferPool(1024)
	buf := pool.Lease()
	defer pool.Release(buf)

	var wire bytes.Buffer
	mustWrite := func(b *Block) {
		t.Helper()
		if err := WriteBlock(&wire, b); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite(&Block{Desc: DescRestartable, Count: 4, Offset: 0, Data: []byte("aaaa")})
	mustWrite(&Block{Desc: DescRestartable, Count: 4, Offset: 4, Data: []byte("bbbb")})

	b1, buf, err := ReadBlock(&wire, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), b1.Data...) // consumer copy, WriteAt-style
	b2, buf, err := ReadBlock(&wire, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = buf
	if !bytes.Equal(saved, []byte("aaaa")) {
		t.Fatalf("consumer copy corrupted by buffer reuse: %q", saved)
	}
	if !bytes.Equal(b2.Data, []byte("bbbb")) {
		t.Fatalf("second block payload %q", b2.Data)
	}
	if !bytes.Equal(b1.Data, []byte("bbbb")) {
		t.Fatalf("stale block no longer aliases the lease (payload %q): receive loop is allocating per block", b1.Data)
	}
}
