package gridftp

import (
	"fmt"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/ftp"
)

// Command pipelining (§II.A [11] of the paper): for lots-of-small-files
// workloads the per-file command/reply round trips dominate, so the client
// sends all transfer commands back-to-back and processes the data flows
// and replies in order. Combined with data channel caching this removes
// every per-file RTT except the data itself.

// GetItem pairs a remote path with its local destination.
type GetItem struct {
	Path string
	Dst  dsi.File
}

// PutItem pairs a local source with its remote path.
type PutItem struct {
	Path string
	Src  dsi.File
}

// GetMany downloads the items over one session with pipelined RETR
// commands (active mode). It stops at the first failure.
func (c *Client) GetMany(items []GetItem) error {
	if len(items) == 0 {
		return nil
	}
	if c.spec.Mode != ModeExtended {
		return fmt.Errorf("gridftp: pipelining requires MODE E")
	}
	if len(c.pooledAccepted) == 0 {
		if err := c.ensureListener(); err != nil {
			return err
		}
	}
	// Pipeline: all commands at once.
	for _, it := range items {
		if err := c.ctrl.Cmd("RETR", "%s", it.Path); err != nil {
			return err
		}
	}
	// Then drain the transfers in order.
	for i, it := range items {
		if err := c.recvOne(it.Dst); err != nil {
			return fmt.Errorf("gridftp: pipelined get %d (%s): %w", i, it.Path, err)
		}
	}
	return nil
}

// recvOne receives one MODE E transfer using pooled or fresh channels and
// consumes its final reply (canceling the receive if the reply reports an
// error, e.g. a 550 for a missing file mid-pipeline).
func (c *Client) recvOne(dst dsi.File) error {
	res, r, rerr := c.recvWithReplies(dst, NewRangeSet())
	switch {
	case rerr != nil:
		return rerr
	case r.Err() != nil:
		return r.Err()
	case res.Err != nil:
		return res.Err
	}
	return nil
}

// PutMany uploads the items over one session with pipelined STOR commands
// (passive mode). It stops at the first failure.
func (c *Client) PutMany(items []PutItem) error {
	if len(items) == 0 {
		return nil
	}
	if c.spec.Mode != ModeExtended {
		return fmt.Errorf("gridftp: pipelining requires MODE E")
	}
	if len(c.pooledDialed) != c.spec.Parallelism {
		if err := c.ensurePassive(); err != nil {
			return err
		}
	}
	for _, it := range items {
		if err := c.ctrl.Cmd("STOR", "%s", it.Path); err != nil {
			return err
		}
	}
	for i, it := range items {
		if err := c.sendOne(it.Src); err != nil {
			return fmt.Errorf("gridftp: pipelined put %d (%s): %w", i, it.Path, err)
		}
	}
	return nil
}

// sendOne sends one MODE E transfer over pooled or fresh channels and
// consumes its final reply.
func (c *Client) sendOne(src dsi.File) error {
	size, err := src.Size()
	if err != nil {
		return err
	}
	chans, err := c.dialData(c.spec.Parallelism)
	if err != nil {
		c.ctrl.ReadFinalReply(nil)
		return err
	}
	sendErr := sendModeE(secConns(chans), src, []Range{{0, size}}, c.spec.BlockSize, nil)
	r, rerr := c.ctrl.ReadFinalReply(func(p ftp.Reply) { c.handlePreliminary(p) })
	switch {
	case sendErr != nil:
		closeChannels(chans)
		c.flushPools()
		return sendErr
	case rerr != nil:
		closeChannels(chans)
		c.flushPools()
		return rerr
	case r.Err() != nil:
		closeChannels(chans)
		c.flushPools()
		return r.Err()
	}
	c.retire(chans, true)
	return nil
}
