package gridftp

import (
	"strings"
	"testing"
)

// FuzzParseMlsxLine throws arbitrary fact lines at the MLSD/MLST parser.
// Fact lines are untrusted remote input — any server a client lists can
// emit them — and the parsed entries flow directly into transfer
// planning (WalkEntries sizes every file from the Size fact, recursion
// follows every IsDir). The parser must never panic, must never accept
// an entry without a name or Type fact, and must never hand planning a
// negative size.
func FuzzParseMlsxLine(f *testing.F) {
	f.Add("Type=file;Size=1048576;Modify=20120131123001; data.bin")
	f.Add("Type=dir;Modify=20120131123001; subdir")
	f.Add("type=FILE;size=0; empty")
	f.Add("Type=file;Size=-5; evil")
	f.Add("Type=file;Size=999999999999999999999999; huge")
	f.Add("Size=10; no-type")
	f.Add("Type=file;Size=1; name with spaces")
	f.Add("Type=file;;=;Size=2;junk; x")
	f.Add("")
	f.Add(" ")
	f.Add("Type=file;Size=1;")
	f.Add("Type=file;Size=1; \x00\xff")

	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseMlsxLine(line)
		if err != nil {
			return
		}
		if e.Name == "" {
			t.Fatalf("accepted entry with empty name from %q", line)
		}
		if e.Size < 0 {
			t.Fatalf("accepted negative size %d from %q", e.Size, line)
		}
		// Accepted lines must round-trip through the fact grammar the
		// parser itself defines: facts, one space, name.
		if !strings.Contains(line, " ") {
			t.Fatalf("accepted line without fact/name separator: %q", line)
		}
	})
}
