package gridftp

import "sync"

// BufferPool leases fixed-size payload buffers for the MODE E data path so
// the per-block and per-connection `make([]byte, blockSize)` churn the E2
// profile surfaced disappears. Buffers are handed out at full length
// (len == Size) and recycled on Release; foreign buffers (wrong capacity,
// e.g. one ReadBlock had to grow past the negotiated size) are dropped on
// the floor rather than poisoning the pool.
type BufferPool struct {
	size int
	pool sync.Pool
}

// NewBufferPool returns a pool of size-byte buffers.
func NewBufferPool(size int) *BufferPool {
	if size <= 0 {
		size = DefaultBlockSize
	}
	p := &BufferPool{size: size}
	p.pool.New = func() any {
		b := make([]byte, size)
		return &b
	}
	return p
}

// Size is the capacity of every buffer this pool leases.
func (p *BufferPool) Size() int { return p.size }

// Lease returns a buffer of length Size. The caller owns it until Release.
func (p *BufferPool) Lease() []byte {
	return *p.pool.Get().(*[]byte)
}

// Release returns a leased buffer to the pool. The caller must not touch
// the buffer afterwards — a later Lease may hand it to another stream.
func (p *BufferPool) Release(buf []byte) {
	if cap(buf) != p.size {
		return // grown or foreign buffer; let the GC have it
	}
	buf = buf[:p.size]
	p.pool.Put(&buf)
}

// payloadPools maps block size -> *BufferPool. Block sizes are negotiated
// values (a handful per process), so a process-wide registry keyed by size
// lets every session and client share warm buffers.
var payloadPools sync.Map

// poolFor returns the process-wide buffer pool for the given block size.
func poolFor(size int) *BufferPool {
	if size <= 0 {
		size = DefaultBlockSize
	}
	if p, ok := payloadPools.Load(size); ok {
		return p.(*BufferPool)
	}
	p, _ := payloadPools.LoadOrStore(size, NewBufferPool(size))
	return p.(*BufferPool)
}
