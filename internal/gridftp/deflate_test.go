package gridftp

import (
	"bytes"
	"testing"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/netsim"
)

// TestDeflateModeETransfer negotiates OPTS RETR Deflate=1 and moves a
// compressible payload both directions through MODE E with parallel
// streams; channel reuse across the put/get pair keeps one continuous
// DEFLATE stream per direction alive.
func TestDeflateModeETransfer(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	if err := c.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDeflate(true); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("compressible gridftp payload "), 4000)
	for round := 0; round < 2; round++ {
		if _, err := c.Put("/z.bin", dsi.NewBufferFile(payload)); err != nil {
			t.Fatalf("round %d put: %v", round, err)
		}
		if got := s.readFile(t, "/z.bin"); !bytes.Equal(got, payload) {
			t.Fatalf("round %d: stored content mismatch (%d of %d bytes)", round, len(got), len(payload))
		}
		dst := dsi.NewBufferFile(nil)
		if _, err := c.Get("/z.bin", dst); err != nil {
			t.Fatalf("round %d get: %v", round, err)
		}
		if !bytes.Equal(dst.Bytes(), payload) {
			t.Fatalf("round %d: downloaded content mismatch", round)
		}
	}
	// Switching compression off flushes the pools and moves cleartext.
	if err := c.SetDeflate(false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("/plain.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	if got := s.readFile(t, "/plain.bin"); !bytes.Equal(got, payload) {
		t.Fatal("content mismatch after disabling deflate")
	}
}

// TestDeflateStreamMode covers the MODE S path: a single accepted data
// connection wrapped with the deflate driver on both ends.
func TestDeflateStreamMode(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	if err := c.SetMode(ModeStream); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDeflate(true); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("stream mode deflate "), 2500)
	s.putFile(t, "/s.bin", payload)
	dst := dsi.NewBufferFile(nil)
	if _, err := c.Get("/s.bin", dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("stream-mode deflate content mismatch")
	}
}
