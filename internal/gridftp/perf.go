package gridftp

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/ftp"
)

// This file implements the GridFTP performance-marker extension: during a
// MODE E transfer the server emits preliminary 112 replies on the control
// channel carrying per-stripe bytes-transferred, so a client (or the
// hosted transfer service, §VI) can watch a transfer's progress in flight
// instead of learning the total after the fact. Wire form follows the
// classic Globus rendering:
//
//	112-Perf Marker
//	 Timestamp: 1328000000.250
//	 Stripe Index: 0
//	 Stripe Bytes Transferred: 1048576
//	 Total Stripe Count: 2
//	112 End
//
// Each data stream of this implementation is one stripe: a striped server
// contributes one stream per stripe node, a parallel single-host transfer
// one per TCP stream.

// PerfMarker is one parsed 112 performance marker.
type PerfMarker struct {
	// Timestamp is when the sender sampled the counters.
	Timestamp time.Time
	// Stripe is the stripe (data stream) index this marker reports.
	Stripe int
	// StripeBytes is the cumulative bytes moved on that stripe.
	StripeBytes int64
	// TotalStripes is how many stripes the transfer uses.
	TotalStripes int
}

// perfMarkerLines renders the marker as reply lines for a multi-line 112
// reply (ftp.Conn.WriteReply adds the code framing).
func perfMarkerLines(m PerfMarker) []string {
	ts := float64(m.Timestamp.UnixNano()) / float64(time.Second)
	return []string{
		"Perf Marker",
		fmt.Sprintf("Timestamp: %.3f", ts),
		fmt.Sprintf("Stripe Index: %d", m.Stripe),
		fmt.Sprintf("Stripe Bytes Transferred: %d", m.StripeBytes),
		fmt.Sprintf("Total Stripe Count: %d", m.TotalStripes),
		"End",
	}
}

// maxStripeIndex bounds the stripe index / stripe count accepted from the
// wire. Markers are untrusted remote input and consumers index per-stripe
// accumulators by this value, so an absurd index must not translate into
// an absurd allocation.
const maxStripeIndex = 1 << 20

// maxPerfTimestamp is the largest epoch-seconds value the parser converts
// to a time.Time; beyond it the float64 * 1e9 nanosecond conversion would
// overflow int64 and produce a garbage (possibly negative) timestamp.
const maxPerfTimestamp = float64(1 << 33) // year ~2242

// ParsePerfMarker parses a 112 preliminary reply into a PerfMarker. ok is
// false for replies that are not performance markers, and for markers with
// out-of-range fields (negative byte counts, negative or absurdly large
// stripe indexes, non-finite timestamps): the values feed per-stripe
// accumulators, so range errors here would become panics or unbounded
// allocations downstream.
func ParsePerfMarker(r ftp.Reply) (PerfMarker, bool) {
	if r.Code != ftp.CodeRestartMarker+1 || len(r.Lines) == 0 ||
		!strings.HasPrefix(strings.TrimSpace(r.Lines[0]), "Perf Marker") {
		return PerfMarker{}, false
	}
	var m PerfMarker
	var gotStripe, gotBytes, gotCount bool
	for _, line := range r.Lines[1:] {
		key, val, found := strings.Cut(line, ":")
		if !found {
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "Timestamp":
			if f, err := strconv.ParseFloat(val, 64); err == nil &&
				f >= 0 && f <= maxPerfTimestamp {
				m.Timestamp = time.Unix(0, int64(f*float64(time.Second)))
			}
		case "Stripe Index":
			if n, err := strconv.Atoi(val); err == nil && n >= 0 && n <= maxStripeIndex {
				m.Stripe = n
				gotStripe = true
			}
		case "Stripe Bytes Transferred":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil && n >= 0 {
				m.StripeBytes = n
				gotBytes = true
			}
		case "Total Stripe Count":
			if n, err := strconv.Atoi(val); err == nil && n >= 0 && n <= maxStripeIndex {
				m.TotalStripes = n
				gotCount = true
			}
		}
	}
	return m, gotStripe && gotBytes && gotCount
}

// CodePerfMarker is the preliminary reply code for performance markers.
const CodePerfMarker = ftp.CodeRestartMarker + 1 // 112

// perfTracker accumulates per-stripe byte counts during a transfer. Data
// goroutines call add on every block; the emitter samples snapshots. The
// stripe set grows dynamically because MODE E receivers learn the stream
// count only from the EOF block.
type perfTracker struct {
	mu    sync.Mutex
	bytes []int64
}

func (t *perfTracker) add(stripe int, n int64) {
	if t == nil || n <= 0 || stripe < 0 || stripe > maxStripeIndex {
		return
	}
	t.mu.Lock()
	for stripe >= len(t.bytes) {
		t.bytes = append(t.bytes, 0)
	}
	t.bytes[stripe] += n
	t.mu.Unlock()
}

// snapshot returns a copy of the per-stripe counters.
func (t *perfTracker) snapshot() []int64 {
	t.mu.Lock()
	out := append([]int64(nil), t.bytes...)
	t.mu.Unlock()
	return out
}

// total returns the sum across stripes.
func (t *perfTracker) total() int64 {
	var sum int64
	for _, b := range t.snapshot() {
		sum += b
	}
	return sum
}

// perfEmitter periodically renders the tracker through emit (one call per
// stripe that moved since the last tick) until stop closes, then emits a
// final complete set so the last marker always carries the end totals.
func perfEmitter(t *perfTracker, interval time.Duration, emit func(PerfMarker), stop <-chan struct{}) {
	if interval <= 0 {
		<-stop
		return
	}
	var last []int64
	send := func(final bool) {
		cur := t.snapshot()
		for i, b := range cur {
			changed := i >= len(last) || last[i] != b
			if b == 0 || (!changed && !final) {
				continue
			}
			emit(PerfMarker{
				Timestamp:    time.Now(),
				Stripe:       i,
				StripeBytes:  b,
				TotalStripes: len(cur),
			})
		}
		last = cur
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			send(false)
		case <-stop:
			send(true)
			return
		}
	}
}
