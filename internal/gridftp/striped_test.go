package gridftp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

// newStripedSite builds a striped server: PI on <name>, DTPs on
// <name>-dtp0..N-1 (§II.B: "one server PI on the head node of a cluster
// and a DTP on all other nodes").
func newStripedSite(t *testing.T, nw *netsim.Network, name string, stripes int) *site {
	t.Helper()
	return newSite(t, nw, name, func(cfg *ServerConfig) {
		for i := 0; i < stripes; i++ {
			cfg.StripeNodes = append(cfg.StripeNodes, StripeNode{
				Host: nw.Host(fmt.Sprintf("%s-dtp%d", name, i)),
			})
		}
	})
}

func TestStripedThirdPartyTransfer(t *testing.T) {
	nw := netsim.NewNetwork()
	src := newStripedSite(t, nw, "clusterA", 4)
	dst := newStripedSite(t, nw, "clusterB", 4)
	laptop := nw.Host("laptop")

	// Same trust domain: both sites share CA-A's trust for simplicity.
	// (Cross-CA striping is covered by the DCSC tests; here we exercise
	// SPAS/SPOR plumbing.)
	dst.trust.AddCA(src.ca.Certificate())
	src.trust.AddCA(dst.ca.Certificate())
	// Users: the source user must map at the destination too.
	dst.gridmap.AddEntry(src.user.DN(), "alice")

	cSrc := src.connect(t, laptop, true)

	proxy, err := gsi.NewProxy(src.user, gsi.ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cDst, err := Dial(laptop, dst.addr, proxy, dst.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cDst.Close()
	if err := cDst.Delegate(time.Hour); err != nil {
		t.Fatal(err)
	}

	payload := pattern(2 * 1024 * 1024)
	src.putFile(t, "/striped.bin", payload)
	if err := cSrc.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if err := cDst.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := ThirdParty(cSrc, "/striped.bin", cDst, "/out.bin", ThirdPartyOptions{Striped: true}); err != nil {
		t.Fatal(err)
	}
	if got := dst.readFile(t, "/out.bin"); !bytes.Equal(got, payload) {
		t.Fatal("striped transfer content mismatch")
	}
}

func TestStripedSpasReturnsAllNodes(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newStripedSite(t, nw, "clusterA", 3)
	c := s.connect(t, nw.Host("laptop"), true)
	addrs, err := c.Passive(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 {
		t.Fatalf("SPAS returned %v", addrs)
	}
	hosts := map[string]bool{}
	for _, a := range addrs {
		hosts[a[:len(a)-6]] = true // trim ":NNNNN"
	}
	if len(hosts) != 3 {
		t.Fatalf("SPAS listeners not spread across stripe nodes: %v", addrs)
	}
}

func TestStripedAggregatesPerNodeBandwidth(t *testing.T) {
	// Give every host pair a modest per-link bandwidth; a striped transfer
	// crosses S distinct links and should beat the single-node transfer.
	nw := netsim.NewNetwork()
	nw.SetDefaultLink(netsim.LinkParams{
		Bandwidth: 3e6, RTT: 4 * time.Millisecond, StreamWindow: 1 << 20,
	})
	payload := pattern(3 * 1024 * 1024)

	run := func(stripes int) time.Duration {
		src := newStripedSite(t, nw, fmt.Sprintf("sA%d", stripes), stripes)
		dst := newStripedSite(t, nw, fmt.Sprintf("sB%d", stripes), stripes)
		dst.trust.AddCA(src.ca.Certificate())
		src.trust.AddCA(dst.ca.Certificate())
		dst.gridmap.AddEntry(src.user.DN(), "alice")
		laptop := nw.Host(fmt.Sprintf("laptop%d", stripes))
		cSrc := src.connect(t, laptop, true)
		proxy, _ := gsi.NewProxy(src.user, gsi.ProxyOptions{})
		cDst, err := Dial(laptop, dst.addr, proxy, dst.trust)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cDst.Close() })
		if err := cDst.Delegate(time.Hour); err != nil {
			t.Fatal(err)
		}
		cSrc.SetParallelism(stripes)
		cDst.SetParallelism(stripes)
		src.putFile(t, "/f.bin", payload)
		res, err := ThirdParty(cSrc, "/f.bin", cDst, "/f.bin", ThirdPartyOptions{Striped: stripes > 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}

	t1 := run(1)
	t4 := run(4)
	if t4 >= t1 {
		t.Fatalf("striping did not help: 1 stripe %v, 4 stripes %v", t1, t4)
	}
}
