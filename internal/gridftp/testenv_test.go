package gridftp

import (
	"fmt"
	"testing"
	"time"

	"gridftp.dev/instant/internal/authz"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

// site is one administrative domain: its own CA, host credential, user,
// storage, and GridFTP server.
type site struct {
	name    string
	ca      *gsi.CA
	trust   *gsi.TrustStore
	host    *netsim.Host
	server  *Server
	storage *dsi.MemStorage
	addr    string
	user    *gsi.Credential // user certificate issued by this site's CA
	gridmap *authz.Gridmap
}

// newSite builds a site named name on network nw with one user account
// "alice" mapped from the site user credential.
func newSite(t *testing.T, nw *netsim.Network, name string, cfgMut ...func(*ServerConfig)) *site {
	t.Helper()
	ca, err := gsi.NewCA(gsi.DN("/O=Grid/OU="+name+"/CN=CA"), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	hostCred, err := ca.Issue(gsi.IssueOptions{
		Subject: gsi.DN(fmt.Sprintf("/O=Grid/OU=%s/CN=host-%s", name, name)), Lifetime: 12 * time.Hour, Host: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	userCred, err := ca.Issue(gsi.IssueOptions{
		Subject: gsi.DN(fmt.Sprintf("/O=Grid/OU=%s/CN=alice", name)), Lifetime: 12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore()
	trust.AddCA(ca.Certificate())

	storage := dsi.NewMemStorage()
	storage.AddUser("alice")
	gridmap := authz.NewGridmap()
	gridmap.AddEntry(userCred.DN(), "alice")

	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})

	host := nw.Host(name)
	cfg := ServerConfig{
		HostCred:       hostCred,
		Trust:          trust,
		Authz:          gridmap,
		Storage:        storage,
		MarkerInterval: 50 * time.Millisecond,
		EndpointName:   name,
	}
	for _, mut := range cfgMut {
		mut(&cfg)
	}
	srv, err := NewServer(host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe(DefaultPort)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &site{
		name: name, ca: ca, trust: trust, host: host, server: srv,
		storage: storage, addr: addr.String(), user: userCred, gridmap: gridmap,
	}
}

// connect dials the site with a fresh proxy of its user credential and
// delegates by default.
func (s *site) connect(t *testing.T, clientHost *netsim.Host, delegate bool) *Client {
	t.Helper()
	proxy, err := gsi.NewProxy(s.user, gsi.ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(clientHost, s.addr, proxy, s.trust)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if delegate {
		if err := c.Delegate(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// putFile stores content directly into the site's storage.
func (s *site) putFile(t *testing.T, path string, content []byte) {
	t.Helper()
	f, err := s.storage.Create("alice", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dsi.WriteAll(f, content); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// readFile reads content from the site's storage.
func (s *site) readFile(t *testing.T, path string) []byte {
	t.Helper()
	f, err := s.storage.Open("alice", path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := dsi.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// pattern generates deterministic, position-dependent test data so any
// misplaced block shows up as corruption.
func pattern(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte((i*7 + i/251) % 256)
	}
	return data
}
