package gridftp

import (
	"bytes"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

func integrityPair() (net.Conn, net.Conn) {
	a, b := net.Pipe()
	var key [32]byte
	copy(key[:], "0123456789abcdef0123456789abcdef")
	return newIntegrityConn(a, key), newIntegrityConn(b, key)
}

func TestIntegrityConnRoundTrip(t *testing.T) {
	ca, cb := integrityPair()
	payload := pattern(300000)
	go func() {
		ca.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(cb, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("integrity round trip mismatch")
	}
}

func TestIntegrityConnDetectsTampering(t *testing.T) {
	raw1, raw2 := net.Pipe()
	var key [32]byte
	ic := newIntegrityConn(raw2, key)
	// Handcraft a frame with a bad tag.
	go func() {
		frame := []byte{0, 0, 0, 4, 'e', 'v', 'i', 'l'}
		tag := make([]byte, integrityTagLen) // zero tag, definitely wrong
		raw1.Write(append(frame, tag...))
	}()
	buf := make([]byte, 4)
	if _, err := ic.Read(buf); err == nil {
		t.Fatal("tampered frame accepted")
	}
}

func TestIntegrityConnDetectsReordering(t *testing.T) {
	// Two frames written with sequence 0 and 1; replaying frame 0 twice
	// (a reorder/replay) must fail the second verification.
	a, b := net.Pipe()
	var key [32]byte
	w := newIntegrityConn(a, key)
	r := newIntegrityConn(b, key)
	done := make(chan []byte, 1)
	go func() {
		// Capture the wire form of one frame by writing through a recorder.
		rec := &recorderConn{Conn: a}
		w.Conn = rec
		w.Write([]byte("hello"))
		done <- rec.buf.Bytes()
	}()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	wire := <-done
	// Replay the identical bytes: the receiver's sequence is now 1, so
	// the tag (computed for seq 0) must not verify.
	go func() { b2 := wire; a.Write(b2) }()
	if _, err := io.ReadFull(r, buf); err == nil {
		t.Fatal("replayed frame accepted")
	}
}

type recorderConn struct {
	net.Conn
	buf bytes.Buffer
}

func (r *recorderConn) Write(p []byte) (int, error) {
	r.buf.Write(p)
	return r.Conn.Write(p)
}

func TestIntegrityConnPropertyRoundTrip(t *testing.T) {
	f := func(chunks [][]byte) bool {
		var want []byte
		for _, c := range chunks {
			want = append(want, c...)
		}
		ca, cb := integrityPair()
		go func() {
			for _, c := range chunks {
				if len(c) > 0 {
					ca.Write(c)
				}
			}
		}()
		got := make([]byte, len(want))
		if len(want) > 0 {
			if _, err := io.ReadFull(cb, got); err != nil {
				return false
			}
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMlsxParse(t *testing.T) {
	e, err := ParseMlsxLine("Type=file;Size=123;Modify=20120201120000; data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "data.bin" || e.Size != 123 || e.IsDir {
		t.Fatalf("%+v", e)
	}
	d, err := ParseMlsxLine("Type=dir;Size=0;Modify=20120201120000; subdir with spaces")
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsDir || d.Name != "subdir with spaces" {
		t.Fatalf("%+v", d)
	}
	for _, bad := range []string{"", "nofacts", "Type=file;Size=x; f", "Size=1; noType"} {
		if _, err := ParseMlsxLine(bad); err == nil {
			t.Errorf("ParseMlsxLine(%q) should fail", bad)
		}
	}
}

func TestClientWalk(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	s.storage.Mkdir("alice", "/tree")
	s.storage.Mkdir("alice", "/tree/a")
	s.storage.Mkdir("alice", "/tree/a/b")
	s.putFile(t, "/tree/top.txt", []byte("1"))
	s.putFile(t, "/tree/a/mid.txt", []byte("2"))
	s.putFile(t, "/tree/a/b/leaf.txt", []byte("3"))
	files, err := c.Walk("/tree")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"top.txt": true, "a/mid.txt": true, "a/b/leaf.txt": true}
	if len(files) != len(want) {
		t.Fatalf("walk %v", files)
	}
	for _, f := range files {
		if !want[f] {
			t.Fatalf("unexpected walk entry %q in %v", f, files)
		}
	}
}

func TestSecureDataRejectsProtWithoutDCAU(t *testing.T) {
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()
	go l.Accept()
	conn, _ := nw.Dial("c", "s:1")
	defer conn.Close()
	if _, err := secureData(conn, nil, DCAUNone, ProtPrivate, false); err == nil {
		t.Fatal("PROT P with DCAU N accepted")
	}
	if _, err := secureData(conn, nil, DCAUSelf, ProtClear, false); err == nil {
		t.Fatal("DCAU without credential accepted")
	}
}

func TestDCSCBlobRejectsKeyless(t *testing.T) {
	ca, _ := gsi.NewCA("/O=x/CN=CA", time.Hour)
	user, _ := ca.Issue(gsi.IssueOptions{Subject: "/O=x/CN=u", Lifetime: time.Hour})
	keyless := &gsi.Credential{Cert: user.Cert, Chain: user.Chain}
	blob, err := EncodeDCSCBlob(keyless)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDCSCBlob(blob, gsi.NewTrustStore()); err == nil {
		t.Fatal("keyless DCSC blob accepted (endpoint could not present it)")
	}
}
