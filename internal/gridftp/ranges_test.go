package gridftp

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestRangeSetAddMerge(t *testing.T) {
	s := NewRangeSet()
	s.Add(0, 10)
	s.Add(20, 30)
	s.Add(10, 20) // bridges the gap
	rs := s.Ranges()
	if len(rs) != 1 || rs[0] != (Range{0, 30}) {
		t.Fatalf("ranges %v", rs)
	}
	if s.Covered() != 30 {
		t.Fatalf("covered %d", s.Covered())
	}
}

func TestRangeSetOverlaps(t *testing.T) {
	s := NewRangeSet()
	s.Add(5, 15)
	s.Add(0, 10) // overlap left
	s.Add(12, 20)
	rs := s.Ranges()
	if len(rs) != 1 || rs[0] != (Range{0, 20}) {
		t.Fatalf("ranges %v", rs)
	}
	s.Add(100, 100) // empty range ignored
	if len(s.Ranges()) != 1 {
		t.Fatal("empty range added")
	}
}

func TestRangeSetMissing(t *testing.T) {
	s := NewRangeSet()
	s.Add(10, 20)
	s.Add(40, 50)
	missing := s.Missing(60)
	want := []Range{{0, 10}, {20, 40}, {50, 60}}
	if len(missing) != len(want) {
		t.Fatalf("missing %v", missing)
	}
	for i := range want {
		if missing[i] != want[i] {
			t.Fatalf("missing %v want %v", missing, want)
		}
	}
	if !NewRangeSet().Complete(0) {
		t.Fatal("empty set should be complete for size 0")
	}
	full := NewRangeSet()
	full.Add(0, 60)
	if !full.Complete(60) || len(full.Missing(60)) != 0 {
		t.Fatal("full set should be complete")
	}
}

func TestRangeSetContains(t *testing.T) {
	s := NewRangeSet()
	s.Add(10, 20)
	if !s.Contains(10, 20) || !s.Contains(12, 15) || !s.Contains(5, 5) {
		t.Fatal("contains false negative")
	}
	if s.Contains(5, 15) || s.Contains(15, 25) {
		t.Fatal("contains false positive")
	}
}

func TestMarkerRoundTrip(t *testing.T) {
	s := NewRangeSet()
	s.Add(0, 100)
	s.Add(200, 300)
	m := s.Marker()
	if m != "0-100,200-300" {
		t.Fatalf("marker %q", m)
	}
	rs, err := ParseRanges(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[1] != (Range{200, 300}) {
		t.Fatalf("parsed %v", rs)
	}
	if rs2, err := ParseRanges(""); err != nil || rs2 != nil {
		t.Fatal("empty marker should parse to nil")
	}
	for _, bad := range []string{"x", "5", "10-5", "-1-3", "1-2,bad"} {
		if _, err := ParseRanges(bad); err == nil {
			t.Errorf("ParseRanges(%q) should fail", bad)
		}
	}
}

func TestRangeSetPropertyEquivalentToBitmap(t *testing.T) {
	// Against a reference bitmap implementation, under random adds.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 500
		s := NewRangeSet()
		ref := make([]bool, size)
		for i := 0; i < 40; i++ {
			a := rng.Intn(size)
			b := a + rng.Intn(size-a)
			s.Add(int64(a), int64(b))
			for j := a; j < b; j++ {
				ref[j] = true
			}
		}
		// Covered must match.
		var covered int64
		for _, v := range ref {
			if v {
				covered++
			}
		}
		if s.Covered() != covered {
			return false
		}
		// Ranges must be sorted, disjoint, non-adjacent... adjacency is
		// merged by construction; verify round-trip through marker.
		rs, err := ParseRanges(s.Marker())
		if err != nil && covered > 0 {
			return false
		}
		rebuilt := FromRanges(rs)
		if rebuilt.Covered() != covered {
			return false
		}
		// Missing ∪ present must tile [0, size).
		var total int64
		for _, r := range s.Missing(size) {
			total += r.Len()
		}
		return total+covered == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSetConcurrentAdds(t *testing.T) {
	s := NewRangeSet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 1000; i += 8 {
				s.Add(int64(i*10), int64(i*10+10))
			}
		}(w)
	}
	wg.Wait()
	if s.Covered() != 10000 {
		t.Fatalf("covered %d want 10000", s.Covered())
	}
	if rs := s.Ranges(); len(rs) != 1 {
		t.Fatalf("ranges %v", rs)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Block{Desc: DescRestartable, Count: 5, Offset: 1 << 40, Data: []byte("hello")}
	if err := WriteBlock(&buf, in); err != nil {
		t.Fatal(err)
	}
	eod := &Block{Desc: DescEOD}
	WriteBlock(&buf, eod)
	eof := &Block{Desc: DescEOF, Offset: 4}
	WriteBlock(&buf, eof)

	out, scratch, err := ReadBlock(&buf, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Offset != 1<<40 || string(out.Data) != "hello" || out.EOD() || out.EOF() {
		t.Fatalf("block %+v", out)
	}
	out2, scratch, err := ReadBlock(&buf, scratch, 0)
	if err != nil || !out2.EOD() {
		t.Fatalf("eod %+v err %v", out2, err)
	}
	out3, _, err := ReadBlock(&buf, scratch, 0)
	if err != nil || !out3.EOF() || out3.Offset != 4 {
		t.Fatalf("eof %+v err %v", out3, err)
	}
}

func TestReadBlockRejectsHuge(t *testing.T) {
	var buf bytes.Buffer
	WriteBlock(&buf, &Block{Desc: 0, Count: 1 << 31, Offset: 0})
	if _, _, err := ReadBlock(&buf, nil, 0); err == nil {
		t.Fatal("unreasonable block length accepted")
	}
}

func TestBlockPropertyRoundTrip(t *testing.T) {
	f := func(desc byte, offset uint64, payload []byte) bool {
		var buf bytes.Buffer
		in := &Block{Desc: desc, Count: uint64(len(payload)), Offset: offset, Data: payload}
		if err := WriteBlock(&buf, in); err != nil {
			return false
		}
		out, _, err := ReadBlock(&buf, nil, 0)
		if err != nil {
			return false
		}
		return out.Desc == desc && out.Offset == offset && bytes.Equal(out.Data, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
