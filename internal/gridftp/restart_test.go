package gridftp

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/netsim"
)

// faultingStorage wraps a Storage and makes the next created/opened file
// fail its writes after a byte threshold — simulating a mid-transfer
// failure on the receiving end (disk error, node crash). Arm() re-arms it.
type faultingStorage struct {
	dsi.Storage
	mu        sync.Mutex
	armed     bool
	threshold int64
}

func (f *faultingStorage) Arm(threshold int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = true
	f.threshold = threshold
}

func (f *faultingStorage) Create(user, p string) (dsi.File, error) {
	file, err := f.Storage.Create(user, p)
	if err != nil {
		return nil, err
	}
	return f.maybeWrap(file), nil
}

func (f *faultingStorage) Open(user, p string) (dsi.File, error) {
	file, err := f.Storage.Open(user, p)
	if err != nil {
		return nil, err
	}
	return f.maybeWrap(file), nil
}

func (f *faultingStorage) maybeWrap(file dsi.File) dsi.File {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.armed {
		return file
	}
	f.armed = false
	return &faultingFile{File: file, threshold: f.threshold}
}

type faultingFile struct {
	dsi.File
	mu        sync.Mutex
	written   int64
	threshold int64
}

var errInjected = errors.New("injected storage fault")

func (f *faultingFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	f.written += int64(len(p))
	tripped := f.written > f.threshold
	f.mu.Unlock()
	if tripped {
		return 0, errInjected
	}
	return f.File.WriteAt(p, off)
}

func TestRestartAfterInjectedFault(t *testing.T) {
	nw := netsim.NewNetwork()
	// Slow the link slightly so the transfer spans several markers.
	nw.SetLink("laptop", "siteA", netsim.LinkParams{
		Bandwidth: 8e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 20,
	})
	var faulty *faultingStorage
	s := newSite(t, nw, "siteA", func(cfg *ServerConfig) {
		faulty = &faultingStorage{Storage: cfg.Storage}
		cfg.Storage = faulty
		cfg.MarkerInterval = 20 * time.Millisecond
	})
	c := s.connect(t, nw.Host("laptop"), true)
	if err := c.SetMarkerInterval(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	payload := pattern(1 << 20)
	faulty.Arm(400_000) // fail after ~40% received

	var lastMarkers []Range
	c.OnMarker(func(rs []Range) { lastMarkers = rs })

	_, err := c.Put("/restart.bin", dsi.NewBufferFile(payload))
	if err == nil {
		t.Fatal("expected injected fault to fail the first attempt")
	}
	if len(lastMarkers) == 0 {
		t.Fatal("no restart markers collected before the fault")
	}
	already := FromRanges(lastMarkers).Covered()
	if already == 0 || already >= int64(len(payload)) {
		t.Fatalf("marker coverage %d implausible", already)
	}

	// Retry from the markers: only the missing bytes should move.
	c.SetRestart(lastMarkers)
	stats, err := c.Put("/restart.bin", dsi.NewBufferFile(payload))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes >= int64(len(payload)) {
		t.Fatalf("retry resent everything (%d bytes); restart markers unused", stats.Bytes)
	}
	if got := s.readFile(t, "/restart.bin"); !bytes.Equal(got, payload) {
		t.Fatal("content mismatch after restart")
	}
	t.Logf("first attempt delivered %d/%d bytes; retry moved %d", already, len(payload), stats.Bytes)
}

func TestAbortedDataConnectionFailsTransfer(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	payload := pattern(3 * DefaultBlockSize)

	// Deterministic fault: make the first put succeed, then abort the
	// pooled (cached) channels and verify the next transfer recovers by
	// opening fresh ones after the failure surfaces.
	if _, err := c.Put("/a.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	for _, ch := range c.pooledDialed {
		if nc, ok := ch.raw.(*netsim.Conn); ok {
			nc.Abort()
		}
	}
	// The next put over the dead cached channels fails...
	_, err := c.Put("/b.bin", dsi.NewBufferFile(payload))
	if err == nil {
		// Depending on protection level the write may not notice; accept
		// either, but content must be correct if it succeeded.
		if got := s.readFile(t, "/b.bin"); !bytes.Equal(got, payload) {
			t.Fatal("silent corruption after aborted channels")
		}
		return
	}
	// ...and the one after recovers with fresh channels.
	if _, err := c.Put("/c.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatalf("recovery transfer failed: %v", err)
	}
	if got := s.readFile(t, "/c.bin"); !bytes.Equal(got, payload) {
		t.Fatal("content mismatch after recovery")
	}
}
