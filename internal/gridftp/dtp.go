package gridftp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/netsim"
)

// TransferMode selects the data channel mode.
type TransferMode byte

const (
	// ModeStream is classic RFC 959 stream mode: one connection, EOF by
	// close. No restart markers, no parallelism.
	ModeStream TransferMode = 'S'
	// ModeExtended is GridFTP MODE E: framed blocks with offsets, enabling
	// parallel streams, striping, out-of-order delivery, and restart.
	ModeExtended TransferMode = 'E'
)

// ChannelSpec captures the data channel parameters negotiated on the
// control channel.
type ChannelSpec struct {
	Mode        TransferMode
	Parallelism int
	BlockSize   int
	DCAU        DCAUMode
	Prot        ProtLevel
	// Transport selects the data channel transport protocol (TCP or a
	// rate-based UDT profile), reached through the XIO layer (§II.A [9]).
	Transport netsim.Transport
	// MarkerInterval is how often the receiving side reports restart
	// markers; zero disables them.
	MarkerInterval time.Duration
	// Deflate layers DEFLATE compression over each data channel
	// ("OPTS RETR Deflate=1;"). Both ends of the session see the same
	// negotiation, so their channel pools flush in lockstep and every
	// channel is wrapped symmetrically.
	Deflate bool
}

// Normalize fills defaults.
func (s ChannelSpec) Normalize() ChannelSpec {
	if s.Mode == 0 {
		s.Mode = ModeStream
	}
	if s.Parallelism <= 0 {
		s.Parallelism = 1
	}
	if s.Mode == ModeStream {
		s.Parallelism = 1
	}
	if s.BlockSize <= 0 {
		s.BlockSize = DefaultBlockSize
	}
	if s.DCAU == 0 {
		s.DCAU = DCAUSelf
	}
	if s.Prot == 0 {
		s.Prot = ProtClear
	}
	return s
}

// sendModeE streams the given file ranges over the (already secured)
// connections as MODE E blocks. Connection 0 additionally carries the EOF
// block announcing how many EODs the receiver should expect. onBytes, if
// non-nil, is invoked per sent block with the stream index and byte count
// (the performance-marker emitter samples the resulting counters).
func sendModeE(conns []net.Conn, f dsi.File, ranges []Range, blockSize int, onBytes func(stream int, n int64)) error {
	if len(conns) == 0 {
		return errors.New("gridftp: no data connections")
	}
	type job struct {
		off int64
		n   int
	}
	jobs := make(chan job, len(conns)*2)
	go func() {
		defer close(jobs)
		for _, r := range ranges {
			for off := r.Start; off < r.End; off += int64(blockSize) {
				n := int64(blockSize)
				if off+n > r.End {
					n = r.End - off
				}
				jobs <- job{off, int(n)}
			}
		}
	}()

	pool := poolFor(blockSize)
	var wg sync.WaitGroup
	errCh := make(chan error, len(conns))
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			buf := pool.Lease()
			defer pool.Release(buf)
			bw := newBlockWriter(conn, blockSize)
			if i == 0 {
				if err := bw.writeBlock(DescEOF, 0, uint64(len(conns)), nil); err != nil {
					errCh <- fmt.Errorf("gridftp: send EOF block: %w", err)
					return
				}
			}
			for j := range jobs {
				data := buf[:j.n]
				if _, err := f.ReadAt(data, j.off); err != nil && err != io.EOF {
					errCh <- fmt.Errorf("gridftp: read at %d: %w", j.off, err)
					return
				}
				if err := bw.writeBlock(DescRestartable, uint64(j.n), uint64(j.off), data); err != nil {
					errCh <- fmt.Errorf("gridftp: send block at %d: %w", j.off, err)
					return
				}
				if onBytes != nil {
					onBytes(i, int64(j.n))
				}
			}
			if err := bw.writeBlock(DescEOD, 0, 0, nil); err != nil {
				errCh <- fmt.Errorf("gridftp: send EOD: %w", err)
				return
			}
			if err := bw.flush(); err != nil {
				errCh <- fmt.Errorf("gridftp: flush blocks: %w", err)
			}
		}(i, conn)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// recvResult reports what a receive attempt accomplished; Received is
// meaningful even on error (it seeds restart markers).
type recvResult struct {
	Received *RangeSet
	Err      error
}

// recvModeE accepts data connections from accept and reassembles blocks
// into f. It stops accepting once the EOF block announces the stream
// count; the stop channel passed to accept closes when the transfer has
// concluded so a blocked accept can bail out. onBytes, if non-nil, is
// invoked whenever new data lands, with the stream index (accept order)
// and byte count — the performance-marker emitter samples the resulting
// per-stripe counters. A close of cancel (may be nil) aborts the receive —
// used when the control channel reports failure before or during the
// transfer.
func recvModeE(accept func(stop <-chan struct{}) (net.Conn, error), f dsi.File, existing *RangeSet, blockSize int, onBytes func(stream int, n int64), cancel <-chan struct{}) recvResult {
	received := existing
	if received == nil {
		received = NewRangeSet()
	}
	var (
		mu       sync.Mutex
		expected = -1 // total streams, learned from the EOF block
		accepted = 0
		eods     = 0
		finished bool
		firstErr error
	)
	done := make(chan struct{})
	var closeOnce sync.Once
	finish := func() {
		closeOnce.Do(func() {
			mu.Lock()
			finished = true
			mu.Unlock()
			close(done)
		})
	}

	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		finish()
	}

	var activeConns []net.Conn // guarded by mu; closed on cancel
	if cancel != nil {
		go func() {
			select {
			case <-cancel:
				setErr(errors.New("gridftp: transfer canceled by control channel"))
				// Unblock handlers stuck reading connections the sender
				// will never use.
				mu.Lock()
				conns := append([]net.Conn(nil), activeConns...)
				mu.Unlock()
				for _, c := range conns {
					c.Close()
				}
			case <-done:
			}
		}()
	}

	pool := poolFor(blockSize)
	limit := blockLenLimit(blockSize)
	var wg sync.WaitGroup
	handle := func(stream int, conn net.Conn) {
		defer wg.Done()
		// Backstop: the first block must arrive within a bounded window,
		// so a silent channel (peer gone, protocol desync) cannot park
		// this handler — and with it the whole transfer — forever.
		type deadliner interface{ SetReadDeadline(time.Time) error }
		dl, hasDeadline := conn.(deadliner)
		if hasDeadline {
			dl.SetReadDeadline(time.Now().Add(60 * time.Second))
		}
		first := true
		buf := pool.Lease()
		defer func() { pool.Release(buf) }()
		for {
			b, nbuf, err := ReadBlock(conn, buf, limit)
			buf = nbuf
			if err == nil && first && hasDeadline {
				dl.SetReadDeadline(time.Time{})
				first = false
			}
			if err != nil {
				setErr(fmt.Errorf("gridftp: data connection lost: %w", err))
				return
			}
			if b.EOF() {
				mu.Lock()
				expected = int(b.Offset)
				doneNow := eods == expected
				mu.Unlock()
				if doneNow {
					finish()
				}
			}
			if b.Count > 0 {
				if _, err := f.WriteAt(b.Data, int64(b.Offset)); err != nil {
					setErr(fmt.Errorf("gridftp: write at %d: %w", b.Offset, err))
					return
				}
				received.Add(int64(b.Offset), int64(b.Offset)+int64(b.Count))
				if onBytes != nil {
					onBytes(stream, int64(b.Count))
				}
			}
			if b.EOD() {
				mu.Lock()
				eods++
				doneNow := expected >= 0 && eods == expected
				mu.Unlock()
				if doneNow {
					finish()
				}
				return
			}
		}
	}

	// Acceptor: pull connections until we know the expected stream count
	// and have accepted that many, or an error/finish occurs.
	go func() {
		for {
			mu.Lock()
			enough := finished || (expected >= 0 && accepted >= expected)
			mu.Unlock()
			if enough {
				return
			}
			conn, err := accept(done)
			if err != nil {
				mu.Lock()
				fin := finished
				mu.Unlock()
				if !fin {
					// A bail-out after the transfer concluded is benign.
					setErr(fmt.Errorf("gridftp: accept data connection: %w", err))
				}
				return
			}
			mu.Lock()
			if finished {
				// Transfer already concluded; a late connection is spurious.
				mu.Unlock()
				return
			}
			stream := accepted
			accepted++
			activeConns = append(activeConns, conn)
			wg.Add(1)
			mu.Unlock()
			go handle(stream, conn)
		}
	}()

	<-done
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return recvResult{Received: received, Err: firstErr}
}

// preallocate passes a destination-size hint (from ALLO or the sender's
// announced size) to DSI files that support it, so block-at-a-time writes
// land in storage sized once up front instead of grown copy by copy.
func preallocate(f dsi.File, size int64) {
	if p, ok := f.(interface{ Preallocate(int64) }); ok && size > 0 {
		p.Preallocate(size)
	}
}

// osFiler is implemented by DSI files backed by a real *os.File (posix
// storage); the stream-mode paths use it to reach the kernel's
// sendfile/splice fast paths instead of shuttling through a user buffer.
type osFiler interface {
	OSFile() *os.File
}

// sendStream writes the file range [offset, size) as a raw byte stream and
// half-closes the connection to signal EOF. When the file is *os.File-
// backed and the connection (or its counting wrappers) forwards
// io.ReaderFrom to a real TCP socket, the copy runs zero-copy via
// sendfile; otherwise it loops through a pooled buffer of the negotiated
// block size.
func sendStream(conn net.Conn, f dsi.File, offset, size int64, blockSize int) error {
	if rf, ok := conn.(io.ReaderFrom); ok {
		if of, ok := f.(osFiler); ok && size > offset {
			if _, err := of.OSFile().Seek(offset, io.SeekStart); err == nil {
				lr := &io.LimitedReader{R: of.OSFile(), N: size - offset}
				if _, err := rf.ReadFrom(lr); err != nil {
					return err
				}
				return closeWrite(conn)
			}
		}
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	pool := poolFor(blockSize)
	buf := pool.Lease()
	defer pool.Release(buf)
	for off := offset; off < size; {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil && err != io.EOF {
			return err
		}
		if _, err := conn.Write(buf[:n]); err != nil {
			return err
		}
		off += n
	}
	return closeWrite(conn)
}

func closeWrite(conn net.Conn) error {
	if hc, ok := conn.(interface{ CloseWrite() error }); ok {
		return hc.CloseWrite()
	}
	return nil
}

// recvStream reads a raw byte stream into f starting at offset until EOF.
// *os.File-backed DSI files receive via (*os.File).ReadFrom — splice/
// copy_file_range when the kernel supports it; everything else loops
// through a pooled buffer of the negotiated block size.
func recvStream(conn net.Conn, f dsi.File, offset int64, blockSize int) (int64, error) {
	if of, ok := f.(osFiler); ok {
		if _, err := of.OSFile().Seek(offset, io.SeekStart); err == nil {
			return io.Copy(of.OSFile(), conn)
		}
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	pool := poolFor(blockSize)
	buf := pool.Lease()
	defer pool.Release(buf)
	var total int64
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			if _, werr := f.WriteAt(buf[:n], offset+total); werr != nil {
				return total, werr
			}
			total += int64(n)
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// markerEmitter periodically renders the received range set through emit
// until stop is closed. It emits a final marker before returning so the
// last state is always reported.
func markerEmitter(set *RangeSet, interval time.Duration, emit func(marker string), stop <-chan struct{}) {
	if interval <= 0 {
		<-stop
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	last := ""
	for {
		select {
		case <-t.C:
			if m := set.Marker(); m != "" && m != last {
				emit(m)
				last = m
			}
		case <-stop:
			if m := set.Marker(); m != "" && m != last {
				emit(m)
			}
			return
		}
	}
}
