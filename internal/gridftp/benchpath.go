package gridftp

import (
	"fmt"
	"io"
	"net"
)

// This file is the benchmark harness for the MODE E data fast path
// (BenchmarkE19DataPath): it exposes the sender/receiver block loops in
// both their historical form (a fresh payload buffer and two writes per
// block) and the current form (pooled lease, batched/vectored blockWriter,
// pooled receive), so the before/after of the fast-path work stays
// measurable after the legacy path is gone from the production DTP.

// SendBenchBlocks streams totalBytes of MODE E data blocks over conn,
// followed by EOD and an EOF announcing one stream, then half-closes.
// fast selects the pooled+vectored writer; legacy reproduces the
// pre-fast-path behavior (per-block allocation, header and payload as
// separate writes).
func SendBenchBlocks(conn net.Conn, totalBytes int64, blockSize int, fast bool) error {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	defer closeWrite(conn)
	var off int64
	if fast {
		pool := poolFor(blockSize)
		buf := pool.Lease()
		defer pool.Release(buf)
		bw := newBlockWriter(conn, blockSize)
		if err := bw.writeBlock(DescEOF, 0, 1, nil); err != nil {
			return err
		}
		for off < totalBytes {
			n := int64(blockSize)
			if rem := totalBytes - off; rem < n {
				n = rem
			}
			if err := bw.writeBlock(DescRestartable, uint64(n), uint64(off), buf[:n]); err != nil {
				return err
			}
			off += n
		}
		if err := bw.writeBlock(DescEOD, 0, 0, nil); err != nil {
			return err
		}
		return bw.flush()
	}
	if err := WriteBlock(conn, &Block{Desc: DescEOF, Offset: 1}); err != nil {
		return err
	}
	for off < totalBytes {
		n := int64(blockSize)
		if rem := totalBytes - off; rem < n {
			n = rem
		}
		payload := make([]byte, n) // the historical per-block allocation
		if err := WriteBlock(conn, &Block{Desc: DescRestartable, Count: uint64(n), Offset: uint64(off), Data: payload}); err != nil {
			return err
		}
		off += n
	}
	return WriteBlock(conn, &Block{Desc: DescEOD})
}

// RecvBenchBlocks drains one SendBenchBlocks stream and returns the
// payload byte count. fast reuses one pooled buffer across blocks; legacy
// reads every block into a fresh allocation, as the receive loop did
// before the fast path.
func RecvBenchBlocks(conn net.Conn, blockSize int, fast bool) (int64, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	limit := blockLenLimit(blockSize)
	var buf []byte
	var pool *BufferPool
	if fast {
		pool = poolFor(blockSize)
		buf = pool.Lease()
		defer func() { pool.Release(buf) }()
	}
	var total int64
	for {
		var b Block
		var err error
		if fast {
			b, buf, err = ReadBlock(conn, buf, limit)
		} else {
			b, _, err = ReadBlock(conn, nil, limit)
		}
		if err != nil {
			if err == io.EOF {
				return total, nil
			}
			return total, fmt.Errorf("gridftp: bench recv: %w", err)
		}
		total += int64(b.Count)
		if b.EOD() {
			return total, nil
		}
	}
}
