package gridftp

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridftp.dev/instant/internal/authz"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/obs/tenant"
	"gridftp.dev/instant/internal/usagestats"
)

// DefaultPort is the IANA-registered GridFTP control port.
const DefaultPort = 2811

// StripeNode is one data-mover node of a striped server: a host that runs
// a DTP but no protocol interpreter (§II.B).
type StripeNode struct {
	Host *netsim.Host
}

// ServerConfig configures a GridFTP server.
type ServerConfig struct {
	// HostCred is the server's host credential (control channel identity).
	HostCred *gsi.Credential
	// Trust validates control-channel clients and is the default data
	// channel trust (DCSC overlays it).
	Trust *gsi.TrustStore
	// Authz maps authenticated identities to local usernames.
	Authz authz.Callout
	// Storage is the DSI backend requests execute against.
	Storage dsi.Storage
	// Banner is the 220 greeting text.
	Banner string
	// MarkerInterval is how often STOR emits restart markers (111
	// replies). Zero disables them.
	MarkerInterval time.Duration
	// StripeNodes, when non-empty, turns this into a striped server: the
	// PI runs on the main host, DTPs on the stripe nodes.
	StripeNodes []StripeNode
	// DisableChannelCache turns off cross-transfer data channel reuse
	// (used by the ablation benchmark).
	DisableChannelCache bool
	// DisableTrace removes the TRACE feature: FEAT stops advertising it
	// and SITE TRACE is rejected as unknown. Used to prove clients degrade
	// gracefully against servers without distributed tracing.
	DisableTrace bool
	// DataTimeout bounds waits for data connections (default 30s).
	DataTimeout time.Duration
	// Usage, if non-nil, receives per-transfer usage reports (the
	// opt-in statistics stream behind the paper's Fig 1). Use
	// usagestats.MultiSink to feed several sinks — e.g. the fleet
	// collector plus a metrics registry — from one server.
	Usage usagestats.Sink
	// EndpointName identifies this server in usage reports.
	EndpointName string
	// Logf, if non-nil, receives debug logging (legacy hook; the
	// structured Obs logger is the primary channel).
	Logf func(format string, args ...any)
	// Obs receives structured logs, metrics, and spans. Nil disables
	// observability (all call sites degrade to no-ops).
	Obs *obs.Obs
	// Streams, if non-nil, receives per-stream wire telemetry for every
	// MODE E transfer this server carries: cumulative bytes, EWMA
	// throughput, RTT/retransmit/cwnd wire counters, and stall-watchdog
	// supervision (the registry's Stall window decides when a silent
	// stream is declared stalled and — with AbortOnStall — torn down so
	// the client can retry from its restart markers).
	Streams *streamstats.Registry
	// Tenants, if non-nil, receives per-DN accounting from every
	// authenticated session: one Command observation per dispatched
	// command (with its error outcome) and the byte count of every
	// completed transfer, keyed on the control-channel identity. This is
	// the server-side half of tenant attribution; the hosted transfer
	// service attributes at task granularity.
	Tenants *tenant.Accountant
}

// Server is a GridFTP server protocol interpreter plus its DTP(s).
type Server struct {
	cfg  ServerConfig
	host *netsim.Host
	log  *obs.Logger

	nextSession atomic.Int64

	mu       sync.Mutex
	closed   bool
	listener net.Listener
}

// NewServer creates a server bound to a simulated host.
func NewServer(host *netsim.Host, cfg ServerConfig) (*Server, error) {
	if cfg.HostCred == nil || cfg.Trust == nil {
		return nil, errors.New("gridftp: server requires host credential and trust store")
	}
	if cfg.Authz == nil {
		return nil, errors.New("gridftp: server requires an authorization callout")
	}
	if cfg.Storage == nil {
		return nil, errors.New("gridftp: server requires a storage backend")
	}
	if cfg.Banner == "" {
		cfg.Banner = "Instant GridFTP server ready"
	}
	// Normalize the usage sink: a typed nil (nil *Collector in the
	// interface) must not survive past this point, or every transfer's
	// report call would panic the session.
	cfg.Usage = usagestats.MultiSink(cfg.Usage)
	logger := cfg.Obs.Logger().With("component", "gridftp-server")
	if cfg.EndpointName != "" {
		logger = logger.With("endpoint", cfg.EndpointName)
	}
	return &Server{cfg: cfg, host: host, log: logger}, nil
}

// Host returns the simulated host the server runs on.
func (s *Server) Host() *netsim.Host { return s.host }

// ListenAndServe starts accepting control connections on the given port
// (0 picks one) and returns the listener address immediately; sessions are
// served on background goroutines.
func (s *Server) ListenAndServe(port int) (net.Addr, error) {
	l, err := s.host.Listen(port)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go s.serveLoop(l)
	return l.Addr(), nil
}

// Close stops the control listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

func (s *Server) serveLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go s.serveSession(conn)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// session is the per-control-connection state machine.
type session struct {
	srv  *Server
	ctrl *ftp.Conn
	// id is this session's server-unique identifier; log carries it (and,
	// after authentication, the remote DN) on every line.
	id  int64
	log *obs.Logger

	// replyMu serializes control-channel writes (marker goroutines write
	// 111 replies concurrently with the command loop).
	replyMu sync.Mutex

	authenticated bool
	identity      *gsi.VerifiedIdentity
	localUser     string

	// delegated is the user proxy delegated over the control channel;
	// it is the default data channel credential.
	delegated *gsi.Credential
	// dcsc is the security context installed by DCSC P (nil = default).
	dcsc *SecurityContext

	spec    ChannelSpec
	restart []Range
	cwd     string

	// alloHint is the size announced by ALLO for the next STOR; the
	// storage layer preallocates from it instead of grow-copying per
	// block (the top allocator in the E2 profile). Consumed by one STOR.
	alloHint int64

	// task is the caller-supplied task label installed by SITE TASK; the
	// stream-telemetry plane uses it to name this session's per-stream
	// series, so both ends of a third-party transfer (and the scheduler
	// that drives them) aggregate under one task identity.
	task string

	renameFrom string

	// lite marks a GridFTP-Lite session (SSH-tunneled control channel,
	// §III.B): no data channel security, no delegation, no striping.
	lite bool

	// traceCtx is the remote trace context installed by SITE TRACE; while
	// zero (no/invalid context), transfer spans root locally instead.
	traceCtx obs.SpanContext
	// cmdSpan covers the transfer command currently dispatching, so
	// handlers deeper in the call chain can annotate it. Only the command
	// loop goroutine touches it.
	cmdSpan *obs.Span
	// lastReplyCode is the most recent final (>= 200) reply code, used to
	// classify command latency as ok|err. Written under replyMu by the
	// command loop (marker goroutines only send 1xx replies) and read by
	// the command loop.
	lastReplyCode int

	data sessionData
}

func (s *Server) serveSession(conn net.Conn) {
	id := s.nextSession.Add(1)
	sess := &session{
		srv:  s,
		ctrl: ftp.NewConn(conn),
		id:   id,
		log:  s.log.With("session", id, "remote", conn.RemoteAddr().String()),
		spec: ChannelSpec{}.Normalize(),
		cwd:  "/",
	}
	reg := s.cfg.Obs.Registry()
	ev := s.cfg.Obs.EventLog()
	reg.Counter("gridftp.server.sessions_total").Inc()
	reg.Gauge("gridftp.server.sessions_active").Add(1)
	sess.log.Info("session open")
	ev.Append(eventlog.SessionOpen, "component", "gridftp-server",
		"session", id, "remote", conn.RemoteAddr().String())
	start := time.Now()
	defer func() {
		// The panic handler runs before close so a crashed session still
		// tears down its data state and is logged with full context
		// (session id, remote address, and — when authenticated — DN).
		if r := recover(); r != nil {
			reg.Counter("gridftp.server.session_panics").Inc()
			sess.log.Error("session panic", "panic", fmt.Sprint(r))
		}
		sess.close()
		reg.Gauge("gridftp.server.sessions_active").Add(-1)
		sess.log.Info("session close", "dur", time.Since(start).Round(time.Microsecond))
		ev.Append(eventlog.SessionClose, "component", "gridftp-server",
			"session", id, "dur", time.Since(start).Round(time.Microsecond).String())
	}()
	sess.reply(ftp.CodeReadyForNewUser, s.cfg.Banner)
	sess.loop()
}

func (sess *session) close() {
	sess.data.closeAll()
	sess.ctrl.Close()
}

func (sess *session) reply(code int, lines ...string) {
	sess.replyMu.Lock()
	defer sess.replyMu.Unlock()
	if code >= 200 {
		sess.lastReplyCode = code
	}
	if err := sess.ctrl.WriteReply(code, lines...); err != nil {
		sess.srv.logf("reply write failed: %v", err)
	}
}

func (sess *session) loop() {
	// The per-command latency histogram is the direct view on the control
	// channel RTT cost that dominates lots-of-small-files workloads: each
	// file costs a handful of commands, so command latency times command
	// count is the protocol overhead pipelining exists to hide. The
	// unlabeled series is the aggregate; the outcome-labeled pair splits
	// failed-command latency from successes.
	reg := sess.srv.cfg.Obs.Registry()
	cmdHist := reg.Histogram("gridftp.server.command_seconds", obs.DefaultDurationBuckets)
	cmdOK := reg.Histogram(obs.Name("gridftp.server.command_seconds", "outcome=ok"), obs.DefaultDurationBuckets)
	cmdErr := reg.Histogram(obs.Name("gridftp.server.command_seconds", "outcome=err"), obs.DefaultDurationBuckets)
	for {
		cmd, err := sess.ctrl.ReadCommand()
		if err != nil {
			return
		}
		sess.srv.logf("<- %s", cmd)
		sess.log.Debug("command", "cmd", cmd.Name, "params", cmd.Params)
		start := time.Now()
		sess.beginCommandSpan(cmd)
		quit := sess.dispatch(cmd)
		// Capture the trace id before endCommandSpan clears the span: the
		// histogram exemplar is what links a fleet latency alert back to a
		// representative trace in the collector.
		var traceID string
		if sess.cmdSpan != nil {
			traceID = sess.cmdSpan.TraceID.String()
		}
		sess.endCommandSpan()
		dur := time.Since(start).Seconds()
		cmdHist.ObserveExemplar(dur, traceID)
		if sess.lastReplyCode >= 400 {
			cmdErr.ObserveExemplar(dur, traceID)
		} else {
			cmdOK.ObserveExemplar(dur, traceID)
		}
		// Lite sessions authenticate via the SSH tunnel and carry no
		// credential DN — tenant accounting is GSI-keyed, so they skip it
		// (same rule as the per-transfer byte attribution).
		if sess.authenticated && sess.identity != nil {
			sess.srv.cfg.Tenants.Command(string(sess.identity.Identity), sess.lastReplyCode >= 400)
		}
		if quit {
			return
		}
	}
}

// tracedCommand reports whether a command gets its own span: the transfer
// verbs, whose server-side timing is what multi-process timelines need.
func tracedCommand(name string) bool {
	switch name {
	case "RETR", "STOR", "ERET":
		return true
	}
	return false
}

// beginCommandSpan starts the span covering one transfer command, bound
// to the session's SITE TRACE context when one is installed (a zero
// context makes StartSpanContext root the span locally).
func (sess *session) beginCommandSpan(cmd ftp.Command) {
	if !tracedCommand(cmd.Name) {
		return
	}
	span := sess.srv.cfg.Obs.Tracer().
		StartSpanContext("gridftp."+strings.ToLower(cmd.Name), sess.traceCtx)
	span.SetAttr("session", sess.id)
	if sess.srv.cfg.EndpointName != "" {
		span.SetAttr("endpoint", sess.srv.cfg.EndpointName)
	}
	sess.cmdSpan = span
}

func (sess *session) endCommandSpan() {
	if sess.cmdSpan == nil {
		return
	}
	sess.cmdSpan.SetAttr("reply", sess.lastReplyCode)
	if sess.lastReplyCode >= 400 {
		sess.cmdSpan.SetError(fmt.Errorf("reply %d", sess.lastReplyCode))
	}
	sess.cmdSpan.End()
	sess.cmdSpan = nil
}

// handleAuth performs the RFC 2228 security exchange: AUTH TLS upgrades
// the control channel to mutually authenticated TLS, then the
// authorization callout determines the local user (§II.C).
func (sess *session) handleAuth(params string) bool {
	if params != "TLS" && params != "GSSAPI" {
		sess.reply(ftp.CodeParamNotImpl, "Only AUTH TLS/GSSAPI supported")
		return false
	}
	if sess.authenticated {
		sess.reply(ftp.CodeBadSequence, "Already authenticated")
		return false
	}
	sess.reply(ftp.CodeAuthOK, "Proceed with security exchange")
	raw := sess.ctrl.Transport()
	tc := tls.Server(raw, gsi.ServerTLSConfig(sess.srv.cfg.HostCred, sess.srv.cfg.Trust))
	raw.SetDeadline(time.Now().Add(30 * time.Second))
	ev := sess.srv.cfg.Obs.EventLog()
	if err := tc.Handshake(); err != nil {
		sess.srv.logf("control handshake failed: %v", err)
		sess.log.Warn("control handshake failed", "err", err)
		ev.Append(eventlog.AuthFailure, "component", "gridftp-server",
			"session", sess.id, "stage", "handshake", "err", err.Error())
		return true // connection is unusable; drop the session
	}
	raw.SetDeadline(time.Time{})
	id, err := gsi.PeerIdentity(tc, sess.srv.cfg.Trust)
	if err != nil {
		sess.srv.logf("control peer verification failed: %v", err)
		sess.log.Warn("control peer verification failed", "err", err)
		ev.Append(eventlog.AuthFailure, "component", "gridftp-server",
			"session", sess.id, "stage", "verify", "err", err.Error())
		return true
	}
	sess.ctrl.Upgrade(tc)
	// Authorization callout: identity -> local user ("setuid").
	user, err := sess.srv.cfg.Authz.Map(id)
	if err != nil {
		sess.srv.cfg.Obs.Registry().Counter("gridftp.server.authz_denied").Inc()
		sess.log.Warn("authorization failed", "dn", string(id.Identity), "err", err)
		ev.Append(eventlog.AuthFailure, "component", "gridftp-server",
			"session", sess.id, "stage", "authz", "dn", string(id.Identity), "err", err.Error())
		sess.reply(ftp.CodeNotLoggedIn, fmt.Sprintf("Authorization failed: %v", err))
		return true
	}
	sess.authenticated = true
	sess.identity = id
	sess.localUser = user
	sess.log = sess.log.With("dn", string(id.Identity), "user", user)
	sess.log.Info("session authenticated")
	ev.Append(eventlog.AuthSuccess, "component", "gridftp-server",
		"session", sess.id, "dn", string(id.Identity), "user", user)
	sess.reply(ftp.CodeUserLoggedIn,
		fmt.Sprintf("User %s logged in as local user %s", id.Identity, user))
	return false
}

// handleDelegation receives a delegated proxy over the (now encrypted)
// control channel; it becomes the default data channel credential.
func (sess *session) handleDelegation() {
	sess.reply(335, "Ready for delegation")
	cred, err := gsi.AcceptDelegation(sess.ctrl.RW())
	if err != nil {
		sess.reply(ftp.CodeLocalError, fmt.Sprintf("Delegation failed: %v", err))
		return
	}
	// The delegated identity must match the control channel login.
	if cred.Identity() != sess.identity.Identity {
		sess.reply(ftp.CodeNotLoggedIn, "Delegated credential identity mismatch")
		return
	}
	sess.delegated = cred
	sess.data.flush() // security context changed
	sess.reply(ftp.CodeOK, "Delegation complete")
}

// dataContext resolves the active data channel security context.
func (sess *session) dataContext() *SecurityContext {
	if sess.dcsc != nil {
		return sess.dcsc
	}
	if sess.delegated == nil {
		return nil
	}
	return &SecurityContext{
		Cred:           sess.delegated,
		Trust:          sess.srv.cfg.Trust,
		ExpectIdentity: sess.delegated.Identity(),
	}
}
