package gridftp

import (
	"errors"
	"fmt"
	"net"

	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/netsim"
)

// GridFTP-Lite support (§III.B of the paper): SSH is used to start a
// GridFTP server on the target machine and the control channel is
// tunneled through the SSH session. This sidesteps X.509 setup entirely,
// but with the three limitations the paper enumerates, all reproduced
// here:
//
//  1. the data channel has no security (DCAU is forced off; PROT is
//     unavailable);
//  2. SSH supports no delegation, so transfers cannot be handed off to
//     agents like Globus Online (DELG is refused);
//  3. a striped server would have no security between the control node
//     and the data movers (stripe configuration is refused in lite mode).

// ServeLite runs one GridFTP-Lite session on an already-authenticated
// connection (the SSH tunnel): there is no AUTH exchange, the session is
// bound to localUser, and the lite restrictions apply.
func (s *Server) ServeLite(conn net.Conn, localUser string) {
	sess := &session{
		srv:  s,
		ctrl: ftp.NewConn(conn),
		spec: ChannelSpec{DCAU: DCAUNone}.Normalize(),
		cwd:  "/",

		authenticated: true,
		localUser:     localUser,
		lite:          true,
	}
	sess.spec.DCAU = DCAUNone
	defer sess.close()
	sess.reply(ftp.CodeReadyForNewUser, "GridFTP-Lite session (SSH-tunneled control channel)")
	sess.loop()
}

// liteRefusal intercepts the commands GridFTP-Lite cannot honor; it
// returns true when the command was handled (refused).
func (sess *session) liteRefusal(cmd ftp.Command) bool {
	if !sess.lite {
		return false
	}
	switch cmd.Name {
	case "AUTH":
		sess.reply(ftp.CodeNotImplemented, "GridFTP-Lite: authentication is the SSH tunnel's")
	case "DELG":
		sess.reply(ftp.CodeNotImplemented, "GridFTP-Lite: SSH does not support delegation (paper §III.B limitation 2)")
	case "DCAU":
		if cmd.Params == "N" || cmd.Params == "n" {
			sess.reply(ftp.CodeOK, "DCAU is always N in GridFTP-Lite")
			return true
		}
		sess.reply(ftp.CodeNotImplemented, "GridFTP-Lite: the data channel has no security (paper §III.B limitation 1)")
	case "PROT":
		if cmd.Params == "C" || cmd.Params == "c" {
			sess.reply(ftp.CodeOK, "PROT is always C in GridFTP-Lite")
			return true
		}
		sess.reply(ftp.CodeNotImplemented, "GridFTP-Lite: no data channel protection available")
	case "DCSC":
		sess.reply(ftp.CodeNotImplemented, "GridFTP-Lite: no data channel security context")
	case "SPAS", "SPOR":
		sess.reply(ftp.CodeNotImplemented, "GridFTP-Lite: striping disabled — no security between control and data-mover nodes (paper §III.B limitation 3)")
	default:
		return false
	}
	return true
}

// DialLite wraps an already-tunneled, already-authenticated connection as
// a GridFTP client session (the client half of GridFTP-Lite). The session
// has no credential: every data channel runs without DCAU.
func DialLite(host *netsim.Host, conn net.Conn) (*Client, error) {
	c := &Client{
		ctrl: ftp.NewConn(conn),
		host: host,
		spec: ChannelSpec{Mode: ModeExtended, DCAU: DCAUNone}.Normalize(),
	}
	c.spec.DCAU = DCAUNone
	if _, err := c.ctrl.Expect(ftp.CodeReadyForNewUser); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := c.cmdExpect("MODE", "E", ftp.CodeOK); err != nil {
		conn.Close()
		return nil, fmt.Errorf("gridftp: MODE E: %w", err)
	}
	return c, nil
}

// ErrLiteNoDelegation is returned by Client.Delegate on lite sessions.
var ErrLiteNoDelegation = errors.New("gridftp: GridFTP-Lite sessions cannot delegate (SSH has no delegation)")
