// Package gridftp implements the GridFTP protocol (GFD-R-P.020): server
// and client protocol interpreters, the data transfer process with MODE E
// extended block mode, parallel streams, striped transfers (SPAS/SPOR),
// restart markers, data channel authentication (DCAU), and the paper's
// Data Channel Security Context (DCSC) extension (§V).
package gridftp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// MODE E block descriptor bits (GridFTP extended block mode).
const (
	// DescEOD marks the final block on one data connection.
	DescEOD = 0x08
	// DescEOF carries the expected end-of-data-connection count in the
	// offset field; exactly one stream per transfer sends it.
	DescEOF = 0x40
	// DescRestartable is set on ordinary data blocks (they may be
	// restarted); informational in this implementation.
	DescRestartable = 0x20
)

// blockHeaderLen is descriptor(1) + count(8) + offset(8).
const blockHeaderLen = 17

// DefaultBlockSize is the MODE E payload size per block. Globus uses
// 256 KiB by default; the ablation bench sweeps this.
const DefaultBlockSize = 256 * 1024

// maxBlockLen is the absolute sanity cap on a block payload, used only
// when the caller has no negotiated block size to bound by.
const maxBlockLen = 1 << 30

// blockLenSlack is added to the negotiated block size when validating an
// incoming block's length: the peer negotiated the same size, but a little
// headroom tolerates off-by-rounding senders without letting a hostile
// header force a giant allocation.
const blockLenSlack = 64 * 1024

// blockLenLimit returns the payload-length cap for a session that
// negotiated the given block size.
func blockLenLimit(blockSize int) uint64 {
	if blockSize <= 0 {
		return maxBlockLen
	}
	return uint64(blockSize) + blockLenSlack
}

// Block is one MODE E extended-block-mode block.
type Block struct {
	Desc   byte
	Count  uint64 // payload length, or 0 for pure control blocks
	Offset uint64 // file offset, or EOD-count for EOF blocks
	Data   []byte
}

// EOD reports whether this block ends its data connection.
func (b *Block) EOD() bool { return b.Desc&DescEOD != 0 }

// EOF reports whether this block carries the stream-count announcement.
func (b *Block) EOF() bool { return b.Desc&DescEOF != 0 }

// putBlockHeader renders the 17-byte MODE E header into hdr.
func putBlockHeader(hdr []byte, desc byte, count, offset uint64) {
	hdr[0] = desc
	binary.BigEndian.PutUint64(hdr[1:9], count)
	binary.BigEndian.PutUint64(hdr[9:17], offset)
}

// WriteBlock writes one block to w as two writes (header, then payload).
// The data path uses blockWriter instead, which batches and vectorizes;
// this remains the simple one-shot form for control blocks and tests.
func WriteBlock(w io.Writer, b *Block) error {
	var hdr [blockHeaderLen]byte
	putBlockHeader(hdr[:], b.Desc, b.Count, b.Offset)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(b.Data) > 0 {
		if _, err := w.Write(b.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlock reads one block from r into buf (grown if needed) and returns
// it by value. The returned block's Data aliases buf, so with a pooled buf
// the steady-state receive loop performs zero allocations per block. limit
// caps the accepted payload length — pass blockLenLimit(blockSize) for a
// negotiated session, or 0 for the absolute 1 GiB sanity cap — so a
// hostile header cannot force a giant allocation.
func ReadBlock(r io.Reader, buf []byte, limit uint64) (Block, []byte, error) {
	var hdr [blockHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Block{}, buf, err
	}
	b := Block{
		Desc:   hdr[0],
		Count:  binary.BigEndian.Uint64(hdr[1:9]),
		Offset: binary.BigEndian.Uint64(hdr[9:17]),
	}
	if limit == 0 {
		limit = maxBlockLen
	}
	if b.Count > limit {
		return Block{}, buf, fmt.Errorf("gridftp: block length %d exceeds negotiated limit %d", b.Count, limit)
	}
	if b.Count > 0 {
		if uint64(cap(buf)) < b.Count {
			buf = make([]byte, b.Count)
		}
		data := buf[:b.Count]
		if _, err := io.ReadFull(r, data); err != nil {
			return Block{}, buf, fmt.Errorf("gridftp: short block payload: %w", err)
		}
		b.Data = data
	}
	return b, buf, nil
}

// buffersWriter is the vectored-write capability: one call delivers several
// byte slices as a single write on the wire. netsim connections and the
// counting wrappers (xio telemetry, streamstats) implement it; TLS and
// deflate layers deliberately do not, so framing falls back to a single
// coalesced write there.
type buffersWriter interface {
	WriteBuffers(bufs [][]byte) (int64, error)
}

// vectorMin is the payload size above which a block is written vectored
// ([header, payload] in one call) instead of memcpy'd into the coalescing
// buffer. Below it the copy is cheaper than the per-vector bookkeeping.
const vectorMin = 8 * 1024

// batchCap is the minimum coalescing-buffer capacity; small blocks batch
// until the buffer fills, so a 16 KiB-block transfer issues one write per
// ~4 blocks instead of two per block.
const batchCap = 64 * 1024

// blockWriter frames MODE E blocks onto one data connection with as few
// writes as possible. Small blocks and headers coalesce into a scratch
// buffer (batched: consecutive small blocks share one write); payloads of
// vectorMin and up go out as [header, payload] via WriteBuffers when the
// connection supports it, net.Buffers (writev) on real TCP, and a single
// coalesced write otherwise — never the historical two-writes-per-block.
type blockWriter struct {
	w    io.Writer
	vw   buffersWriter // non-nil: conn takes vectored writes natively
	tcp  *net.TCPConn  // non-nil: net.Buffers reaches writev
	buf  []byte        // coalescing buffer; len is the pending byte count
	vecs [2][]byte     // backing array for vectored [hdr, payload] calls
	hdr  [blockHeaderLen]byte
}

// newBlockWriter sizes the coalescing buffer so any block of the
// negotiated size can be flushed as one write even on plain io.Writer
// connections (TLS: one record instead of two).
func newBlockWriter(w io.Writer, blockSize int) *blockWriter {
	bw := &blockWriter{w: w}
	bw.vw, _ = w.(buffersWriter)
	bw.tcp, _ = w.(*net.TCPConn)
	capacity := batchCap
	if blockSize+blockHeaderLen > capacity {
		capacity = blockSize + blockHeaderLen
	}
	bw.buf = make([]byte, 0, capacity)
	return bw
}

// flush writes any batched bytes as a single write.
func (bw *blockWriter) flush() error {
	if len(bw.buf) == 0 {
		return nil
	}
	_, err := bw.w.Write(bw.buf)
	bw.buf = bw.buf[:0]
	return err
}

// writeVectored sends [hdr, payload] without copying the payload.
func (bw *blockWriter) writeVectored(payload []byte) error {
	if bw.vw != nil {
		bw.vecs[0], bw.vecs[1] = bw.hdr[:], payload
		_, err := bw.vw.WriteBuffers(bw.vecs[:])
		return err
	}
	nb := net.Buffers(bw.vecs[:])
	nb[0], nb[1] = bw.hdr[:], payload
	_, err := nb.WriteTo(bw.tcp)
	return err
}

// writeBlock frames one block. The payload may be reused by the caller as
// soon as writeBlock returns (vectored paths complete the write before
// returning; coalesced bytes are copied).
func (bw *blockWriter) writeBlock(desc byte, count, offset uint64, payload []byte) error {
	need := blockHeaderLen + len(payload)
	if len(bw.buf)+need > cap(bw.buf) {
		if err := bw.flush(); err != nil {
			return err
		}
	}
	if len(payload) >= vectorMin && (bw.vw != nil || bw.tcp != nil) {
		putBlockHeader(bw.hdr[:], desc, count, offset)
		return bw.writeVectored(payload)
	}
	n := len(bw.buf)
	bw.buf = bw.buf[:n+blockHeaderLen]
	putBlockHeader(bw.buf[n:], desc, count, offset)
	bw.buf = append(bw.buf, payload...)
	return nil
}
