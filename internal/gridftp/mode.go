// Package gridftp implements the GridFTP protocol (GFD-R-P.020): server
// and client protocol interpreters, the data transfer process with MODE E
// extended block mode, parallel streams, striped transfers (SPAS/SPOR),
// restart markers, data channel authentication (DCAU), and the paper's
// Data Channel Security Context (DCSC) extension (§V).
package gridftp

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MODE E block descriptor bits (GridFTP extended block mode).
const (
	// DescEOD marks the final block on one data connection.
	DescEOD = 0x08
	// DescEOF carries the expected end-of-data-connection count in the
	// offset field; exactly one stream per transfer sends it.
	DescEOF = 0x40
	// DescRestartable is set on ordinary data blocks (they may be
	// restarted); informational in this implementation.
	DescRestartable = 0x20
)

// blockHeaderLen is descriptor(1) + count(8) + offset(8).
const blockHeaderLen = 17

// DefaultBlockSize is the MODE E payload size per block. Globus uses
// 256 KiB by default; the ablation bench sweeps this.
const DefaultBlockSize = 256 * 1024

// Block is one MODE E extended-block-mode block.
type Block struct {
	Desc   byte
	Count  uint64 // payload length, or 0 for pure control blocks
	Offset uint64 // file offset, or EOD-count for EOF blocks
	Data   []byte
}

// EOD reports whether this block ends its data connection.
func (b *Block) EOD() bool { return b.Desc&DescEOD != 0 }

// EOF reports whether this block carries the stream-count announcement.
func (b *Block) EOF() bool { return b.Desc&DescEOF != 0 }

// WriteBlock writes one block to w.
func WriteBlock(w io.Writer, b *Block) error {
	var hdr [blockHeaderLen]byte
	hdr[0] = b.Desc
	binary.BigEndian.PutUint64(hdr[1:9], b.Count)
	binary.BigEndian.PutUint64(hdr[9:17], b.Offset)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(b.Data) > 0 {
		if _, err := w.Write(b.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlock reads one block from r into buf (grown if needed) and returns
// it. The returned block's Data aliases buf.
func ReadBlock(r io.Reader, buf []byte) (*Block, []byte, error) {
	var hdr [blockHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	b := &Block{
		Desc:   hdr[0],
		Count:  binary.BigEndian.Uint64(hdr[1:9]),
		Offset: binary.BigEndian.Uint64(hdr[9:17]),
	}
	if b.Count > 1<<30 {
		return nil, buf, fmt.Errorf("gridftp: unreasonable block length %d", b.Count)
	}
	if b.Count > 0 {
		if uint64(cap(buf)) < b.Count {
			buf = make([]byte, b.Count)
		}
		data := buf[:b.Count]
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, buf, fmt.Errorf("gridftp: short block payload: %w", err)
		}
		b.Data = data
	}
	return b, buf, nil
}
