package gridftp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Range is a half-open byte range [Start, End).
type Range struct {
	Start, End int64
}

// Len returns the range length.
func (r Range) Len() int64 { return r.End - r.Start }

// RangeSet is a set of disjoint, sorted byte ranges. It backs GridFTP
// restart markers: receivers track which regions have arrived, emit them
// as "111 Range Marker" replies, and senders resume by transferring the
// complement. It is safe for concurrent use (parallel streams add ranges
// concurrently).
type RangeSet struct {
	mu     sync.Mutex
	ranges []Range
}

// NewRangeSet returns an empty set.
func NewRangeSet() *RangeSet { return &RangeSet{} }

// Add merges [start, end) into the set.
func (s *RangeSet) Add(start, end int64) {
	if end <= start {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Find insertion window of ranges overlapping or adjacent to [start,end).
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End >= start })
	j := i
	for j < len(s.ranges) && s.ranges[j].Start <= end {
		j++
	}
	if i < j {
		if s.ranges[i].Start < start {
			start = s.ranges[i].Start
		}
		if s.ranges[j-1].End > end {
			end = s.ranges[j-1].End
		}
	}
	merged := append(s.ranges[:i:i], Range{start, end})
	s.ranges = append(merged, s.ranges[j:]...)
}

// Ranges returns a copy of the current ranges.
func (s *RangeSet) Ranges() []Range {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Range, len(s.ranges))
	copy(out, s.ranges)
	return out
}

// Covered returns the total number of bytes in the set.
func (s *RangeSet) Covered() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, r := range s.ranges {
		total += r.Len()
	}
	return total
}

// Contains reports whether [start, end) is fully covered.
func (s *RangeSet) Contains(start, end int64) bool {
	if end <= start {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.ranges {
		if r.Start <= start && end <= r.End {
			return true
		}
	}
	return false
}

// Complete reports whether the set covers exactly [0, size).
func (s *RangeSet) Complete(size int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ranges) == 1 && s.ranges[0].Start == 0 && s.ranges[0].End >= size ||
		(size == 0 && len(s.ranges) == 0)
}

// Missing returns the complement of the set within [0, size).
func (s *RangeSet) Missing(size int64) []Range {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Range
	var pos int64
	for _, r := range s.ranges {
		if r.Start >= size {
			break
		}
		if r.Start > pos {
			out = append(out, Range{pos, r.Start})
		}
		if r.End > pos {
			pos = r.End
		}
	}
	if pos < size {
		out = append(out, Range{pos, size})
	}
	return out
}

// Marker renders the set in restart-marker wire form: "0-100,200-300".
func (s *RangeSet) Marker() string {
	rs := s.Ranges()
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%d-%d", r.Start, r.End)
	}
	return strings.Join(parts, ",")
}

// ParseRanges parses restart-marker wire form back into ranges.
func ParseRanges(s string) ([]Range, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Range
	for _, part := range strings.Split(s, ",") {
		a, b, ok := strings.Cut(strings.TrimSpace(part), "-")
		if !ok {
			return nil, fmt.Errorf("gridftp: bad range %q", part)
		}
		start, err1 := strconv.ParseInt(a, 10, 64)
		end, err2 := strconv.ParseInt(b, 10, 64)
		if err1 != nil || err2 != nil || start < 0 || end < start {
			return nil, fmt.Errorf("gridftp: bad range %q", part)
		}
		out = append(out, Range{start, end})
	}
	return out, nil
}

// FromRanges builds a set containing the given ranges.
func FromRanges(rs []Range) *RangeSet {
	s := NewRangeSet()
	for _, r := range rs {
		s.Add(r.Start, r.End)
	}
	return s
}
