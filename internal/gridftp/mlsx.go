package gridftp

import (
	"fmt"
	"strconv"
	"strings"
)

// MlsxEntry is one parsed MLSD/MLST fact line.
type MlsxEntry struct {
	Name  string
	Size  int64
	IsDir bool
}

// ParseMlsxLine parses a "Type=file;Size=123;Modify=...; name" fact line
// as produced by this server's MLSD/MLST.
func ParseMlsxLine(line string) (MlsxEntry, error) {
	facts, name, ok := strings.Cut(line, " ")
	if !ok || name == "" {
		return MlsxEntry{}, fmt.Errorf("gridftp: malformed MLSx line %q", line)
	}
	e := MlsxEntry{Name: name}
	sawType := false
	for _, f := range strings.Split(strings.TrimSuffix(facts, ";"), ";") {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch strings.ToLower(k) {
		case "type":
			sawType = true
			e.IsDir = strings.EqualFold(v, "dir")
		case "size":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				// The size is untrusted remote input that flows straight
				// into transfer planning (WalkEntries) and progress math; a
				// negative one must not survive parsing.
				return MlsxEntry{}, fmt.Errorf("gridftp: bad Size in %q", line)
			}
			e.Size = n
		}
	}
	if !sawType {
		return MlsxEntry{}, fmt.Errorf("gridftp: MLSx line %q missing Type fact", line)
	}
	return e, nil
}

// ListEntries runs MLSD and returns parsed entries.
func (c *Client) ListEntries(path string) ([]MlsxEntry, error) {
	lines, err := c.List(path)
	if err != nil {
		return nil, err
	}
	out := make([]MlsxEntry, 0, len(lines))
	for _, line := range lines {
		e, err := ParseMlsxLine(line)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// StatEntry runs MLST and returns the parsed entry.
func (c *Client) StatEntry(path string) (MlsxEntry, error) {
	line, err := c.Stat(path)
	if err != nil {
		return MlsxEntry{}, err
	}
	return ParseMlsxLine(line)
}

// WalkEntry is one regular file found by WalkEntries: its slash-joined
// path relative to the walk root, and its size as reported by the MLSD
// Size fact — so callers planning transfers need no per-file SIZE round
// trip afterwards.
type WalkEntry struct {
	Rel  string
	Size int64
}

// WalkEntries lists path recursively, returning a WalkEntry (relative
// path plus size) for every regular file. Directories are traversed, not
// returned.
func (c *Client) WalkEntries(path string) ([]WalkEntry, error) {
	var files []WalkEntry
	var walk func(rel string) error
	walk = func(rel string) error {
		full := strings.TrimSuffix(path, "/")
		if rel != "" {
			full += "/" + rel
		}
		entries, err := c.ListEntries(full)
		if err != nil {
			return err
		}
		for _, e := range entries {
			childRel := e.Name
			if rel != "" {
				childRel = rel + "/" + e.Name
			}
			if e.IsDir {
				if err := walk(childRel); err != nil {
					return err
				}
			} else {
				files = append(files, WalkEntry{Rel: childRel, Size: e.Size})
			}
		}
		return nil
	}
	if err := walk(""); err != nil {
		return nil, err
	}
	return files, nil
}

// Walk lists path recursively, returning slash-joined paths relative to
// path for every regular file (directories are traversed, not returned).
func (c *Client) Walk(path string) ([]string, error) {
	entries, err := c.WalkEntries(path)
	if err != nil {
		return nil, err
	}
	files := make([]string, len(entries))
	for i, e := range entries {
		files[i] = e.Rel
	}
	return files, nil
}
