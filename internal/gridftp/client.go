package gridftp

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/streamstats"
)

// Client is a GridFTP client protocol interpreter with its own DTP, able
// to upload, download, list, and orchestrate third-party transfers.
type Client struct {
	ctrl  *ftp.Conn
	host  *netsim.Host
	cred  *gsi.Credential
	trust *gsi.TrustStore

	// ServerIdentity is the GSI identity the server's host certificate
	// presented on the control channel.
	ServerIdentity gsi.DN

	spec     ChannelSpec
	restart  []Range
	markerCB func([]Range)
	perfCB   func(PerfMarker)

	// obs receives client-side metrics: perf-marker observations feed
	// gauges/counters so callers can watch a transfer without polling.
	obs *obs.Obs
	// perfBytes holds the latest per-stripe byte counts reported by 112
	// markers for the current transfer; perfSeen counts markers.
	perfMu    sync.Mutex
	perfBytes map[int]int64
	perfSeen  int

	// Active-mode state: a listener on the client host plus pooled
	// accepted channels; passive-mode state: pooled dialed channels.
	// acceptCh/acceptErr are fed by a single pump goroutine owning the
	// listener, so canceled transfers cannot strand accepted connections.
	// lmu guards the listener fields: handshake pump goroutines may read
	// them concurrently with Close.
	lmu            sync.Mutex
	dataListener   net.Listener
	acceptCh       chan net.Conn
	acceptErr      chan error
	pooledAccepted []*dataChannel
	pooledDialed   []*dataChannel
	passiveAddrs   []string

	cacheDisabled bool
	delegated     bool

	// streams is the client-side stream-telemetry registry; task labels
	// the client's own transfers in it (see SetTask).
	streams *streamstats.Registry
	task    string
}

// DialOptions tweak client connection behaviour.
type DialOptions struct {
	// DisableChannelCache turns off data channel reuse across transfers.
	DisableChannelCache bool
	// Obs receives client-side metrics and logs (nil = disabled).
	Obs *obs.Obs
	// Streams, if non-nil, receives per-stream wire telemetry for this
	// client's MODE E transfers (see internal/obs/streamstats).
	Streams *streamstats.Registry
}

// Dial connects to a GridFTP server at addr from the given simulated host,
// performs the AUTH TLS security exchange with cred, and verifies the
// server against trust.
func Dial(host *netsim.Host, addr string, cred *gsi.Credential, trust *gsi.TrustStore) (*Client, error) {
	return DialWithOptions(host, addr, cred, trust, DialOptions{})
}

// DialWithOptions is Dial with explicit options.
func DialWithOptions(host *netsim.Host, addr string, cred *gsi.Credential, trust *gsi.TrustStore, opts DialOptions) (*Client, error) {
	raw, err := host.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("gridftp: dial %s: %w", addr, err)
	}
	c := &Client{
		ctrl:          ftp.NewConn(raw),
		host:          host,
		cred:          cred,
		trust:         trust,
		spec:          ChannelSpec{Mode: ModeExtended}.Normalize(),
		cacheDisabled: opts.DisableChannelCache,
		obs:           opts.Obs,
		streams:       opts.Streams,
		perfBytes:     make(map[int]int64),
	}
	if _, err := c.ctrl.Expect(ftp.CodeReadyForNewUser); err != nil {
		raw.Close()
		return nil, err
	}
	if err := c.ctrl.Cmd("AUTH", "TLS"); err != nil {
		raw.Close()
		return nil, err
	}
	if _, err := c.ctrl.Expect(ftp.CodeAuthOK); err != nil {
		raw.Close()
		return nil, err
	}
	tc := tls.Client(raw, gsi.ClientTLSConfig(cred, trust))
	raw.SetDeadline(time.Now().Add(30 * time.Second))
	if err := tc.Handshake(); err != nil {
		raw.Close()
		return nil, fmt.Errorf("gridftp: control handshake: %w", err)
	}
	raw.SetDeadline(time.Time{})
	srvID, err := gsi.PeerIdentity(tc, trust)
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("gridftp: server verification: %w", err)
	}
	c.ServerIdentity = srvID.Identity
	c.ctrl.Upgrade(tc)
	if _, err := c.ctrl.Expect(ftp.CodeUserLoggedIn); err != nil {
		raw.Close()
		return nil, fmt.Errorf("gridftp: login: %w", err)
	}
	// Negotiate the client's default mode (MODE E) explicitly — the
	// server session starts in RFC 959 stream mode.
	if _, err := c.cmdExpect("MODE", "E", ftp.CodeOK); err != nil {
		raw.Close()
		return nil, fmt.Errorf("gridftp: MODE E: %w", err)
	}
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error {
	c.flushPools()
	c.lmu.Lock()
	if c.dataListener != nil {
		c.dataListener.Close()
		c.dataListener = nil
	}
	c.lmu.Unlock()
	c.ctrl.Cmd("QUIT", "")
	c.ctrl.Expect(221)
	return c.ctrl.Close()
}

func (c *Client) flushPools() {
	closeChannels(c.pooledAccepted)
	closeChannels(c.pooledDialed)
	c.pooledAccepted = nil
	c.pooledDialed = nil
	c.passiveAddrs = nil
}

// countCommand records one control-channel command on the per-verb
// counter, giving observability stacks (and tests) a command trace: e.g.
// asserting a directory transfer issued zero per-file SIZE commands.
func (c *Client) countCommand(name string) {
	c.obs.Registry().Counter(obs.Name("gridftp.client.commands", "cmd="+name)).Inc()
}

// cmdExpect sends a command and requires one of the given reply codes.
func (c *Client) cmdExpect(name, params string, want ...int) (ftp.Reply, error) {
	c.countCommand(name)
	if err := c.ctrl.Cmd(name, "%s", params); err != nil {
		return ftp.Reply{}, err
	}
	return c.ctrl.Expect(want...)
}

// Delegate delegates a proxy of the client credential to the server over
// the encrypted control channel; the server uses it to authenticate data
// channels on the user's behalf (required for DCAU unless DCSC is used).
func (c *Client) Delegate(lifetime time.Duration) error {
	if c.cred == nil {
		return ErrLiteNoDelegation
	}
	c.countCommand("DELG")
	if err := c.ctrl.Cmd("DELG", ""); err != nil {
		return err
	}
	if _, err := c.ctrl.Expect(335); err != nil {
		return err
	}
	if err := gsi.Delegate(c.ctrl.RW(), c.cred, lifetime); err != nil {
		return err
	}
	if _, err := c.ctrl.Expect(ftp.CodeOK); err != nil {
		return err
	}
	c.delegated = true
	return nil
}

// Features runs FEAT and returns the advertised feature lines.
func (c *Client) Features() ([]string, error) {
	r, err := c.cmdExpect("FEAT", "", ftp.CodeFeatures)
	if err != nil {
		return nil, err
	}
	if len(r.Lines) >= 2 {
		return r.Lines[1 : len(r.Lines)-1], nil
	}
	return nil, nil
}

// SupportsDCSC reports whether the server advertises the DCSC extension.
func (c *Client) SupportsDCSC() bool {
	feats, err := c.Features()
	if err != nil {
		return false
	}
	for _, f := range feats {
		if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(f)), "DCSC") {
			return true
		}
	}
	return false
}

// SupportsTrace reports whether the server advertises the TRACE feature
// (distributed trace-context propagation via SITE TRACE).
func (c *Client) SupportsTrace() bool {
	feats, err := c.Features()
	if err != nil {
		return false
	}
	for _, f := range feats {
		if strings.EqualFold(strings.TrimSpace(f), "TRACE") {
			return true
		}
	}
	return false
}

// PropagateTrace binds the server session to sc via SITE TRACE, so the
// server's subsequent transfer spans join the caller's trace. It returns
// joined=false with no error when sc is invalid or the server does not
// advertise TRACE — propagation degrades to the server rooting its spans
// locally, never to a protocol error.
func (c *Client) PropagateTrace(sc obs.SpanContext) (joined bool, err error) {
	if !sc.Valid() || !c.SupportsTrace() {
		return false, nil
	}
	if _, err := c.cmdExpect("SITE", "TRACE "+obs.Inject(sc), ftp.CodeOK); err != nil {
		return false, err
	}
	return true, nil
}

// SetParallelism negotiates the number of parallel data streams.
func (c *Client) SetParallelism(n int) error {
	if n == c.spec.Parallelism {
		return nil
	}
	if _, err := c.cmdExpect("OPTS", fmt.Sprintf("RETR Parallelism=%d,%d,%d;", n, n, n), ftp.CodeOK); err != nil {
		return err
	}
	c.spec.Parallelism = n
	c.flushPools()
	return nil
}

// SetBlockSize negotiates the MODE E block size. Renegotiating the value
// already in effect is a no-op (the autotuner calls this per transfer).
func (c *Client) SetBlockSize(n int) error {
	if n == c.spec.BlockSize {
		return nil
	}
	if _, err := c.cmdExpect("OPTS", fmt.Sprintf("RETR BlockSize=%d;", n), ftp.CodeOK); err != nil {
		return err
	}
	c.spec.BlockSize = n
	return nil
}

// Allocate announces the size of the next upload (ALLO, RFC 959) so the
// server can preallocate the destination file. Best-effort: a server that
// refuses ALLO costs nothing but the round trip.
func (c *Client) Allocate(size int64) {
	if size <= 0 {
		return
	}
	c.countCommand("ALLO")
	if err := c.ctrl.Cmd("ALLO", "%d", size); err != nil {
		return
	}
	c.ctrl.ReadFinalReply(nil)
}

// SetMarkerInterval asks the receiving server to emit restart markers
// every interval (rounded to milliseconds).
func (c *Client) SetMarkerInterval(interval time.Duration) error {
	ms := int(interval / time.Millisecond)
	if _, err := c.cmdExpect("OPTS", fmt.Sprintf("RETR Markers=%d;", ms), ftp.CodeOK); err != nil {
		return err
	}
	c.spec.MarkerInterval = interval
	return nil
}

// SetMode switches between stream (S) and extended block (E) mode.
func (c *Client) SetMode(m TransferMode) error {
	if _, err := c.cmdExpect("MODE", string(rune(m)), ftp.CodeOK); err != nil {
		return err
	}
	c.spec.Mode = m
	c.spec = c.spec.Normalize()
	c.flushPools()
	return nil
}

// SetDCAU sets the data channel authentication mode.
func (c *Client) SetDCAU(m DCAUMode) error {
	if _, err := c.cmdExpect("DCAU", string(rune(m)), ftp.CodeOK); err != nil {
		return err
	}
	c.spec.DCAU = m
	if m == DCAUNone {
		c.spec.Prot = ProtClear
	}
	c.flushPools()
	return nil
}

// SetTransport selects the data channel transport protocol: TCP (default)
// or UDT, the rate-based protocol GridFTP reaches through its XIO driver
// interface (§II.A [9]). UDT streams are not window- or loss-limited.
func (c *Client) SetTransport(tr netsim.Transport) error {
	name := "TCP"
	if tr == netsim.TransportUDT {
		name = "UDT"
	}
	if _, err := c.cmdExpect("OPTS", "RETR Transport="+name+";", ftp.CodeOK); err != nil {
		return err
	}
	c.spec.Transport = tr
	c.flushPools()
	return nil
}

// SetDeflate toggles DEFLATE compression on the data channels
// ("OPTS RETR Deflate=1;"). Both ends wrap every subsequent channel
// symmetrically; existing pools flush on both sides.
func (c *Client) SetDeflate(on bool) error {
	flag := "0"
	if on {
		flag = "1"
	}
	if _, err := c.cmdExpect("OPTS", "RETR Deflate="+flag+";", ftp.CodeOK); err != nil {
		return err
	}
	if on != c.spec.Deflate {
		c.spec.Deflate = on
		c.flushPools()
	}
	return nil
}

// SetProt sets the data channel protection level.
func (c *Client) SetProt(p ProtLevel) error {
	if _, err := c.cmdExpect("PBSZ", "0", ftp.CodeOK); err != nil {
		return err
	}
	if _, err := c.cmdExpect("PROT", string(rune(p)), ftp.CodeOK); err != nil {
		return err
	}
	c.spec.Prot = p
	c.flushPools()
	return nil
}

// SendDCSC installs a data channel security context on the server (§V):
// the server will both present and accept the given credential on its
// data channels. Works against the single DCSC-capable endpoint of a
// transfer even when the other endpoint is a legacy server.
func (c *Client) SendDCSC(cred *gsi.Credential) error {
	blob, err := EncodeDCSCBlob(cred)
	if err != nil {
		return err
	}
	_, err = c.cmdExpect("DCSC", "P "+blob, ftp.CodeOK)
	if err == nil {
		c.flushPools()
	}
	return err
}

// ResetDCSC reverts the server's data channel security context ("DCSC D").
func (c *Client) ResetDCSC() error {
	_, err := c.cmdExpect("DCSC", "D", ftp.CodeOK)
	if err == nil {
		c.flushPools()
	}
	return err
}

// SetRestart arms restart ranges (bytes already transferred) for the next
// transfer command.
func (c *Client) SetRestart(ranges []Range) { c.restart = ranges }

// OnMarker registers a callback receiving restart-marker updates during
// transfers.
func (c *Client) OnMarker(cb func([]Range)) { c.markerCB = cb }

// dataContext is the security context for the client's own data channels
// (nil for credential-less GridFTP-Lite sessions, whose data channels run
// without DCAU).
func (c *Client) dataContext() *SecurityContext {
	if c.cred == nil {
		return nil
	}
	return &SecurityContext{
		Cred:           c.cred,
		Trust:          c.trust,
		ExpectIdentity: c.cred.Identity(),
	}
}

// sendRestart transmits any armed restart ranges.
func (c *Client) sendRestart() ([]Range, error) {
	if len(c.restart) == 0 {
		return nil, nil
	}
	ranges := c.restart
	c.restart = nil
	if _, err := c.cmdExpect("REST", FromRanges(ranges).Marker(), ftp.CodeNeedAccount); err != nil {
		return nil, err
	}
	return ranges, nil
}

// passive puts the server in passive mode and returns the data address.
func (c *Client) passive() (string, error) {
	r, err := c.cmdExpect("PASV", "", ftp.CodeEnteringPassive)
	if err != nil {
		return "", err
	}
	open := strings.Index(r.Lines[0], "(")
	closeIdx := strings.LastIndex(r.Lines[0], ")")
	if open < 0 || closeIdx <= open {
		return "", fmt.Errorf("gridftp: unparsable PASV reply %q", r.Lines[0])
	}
	return r.Lines[0][open+1 : closeIdx], nil
}

// spas puts the (striped) server in striped passive mode and returns all
// data addresses.
func (c *Client) spas() ([]string, error) {
	r, err := c.cmdExpect("SPAS", "", ftp.CodeEnteringExtPasv)
	if err != nil {
		return nil, err
	}
	if len(r.Lines) < 3 {
		return nil, fmt.Errorf("gridftp: unparsable SPAS reply %v", r.Lines)
	}
	return r.Lines[1 : len(r.Lines)-1], nil
}

// Passive exposes PASV/SPAS for third-party orchestration: it returns the
// receiver's listening addresses (one per stripe).
func (c *Client) Passive(striped bool) ([]string, error) {
	if striped {
		return c.spas()
	}
	addr, err := c.passive()
	if err != nil {
		return nil, err
	}
	return []string{addr}, nil
}

// Port sends the peer's data addresses to this (sender) server.
func (c *Client) Port(addrs []string) error {
	if len(addrs) == 1 {
		_, err := c.cmdExpect("PORT", addrs[0], ftp.CodeOK)
		return err
	}
	_, err := c.cmdExpect("SPOR", strings.Join(addrs, " "), ftp.CodeOK)
	return err
}

// ensurePassive guarantees the server is listening for data connections.
// It must run BEFORE the transfer command is sent: once the command is in
// flight the server is busy with the transfer and cannot answer PASV.
func (c *Client) ensurePassive() error {
	if len(c.passiveAddrs) > 0 {
		return nil
	}
	addr, err := c.passive()
	if err != nil {
		return err
	}
	// PASV resets the server's data state (it closes listeners and
	// flushes both its channel pools), so mirror that here: any channels
	// we still hold are now stale on the far end. Keeping the pools in
	// lockstep is what makes channel caching safe.
	c.flushPools()
	c.passiveAddrs = []string{addr}
	return nil
}

// dialData opens and secures n data connections to the server's passive
// address(es), reusing the pool when possible. ensurePassive must have
// succeeded earlier in the session.
func (c *Client) dialData(n int) ([]*dataChannel, error) {
	if len(c.pooledDialed) == n {
		chans := c.pooledDialed
		c.pooledDialed = nil
		return chans, nil
	}
	closeChannels(c.pooledDialed)
	c.pooledDialed = nil
	if len(c.passiveAddrs) == 0 {
		return nil, errors.New("gridftp: no passive address (ensurePassive not run)")
	}
	// Establish concurrently so N channels cost one connect+handshake RTT.
	chans := make([]*dataChannel, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, err := c.host.DialTransport(c.passiveAddrs[i%len(c.passiveAddrs)], c.spec.Transport)
			if err != nil {
				errs[i] = err
				return
			}
			sec, err := secureData(raw, c.dataContext(), c.spec.DCAU, c.spec.Prot, false)
			if err != nil {
				raw.Close()
				errs[i] = err
				return
			}
			chans[i] = &dataChannel{raw: raw, sec: maybeDeflate(sec, c.spec.Deflate)}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			closeChannels(compactChannels(chans))
			return nil, err
		}
	}
	return chans, nil
}

// ensureListener opens (once) the client-side data listener for
// active-mode transfers and registers it with the server via PORT.
func (c *Client) ensureListener() error {
	c.lmu.Lock()
	if c.dataListener == nil {
		l, err := c.host.Listen(0)
		if err != nil {
			c.lmu.Unlock()
			return err
		}
		c.dataListener = l
		c.acceptCh = make(chan net.Conn, 64)
		c.acceptErr = make(chan error, 1)
		go func(conns chan net.Conn, errs chan error) {
			for {
				conn, err := l.Accept()
				if err != nil {
					errs <- err
					return
				}
				select {
				case conns <- conn:
				default:
					conn.Close()
				}
			}
		}(c.acceptCh, c.acceptErr)
	}
	addr := c.dataListener.Addr().String()
	c.lmu.Unlock()
	if _, err := c.cmdExpect("PORT", addr, ftp.CodeOK); err != nil {
		return err
	}
	// PORT, like PASV, resets the server's data state; drop our now-stale
	// pools to stay in lockstep (see ensurePassive).
	closeChannels(c.pooledAccepted)
	closeChannels(c.pooledDialed)
	c.pooledAccepted = nil
	c.pooledDialed = nil
	c.passiveAddrs = nil
	return nil
}

// retire pools channels for reuse or closes them.
func (c *Client) retire(chans []*dataChannel, ok bool) {
	if !ok || c.spec.Mode != ModeExtended || c.cacheDisabled {
		closeChannels(chans)
		return
	}
	if len(chans) > 0 && chans[0].acceptor {
		c.pooledAccepted = chans
	} else {
		c.pooledDialed = chans
	}
}

// parseOpeningSize extracts the announced byte count from a 150 reply of
// the form "Opening data connection for <path> (N bytes)"; 0 when absent.
func parseOpeningSize(r ftp.Reply) int64 {
	if r.Code != ftp.CodeFileStatusOK || len(r.Lines) == 0 {
		return 0
	}
	text := r.Lines[0]
	open := strings.LastIndexByte(text, '(')
	if open < 0 || !strings.HasSuffix(text, " bytes)") {
		return 0
	}
	n, err := strconv.ParseInt(text[open+1:len(text)-len(" bytes)")], 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// handlePreliminary dispatches 1xx replies that arrive during a transfer:
// 111 restart markers (returns the parsed ranges) and 112 performance
// markers (feeds the perf callback and the client metrics registry).
func (c *Client) handlePreliminary(r ftp.Reply) []Range {
	switch r.Code {
	case ftp.CodeRestartMarker:
		text := strings.TrimPrefix(r.Lines[0], "Range Marker")
		ranges, err := ParseRanges(strings.TrimSpace(text))
		if err != nil {
			return nil
		}
		if c.markerCB != nil {
			c.markerCB(ranges)
		}
		return ranges
	case CodePerfMarker:
		if m, ok := ParsePerfMarker(r); ok {
			c.notePerf(m)
		}
	}
	return nil
}

// notePerf records one performance marker: latest per-stripe totals,
// marker count, metrics, and the user callback.
func (c *Client) notePerf(m PerfMarker) {
	c.perfMu.Lock()
	c.perfBytes[m.Stripe] = m.StripeBytes
	c.perfSeen++
	var total int64
	for _, b := range c.perfBytes {
		total += b
	}
	c.perfMu.Unlock()
	reg := c.obs.Registry()
	reg.Counter("gridftp.client.perf_markers").Inc()
	reg.Gauge("gridftp.client.perf_bytes").Set(total)
	reg.Gauge("gridftp.client.perf_stripes").Set(int64(m.TotalStripes))
	// Feed the time-series flight recorder at the marker's own timestamp
	// (the sender's sampling clock, which may arrive out of order): the
	// per-stripe cumulative byte timeline for this session.
	c.obs.TimeSeries().Observe(
		fmt.Sprintf("gridftp.client.stripe.%d.bytes", m.Stripe),
		m.Timestamp, float64(m.StripeBytes))
	if c.perfCB != nil {
		c.perfCB(m)
	}
}

// resetPerf clears per-transfer performance state (called when a new
// transfer command is issued).
func (c *Client) resetPerf() {
	c.perfMu.Lock()
	c.perfBytes = make(map[int]int64)
	c.perfMu.Unlock()
}

// PerfSnapshot returns the in-flight progress reported by 112 performance
// markers for the current (or last) transfer: total bytes across stripes,
// the number of stripes reporting, and how many markers this session has
// observed in total.
func (c *Client) PerfSnapshot() (total int64, stripes, markers int) {
	c.perfMu.Lock()
	defer c.perfMu.Unlock()
	for _, b := range c.perfBytes {
		total += b
	}
	return total, len(c.perfBytes), c.perfSeen
}

// OnPerf registers a callback receiving in-flight 112 performance markers
// during transfers.
func (c *Client) OnPerf(cb func(PerfMarker)) { c.perfCB = cb }

// SetTask labels this session's transfers in the stream-telemetry plane,
// both locally and — via SITE TASK — on the server, so the per-stream
// series of both ends of a transfer share one task prefix. A server
// without the extension replies 500; that degrades to local-only labeling
// rather than an error.
func (c *Client) SetTask(label string) error {
	c.task = label
	if _, err := c.cmdExpect("SITE", "TASK "+label, ftp.CodeOK); err != nil {
		var re *ftp.ReplyError
		if errors.As(err, &re) && re.Reply.Code == ftp.CodeSyntaxError {
			return nil
		}
		return err
	}
	return nil
}

// trackChannels registers a MODE E transfer's channels with the client's
// stream-telemetry registry; see session.trackChannels for the server twin.
func (c *Client) trackChannels(verb string, chans []*dataChannel) ([]net.Conn, *streamstats.Transfer) {
	conns := secConns(chans)
	if c.streams == nil {
		return conns, nil
	}
	t := c.streams.Begin(c.task, verb)
	for i, ch := range chans {
		conns[i] = t.Wrap(i, ch.sec, ch.raw)
	}
	t.SetAbort(func() { abortChannels(chans) })
	return conns, t
}

// TransferStats reports what a transfer moved.
type TransferStats struct {
	Bytes    int64
	Duration time.Duration
	// Markers holds the last restart-marker ranges seen (PUT) or the
	// locally received ranges (GET); on failure they seed a restart.
	Markers []Range
}

// Put uploads src to the remote path (passive mode: the server listens,
// this client connects and sends — the canonical GridFTP direction).
func (c *Client) Put(path string, src dsi.File) (*TransferStats, error) {
	size, err := src.Size()
	if err != nil {
		return nil, err
	}
	restart, err := c.sendRestart()
	if err != nil {
		return nil, err
	}
	ranges := []Range{{0, size}}
	if len(restart) > 0 {
		ranges = FromRanges(restart).Missing(size)
	}

	start := time.Now()
	c.resetPerf()
	// Tell the server how big the destination will be so its storage
	// preallocates once instead of grow-copying per block.
	c.Allocate(size)
	var lastMarkers []Range
	if c.spec.Mode == ModeStream {
		c.flushPools()
		if err := c.ensurePassive(); err != nil {
			return nil, err
		}
		c.countCommand("STOR")
		if err := c.ctrl.Cmd("STOR", "%s", path); err != nil {
			return nil, err
		}
		chans, err := c.dialData(1)
		if err != nil {
			c.ctrl.ReadFinalReply(nil)
			return nil, err
		}
		from := int64(0)
		if len(restart) == 1 && restart[0].Start == 0 {
			from = restart[0].End
		}
		sendErr := sendStream(chans[0].sec, src, from, size, c.spec.BlockSize)
		closeChannels(chans)
		r, rerr := c.ctrl.ReadFinalReply(func(p ftp.Reply) {
			if ranges := c.handlePreliminary(p); ranges != nil {
				lastMarkers = ranges
			}
		})
		if sendErr != nil {
			return &TransferStats{Markers: lastMarkers}, sendErr
		}
		if rerr != nil {
			return &TransferStats{Markers: lastMarkers}, rerr
		}
		if err := r.Err(); err != nil {
			return &TransferStats{Markers: lastMarkers}, err
		}
		return &TransferStats{Bytes: size - totalLen(restart), Duration: time.Since(start), Markers: lastMarkers}, nil
	}

	if len(c.pooledDialed) != c.spec.Parallelism {
		if err := c.ensurePassive(); err != nil {
			return nil, err
		}
	}
	c.countCommand("STOR")
	if err := c.ctrl.Cmd("STOR", "%s", path); err != nil {
		return nil, err
	}
	chans, err := c.dialData(c.spec.Parallelism)
	if err != nil {
		// The server is waiting for a transfer that will not happen; it
		// will time out its accept and report 425/426.
		c.ctrl.ReadFinalReply(nil)
		return nil, err
	}
	sent := c.obs.Registry().Counter("gridftp.client.bytes_sent")
	conns, tracker := c.trackChannels("put", chans)
	sendErr := sendModeE(conns, src, ranges, c.spec.BlockSize,
		func(stream int, n int64) { sent.Add(n) })
	r, rerr := c.ctrl.ReadFinalReply(func(p ftp.Reply) {
		if ranges := c.handlePreliminary(p); ranges != nil {
			lastMarkers = ranges
		}
	})
	switch {
	case sendErr != nil:
		tracker.Done(sendErr)
		closeChannels(chans)
		c.flushPools()
		return &TransferStats{Markers: lastMarkers}, sendErr
	case rerr != nil:
		tracker.Done(rerr)
		closeChannels(chans)
		c.flushPools()
		return &TransferStats{Markers: lastMarkers}, rerr
	case r.Err() != nil:
		tracker.Done(r.Err())
		closeChannels(chans)
		c.flushPools()
		return &TransferStats{Markers: lastMarkers}, r.Err()
	}
	tracker.Done(nil)
	c.retire(chans, true)
	return &TransferStats{Bytes: totalLen(ranges), Duration: time.Since(start), Markers: lastMarkers}, nil
}

// Get downloads the remote path into dst. Active mode (default): this
// client listens and the server — the sender — connects, the canonical
// GridFTP arrangement.
func (c *Client) Get(path string, dst dsi.File) (*TransferStats, error) {
	restart, err := c.sendRestart()
	if err != nil {
		return nil, err
	}
	return c.retrieve("RETR", path, restart, dst)
}

// GetPartial retrieves length bytes starting at off via the ERET command;
// the data lands at its original file offsets in dst.
func (c *Client) GetPartial(path string, off, length int64, dst dsi.File) (*TransferStats, error) {
	return c.retrieve("ERET", fmt.Sprintf("P %d %d %s", off, length, path), nil, dst)
}

func (c *Client) retrieve(verb, params string, restart []Range, dst dsi.File) (*TransferStats, error) {
	start := time.Now()
	c.resetPerf()

	if c.spec.Mode == ModeStream {
		if err := c.ensureListener(); err != nil {
			return nil, err
		}
		c.countCommand(verb)
		if err := c.ctrl.Cmd(verb, "%s", params); err != nil {
			return nil, err
		}
		raw, err := c.acceptOne()
		if err != nil {
			c.ctrl.ReadFinalReply(nil)
			return nil, err
		}
		sec, err := secureData(raw, c.dataContext(), c.spec.DCAU, c.spec.Prot, true)
		if err != nil {
			raw.Close()
			c.ctrl.ReadFinalReply(nil)
			return nil, err
		}
		sec = maybeDeflate(sec, c.spec.Deflate)
		offset := int64(0)
		if len(restart) == 1 && restart[0].Start == 0 {
			offset = restart[0].End
		}
		n, recvErr := recvStream(sec, dst, offset, c.spec.BlockSize)
		raw.Close()
		r, rerr := c.ctrl.ReadFinalReply(nil)
		if recvErr != nil {
			return nil, recvErr
		}
		if rerr != nil {
			return nil, rerr
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		return &TransferStats{Bytes: n, Duration: time.Since(start)}, nil
	}

	// MODE E active: pooled channels first, fresh ones off our listener.
	if len(c.pooledAccepted) == 0 {
		if err := c.ensureListener(); err != nil {
			return nil, err
		}
	}
	c.countCommand(verb)
	if err := c.ctrl.Cmd(verb, "%s", params); err != nil {
		return nil, err
	}

	received := FromRanges(restart)
	res, r, rerr := c.recvWithReplies(dst, received)
	markers := res.Received.Ranges()
	if c.markerCB != nil && res.Received.Covered() > 0 {
		c.markerCB(markers)
	}
	switch {
	case rerr != nil:
		return &TransferStats{Markers: markers}, rerr
	case r.Err() != nil:
		// The server's error reply names the root cause; a concurrent
		// receive cancellation is just its consequence.
		return &TransferStats{Markers: markers}, r.Err()
	case res.Err != nil:
		return &TransferStats{Markers: markers}, res.Err
	}
	return &TransferStats{
		Bytes:    res.Received.Covered() - totalLen(restart),
		Duration: time.Since(start),
		Markers:  markers,
	}, nil
}

// recvWithReplies runs one MODE E receive (pooled channels first, fresh
// ones off the client listener) while concurrently reading control-channel
// replies, so a refusal (e.g. 530 before any data connection exists)
// cancels the receive instead of timing it out. It retires channels into
// the pool on success and flushes them on any failure.
func (c *Client) recvWithReplies(dst dsi.File, received *RangeSet) (recvResult, ftp.Reply, error) {
	pooled := c.pooledAccepted
	c.pooledAccepted = nil
	var fresh []*dataChannel
	var freshMu sync.Mutex
	sealed := false
	pi := 0
	securedAccept := parallelSecureAccept(c.acceptOneStop, c.dataContext(),
		c.spec.DCAU, c.spec.Prot, c.spec.Deflate, func(ch *dataChannel) {
			freshMu.Lock()
			if sealed {
				freshMu.Unlock()
				ch.close()
				return
			}
			fresh = append(fresh, ch)
			freshMu.Unlock()
		})
	accept := func(stop <-chan struct{}) (net.Conn, error) {
		if pi < len(pooled) {
			ch := pooled[pi]
			pi++
			return ch.sec, nil
		}
		return securedAccept(stop)
	}
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	cancelRecv := func() { cancelOnce.Do(func() { close(cancel) }) }
	// Stream telemetry: instrument connections as they join the receive,
	// and let the stall watchdog cancel it. accept runs on recvModeE's
	// single acceptor goroutine, so the index needs no lock.
	var tracker *streamstats.Transfer
	if c.streams != nil {
		tracker = c.streams.Begin(c.task, "get")
		tracker.SetAbort(cancelRecv)
		base := accept
		idx := 0
		accept = func(stop <-chan struct{}) (net.Conn, error) {
			conn, err := base(stop)
			if err != nil {
				return conn, err
			}
			i := idx
			idx++
			return tracker.Wrap(i, conn, conn), nil
		}
	}
	type finalReply struct {
		r   ftp.Reply
		err error
	}
	replyCh := make(chan finalReply, 1)
	go func() {
		r, err := c.ctrl.ReadFinalReply(func(p ftp.Reply) {
			// The sender's 150 announces the transfer size; preallocating
			// the destination here spares the grow-copy per landed block.
			if n := parseOpeningSize(p); n > 0 {
				preallocate(dst, n)
			}
			c.handlePreliminary(p)
		})
		replyCh <- finalReply{r, err}
	}()
	resCh := make(chan recvResult, 1)
	go func() { resCh <- recvModeE(accept, dst, received, c.spec.BlockSize, nil, cancel) }()

	var res recvResult
	var fin finalReply
	select {
	case res = <-resCh:
		fin = <-replyCh
	case fin = <-replyCh:
		if fin.err != nil || fin.r.Err() != nil {
			cancelRecv()
		}
		res = <-resCh
	}
	// Any pooled channels the sender declined to reuse are stale.
	for _, ch := range pooled[pi:] {
		ch.close()
	}
	freshMu.Lock()
	sealed = true
	all := append(pooled[:pi:pi], fresh...)
	freshMu.Unlock()
	switch {
	case fin.err != nil:
		tracker.Done(fin.err)
	case fin.r.Err() != nil:
		tracker.Done(fin.r.Err())
	default:
		tracker.Done(res.Err)
	}
	if fin.err != nil || fin.r.Err() != nil || res.Err != nil {
		closeChannels(all)
		c.flushPools()
	} else {
		c.retire(all, true)
	}
	return res, fin.r, fin.err
}

func (c *Client) acceptOne() (net.Conn, error) {
	return c.acceptOneStop(nil)
}

func (c *Client) acceptOneStop(stop <-chan struct{}) (net.Conn, error) {
	c.lmu.Lock()
	l, conns, errs := c.dataListener, c.acceptCh, c.acceptErr
	c.lmu.Unlock()
	if l == nil {
		return nil, errors.New("gridftp: no data listener")
	}
	if stop == nil {
		stop = make(chan struct{})
	}
	t := time.NewTimer(30 * time.Second)
	defer t.Stop()
	select {
	case conn := <-conns:
		return conn, nil
	case err := <-errs:
		return nil, err
	case <-stop:
		return nil, errors.New("gridftp: transfer concluded")
	case <-t.C:
		return nil, errors.New("gridftp: timed out waiting for data connection")
	}
}

// --- Simple file operations ---

// Size returns the remote file size.
func (c *Client) Size(path string) (int64, error) {
	r, err := c.cmdExpect("SIZE", path, ftp.CodeFileStatus)
	if err != nil {
		return 0, err
	}
	var n int64
	if _, err := fmt.Sscanf(r.Lines[0], "%d", &n); err != nil {
		return 0, fmt.Errorf("gridftp: bad SIZE reply %q", r.Lines[0])
	}
	return n, nil
}

// Mkdir creates a remote directory.
func (c *Client) Mkdir(path string) error {
	_, err := c.cmdExpect("MKD", path, ftp.CodePathCreated)
	return err
}

// Delete removes a remote file or empty directory.
func (c *Client) Delete(path string) error {
	_, err := c.cmdExpect("DELE", path, ftp.CodeFileActionOK)
	return err
}

// Rename moves a remote file.
func (c *Client) Rename(from, to string) error {
	if _, err := c.cmdExpect("RNFR", from, ftp.CodeNeedAccount); err != nil {
		return err
	}
	_, err := c.cmdExpect("RNTO", to, ftp.CodeFileActionOK)
	return err
}

// Chdir changes the remote working directory.
func (c *Client) Chdir(path string) error {
	_, err := c.cmdExpect("CWD", path, ftp.CodeFileActionOK)
	return err
}

// Noop pings the server.
func (c *Client) Noop() error {
	_, err := c.cmdExpect("NOOP", "", ftp.CodeOK)
	return err
}

// Stat runs MLST and returns the facts line for one path.
func (c *Client) Stat(path string) (string, error) {
	r, err := c.cmdExpect("MLST", path, ftp.CodeFileActionOK)
	if err != nil {
		return "", err
	}
	if len(r.Lines) < 2 {
		return "", fmt.Errorf("gridftp: bad MLST reply %v", r.Lines)
	}
	return strings.TrimSpace(r.Lines[1]), nil
}

// List runs MLSD over a fresh data channel and returns the entry lines.
func (c *Client) List(path string) ([]string, error) {
	c.flushPools()
	if err := c.ensurePassive(); err != nil {
		return nil, err
	}
	c.countCommand("MLSD")
	if err := c.ctrl.Cmd("MLSD", "%s", path); err != nil {
		return nil, err
	}
	chans, err := c.dialData(1)
	if err != nil {
		c.ctrl.ReadFinalReply(nil)
		return nil, err
	}
	var listing []byte
	buf := make([]byte, 32*1024)
	for {
		n, rerr := chans[0].sec.Read(buf)
		listing = append(listing, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	closeChannels(chans)
	r, err := c.ctrl.ReadFinalReply(nil)
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(listing), "\r\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out, nil
}

// Parallelism returns the current negotiated parallelism.
func (c *Client) Parallelism() int { return c.spec.Parallelism }

// Mode returns the current transfer mode.
func (c *Client) Mode() TransferMode { return c.spec.Mode }
