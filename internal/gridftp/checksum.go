package gridftp

import (
	"crypto/md5"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/adler32"
	"io"
	"strconv"
	"strings"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/ftp"
)

// The CKSM command (a Globus GridFTP extension) returns a checksum over a
// file region: "CKSM <algorithm> <offset> <length> <path>", length -1
// meaning to end of file. Transfer tools use it to verify integrity end to
// end after a transfer — cheaper than a second transfer and robust against
// storage-side corruption that channel-level protection cannot see.

// checksumAlgorithms maps algorithm names to constructors.
var checksumAlgorithms = map[string]func() hash.Hash{
	"MD5":     md5.New,
	"SHA256":  sha256.New,
	"ADLER32": func() hash.Hash { return adler32.New() },
}

// ChecksumFile computes the named checksum over f's [offset, offset+length)
// region (length < 0 = to EOF).
func ChecksumFile(algorithm string, f dsi.File, offset, length int64) (string, error) {
	mk, ok := checksumAlgorithms[strings.ToUpper(algorithm)]
	if !ok {
		return "", fmt.Errorf("gridftp: unsupported checksum algorithm %q", algorithm)
	}
	size, err := f.Size()
	if err != nil {
		return "", err
	}
	if offset < 0 || offset > size {
		return "", fmt.Errorf("gridftp: checksum offset %d out of range", offset)
	}
	end := size
	if length >= 0 && offset+length < size {
		end = offset + length
	}
	h := mk()
	buf := make([]byte, 256*1024)
	for off := offset; off < end; {
		n := int64(len(buf))
		if off+n > end {
			n = end - off
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil && err != io.EOF {
			return "", err
		}
		h.Write(buf[:n])
		off += n
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// handleCksm implements the server side of CKSM.
func (sess *session) handleCksm(params string) {
	fields := strings.Fields(params)
	if len(fields) < 4 {
		sess.reply(ftp.CodeParamSyntaxError, "CKSM <algorithm> <offset> <length> <path>")
		return
	}
	offset, err1 := strconv.ParseInt(fields[1], 10, 64)
	length, err2 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil {
		sess.reply(ftp.CodeParamSyntaxError, "Bad CKSM offsets")
		return
	}
	p, err := sess.resolve(strings.Join(fields[3:], " "))
	if err != nil {
		sess.reply(ftp.CodeBadFileName, errText(err))
		return
	}
	f, err := sess.srv.cfg.Storage.Open(sess.localUser, p)
	if err != nil {
		sess.reply(ftp.CodeFileUnavailable, errText(err))
		return
	}
	defer f.Close()
	sum, err := ChecksumFile(fields[0], f, offset, length)
	if err != nil {
		sess.reply(ftp.CodeParamNotImpl, errText(err))
		return
	}
	sess.reply(ftp.CodeFileStatus, sum)
}

// Checksum asks the server for a checksum over a file region (length < 0 =
// to end of file).
func (c *Client) Checksum(algorithm, path string, offset, length int64) (string, error) {
	r, err := c.cmdExpect("CKSM", fmt.Sprintf("%s %d %d %s", strings.ToUpper(algorithm), offset, length, path), ftp.CodeFileStatus)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(r.Lines[0]), nil
}

// VerifyTransfer compares the server's checksum of path against a local
// file, returning an error on mismatch — the end-to-end integrity check
// transfer tools run after a copy.
func (c *Client) VerifyTransfer(algorithm, path string, local dsi.File) error {
	remote, err := c.Checksum(algorithm, path, 0, -1)
	if err != nil {
		return err
	}
	localSum, err := ChecksumFile(algorithm, local, 0, -1)
	if err != nil {
		return err
	}
	if remote != localSum {
		return fmt.Errorf("gridftp: checksum mismatch for %s: remote %s != local %s", path, remote, localSum)
	}
	return nil
}
