package gridftp

import (
	"sort"
	"strings"

	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/obs"
)

// SITE subcommand registry. SITE is the extension namespace of the FTP
// protocol; instead of a blanket "ignored" reply, subcommands register
// here so SITE HELP can enumerate them and unknown ones fail loudly (500)
// — a client probing for an extension learns immediately whether the
// server has it.

// siteHandler is one registered SITE subcommand.
type siteHandler struct {
	help string // one-line usage shown by SITE HELP
	fn   func(sess *session, params string)
}

var siteRegistry = map[string]siteHandler{}

// registerSite adds a SITE subcommand; name is matched case-insensitively.
func registerSite(name, help string, fn func(*session, string)) {
	siteRegistry[strings.ToUpper(name)] = siteHandler{help: help, fn: fn}
}

func init() {
	registerSite("HELP", "HELP — list SITE subcommands", (*session).handleSiteHelp)
	registerSite("TRACE", "TRACE <traceparent> — join the caller's distributed trace", (*session).handleSiteTrace)
	registerSite("TASK", "TASK <label> — label this session's transfers for stream telemetry", (*session).handleSiteTask)
}

// siteDisabled reports whether a registered subcommand is switched off by
// configuration (it then behaves as unknown: absent from HELP, 500 on use).
func (sess *session) siteDisabled(name string) bool {
	return name == "TRACE" && sess.srv.cfg.DisableTrace
}

func (sess *session) handleSite(params string) {
	sub, rest, _ := strings.Cut(strings.TrimSpace(params), " ")
	if sub == "" {
		sess.reply(ftp.CodeParamSyntaxError, "SITE requires a subcommand (try SITE HELP)")
		return
	}
	name := strings.ToUpper(sub)
	h, ok := siteRegistry[name]
	if !ok || sess.siteDisabled(name) {
		sess.reply(ftp.CodeSyntaxError, "Unknown SITE subcommand "+sub)
		return
	}
	h.fn(sess, strings.TrimSpace(rest))
}

func (sess *session) handleSiteHelp(string) {
	names := make([]string, 0, len(siteRegistry))
	for name := range siteRegistry {
		if !sess.siteDisabled(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	lines := []string{"SITE subcommands:"}
	for _, name := range names {
		lines = append(lines, " "+siteRegistry[name].help)
	}
	lines = append(lines, "End")
	sess.reply(ftp.CodeOK, lines...)
}

// handleSiteTrace binds the session to the caller's trace: every
// subsequent transfer span roots under the supplied traceparent instead
// of starting a fresh local trace. A malformed argument is rejected with
// 501 and leaves any previously installed context untouched.
func (sess *session) handleSiteTrace(params string) {
	sc, err := obs.Extract(strings.TrimSpace(params))
	if err != nil {
		sess.reply(ftp.CodeParamSyntaxError, "Bad traceparent")
		return
	}
	sess.traceCtx = sc
	sess.log.Debug("trace context installed",
		"trace", sc.TraceID.String(), "parent", sc.SpanID.String())
	sess.reply(ftp.CodeOK, "Trace context accepted")
}

// maxTaskLabel bounds SITE TASK labels: they become time-series names, so
// an unbounded remote-supplied label would mint unbounded series.
const maxTaskLabel = 128

// handleSiteTask installs the session's task label. The stream-telemetry
// plane names this session's per-stream series after it, so a transfer
// scheduler can send the same label to both endpoints of a third-party
// transfer and read back one coherent stream-health picture. An empty
// label clears it.
func (sess *session) handleSiteTask(params string) {
	label := strings.TrimSpace(params)
	if len(label) > maxTaskLabel || strings.ContainsAny(label, " \t") {
		sess.reply(ftp.CodeParamSyntaxError, "Bad task label")
		return
	}
	sess.task = label
	sess.reply(ftp.CodeOK, "Task label accepted")
}
