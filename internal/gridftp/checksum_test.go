package gridftp

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/netsim"
)

func TestChecksumCommand(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	payload := pattern(100000)
	s.putFile(t, "/c.bin", payload)

	want := sha256.Sum256(payload)
	got, err := c.Checksum("sha256", "/c.bin", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got != hex.EncodeToString(want[:]) {
		t.Fatalf("checksum %s want %s", got, hex.EncodeToString(want[:]))
	}

	// Region checksum.
	region := sha256.Sum256(payload[1000:6000])
	got, err = c.Checksum("SHA256", "/c.bin", 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got != hex.EncodeToString(region[:]) {
		t.Fatal("region checksum mismatch")
	}

	// Other algorithms respond and differ.
	md5sum, err := c.Checksum("MD5", "/c.bin", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	adler, err := c.Checksum("ADLER32", "/c.bin", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if md5sum == adler || len(md5sum) != 32 || len(adler) != 8 {
		t.Fatalf("md5=%s adler=%s", md5sum, adler)
	}

	// Error paths.
	if _, err := c.Checksum("ROT13", "/c.bin", 0, -1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := c.Checksum("MD5", "/missing", 0, -1); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := c.Checksum("MD5", "/c.bin", -5, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestVerifyTransferEndToEnd(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	payload := pattern(300000)
	src := dsi.NewBufferFile(payload)
	if _, err := c.Put("/v.bin", src); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyTransfer("SHA256", "/v.bin", src); err != nil {
		t.Fatalf("post-transfer verification failed: %v", err)
	}
	// Corrupt the server copy: verification must catch it.
	f, err := s.storage.Open("alice", "/v.bin")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte{0xFF, 0xFE}, 1234)
	f.Close()
	if err := c.VerifyTransfer("SHA256", "/v.bin", src); err == nil {
		t.Fatal("verification missed server-side corruption")
	}
}
