package gridftp

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

func TestLoginAndSimpleOps(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), false)

	if c.ServerIdentity != "/O=Grid/OU=siteA/CN=host-siteA" {
		t.Fatalf("server identity %q", c.ServerIdentity)
	}
	if err := c.Noop(); err != nil {
		t.Fatal(err)
	}
	feats, err := c.Features()
	if err != nil {
		t.Fatal(err)
	}
	if !c.SupportsDCSC() {
		t.Fatalf("server should advertise DCSC; features: %v", feats)
	}
	if err := c.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := c.Chdir("/data"); err != nil {
		t.Fatal(err)
	}
	s.putFile(t, "/data/x.bin", pattern(1234))
	n, err := c.Size("x.bin") // relative to CWD
	if err != nil {
		t.Fatal(err)
	}
	if n != 1234 {
		t.Fatalf("size %d", n)
	}
	facts, err := c.Stat("/data/x.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(facts, "Size=1234") {
		t.Fatalf("MLST facts %q", facts)
	}
	if err := c.Rename("/data/x.bin", "/data/y.bin"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("/data/y.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Size("/data/y.bin"); err == nil {
		t.Fatal("deleted file still has size")
	}
}

func TestLoginRejectsUnknownCA(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	other, err := gsi.NewCA("/O=Other/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mallory, err := other.Issue(gsi.IssueOptions{Subject: "/O=Other/CN=mallory", Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore()
	trust.AddCA(s.ca.Certificate())
	trust.AddCA(other.Certificate()) // client trusts the server; server must still reject the client
	if _, err := Dial(nw.Host("laptop"), s.addr, mallory, trust); err == nil {
		t.Fatal("login with untrusted CA should fail")
	}
}

func TestLoginRejectsUnmappedUser(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	// Valid CA, but no gridmap entry for bob.
	bob, err := s.ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/OU=siteA/CN=bob", Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Dial(nw.Host("laptop"), s.addr, bob, s.trust)
	if err == nil {
		t.Fatal("unmapped user should be rejected")
	}
	var re *ftp.ReplyError
	if !errors.As(err, &re) || re.Reply.Code != ftp.CodeNotLoggedIn {
		t.Fatalf("want 530 reply error, got %v", err)
	}
}

func TestPutGetRoundTripModeE(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	if err := c.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	payload := pattern(3*DefaultBlockSize + 777)
	stats, err := c.Put("/big.bin", dsi.NewBufferFile(payload))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != int64(len(payload)) {
		t.Fatalf("put bytes %d want %d", stats.Bytes, len(payload))
	}
	if got := s.readFile(t, "/big.bin"); !bytes.Equal(got, payload) {
		t.Fatalf("server content mismatch (%d vs %d bytes)", len(got), len(payload))
	}
	dst := dsi.NewBufferFile(nil)
	gstats, err := c.Get("/big.bin", dst)
	if err != nil {
		t.Fatal(err)
	}
	if gstats.Bytes != int64(len(payload)) {
		t.Fatalf("get bytes %d", gstats.Bytes)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("downloaded content mismatch")
	}
}

func TestPutGetStreamMode(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	if err := c.SetMode(ModeStream); err != nil {
		t.Fatal(err)
	}
	payload := pattern(100000)
	if _, err := c.Put("/s.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	if got := s.readFile(t, "/s.bin"); !bytes.Equal(got, payload) {
		t.Fatal("stream put mismatch")
	}
	dst := dsi.NewBufferFile(nil)
	if _, err := c.Get("/s.bin", dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("stream get mismatch")
	}
}

func TestEmptyFileTransfer(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	if _, err := c.Put("/empty", dsi.NewBufferFile(nil)); err != nil {
		t.Fatal(err)
	}
	if got := s.readFile(t, "/empty"); len(got) != 0 {
		t.Fatalf("empty file has %d bytes", len(got))
	}
	dst := dsi.NewBufferFile(nil)
	if _, err := c.Get("/empty", dst); err != nil {
		t.Fatal(err)
	}
	if len(dst.Bytes()) != 0 {
		t.Fatal("downloaded empty file not empty")
	}
}

func TestChannelCachingReusesConnections(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	payload := pattern(10000)
	for i := 0; i < 5; i++ {
		if _, err := c.Put("/f.bin", dsi.NewBufferFile(payload)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if len(c.pooledDialed) != c.spec.Parallelism {
		t.Fatalf("expected pooled channels after puts, have %d", len(c.pooledDialed))
	}
	// Gets use the accepted pool.
	dst := dsi.NewBufferFile(nil)
	for i := 0; i < 3; i++ {
		if _, err := c.Get("/f.bin", dst); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("content mismatch after cached gets")
	}
}

func TestParallelismChangeFlushesCache(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	payload := pattern(50000)
	if _, err := c.Put("/f", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetParallelism(3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("/f", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	if got := s.readFile(t, "/f"); !bytes.Equal(got, payload) {
		t.Fatal("content mismatch after parallelism change")
	}
}

func TestERetPartialRetrieve(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	payload := pattern(100000)
	s.putFile(t, "/part.bin", payload)

	if err := c.ctrl.Cmd("ERET", "P 1000 5000 /part.bin"); err != nil {
		t.Fatal(err)
	}
	// ERET uses the same data path as RETR; reuse Get's machinery by
	// setting up active mode manually is complex, so drive it at the
	// protocol level via a passive stream-mode fetch.
	t.Skip("covered via client.GetPartial below")
}

func TestGetPartial(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	payload := pattern(100000)
	s.putFile(t, "/part.bin", payload)
	dst := dsi.NewBufferFile(nil)
	if _, err := c.GetPartial("/part.bin", 1000, 5000, dst); err != nil {
		t.Fatal(err)
	}
	got := dst.Bytes()
	// Partial data lands at its file offset (MODE E preserves offsets).
	if int64(len(got)) != 6000 {
		t.Fatalf("partial length %d want 6000 (offset 1000 + 5000 data)", len(got))
	}
	if !bytes.Equal(got[1000:6000], payload[1000:6000]) {
		t.Fatal("partial content mismatch")
	}
}

func TestRestartPutResumesFromRanges(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	payload := pattern(200000)

	// First, upload only the first half by pretending the second half was
	// already sent... actually simulate the opposite: upload fully, then
	// re-upload claiming the first 150000 bytes are already there: the
	// transfer should move only the remainder.
	if _, err := c.Put("/r.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	c.SetRestart([]Range{{0, 150000}})
	stats, err := c.Put("/r.bin", dsi.NewBufferFile(payload))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != 50000 {
		t.Fatalf("restart put moved %d bytes, want 50000", stats.Bytes)
	}
	if got := s.readFile(t, "/r.bin"); !bytes.Equal(got, payload) {
		t.Fatal("content mismatch after restarted put")
	}
}

func TestRestartMarkersEmitted(t *testing.T) {
	nw := netsim.NewNetwork()
	// Shape the link so the transfer takes long enough for markers.
	nw.SetLink("laptop", "siteA", netsim.LinkParams{
		Bandwidth: 2e6, RTT: 5 * time.Millisecond, StreamWindow: 1 << 20,
	})
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	if err := c.SetMarkerInterval(30 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var markerCount int
	c.OnMarker(func(rs []Range) { markerCount++ })
	payload := pattern(600000) // ~300ms at 2 MB/s
	if _, err := c.Put("/m.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	if markerCount == 0 {
		t.Fatal("no restart markers received during slow put")
	}
}

func TestMlsdListing(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	s.putFile(t, "/a.txt", []byte("a"))
	s.putFile(t, "/b.txt", []byte("bb"))
	if err := c.Mkdir("/sub"); err != nil {
		t.Fatal(err)
	}
	entries, err := c.List("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("listing %v", entries)
	}
	if !strings.Contains(entries[0], "a.txt") || !strings.Contains(entries[2], "Type=dir") {
		t.Fatalf("listing content %v", entries)
	}
}

func TestDCAURequiresCredential(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), false) // no delegation
	s.putFile(t, "/f", pattern(100))
	// Server-side DCAU requires a delegated credential; transfer must be
	// refused with 530.
	dst := dsi.NewBufferFile(nil)
	_, err := c.Get("/f", dst)
	var re *ftp.ReplyError
	if !errors.As(err, &re) || re.Reply.Code != ftp.CodeNotLoggedIn {
		t.Fatalf("want 530 for DCAU without delegation, got %v", err)
	}
	// DCAU N waives the requirement.
	if err := c.SetDCAU(DCAUNone); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("/f", dst); err != nil {
		t.Fatal(err)
	}
}

func TestProtLevelsTransferCorrectly(t *testing.T) {
	for _, prot := range []ProtLevel{ProtClear, ProtSafe, ProtPrivate} {
		t.Run(string(rune(prot)), func(t *testing.T) {
			nw := netsim.NewNetwork()
			s := newSite(t, nw, "siteA")
			c := s.connect(t, nw.Host("laptop"), true)
			if err := c.SetProt(prot); err != nil {
				t.Fatal(err)
			}
			payload := pattern(300000)
			if _, err := c.Put("/p.bin", dsi.NewBufferFile(payload)); err != nil {
				t.Fatal(err)
			}
			if got := s.readFile(t, "/p.bin"); !bytes.Equal(got, payload) {
				t.Fatal("content mismatch")
			}
			dst := dsi.NewBufferFile(nil)
			if _, err := c.Get("/p.bin", dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst.Bytes(), payload) {
				t.Fatal("download mismatch")
			}
		})
	}
}
