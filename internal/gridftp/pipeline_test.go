package gridftp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/netsim"
)

func TestPutManyGetManyRoundTrip(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)

	const n = 20
	var puts []PutItem
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := pattern(1000 + i*137)
		payloads = append(payloads, p)
		puts = append(puts, PutItem{Path: fmt.Sprintf("/f%02d", i), Src: dsi.NewBufferFile(p)})
	}
	if err := c.PutMany(puts); err != nil {
		t.Fatal(err)
	}
	for i := range puts {
		if got := s.readFile(t, puts[i].Path); !bytes.Equal(got, payloads[i]) {
			t.Fatalf("file %d mismatch", i)
		}
	}

	var gets []GetItem
	var dsts []*dsi.BufferFile
	for i := 0; i < n; i++ {
		d := dsi.NewBufferFile(nil)
		dsts = append(dsts, d)
		gets = append(gets, GetItem{Path: fmt.Sprintf("/f%02d", i), Dst: d})
	}
	if err := c.GetMany(gets); err != nil {
		t.Fatal(err)
	}
	for i := range gets {
		if !bytes.Equal(dsts[i].Bytes(), payloads[i]) {
			t.Fatalf("get %d mismatch", i)
		}
	}
}

func TestGetManyMissingFileFailsCleanly(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	s.putFile(t, "/ok", pattern(100))
	err := c.GetMany([]GetItem{
		{Path: "/ok", Dst: dsi.NewBufferFile(nil)},
		{Path: "/missing", Dst: dsi.NewBufferFile(nil)},
	})
	if err == nil {
		t.Fatal("missing file in pipeline should fail")
	}
	// Session must still be usable after the failure.
	if err := c.Noop(); err != nil {
		t.Fatalf("session dead after pipelined failure: %v", err)
	}
}

func TestPipeliningBeatsSequentialOnHighRTT(t *testing.T) {
	nw := netsim.NewNetwork()
	nw.SetLink("laptop", "siteA", netsim.LinkParams{
		Bandwidth: 100e6, RTT: 20 * time.Millisecond, StreamWindow: 1 << 22,
	})
	s := newSite(t, nw, "siteA")
	const n = 15
	for i := 0; i < n; i++ {
		s.putFile(t, fmt.Sprintf("/f%02d", i), pattern(4096))
	}

	// Sequential: one Get at a time (still cached channels).
	cSeq := s.connect(t, nw.Host("laptop"), true)
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := cSeq.Get(fmt.Sprintf("/f%02d", i), dsi.NewBufferFile(nil)); err != nil {
			t.Fatal(err)
		}
	}
	seq := time.Since(start)

	// Pipelined.
	cPipe := s.connect(t, nw.Host("laptop"), true)
	var gets []GetItem
	for i := 0; i < n; i++ {
		gets = append(gets, GetItem{Path: fmt.Sprintf("/f%02d", i), Dst: dsi.NewBufferFile(nil)})
	}
	start = time.Now()
	if err := cPipe.GetMany(gets); err != nil {
		t.Fatal(err)
	}
	piped := time.Since(start)

	if piped >= seq {
		t.Fatalf("pipelining (%v) should beat sequential (%v) at 20ms RTT", piped, seq)
	}
	t.Logf("sequential %v, pipelined %v (%.1fx)", seq, piped, float64(seq)/float64(piped))
}
