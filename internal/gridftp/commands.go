package gridftp

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/netsim"
)

// featureList is what FEAT advertises; the presence of DCSC here is how
// clients discover the paper's extension (§V).
var featureList = []string{
	"AUTH TLS",
	"MODE E",
	"PARALLEL",
	"SPAS",
	"SPOR",
	"DCAU",
	"DCSC P,D",
	"PERF",
	"PBSZ",
	"PROT",
	"REST STREAM RANGES",
	"MLST size*;modify*;type*",
	"MLSD",
	"SIZE",
	"CKSM MD5,SHA256,ADLER32",
	"TRANSPORT TCP,UDT",
	"ERET",
	"MARKERS",
	"TRACE",
}

// dispatch executes one command; it returns true when the session should
// end.
func (sess *session) dispatch(cmd ftp.Command) bool {
	if sess.liteRefusal(cmd) {
		return false
	}
	// Commands allowed before authentication.
	switch cmd.Name {
	case "AUTH":
		return sess.handleAuth(cmd.Params)
	case "FEAT":
		lines := []string{"Features:"}
		for _, f := range featureList {
			if f == "TRACE" && sess.srv.cfg.DisableTrace {
				continue
			}
			lines = append(lines, f)
		}
		lines = append(lines, "End")
		sess.reply(ftp.CodeFeatures, lines...)
		return false
	case "QUIT":
		sess.reply(221, "Goodbye")
		return true
	case "NOOP":
		sess.reply(ftp.CodeOK, "NOOP ok")
		return false
	}
	if !sess.authenticated {
		sess.reply(ftp.CodeNotLoggedIn, "Authenticate first (AUTH TLS)")
		return false
	}
	switch cmd.Name {
	case "USER":
		sess.reply(ftp.CodeUserLoggedIn, "Already authenticated via GSI")
	case "PASS":
		sess.reply(ftp.CodeUserLoggedIn, "Already authenticated via GSI")
	case "DELG":
		sess.handleDelegation()
	case "PWD":
		sess.reply(ftp.CodePathCreated, fmt.Sprintf("%q is the current directory", sess.cwd))
	case "CWD":
		sess.handleCWD(cmd.Params)
	case "TYPE":
		switch strings.ToUpper(cmd.Params) {
		case "I", "A", "L 8":
			sess.reply(ftp.CodeOK, "Type set")
		default:
			sess.reply(ftp.CodeParamNotImpl, "Unsupported type")
		}
	case "MODE":
		sess.handleMode(cmd.Params)
	case "OPTS":
		sess.handleOpts(cmd.Params)
	case "PBSZ":
		if _, err := strconv.Atoi(cmd.Params); err != nil {
			sess.reply(ftp.CodeParamSyntaxError, "Bad buffer size")
		} else {
			sess.reply(ftp.CodeOK, "PBSZ=0")
		}
	case "PROT":
		sess.handleProt(cmd.Params)
	case "DCAU":
		sess.handleDCAU(cmd.Params)
	case "DCSC":
		sess.handleDCSC(cmd.Params)
	case "PASV":
		sess.handlePassive(false)
	case "SPAS":
		sess.handlePassive(true)
	case "PORT":
		sess.handlePort(cmd.Params, false)
	case "SPOR":
		sess.handlePort(cmd.Params, true)
	case "REST":
		sess.handleRest(cmd.Params)
	case "ALLO":
		sess.handleAllo(cmd.Params)
	case "RETR":
		sess.handleRetr(cmd.Params, -1, -1)
	case "ERET":
		sess.handleEret(cmd.Params)
	case "STOR":
		sess.handleStor(cmd.Params)
	case "SIZE":
		sess.handleSize(cmd.Params)
	case "CKSM":
		sess.handleCksm(cmd.Params)
	case "MLST":
		sess.handleMlst(cmd.Params)
	case "MLSD":
		sess.handleMlsd(cmd.Params)
	case "MKD":
		sess.handleMkd(cmd.Params)
	case "DELE", "RMD":
		sess.handleDele(cmd.Params)
	case "RNFR":
		sess.handleRnfr(cmd.Params)
	case "RNTO":
		sess.handleRnto(cmd.Params)
	case "ABOR":
		sess.reply(ftp.CodeClosingData, "No transfer in progress")
	case "SITE":
		sess.handleSite(cmd.Params)
	default:
		sess.reply(ftp.CodeNotImplemented, fmt.Sprintf("Command %s not implemented", cmd.Name))
	}
	return false
}

// resolve joins a possibly relative path against the session CWD.
func (sess *session) resolve(p string) (string, error) {
	if !strings.HasPrefix(p, "/") {
		p = sess.cwd + "/" + p
	}
	return dsi.CleanPath(p)
}

func (sess *session) handleCWD(params string) {
	p, err := sess.resolve(params)
	if err != nil {
		sess.reply(ftp.CodeBadFileName, err.Error())
		return
	}
	fi, err := sess.srv.cfg.Storage.Stat(sess.localUser, p)
	if err != nil {
		sess.reply(ftp.CodeFileUnavailable, errText(err))
		return
	}
	if !fi.IsDir {
		sess.reply(ftp.CodeFileUnavailable, "Not a directory")
		return
	}
	sess.cwd = p
	sess.reply(ftp.CodeFileActionOK, "CWD ok")
}

func (sess *session) handleMode(params string) {
	switch strings.ToUpper(params) {
	case "S":
		sess.spec.Mode = ModeStream
		sess.data.flush()
		sess.reply(ftp.CodeOK, "Mode S ok")
	case "E":
		sess.spec.Mode = ModeExtended
		sess.data.flush()
		sess.reply(ftp.CodeOK, "Mode E ok")
	default:
		sess.reply(ftp.CodeParamNotImpl, "Unsupported mode")
	}
}

// handleAllo records the size announced for the next STOR ("ALLO n",
// RFC 959) so the storage layer can preallocate the destination file
// instead of grow-copying it block by block.
func (sess *session) handleAllo(params string) {
	fields := strings.Fields(params)
	if len(fields) == 0 {
		sess.reply(ftp.CodeParamSyntaxError, "ALLO requires a size")
		return
	}
	n, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil || n < 0 {
		sess.reply(ftp.CodeParamSyntaxError, "Bad ALLO size")
		return
	}
	sess.alloHint = n
	sess.reply(ftp.CodeOK, "ALLO ok")
}

// handleOpts parses Globus-style "OPTS RETR Parallelism=n,n,n;" plus our
// "OPTS RETR BlockSize=n;" extension.
func (sess *session) handleOpts(params string) {
	verb, rest, _ := strings.Cut(params, " ")
	if !strings.EqualFold(verb, "RETR") && !strings.EqualFold(verb, "STOR") {
		sess.reply(ftp.CodeParamNotImpl, "OPTS target not supported")
		return
	}
	for _, kv := range strings.Split(strings.TrimSuffix(strings.TrimSpace(rest), ";"), ";") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "parallelism":
			// Globus sends "min,pref,max"; we honor the preferred value.
			parts := strings.Split(val, ",")
			idx := 0
			if len(parts) >= 2 {
				idx = 1
			}
			n, err := strconv.Atoi(strings.TrimSpace(parts[idx]))
			if err != nil || n < 1 || n > 128 {
				sess.reply(ftp.CodeParamSyntaxError, "Bad parallelism")
				return
			}
			if n != sess.spec.Parallelism {
				sess.spec.Parallelism = n
				sess.data.flush()
			}
		case "blocksize":
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil || n < 1024 || n > 64<<20 {
				sess.reply(ftp.CodeParamSyntaxError, "Bad block size")
				return
			}
			sess.spec.BlockSize = n
		case "transport":
			switch strings.ToUpper(strings.TrimSpace(val)) {
			case "TCP":
				sess.spec.Transport = netsim.TransportTCP
			case "UDT":
				sess.spec.Transport = netsim.TransportUDT
			default:
				sess.reply(ftp.CodeParamNotImpl, "Unknown transport "+val)
				return
			}
			sess.data.flush()
		case "deflate":
			on := strings.TrimSpace(val) == "1"
			if !on && strings.TrimSpace(val) != "0" {
				sess.reply(ftp.CodeParamSyntaxError, "Bad deflate flag (want 0 or 1)")
				return
			}
			if on != sess.spec.Deflate {
				sess.spec.Deflate = on
				sess.data.flush()
			}
		case "markers":
			d, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil || d < 0 {
				sess.reply(ftp.CodeParamSyntaxError, "Bad marker interval (ms)")
				return
			}
			sess.spec.MarkerInterval = msDuration(d)
		default:
			sess.reply(ftp.CodeParamNotImpl, "Unknown OPTS key "+key)
			return
		}
	}
	sess.reply(ftp.CodeOK, "Options set")
}

func (sess *session) handleProt(params string) {
	switch strings.ToUpper(params) {
	case "C":
		sess.spec.Prot = ProtClear
	case "S":
		sess.spec.Prot = ProtSafe
	case "P":
		sess.spec.Prot = ProtPrivate
	default:
		sess.reply(ftp.CodeParamNotImpl, "PROT level not supported")
		return
	}
	sess.data.flush()
	sess.reply(ftp.CodeOK, "Protection level set")
}

func (sess *session) handleDCAU(params string) {
	switch strings.ToUpper(params) {
	case "N":
		sess.spec.DCAU = DCAUNone
		sess.spec.Prot = ProtClear
	case "A":
		sess.spec.DCAU = DCAUSelf
	case "S":
		sess.spec.DCAU = DCAUSubject
	default:
		sess.reply(ftp.CodeParamNotImpl, "DCAU mode not supported")
		return
	}
	sess.data.flush()
	sess.reply(ftp.CodeOK, "DCAU set")
}

// handleDCSC implements the paper's Data Channel Security Context command
// (§V): "DCSC P <base64 blob>" installs a replacement credential/trust for
// the data channel; "DCSC D" reverts to the login context.
func (sess *session) handleDCSC(params string) {
	ctype, blob, _ := strings.Cut(params, " ")
	switch strings.ToUpper(ctype) {
	case "D":
		sess.dcsc = nil
		sess.data.flush()
		sess.reply(ftp.CodeOK, "Data channel security context reset to default")
	case "P":
		if !printableASCII(blob) || blob == "" {
			sess.reply(ftp.CodeParamSyntaxError, "DCSC blob must be printable ASCII")
			return
		}
		ctx, err := DecodeDCSCBlob(blob, sess.srv.cfg.Trust)
		if err != nil {
			sess.reply(ftp.CodeParamSyntaxError, errText(err))
			return
		}
		ctx.ExpectIdentity = ctx.Cred.Identity()
		sess.dcsc = ctx // a DCSC P command overwrites any previous request
		sess.data.flush()
		sess.reply(ftp.CodeOK, "Data channel security context installed")
	default:
		sess.reply(ftp.CodeParamNotImpl, "Unknown DCSC context type")
	}
}

// printableASCII enforces §V's constraint that the blob contain only
// printable ASCII (32-126).
func printableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 32 || s[i] > 126 {
			return false
		}
	}
	return true
}

func (sess *session) handleRest(params string) {
	params = strings.TrimSpace(params)
	// Plain integer = classic stream-mode offset; range list = extended.
	if off, err := strconv.ParseInt(params, 10, 64); err == nil && off >= 0 {
		sess.restart = []Range{{0, off}}
		sess.reply(ftp.CodeNeedAccount, "Restart offset accepted")
		return
	}
	ranges, err := ParseRanges(params)
	if err != nil {
		sess.reply(ftp.CodeParamSyntaxError, errText(err))
		return
	}
	sess.restart = ranges
	sess.reply(ftp.CodeNeedAccount, "Restart ranges accepted")
}

func (sess *session) handleSize(params string) {
	p, err := sess.resolve(params)
	if err != nil {
		sess.reply(ftp.CodeBadFileName, errText(err))
		return
	}
	fi, err := sess.srv.cfg.Storage.Stat(sess.localUser, p)
	if err != nil || fi.IsDir {
		sess.reply(ftp.CodeFileUnavailable, "No such file")
		return
	}
	sess.reply(ftp.CodeFileStatus, strconv.FormatInt(fi.Size, 10))
}

func mlstFacts(fi dsi.FileInfo) string {
	t := "file"
	if fi.IsDir {
		t = "dir"
	}
	return fmt.Sprintf("Type=%s;Size=%d;Modify=%s; %s",
		t, fi.Size, fi.ModTime.UTC().Format("20060102150405"), fi.Name)
}

func (sess *session) handleMlst(params string) {
	p, err := sess.resolve(params)
	if err != nil {
		sess.reply(ftp.CodeBadFileName, errText(err))
		return
	}
	fi, err := sess.srv.cfg.Storage.Stat(sess.localUser, p)
	if err != nil {
		sess.reply(ftp.CodeFileUnavailable, errText(err))
		return
	}
	sess.reply(ftp.CodeFileActionOK, "Listing "+p, mlstFacts(fi), "End")
}

func (sess *session) handleMkd(params string) {
	p, err := sess.resolve(params)
	if err != nil {
		sess.reply(ftp.CodeBadFileName, errText(err))
		return
	}
	if err := sess.srv.cfg.Storage.Mkdir(sess.localUser, p); err != nil {
		sess.reply(ftp.CodeFileUnavailable, errText(err))
		return
	}
	sess.reply(ftp.CodePathCreated, fmt.Sprintf("%q created", p))
}

func (sess *session) handleDele(params string) {
	p, err := sess.resolve(params)
	if err != nil {
		sess.reply(ftp.CodeBadFileName, errText(err))
		return
	}
	if err := sess.srv.cfg.Storage.Remove(sess.localUser, p); err != nil {
		sess.reply(ftp.CodeFileUnavailable, errText(err))
		return
	}
	sess.reply(ftp.CodeFileActionOK, "Removed")
}

func (sess *session) handleRnfr(params string) {
	p, err := sess.resolve(params)
	if err != nil {
		sess.reply(ftp.CodeBadFileName, errText(err))
		return
	}
	if _, err := sess.srv.cfg.Storage.Stat(sess.localUser, p); err != nil {
		sess.reply(ftp.CodeFileUnavailable, errText(err))
		return
	}
	sess.renameFrom = p
	sess.reply(ftp.CodeNeedAccount, "Ready for RNTO")
}

func (sess *session) handleRnto(params string) {
	if sess.renameFrom == "" {
		sess.reply(ftp.CodeBadSequence, "RNFR required first")
		return
	}
	p, err := sess.resolve(params)
	if err != nil {
		sess.reply(ftp.CodeBadFileName, errText(err))
		return
	}
	err = sess.srv.cfg.Storage.Rename(sess.localUser, sess.renameFrom, p)
	sess.renameFrom = ""
	if err != nil {
		sess.reply(ftp.CodeFileUnavailable, errText(err))
		return
	}
	sess.reply(ftp.CodeFileActionOK, "Renamed")
}

// handleEret implements partial retrieve: "ERET P <offset> <length> <path>".
func (sess *session) handleEret(params string) {
	fields := strings.Fields(params)
	if len(fields) < 4 || !strings.EqualFold(fields[0], "P") {
		sess.reply(ftp.CodeParamSyntaxError, "ERET P <offset> <length> <path>")
		return
	}
	off, err1 := strconv.ParseInt(fields[1], 10, 64)
	length, err2 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil || off < 0 || length < 0 {
		sess.reply(ftp.CodeParamSyntaxError, "Bad ERET offsets")
		return
	}
	sess.handleRetr(strings.Join(fields[3:], " "), off, length)
}

func errText(err error) string {
	if err == nil {
		return "OK"
	}
	var replyErr *ftp.ReplyError
	if errors.As(err, &replyErr) {
		return replyErr.Reply.Text()
	}
	return err.Error()
}
