package gridftp

import (
	"bytes"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/netsim"
)

func TestUDTTransportTransfersCorrectly(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), true)
	if err := c.SetTransport(netsim.TransportUDT); err != nil {
		t.Fatal(err)
	}
	payload := pattern(500000)
	if _, err := c.Put("/udt.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	if got := s.readFile(t, "/udt.bin"); !bytes.Equal(got, payload) {
		t.Fatal("UDT put mismatch")
	}
	dst := dsi.NewBufferFile(nil)
	if _, err := c.Get("/udt.bin", dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("UDT get mismatch")
	}
	// Switching back to TCP keeps working.
	if err := c.SetTransport(netsim.TransportTCP); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("/udt.bin", dst); err != nil {
		t.Fatal(err)
	}
}

func TestUDTBeatsWindowLimitedTCPOnLossyWAN(t *testing.T) {
	// §II.A [9]: GridFTP's XIO layer exists precisely so transfers can use
	// protocols like UDT on links where per-stream TCP collapses.
	link := netsim.LinkParams{
		Bandwidth: 30e6, RTT: 40 * time.Millisecond, Loss: 0.001, StreamWindow: 64 << 10,
	}
	rate := func(tr netsim.Transport) float64 {
		nw := netsim.NewNetwork()
		nw.SetLink("laptop", "siteA", link)
		s := newSite(t, nw, "siteA")
		c := s.connect(t, nw.Host("laptop"), true)
		defer c.Close()
		if err := c.SetTransport(tr); err != nil {
			t.Fatal(err)
		}
		payload := pattern(1 << 20)
		s.putFile(t, "/f.bin", payload)
		dst := dsi.NewBufferFile(nil)
		start := time.Now()
		if _, err := c.Get("/f.bin", dst); err != nil {
			t.Fatal(err)
		}
		return float64(len(payload)) / time.Since(start).Seconds()
	}
	tcp := rate(netsim.TransportTCP)
	udt := rate(netsim.TransportUDT)
	if udt < 3*tcp {
		t.Fatalf("UDT (%.0f B/s) should dominate single-stream TCP (%.0f B/s) on this link", udt, tcp)
	}
	t.Logf("tcp=%.2f MB/s udt=%.2f MB/s (%.1fx)", tcp/1e6, udt/1e6, udt/tcp)
}

func TestBadTransportRefused(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), false)
	if _, err := c.cmdExpect("OPTS", "RETR Transport=RDMA;", 200); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
