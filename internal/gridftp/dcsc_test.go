package gridftp

import (
	"bytes"
	"crypto/x509"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

// crossDomain builds the paper's Fig 4 scenario: two sites with disjoint
// CAs, one user holding a credential from each, and a client connected to
// both with the matching credential (which is possible because the control
// channels are independent). Only the *data* channel between the two
// servers is at issue.
type crossDomain struct {
	nw      *netsim.Network
	siteA   *site // source
	siteB   *site // destination
	clientA *Client
	clientB *Client
	credA   *gsi.Credential // user credential issued by site A's CA
	credB   *gsi.Credential
}

func newCrossDomain(t *testing.T) *crossDomain {
	t.Helper()
	nw := netsim.NewNetwork()
	a := newSite(t, nw, "siteA")
	b := newSite(t, nw, "siteB")
	laptop := nw.Host("laptop")
	ca := a.connect(t, laptop, true) // delegates cred A to site A
	cb := b.connect(t, laptop, true) // delegates cred B to site B
	return &crossDomain{nw: nw, siteA: a, siteB: b, clientA: ca, clientB: cb, credA: a.user, credB: b.user}
}

func TestThirdPartySameCA(t *testing.T) {
	nw := netsim.NewNetwork()
	s1 := newSite(t, nw, "siteA")
	// Second server in the SAME trust domain: same CA, same user.
	host2 := nw.Host("siteA2")
	hostCred2, err := s1.ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/OU=siteA/CN=host-siteA2", Lifetime: time.Hour, Host: true})
	if err != nil {
		t.Fatal(err)
	}
	storage2 := dsi.NewMemStorage()
	storage2.AddUser("alice")
	srv2, err := NewServer(host2, ServerConfig{
		HostCred: hostCred2, Trust: s1.trust, Authz: s1.gridmap, Storage: storage2,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr2, _ := srv2.ListenAndServe(DefaultPort)
	defer srv2.Close()

	laptop := nw.Host("laptop")
	c1 := s1.connect(t, laptop, true)
	proxy, _ := gsi.NewProxy(s1.user, gsi.ProxyOptions{})
	c2, err := Dial(laptop, addr2.String(), proxy, s1.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Delegate(time.Hour); err != nil {
		t.Fatal(err)
	}

	payload := pattern(500000)
	s1.putFile(t, "/src.bin", payload)
	if _, err := ThirdParty(c1, "/src.bin", c2, "/dst.bin", ThirdPartyOptions{}); err != nil {
		t.Fatal(err)
	}
	f, err := storage2.Open("alice", "/dst.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dsi.ReadAll(f)
	if !bytes.Equal(got, payload) {
		t.Fatal("third-party content mismatch")
	}
}

func TestThirdPartyCrossCAFailsWithoutDCSC(t *testing.T) {
	// Fig 4: endpoint B cannot validate credential A (CA-A unknown to B)
	// and vice versa, so conventional DCAU must fail.
	cd := newCrossDomain(t)
	cd.siteA.putFile(t, "/src.bin", pattern(10000))
	_, err := ThirdParty(cd.clientA, "/src.bin", cd.clientB, "/dst.bin", ThirdPartyOptions{})
	if err == nil {
		t.Fatal("cross-CA third-party transfer should fail without DCSC")
	}
}

func TestThirdPartyCrossCADCSCDest(t *testing.T) {
	// Fig 5: pass credential A to site B via DCSC; B then presents (and
	// accepts) credential A on the data channel. Site A — which may be a
	// legacy server that knows nothing about DCSC — just sees the
	// credential it already trusts.
	cd := newCrossDomain(t)
	payload := pattern(300000)
	cd.siteA.putFile(t, "/src.bin", payload)

	// The DCSC blob carries cred A *with its chain including the CA-A
	// root* so site B can validate what site A presents.
	dcscCred := credWithRoot(t, cd.credA, cd.siteA.ca)
	res, err := ThirdParty(cd.clientA, "/src.bin", cd.clientB, "/dst.bin", ThirdPartyOptions{
		DCSC:       dcscCred,
		DCSCTarget: DCSCDest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Fatal("no duration recorded")
	}
	if got := cd.siteB.readFile(t, "/dst.bin"); !bytes.Equal(got, payload) {
		t.Fatal("content mismatch after DCSC transfer")
	}
}

func TestThirdPartyCrossCADCSCSelfSignedBoth(t *testing.T) {
	// §V: "If both servers support DCSC, clients that desire higher
	// security may specify a random, self-signed certificate as the DCAU
	// context."
	cd := newCrossDomain(t)
	payload := pattern(200000)
	cd.siteA.putFile(t, "/src.bin", payload)
	random, err := gsi.SelfSignedCredential("/CN=dcsc-ephemeral", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ThirdParty(cd.clientA, "/src.bin", cd.clientB, "/dst.bin", ThirdPartyOptions{
		DCSC:       random,
		DCSCTarget: DCSCBoth,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cd.siteB.readFile(t, "/dst.bin"); !bytes.Equal(got, payload) {
		t.Fatal("content mismatch")
	}
}

func TestDCSCDefaultRevertsContext(t *testing.T) {
	cd := newCrossDomain(t)
	payload := pattern(50000)
	cd.siteA.putFile(t, "/src.bin", payload)
	dcscCred := credWithRoot(t, cd.credA, cd.siteA.ca)

	// Install then revert: the transfer must fail again.
	if err := cd.clientB.SendDCSC(dcscCred); err != nil {
		t.Fatal(err)
	}
	if err := cd.clientB.ResetDCSC(); err != nil {
		t.Fatal(err)
	}
	if _, err := ThirdParty(cd.clientA, "/src.bin", cd.clientB, "/dst2.bin", ThirdPartyOptions{}); err == nil {
		t.Fatal("DCSC D should have reverted to the failing default context")
	}

	// Reinstall: works again (and DCSC P overrides any previous request).
	if _, err := ThirdParty(cd.clientA, "/src.bin", cd.clientB, "/dst3.bin", ThirdPartyOptions{
		DCSC: dcscCred, DCSCTarget: DCSCDest,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDCSCRejectsGarbageBlobs(t *testing.T) {
	nw := netsim.NewNetwork()
	s := newSite(t, nw, "siteA")
	c := s.connect(t, nw.Host("laptop"), false)
	for _, params := range []string{
		"P not-base64!!!",
		"P aGVsbG8=", // valid base64, not a PEM credential
		"X abc",      // unknown context type
		"P",          // missing blob
	} {
		if _, err := c.cmdExpect("DCSC", params, 200); err == nil {
			t.Errorf("DCSC %q accepted", params)
		}
	}
	// DCSC D always succeeds.
	if _, err := c.cmdExpect("DCSC", "D", 200); err != nil {
		t.Fatal(err)
	}
}

func TestDCSCBlobRoundTrip(t *testing.T) {
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", time.Hour)
	user, _ := ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/CN=u", Lifetime: time.Hour})
	blob, err := EncodeDCSCBlob(user)
	if err != nil {
		t.Fatal(err)
	}
	if !printableASCII(blob) {
		t.Fatal("DCSC blob must be printable ASCII")
	}
	defaults := gsi.NewTrustStore()
	ctx, err := DecodeDCSCBlob(blob, defaults)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Cred.DN() != user.DN() {
		t.Fatalf("decoded DN %q", ctx.Cred.DN())
	}
	// The CA root in the chain is self-signed => becomes a trust anchor.
	if _, err := ctx.Trust.Verify(user.FullChain(), time.Now()); err != nil {
		t.Fatalf("blob-supplied CA not trusted: %v", err)
	}
	// The defaults store must be untouched (overlay semantics).
	if _, err := defaults.Verify(user.FullChain(), time.Now()); err == nil {
		t.Fatal("DCSC overlay leaked into default trust store")
	}
}

// credWithRoot returns a copy of cred whose chain includes the CA root
// (required inside DCSC blobs so the receiving endpoint gains the anchor).
func credWithRoot(t *testing.T, cred *gsi.Credential, ca *gsi.CA) *gsi.Credential {
	t.Helper()
	// site user credentials already carry the CA cert in their chain.
	for _, c := range cred.Chain {
		if gsi.CertDN(c) == ca.DN() {
			return cred
		}
	}
	return &gsi.Credential{
		Cert:  cred.Cert,
		Key:   cred.Key,
		Chain: append(append([]*x509.Certificate{}, cred.Chain...), ca.Certificate()),
	}
}
