package gridftp

import (
	"fmt"
	"strings"
)

// URL is a parsed GridFTP-world transfer URL: gsiftp://host[:port]/path,
// sshftp://host[:port]/path (GridFTP-Lite), or file:/path.
type URL struct {
	// Scheme is "gsiftp", "sshftp", or "file".
	Scheme string
	// Host is "host:port" (empty for file URLs); the default control port
	// is filled in when absent.
	Host string
	// Path is the absolute path.
	Path string
}

// IsLocal reports a file: URL.
func (u URL) IsLocal() bool { return u.Scheme == "file" }

// String renders the URL.
func (u URL) String() string {
	if u.IsLocal() {
		return "file:" + u.Path
	}
	return fmt.Sprintf("%s://%s%s", u.Scheme, u.Host, u.Path)
}

// ParseURL parses the URL forms globus-url-copy accepts.
func ParseURL(s string) (URL, error) {
	switch {
	case strings.HasPrefix(s, "file://"):
		p := strings.TrimPrefix(s, "file://")
		if !strings.HasPrefix(p, "/") {
			p = "/" + p
		}
		return URL{Scheme: "file", Path: p}, nil
	case strings.HasPrefix(s, "file:"):
		p := strings.TrimPrefix(s, "file:")
		if !strings.HasPrefix(p, "/") {
			return URL{}, fmt.Errorf("gridftp: file URL %q must carry an absolute path", s)
		}
		return URL{Scheme: "file", Path: p}, nil
	}
	scheme, rest, ok := strings.Cut(s, "://")
	if !ok {
		return URL{}, fmt.Errorf("gridftp: unparsable URL %q", s)
	}
	scheme = strings.ToLower(scheme)
	if scheme != "gsiftp" && scheme != "sshftp" {
		return URL{}, fmt.Errorf("gridftp: unsupported scheme %q", scheme)
	}
	host, path, _ := strings.Cut(rest, "/")
	if host == "" {
		return URL{}, fmt.Errorf("gridftp: URL %q has no host", s)
	}
	if !strings.Contains(host, ":") {
		port := DefaultPort
		if scheme == "sshftp" {
			port = 22
		}
		host = fmt.Sprintf("%s:%d", host, port)
	}
	return URL{Scheme: scheme, Host: host, Path: "/" + path}, nil
}
