package gridftp

import (
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/ftp"
)

// FuzzParsePerfMarker throws arbitrary multi-line reply bodies at the 112
// performance-marker parser. The marker is untrusted remote input (any
// server a client connects to can emit one), so the parser must never
// panic and must never hand downstream consumers values that would: a
// negative stripe index panics the per-stripe accumulator, a huge one
// turns into an unbounded allocation, and an out-of-range timestamp
// overflows the nanosecond conversion.
func FuzzParsePerfMarker(f *testing.F) {
	f.Add("Perf Marker\n Timestamp: 1328000000.250\n Stripe Index: 0\n Stripe Bytes Transferred: 1048576\n Total Stripe Count: 2\n112 End")
	f.Add("Perf Marker\n Stripe Index: -1\n Stripe Bytes Transferred: 10\n Total Stripe Count: 1\nEnd")
	f.Add("Perf Marker\n Timestamp: 9e300\n Stripe Index: 1\n Stripe Bytes Transferred: 1\n Total Stripe Count: 1\nEnd")
	f.Add("Perf Marker\n Timestamp: NaN\n Stripe Index: 999999999999\n Stripe Bytes Transferred: -5\n Total Stripe Count: 0\nEnd")
	f.Add("Perf Marker")
	f.Add("not a marker at all")
	f.Add("Perf Marker\nStripe Index:: 1\n: 2\nTimestamp: -3.5")

	f.Fuzz(func(t *testing.T, body string) {
		r := ftp.Reply{Code: CodePerfMarker, Lines: strings.Split(body, "\n")}
		m, ok := ParsePerfMarker(r)
		if !ok {
			return
		}
		if m.Stripe < 0 || m.Stripe > maxStripeIndex {
			t.Fatalf("accepted out-of-range stripe index %d", m.Stripe)
		}
		if m.TotalStripes < 0 || m.TotalStripes > maxStripeIndex {
			t.Fatalf("accepted out-of-range stripe count %d", m.TotalStripes)
		}
		if m.StripeBytes < 0 {
			t.Fatalf("accepted negative stripe bytes %d", m.StripeBytes)
		}
		if !m.Timestamp.IsZero() &&
			(m.Timestamp.Before(time.Unix(0, 0)) || m.Timestamp.Year() > 2300) {
			t.Fatalf("accepted out-of-range timestamp %v", m.Timestamp)
		}
		// Accepted markers must be safe to feed into the accumulator the
		// way OnPerf consumers do.
		var tr perfTracker
		tr.add(m.Stripe, m.StripeBytes)
		if got := tr.total(); got != m.StripeBytes {
			t.Fatalf("tracker total %d after adding %d", got, m.StripeBytes)
		}
	})
}
