package gridftp

import (
	"net"
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/obs"
)

// discardConn is a net.Conn that swallows writes and EOFs reads — just
// enough transport for a session to emit control replies without a peer.
type discardConn struct{}

func (discardConn) Read([]byte) (int, error)         { return 0, net.ErrClosed }
func (discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (discardConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// FuzzSiteDispatch drives the SITE subcommand dispatcher with arbitrary
// parameter strings — the rawest remote-controlled surface of the
// control channel (SITE is the FTP extension namespace, so anything a
// client sends after "SITE " lands here). The dispatcher must never
// panic, must answer every input with exactly one final reply, must
// never install a task label that violates the series-name bounds
// (labels become time-series names), and must never let a malformed
// traceparent disturb an installed trace context.
func FuzzSiteDispatch(f *testing.F) {
	f.Add("HELP")
	f.Add("help extra junk")
	f.Add("TRACE 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("TRACE not-a-traceparent")
	f.Add("TASK task-42")
	f.Add("TASK " + strings.Repeat("x", 200))
	f.Add("TASK a b")
	f.Add("TASK")
	f.Add("NOSUCH subcommand")
	f.Add("")
	f.Add("   ")
	f.Add("TrAcE\t00-0-0-0")
	f.Add("TASK \x00\xff")

	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	f.Fuzz(func(t *testing.T, params string) {
		srv := &Server{log: (*obs.Obs)(nil).Logger()}
		sess := &session{
			srv:  srv,
			ctrl: ftp.NewConn(discardConn{}),
			log:  srv.log,
			spec: ChannelSpec{}.Normalize(),
			cwd:  "/",
		}
		// Pre-install a known-good trace context so the fuzzer can prove
		// malformed TRACE params never clobber it.
		pre, err := obs.Extract(valid)
		if err != nil {
			t.Fatalf("seed traceparent rejected: %v", err)
		}
		sess.traceCtx = pre

		sess.handleSite(params)

		if sess.lastReplyCode < 200 {
			t.Fatalf("SITE %q finished without a final reply (last code %d)", params, sess.lastReplyCode)
		}
		if len(sess.task) > maxTaskLabel || strings.ContainsAny(sess.task, " \t") {
			t.Fatalf("SITE %q installed out-of-bounds task label %q", params, sess.task)
		}
		if sess.traceCtx != pre {
			// Only a successful SITE TRACE may replace the context, and
			// whatever it installed must itself be valid.
			sub, rest, _ := strings.Cut(strings.TrimSpace(params), " ")
			if !strings.EqualFold(sub, "TRACE") {
				t.Fatalf("SITE %q (not TRACE) replaced the trace context", params)
			}
			want, err := obs.Extract(strings.TrimSpace(rest))
			if err != nil || sess.traceCtx != want {
				t.Fatalf("SITE %q installed context %+v not matching its params", params, sess.traceCtx)
			}
		}
	})
}
