package gcmu

import "time"

// The paper's central usability claim (§III vs §IV) is about *setup
// complexity*: conventional GridFTP requires a multi-step, partly human,
// partly out-of-band process, while GCMU is four commands. This file
// models both workflows as explicit step lists so the setup experiment
// (E5) can count steps, manual interventions, and time-to-first-transfer.

// StepKind classifies what a setup step costs.
type StepKind int

const (
	// Scripted steps run unattended (download, untar, make, install).
	Scripted StepKind = iota
	// Manual steps need a human at a keyboard (editing config, key
	// generation ceremonies, filling web forms).
	Manual
	// OutOfBand steps wait on another human or organization (CA vetting,
	// emailing the admin a DN, waiting for a gridmap update).
	OutOfBand
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case Scripted:
		return "scripted"
	case Manual:
		return "manual"
	case OutOfBand:
		return "out-of-band"
	}
	return "unknown"
}

// Step is one unit of setup work with a representative latency. The
// latencies are order-of-magnitude figures — scripted steps take seconds
// to minutes, manual steps minutes, out-of-band steps hours to days
// (CA vetting "sometimes requires ... out-of-band vetting", §IV).
type Step struct {
	Name    string
	Kind    StepKind
	Latency time.Duration
	// Section anchors the step to the paper's enumeration (§III.A).
	Section string
}

// ConventionalServerSetup returns the classic GridFTP server install
// (§III.A steps 1a-1d and 2e-2h).
func ConventionalServerSetup() []Step {
	return []Step{
		{"download Globus tarball", Scripted, 2 * time.Minute, "III.A.1a"},
		{"untar", Scripted, 30 * time.Second, "III.A.1b"},
		{"run configure", Scripted, 5 * time.Minute, "III.A.1c"},
		{"make && make install", Scripted, 20 * time.Minute, "III.A.1d"},
		{"obtain X.509 host certificate from well-known CA", OutOfBand, 24 * time.Hour, "III.A.2e"},
		{"install host certificate", Manual, 10 * time.Minute, "III.A.2f"},
		{"configure trusted certificates directory", Manual, 15 * time.Minute, "III.A.2g"},
		{"set up gridmap (DN -> local account mappings)", Manual, 15 * time.Minute, "III.A.2h"},
	}
}

// ConventionalUserSetup returns the classic per-user security setup
// (§III.A step 3).
func ConventionalUserSetup() []Step {
	return []Step{
		{"obtain X.509 user certificate from well-known CA (vetting)", OutOfBand, 24 * time.Hour, "III.A.3"},
		{"generate key pair / CSR with OpenSSL or export from browser", Manual, 20 * time.Minute, "IV"},
		{"install user certificate", Manual, 10 * time.Minute, "III.A.3"},
		{"configure trusted certificates directory", Manual, 10 * time.Minute, "III.A.3"},
		{"send DN to server admin for gridmap entry", OutOfBand, 4 * time.Hour, "III.A.3"},
	}
}

// GCMUServerSetup returns the GCMU install (§IV.D): four commands.
func GCMUServerSetup() []Step {
	return []Step{
		{"wget globusconnect-multiuser-latest.tgz", Scripted, 30 * time.Second, "IV.D"},
		{"tar -xvzf", Scripted, 10 * time.Second, "IV.D"},
		{"cd gcmu*", Scripted, time.Second, "IV.D"},
		{"sudo ./install", Scripted, 2 * time.Minute, "IV.D"},
	}
}

// GCMUClientSetup returns the GCMU client setup (§IV.E): install plus a
// myproxy-logon with the user's existing site password.
func GCMUClientSetup() []Step {
	return []Step{
		{"wget globusconnect-multiuser-latest.tgz", Scripted, 30 * time.Second, "IV.E"},
		{"tar -xvzf && sudo ./install-client", Scripted, time.Minute, "IV.E"},
		{"myproxy-logon -b -T -s <server> (site username/password)", Manual, time.Minute, "IV.E"},
	}
}

// Summary aggregates a step list.
type Summary struct {
	Steps     int
	Manual    int
	OutOfBand int
	TotalTime time.Duration
	HumanTime time.Duration // manual + out-of-band latency
}

// Summarize reduces steps to a summary.
func Summarize(steps []Step) Summary {
	var s Summary
	for _, st := range steps {
		s.Steps++
		s.TotalTime += st.Latency
		switch st.Kind {
		case Manual:
			s.Manual++
			s.HumanTime += st.Latency
		case OutOfBand:
			s.OutOfBand++
			s.HumanTime += st.Latency
		}
	}
	return s
}
