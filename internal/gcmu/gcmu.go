// Package gcmu implements Globus Connect Multi User (§IV of the paper):
// the packaging that combines a GridFTP server, a MyProxy Online CA, a
// custom authorization callout, and (optionally) an OAuth server into an
// endpoint that is trivial to install — no host certificates from external
// CAs, no gridmap file, no per-user security configuration.
package gcmu

import (
	"errors"
	"fmt"
	"time"

	"gridftp.dev/instant/internal/authz"
	"gridftp.dev/instant/internal/ca"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/myproxy"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/oauth"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/obs/tenant"
	"gridftp.dev/instant/internal/pam"
	"gridftp.dev/instant/internal/usagestats"
)

// Options configure a GCMU server install.
type Options struct {
	// Name is the endpoint name (also the DN organizational unit).
	Name string
	// Host the endpoint runs on.
	Host *netsim.Host
	// Auth is the site PAM stack (LDAP/NIS/RADIUS/OTP) — Fig 3 step 2.
	Auth *pam.Stack
	// Accounts is the local account database ("setuid" targets).
	Accounts *pam.AccountDB
	// Storage is the DSI backend (defaults to an in-memory store with a
	// sandbox per account).
	Storage dsi.Storage
	// WithOAuth additionally installs the OAuth server (§VI, Fig 7; the
	// paper lists packaging it as future work — implemented here).
	WithOAuth bool
	// LegacyGridmap, if non-nil, is consulted after the GCMU callout so
	// existing DN mappings keep working.
	LegacyGridmap *authz.Gridmap
	// CertLifetime is the short-lived user certificate lifetime.
	CertLifetime time.Duration
	// MarkerInterval for GridFTP restart markers.
	MarkerInterval time.Duration
	// DataTimeout bounds GridFTP waits for data connections.
	DataTimeout time.Duration
	// Usage optionally connects the endpoint to a usage-stats sink (a
	// fleet Collector, a MetricsSink, or a MultiSink of several).
	Usage usagestats.Sink
	// Obs receives the endpoint's structured logs, metrics, and spans;
	// it is passed through to the GridFTP server. Nil disables it.
	Obs *obs.Obs
	// Streams is the per-stream wire-telemetry registry passed through to
	// the GridFTP server: every data stream the endpoint opens is tracked
	// (bytes, EWMA throughput, TCP_INFO, stall watchdog). Nil disables
	// stream telemetry.
	Streams *streamstats.Registry
	// Tenants is the per-DN accounting plane passed through to the
	// GridFTP server: every authenticated command and data byte is
	// attributed to the session's credential DN. Nil disables tenant
	// accounting.
	Tenants *tenant.Accountant
}

// Endpoint is a running GCMU installation.
type Endpoint struct {
	Name string
	Host *netsim.Host

	// SigningCA is the MyProxy Online CA's signing authority, created at
	// install time — no external CA involved.
	SigningCA *gsi.CA
	OnlineCA  *ca.OnlineCA
	// Trust is the endpoint's trust store (its own CA only, by default).
	Trust *gsi.TrustStore

	GridFTP     *gridftp.Server
	GridFTPAddr string

	MyProxy     *myproxy.Server
	MyProxyAddr string

	OAuth     *oauth.Server
	OAuthAddr string

	Accounts *pam.AccountDB
	Storage  dsi.Storage

	log *obs.Logger
}

// Install performs the GCMU server installation (§IV.D): it creates the
// site CA, issues host credentials, wires the AUTHZ callout, and starts
// the MyProxy and GridFTP servers (plus OAuth when requested). The whole
// thing is the programmatic equivalent of "sudo ./install".
func Install(opts Options) (*Endpoint, error) {
	if opts.Name == "" || opts.Host == nil {
		return nil, errors.New("gcmu: Name and Host are required")
	}
	if opts.Auth == nil {
		return nil, errors.New("gcmu: a PAM stack is required (the local authentication system)")
	}
	if opts.Accounts == nil {
		opts.Accounts = pam.NewAccountDB()
	}
	if opts.Storage == nil {
		mem := dsi.NewMemStorage()
		for _, name := range opts.Accounts.Names() {
			mem.AddUser(name)
		}
		opts.Storage = mem
	}

	// 1. Site CA — created locally; obtaining a certificate from a
	//    well-known external CA (§III.A step e) is exactly what GCMU
	//    eliminates.
	signing, err := gsi.NewCA(gsi.DN(fmt.Sprintf("/O=GCMU/OU=%s/CN=%s MyProxy CA", opts.Name, opts.Name)), 10*365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	trust := gsi.NewTrustStore()
	if err := trust.AddCA(signing.Certificate()); err != nil {
		return nil, err
	}
	// The site CA only ever signs its own namespace.
	trust.AddPolicy(&gsi.SigningPolicy{
		CA:       signing.DN(),
		Subjects: []string{fmt.Sprintf("/O=GCMU/OU=%s/*", opts.Name)},
	})

	// 2. Host credentials for the services.
	hostCred := func(service string) (*gsi.Credential, error) {
		return signing.Issue(gsi.IssueOptions{
			Subject:  gsi.DN(fmt.Sprintf("/O=GCMU/OU=%s/CN=host %s.%s", opts.Name, service, opts.Name)),
			Lifetime: 5 * 365 * 24 * time.Hour,
			Host:     true,
		})
	}
	gridftpCred, err := hostCred("gridftp")
	if err != nil {
		return nil, err
	}
	myproxyCred, err := hostCred("myproxy")
	if err != nil {
		return nil, err
	}

	// 3. Online CA bound to the site authentication system.
	online := ca.New(signing, opts.Auth, gsi.DN(fmt.Sprintf("/O=GCMU/OU=%s", opts.Name)))
	online.Lifetime = opts.CertLifetime

	// 4. AUTHZ callout: username parsed from the DN for local-CA certs
	//    (§IV.C); optional legacy gridmap as fallback.
	var callout authz.Callout = &authz.GCMUCallout{LocalCA: signing.DN(), Accounts: opts.Accounts}
	if opts.LegacyGridmap != nil {
		callout = authz.Chain{callout, opts.LegacyGridmap}
	}

	log := opts.Obs.Logger().With("component", "gcmu", "endpoint", opts.Name)
	log.Info("install: site CA created", "dn", string(signing.DN()))
	ep := &Endpoint{
		Name:      opts.Name,
		Host:      opts.Host,
		SigningCA: signing,
		OnlineCA:  online,
		Trust:     trust,
		Accounts:  opts.Accounts,
		Storage:   opts.Storage,
		log:       log,
	}

	// 5. MyProxy server.
	ep.MyProxy = &myproxy.Server{OnlineCA: online, HostCred: myproxyCred, Obs: opts.Obs}
	mpAddr, err := ep.MyProxy.ListenAndServe(opts.Host, myproxy.DefaultPort)
	if err != nil {
		return nil, err
	}
	ep.MyProxyAddr = mpAddr.String()
	log.Info("install: myproxy up", "addr", ep.MyProxyAddr)

	// 6. GridFTP server. When the endpoint carries an Obs bundle, its
	// usage reports feed the metrics registry alongside any fleet sink.
	var metricsSink usagestats.Sink
	if opts.Obs != nil {
		metricsSink = usagestats.MetricsSink(opts.Obs.Registry())
	}
	srv, err := gridftp.NewServer(opts.Host, gridftp.ServerConfig{
		HostCred:       gridftpCred,
		Trust:          trust,
		Authz:          callout,
		Storage:        opts.Storage,
		Banner:         fmt.Sprintf("GCMU GridFTP server on %s ready", opts.Name),
		MarkerInterval: opts.MarkerInterval,
		DataTimeout:    opts.DataTimeout,
		Usage:          usagestats.MultiSink(opts.Usage, metricsSink),
		EndpointName:   opts.Name,
		Obs:            opts.Obs,
		Streams:        opts.Streams,
		Tenants:        opts.Tenants,
	})
	if err != nil {
		return nil, err
	}
	gfAddr, err := srv.ListenAndServe(gridftp.DefaultPort)
	if err != nil {
		return nil, err
	}
	ep.GridFTP = srv
	ep.GridFTPAddr = gfAddr.String()
	log.Info("install: gridftp up", "addr", ep.GridFTPAddr)

	// 7. Optional OAuth server (future work in the paper; packaged here).
	if opts.WithOAuth {
		oaCred, err := hostCred("oauth")
		if err != nil {
			return nil, err
		}
		ep.OAuth = oauth.NewServer(online, oaCred)
		oaAddr, err := ep.OAuth.ListenAndServe(opts.Host, oauth.DefaultPort)
		if err != nil {
			return nil, err
		}
		ep.OAuthAddr = oaAddr.String()
		log.Info("install: oauth up", "addr", ep.OAuthAddr)
	}
	if opts.Obs != nil {
		opts.Obs.Registry().Counter("gcmu.endpoints_installed").Inc()
	}
	opts.Obs.EventLog().Append(eventlog.EndpointInstall,
		"component", "gcmu", "endpoint", ep.Name,
		"gridftp", ep.GridFTPAddr, "myproxy", ep.MyProxyAddr, "oauth", ep.OAuthAddr)
	log.Info("install complete")
	return ep, nil
}

// Close stops all endpoint services.
func (ep *Endpoint) Close() {
	if ep.GridFTP != nil {
		ep.GridFTP.Close()
	}
	if ep.MyProxy != nil {
		ep.MyProxy.Close()
	}
	if ep.OAuth != nil {
		ep.OAuth.Close()
	}
	ep.log.Info("endpoint closed")
}

// Logon is the GCMU client path (§IV.E): obtain a short-lived credential
// from the endpoint's MyProxy CA with site username/password (myproxy-logon
// -b -T -s <server>), ready to authenticate GridFTP sessions.
func (ep *Endpoint) Logon(from *netsim.Host, username string, conv pam.Conversation) (*gsi.Credential, error) {
	return myproxy.Logon(from, ep.MyProxyAddr, username, conv, myproxy.LogonOptions{Trust: ep.Trust})
}

// Connect performs logon and opens an authenticated GridFTP session with
// delegation, the full "instant GridFTP" user experience.
func (ep *Endpoint) Connect(from *netsim.Host, username string, conv pam.Conversation) (*gridftp.Client, error) {
	cred, err := ep.Logon(from, username, conv)
	if err != nil {
		return nil, err
	}
	client, err := gridftp.Dial(from, ep.GridFTPAddr, cred, ep.Trust)
	if err != nil {
		return nil, err
	}
	if err := client.Delegate(ca.DefaultLifetime); err != nil {
		client.Close()
		return nil, err
	}
	return client, nil
}
