package gcmu

import (
	"bytes"
	"testing"
	"time"

	"gridftp.dev/instant/internal/authz"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

// installSite builds a GCMU endpoint with an LDAP-backed PAM stack and
// users alice/bob.
func installSite(t *testing.T, nw *netsim.Network, name string, mut ...func(*Options)) *Endpoint {
	t.Helper()
	dir := pam.NewLDAPDirectory("dc=" + name)
	dir.AddEntry("alice", "alicepw")
	dir.AddEntry("bob", "bobpw")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	accounts.Add(pam.Account{Name: "bob"})
	stack := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	opts := Options{
		Name:     name,
		Host:     nw.Host(name),
		Auth:     stack,
		Accounts: accounts,
	}
	for _, m := range mut {
		m(&opts)
	}
	ep, err := Install(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ep.Close)
	return ep
}

func TestGCMUWorkflowEndToEnd(t *testing.T) {
	// Fig 3: username/password -> MyProxy Online CA -> short-lived cert
	// with username in the DN -> GridFTP auth -> AUTHZ parses username ->
	// transfer, with NO gridmap and NO external CA.
	nw := netsim.NewNetwork()
	ep := installSite(t, nw, "siteA")
	laptop := nw.Host("laptop")

	cred, err := ep.Logon(laptop, "alice", pam.PasswordConv("alicepw"))
	if err != nil {
		t.Fatal(err)
	}
	if cred.DN().LastCN() != "alice" {
		t.Fatalf("username not embedded in DN: %q", cred.DN())
	}

	client, err := ep.Connect(laptop, "alice", pam.PasswordConv("alicepw"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	payload := []byte("instant gridftp")
	if _, err := client.Put("/hello.txt", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	dst := dsi.NewBufferFile(nil)
	if _, err := client.Get("/hello.txt", dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("content mismatch")
	}
}

func TestGCMUWrongPasswordNoCert(t *testing.T) {
	nw := netsim.NewNetwork()
	ep := installSite(t, nw, "siteA")
	if _, err := ep.Logon(nw.Host("laptop"), "alice", pam.PasswordConv("wrong")); err == nil {
		t.Fatal("wrong password produced a certificate")
	}
}

func TestGCMUUsersIsolatedByAccount(t *testing.T) {
	nw := netsim.NewNetwork()
	ep := installSite(t, nw, "siteA")
	laptop := nw.Host("laptop")
	alice, err := ep.Connect(laptop, "alice", pam.PasswordConv("alicepw"))
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	bob, err := ep.Connect(laptop, "bob", pam.PasswordConv("bobpw"))
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	if _, err := alice.Put("/private.txt", dsi.NewBufferFile([]byte("alice's"))); err != nil {
		t.Fatal(err)
	}
	// Bob (authenticated as bob, setuid bob) must not see alice's file.
	if _, err := bob.Size("/private.txt"); err == nil {
		t.Fatal("cross-account access allowed")
	}
}

func TestGCMURejectsForeignCA(t *testing.T) {
	// Certificates from an unrelated CA are refused — the endpoint's
	// trust roots contain only its own MyProxy Online CA.
	nw := netsim.NewNetwork()
	ep := installSite(t, nw, "siteA")
	foreign, err := gsi.NewCA("/O=Other/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := foreign.Issue(gsi.IssueOptions{Subject: "/O=Other/CN=alice", Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	trust := ep.Trust.Clone()
	trust.AddCA(foreign.Certificate()) // client may trust it; the server must not
	if _, err := gridftp.Dial(nw.Host("laptop"), ep.GridFTPAddr, cred, trust); err == nil {
		t.Fatal("foreign-CA login accepted")
	}
}

func TestGCMUSigningPolicyConfinesCA(t *testing.T) {
	// Even if someone coaxed the endpoint CA key into signing an
	// out-of-namespace subject, the signing policy rejects it at
	// verification time.
	nw := netsim.NewNetwork()
	ep := installSite(t, nw, "siteA")
	rogue, err := ep.SigningCA.Issue(gsi.IssueOptions{Subject: "/O=Grid/OU=elsewhere/CN=root", Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Trust.Verify(rogue.FullChain(), time.Now()); err == nil {
		t.Fatal("out-of-namespace subject passed signing policy")
	}
}

func TestGCMULegacyGridmapFallback(t *testing.T) {
	// A user with a conventional certificate (unknown to the online CA)
	// still maps through the legacy gridmap when configured.
	nw := netsim.NewNetwork()
	legacyCA, err := gsi.NewCA("/O=Grid/CN=Legacy CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	legacyUser, err := legacyCA.Issue(gsi.IssueOptions{Subject: "/O=Grid/CN=carol", Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	gm := authz.NewGridmap()
	gm.AddEntry(legacyUser.DN(), "alice") // maps to an existing account
	ep := installSite(t, nw, "siteA", func(o *Options) { o.LegacyGridmap = gm })
	ep.Trust.AddCA(legacyCA.Certificate()) // admin added the legacy CA root

	client, err := gridftp.Dial(nw.Host("laptop"), ep.GridFTPAddr, legacyUser, ep.Trust)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Noop(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupSummaries(t *testing.T) {
	conv := Summarize(append(ConventionalServerSetup(), ConventionalUserSetup()...))
	gcmu := Summarize(append(GCMUServerSetup(), GCMUClientSetup()...))

	if gcmu.Steps >= conv.Steps {
		t.Fatalf("GCMU steps %d should be fewer than conventional %d", gcmu.Steps, conv.Steps)
	}
	if gcmu.OutOfBand != 0 {
		t.Fatalf("GCMU should need no out-of-band steps, has %d", gcmu.OutOfBand)
	}
	if conv.OutOfBand < 2 {
		t.Fatalf("conventional setup should count CA vetting + gridmap round trips, has %d", conv.OutOfBand)
	}
	if gcmu.TotalTime >= conv.TotalTime/10 {
		t.Fatalf("GCMU time-to-first-transfer %v not an order of magnitude below conventional %v",
			gcmu.TotalTime, conv.TotalTime)
	}
	if (StepKind(99)).String() != "unknown" {
		t.Fatal("StepKind.String fallback")
	}
}

func TestInstallValidation(t *testing.T) {
	nw := netsim.NewNetwork()
	if _, err := Install(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	if _, err := Install(Options{Name: "x", Host: nw.Host("x")}); err == nil {
		t.Fatal("missing auth stack accepted")
	}
}
