package gcmu

import (
	"context"
	"crypto/subtle"
	"crypto/tls"
	"encoding/json"
	"net"
	"net/http"
	"time"

	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
	"gridftp.dev/instant/internal/usagestats"
)

// The paper's §VIII closes with future work: "a simple web-based (and
// command line) administrative console for configuring the virtual
// appliance." Console is that component: an HTTPS admin API for a running
// GCMU endpoint — status, account management, and usage — protected by an
// admin token.
//
// Endpoints (JSON over HTTPS, "Authorization: Bearer <token>"):
//
//	GET  /status            endpoint summary (services, CA, counters)
//	GET  /accounts          local account list
//	POST /accounts          {"name": "..."} provision an account
//	POST /accounts/lock     {"name": "...", "locked": true|false}
//	GET  /usage             per-day transfer statistics

// Console is the admin console for one endpoint.
type Console struct {
	Endpoint *Endpoint
	// Token authenticates the administrator.
	Token string
	// Usage, if set, is surfaced at /usage.
	Usage *usagestats.Collector

	httpSrv *http.Server
}

// statusReply is the GET /status body.
type statusReply struct {
	Name        string   `json:"name"`
	GridFTPAddr string   `json:"gridftp_addr"`
	MyProxyAddr string   `json:"myproxy_addr"`
	OAuthAddr   string   `json:"oauth_addr,omitempty"`
	CADN        string   `json:"ca_dn"`
	CertsIssued int64    `json:"certs_issued"`
	Accounts    []string `json:"accounts"`
	GridmapFree bool     `json:"gridmap_free"`
}

// ListenAndServe starts the console on the endpoint's host.
func (c *Console) ListenAndServe(port int) (net.Addr, error) {
	cred, err := c.Endpoint.SigningCA.Issue(gsi.IssueOptions{
		Subject:  c.Endpoint.SigningCA.DN().StripLastCN().AppendCN("host console." + c.Endpoint.Name),
		Lifetime: 5 * 365 * 24 * time.Hour,
		Host:     true,
	})
	if err != nil {
		return nil, err
	}
	l, err := c.Endpoint.Host.Listen(port)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", c.auth(c.handleStatus))
	mux.HandleFunc("GET /accounts", c.auth(c.handleAccounts))
	mux.HandleFunc("POST /accounts", c.auth(c.handleAddAccount))
	mux.HandleFunc("POST /accounts/lock", c.auth(c.handleLockAccount))
	mux.HandleFunc("GET /usage", c.auth(c.handleUsage))
	c.httpSrv = &http.Server{
		Handler: mux,
		TLSConfig: &tls.Config{
			Certificates: []tls.Certificate{cred.TLSCertificate()},
			MinVersion:   tls.VersionTLS12,
		},
	}
	go c.httpSrv.ServeTLS(l, "", "")
	return l.Addr(), nil
}

// Close stops the console.
func (c *Console) Close() error {
	if c.httpSrv != nil {
		return c.httpSrv.Close()
	}
	return nil
}

func (c *Console) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		got := r.Header.Get("Authorization")
		want := "Bearer " + c.Token
		if c.Token == "" || subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
			writeConsoleJSON(w, http.StatusUnauthorized, map[string]string{"error": "bad admin token"})
			return
		}
		h(w, r)
	}
}

func writeConsoleJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (c *Console) handleStatus(w http.ResponseWriter, r *http.Request) {
	ep := c.Endpoint
	writeConsoleJSON(w, http.StatusOK, statusReply{
		Name:        ep.Name,
		GridFTPAddr: ep.GridFTPAddr,
		MyProxyAddr: ep.MyProxyAddr,
		OAuthAddr:   ep.OAuthAddr,
		CADN:        string(ep.SigningCA.DN()),
		CertsIssued: ep.OnlineCA.Issued(),
		Accounts:    ep.Accounts.Names(),
		GridmapFree: true,
	})
}

func (c *Console) handleAccounts(w http.ResponseWriter, r *http.Request) {
	writeConsoleJSON(w, http.StatusOK, map[string][]string{"accounts": c.Endpoint.Accounts.Names()})
}

func (c *Console) handleAddAccount(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Name == "" {
		writeConsoleJSON(w, http.StatusBadRequest, map[string]string{"error": "need a name"})
		return
	}
	acct := c.Endpoint.Accounts.Add(pam.Account{Name: body.Name})
	// Provision a storage sandbox when the backend supports it.
	type userAdder interface{ AddUser(string) }
	type userAdderErr interface{ AddUser(string) error }
	switch st := c.Endpoint.Storage.(type) {
	case userAdder:
		st.AddUser(body.Name)
	case userAdderErr:
		if err := st.AddUser(body.Name); err != nil {
			writeConsoleJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
	}
	writeConsoleJSON(w, http.StatusOK, map[string]any{"name": acct.Name, "uid": acct.UID, "home": acct.Home})
}

func (c *Console) handleLockAccount(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Name   string `json:"name"`
		Locked bool   `json:"locked"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Name == "" {
		writeConsoleJSON(w, http.StatusBadRequest, map[string]string{"error": "need a name"})
		return
	}
	if err := c.Endpoint.Accounts.SetLocked(body.Name, body.Locked); err != nil {
		writeConsoleJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeConsoleJSON(w, http.StatusOK, map[string]any{"name": body.Name, "locked": body.Locked})
}

func (c *Console) handleUsage(w http.ResponseWriter, r *http.Request) {
	if c.Usage == nil {
		writeConsoleJSON(w, http.StatusOK, map[string]any{"days": []any{}})
		return
	}
	writeConsoleJSON(w, http.StatusOK, map[string]any{"days": c.Usage.Days()})
}

// ConsoleHTTPClient returns an HTTP client for talking to the console from
// a simulated host, trusting the endpoint's CA.
func ConsoleHTTPClient(from *netsim.Host, ep *Endpoint) *http.Client {
	return httpClientFor(from, ep.Trust)
}

func httpClientFor(from *netsim.Host, trust *gsi.TrustStore) *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return from.DialContext(ctx, addr)
			},
			TLSClientConfig: gsi.ClientTLSConfig(nil, trust),
		},
		Timeout: time.Minute,
	}
}
