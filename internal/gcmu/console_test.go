package gcmu

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
	"gridftp.dev/instant/internal/usagestats"
)

func consoleEnv(t *testing.T) (*netsim.Network, *Endpoint, *Console, string) {
	t.Helper()
	nw := netsim.NewNetwork()
	usage := usagestats.NewCollector()
	ep := installSite(t, nw, "siteA", func(o *Options) { o.Usage = usage })
	console := &Console{Endpoint: ep, Token: "admin-token", Usage: usage}
	addr, err := console.ListenAndServe(8443)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { console.Close() })
	return nw, ep, console, "https://" + addr.String()
}

func consoleGet(t *testing.T, nw *netsim.Network, ep *Endpoint, url, token string, out any) int {
	t.Helper()
	hc := ConsoleHTTPClient(nw.Host("admin"), ep)
	req, _ := http.NewRequest("GET", url, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func consolePost(t *testing.T, nw *netsim.Network, ep *Endpoint, url, token string, body any, out any) int {
	t.Helper()
	hc := ConsoleHTTPClient(nw.Host("admin"), ep)
	b, _ := json.Marshal(body)
	req, _ := http.NewRequest("POST", url, bytes.NewReader(b))
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func TestConsoleStatus(t *testing.T) {
	nw, ep, _, base := consoleEnv(t)
	var status statusReply
	if code := consoleGet(t, nw, ep, base+"/status", "admin-token", &status); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if status.Name != "siteA" || status.GridFTPAddr == "" || status.MyProxyAddr == "" {
		t.Fatalf("status %+v", status)
	}
	if !status.GridmapFree {
		t.Fatal("GCMU endpoints are gridmap-free")
	}
	if len(status.Accounts) != 2 {
		t.Fatalf("accounts %v", status.Accounts)
	}
}

func TestConsoleAuthRequired(t *testing.T) {
	nw, ep, _, base := consoleEnv(t)
	if code := consoleGet(t, nw, ep, base+"/status", "", nil); code != http.StatusUnauthorized {
		t.Fatalf("no token: %d", code)
	}
	if code := consoleGet(t, nw, ep, base+"/status", "wrong", nil); code != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d", code)
	}
}

func TestConsoleAccountLifecycle(t *testing.T) {
	nw, ep, _, base := consoleEnv(t)
	var created map[string]any
	if code := consolePost(t, nw, ep, base+"/accounts", "admin-token",
		map[string]string{"name": "newuser"}, &created); code != http.StatusOK {
		t.Fatalf("add account: %d", code)
	}
	if created["name"] != "newuser" {
		t.Fatalf("created %v", created)
	}
	// The new account is immediately usable: the storage sandbox exists.
	if _, err := ep.Storage.List("newuser", "/"); err != nil {
		t.Fatalf("sandbox missing: %v", err)
	}
	// Lock it: logons must fail even with the right password.
	if code := consolePost(t, nw, ep, base+"/accounts/lock", "admin-token",
		map[string]any{"name": "alice", "locked": true}, nil); code != http.StatusOK {
		t.Fatal("lock failed")
	}
	if _, err := ep.Logon(nw.Host("laptop"), "alice", pam.PasswordConv("alicepw")); err == nil {
		t.Fatal("locked account obtained a credential")
	}
	// Unlock restores service.
	consolePost(t, nw, ep, base+"/accounts/lock", "admin-token",
		map[string]any{"name": "alice", "locked": false}, nil)
	if _, err := ep.Logon(nw.Host("laptop"), "alice", pam.PasswordConv("alicepw")); err != nil {
		t.Fatal(err)
	}
	// Unknown account lock is a 404.
	if code := consolePost(t, nw, ep, base+"/accounts/lock", "admin-token",
		map[string]any{"name": "ghost", "locked": true}, nil); code != http.StatusNotFound {
		t.Fatalf("ghost lock: %d", code)
	}
}

func TestConsoleUsage(t *testing.T) {
	nw, ep, _, base := consoleEnv(t)
	client, err := ep.Connect(nw.Host("laptop"), "alice", pam.PasswordConv("alicepw"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Put("/u.bin", dsi.NewBufferFile(bytes.Repeat([]byte("u"), 1000))); err != nil {
		t.Fatal(err)
	}
	var usage struct {
		Days []usagestats.DayStats `json:"days"`
	}
	if code := consoleGet(t, nw, ep, base+"/usage", "admin-token", &usage); code != http.StatusOK {
		t.Fatal("usage endpoint failed")
	}
	if len(usage.Days) != 1 || usage.Days[0].Transfers != 1 {
		t.Fatalf("usage %+v", usage)
	}
}
