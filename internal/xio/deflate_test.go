package xio

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

func TestDeflateRoundTrip(t *testing.T) {
	for _, pooled := range []bool{true, false} {
		a, b := net.Pipe()
		d := &DeflateDriver{DisablePool: !pooled}
		ca, _ := d.WrapClient(a)
		cb, _ := d.WrapServer(b)

		payload := bytes.Repeat([]byte("instant gridftp deflate driver "), 4096)
		go func() {
			for off := 0; off < len(payload); off += 8192 {
				end := off + 8192
				if end > len(payload) {
					end = len(payload)
				}
				if _, err := ca.Write(payload[off:end]); err != nil {
					return
				}
			}
			ca.Close()
		}()

		got := make([]byte, 0, len(payload))
		buf := make([]byte, 4096)
		for len(got) < len(payload) {
			n, err := cb.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				break
			}
		}
		cb.Close()
		if !bytes.Equal(got, payload) {
			t.Fatalf("pooled=%v: round trip corrupted: got %d bytes, want %d", pooled, len(got), len(payload))
		}
	}
}

// TestDeflateStreamSurvivesReuse models channel caching: two transfers
// over the same wrapped connection pair, with Writes interleaved — the
// DEFLATE stream must stay decodable across the reuse boundary.
func TestDeflateStreamSurvivesReuse(t *testing.T) {
	a, b := net.Pipe()
	d := &DeflateDriver{}
	ca, _ := d.WrapClient(a)
	cb, _ := d.WrapServer(b)
	defer ca.Close()
	defer cb.Close()

	for round := 0; round < 3; round++ {
		msg := bytes.Repeat([]byte{byte('A' + round)}, 1000)
		errCh := make(chan error, 1)
		go func() {
			_, err := ca.Write(msg)
			errCh <- err
		}()
		got := make([]byte, 0, len(msg))
		buf := make([]byte, 512)
		for len(got) < len(msg) {
			cb.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, err := cb.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				t.Fatalf("round %d: read: %v", round, err)
			}
		}
		if err := <-errCh; err != nil {
			t.Fatalf("round %d: write: %v", round, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round %d corrupted", round)
		}
	}
}

// discardConn is a write-only net.Conn for writer-path benchmarks.
type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error) { return len(p), nil }
func (discardConn) Close() error                { return nil }
func (discardConn) Read(p []byte) (int, error)  { return 0, io.EOF }
func (discardConn) SetDeadline(time.Time) error { return nil }
func (discardConn) LocalAddr() net.Addr         { return nil }
func (discardConn) RemoteAddr() net.Addr        { return nil }

// The pair below records what writer pooling buys per data connection: a
// fresh flate.Writer carries ~1.2 MB of window/hash state, so the
// unpooled variant's allocs/op and B/op are dominated by compressor
// construction while the pooled variant reuses it across connections —
// the lots-of-small-files shape, where channel turnover is the workload.
func benchDeflateConnTurnover(b *testing.B, disablePool bool) {
	d := &DeflateDriver{DisablePool: disablePool}
	block := bytes.Repeat([]byte("gridftp"), 1024) // 7 KiB, compressible
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn := d.Wrap(discardConn{})
		if _, err := conn.Write(block); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

func BenchmarkDeflateConnPooled(b *testing.B)   { benchDeflateConnTurnover(b, false) }
func BenchmarkDeflateConnUnpooled(b *testing.B) { benchDeflateConnTurnover(b, true) }
