package xio

import (
	"bytes"
	"crypto/tls"
	"io"
	"net"
	"testing"
	"time"

	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

func TestStackString(t *testing.T) {
	s := Stack{&TelemetryDriver{Counters: &Counters{}}, &TLSDriver{}}
	if got := s.String(); got != "tcp|telemetry|tls" {
		t.Fatalf("stack string %q", got)
	}
	if got := (Stack{}).String(); got != "tcp" {
		t.Fatalf("empty stack string %q", got)
	}
}

func TestTelemetryCountsBytes(t *testing.T) {
	counters := &Counters{}
	stack := Stack{&TelemetryDriver{Counters: counters}}
	a, b := net.Pipe()
	ca, err := stack.WrapClient(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := stack.WrapServer(b)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1000)
	go func() {
		ca.Write(payload)
		ca.Close()
	}()
	io.Copy(io.Discard, cb)
	if got := counters.BytesWritten.Load(); got != 1000 {
		t.Fatalf("bytes written %d", got)
	}
	if got := counters.BytesRead.Load(); got != 1000 {
		t.Fatalf("bytes read %d", got)
	}
	if got := counters.Conns.Load(); got != 2 {
		t.Fatalf("conns %d", got)
	}
}

func TestTLSDriverOverSim(t *testing.T) {
	ca, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/CN=host-a", Lifetime: time.Hour, Host: true})
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/CN=alice", Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore()
	trust.AddCA(ca.Certificate())

	drv := &TLSDriver{
		ClientConfig: gsi.ClientTLSConfig(user, trust),
		ServerConfig: gsi.ServerTLSConfig(host, trust),
	}
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		raw, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		c, err := Stack{drv}.WrapServer(raw)
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 6)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		c.Write(buf)
		c.Close()
		done <- nil
	}()
	raw, err := nw.Dial("c", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Stack{drv}.WrapClient(raw)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("secret"))
	buf := make([]byte, 6)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "secret" {
		t.Fatalf("echo %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTLSDriverMissingConfig(t *testing.T) {
	d := &TLSDriver{}
	a, _ := net.Pipe()
	if _, err := d.WrapClient(a); err == nil {
		t.Fatal("missing client config should fail")
	}
	if _, err := d.WrapServer(a); err == nil {
		t.Fatal("missing server config should fail")
	}
}

func TestThrottleDriverCapsRate(t *testing.T) {
	stack := Stack{&ThrottleDriver{BytesPerSecond: 100 * 1024}}
	a, b := net.Pipe()
	ca, _ := stack.WrapClient(a)
	go io.Copy(io.Discard, b)
	start := time.Now()
	payload := bytes.Repeat([]byte("y"), 20*1024)
	ca.Write(payload)
	elapsed := time.Since(start)
	// 20 KiB at 100 KiB/s should take ~200 ms.
	if elapsed < 150*time.Millisecond {
		t.Fatalf("throttled write finished in %v, want ~200ms", elapsed)
	}
}

func TestStackPropagatesDriverErrors(t *testing.T) {
	bad := &TLSDriver{} // no configs: always errors
	stack := Stack{&TelemetryDriver{Counters: &Counters{}}, bad}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if _, err := stack.WrapClient(a); err == nil {
		t.Fatal("client error not propagated")
	}
	if _, err := stack.WrapServer(b); err == nil {
		t.Fatal("server error not propagated")
	}
}

func TestCountedConnForwardsCloseWrite(t *testing.T) {
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()
	done := make(chan []byte, 1)
	go func() {
		c, _ := l.Accept()
		data, _ := io.ReadAll(c) // returns only when CloseWrite propagates EOF
		done <- data
	}()
	raw, _ := nw.Dial("c", "s:1")
	counters := &Counters{}
	wrapped, _ := (Stack{&TelemetryDriver{Counters: counters}}).WrapClient(raw)
	wrapped.Write([]byte("fin"))
	if hc, ok := wrapped.(interface{ CloseWrite() error }); ok {
		hc.CloseWrite()
	} else {
		t.Fatal("telemetry wrapper lost CloseWrite")
	}
	select {
	case data := <-done:
		if string(data) != "fin" {
			t.Fatalf("%q", data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EOF never reached the peer")
	}
}

// fullCapConn is a net.Conn with both zero-copy capabilities, standing in
// for a real TCP socket or a netsim conn.
type fullCapConn struct {
	net.Conn
	readFromCalls     int
	writeBuffersCalls int
}

func (c *fullCapConn) ReadFrom(r io.Reader) (int64, error) {
	c.readFromCalls++
	return io.Copy(c.Conn, r)
}

func (c *fullCapConn) WriteBuffers(bufs [][]byte) (int64, error) {
	c.writeBuffersCalls++
	var total int64
	for _, b := range bufs {
		n, err := c.Conn.Write(b)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TestTelemetryCapabilityGating verifies the zero-copy passthrough
// contract: the telemetry wrapper advertises io.ReaderFrom/WriteBuffers
// exactly when the connection underneath provides them (with byte
// counting), and transforming layers — deflate, TLS — never let the
// capabilities leak through, since a forwarded ReadFrom would bypass
// compression or encryption entirely.
func TestTelemetryCapabilityGating(t *testing.T) {
	counters := &Counters{}
	drv := &TelemetryDriver{Counters: counters}

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	// Over a fully capable conn: both capabilities forwarded and counted.
	capable := &fullCapConn{Conn: a}
	wrapped, err := drv.WrapClient(capable)
	if err != nil {
		t.Fatal(err)
	}
	rf, ok := wrapped.(io.ReaderFrom)
	if !ok {
		t.Fatal("telemetry over capable conn must forward io.ReaderFrom")
	}
	bw, ok := wrapped.(BuffersWriter)
	if !ok {
		t.Fatal("telemetry over capable conn must forward WriteBuffers")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(io.Discard, b)
	}()
	if _, err := rf.ReadFrom(bytes.NewReader(make([]byte, 100))); err != nil {
		t.Fatal(err)
	}
	if _, err := bw.WriteBuffers([][]byte{make([]byte, 17), make([]byte, 83)}); err != nil {
		t.Fatal(err)
	}
	wrapped.Close()
	<-done
	if capable.readFromCalls != 1 || capable.writeBuffersCalls != 1 {
		t.Fatalf("capabilities not forwarded: ReadFrom=%d WriteBuffers=%d",
			capable.readFromCalls, capable.writeBuffersCalls)
	}
	if got := counters.BytesWritten.Load(); got != 200 {
		t.Fatalf("counted %d bytes written, want 200", got)
	}

	// Over a plain conn (no capabilities): the wrapper must not advertise
	// either, or callers would silently lose batching.
	c, d := net.Pipe()
	defer c.Close()
	defer d.Close()
	plain, err := drv.WrapClient(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.(io.ReaderFrom); ok {
		t.Fatal("telemetry over plain conn must not advertise io.ReaderFrom")
	}
	if _, ok := plain.(BuffersWriter); ok {
		t.Fatal("telemetry over plain conn must not advertise WriteBuffers")
	}

	// Deflate and TLS transform the byte stream, so they must swallow the
	// capabilities even when the conn below is fully capable: telemetry
	// stacked on top must see neither.
	for _, tc := range []struct {
		name string
		wrap func(net.Conn) net.Conn
	}{
		{"deflate", func(conn net.Conn) net.Conn { return (&DeflateDriver{}).Wrap(conn) }},
		{"tls", func(conn net.Conn) net.Conn { return tls.Client(conn, &tls.Config{}) }},
	} {
		e, f := net.Pipe()
		transformed := tc.wrap(&fullCapConn{Conn: e})
		if _, ok := transformed.(io.ReaderFrom); ok {
			t.Fatalf("%s layer leaks io.ReaderFrom past the transform", tc.name)
		}
		if _, ok := transformed.(BuffersWriter); ok {
			t.Fatalf("%s layer leaks WriteBuffers past the transform", tc.name)
		}
		over, err := drv.WrapClient(transformed)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := over.(io.ReaderFrom); ok {
			t.Fatalf("telemetry over %s must not advertise io.ReaderFrom", tc.name)
		}
		if _, ok := over.(BuffersWriter); ok {
			t.Fatalf("telemetry over %s must not advertise WriteBuffers", tc.name)
		}
		e.Close()
		f.Close()
	}
}
