package xio

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

func TestStackString(t *testing.T) {
	s := Stack{&TelemetryDriver{Counters: &Counters{}}, &TLSDriver{}}
	if got := s.String(); got != "tcp|telemetry|tls" {
		t.Fatalf("stack string %q", got)
	}
	if got := (Stack{}).String(); got != "tcp" {
		t.Fatalf("empty stack string %q", got)
	}
}

func TestTelemetryCountsBytes(t *testing.T) {
	counters := &Counters{}
	stack := Stack{&TelemetryDriver{Counters: counters}}
	a, b := net.Pipe()
	ca, err := stack.WrapClient(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := stack.WrapServer(b)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1000)
	go func() {
		ca.Write(payload)
		ca.Close()
	}()
	io.Copy(io.Discard, cb)
	if got := counters.BytesWritten.Load(); got != 1000 {
		t.Fatalf("bytes written %d", got)
	}
	if got := counters.BytesRead.Load(); got != 1000 {
		t.Fatalf("bytes read %d", got)
	}
	if got := counters.Conns.Load(); got != 2 {
		t.Fatalf("conns %d", got)
	}
}

func TestTLSDriverOverSim(t *testing.T) {
	ca, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/CN=host-a", Lifetime: time.Hour, Host: true})
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/CN=alice", Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore()
	trust.AddCA(ca.Certificate())

	drv := &TLSDriver{
		ClientConfig: gsi.ClientTLSConfig(user, trust),
		ServerConfig: gsi.ServerTLSConfig(host, trust),
	}
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		raw, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		c, err := Stack{drv}.WrapServer(raw)
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 6)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		c.Write(buf)
		c.Close()
		done <- nil
	}()
	raw, err := nw.Dial("c", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Stack{drv}.WrapClient(raw)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("secret"))
	buf := make([]byte, 6)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "secret" {
		t.Fatalf("echo %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTLSDriverMissingConfig(t *testing.T) {
	d := &TLSDriver{}
	a, _ := net.Pipe()
	if _, err := d.WrapClient(a); err == nil {
		t.Fatal("missing client config should fail")
	}
	if _, err := d.WrapServer(a); err == nil {
		t.Fatal("missing server config should fail")
	}
}

func TestThrottleDriverCapsRate(t *testing.T) {
	stack := Stack{&ThrottleDriver{BytesPerSecond: 100 * 1024}}
	a, b := net.Pipe()
	ca, _ := stack.WrapClient(a)
	go io.Copy(io.Discard, b)
	start := time.Now()
	payload := bytes.Repeat([]byte("y"), 20*1024)
	ca.Write(payload)
	elapsed := time.Since(start)
	// 20 KiB at 100 KiB/s should take ~200 ms.
	if elapsed < 150*time.Millisecond {
		t.Fatalf("throttled write finished in %v, want ~200ms", elapsed)
	}
}

func TestStackPropagatesDriverErrors(t *testing.T) {
	bad := &TLSDriver{} // no configs: always errors
	stack := Stack{&TelemetryDriver{Counters: &Counters{}}, bad}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if _, err := stack.WrapClient(a); err == nil {
		t.Fatal("client error not propagated")
	}
	if _, err := stack.WrapServer(b); err == nil {
		t.Fatal("server error not propagated")
	}
}

func TestCountedConnForwardsCloseWrite(t *testing.T) {
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()
	done := make(chan []byte, 1)
	go func() {
		c, _ := l.Accept()
		data, _ := io.ReadAll(c) // returns only when CloseWrite propagates EOF
		done <- data
	}()
	raw, _ := nw.Dial("c", "s:1")
	counters := &Counters{}
	wrapped, _ := (Stack{&TelemetryDriver{Counters: counters}}).WrapClient(raw)
	wrapped.Write([]byte("fin"))
	if hc, ok := wrapped.(interface{ CloseWrite() error }); ok {
		hc.CloseWrite()
	} else {
		t.Fatal("telemetry wrapper lost CloseWrite")
	}
	select {
	case data := <-done:
		if string(data) != "fin" {
			t.Fatalf("%q", data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EOF never reached the peer")
	}
}
