package xio

// The deflate driver: DEFLATE compression for MODE E data channels. A
// flate.Writer carries ~1.2 MB of window and hash-chain state, so minting
// one per data connection would dominate the allocation profile of
// lots-of-small-files workloads where channel caching already amortizes
// connection setup; writers and readers are therefore drawn from
// sync.Pools keyed by compression level and returned when the connection
// closes. Each Write is flushed as its own DEFLATE block so the receiver
// can decode a MODE E block header without waiting for more payload.

import (
	"compress/flate"
	"fmt"
	"io"
	"net"
	"sync"
)

// DeflateDriver compresses the connection payload with DEFLATE. Both ends
// of a data channel must stack it (GridFTP negotiates this with
// "OPTS RETR Deflate=1;") — the wire carries one continuous DEFLATE
// stream per direction, spanning pooled-channel reuse across transfers.
type DeflateDriver struct {
	// Level is the flate compression level (flate.BestSpeed 1 ..
	// flate.BestCompression 9, flate.HuffmanOnly -2). 0 selects
	// flate.DefaultCompression.
	Level int
	// DisablePool bypasses the writer/reader pools, paying a fresh
	// flate.Writer per connection — the ablation the pooling benchmarks
	// compare against.
	DisablePool bool
}

// Name implements Driver.
func (d *DeflateDriver) Name() string { return "deflate" }

// WrapClient implements Driver.
func (d *DeflateDriver) WrapClient(conn net.Conn) (net.Conn, error) { return d.Wrap(conn), nil }

// WrapServer implements Driver.
func (d *DeflateDriver) WrapServer(conn net.Conn) (net.Conn, error) { return d.Wrap(conn), nil }

// Wrap layers DEFLATE over conn. The compressor and decompressor are
// acquired lazily on first Write/Read, so a pooled-but-unused channel
// costs nothing.
func (d *DeflateDriver) Wrap(conn net.Conn) net.Conn {
	return &deflateConn{Conn: conn, drv: d}
}

func (d *DeflateDriver) level() int {
	if d.Level == 0 {
		return flate.DefaultCompression
	}
	return d.Level
}

// flateWriterPools pools *flate.Writer by compression level (a writer can
// only be Reset at the level it was created with). flateReaders pools
// decompressors, which are level-independent.
var (
	flateWriterPools sync.Map // int → *sync.Pool of *flate.Writer
	flateReaders     = sync.Pool{New: func() any { return flate.NewReader(nil) }}
)

func writerPool(level int) *sync.Pool {
	if p, ok := flateWriterPools.Load(level); ok {
		return p.(*sync.Pool)
	}
	p, _ := flateWriterPools.LoadOrStore(level, &sync.Pool{
		New: func() any {
			w, err := flate.NewWriter(nil, level)
			if err != nil {
				// Levels are validated below before the pool is consulted.
				panic(fmt.Sprintf("xio: flate level %d: %v", level, err))
			}
			return w
		},
	})
	return p.(*sync.Pool)
}

type deflateConn struct {
	net.Conn
	drv *DeflateDriver

	wmu sync.Mutex
	fw  *flate.Writer

	rmu sync.Mutex
	fr  io.ReadCloser

	closeOnce sync.Once
	closeErr  error
}

func (c *deflateConn) writer() (*flate.Writer, error) {
	if c.fw != nil {
		return c.fw, nil
	}
	level := c.drv.level()
	if c.drv.DisablePool {
		fw, err := flate.NewWriter(c.Conn, level)
		if err != nil {
			return nil, fmt.Errorf("xio: deflate: %w", err)
		}
		c.fw = fw
		return c.fw, nil
	}
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		return nil, fmt.Errorf("xio: deflate: invalid level %d", level)
	}
	fw := writerPool(level).Get().(*flate.Writer)
	fw.Reset(c.Conn)
	c.fw = fw
	return c.fw, nil
}

func (c *deflateConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	fw, err := c.writer()
	if err != nil {
		return 0, err
	}
	if _, err := fw.Write(p); err != nil {
		return 0, err
	}
	// Flush per Write: the peer's decompressor must be able to yield these
	// bytes now — a MODE E block header held back in the compressor would
	// deadlock the receiver.
	if err := fw.Flush(); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (c *deflateConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.fr == nil {
		if c.drv.DisablePool {
			c.fr = flate.NewReader(c.Conn)
		} else {
			fr := flateReaders.Get().(io.ReadCloser)
			fr.(flate.Resetter).Reset(c.Conn, nil)
			c.fr = fr
		}
	}
	return c.fr.Read(p)
}

// CloseWrite terminates this direction's DEFLATE stream and forwards the
// half-close when the transport supports it (stream-mode EOF).
func (c *deflateConn) CloseWrite() error {
	c.wmu.Lock()
	if c.fw != nil {
		c.fw.Close()
		if !c.drv.DisablePool {
			writerPool(c.drv.level()).Put(c.fw)
		}
		c.fw = nil
	}
	c.wmu.Unlock()
	if hc, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return hc.CloseWrite()
	}
	return nil
}

func (c *deflateConn) Close() error {
	c.closeOnce.Do(func() {
		c.wmu.Lock()
		if c.fw != nil {
			// Flush rather than Close: Close emits a final-block marker,
			// and a pooled writer reused on another connection must not
			// have ended its stream.
			c.fw.Flush()
			if !c.drv.DisablePool {
				writerPool(c.drv.level()).Put(c.fw)
			}
			c.fw = nil
		}
		c.wmu.Unlock()
		c.rmu.Lock()
		if c.fr != nil {
			if !c.drv.DisablePool {
				flateReaders.Put(c.fr)
			}
			c.fr = nil
		}
		c.rmu.Unlock()
		c.closeErr = c.Conn.Close()
	})
	return c.closeErr
}
