// Package xio is the Globus XIO analog (§II.A [8] of the paper): a
// protocol-independent I/O layer in which connections are produced by
// composable driver stacks. A Stack is an ordered list of Drivers, each of
// which wraps the connection handed up by the driver below it — e.g.
// [tcp] for a cleartext data channel, [tcp, tls] for a private one, or
// [tcp, telemetry, tls] when instrumentation is wanted. GridFTP's DTP
// builds its data channels through this interface, which is what lets the
// same transfer code run over cleartext, TLS, or simulated-WAN transports.
package xio

import (
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// Driver transforms a connection, e.g. by adding TLS or instrumentation.
type Driver interface {
	// Name identifies the driver in stack descriptions.
	Name() string
	// WrapClient wraps an outbound (connecting-side) connection.
	WrapClient(conn net.Conn) (net.Conn, error)
	// WrapServer wraps an inbound (accepting-side) connection.
	WrapServer(conn net.Conn) (net.Conn, error)
}

// Stack is an ordered driver list; drivers apply bottom-up.
type Stack []Driver

// String renders the stack as "tcp|telemetry|tls".
func (s Stack) String() string {
	out := "tcp"
	for _, d := range s {
		out += "|" + d.Name()
	}
	return out
}

// WrapClient applies every driver to an outbound connection.
func (s Stack) WrapClient(conn net.Conn) (net.Conn, error) {
	var err error
	for _, d := range s {
		conn, err = d.WrapClient(conn)
		if err != nil {
			return nil, fmt.Errorf("xio: driver %s: %w", d.Name(), err)
		}
	}
	return conn, nil
}

// WrapServer applies every driver to an inbound connection.
func (s Stack) WrapServer(conn net.Conn) (net.Conn, error) {
	var err error
	for _, d := range s {
		conn, err = d.WrapServer(conn)
		if err != nil {
			return nil, fmt.Errorf("xio: driver %s: %w", d.Name(), err)
		}
	}
	return conn, nil
}

// --- TLS driver ---

// TLSDriver performs a TLS handshake with the given configurations.
type TLSDriver struct {
	ClientConfig *tls.Config
	ServerConfig *tls.Config
	// HandshakeTimeout bounds the handshake; zero means no timeout.
	HandshakeTimeout time.Duration
}

// Name implements Driver.
func (d *TLSDriver) Name() string { return "tls" }

func (d *TLSDriver) handshake(tc *tls.Conn, raw net.Conn) (net.Conn, error) {
	if d.HandshakeTimeout > 0 {
		raw.SetDeadline(time.Now().Add(d.HandshakeTimeout))
		defer raw.SetDeadline(time.Time{})
	}
	if err := tc.Handshake(); err != nil {
		return nil, err
	}
	return tc, nil
}

// WrapClient implements Driver.
func (d *TLSDriver) WrapClient(conn net.Conn) (net.Conn, error) {
	if d.ClientConfig == nil {
		return nil, fmt.Errorf("no client TLS config")
	}
	return d.handshake(tls.Client(conn, d.ClientConfig), conn)
}

// WrapServer implements Driver.
func (d *TLSDriver) WrapServer(conn net.Conn) (net.Conn, error) {
	if d.ServerConfig == nil {
		return nil, fmt.Errorf("no server TLS config")
	}
	return d.handshake(tls.Server(conn, d.ServerConfig), conn)
}

// --- Telemetry driver ---

// Counters holds transfer instrumentation shared across the connections of
// one stack instance.
type Counters struct {
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
	Conns        atomic.Int64
}

// TelemetryDriver counts bytes and connections flowing through the stack.
type TelemetryDriver struct {
	Counters *Counters
}

// Name implements Driver.
func (d *TelemetryDriver) Name() string { return "telemetry" }

// WrapClient implements Driver.
func (d *TelemetryDriver) WrapClient(conn net.Conn) (net.Conn, error) { return d.wrap(conn), nil }

// WrapServer implements Driver.
func (d *TelemetryDriver) WrapServer(conn net.Conn) (net.Conn, error) { return d.wrap(conn), nil }

// BuffersWriter is the vectored-write capability: several slices delivered
// as a single write on the wire (writev). Wrappers forward it only when
// the connection underneath supports it, so advertising the method never
// degrades a stack into per-slice writes.
type BuffersWriter interface {
	WriteBuffers(bufs [][]byte) (int64, error)
}

func (d *TelemetryDriver) wrap(conn net.Conn) net.Conn {
	d.Counters.Conns.Add(1)
	counted := &countedConn{Conn: conn, c: d.Counters}
	// Zero-copy / vectored passthrough is capability-gated: the wrapper
	// only advertises io.ReaderFrom or WriteBuffers when the connection
	// underneath provides them (a real TCP socket, a netsim conn). TLS and
	// deflate layers above then simply don't see the methods they must not
	// forward, and a plain conn keeps the plain wrapper.
	rf, _ := conn.(io.ReaderFrom)
	bw, _ := conn.(BuffersWriter)
	switch {
	case rf != nil && bw != nil:
		return &countedStreamConn{countedConn: counted, rf: rf, bw: bw}
	case rf != nil:
		return &countedReaderFromConn{countedConn: counted, rf: rf}
	case bw != nil:
		return &countedBuffersConn{countedConn: counted, bw: bw}
	}
	return counted
}

type countedConn struct {
	net.Conn
	c *Counters
}

func (c *countedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.c.BytesRead.Add(int64(n))
	return n, err
}

func (c *countedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.c.BytesWritten.Add(int64(n))
	return n, err
}

// CloseWrite forwards half-close when the underlying transport supports it
// (stream-mode GridFTP signals EOF that way).
func (c *countedConn) CloseWrite() error {
	if hc, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return hc.CloseWrite()
	}
	return nil
}

// readFrom forwards io.ReaderFrom with byte counting — this is what lets
// sendfile(2) survive a telemetry layer in the stack.
func (c *countedConn) readFrom(rf io.ReaderFrom, r io.Reader) (int64, error) {
	n, err := rf.ReadFrom(r)
	c.c.BytesWritten.Add(n)
	return n, err
}

// writeBuffers forwards a vectored write with byte counting.
func (c *countedConn) writeBuffers(bw BuffersWriter, bufs [][]byte) (int64, error) {
	n, err := bw.WriteBuffers(bufs)
	c.c.BytesWritten.Add(n)
	return n, err
}

// countedReaderFromConn is a countedConn over a conn that supports
// io.ReaderFrom (e.g. *net.TCPConn → sendfile).
type countedReaderFromConn struct {
	*countedConn
	rf io.ReaderFrom
}

func (c *countedReaderFromConn) ReadFrom(r io.Reader) (int64, error) { return c.readFrom(c.rf, r) }

// countedBuffersConn is a countedConn over a conn that supports vectored
// writes (e.g. netsim).
type countedBuffersConn struct {
	*countedConn
	bw BuffersWriter
}

func (c *countedBuffersConn) WriteBuffers(bufs [][]byte) (int64, error) {
	return c.writeBuffers(c.bw, bufs)
}

// countedStreamConn supports both capabilities.
type countedStreamConn struct {
	*countedConn
	rf io.ReaderFrom
	bw BuffersWriter
}

func (c *countedStreamConn) ReadFrom(r io.Reader) (int64, error) { return c.readFrom(c.rf, r) }
func (c *countedStreamConn) WriteBuffers(bufs [][]byte) (int64, error) {
	return c.writeBuffers(c.bw, bufs)
}

// --- Throttle driver ---

// ThrottleDriver caps connection throughput with a token bucket; it is the
// XIO analog of a rate-limiting driver and is used by ablation benches.
type ThrottleDriver struct {
	// BytesPerSecond is the cap per connection.
	BytesPerSecond float64
}

// Name implements Driver.
func (d *ThrottleDriver) Name() string { return "throttle" }

// WrapClient implements Driver.
func (d *ThrottleDriver) WrapClient(conn net.Conn) (net.Conn, error) { return d.wrap(conn), nil }

// WrapServer implements Driver.
func (d *ThrottleDriver) WrapServer(conn net.Conn) (net.Conn, error) { return d.wrap(conn), nil }

func (d *ThrottleDriver) wrap(conn net.Conn) net.Conn {
	return &throttledConn{Conn: conn, rate: d.BytesPerSecond}
}

type throttledConn struct {
	net.Conn
	rate float64
	debt time.Duration
	last time.Time
}

func (c *throttledConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if c.rate > 0 && n > 0 {
		now := time.Now()
		if !c.last.IsZero() {
			c.debt -= now.Sub(c.last)
			if c.debt < 0 {
				c.debt = 0
			}
		}
		c.last = now
		c.debt += time.Duration(float64(n) / c.rate * float64(time.Second))
		if c.debt > time.Millisecond {
			time.Sleep(c.debt)
			c.last = time.Now()
			c.debt = 0
		}
	}
	return n, err
}

func (c *throttledConn) CloseWrite() error {
	if hc, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return hc.CloseWrite()
	}
	return nil
}
