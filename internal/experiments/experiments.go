// Package experiments implements the reproduction harness: one runnable
// experiment per figure and quantitative claim in the paper (see
// DESIGN.md's per-experiment index, E1-E13, plus ablations). Each
// experiment builds its scenario on the netsim substrate, runs the real
// protocol stacks, and returns a Table whose rows benchreport prints and
// EXPERIMENTS.md records.
//
// Bandwidths are scaled down (a simulated "10 Gb/s WAN" runs at tens of
// MB/s wall-clock) so the full suite completes in minutes; the quantities
// the paper's claims rest on — ratios, crossovers, who wins — are
// preserved because every competing configuration is scaled identically.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"gridftp.dev/instant/internal/authz"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/obs/tenant"
	"gridftp.dev/instant/internal/pam"
)

// Table is one experiment's result, formatted like the row/series the
// paper (or its claims) would report.
type Table struct {
	ID      string
	Title   string
	Paper   string // the paper anchor and claim being reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "   paper: %s\n", t.Paper)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// mbps formats a bytes/sec rate as MB/s.
func mbps(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f MB/s", bytesPerSec/1e6)
}

// rate computes bytes/sec.
func rate(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds()
}

// pattern generates deterministic position-dependent data.
func pattern(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte((i*7 + i/251) % 256)
	}
	return data
}

// site is one administrative domain for experiment scenarios.
type site struct {
	name    string
	ca      *gsi.CA
	trust   *gsi.TrustStore
	host    *netsim.Host
	server  *gridftp.Server
	storage *dsi.MemStorage
	addr    string
	user    *gsi.Credential
	gridmap *authz.Gridmap
	faults  *dsi.FaultStorage
}

type siteOptions struct {
	stripes        int
	markerInterval time.Duration
	disableCache   bool
	withFaults     bool
	// streams, when non-nil, installs per-stream wire telemetry on the
	// server's data path (the E18 overhead experiment).
	streams *streamstats.Registry
	// tenants, when non-nil, installs per-DN accounting on the server's
	// command and data paths (the E20 overhead experiment).
	tenants *tenant.Accountant
}

// newSite builds a GridFTP site with CA, host cred, one user "alice".
func newSite(nw *netsim.Network, name string, opts siteOptions) (*site, error) {
	ca, err := gsi.NewCA(gsi.DN("/O=Grid/OU="+name+"/CN=CA"), 24*time.Hour)
	if err != nil {
		return nil, err
	}
	hostCred, err := ca.Issue(gsi.IssueOptions{
		Subject: gsi.DN(fmt.Sprintf("/O=Grid/OU=%s/CN=host-%s", name, name)), Lifetime: 12 * time.Hour, Host: true,
	})
	if err != nil {
		return nil, err
	}
	userCred, err := ca.Issue(gsi.IssueOptions{
		Subject: gsi.DN(fmt.Sprintf("/O=Grid/OU=%s/CN=alice", name)), Lifetime: 12 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	trust := gsi.NewTrustStore()
	if err := trust.AddCA(ca.Certificate()); err != nil {
		return nil, err
	}
	storage := dsi.NewMemStorage()
	storage.AddUser("alice")
	gm := authz.NewGridmap()
	gm.AddEntry(userCred.DN(), "alice")

	if opts.markerInterval == 0 {
		opts.markerInterval = 50 * time.Millisecond
	}
	cfg := gridftp.ServerConfig{
		HostCred:            hostCred,
		Trust:               trust,
		Authz:               gm,
		Storage:             storage,
		MarkerInterval:      opts.markerInterval,
		EndpointName:        name,
		DisableChannelCache: opts.disableCache,
		Streams:             opts.streams,
		Tenants:             opts.tenants,
	}
	s := &site{
		name: name, ca: ca, trust: trust, host: nw.Host(name),
		storage: storage, user: userCred, gridmap: gm,
	}
	if opts.withFaults {
		s.faults = dsi.NewFaultStorage(storage)
		cfg.Storage = s.faults
	}
	for i := 0; i < opts.stripes; i++ {
		cfg.StripeNodes = append(cfg.StripeNodes, gridftp.StripeNode{
			Host: nw.Host(fmt.Sprintf("%s-dtp%d", name, i)),
		})
	}
	srv, err := gridftp.NewServer(s.host, cfg)
	if err != nil {
		return nil, err
	}
	addr, err := srv.ListenAndServe(gridftp.DefaultPort)
	if err != nil {
		return nil, err
	}
	s.server = srv
	s.addr = addr.String()
	return s, nil
}

func (s *site) close() {
	if s.server != nil {
		s.server.Close()
	}
}

// connect opens an authenticated session from clientHost with a fresh
// proxy of the site user, optionally delegating.
func (s *site) connect(clientHost *netsim.Host, delegate bool) (*gridftp.Client, error) {
	proxy, err := gsi.NewProxy(s.user, gsi.ProxyOptions{})
	if err != nil {
		return nil, err
	}
	c, err := gridftp.Dial(clientHost, s.addr, proxy, s.trust)
	if err != nil {
		return nil, err
	}
	if delegate {
		if err := c.Delegate(2 * time.Hour); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// putFile writes a file into the site's storage directly.
func (s *site) putFile(path string, content []byte) error {
	f, err := s.storage.Create("alice", path)
	if err != nil {
		return err
	}
	defer f.Close()
	return dsi.WriteAll(f, content)
}

// newPAMStack builds a one-user LDAP stack for GCMU-based experiments.
func newPAMStack(domain, user, password string) (*pam.Stack, *pam.AccountDB) {
	dir := pam.NewLDAPDirectory("dc=" + domain)
	dir.AddEntry(user, password)
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: user})
	return pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}}), accounts
}

// All runs every experiment with default parameters, in order.
func All() []func() (*Table, error) {
	return []func() (*Table, error){
		func() (*Table, error) { return RunE1Usage(DefaultE1()) },
		func() (*Table, error) { return RunE2ParallelStreams(DefaultE2()) },
		func() (*Table, error) { return RunE3DcauOverhead(DefaultE3()) },
		func() (*Table, error) { return RunE4DcscMatrix() },
		func() (*Table, error) { return RunE5Setup() },
		func() (*Table, error) { return RunE6Checkpoint(DefaultE6()) },
		func() (*Table, error) { return RunE7SmallFiles(DefaultE7()) },
		func() (*Table, error) { return RunE8Striping(DefaultE8()) },
		func() (*Table, error) { return RunE9ThirdParty(DefaultE9()) },
		func() (*Table, error) { return RunE10Workflow() },
		func() (*Table, error) { return RunE11OAuthAudit() },
		func() (*Table, error) { return RunE12ControlSecurity() },
		func() (*Table, error) { return RunE14Scheduler(DefaultE14()) },
		func() (*Table, error) { return RunAblationBlockSize(DefaultAblationBlockSize()) },
		func() (*Table, error) { return RunAblationChannelCache(DefaultAblationCache()) },
		func() (*Table, error) { return RunAblationAutotune(DefaultAblationAutotune()) },
		func() (*Table, error) { return RunAblationTransport(DefaultAblationTransport()) },
	}
}

// ByID maps experiment ids to runners for benchreport -exp.
func ByID() map[string]func() (*Table, error) {
	return map[string]func() (*Table, error){
		"e1":        func() (*Table, error) { return RunE1Usage(DefaultE1()) },
		"e2":        func() (*Table, error) { return RunE2ParallelStreams(DefaultE2()) },
		"e3":        func() (*Table, error) { return RunE3DcauOverhead(DefaultE3()) },
		"e4":        func() (*Table, error) { return RunE4DcscMatrix() },
		"e5":        func() (*Table, error) { return RunE5Setup() },
		"e6":        func() (*Table, error) { return RunE6Checkpoint(DefaultE6()) },
		"e7":        func() (*Table, error) { return RunE7SmallFiles(DefaultE7()) },
		"e8":        func() (*Table, error) { return RunE8Striping(DefaultE8()) },
		"e9":        func() (*Table, error) { return RunE9ThirdParty(DefaultE9()) },
		"e10":       func() (*Table, error) { return RunE10Workflow() },
		"e11":       func() (*Table, error) { return RunE11OAuthAudit() },
		"e12":       func() (*Table, error) { return RunE12ControlSecurity() },
		"e14":       func() (*Table, error) { return RunE14Scheduler(DefaultE14()) },
		"blocksize": func() (*Table, error) { return RunAblationBlockSize(DefaultAblationBlockSize()) },
		"cache":     func() (*Table, error) { return RunAblationChannelCache(DefaultAblationCache()) },
		"autotune":  func() (*Table, error) { return RunAblationAutotune(DefaultAblationAutotune()) },
		"transport": func() (*Table, error) { return RunAblationTransport(DefaultAblationTransport()) },
	}
}
