package experiments

import (
	"fmt"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

// RunE12ControlSecurity verifies §II.C's control channel guarantees at the
// protocol level: authentication of control channel requests is
// obligatory, the channel is encrypted after AUTH, and no state-changing
// command runs before authorization succeeds.
func RunE12ControlSecurity() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Control channel security invariants",
		Paper:   `§II.C: "secure authentication of control channel requests (obligatory)"; "the control channel is encrypted and integrity protected by default"`,
		Columns: []string{"invariant", "probe", "observed", "verdict"},
	}
	nw := netsim.NewNetwork()
	s, err := newSite(nw, "siteA", siteOptions{})
	if err != nil {
		return nil, err
	}
	defer s.close()
	laptop := nw.Host("laptop")

	check := func(name, probe, observed string, ok bool) {
		v := "PASS"
		if !ok {
			v = "MISMATCH"
		}
		t.AddRow(name, probe, observed, v)
	}

	// 1. Commands before AUTH are refused with 530.
	{
		conn, err := nw.Dial("laptop", s.addr)
		if err != nil {
			return nil, err
		}
		fc := ftp.NewConn(conn)
		fc.Expect(ftp.CodeReadyForNewUser)
		fc.Cmd("RETR", "/etc/passwd")
		r, err := fc.ReadFinalReply(nil)
		check("pre-auth commands refused", "RETR before AUTH",
			fmt.Sprintf("%d reply", r.Code), err == nil && r.Code == ftp.CodeNotLoggedIn)
		fc.Close()
	}

	// 2. Password login (USER/PASS) cannot substitute for GSI auth.
	{
		conn, _ := nw.Dial("laptop", s.addr)
		fc := ftp.NewConn(conn)
		fc.Expect(ftp.CodeReadyForNewUser)
		fc.Cmd("USER", "alice")
		r1, _ := fc.ReadFinalReply(nil)
		fc.Cmd("PASS", "secret")
		r2, _ := fc.ReadFinalReply(nil)
		fc.Cmd("PWD", "")
		r3, _ := fc.ReadFinalReply(nil)
		check("USER/PASS is not an authentication path", "USER+PASS then PWD",
			fmt.Sprintf("%d/%d/%d replies", r1.Code, r2.Code, r3.Code),
			r3.Code == ftp.CodeNotLoggedIn)
		fc.Close()
	}

	// 3. A client without a certificate cannot complete AUTH TLS.
	{
		_, err := gridftp.Dial(laptop, s.addr, nil, s.trust)
		check("client certificate obligatory", "AUTH TLS with no client cert",
			errString(err), err != nil)
	}

	// 4. A certificate from an untrusted CA is rejected.
	{
		other, err := gsi.NewCA("/O=Evil/CN=CA", time.Hour)
		if err != nil {
			return nil, err
		}
		mallory, err := other.Issue(gsi.IssueOptions{Subject: "/O=Evil/CN=mallory", Lifetime: time.Hour})
		if err != nil {
			return nil, err
		}
		clientTrust := s.trust.Clone()
		clientTrust.AddCA(other.Certificate())
		_, derr := gridftp.Dial(laptop, s.addr, mallory, clientTrust)
		check("untrusted CA rejected", "login with /O=Evil credential", errString(derr), derr != nil)
	}

	// 5. An authenticated-but-unmapped identity is refused (530).
	{
		ghost, err := s.ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/OU=siteA/CN=ghost", Lifetime: time.Hour})
		if err != nil {
			return nil, err
		}
		_, derr := gridftp.Dial(laptop, s.addr, ghost, s.trust)
		check("authorization callout enforced", "valid cert, no local mapping", errString(derr), derr != nil)
	}

	// 6. Expired credentials are rejected.
	{
		shortLived, err := s.ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/OU=siteA/CN=alice", Lifetime: time.Millisecond})
		if err != nil {
			return nil, err
		}
		time.Sleep(5 * time.Millisecond)
		_, derr := gridftp.Dial(laptop, s.addr, shortLived, s.trust)
		check("expired credential rejected", "login with expired cert", errString(derr), derr != nil)
	}

	// 7. Data channel authentication requires a credential (delegation or
	//    DCSC) — a session without one cannot transfer under DCAU.
	{
		c, err := s.connect(laptop, false) // no delegation
		if err != nil {
			return nil, err
		}
		if err := s.putFile("/x.bin", pattern(1024)); err != nil {
			c.Close()
			return nil, err
		}
		_, gerr := c.Get("/x.bin", dsi.NewBufferFile(nil))
		check("DCAU requires delegated credential", "RETR without delegation/DCSC", errString(gerr), gerr != nil)
		c.Close()
	}

	// 8. And the same session works once delegation is performed.
	{
		c, err := s.connect(laptop, true)
		if err != nil {
			return nil, err
		}
		_, gerr := c.Get("/x.bin", dsi.NewBufferFile(nil))
		check("delegation unlocks DCAU transfers", "RETR after DELG", errString(gerr), gerr == nil)
		c.Close()
	}
	return t, nil
}
