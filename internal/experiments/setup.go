package experiments

import (
	"fmt"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

// RunE5Setup reproduces the paper's setup-complexity comparison (§III vs
// §IV): conventional GridFTP deployment against the GCMU install, counting
// steps, manual interventions, out-of-band waits, and time-to-first-
// transfer. The GCMU column is then *validated live*: the four-command
// install is actually executed (programmatically) and a first transfer is
// timed end to end.
func RunE5Setup() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Setup complexity: conventional GridFTP vs GCMU",
		Paper:   `§III: "This process is too complex for many users"; §IV.D: "four commands are required"`,
		Columns: []string{"workflow", "steps", "manual", "out-of-band", "est. time-to-first-transfer"},
	}
	workflows := []struct {
		name  string
		steps []gcmu.Step
	}{
		{"conventional server (§III.A 1-2)", gcmu.ConventionalServerSetup()},
		{"conventional per-user (§III.A 3)", gcmu.ConventionalUserSetup()},
		{"conventional total", append(gcmu.ConventionalServerSetup(), gcmu.ConventionalUserSetup()...)},
		{"GCMU server (§IV.D)", gcmu.GCMUServerSetup()},
		{"GCMU client (§IV.E)", gcmu.GCMUClientSetup()},
		{"GCMU total", append(gcmu.GCMUServerSetup(), gcmu.GCMUClientSetup()...)},
	}
	var convTotal, gcmuTotal time.Duration
	for _, w := range workflows {
		s := gcmu.Summarize(w.steps)
		t.AddRow(w.name,
			fmt.Sprintf("%d", s.Steps),
			fmt.Sprintf("%d", s.Manual),
			fmt.Sprintf("%d", s.OutOfBand),
			s.TotalTime.String())
		if w.name == "conventional total" {
			convTotal = s.TotalTime
		}
		if w.name == "GCMU total" {
			gcmuTotal = s.TotalTime
		}
	}
	if gcmuTotal > 0 {
		t.Note("estimated setup-time ratio: %.0fx (conventional %v vs GCMU %v)",
			float64(convTotal)/float64(gcmuTotal), convTotal, gcmuTotal)
	}

	// Live validation: run the actual GCMU install + logon + transfer and
	// time it (the machine part; human latencies above are estimates).
	elapsed, err := timeGCMUFirstTransfer()
	if err != nil {
		return nil, fmt.Errorf("live GCMU validation: %w", err)
	}
	t.Note("live GCMU install -> logon -> first transfer executed in %v (machine time, this run)", elapsed.Round(time.Millisecond))
	t.Note("step latencies are order-of-magnitude estimates; out-of-band steps (CA vetting, admin gridmap updates) dominate the conventional path")
	return t, nil
}

// timeGCMUFirstTransfer measures install -> logon -> transfer wall time.
func timeGCMUFirstTransfer() (time.Duration, error) {
	nw := netsim.NewNetwork()
	stack, accounts := newPAMStack("siteA", "alice", "pw")
	start := time.Now()
	ep, err := gcmu.Install(gcmu.Options{
		Name: "siteA", Host: nw.Host("siteA"), Auth: stack, Accounts: accounts,
	})
	if err != nil {
		return 0, err
	}
	defer ep.Close()
	client, err := ep.Connect(nw.Host("laptop"), "alice", pam.PasswordConv("pw"))
	if err != nil {
		return 0, err
	}
	defer client.Close()
	if _, err := client.Put("/first.bin", dsi.NewBufferFile(pattern(64<<10))); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
