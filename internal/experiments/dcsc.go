package experiments

import (
	"crypto/x509"
	"fmt"

	"gridftp.dev/instant/internal/dsi"
	"time"

	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

// RunE4DcscMatrix reproduces Figures 4 and 5 plus §V: the data channel
// authentication failure between security domains, and its resolution by
// the DCSC command under every context-type variant the paper defines —
// including the case where one endpoint is a legacy server that knows
// nothing about DCSC.
func RunE4DcscMatrix() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Third-party DCAU across security domains: failure and DCSC fix",
		Paper:   "Fig 4 (DCAU fails when CA-A unknown to endpoint B), Fig 5 / §V (DCSC fixes it; works with one legacy endpoint; self-signed contexts for higher security)",
		Columns: []string{"scenario", "DCSC", "expected", "observed", "verdict"},
	}

	type scenario struct {
		name     string
		sameCA   bool
		dcscWhat string // "", "credA->dst", "credA->src", "selfsigned-both", "selfsigned-dst-only"
		expectOK bool
	}
	scenarios := []scenario{
		{"same CA, conventional DCAU", true, "", true},
		{"cross CA, conventional DCAU", false, "", false},
		{"cross CA, DCSC P (cred A) to destination; source is DCSC-oblivious", false, "credA->dst", true},
		{"cross CA, DCSC P (cred B) to source; destination is DCSC-oblivious", false, "credB->src", true},
		{"cross CA, random self-signed DCSC on both endpoints", false, "selfsigned-both", true},
		{"cross CA, self-signed DCSC on destination only", false, "selfsigned-dst-only", false},
		{"cross CA, DCSC D after DCSC P (context reverted)", false, "revert", false},
	}

	for _, sc := range scenarios {
		ok, err := runDcscScenario(sc.sameCA, sc.dcscWhat)
		observed := "transfer succeeded"
		if !ok {
			observed = "transfer refused"
			if err != nil {
				observed = "transfer refused"
			}
		}
		expected := "succeed"
		if !sc.expectOK {
			expected = "fail"
		}
		verdict := "PASS"
		if ok != sc.expectOK {
			verdict = "MISMATCH"
		}
		dcscLabel := sc.dcscWhat
		if dcscLabel == "" {
			dcscLabel = "none"
		}
		t.AddRow(sc.name, dcscLabel, expected, observed, verdict)
	}
	t.Note("each scenario: fresh pair of sites, third-party transfer of 256 KiB; 'DCSC-oblivious' endpoints never receive the command")
	return t, nil
}

// runDcscScenario executes one matrix cell; returns whether the transfer
// succeeded.
func runDcscScenario(sameCA bool, dcscWhat string) (bool, error) {
	nw := netsim.NewNetwork()
	src, err := newSite(nw, "siteA", siteOptions{})
	if err != nil {
		return false, err
	}
	defer src.close()

	var dst *site
	if sameCA {
		// Build the destination inside site A's trust domain.
		dst, err = newSiteSharedCA(nw, "siteA2", src)
	} else {
		dst, err = newSite(nw, "siteB", siteOptions{})
	}
	if err != nil {
		return false, err
	}
	defer dst.close()

	laptop := nw.Host("laptop")
	cSrc, err := src.connect(laptop, true)
	if err != nil {
		return false, err
	}
	defer cSrc.Close()
	cDst, err := dst.connect(laptop, true)
	if err != nil {
		return false, err
	}
	defer cDst.Close()

	if err := src.putFile("/m.bin", pattern(256<<10)); err != nil {
		return false, err
	}

	opts := gridftp.ThirdPartyOptions{}
	switch dcscWhat {
	case "credA->dst":
		opts.DCSC = src.user
		opts.DCSCTarget = gridftp.DCSCDest
	case "credB->src":
		opts.DCSC = dst.user
		opts.DCSCTarget = gridftp.DCSCSource
	case "selfsigned-both":
		ss, err := gsi.SelfSignedCredential("/CN=dcsc-random", time.Hour)
		if err != nil {
			return false, err
		}
		opts.DCSC = ss
		opts.DCSCTarget = gridftp.DCSCBoth
	case "selfsigned-dst-only":
		ss, err := gsi.SelfSignedCredential("/CN=dcsc-random", time.Hour)
		if err != nil {
			return false, err
		}
		opts.DCSC = ss
		opts.DCSCTarget = gridftp.DCSCDest
	case "revert":
		// Install a working context, then revert it with DCSC D.
		if err := cDst.SendDCSC(src.user); err != nil {
			return false, err
		}
		if err := cDst.ResetDCSC(); err != nil {
			return false, err
		}
	}
	_, terr := gridftp.ThirdParty(cSrc, "/m.bin", cDst, "/m.bin", opts)
	return terr == nil, terr
}

// newSiteSharedCA builds a second server in an existing site's trust
// domain (same CA, same user mapping).
func newSiteSharedCA(nw *netsim.Network, name string, base *site) (*site, error) {
	hostCred, err := base.ca.Issue(gsi.IssueOptions{
		Subject: gsi.DN(fmt.Sprintf("/O=Grid/OU=%s/CN=host-%s", base.name, name)), Lifetime: 12 * time.Hour, Host: true,
	})
	if err != nil {
		return nil, err
	}
	s := &site{
		name: name, ca: base.ca, trust: base.trust, host: nw.Host(name),
		user: base.user, gridmap: base.gridmap,
	}
	s.storage = newMemWithUser("alice")
	srv, err := gridftp.NewServer(s.host, gridftp.ServerConfig{
		HostCred:     hostCred,
		Trust:        base.trust,
		Authz:        base.gridmap,
		Storage:      s.storage,
		EndpointName: name,
	})
	if err != nil {
		return nil, err
	}
	addr, err := srv.ListenAndServe(gridftp.DefaultPort)
	if err != nil {
		return nil, err
	}
	s.server = srv
	s.addr = addr.String()
	return s, nil
}

// certChainWithRoot is a helper kept for DCSC blob construction in other
// experiments: ensures the CA root rides in the credential chain.
func certChainWithRoot(cred *gsi.Credential, root *x509.Certificate) *gsi.Credential {
	for _, c := range cred.Chain {
		if gsi.CertDN(c) == gsi.CertDN(root) {
			return cred
		}
	}
	return &gsi.Credential{
		Cert:  cred.Cert,
		Key:   cred.Key,
		Chain: append(append([]*x509.Certificate{}, cred.Chain...), root),
	}
}

// newMemWithUser builds an in-memory store with one provisioned user.
func newMemWithUser(user string) *dsi.MemStorage {
	m := dsi.NewMemStorage()
	m.AddUser(user)
	return m
}
