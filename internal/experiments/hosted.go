package experiments

import (
	"fmt"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/oauth"
	"gridftp.dev/instant/internal/pam"
	"gridftp.dev/instant/internal/transfer"
)

// hostedWorld wires two GCMU endpoints plus the Globus Online-style
// service on its own host.
type hostedWorld struct {
	nw     *netsim.Network
	svc    *transfer.Service
	epA    *gcmu.Endpoint
	epB    *gcmu.Endpoint
	faultB *dsi.FaultStorage
}

func buildHostedWorld(cfg transfer.Config, withOAuth bool, markerInterval time.Duration) (*hostedWorld, error) {
	nw := netsim.NewNetwork()
	mk := func(name, password string) (*gcmu.Endpoint, *dsi.FaultStorage, error) {
		stack, accounts := newPAMStack(name, "alice", password)
		mem := dsi.NewMemStorage()
		mem.AddUser("alice")
		faulty := dsi.NewFaultStorage(mem)
		ep, err := gcmu.Install(gcmu.Options{
			Name:           name,
			Host:           nw.Host(name),
			Auth:           stack,
			Accounts:       accounts,
			Storage:        faulty,
			WithOAuth:      withOAuth,
			MarkerInterval: markerInterval,
		})
		if err != nil {
			return nil, nil, err
		}
		return ep, faulty, nil
	}
	epA, _, err := mk("siteA", "pwA")
	if err != nil {
		return nil, err
	}
	epB, faultB, err := mk("siteB", "pwB")
	if err != nil {
		return nil, err
	}
	svc := transfer.NewService(nw.Host("globusonline"), cfg)
	for _, ep := range []*gcmu.Endpoint{epA, epB} {
		err := svc.RegisterEndpoint(transfer.Endpoint{
			Name:        ep.Name,
			GridFTPAddr: ep.GridFTPAddr,
			MyProxyAddr: ep.MyProxyAddr,
			OAuthAddr:   ep.OAuthAddr,
			Trust:       ep.Trust,
			CADN:        ep.SigningCA.DN(),
		})
		if err != nil {
			return nil, err
		}
		if ep.OAuth != nil {
			ep.OAuth.RegisterClient(transfer.OAuthClient)
		}
	}
	return &hostedWorld{nw: nw, svc: svc, epA: epA, epB: epB, faultB: faultB}, nil
}

func (w *hostedWorld) close() {
	w.epA.Close()
	w.epB.Close()
}

func (w *hostedWorld) putSrc(path string, content []byte) error {
	f, err := w.epA.Storage.Create("alice", path)
	if err != nil {
		return err
	}
	defer f.Close()
	return dsi.WriteAll(f, content)
}

func (w *hostedWorld) activate() error {
	if err := w.svc.ActivateWithPassword("siteA", "alice", "pwA"); err != nil {
		return err
	}
	return w.svc.ActivateWithPassword("siteB", "alice", "pwB")
}

// E6Config parameterizes the checkpoint-restart experiment.
type E6Config struct {
	FileBytes int
	// FaultFraction is where (as a fraction of the file) the receive-side
	// fault fires.
	FaultFraction float64
	// Link slows the inter-site path so markers accumulate pre-fault.
	Link netsim.LinkParams
}

// DefaultE6 injects the fault at 60% of an 8 MiB file.
func DefaultE6() E6Config {
	return E6Config{
		FileBytes:     8 << 20,
		FaultFraction: 0.6,
		Link:          netsim.LinkParams{Bandwidth: 30e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22},
	}
}

// RunE6Checkpoint reproduces §VI.B's recovery story: "If any failure
// occurs during the transfer, Globus Online will use the short-term
// certificate to reauthenticate with the endpoints on the user's behalf
// and restart the transfer from the last checkpoint." The ablation row
// disables checkpointing, quantifying exactly what restart markers save.
func RunE6Checkpoint(cfg E6Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Fault-injected hosted transfer: checkpoint restart vs full retransfer",
		Paper:   `§VI.B: on failure the service reauthenticates with the short-term certificate and "restart[s] the transfer from the last checkpoint"`,
		Columns: []string{"checkpointing", "attempts", "file", "bytes moved", "overhead"},
	}
	for _, checkpoints := range []bool{true, false} {
		task, err := runE6Once(cfg, checkpoints)
		if err != nil {
			return nil, err
		}
		label := "restart markers"
		if !checkpoints {
			label = "disabled (full retransfer)"
		}
		overhead := float64(task.BytesTransferred)/float64(cfg.FileBytes) - 1
		t.AddRow(label,
			fmt.Sprintf("%d", task.Attempts),
			fmt.Sprintf("%d MiB", cfg.FileBytes>>20),
			fmt.Sprintf("%d", task.BytesTransferred),
			fmt.Sprintf("+%.0f%%", overhead*100))
	}
	t.Note("receive-side fault injected at %.0f%% of the file on the first attempt; retry succeeds", cfg.FaultFraction*100)
	return t, nil
}

func runE6Once(cfg E6Config, checkpoints bool) (*transfer.Task, error) {
	w, err := buildHostedWorld(transfer.Config{
		RetryDelay:           10 * time.Millisecond,
		DisableCheckpointing: !checkpoints,
	}, false, 15*time.Millisecond)
	if err != nil {
		return nil, err
	}
	defer w.close()
	w.nw.SetLink("siteA", "siteB", cfg.Link)
	if err := w.activate(); err != nil {
		return nil, err
	}
	if err := w.putSrc("/ckpt.bin", pattern(cfg.FileBytes)); err != nil {
		return nil, err
	}
	w.faultB.Arm(int64(float64(cfg.FileBytes) * cfg.FaultFraction))
	task, err := w.svc.Submit("alice", "siteA", "/ckpt.bin", "siteB", "/ckpt.bin")
	if err != nil {
		return nil, err
	}
	done, err := w.svc.Wait(task.ID, 2*time.Minute)
	if err != nil {
		return nil, err
	}
	if done.Status != transfer.TaskSucceeded {
		return nil, fmt.Errorf("task %s: %s", done.Status, done.Error)
	}
	return done, nil
}

// RunE10Workflow reproduces Fig 3 end to end and reports each step of the
// GCMU workflow as a checked row: site password -> PAM -> short-lived
// certificate with embedded username -> GridFTP login -> AUTHZ callout ->
// transfer, with no gridmap and no external CA anywhere.
func RunE10Workflow() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "GCMU workflow (Fig 3), executed end to end",
		Paper:   "Fig 3 / §IV: MyProxy Online CA + GridFTP + AUTHZ callout; no explicit DN-to-username mapping (§IV.C)",
		Columns: []string{"step", "observation", "verdict"},
	}
	nw := netsim.NewNetwork()
	stack, accounts := newPAMStack("siteA", "alice", "pw")
	ep, err := gcmu.Install(gcmu.Options{
		Name: "siteA", Host: nw.Host("siteA"), Auth: stack, Accounts: accounts,
	})
	if err != nil {
		return nil, err
	}
	defer ep.Close()
	laptop := nw.Host("laptop")

	check := func(step, observation string, ok bool) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		t.AddRow(step, observation, verdict)
	}

	// Steps 1-3: username/password -> PAM -> short-lived certificate.
	cred, err := ep.Logon(laptop, "alice", pam.PasswordConv("pw"))
	if err != nil {
		check("1-3: myproxy-logon with site password", errString(err), false)
		return t, nil
	}
	check("1-3: myproxy-logon with site password", fmt.Sprintf("issued %q", cred.DN()), true)
	check("   username embedded in DN (§IV.A)", "final CN = "+cred.DN().LastCN(), cred.DN().LastCN() == "alice")
	check("   certificate is short-lived", fmt.Sprintf("expires in %v", time.Until(cred.Cert.NotAfter).Round(time.Minute)),
		time.Until(cred.Cert.NotAfter) < 24*time.Hour)

	// Negative: wrong password issues nothing.
	_, badErr := ep.Logon(laptop, "alice", pam.PasswordConv("wrong"))
	check("   wrong password refused", errString(badErr), badErr != nil)

	// Step 4: authenticate to GridFTP with the certificate.
	client, err := ep.Connect(laptop, "alice", pam.PasswordConv("pw"))
	check("4: GridFTP authentication with issued certificate", "control channel established", err == nil)
	if err != nil {
		return t, nil
	}
	defer client.Close()

	// Step 5: AUTHZ callout maps DN -> local account; transfer executes
	// in alice's sandbox.
	_, err = client.Put("/fig3.bin", dsi.NewBufferFile(pattern(128<<10)))
	check("5: AUTHZ callout + transfer as local user", "128 KiB stored in alice's sandbox", err == nil)
	_, err = ep.Storage.Stat("alice", "/fig3.bin")
	check("   file owned by mapped local account", "visible under user alice", err == nil)
	t.Note("no gridmap file exists on this endpoint; the callout parses the username from the certificate subject")
	return t, nil
}

func errString(err error) string {
	if err == nil {
		return "(no error)"
	}
	s := err.Error()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

// RunE11OAuthAudit reproduces Fig 6 vs Fig 7: with plain activation the
// user's password flows through the third-party service; with OAuth it is
// entered only on the site's own web page.
func RunE11OAuthAudit() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Endpoint activation: password flow with and without OAuth",
		Paper:   "Fig 6 (password passes through Globus Online) vs Fig 7 (OAuth: password entered only at the site)",
		Columns: []string{"activation method", "passwords seen by service", "transfer works", "verdict"},
	}
	// Password activation.
	{
		w, err := buildHostedWorld(transfer.Config{}, false, 0)
		if err != nil {
			return nil, err
		}
		if err := w.activate(); err != nil {
			w.close()
			return nil, err
		}
		ok, err := hostedRoundTrip(w)
		if err != nil {
			w.close()
			return nil, err
		}
		t.AddRow("username/password via service (Fig 6)",
			fmt.Sprintf("%d", w.svc.PasswordsSeen), boolWord(ok), verdict(w.svc.PasswordsSeen == 2 && ok))
		w.close()
	}
	// OAuth activation.
	{
		w, err := buildHostedWorld(transfer.Config{}, true, 0)
		if err != nil {
			return nil, err
		}
		login := func(ep *gcmu.Endpoint, pw string) transfer.UserLoginFunc {
			return func(base, session string) (string, error) {
				userHTTP := oauth.HTTPClient(w.nw.Host("laptop"), ep.Trust)
				return oauth.Login(userHTTP, base, session, "alice", pw)
			}
		}
		if err := w.svc.ActivateWithOAuth("siteA", "alice", login(w.epA, "pwA")); err != nil {
			w.close()
			return nil, err
		}
		if err := w.svc.ActivateWithOAuth("siteB", "alice", login(w.epB, "pwB")); err != nil {
			w.close()
			return nil, err
		}
		ok, err := hostedRoundTrip(w)
		if err != nil {
			w.close()
			return nil, err
		}
		t.AddRow("OAuth at the site's web page (Fig 7)",
			fmt.Sprintf("%d", w.svc.PasswordsSeen), boolWord(ok), verdict(w.svc.PasswordsSeen == 0 && ok))
		w.close()
	}
	t.Note("the service counts every password that crosses its trust boundary; OAuth reduces that to zero while transfers still work")
	return t, nil
}

func hostedRoundTrip(w *hostedWorld) (bool, error) {
	if err := w.putSrc("/audit.bin", pattern(128<<10)); err != nil {
		return false, err
	}
	task, err := w.svc.Submit("alice", "siteA", "/audit.bin", "siteB", "/audit.bin")
	if err != nil {
		return false, err
	}
	done, err := w.svc.Wait(task.ID, time.Minute)
	if err != nil {
		return false, err
	}
	return done.Status == transfer.TaskSucceeded, nil
}

func boolWord(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func verdict(b bool) string {
	if b {
		return "PASS"
	}
	return "MISMATCH"
}

// AblationAutotuneConfig parameterizes the auto-tuning ablation.
type AblationAutotuneConfig struct {
	FileBytes int
	Link      netsim.LinkParams
}

// DefaultAblationAutotune moves a 16 MiB file over a window-limited WAN.
func DefaultAblationAutotune() AblationAutotuneConfig {
	return AblationAutotuneConfig{
		FileBytes: 16 << 20,
		Link:      netsim.LinkParams{Bandwidth: 40e6, RTT: 25 * time.Millisecond, StreamWindow: 256 * 1024},
	}
}

// RunAblationAutotune measures the service's automatic parallelism tuning
// (§VI.A: Globus Online "has the ability to automatically tune GridFTP
// transfer options for high performance") against a fixed single stream.
func RunAblationAutotune(cfg AblationAutotuneConfig) (*Table, error) {
	t := &Table{
		ID:      "ABL-autotune",
		Title:   "Hosted-service auto-tuning vs fixed parallelism",
		Paper:   `§VI.A: "Globus Online also has the ability to automatically tune GridFTP transfer options"`,
		Columns: []string{"tuning", "parallelism chosen", "elapsed", "throughput"},
	}
	for _, autotune := range []bool{true, false} {
		w, err := buildHostedWorld(transfer.Config{DisableAutotune: !autotune}, false, 0)
		if err != nil {
			return nil, err
		}
		w.nw.SetLink("siteA", "siteB", cfg.Link)
		if err := w.activate(); err != nil {
			w.close()
			return nil, err
		}
		if err := w.putSrc("/tune.bin", pattern(cfg.FileBytes)); err != nil {
			w.close()
			return nil, err
		}
		start := time.Now()
		task, err := w.svc.Submit("alice", "siteA", "/tune.bin", "siteB", "/tune.bin")
		if err != nil {
			w.close()
			return nil, err
		}
		done, err := w.svc.Wait(task.ID, 2*time.Minute)
		if err != nil {
			w.close()
			return nil, err
		}
		elapsed := time.Since(start)
		if done.Status != transfer.TaskSucceeded {
			w.close()
			return nil, fmt.Errorf("task: %s (%s)", done.Status, done.Error)
		}
		label := "autotune"
		if !autotune {
			label = "fixed P=1"
		}
		t.AddRow(label, fmt.Sprintf("%d", done.Parallelism),
			elapsed.Round(time.Millisecond).String(),
			mbps(rate(int64(cfg.FileBytes), elapsed)))
		w.close()
	}
	t.Note("file %d MiB over %v RTT, %d KiB windows: auto-tuned parallelism recovers the window-limited loss",
		cfg.FileBytes>>20, cfg.Link.RTT, cfg.Link.StreamWindow/1024)
	return t, nil
}
