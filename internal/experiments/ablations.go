package experiments

import (
	"fmt"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

// AblationBlockSizeConfig parameterizes the MODE E block size sweep.
type AblationBlockSizeConfig struct {
	FileBytes  int
	BlockSizes []int
	Link       netsim.LinkParams
}

// DefaultAblationBlockSize sweeps 8 KiB - 4 MiB blocks.
func DefaultAblationBlockSize() AblationBlockSizeConfig {
	return AblationBlockSizeConfig{
		FileBytes:  16 << 20,
		BlockSizes: []int{8 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20},
		Link:       netsim.LinkParams{Bandwidth: 60e6, RTT: 5 * time.Millisecond, StreamWindow: 1 << 22},
	}
}

// RunAblationBlockSize sweeps the MODE E block size: small blocks pay more
// framing and scheduling overhead but give finer restart granularity —
// the trade DESIGN.md calls out behind the 256 KiB default.
func RunAblationBlockSize(cfg AblationBlockSizeConfig) (*Table, error) {
	t := &Table{
		ID:      "ABL-blocksize",
		Title:   "MODE E block size: framing overhead vs restart granularity",
		Paper:   "design choice behind GridFTP's extended block mode (GFD-R-P.020); default 256 KiB",
		Columns: []string{"block size", "throughput", "relative", "restart granularity"},
	}
	var base float64
	for _, bs := range cfg.BlockSizes {
		r, err := blockSizeRate(cfg, bs)
		if err != nil {
			return nil, fmt.Errorf("block=%d: %w", bs, err)
		}
		if base == 0 {
			base = r
		}
		t.AddRow(formatBytes(bs), mbps(r), fmt.Sprintf("%.2fx", r/base), formatBytes(bs))
	}
	t.Note("file %d MiB, 4 parallel streams; each block is the unit of loss on restart", cfg.FileBytes>>20)
	return t, nil
}

func blockSizeRate(cfg AblationBlockSizeConfig, blockSize int) (float64, error) {
	nw := netsim.NewNetwork()
	nw.SetLink("client", "siteA", cfg.Link)
	s, err := newSite(nw, "siteA", siteOptions{})
	if err != nil {
		return 0, err
	}
	defer s.close()
	if err := s.putFile("/b.bin", pattern(cfg.FileBytes)); err != nil {
		return 0, err
	}
	c, err := s.connect(nw.Host("client"), true)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.SetParallelism(4); err != nil {
		return 0, err
	}
	if err := c.SetBlockSize(blockSize); err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := c.Get("/b.bin", dsi.NewBufferFile(nil)); err != nil {
		return 0, err
	}
	return rate(int64(cfg.FileBytes), time.Since(start)), nil
}

func formatBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%d MiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}

// AblationCacheConfig parameterizes the channel-caching ablation.
type AblationCacheConfig struct {
	Files     int
	FileBytes int
	RTT       time.Duration
}

// DefaultAblationCache moves 24 files of 64 KiB at 15 ms RTT.
func DefaultAblationCache() AblationCacheConfig {
	return AblationCacheConfig{Files: 24, FileBytes: 64 << 10, RTT: 15 * time.Millisecond}
}

// RunAblationChannelCache measures data channel caching on vs off: with
// caching each file pays only its command round trip; without it every
// file re-pays TCP connect plus the DCAU handshake.
func RunAblationChannelCache(cfg AblationCacheConfig) (*Table, error) {
	t := &Table{
		ID:      "ABL-cache",
		Title:   "Data channel caching across transfers",
		Paper:   "the channel-reuse optimization behind GridFTP's small-file performance (§II.A [11,12])",
		Columns: []string{"channel cache", "elapsed", "per-file cost", "speedup"},
	}
	var baseline time.Duration
	for _, cached := range []bool{false, true} {
		d, err := cacheRun(cfg, cached)
		if err != nil {
			return nil, err
		}
		if !cached {
			baseline = d
		}
		label := "disabled"
		if cached {
			label = "enabled"
		}
		t.AddRow(label,
			d.Round(time.Millisecond).String(),
			(d / time.Duration(cfg.Files)).Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", float64(baseline)/float64(d)))
	}
	t.Note("%d files x %d KiB, %v RTT, one session; cache-off re-handshakes DCAU per file",
		cfg.Files, cfg.FileBytes/1024, cfg.RTT)
	return t, nil
}

func cacheRun(cfg AblationCacheConfig, cached bool) (time.Duration, error) {
	nw := netsim.NewNetwork()
	nw.SetDefaultLink(netsim.LinkParams{Bandwidth: 50e6, RTT: cfg.RTT, StreamWindow: 1 << 22})
	s, err := newSite(nw, "siteA", siteOptions{disableCache: !cached})
	if err != nil {
		return 0, err
	}
	defer s.close()
	for i := 0; i < cfg.Files; i++ {
		if err := s.putFile(fmt.Sprintf("/c%03d", i), pattern(cfg.FileBytes)); err != nil {
			return 0, err
		}
	}
	proxy, err := gsi.NewProxy(s.user, gsi.ProxyOptions{})
	if err != nil {
		return 0, err
	}
	c, err := gridftp.DialWithOptions(nw.Host("laptop"), s.addr, proxy, s.trust,
		gridftp.DialOptions{DisableChannelCache: !cached})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.Delegate(time.Hour); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < cfg.Files; i++ {
		if _, err := c.Get(fmt.Sprintf("/c%03d", i), dsi.NewBufferFile(nil)); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// AblationTransportConfig parameterizes the UDT-vs-TCP ablation.
type AblationTransportConfig struct {
	FileBytes int
	Link      netsim.LinkParams
}

// DefaultAblationTransport uses a lossy, high-RTT path where per-stream
// TCP collapses.
func DefaultAblationTransport() AblationTransportConfig {
	return AblationTransportConfig{
		FileBytes: 8 << 20,
		Link: netsim.LinkParams{
			Bandwidth: 30e6, RTT: 40 * time.Millisecond, Loss: 0.001, StreamWindow: 64 << 10,
		},
	}
}

// RunAblationTransport reproduces the motivation for GridFTP's extensible
// I/O layer (§II.A [8,9]): on a lossy high-RTT path, a rate-based
// transport (UDT) reached through XIO beats window-/loss-limited TCP —
// with parallelism as TCP's partial workaround in between.
func RunAblationTransport(cfg AblationTransportConfig) (*Table, error) {
	t := &Table{
		ID:      "ABL-transport",
		Title:   "Data channel transport: TCP vs parallel TCP vs UDT (via XIO)",
		Paper:   `§II.A: the XIO interface "allows GridFTP to target high-performance wide-area communication protocols such as UDT [9]"`,
		Columns: []string{"transport", "streams", "throughput", "vs tcp x1"},
	}
	var base float64
	for _, row := range []struct {
		name    string
		tr      netsim.Transport
		streams int
	}{
		{"tcp", netsim.TransportTCP, 1},
		{"tcp", netsim.TransportTCP, 8},
		{"udt", netsim.TransportUDT, 1},
	} {
		r, err := transportRate(cfg, row.tr, row.streams)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = r
		}
		t.AddRow(row.name, fmt.Sprintf("%d", row.streams), mbps(r), fmt.Sprintf("%.1fx", r/base))
	}
	t.Note("link: %.0f MB/s, %v RTT, %.2f%% loss, %d KiB windows; file %d MiB",
		cfg.Link.Bandwidth/1e6, cfg.Link.RTT, cfg.Link.Loss*100, cfg.Link.StreamWindow/1024, cfg.FileBytes>>20)
	return t, nil
}

func transportRate(cfg AblationTransportConfig, tr netsim.Transport, streams int) (float64, error) {
	nw := netsim.NewNetwork()
	nw.SetLink("client", "siteA", cfg.Link)
	s, err := newSite(nw, "siteA", siteOptions{})
	if err != nil {
		return 0, err
	}
	defer s.close()
	if err := s.putFile("/t.bin", pattern(cfg.FileBytes)); err != nil {
		return 0, err
	}
	c, err := s.connect(nw.Host("client"), true)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.SetTransport(tr); err != nil {
		return 0, err
	}
	if err := c.SetParallelism(streams); err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := c.Get("/t.bin", dsi.NewBufferFile(nil)); err != nil {
		return 0, err
	}
	return rate(int64(cfg.FileBytes), time.Since(start)), nil
}
