package experiments

import (
	"time"

	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/obs/tenant"
)

// Exported single-measurement entry points for the root benchmark harness
// (bench_test.go): each returns the bytes/sec of one transfer under one
// configuration, so testing.B can iterate and report per-config metrics
// without re-running a whole experiment sweep per iteration.

// MeasureWanRate runs one GridFTP download over a shaped WAN link.
func MeasureWanRate(link netsim.LinkParams, fileBytes, parallelism int, stream bool) (float64, error) {
	mode := gridftp.ModeExtended
	if stream {
		mode = gridftp.ModeStream
	}
	return gridftpWanRate(link, fileBytes, parallelism, mode)
}

// MeasureSCPRate runs one SCP download over a shaped WAN link.
func MeasureSCPRate(link netsim.LinkParams, fileBytes int) (float64, error) {
	return scpWanRate(link, fileBytes)
}

// MeasureProtRate runs one download at the given protection level over an
// unshaped (CPU-bound) link.
func MeasureProtRate(fileBytes int, prot gridftp.ProtLevel) (float64, error) {
	return protRate(fileBytes, prot)
}

// MeasureStripedRate runs one striped third-party transfer.
func MeasureStripedRate(cfg E8Config, stripes int) (float64, error) {
	return stripedRate(cfg, stripes)
}

// MeasureDcscScenario runs one E4 matrix cell and reports success.
func MeasureDcscScenario(sameCA bool, dcscWhat string) (bool, error) {
	return runDcscScenario(sameCA, dcscWhat)
}

// MeasureGCMUFirstTransfer times install -> logon -> first transfer.
func MeasureGCMUFirstTransfer() (time.Duration, error) {
	return timeGCMUFirstTransfer()
}

// MeasureCheckpointTask runs one fault-injected hosted transfer and
// returns the bytes moved across all attempts.
func MeasureCheckpointTask(cfg E6Config, checkpoints bool) (int64, error) {
	task, err := runE6Once(cfg, checkpoints)
	if err != nil {
		return 0, err
	}
	return task.BytesTransferred, nil
}

// MeasureCacheRun times a many-small-files session with caching on/off.
func MeasureCacheRun(cfg AblationCacheConfig, cached bool) (time.Duration, error) {
	return cacheRun(cfg, cached)
}

// MeasureBlockSizeRate runs one download at the given MODE E block size.
func MeasureBlockSizeRate(cfg AblationBlockSizeConfig, blockSize int) (float64, error) {
	return blockSizeRate(cfg, blockSize)
}

// MeasureStreamTelemetryRate runs one parallel download with per-stream
// wire telemetry installed on both data-path ends (reg != nil) or absent
// (reg == nil) — the E18 overhead measurement. A zero-bandwidth link
// runs the path CPU-bound; a shaped one measures achieved-throughput
// cost on a WAN.
func MeasureStreamTelemetryRate(link netsim.LinkParams, fileBytes, parallelism int, reg *streamstats.Registry) (float64, error) {
	return streamTelemetryRate(link, fileBytes, parallelism, reg)
}

// MeasureTenantAttributionRate runs one parallel download with per-DN
// tenant accounting installed on the server (acct != nil, publisher
// running) or absent (acct == nil) — the E20 overhead measurement on
// the same path as E2/p16.
func MeasureTenantAttributionRate(link netsim.LinkParams, fileBytes, parallelism int, acct *tenant.Accountant) (float64, error) {
	return tenantAttributionRate(link, fileBytes, parallelism, acct)
}
