package experiments

import (
	"fmt"
	"sync"
	"time"

	"gridftp.dev/instant/internal/baseline"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/netsim"
)

// E7Config parameterizes the lots-of-small-files experiment.
type E7Config struct {
	Files     int
	FileBytes int
	RTT       time.Duration
	// Concurrency is the session count for the concurrent configuration.
	Concurrency int
}

// DefaultE7 uses a 10 ms RTT path and 64 KiB files.
func DefaultE7() E7Config {
	return E7Config{Files: 48, FileBytes: 64 << 10, RTT: 10 * time.Millisecond, Concurrency: 4}
}

// RunE7SmallFiles reproduces the lots-of-small-files optimizations the
// paper credits GridFTP with (§II.A, §VII: pipelining [11] and concurrency
// [12]): when files are small, per-file round trips and channel setup
// dominate, and each optimization removes one of those costs.
func RunE7SmallFiles(cfg E7Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Lots of small files: per-file costs vs pipelining and concurrency",
		Paper:   `§II.A: "optimized to handle ... datasets comprising lots of small files" via pipelining [11] and concurrency [12]`,
		Columns: []string{"configuration", "elapsed", "files/s", "speedup"},
	}
	nw := netsim.NewNetwork()
	nw.SetDefaultLink(netsim.LinkParams{
		Bandwidth: 50e6, RTT: cfg.RTT, StreamWindow: 1 << 22,
	})
	s, err := newSite(nw, "siteA", siteOptions{})
	if err != nil {
		return nil, err
	}
	defer s.close()
	paths := make([]string, cfg.Files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/small/f%04d", i)
	}
	if err := s.storage.Mkdir("alice", "/small"); err != nil {
		return nil, err
	}
	for _, p := range paths {
		if err := s.putFile(p, pattern(cfg.FileBytes)); err != nil {
			return nil, err
		}
	}
	laptop := nw.Host("laptop")

	// (a) Naive: a fresh session per file (scp-style), paying login and
	// channel setup every time.
	naive, err := timeIt(func() error {
		for _, p := range paths {
			c, err := s.connect(laptop, true)
			if err != nil {
				return err
			}
			if _, err := c.Get(p, dsi.NewBufferFile(nil)); err != nil {
				c.Close()
				return err
			}
			c.Close()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("naive: %w", err)
	}

	// (b) One session, sequential commands (channel caching on).
	sequential, err := timeIt(func() error {
		c, err := s.connect(laptop, true)
		if err != nil {
			return err
		}
		defer c.Close()
		for _, p := range paths {
			if _, err := c.Get(p, dsi.NewBufferFile(nil)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("sequential: %w", err)
	}

	// (c) Pipelined commands (GridFTP pipelining).
	pipelined, err := timeIt(func() error {
		c, err := s.connect(laptop, true)
		if err != nil {
			return err
		}
		defer c.Close()
		items := make([]gridftp.GetItem, len(paths))
		for i, p := range paths {
			items[i] = gridftp.GetItem{Path: p, Dst: dsi.NewBufferFile(nil)}
		}
		return c.GetMany(items)
	})
	if err != nil {
		return nil, fmt.Errorf("pipelined: %w", err)
	}

	// (d) Concurrency: C sessions, each pipelining a slice of the files.
	concurrent, err := timeIt(func() error {
		var wg sync.WaitGroup
		errs := make(chan error, cfg.Concurrency)
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c, err := s.connect(laptop, true)
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				var items []gridftp.GetItem
				for i := w; i < len(paths); i += cfg.Concurrency {
					items = append(items, gridftp.GetItem{Path: paths[i], Dst: dsi.NewBufferFile(nil)})
				}
				if err := c.GetMany(items); err != nil {
					errs <- err
				}
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errs:
			return err
		default:
			return nil
		}
	})
	if err != nil {
		return nil, fmt.Errorf("concurrent: %w", err)
	}

	rows := []struct {
		name string
		d    time.Duration
	}{
		{"fresh session per file (scp-style)", naive},
		{"one session, sequential (channel caching)", sequential},
		{"one session, pipelined commands", pipelined},
		{fmt.Sprintf("%d concurrent pipelined sessions", cfg.Concurrency), concurrent},
	}
	for _, r := range rows {
		t.AddRow(r.name,
			r.d.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(cfg.Files)/r.d.Seconds()),
			fmt.Sprintf("%.1fx", float64(naive)/float64(r.d)))
	}
	t.Note("%d files x %d KiB over a %v RTT path", cfg.Files, cfg.FileBytes/1024, cfg.RTT)
	return t, nil
}

func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// E8Config parameterizes the striping experiment.
type E8Config struct {
	FileBytes int
	Stripes   []int
	// PerLink is the bandwidth of each host pair (one NIC's worth).
	PerLink netsim.LinkParams
}

// DefaultE8 gives each node link 8 MB/s so aggregate scales with stripes.
func DefaultE8() E8Config {
	return E8Config{
		FileBytes: 8 << 20,
		Stripes:   []int{1, 2, 4, 8},
		PerLink: netsim.LinkParams{
			Bandwidth: 8e6, RTT: 4 * time.Millisecond, StreamWindow: 1 << 22,
		},
	}
}

// RunE8Striping reproduces the striped-server scaling behaviour (§II.B,
// [4]): a striped transfer crosses one link per DTP-node pair, so
// aggregate throughput grows with stripe count until another bottleneck
// binds.
func RunE8Striping(cfg E8Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Striped server scaling (SPAS/SPOR across DTP nodes)",
		Paper:   `§II.B: "a striped server might use one server PI on the head node ... and a DTP on all other nodes"; [4] The Globus Striped GridFTP Framework`,
		Columns: []string{"stripes", "throughput", "scaling vs 1 stripe"},
	}
	var base float64
	for _, stripes := range cfg.Stripes {
		r, err := stripedRate(cfg, stripes)
		if err != nil {
			return nil, fmt.Errorf("stripes=%d: %w", stripes, err)
		}
		if stripes == cfg.Stripes[0] {
			base = r
		}
		t.AddRow(fmt.Sprintf("%d", stripes), mbps(r), fmt.Sprintf("%.2fx", r/base))
	}
	t.Note("every host pair carries %.0f MB/s (one data-mover NIC); file %d MiB; parallelism = stripes",
		cfg.PerLink.Bandwidth/1e6, cfg.FileBytes>>20)
	return t, nil
}

func stripedRate(cfg E8Config, stripes int) (float64, error) {
	nw := netsim.NewNetwork()
	nw.SetDefaultLink(cfg.PerLink)
	src, err := newSite(nw, "clusterA", siteOptions{stripes: stripes})
	if err != nil {
		return 0, err
	}
	defer src.close()
	dst, err := newSite(nw, "clusterB", siteOptions{stripes: stripes})
	if err != nil {
		return 0, err
	}
	defer dst.close()
	// Shared trust for the data channel (striping is orthogonal to DCSC).
	src.trust.AddCA(dst.ca.Certificate())
	dst.trust.AddCA(src.ca.Certificate())
	dst.gridmap.AddEntry(src.user.DN(), "alice")

	laptop := nw.Host("laptop")
	cSrc, err := src.connect(laptop, true)
	if err != nil {
		return 0, err
	}
	defer cSrc.Close()
	proxy := src.user
	cDst, err := gridftp.Dial(laptop, dst.addr, proxy, dst.trust)
	if err != nil {
		return 0, err
	}
	defer cDst.Close()
	if err := cDst.Delegate(time.Hour); err != nil {
		return 0, err
	}
	if err := cSrc.SetParallelism(stripes); err != nil {
		return 0, err
	}
	if err := cDst.SetParallelism(stripes); err != nil {
		return 0, err
	}
	if err := src.putFile("/s.bin", pattern(cfg.FileBytes)); err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := gridftp.ThirdParty(cSrc, "/s.bin", cDst, "/s.bin", gridftp.ThirdPartyOptions{Striped: stripes > 1}); err != nil {
		return 0, err
	}
	return rate(int64(cfg.FileBytes), time.Since(start)), nil
}

// E9Config parameterizes the third-party-vs-relay experiment.
type E9Config struct {
	FileBytes int
	// ServerLink is the fast server-to-server path.
	ServerLink netsim.LinkParams
	// ClientLink is the slow client uplink.
	ClientLink netsim.LinkParams
}

// DefaultE9 gives servers 40 MB/s between them and the client 2 MB/s.
func DefaultE9() E9Config {
	return E9Config{
		FileBytes:  4 << 20,
		ServerLink: netsim.LinkParams{Bandwidth: 40e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22},
		ClientLink: netsim.LinkParams{Bandwidth: 2e6, RTT: 20 * time.Millisecond, StreamWindow: 1 << 22},
	}
}

// RunE9ThirdParty reproduces §VII's client-routing critique: "SCP routes
// data through the client for transfers between two remote hosts; but
// often, the two remote hosts are connected by a high-speed link whereas
// the client and remote hosts are connected by low-bandwidth links."
func RunE9ThirdParty(cfg E9Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Third-party transfer vs client-routed copy (slow client uplink)",
		Paper:   "§VII: SCP routes data through the client; GridFTP third-party transfers flow directly between the servers",
		Columns: []string{"method", "data path", "elapsed", "effective rate"},
	}
	nw := netsim.NewNetwork()
	nw.SetLink("siteA", "siteB", cfg.ServerLink)
	nw.SetLink("laptop", "siteA", cfg.ClientLink)
	nw.SetLink("laptop", "siteB", cfg.ClientLink)

	// GridFTP third-party.
	src, err := newSite(nw, "siteA", siteOptions{})
	if err != nil {
		return nil, err
	}
	defer src.close()
	dst, err := newSite(nw, "siteB", siteOptions{})
	if err != nil {
		return nil, err
	}
	defer dst.close()
	if err := src.putFile("/f.bin", pattern(cfg.FileBytes)); err != nil {
		return nil, err
	}
	laptop := nw.Host("laptop")
	cSrc, err := src.connect(laptop, true)
	if err != nil {
		return nil, err
	}
	defer cSrc.Close()
	cDst, err := dst.connect(laptop, true)
	if err != nil {
		return nil, err
	}
	defer cDst.Close()
	start := time.Now()
	if _, err := gridftp.ThirdParty(cSrc, "/f.bin", cDst, "/f.bin", gridftp.ThirdPartyOptions{
		DCSC: src.user, DCSCTarget: gridftp.DCSCDest,
	}); err != nil {
		return nil, fmt.Errorf("third party: %w", err)
	}
	gfDur := time.Since(start)
	t.AddRow("gridftp third-party", "siteA -> siteB (direct)",
		gfDur.Round(time.Millisecond).String(), mbps(rate(int64(cfg.FileBytes), gfDur)))

	// SCP relay through the client.
	srvA, addrA, stA, err := newSCPServer(nw, "scpA")
	if err != nil {
		return nil, err
	}
	defer srvA.Close()
	srvB, addrB, _, err := newSCPServer(nw, "scpB")
	if err != nil {
		return nil, err
	}
	defer srvB.Close()
	nw.SetLink("scpA", "scpB", cfg.ServerLink)
	nw.SetLink("laptop", "scpA", cfg.ClientLink)
	nw.SetLink("laptop", "scpB", cfg.ClientLink)
	f, err := stA.Create("alice", "/f.bin")
	if err != nil {
		return nil, err
	}
	dsi.WriteAll(f, pattern(cfg.FileBytes))
	f.Close()
	start = time.Now()
	if _, err := baseline.SCPRelay(laptop, addrA, "alice", "pw", "/f.bin", addrB, "alice", "pw", "/f.bin"); err != nil {
		return nil, fmt.Errorf("scp relay: %w", err)
	}
	scpDur := time.Since(start)
	t.AddRow("scp (client relay)", "siteA -> laptop -> siteB",
		scpDur.Round(time.Millisecond).String(), mbps(rate(int64(cfg.FileBytes), scpDur)))
	t.Note("servers share a %.0f MB/s link; the client uplink is %.0f MB/s; file %d MiB",
		cfg.ServerLink.Bandwidth/1e6, cfg.ClientLink.Bandwidth/1e6, cfg.FileBytes>>20)
	t.Note("gridftp advantage: %.1fx", float64(scpDur)/float64(gfDur))
	return t, nil
}
