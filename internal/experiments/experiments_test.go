package experiments

import (
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/transfer"
)

// checkTable validates a table has rows and no MISMATCH/FAIL verdicts.
func checkTable(t *testing.T, table *Table, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) == 0 {
		t.Fatalf("%s: no rows", table.ID)
	}
	formatted := table.Format()
	if strings.Contains(formatted, "MISMATCH") || strings.Contains(formatted, "  FAIL") {
		t.Fatalf("%s reported a mismatch:\n%s", table.ID, formatted)
	}
	t.Logf("\n%s", formatted)
}

func TestE1UsageSmall(t *testing.T) {
	table, err := RunE1Usage(E1Config{Servers: 50, Days: 3, Seed: 7})
	checkTable(t, table, err)
	if len(table.Rows) != 3 {
		t.Fatalf("want 3 day rows, got %d", len(table.Rows))
	}
}

func TestE2ParallelStreamsSmall(t *testing.T) {
	table, err := RunE2ParallelStreams(E2Config{
		FileBytes: 256 << 10,
		Link: netsim.LinkParams{
			Bandwidth: 40e6, RTT: 20 * time.Millisecond, StreamWindow: 64 * 1024,
		},
		Parallelism: []int{1, 4},
		Loss:        []float64{0},
	})
	checkTable(t, table, err)
	// Shape check: gridftp P=4 must beat scp.
	var scpRate, p4Rate string
	for _, row := range table.Rows {
		if row[1] == "scp" {
			scpRate = row[3]
		}
		if row[1] == "gridftp" && row[2] == "4" {
			p4Rate = row[4]
		}
	}
	if scpRate == "" || p4Rate == "" {
		t.Fatalf("rows missing: %v", table.Rows)
	}
	if strings.HasPrefix(p4Rate, "0.") || strings.HasPrefix(p4Rate, "1.0x") {
		t.Fatalf("P=4 speedup vs scp is %s; parallel streams should win", p4Rate)
	}
}

func TestE3DcauOverheadSmall(t *testing.T) {
	table, err := RunE3DcauOverhead(E3Config{FileBytes: 8 << 20})
	checkTable(t, table, err)
	if len(table.Rows) != 3 {
		t.Fatalf("want 3 protection rows: %v", table.Rows)
	}
}

func TestE4DcscMatrix(t *testing.T) {
	table, err := RunE4DcscMatrix()
	checkTable(t, table, err)
	if len(table.Rows) != 7 {
		t.Fatalf("want 7 scenario rows, got %d", len(table.Rows))
	}
}

func TestE5Setup(t *testing.T) {
	table, err := RunE5Setup()
	checkTable(t, table, err)
}

func TestE6CheckpointSmall(t *testing.T) {
	table, err := RunE6Checkpoint(E6Config{
		FileBytes:     2 << 20,
		FaultFraction: 0.5,
		Link:          netsim.LinkParams{Bandwidth: 20e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22},
	})
	checkTable(t, table, err)
	// Shape: checkpointed overhead must be lower than full retransfer.
	if len(table.Rows) != 2 {
		t.Fatalf("rows: %v", table.Rows)
	}
}

func TestE7SmallFilesSmall(t *testing.T) {
	table, err := RunE7SmallFiles(E7Config{Files: 10, FileBytes: 16 << 10, RTT: 5 * time.Millisecond, Concurrency: 2})
	checkTable(t, table, err)
}

func TestE8StripingSmall(t *testing.T) {
	table, err := RunE8Striping(E8Config{
		FileBytes: 2 << 20,
		Stripes:   []int{1, 2},
		PerLink:   netsim.LinkParams{Bandwidth: 8e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22},
	})
	checkTable(t, table, err)
}

func TestE9ThirdPartySmall(t *testing.T) {
	table, err := RunE9ThirdParty(E9Config{
		FileBytes:  1 << 20,
		ServerLink: netsim.LinkParams{Bandwidth: 40e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22},
		ClientLink: netsim.LinkParams{Bandwidth: 2e6, RTT: 10 * time.Millisecond, StreamWindow: 1 << 22},
	})
	checkTable(t, table, err)
}

func TestE10Workflow(t *testing.T) {
	table, err := RunE10Workflow()
	checkTable(t, table, err)
}

func TestE11OAuthAudit(t *testing.T) {
	table, err := RunE11OAuthAudit()
	checkTable(t, table, err)
}

func TestE12ControlSecurity(t *testing.T) {
	table, err := RunE12ControlSecurity()
	checkTable(t, table, err)
	if len(table.Rows) != 8 {
		t.Fatalf("want 8 invariant rows, got %d", len(table.Rows))
	}
}

func TestAblationBlockSizeSmall(t *testing.T) {
	table, err := RunAblationBlockSize(AblationBlockSizeConfig{
		FileBytes:  2 << 20,
		BlockSizes: []int{16 << 10, 256 << 10},
		Link:       netsim.LinkParams{Bandwidth: 60e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22},
	})
	checkTable(t, table, err)
}

func TestAblationCacheSmall(t *testing.T) {
	table, err := RunAblationChannelCache(AblationCacheConfig{Files: 6, FileBytes: 32 << 10, RTT: 10 * time.Millisecond})
	checkTable(t, table, err)
}

func TestAblationAutotuneSmall(t *testing.T) {
	table, err := RunAblationAutotune(AblationAutotuneConfig{
		FileBytes: 4 << 20,
		Link:      netsim.LinkParams{Bandwidth: 40e6, RTT: 10 * time.Millisecond, StreamWindow: 128 << 10},
	})
	checkTable(t, table, err)
	_ = transfer.TaskSucceeded // keep import for future assertions
}

func TestTableFormat(t *testing.T) {
	table := &Table{ID: "X", Title: "T", Paper: "P", Columns: []string{"a", "bb"}}
	table.AddRow("1", "2")
	table.Note("n=%d", 1)
	out := table.Format()
	for _, want := range []string{"== X: T", "a", "bb", "note: n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAblationTransportSmall(t *testing.T) {
	table, err := RunAblationTransport(AblationTransportConfig{
		FileBytes: 1 << 20,
		Link: netsim.LinkParams{
			Bandwidth: 30e6, RTT: 20 * time.Millisecond, Loss: 0.001, StreamWindow: 64 << 10,
		},
	})
	checkTable(t, table, err)
	if len(table.Rows) != 3 {
		t.Fatalf("rows %v", table.Rows)
	}
}
