package experiments

import (
	"fmt"
	"runtime"
	"time"

	"gridftp.dev/instant/internal/baseline"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/obs/tenant"
)

// E2Config parameterizes the parallel-streams experiment.
type E2Config struct {
	// FileBytes is the transfer size.
	FileBytes int
	// Link models the WAN: untuned 64 KiB windows over a long fat pipe.
	Link netsim.LinkParams
	// Parallelism values to sweep.
	Parallelism []int
	// Loss values to sweep (each gets its own sub-series).
	Loss []float64
}

// DefaultE2 models a typical 2012-era research WAN: 50 ms RTT, untuned
// 64 KiB TCP windows, and a 40 MB/s (scaled) bottleneck, with and without
// residual loss.
func DefaultE2() E2Config {
	return E2Config{
		FileBytes: 8 << 20,
		Link: netsim.LinkParams{
			Bandwidth:    40e6,
			RTT:          50 * time.Millisecond,
			StreamWindow: 64 * 1024,
		},
		Parallelism: []int{1, 2, 4, 8, 16, 32},
		Loss:        []float64{0, 0.001},
	}
}

// gridftpWanRate transfers one file site-to-client over the given link and
// returns bytes/sec.
func gridftpWanRate(link netsim.LinkParams, fileBytes, parallelism int, mode gridftp.TransferMode) (float64, error) {
	nw := netsim.NewNetwork()
	nw.SetLink("client", "siteA", link)
	s, err := newSite(nw, "siteA", siteOptions{})
	if err != nil {
		return 0, err
	}
	defer s.close()
	payload := pattern(fileBytes)
	if err := s.putFile("/wan.bin", payload); err != nil {
		return 0, err
	}
	c, err := s.connect(nw.Host("client"), true)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if mode == gridftp.ModeStream {
		if err := c.SetMode(gridftp.ModeStream); err != nil {
			return 0, err
		}
	} else {
		if err := c.SetParallelism(parallelism); err != nil {
			return 0, err
		}
		// Keep several blocks in flight per stream so parallelism has
		// work to distribute even for modest file sizes.
		block := fileBytes / (4 * parallelism)
		if block > gridftp.DefaultBlockSize {
			block = gridftp.DefaultBlockSize
		}
		if block < 16<<10 {
			block = 16 << 10
		}
		if err := c.SetBlockSize(block); err != nil {
			return 0, err
		}
	}
	dst := dsi.NewBufferFile(nil)
	start := time.Now()
	if _, err := c.Get("/wan.bin", dst); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if got, _ := dst.Size(); got != int64(fileBytes) {
		return 0, fmt.Errorf("short transfer: %d of %d", got, fileBytes)
	}
	return rate(int64(fileBytes), elapsed), nil
}

// scpWanRate transfers one file over the SCP baseline and returns
// bytes/sec.
func scpWanRate(link netsim.LinkParams, fileBytes int) (float64, error) {
	nw := netsim.NewNetwork()
	nw.SetLink("client", "server", link)
	srv, addr, storage, err := newSCPServer(nw, "server")
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	f, err := storage.Create("alice", "/wan.bin")
	if err != nil {
		return 0, err
	}
	if err := dsi.WriteAll(f, pattern(fileBytes)); err != nil {
		return 0, err
	}
	f.Close()
	dst := dsi.NewBufferFile(nil)
	start := time.Now()
	n, err := baseline.SCPGet(nw.Host("client"), addr, "alice", "pw", "/wan.bin", dst)
	if err != nil {
		return 0, err
	}
	return rate(n, time.Since(start)), nil
}

func newSCPServer(nw *netsim.Network, hostName string) (*baseline.SCPServer, string, *dsi.MemStorage, error) {
	ca, err := gsi.NewCA("/O=x/CN=CA", time.Hour)
	if err != nil {
		return nil, "", nil, err
	}
	hostCred, err := ca.Issue(gsi.IssueOptions{Subject: gsi.DN("/O=x/CN=" + hostName), Lifetime: time.Hour, Host: true})
	if err != nil {
		return nil, "", nil, err
	}
	stack, _ := newPAMStack(hostName, "alice", "pw")
	storage := dsi.NewMemStorage()
	storage.AddUser("alice")
	srv := &baseline.SCPServer{HostCred: hostCred, Auth: stack, Storage: storage}
	addr, err := srv.ListenAndServe(nw.Host(hostName), baseline.SCPPort)
	if err != nil {
		return nil, "", nil, err
	}
	return srv, addr.String(), storage, nil
}

// RunE2ParallelStreams reproduces the paper's headline performance claim:
// GridFTP's parallel streams deliver "multiple orders of magnitude higher
// throughput" than SCP on wide-area links whose per-stream TCP throughput
// is window- or loss-limited (§I, §VII).
func RunE2ParallelStreams(cfg E2Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Parallel streams vs SCP/FTP on a wide-area link",
		Paper:   `§I: "GridFTP has been shown to deliver multiple orders of magnitude higher throughput than ... SCP"`,
		Columns: []string{"loss", "tool", "streams", "throughput", "speedup vs scp"},
	}
	for _, loss := range cfg.Loss {
		link := cfg.Link
		link.Loss = loss
		lossLabel := fmt.Sprintf("%.2f%%", loss*100)

		scpRate, err := scpWanRate(link, cfg.FileBytes)
		if err != nil {
			return nil, fmt.Errorf("scp: %w", err)
		}
		t.AddRow(lossLabel, "scp", "1", mbps(scpRate), "1.0x")

		ftpRate, err := gridftpWanRate(link, cfg.FileBytes, 1, gridftp.ModeStream)
		if err != nil {
			return nil, fmt.Errorf("ftp stream: %w", err)
		}
		t.AddRow(lossLabel, "ftp (stream)", "1", mbps(ftpRate), speedup(ftpRate, scpRate))

		for _, p := range cfg.Parallelism {
			r, err := gridftpWanRate(link, cfg.FileBytes, p, gridftp.ModeExtended)
			if err != nil {
				return nil, fmt.Errorf("gridftp p=%d: %w", p, err)
			}
			t.AddRow(lossLabel, "gridftp", fmt.Sprintf("%d", p), mbps(r), speedup(r, scpRate))
		}
	}
	t.Note("link: %.0f MB/s bottleneck, %v RTT, %d KiB per-stream window (untuned host); file %d MiB",
		cfg.Link.Bandwidth/1e6, cfg.Link.RTT, cfg.Link.StreamWindow/1024, cfg.FileBytes>>20)
	t.Note("single-stream TCP is window-limited to window/RTT; GridFTP aggregates N such streams (§II.A)")
	return t, nil
}

func speedup(r, base float64) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", r/base)
}

// E3Config parameterizes the data-channel protection experiment.
type E3Config struct {
	// FileBytes transferred per protection level.
	FileBytes int
}

// DefaultE3 uses a large enough payload that cipher cost dominates.
func DefaultE3() E3Config {
	return E3Config{FileBytes: 64 << 20}
}

// RunE3DcauOverhead reproduces §II.C's cost claim for data channel
// protection: "Both cryptographic confidentiality and integrity protection
// are supported on the data channel but are not enabled by default because
// of cost. (An order of magnitude slowdown is not unusual on high-speed
// links.)" The link is unshaped, so the CPU cost of each protection level
// is the bottleneck — exactly the regime of a high-speed LAN/WAN path.
// (Absolute ratios differ on modern AES-NI hardware; see EXPERIMENTS.md.)
func RunE3DcauOverhead(cfg E3Config) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Data channel protection cost (PROT C / S / P) on a fast link",
		Paper:   `§II.C: integrity/confidentiality "not enabled by default because of cost ... an order of magnitude slowdown is not unusual"`,
		Columns: []string{"protection", "meaning", "throughput", "relative"},
	}
	var clearRate float64
	for _, row := range []struct {
		prot  gridftp.ProtLevel
		label string
		desc  string
	}{
		{gridftp.ProtClear, "PROT C", "authenticate, then cleartext"},
		{gridftp.ProtSafe, "PROT S", "integrity (HMAC-SHA256 framing)"},
		{gridftp.ProtPrivate, "PROT P", "private (TLS encryption)"},
	} {
		r, err := protRate(cfg.FileBytes, row.prot)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", row.label, err)
		}
		if row.prot == gridftp.ProtClear {
			clearRate = r
		}
		rel := "1.00x"
		if clearRate > 0 && row.prot != gridftp.ProtClear {
			rel = fmt.Sprintf("%.2fx", r/clearRate)
		}
		t.AddRow(row.label, row.desc, mbps(r), rel)
	}
	t.Note("unshaped (CPU-bound) link; DCAU authentication performed in all three rows, only bulk protection differs")
	return t, nil
}

// protRate measures CPU-bound throughput at one protection level. The
// measurement is best-of-three with a GC between runs: a single shot is
// dominated by allocator/GC state left over from whatever ran before,
// which is noise, not protocol cost.
func protRate(fileBytes int, prot gridftp.ProtLevel) (float64, error) {
	nw := netsim.NewNetwork()
	s, err := newSite(nw, "siteA", siteOptions{})
	if err != nil {
		return 0, err
	}
	defer s.close()
	if err := s.putFile("/prot.bin", pattern(fileBytes)); err != nil {
		return 0, err
	}
	c, err := s.connect(nw.Host("client"), true)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.SetParallelism(4); err != nil {
		return 0, err
	}
	if err := c.SetProt(prot); err != nil {
		return 0, err
	}
	var best float64
	for i := 0; i < 3; i++ {
		runtime.GC()
		dst := dsi.NewBufferFile(nil)
		start := time.Now()
		if _, err := c.Get("/prot.bin", dst); err != nil {
			return 0, err
		}
		if r := rate(int64(fileBytes), time.Since(start)); r > best {
			best = r
		}
	}
	return best, nil
}

// tenantAttributionRate measures parallel-download throughput with the
// per-DN accounting plane either installed on the server (every command
// and every transferred byte attributed to the session DN, publisher
// live) or absent — the E20 overhead experiment. The accounting hot
// path is one mutex-guarded sketch touch per command and per transfer
// completion, so the expected cost on a 16-stream MODE E download is
// noise; this measurement is the proof. Best-of-three with a GC between
// runs, like protRate.
func tenantAttributionRate(link netsim.LinkParams, fileBytes, parallelism int, acct *tenant.Accountant) (float64, error) {
	nw := netsim.NewNetwork()
	if link.Bandwidth > 0 {
		nw.SetLink("client", "siteA", link)
	}
	s, err := newSite(nw, "siteA", siteOptions{tenants: acct})
	if err != nil {
		return 0, err
	}
	defer s.close()
	if acct != nil {
		stop := acct.Start()
		defer stop()
	}
	if err := s.putFile("/tenant.bin", pattern(fileBytes)); err != nil {
		return 0, err
	}
	c, err := s.connect(nw.Host("client"), true)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.SetParallelism(parallelism); err != nil {
		return 0, err
	}
	var best float64
	for i := 0; i < 3; i++ {
		runtime.GC()
		dst := dsi.NewBufferFile(nil)
		start := time.Now()
		if _, err := c.Get("/tenant.bin", dst); err != nil {
			return 0, err
		}
		if r := rate(int64(fileBytes), time.Since(start)); r > best {
			best = r
		}
	}
	return best, nil
}

// streamTelemetryRate measures parallel-download throughput with
// per-stream wire telemetry either fully installed (server data path
// instrumented, client data path instrumented, poller live) or absent —
// the E18 overhead experiment. A zero-bandwidth link leaves the path
// unshaped (CPU-bound); a shaped link measures the deployment question —
// whether the X-ray costs achieved WAN throughput. Best-of-three with a
// GC between runs, like protRate.
func streamTelemetryRate(link netsim.LinkParams, fileBytes, parallelism int, reg *streamstats.Registry) (float64, error) {
	nw := netsim.NewNetwork()
	if link.Bandwidth > 0 {
		nw.SetLink("client", "siteA", link)
	}
	s, err := newSite(nw, "siteA", siteOptions{streams: reg})
	if err != nil {
		return 0, err
	}
	defer s.close()
	if err := s.putFile("/xray.bin", pattern(fileBytes)); err != nil {
		return 0, err
	}
	proxy, err := gsi.NewProxy(s.user, gsi.ProxyOptions{})
	if err != nil {
		return 0, err
	}
	c, err := gridftp.DialWithOptions(nw.Host("client"), s.addr, proxy, s.trust,
		gridftp.DialOptions{Streams: reg})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.Delegate(2 * time.Hour); err != nil {
		return 0, err
	}
	if err := c.SetParallelism(parallelism); err != nil {
		return 0, err
	}
	var best float64
	for i := 0; i < 3; i++ {
		runtime.GC()
		dst := dsi.NewBufferFile(nil)
		start := time.Now()
		if _, err := c.Get("/xray.bin", dst); err != nil {
			return 0, err
		}
		if r := rate(int64(fileBytes), time.Since(start)); r > best {
			best = r
		}
	}
	return best, nil
}
