package experiments

import (
	"runtime"
	"testing"
	"time"
)

func TestGoroutineLeakAfterE2(t *testing.T) {
	before := runtime.NumGoroutine()
	_, err := RunE2ParallelStreams(E2Config{
		FileBytes:   256 << 10,
		Link:        DefaultE2().Link,
		Parallelism: []int{1, 4, 16},
		Loss:        []float64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	after := runtime.NumGoroutine()
	t.Logf("goroutines before=%d after=%d", before, after)
	if after > before+20 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("leaked %d goroutines:\n%s", after-before, truncate(string(buf[:n]), 4000))
	}
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
