package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gridftp.dev/instant/internal/usagestats"
)

// E1Config parameterizes the fleet usage experiment.
type E1Config struct {
	// Servers is the reporting fleet size (the paper cites >5,000 servers
	// deployed; a subset reports).
	Servers int
	// Days of simulated reporting.
	Days int
	// Seed makes the synthetic fleet deterministic.
	Seed int64
}

// DefaultE1 mirrors the paper's Fig 1 scale.
func DefaultE1() E1Config {
	return E1Config{Servers: 5000, Days: 14, Seed: 42}
}

// RunE1Usage reproduces Figure 1: the per-day transfers/bytes series that
// the opt-in usage-stats stream aggregates across the server fleet. The
// paper reports "an average of more than 10 million transfers totaling
// approximately half a petabyte of data every day"; the synthetic fleet is
// calibrated to that scale with a heavy-tailed (Pareto) per-server load,
// matching the reality that a few big facilities dominate.
func RunE1Usage(cfg E1Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := usagestats.NewCollector()
	start := time.Date(2012, 2, 1, 0, 0, 0, 0, time.UTC)

	// Pareto(alpha=1.16, the 80/20 shape) per-server weight, normalized so
	// the fleet means hit the paper's figures.
	weights := make([]float64, cfg.Servers)
	var total float64
	for i := range weights {
		u := rng.Float64()
		w := math.Pow(1-u, -1/1.16) // Pareto with xm=1
		if w > 1e4 {
			w = 1e4 // clamp the tail so one server is not the whole grid
		}
		weights[i] = w
		total += w
	}
	const fleetTransfersPerDay = 10_000_000
	const fleetBytesPerDay = 500e12 // half a petabyte

	for day := 0; day < cfg.Days; day++ {
		when := start.AddDate(0, 0, day)
		// Day-to-day variation of +/-20%.
		dayFactor := 0.8 + 0.4*rng.Float64()
		for i, w := range weights {
			share := w / total
			transfers := int64(share * fleetTransfersPerDay * dayFactor)
			bytes := int64(share * fleetBytesPerDay * dayFactor)
			if transfers == 0 && rng.Float64() < share*fleetTransfersPerDay {
				transfers = 1
			}
			if transfers > 0 {
				c.ReportBatch(fmt.Sprintf("server-%04d", i), when, transfers, bytes)
			}
		}
	}

	t := &Table{
		ID:      "E1",
		Title:   "Fleet usage reporting (transfers/day, bytes/day)",
		Paper:   `Fig 1 / §II.A: ">10 million transfers totaling ~half a petabyte every day" across >5,000 servers`,
		Columns: []string{"day", "transfers", "TB moved", "reporting endpoints"},
	}
	for _, ds := range c.Days() {
		t.AddRow(ds.Day,
			fmt.Sprintf("%d", ds.Transfers),
			fmt.Sprintf("%.1f", float64(ds.Bytes)/1e12),
			fmt.Sprintf("%d", len(ds.Endpoints)))
	}
	transfers, bytes := c.Totals()
	t.Note("fleet totals over %d days: %.1fM transfers, %.2f PB; busiest endpoints: %v",
		cfg.Days, float64(transfers)/1e6, float64(bytes)/1e15, c.TopEndpoints(3))
	t.Note("per-server load is Pareto-distributed (a few DOE/NSF facilities dominate), day factor ±20%%")
	return t, nil
}
