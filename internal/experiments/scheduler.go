package experiments

import (
	"fmt"
	"time"

	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/transfer"
)

// E14Config parameterizes the transfer-scheduler experiment: a directory
// of many small files over a high-RTT path, the workload class where
// control-channel latency dominates a sequential task.
type E14Config struct {
	Files     int
	FileBytes int
	// Link shapes every hop of the hosted triangle (service to both
	// sites plus the inter-site path).
	Link netsim.LinkParams
}

// DefaultE14 moves 50 x 64 KiB files over 20 ms RTT links.
func DefaultE14() E14Config {
	return E14Config{
		Files:     50,
		FileBytes: 64 << 10,
		Link:      netsim.LinkParams{Bandwidth: 40e6, RTT: 20 * time.Millisecond, StreamWindow: 1 << 20},
	}
}

// runE14Once runs one directory task at the given TaskConcurrency
// (0 = auto-sized) and returns the finished task and its wall-clock time.
func runE14Once(cfg E14Config, concurrency int) (*transfer.Task, time.Duration, error) {
	w, err := buildHostedWorld(transfer.Config{TaskConcurrency: concurrency}, false, 0)
	if err != nil {
		return nil, 0, err
	}
	defer w.close()
	w.nw.SetLink("globusonline", "siteA", cfg.Link)
	w.nw.SetLink("globusonline", "siteB", cfg.Link)
	w.nw.SetLink("siteA", "siteB", cfg.Link)
	if err := w.activate(); err != nil {
		return nil, 0, err
	}
	if err := w.epA.Storage.Mkdir("alice", "/many"); err != nil {
		return nil, 0, err
	}
	for i := 0; i < cfg.Files; i++ {
		if err := w.putSrc(fmt.Sprintf("/many/f%03d.bin", i), pattern(cfg.FileBytes)); err != nil {
			return nil, 0, err
		}
	}
	start := time.Now()
	task, err := w.svc.Submit("alice", "siteA", "/many", "siteB", "/many")
	if err != nil {
		return nil, 0, err
	}
	done, err := w.svc.Wait(task.ID, 5*time.Minute)
	if err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	if done.Status != transfer.TaskSucceeded {
		return nil, 0, fmt.Errorf("task %s: %s", done.Status, done.Error)
	}
	return done, elapsed, nil
}

// RunE14Scheduler measures the concurrent transfer scheduler against the
// sequential path (§VI.A auto-tuning, extended to task orchestration):
// the same many-small-files directory task at TaskConcurrency 1 vs the
// auto-sized worker fan-out.
func RunE14Scheduler(cfg E14Config) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Concurrent transfer scheduler: many small files over a high-RTT path",
		Paper:   `§VI.A: the hosted service "automatically tune[s] GridFTP transfer options for high performance" — here the task-level fan-out across control-session pairs`,
		Columns: []string{"scheduling", "workers", "files", "elapsed", "throughput", "speedup"},
	}
	var seqElapsed time.Duration
	for _, concurrency := range []int{1, 0} {
		done, elapsed, err := runE14Once(cfg, concurrency)
		if err != nil {
			return nil, err
		}
		label := "sequential (K=1)"
		speedup := "1.0x"
		if concurrency == 0 {
			label = "scheduled (auto K)"
			speedup = fmt.Sprintf("%.1fx", float64(seqElapsed)/float64(elapsed))
		} else {
			seqElapsed = elapsed
		}
		total := int64(cfg.Files * cfg.FileBytes)
		t.AddRow(label, fmt.Sprintf("%d", done.Workers),
			fmt.Sprintf("%d x %d KiB", cfg.Files, cfg.FileBytes>>10),
			elapsed.Round(time.Millisecond).String(),
			mbps(rate(total, elapsed)), speedup)
	}
	t.Note("every hop at %v RTT: per-file control round trips dominate the sequential task; workers amortize them in parallel",
		cfg.Link.RTT)
	return t, nil
}

// MeasureSchedulerRun runs one E14 directory task at the given
// concurrency (0 = auto) and returns aggregate bytes/sec.
func MeasureSchedulerRun(cfg E14Config, concurrency int) (float64, error) {
	_, elapsed, err := runE14Once(cfg, concurrency)
	if err != nil {
		return 0, err
	}
	return rate(int64(cfg.Files*cfg.FileBytes), elapsed), nil
}
