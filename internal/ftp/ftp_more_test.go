package ftp

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func TestCmdFormatting(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	go ca.Cmd("OPTS", "RETR Parallelism=%d,%d,%d;", 4, 4, 4)
	cmd, err := cb.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Params != "RETR Parallelism=4,4,4;" {
		t.Fatalf("params %q", cmd.Params)
	}
	if cmd.String() != "OPTS RETR Parallelism=4,4,4;" {
		t.Fatalf("wire form %q", cmd.String())
	}
	if (Command{Name: "NOOP"}).String() != "NOOP" {
		t.Fatal("bare command wire form")
	}
}

func TestReplyText(t *testing.T) {
	r := Reply{Code: 211, Lines: []string{"a", "b", "c"}}
	if r.Text() != "a\nb\nc" {
		t.Fatalf("%q", r.Text())
	}
	if !strings.Contains(r.String(), "211") {
		t.Fatalf("%q", r.String())
	}
}

func TestWriteReplyDefaultsToOK(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	go ca.WriteReply(200)
	r, err := cb.ReadReply()
	if err != nil || r.Lines[0] != "OK" {
		t.Fatalf("%v %v", r, err)
	}
}

func TestConnDeadline(t *testing.T) {
	a, b := net.Pipe()
	ca := NewConn(a)
	defer b.Close()
	ca.SetDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := ca.ReadReply(); err == nil {
		t.Fatal("deadline not enforced")
	}
}

func TestRWInterleavesWithLineProtocol(t *testing.T) {
	// A reply, then raw bytes through RW, then another reply — the
	// pattern delegation uses — must not lose or reorder bytes.
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	go func() {
		ca.WriteReply(200, "before")
		ca.RW().Write([]byte("RAWDATA\n"))
		ca.WriteReply(200, "after")
	}()
	if r, err := cb.ReadReply(); err != nil || r.Lines[0] != "before" {
		t.Fatalf("%v %v", r, err)
	}
	raw := make([]byte, 8)
	if _, err := io.ReadFull(cb.RW(), raw); err != nil {
		t.Fatal(err)
	}
	if string(raw) != "RAWDATA\n" {
		t.Fatalf("%q", raw)
	}
	if r, err := cb.ReadReply(); err != nil || r.Lines[0] != "after" {
		t.Fatalf("%v %v", r, err)
	}
}

func TestMultilineReplyWithBlankInteriorLines(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	go ca.WriteReply(211, "Features:", "", "MODE E", "End")
	r, err := cb.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 4 || r.Lines[1] != "" || r.Lines[3] != "End" {
		t.Fatalf("%v", r.Lines)
	}
}

func TestReadFinalReplyPropagatesReadError(t *testing.T) {
	a, b := net.Pipe()
	ca := NewConn(a)
	go func() {
		b.Write([]byte("150 preliminary\r\n"))
		b.Close()
	}()
	if _, err := ca.ReadFinalReply(nil); err == nil {
		t.Fatal("EOF mid-reply-stream not reported")
	}
}
