// Package ftp implements the RFC 959 control-channel core that GridFTP
// extends: command and reply line discipline (CRLF, multi-line replies,
// preliminary replies), reply-code classification, and a connection
// wrapper that supports mid-session transport upgrades (the AUTH TLS
// security handshake replaces the raw socket with an encrypted one).
package ftp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Reply codes used throughout the GridFTP implementation.
const (
	CodeRestartMarker    = 111 // GridFTP restart marker (perf/range markers)
	CodeFileStatusOK     = 150 // about to open data connection
	CodeOK               = 200
	CodeFeatures         = 211
	CodeFileStatus       = 213 // e.g. SIZE reply
	CodeReadyForNewUser  = 220
	CodeClosingData      = 226 // transfer complete
	CodeEnteringPassive  = 227
	CodeEnteringExtPasv  = 229
	CodeUserLoggedIn     = 230
	CodeFileActionOK     = 250
	CodePathCreated      = 257
	CodeAuthOK           = 234 // RFC 2228 security exchange complete
	CodeNeedPassword     = 331
	CodeNeedAccount      = 350 // requested action pending further info (REST)
	CodeServiceNotAvail  = 421
	CodeCantOpenData     = 425
	CodeTransferAborted  = 426
	CodeActionNotTaken   = 450
	CodeLocalError       = 451
	CodeSyntaxError      = 500
	CodeParamSyntaxError = 501
	CodeNotImplemented   = 502
	CodeBadSequence      = 503
	CodeParamNotImpl     = 504
	CodeNotLoggedIn      = 530
	CodeFileUnavailable  = 550
	CodeActionAborted    = 551
	CodeBadFileName      = 553
)

// Command is one parsed control-channel command.
type Command struct {
	// Name is the upper-cased verb, e.g. "RETR", "DCSC", "SPAS".
	Name string
	// Params is the raw parameter text (may be empty).
	Params string
}

// String renders the command in wire form without the trailing CRLF.
func (c Command) String() string {
	if c.Params == "" {
		return c.Name
	}
	return c.Name + " " + c.Params
}

// ParseCommand parses one command line (without CRLF).
func ParseCommand(line string) (Command, error) {
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return Command{}, fmt.Errorf("ftp: empty command")
	}
	name, params, _ := strings.Cut(line, " ")
	name = strings.ToUpper(name)
	for _, r := range name {
		if r < 'A' || r > 'Z' {
			return Command{}, fmt.Errorf("ftp: malformed command %q", line)
		}
	}
	return Command{Name: name, Params: params}, nil
}

// Reply is one (possibly multi-line) control-channel reply.
type Reply struct {
	Code int
	// Lines are the reply text lines; for single-line replies there is
	// exactly one entry.
	Lines []string
}

// Text returns the reply's lines joined by newlines.
func (r Reply) Text() string { return strings.Join(r.Lines, "\n") }

// String renders a human-readable "code text" form.
func (r Reply) String() string {
	return fmt.Sprintf("%d %s", r.Code, strings.Join(r.Lines, " / "))
}

// Preliminary reports a 1xx reply (more replies follow for this command).
func (r Reply) Preliminary() bool { return r.Code >= 100 && r.Code < 200 }

// Success reports a 2xx reply.
func (r Reply) Success() bool { return r.Code >= 200 && r.Code < 300 }

// Intermediate reports a 3xx reply.
func (r Reply) Intermediate() bool { return r.Code >= 300 && r.Code < 400 }

// TransientError reports a 4xx reply.
func (r Reply) TransientError() bool { return r.Code >= 400 && r.Code < 500 }

// PermanentError reports a 5xx reply.
func (r Reply) PermanentError() bool { return r.Code >= 500 }

// Err converts an error reply into a Go error (nil for 1xx-3xx).
func (r Reply) Err() error {
	if r.Code < 400 {
		return nil
	}
	return &ReplyError{Reply: r}
}

// ReplyError wraps an error reply.
type ReplyError struct {
	Reply Reply
}

// Error implements the error interface.
func (e *ReplyError) Error() string { return "ftp: " + e.Reply.String() }

// Temporary reports whether the failure is transient (4xx), the signal the
// Globus Online-style transfer service uses to decide whether to retry.
func (e *ReplyError) Temporary() bool { return e.Reply.TransientError() }

// Conn wraps a net.Conn with FTP line discipline. It is used by both the
// server PI (read commands, write replies) and the client PI (write
// commands, read replies).
type Conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// NewConn wraps a transport connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
}

// Upgrade replaces the underlying transport (after a TLS handshake). Any
// data buffered from the old transport is discarded; the protocol
// guarantees the upgrade happens at a message boundary.
func (c *Conn) Upgrade(nc net.Conn) {
	c.nc = nc
	c.br = bufio.NewReader(nc)
	c.bw = bufio.NewWriter(nc)
}

// Transport returns the current underlying connection.
func (c *Conn) Transport() net.Conn { return c.nc }

// RW returns an io.ReadWriter view of the connection that reads through
// the line buffer (so bytes already buffered are not lost) and writes to
// the transport. In-band exchanges such as GSI delegation use it.
func (c *Conn) RW() io.ReadWriter { return bufferedRW{c} }

type bufferedRW struct{ c *Conn }

func (b bufferedRW) Read(p []byte) (int, error) { return b.c.br.Read(p) }
func (b bufferedRW) Write(p []byte) (int, error) {
	n, err := b.c.bw.Write(p)
	if err != nil {
		return n, err
	}
	return n, b.c.bw.Flush()
}

// Close closes the transport.
func (c *Conn) Close() error { return c.nc.Close() }

// SetDeadline sets both read and write deadlines on the transport.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// ReadCommand reads and parses the next command line.
func (c *Conn) ReadCommand() (Command, error) {
	line, err := c.readLine()
	if err != nil {
		return Command{}, err
	}
	return ParseCommand(line)
}

// WriteCommand sends a command line.
func (c *Conn) WriteCommand(cmd Command) error {
	if _, err := c.bw.WriteString(cmd.String() + "\r\n"); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Cmd formats and sends a command.
func (c *Conn) Cmd(name, format string, args ...any) error {
	params := fmt.Sprintf(format, args...)
	return c.WriteCommand(Command{Name: name, Params: params})
}

// WriteReply sends a reply; multiple lines produce the RFC 959 multi-line
// form ("code-first ... code last").
func (c *Conn) WriteReply(code int, lines ...string) error {
	if len(lines) == 0 {
		lines = []string{"OK"}
	}
	if len(lines) == 1 {
		if _, err := fmt.Fprintf(c.bw, "%d %s\r\n", code, lines[0]); err != nil {
			return err
		}
		return c.bw.Flush()
	}
	for i, line := range lines {
		var err error
		switch {
		case i == 0:
			_, err = fmt.Fprintf(c.bw, "%d-%s\r\n", code, line)
		case i == len(lines)-1:
			_, err = fmt.Fprintf(c.bw, "%d %s\r\n", code, line)
		default:
			_, err = fmt.Fprintf(c.bw, " %s\r\n", line)
		}
		if err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

// ReadReply reads one full reply, collecting multi-line bodies.
func (c *Conn) ReadReply() (Reply, error) {
	line, err := c.readLine()
	if err != nil {
		return Reply{}, err
	}
	if len(line) < 4 {
		return Reply{}, fmt.Errorf("ftp: short reply line %q", line)
	}
	code, err := strconv.Atoi(line[:3])
	if err != nil || code < 100 || code > 599 {
		return Reply{}, fmt.Errorf("ftp: bad reply code in %q", line)
	}
	sep := line[3]
	reply := Reply{Code: code, Lines: []string{line[4:]}}
	if sep == ' ' {
		return reply, nil
	}
	if sep != '-' {
		return Reply{}, fmt.Errorf("ftp: bad reply separator in %q", line)
	}
	terminator := line[:3] + " "
	for {
		line, err := c.readLine()
		if err != nil {
			return Reply{}, err
		}
		if strings.HasPrefix(line, terminator) {
			reply.Lines = append(reply.Lines, line[4:])
			return reply, nil
		}
		reply.Lines = append(reply.Lines, strings.TrimPrefix(line, " "))
	}
}

// ReadFinalReply reads replies until a non-preliminary one arrives,
// invoking onPreliminary (if non-nil) for each 1xx reply — restart and
// performance markers flow through this path.
func (c *Conn) ReadFinalReply(onPreliminary func(Reply)) (Reply, error) {
	for {
		r, err := c.ReadReply()
		if err != nil {
			return Reply{}, err
		}
		if r.Preliminary() {
			if onPreliminary != nil {
				onPreliminary(r)
			}
			continue
		}
		return r, nil
	}
}

// Expect reads a final reply and errors unless its code matches one of
// want.
func (c *Conn) Expect(want ...int) (Reply, error) {
	r, err := c.ReadFinalReply(nil)
	if err != nil {
		return Reply{}, err
	}
	for _, w := range want {
		if r.Code == w {
			return r, nil
		}
	}
	if err := r.Err(); err != nil {
		return r, err
	}
	return r, fmt.Errorf("ftp: unexpected reply %s (want %v)", r, want)
}

const maxLineLen = 1 << 20 // DCSC blobs ride on command lines; allow 1 MiB

func (c *Conn) readLine() (string, error) {
	line, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLineLen {
		return "", fmt.Errorf("ftp: line exceeds %d bytes", maxLineLen)
	}
	return strings.TrimRight(line, "\r\n"), nil
}
