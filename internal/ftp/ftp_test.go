package ftp

import (
	"errors"
	"net"
	"strings"
	"testing"
	"testing/quick"
)

func connPair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestCommandRoundTrip(t *testing.T) {
	client, server := connPair()
	go func() {
		client.WriteCommand(Command{Name: "RETR", Params: "/data/file.bin"})
		client.Cmd("PASV", "")
		client.Cmd("DCSC", "P %s", "YmxvYg==")
	}()
	cmd, err := server.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "RETR" || cmd.Params != "/data/file.bin" {
		t.Fatalf("got %+v", cmd)
	}
	cmd, _ = server.ReadCommand()
	if cmd.Name != "PASV" || cmd.Params != "" {
		t.Fatalf("got %+v", cmd)
	}
	cmd, _ = server.ReadCommand()
	if cmd.Name != "DCSC" || cmd.Params != "P YmxvYg==" {
		t.Fatalf("got %+v", cmd)
	}
}

func TestParseCommand(t *testing.T) {
	c, err := ParseCommand("retr /path with spaces\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "RETR" || c.Params != "/path with spaces" {
		t.Fatalf("%+v", c)
	}
	for _, bad := range []string{"", "\r\n", "123 x", "RE TR?bad verb!extra junk\x01"} {
		if _, err := ParseCommand(bad); err == nil && !strings.Contains(bad, " ") {
			t.Errorf("ParseCommand(%q) should fail", bad)
		}
	}
	if _, err := ParseCommand("123 x"); err == nil {
		t.Error("numeric verb should fail")
	}
}

func TestSingleLineReply(t *testing.T) {
	client, server := connPair()
	go server.WriteReply(230, "User logged in")
	r, err := client.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != 230 || r.Lines[0] != "User logged in" {
		t.Fatalf("%+v", r)
	}
	if !r.Success() || r.Err() != nil {
		t.Fatal("230 should be success")
	}
}

func TestMultiLineReply(t *testing.T) {
	client, server := connPair()
	go server.WriteReply(211, "Features:", "PASV", "SPAS", "DCSC", "End")
	r, err := client.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != 211 || len(r.Lines) != 5 {
		t.Fatalf("%+v", r)
	}
	if r.Lines[2] != "SPAS" || r.Lines[4] != "End" {
		t.Fatalf("%+v", r)
	}
}

func TestPreliminaryRepliesSkipped(t *testing.T) {
	client, server := connPair()
	go func() {
		server.WriteReply(150, "Opening data connection")
		server.WriteReply(111, "Range Marker 0-1048576")
		server.WriteReply(226, "Transfer complete")
	}()
	var markers []Reply
	r, err := client.ReadFinalReply(func(p Reply) { markers = append(markers, p) })
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != 226 {
		t.Fatalf("final %+v", r)
	}
	if len(markers) != 2 || markers[1].Code != 111 {
		t.Fatalf("markers %+v", markers)
	}
}

func TestExpect(t *testing.T) {
	client, server := connPair()
	go func() {
		server.WriteReply(200, "OK")
		server.WriteReply(550, "No such file")
	}()
	if _, err := client.Expect(200); err != nil {
		t.Fatal(err)
	}
	_, err := client.Expect(226)
	var re *ReplyError
	if !errors.As(err, &re) || re.Reply.Code != 550 {
		t.Fatalf("want ReplyError 550, got %v", err)
	}
	if re.Temporary() {
		t.Fatal("550 is permanent")
	}
}

func TestReplyErrClassification(t *testing.T) {
	if (Reply{Code: 426}).Err() == nil {
		t.Fatal("426 should err")
	}
	var re *ReplyError
	if errors.As((Reply{Code: 426}).Err(), &re); !re.Temporary() {
		t.Fatal("426 should be temporary")
	}
	if (Reply{Code: 350}).Err() != nil {
		t.Fatal("350 should not err")
	}
	if !(Reply{Code: 331}).Intermediate() {
		t.Fatal("331 intermediate")
	}
}

func TestBadReplies(t *testing.T) {
	for _, wire := range []string{"xx\r\n", "99 too low\r\n", "abc hello\r\n", "200?sep\r\n"} {
		a, b := net.Pipe()
		c := NewConn(a)
		go func() { b.Write([]byte(wire)); b.Close() }()
		if _, err := c.ReadReply(); err == nil {
			t.Errorf("ReadReply(%q) should fail", wire)
		}
	}
}

func TestReplyRoundTripProperty(t *testing.T) {
	f := func(code int, body string) bool {
		code = 100 + (abs(code) % 500)
		line := strings.Map(func(r rune) rune {
			if r == '\r' || r == '\n' {
				return ' '
			}
			return r
		}, body)
		client, server := connPair()
		go server.WriteReply(code, line)
		r, err := client.ReadReply()
		return err == nil && r.Code == code && r.Lines[0] == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestUpgradeSwapsTransport(t *testing.T) {
	a1, b1 := net.Pipe()
	a2, b2 := net.Pipe()
	ca, cb := NewConn(a1), NewConn(b1)
	go ca.WriteReply(220, "ready")
	if r, _ := cb.ReadReply(); r.Code != 220 {
		t.Fatal("pre-upgrade reply lost")
	}
	ca.Upgrade(a2)
	cb.Upgrade(b2)
	go ca.WriteReply(234, "secured")
	if r, _ := cb.ReadReply(); r.Code != 234 {
		t.Fatal("post-upgrade reply lost")
	}
	if ca.Transport() != a2 {
		t.Fatal("Transport not swapped")
	}
}
