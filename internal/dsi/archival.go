package dsi

import (
	"sync"
	"time"
)

// ArchivalStorage wraps another Storage with HPSS-like behaviour: opening
// a file that is not "staged" to the disk cache pays a stage latency (tape
// recall), after which the file stays staged for a residency window.
// GridFTP's DSI modularity is exactly what lets it front archives like
// HPSS (§II.A [6]); this backend exercises that code path and gives the
// benchmarks an archival latency profile.
type ArchivalStorage struct {
	Backend Storage
	// StageLatency is the tape-recall delay for a cold open.
	StageLatency time.Duration
	// Residency is how long a staged file stays hot.
	Residency time.Duration

	mu     sync.Mutex
	staged map[string]time.Time
}

// NewArchivalStorage wraps backend with stage semantics.
func NewArchivalStorage(backend Storage, stageLatency, residency time.Duration) *ArchivalStorage {
	return &ArchivalStorage{
		Backend:      backend,
		StageLatency: stageLatency,
		Residency:    residency,
		staged:       make(map[string]time.Time),
	}
}

// stage blocks for the recall latency if the file is cold, then marks it
// hot.
func (a *ArchivalStorage) stage(user, p string) {
	key := user + "\x00" + p
	a.mu.Lock()
	until, hot := a.staged[key]
	now := time.Now()
	if hot && now.Before(until) {
		a.staged[key] = now.Add(a.Residency)
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	time.Sleep(a.StageLatency)
	a.mu.Lock()
	a.staged[key] = time.Now().Add(a.Residency)
	a.mu.Unlock()
}

// Staged reports whether a file is currently resident in the disk cache.
func (a *ArchivalStorage) Staged(user, p string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	until, ok := a.staged[user+"\x00"+p]
	return ok && time.Now().Before(until)
}

// Open implements Storage, paying stage latency for cold files.
func (a *ArchivalStorage) Open(user, p string) (File, error) {
	a.stage(user, p)
	return a.Backend.Open(user, p)
}

// Create implements Storage; new files are written to the disk cache and
// are immediately hot.
func (a *ArchivalStorage) Create(user, p string) (File, error) {
	f, err := a.Backend.Create(user, p)
	if err == nil {
		a.mu.Lock()
		a.staged[user+"\x00"+p] = time.Now().Add(a.Residency)
		a.mu.Unlock()
	}
	return f, err
}

// Stat implements Storage (metadata lives in the name space, no recall).
func (a *ArchivalStorage) Stat(user, p string) (FileInfo, error) { return a.Backend.Stat(user, p) }

// List implements Storage.
func (a *ArchivalStorage) List(user, p string) ([]FileInfo, error) { return a.Backend.List(user, p) }

// Mkdir implements Storage.
func (a *ArchivalStorage) Mkdir(user, p string) error { return a.Backend.Mkdir(user, p) }

// Remove implements Storage.
func (a *ArchivalStorage) Remove(user, p string) error { return a.Backend.Remove(user, p) }

// Rename implements Storage.
func (a *ArchivalStorage) Rename(user, from, to string) error {
	return a.Backend.Rename(user, from, to)
}
