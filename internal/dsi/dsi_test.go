package dsi

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

// storageUnderTest builds each backend behind the common interface.
func storageUnderTest(t *testing.T) map[string]Storage {
	t.Helper()
	mem := NewMemStorage()
	mem.AddUser("alice")
	posix, err := NewPosixStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := posix.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	memForArch := NewMemStorage()
	memForArch.AddUser("alice")
	arch := NewArchivalStorage(memForArch, time.Millisecond, time.Minute)
	return map[string]Storage{"mem": mem, "posix": posix, "archival": arch}
}

func TestStorageConformance(t *testing.T) {
	for name, s := range storageUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			// Create / read back.
			f, err := s.Create("alice", "/data.bin")
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("grid"), 1000)
			if err := WriteAll(f, payload); err != nil {
				t.Fatal(err)
			}
			f.Close()

			g, err := s.Open("alice", "/data.bin")
			if err != nil {
				t.Fatal(err)
			}
			got, err := ReadAll(g)
			if err != nil {
				t.Fatal(err)
			}
			g.Close()
			if !bytes.Equal(got, payload) {
				t.Fatal("read-back mismatch")
			}

			// Stat.
			fi, err := s.Stat("alice", "/data.bin")
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size != int64(len(payload)) || fi.IsDir {
				t.Fatalf("stat %+v", fi)
			}

			// Mkdir / List / sorted.
			if err := s.Mkdir("alice", "/sub"); err != nil {
				t.Fatal(err)
			}
			f2, _ := s.Create("alice", "/sub/a.txt")
			WriteAll(f2, []byte("x"))
			f2.Close()
			infos, err := s.List("alice", "/")
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 2 || infos[0].Name != "data.bin" || infos[1].Name != "sub" {
				t.Fatalf("list %v", infos)
			}

			// Rename.
			if err := s.Rename("alice", "/data.bin", "/renamed.bin"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Stat("alice", "/data.bin"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("old name still exists: %v", err)
			}
			if _, err := s.Stat("alice", "/renamed.bin"); err != nil {
				t.Fatal(err)
			}

			// Remove non-empty dir refused, then empty succeeds.
			if err := s.Remove("alice", "/sub"); !errors.Is(err, ErrNotEmpty) {
				t.Fatalf("remove non-empty dir: %v", err)
			}
			if err := s.Remove("alice", "/sub/a.txt"); err != nil {
				t.Fatal(err)
			}
			if err := s.Remove("alice", "/sub"); err != nil {
				t.Fatal(err)
			}

			// Error cases.
			if _, err := s.Open("alice", "/ghost"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("open missing: %v", err)
			}
			if _, err := s.Open("bob", "/renamed.bin"); !errors.Is(err, ErrNoUser) {
				t.Fatalf("unknown user: %v", err)
			}
			if _, err := s.Open("alice", "/../../etc/passwd"); err == nil {
				t.Fatal("path escape allowed")
			}
		})
	}
}

func TestSparseWriteAt(t *testing.T) {
	for name, s := range storageUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			f, err := s.Create("alice", "/sparse")
			if err != nil {
				t.Fatal(err)
			}
			// Write out of order, as parallel MODE E streams do.
			if _, err := f.WriteAt([]byte("tail"), 100); err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte("head"), 0); err != nil {
				t.Fatal(err)
			}
			size, _ := f.Size()
			if size != 104 {
				t.Fatalf("size %d want 104", size)
			}
			got, err := ReadAll(f)
			if err != nil {
				t.Fatal(err)
			}
			if string(got[:4]) != "head" || string(got[100:]) != "tail" {
				t.Fatal("sparse content wrong")
			}
			for _, b := range got[4:100] {
				if b != 0 {
					t.Fatal("hole not zero-filled")
				}
			}
			f.Close()
		})
	}
}

func TestUserIsolation(t *testing.T) {
	mem := NewMemStorage()
	mem.AddUser("alice")
	mem.AddUser("bob")
	f, _ := mem.Create("alice", "/secret")
	WriteAll(f, []byte("alice-only"))
	f.Close()
	if _, err := mem.Open("bob", "/secret"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("bob can see alice's file: %v", err)
	}
}

func TestPosixUserIsolationOnDisk(t *testing.T) {
	root := t.TempDir()
	s, err := NewPosixStorage(root)
	if err != nil {
		t.Fatal(err)
	}
	s.AddUser("alice")
	s.AddUser("bob")
	f, err := s.Create("alice", "/f")
	if err != nil {
		t.Fatal(err)
	}
	WriteAll(f, []byte("data"))
	f.Close()
	if _, err := s.Open("bob", "/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("cross-user access: %v", err)
	}
	// Escape attempts must stay inside the sandbox.
	if _, err := s.Open("bob", "/../alice/f"); !errors.Is(err, ErrNotExist) && err == nil {
		t.Fatal("sandbox escape via dotdot")
	}
	if err := s.AddUser("../evil"); err == nil {
		t.Fatal("bad username accepted")
	}
}

func TestCleanPath(t *testing.T) {
	cases := map[string]string{
		"/a/b":       "/a/b",
		"a/b":        "/a/b",
		"/a/./b":     "/a/b",
		"/a/../b":    "/b",
		"":           "/",
		"/":          "/",
		"/a//b":      "/a/b",
		"/a/b/../..": "/",
		// Rooted paths cannot escape: ".." at the root collapses to "/".
		"/..":   "/",
		"/../x": "/x",
		"../x":  "/x",
	}
	for in, want := range cases {
		got, err := CleanPath(in)
		if err != nil || got != want {
			t.Errorf("CleanPath(%q)=%q,%v want %q", in, got, err, want)
		}
	}
}

func TestCleanPathPropertyNeverEscapes(t *testing.T) {
	f := func(segs []string) bool {
		p := "/"
		for _, s := range segs {
			p += s + "/"
		}
		clean, err := CleanPath(p)
		if err != nil {
			return true // rejected is fine
		}
		return clean == "/" || (len(clean) > 0 && clean[0] == '/' &&
			clean != "/.." && !hasPrefix(clean, "/../"))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func TestArchivalStageLatency(t *testing.T) {
	mem := NewMemStorage()
	mem.AddUser("alice")
	arch := NewArchivalStorage(mem, 50*time.Millisecond, time.Minute)
	f, _ := arch.Create("alice", "/cold")
	WriteAll(f, []byte("x"))
	f.Close()
	if !arch.Staged("alice", "/cold") {
		t.Fatal("fresh create should be staged")
	}
	// Expire residency manually by recreating the wrapper.
	arch2 := NewArchivalStorage(mem, 50*time.Millisecond, time.Minute)
	start := time.Now()
	g, err := arch2.Open("alice", "/cold")
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("cold open took %v, want >= stage latency", d)
	}
	// Second open is hot.
	start = time.Now()
	g2, _ := arch2.Open("alice", "/cold")
	g2.Close()
	if d := time.Since(start); d > 25*time.Millisecond {
		t.Fatalf("hot open took %v, should skip stage", d)
	}
}

func TestMemCreateTruncates(t *testing.T) {
	mem := NewMemStorage()
	mem.AddUser("u")
	f, _ := mem.Create("u", "/f")
	WriteAll(f, []byte("long content"))
	f.Close()
	g, _ := mem.Create("u", "/f")
	WriteAll(g, []byte("x"))
	g.Close()
	h, _ := mem.Open("u", "/f")
	got, _ := ReadAll(h)
	if string(got) != "x" {
		t.Fatalf("create did not truncate: %q", got)
	}
}

func TestCreateOverDirectoryFails(t *testing.T) {
	for name, s := range storageUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Mkdir("alice", "/d"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Create("alice", "/d"); !errors.Is(err, ErrIsDir) {
				t.Fatalf("create over dir: %v", err)
			}
			if _, err := s.Open("alice", "/d"); !errors.Is(err, ErrIsDir) {
				t.Fatalf("open dir: %v", err)
			}
			if _, err := s.List("alice", "/d"); err != nil {
				t.Fatalf("list empty dir: %v", err)
			}
		})
	}
}

func TestRenameOntoExistingFails(t *testing.T) {
	for name, s := range storageUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := s.Create("alice", "/a")
			a.Close()
			b, _ := s.Create("alice", "/b")
			b.Close()
			if err := s.Rename("alice", "/a", "/b"); !errors.Is(err, ErrExist) {
				t.Fatalf("rename onto existing: %v", err)
			}
		})
	}
}
