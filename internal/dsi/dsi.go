// Package dsi defines the Data Storage Interface, the Globus GridFTP
// abstraction that lets a standard GridFTP client reach any storage system
// (§II.A [5] of the paper). Three implementations are provided: an
// in-memory store, a POSIX store rooted in a real directory, and an
// archival wrapper adding HPSS-like stage latency.
//
// All operations take the local username the session was authorized as;
// implementations confine each user to their own sandbox, reproducing the
// effect of the GridFTP server's setuid to the mapped local account.
package dsi

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"time"
)

// Common sentinel errors.
var (
	ErrNotExist = errors.New("dsi: no such file or directory")
	ErrIsDir    = errors.New("dsi: is a directory")
	ErrNotDir   = errors.New("dsi: not a directory")
	ErrExist    = errors.New("dsi: file exists")
	ErrDenied   = errors.New("dsi: permission denied")
	ErrNotEmpty = errors.New("dsi: directory not empty")
	ErrBadPath  = errors.New("dsi: invalid path")
	ErrNoUser   = errors.New("dsi: unknown local user")
)

// FileInfo describes one entry, the data MLSD/MLST facts are built from.
type FileInfo struct {
	Name    string
	Size    int64
	ModTime time.Time
	IsDir   bool
}

// File is an open file handle. Both ReaderAt and WriterAt are required
// because MODE E data blocks arrive at arbitrary offsets on parallel
// streams.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Size returns the current length of the file.
	Size() (int64, error)
}

// Storage is the Data Storage Interface.
type Storage interface {
	// Open opens an existing file for reading.
	Open(user, p string) (File, error)
	// Create opens a file for writing, creating or truncating it.
	Create(user, p string) (File, error)
	// Stat describes a file or directory.
	Stat(user, p string) (FileInfo, error)
	// List returns directory entries sorted by name.
	List(user, p string) ([]FileInfo, error)
	// Mkdir creates a directory.
	Mkdir(user, p string) error
	// Remove deletes a file or empty directory.
	Remove(user, p string) error
	// Rename moves a file or directory within the user's space.
	Rename(user, from, to string) error
}

// CleanPath normalizes an absolute-or-relative GridFTP path to a rooted,
// dot-free form and rejects escapes above the root.
func CleanPath(p string) (string, error) {
	if p == "" {
		p = "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	c := path.Clean(p)
	if c == "/.." || strings.HasPrefix(c, "/../") {
		return "", fmt.Errorf("%w: %q escapes root", ErrBadPath, p)
	}
	return c, nil
}

// ReadAll reads an entire file through the File interface.
func ReadAll(f File) ([]byte, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	n, err := f.ReadAt(buf, 0)
	if int64(n) == size && (err == nil || err == io.EOF) {
		return buf, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return buf[:n], err
}

// WriteAll writes data at offset 0 through the File interface.
func WriteAll(f File, data []byte) error {
	_, err := f.WriteAt(data, 0)
	return err
}

func sortInfos(infos []FileInfo) {
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
}
