package dsi

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestBufferFileBasics(t *testing.T) {
	b := NewBufferFile([]byte("hello"))
	if n, _ := b.Size(); n != 5 {
		t.Fatalf("size %d", n)
	}
	got := make([]byte, 5)
	if _, err := b.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("%q", got)
	}
	// Read past EOF.
	if _, err := b.ReadAt(got, 100); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	// Short read at tail returns EOF with partial data.
	tail := make([]byte, 10)
	n, err := b.ReadAt(tail, 3)
	if n != 2 || err != io.EOF {
		t.Fatalf("tail read n=%d err=%v", n, err)
	}
	// Close is a no-op; Bytes copies.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	cp := b.Bytes()
	cp[0] = 'X'
	if b.Bytes()[0] != 'h' {
		t.Fatal("Bytes did not copy")
	}
}

func TestBufferFileGrowth(t *testing.T) {
	b := NewBufferFile(nil)
	// Sequential block extension must stay cheap and correct (this is the
	// MODE E receive pattern).
	block := bytes.Repeat([]byte("g"), 1024)
	for i := 0; i < 1000; i++ {
		if _, err := b.WriteAt(block, int64(i*1024)); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := b.Size(); n != 1024*1000 {
		t.Fatalf("size %d", n)
	}
	// Sparse write with re-slice within capacity keeps holes zeroed.
	b2 := NewBufferFile(nil)
	b2.WriteAt([]byte("x"), 100)
	b2.WriteAt([]byte("y"), 10)
	data := b2.Bytes()
	if data[100] != 'x' || data[10] != 'y' || data[50] != 0 {
		t.Fatal("sparse content wrong")
	}
}

func TestBufferFilePropertyRandomWrites(t *testing.T) {
	f := func(writes []struct {
		Off  uint16
		Data []byte
	}) bool {
		b := NewBufferFile(nil)
		ref := map[int64]byte{}
		var max int64
		for _, w := range writes {
			if len(w.Data) == 0 {
				continue
			}
			off := int64(w.Off)
			if _, err := b.WriteAt(w.Data, off); err != nil {
				return false
			}
			for i, d := range w.Data {
				ref[off+int64(i)] = d
			}
			if end := off + int64(len(w.Data)); end > max {
				max = end
			}
		}
		if n, _ := b.Size(); n != max {
			return false
		}
		data := b.Bytes()
		for off, want := range ref {
			if data[off] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultStorageDirect(t *testing.T) {
	mem := NewMemStorage()
	mem.AddUser("u")
	fs := NewFaultStorage(mem)

	// Unarmed: writes pass through.
	f, err := fs.Create("u", "/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if fs.Trips() != 0 {
		t.Fatal("unarmed fault tripped")
	}

	// Armed: next opened file fails past the threshold, exactly once
	// counted.
	fs.Arm(4)
	g, err := fs.Open("u", "/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt([]byte("1234"), 0); err != nil {
		t.Fatal(err) // at threshold, still fine
	}
	if _, err := g.WriteAt([]byte("x"), 4); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if _, err := g.WriteAt([]byte("y"), 5); !errors.Is(err, ErrInjectedFault) {
		t.Fatal("fault should persist on the tripped file")
	}
	if fs.Trips() != 1 {
		t.Fatalf("trips %d", fs.Trips())
	}
	// The next file is clean (one-shot arming).
	h, _ := fs.Create("u", "/b")
	if _, err := h.WriteAt(bytes.Repeat([]byte("z"), 100), 0); err != nil {
		t.Fatal(err)
	}
	h.Close()
}

func TestWriteAllReadAllHelpers(t *testing.T) {
	mem := NewMemStorage()
	mem.AddUser("u")
	f, _ := mem.Create("u", "/h")
	if err := WriteAll(f, []byte("helper")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "helper" {
		t.Fatalf("%q", got)
	}
	// Empty file.
	e, _ := mem.Create("u", "/empty")
	got, err = ReadAll(e)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %q %v", got, err)
	}
}
