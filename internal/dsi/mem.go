package dsi

import (
	"fmt"
	"io"
	"path"
	"strings"
	"sync"
	"time"
)

// MemStorage is an in-memory Storage. Each user gets an isolated tree
// rooted at "/" (their sandbox); users must be provisioned with AddUser
// before use, mirroring the local-account requirement of a GridFTP server.
type MemStorage struct {
	mu    sync.RWMutex
	users map[string]*memDir
}

// NewMemStorage returns an empty in-memory store.
func NewMemStorage() *MemStorage {
	return &MemStorage{users: make(map[string]*memDir)}
}

// AddUser provisions a user's sandbox.
func (s *MemStorage) AddUser(user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[user]; !ok {
		s.users[user] = newMemDir()
	}
}

type memDir struct {
	entries map[string]*memNode
	mod     time.Time
}

func newMemDir() *memDir {
	return &memDir{entries: make(map[string]*memNode), mod: time.Now()}
}

type memNode struct {
	dir  *memDir // non-nil for directories
	file *memFileData
}

type memFileData struct {
	mu   sync.RWMutex
	data []byte
	mod  time.Time
}

func (s *MemStorage) root(user string) (*memDir, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.users[user]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoUser, user)
	}
	return d, nil
}

// walk resolves the directory containing the final path element.
func (s *MemStorage) walk(user, p string) (*memDir, string, error) {
	clean, err := CleanPath(p)
	if err != nil {
		return nil, "", err
	}
	root, err := s.root(user)
	if err != nil {
		return nil, "", err
	}
	dirPath, base := path.Split(clean)
	cur := root
	for _, part := range strings.Split(strings.Trim(dirPath, "/"), "/") {
		if part == "" {
			continue
		}
		s.mu.RLock()
		n, ok := cur.entries[part]
		s.mu.RUnlock()
		if !ok {
			return nil, "", fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		if n.dir == nil {
			return nil, "", fmt.Errorf("%w: %s", ErrNotDir, p)
		}
		cur = n.dir
	}
	return cur, base, nil
}

// Open implements Storage.
func (s *MemStorage) Open(user, p string) (File, error) {
	dir, base, err := s.walk(user, p)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	n, ok := dir.entries[base]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if n.dir != nil {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	return &memFile{data: n.file}, nil
}

// Create implements Storage.
func (s *MemStorage) Create(user, p string) (File, error) {
	dir, base, err := s.walk(user, p)
	if err != nil {
		return nil, err
	}
	if base == "" {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := dir.entries[base]; ok {
		if n.dir != nil {
			return nil, fmt.Errorf("%w: %s", ErrIsDir, p)
		}
		n.file.mu.Lock()
		n.file.data = nil
		n.file.mod = time.Now()
		n.file.mu.Unlock()
		return &memFile{data: n.file}, nil
	}
	fd := &memFileData{mod: time.Now()}
	dir.entries[base] = &memNode{file: fd}
	dir.mod = time.Now()
	return &memFile{data: fd}, nil
}

// Stat implements Storage.
func (s *MemStorage) Stat(user, p string) (FileInfo, error) {
	clean, err := CleanPath(p)
	if err != nil {
		return FileInfo{}, err
	}
	if clean == "/" {
		if _, err := s.root(user); err != nil {
			return FileInfo{}, err
		}
		return FileInfo{Name: "/", IsDir: true, ModTime: time.Now()}, nil
	}
	dir, base, err := s.walk(user, p)
	if err != nil {
		return FileInfo{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := dir.entries[base]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return nodeInfo(base, n), nil
}

func nodeInfo(name string, n *memNode) FileInfo {
	if n.dir != nil {
		return FileInfo{Name: name, IsDir: true, ModTime: n.dir.mod}
	}
	n.file.mu.RLock()
	defer n.file.mu.RUnlock()
	return FileInfo{Name: name, Size: int64(len(n.file.data)), ModTime: n.file.mod}
}

// List implements Storage.
func (s *MemStorage) List(user, p string) ([]FileInfo, error) {
	clean, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	root, err := s.root(user)
	if err != nil {
		return nil, err
	}
	cur := root
	if clean != "/" {
		dir, base, err := s.walk(user, p)
		if err != nil {
			return nil, err
		}
		s.mu.RLock()
		n, ok := dir.entries[base]
		s.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		if n.dir == nil {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
		}
		cur = n.dir
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]FileInfo, 0, len(cur.entries))
	for name, n := range cur.entries {
		infos = append(infos, nodeInfo(name, n))
	}
	sortInfos(infos)
	return infos, nil
}

// Mkdir implements Storage.
func (s *MemStorage) Mkdir(user, p string) error {
	dir, base, err := s.walk(user, p)
	if err != nil {
		return err
	}
	if base == "" {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := dir.entries[base]; ok {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	dir.entries[base] = &memNode{dir: newMemDir()}
	dir.mod = time.Now()
	return nil
}

// Remove implements Storage.
func (s *MemStorage) Remove(user, p string) error {
	dir, base, err := s.walk(user, p)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := dir.entries[base]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if n.dir != nil && len(n.dir.entries) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	delete(dir.entries, base)
	dir.mod = time.Now()
	return nil
}

// Rename implements Storage.
func (s *MemStorage) Rename(user, from, to string) error {
	fromDir, fromBase, err := s.walk(user, from)
	if err != nil {
		return err
	}
	toDir, toBase, err := s.walk(user, to)
	if err != nil {
		return err
	}
	if toBase == "" {
		return fmt.Errorf("%w: %s", ErrBadPath, to)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := fromDir.entries[fromBase]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, from)
	}
	if _, exists := toDir.entries[toBase]; exists {
		return fmt.Errorf("%w: %s", ErrExist, to)
	}
	delete(fromDir.entries, fromBase)
	toDir.entries[toBase] = n
	fromDir.mod = time.Now()
	toDir.mod = time.Now()
	return nil
}

// memFile adapts memFileData to the File interface.
type memFile struct {
	data   *memFileData
	closed bool
}

// ReadAt implements io.ReaderAt.
func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.data.mu.RLock()
	defer f.data.mu.RUnlock()
	if off >= int64(len(f.data.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the file (sparse zero-fill) as
// needed — out-of-order MODE E blocks land wherever their offsets say.
// Growth is geometric so block-at-a-time extension stays linear overall.
func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.data.mu.Lock()
	defer f.data.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.data.data)) {
		if end > int64(cap(f.data.data)) {
			newCap := 2 * int64(cap(f.data.data))
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.data.data)
			f.data.data = grown
		} else {
			f.data.data = f.data.data[:end]
		}
	}
	copy(f.data.data[off:end], p)
	f.data.mod = time.Now()
	return len(p), nil
}

// Preallocate reserves capacity for size bytes without changing the
// logical length, so a store whose size was announced up front (ALLO)
// lands block by block with zero grow-copies.
func (f *memFile) Preallocate(size int64) {
	if size <= 0 {
		return
	}
	f.data.mu.Lock()
	defer f.data.mu.Unlock()
	if size <= int64(cap(f.data.data)) {
		return
	}
	grown := make([]byte, len(f.data.data), size)
	copy(grown, f.data.data)
	f.data.data = grown
}

// Size implements File.
func (f *memFile) Size() (int64, error) {
	f.data.mu.RLock()
	defer f.data.mu.RUnlock()
	return int64(len(f.data.data)), nil
}

// Close implements io.Closer.
func (f *memFile) Close() error {
	f.closed = true
	return nil
}
