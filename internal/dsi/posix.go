package dsi

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// PosixStorage is a Storage backed by a real directory tree. Each user's
// sandbox is <root>/<user>; paths are confined to it, reproducing the
// privilege boundary the GridFTP server's setuid provides.
type PosixStorage struct {
	root string
	mu   sync.RWMutex
	// known tracks provisioned users; access for others is refused.
	known map[string]bool
}

// NewPosixStorage creates a store rooted at dir (created if absent).
func NewPosixStorage(dir string) (*PosixStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &PosixStorage{root: dir, known: make(map[string]bool)}, nil
}

// AddUser provisions a user's home sandbox.
func (s *PosixStorage) AddUser(user string) error {
	if strings.ContainsAny(user, "/\\") || user == "" || user == "." || user == ".." {
		return fmt.Errorf("%w: bad username %q", ErrBadPath, user)
	}
	if err := os.MkdirAll(filepath.Join(s.root, user), 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	s.known[user] = true
	s.mu.Unlock()
	return nil
}

// resolve maps (user, gridftp path) to a confined OS path.
func (s *PosixStorage) resolve(user, p string) (string, error) {
	s.mu.RLock()
	ok := s.known[user]
	s.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoUser, user)
	}
	clean, err := CleanPath(p)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.root, user, filepath.FromSlash(clean)), nil
}

func mapOSErr(err error, p string) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	case errors.Is(err, fs.ErrExist):
		return fmt.Errorf("%w: %s", ErrExist, p)
	case errors.Is(err, fs.ErrPermission):
		return fmt.Errorf("%w: %s", ErrDenied, p)
	default:
		return err
	}
}

// Open implements Storage.
func (s *PosixStorage) Open(user, p string) (File, error) {
	osp, err := s.resolve(user, p)
	if err != nil {
		return nil, err
	}
	fi, err := os.Stat(osp)
	if err != nil {
		return nil, mapOSErr(err, p)
	}
	if fi.IsDir() {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	f, err := os.Open(osp)
	if err != nil {
		return nil, mapOSErr(err, p)
	}
	return &posixFile{f: f}, nil
}

// Create implements Storage.
func (s *PosixStorage) Create(user, p string) (File, error) {
	osp, err := s.resolve(user, p)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(osp); err == nil && fi.IsDir() {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	f, err := os.OpenFile(osp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, mapOSErr(err, p)
	}
	return &posixFile{f: f}, nil
}

// Stat implements Storage.
func (s *PosixStorage) Stat(user, p string) (FileInfo, error) {
	osp, err := s.resolve(user, p)
	if err != nil {
		return FileInfo{}, err
	}
	fi, err := os.Stat(osp)
	if err != nil {
		return FileInfo{}, mapOSErr(err, p)
	}
	return FileInfo{Name: fi.Name(), Size: fi.Size(), ModTime: fi.ModTime(), IsDir: fi.IsDir()}, nil
}

// List implements Storage.
func (s *PosixStorage) List(user, p string) ([]FileInfo, error) {
	osp, err := s.resolve(user, p)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(osp)
	if err != nil {
		if fi, statErr := os.Stat(osp); statErr == nil && !fi.IsDir() {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
		}
		return nil, mapOSErr(err, p)
	}
	infos := make([]FileInfo, 0, len(entries))
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			continue
		}
		infos = append(infos, FileInfo{Name: e.Name(), Size: fi.Size(), ModTime: fi.ModTime(), IsDir: e.IsDir()})
	}
	sortInfos(infos)
	return infos, nil
}

// Mkdir implements Storage.
func (s *PosixStorage) Mkdir(user, p string) error {
	osp, err := s.resolve(user, p)
	if err != nil {
		return err
	}
	return mapOSErr(os.Mkdir(osp, 0o755), p)
}

// Remove implements Storage.
func (s *PosixStorage) Remove(user, p string) error {
	osp, err := s.resolve(user, p)
	if err != nil {
		return err
	}
	if err := os.Remove(osp); err != nil {
		var pathErr *os.PathError
		if errors.As(err, &pathErr) && strings.Contains(pathErr.Err.Error(), "not empty") {
			return fmt.Errorf("%w: %s", ErrNotEmpty, p)
		}
		return mapOSErr(err, p)
	}
	return nil
}

// Rename implements Storage.
func (s *PosixStorage) Rename(user, from, to string) error {
	fromOS, err := s.resolve(user, from)
	if err != nil {
		return err
	}
	toOS, err := s.resolve(user, to)
	if err != nil {
		return err
	}
	if _, err := os.Stat(toOS); err == nil {
		return fmt.Errorf("%w: %s", ErrExist, to)
	}
	return mapOSErr(os.Rename(fromOS, toOS), from)
}

type posixFile struct {
	f *os.File
}

// ReadAt implements io.ReaderAt.
func (p *posixFile) ReadAt(b []byte, off int64) (int, error) { return p.f.ReadAt(b, off) }

// WriteAt implements io.WriterAt.
func (p *posixFile) WriteAt(b []byte, off int64) (int, error) { return p.f.WriteAt(b, off) }

// OSFile exposes the backing descriptor so the transfer paths can hand it
// to the kernel directly (sendfile/splice) instead of copying through a
// user-space buffer.
func (p *posixFile) OSFile() *os.File { return p.f }

// Preallocate extends the file to size bytes up front (best-effort), so
// out-of-order MODE E blocks land in already-allocated extents.
func (p *posixFile) Preallocate(size int64) {
	if size <= 0 {
		return
	}
	if fi, err := p.f.Stat(); err != nil || fi.Size() >= size {
		return
	}
	p.f.Truncate(size)
}

// Size implements File.
func (p *posixFile) Size() (int64, error) {
	fi, err := p.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Close implements io.Closer.
func (p *posixFile) Close() error { return p.f.Close() }
