package dsi

import (
	"io"
	"sync"
)

// BufferFile is a standalone in-memory File, used by clients as a local
// source/sink for transfers without a full Storage behind it.
type BufferFile struct {
	mu   sync.RWMutex
	data []byte
}

// NewBufferFile wraps data (which is copied) in a File.
func NewBufferFile(data []byte) *BufferFile {
	cp := make([]byte, len(data))
	copy(cp, data)
	return &BufferFile{data: cp}
}

// ReadAt implements io.ReaderAt.
func (b *BufferFile) ReadAt(p []byte, off int64) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if off >= int64(len(b.data)) {
		return 0, io.EOF
	}
	n := copy(p, b.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the buffer as needed. Growth is
// geometric so sequential extension by fixed-size blocks stays linear.
func (b *BufferFile) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(b.data)) {
		if end > int64(cap(b.data)) {
			newCap := 2 * int64(cap(b.data))
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, b.data)
			b.data = grown
		} else {
			b.data = b.data[:end]
		}
	}
	copy(b.data[off:end], p)
	return len(p), nil
}

// Preallocate reserves capacity for size bytes without changing the
// logical length, so a transfer that announced its size up front (SIZE,
// ALLO, or the sender's 150 reply) lands block by block with zero
// grow-copies — the top allocator in the E2 profile.
func (b *BufferFile) Preallocate(size int64) {
	if size <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if size <= int64(cap(b.data)) {
		return
	}
	grown := make([]byte, len(b.data), size)
	copy(grown, b.data)
	b.data = grown
}

// Size implements File.
func (b *BufferFile) Size() (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return int64(len(b.data)), nil
}

// Close implements io.Closer.
func (b *BufferFile) Close() error { return nil }

// Bytes returns a copy of the current contents.
func (b *BufferFile) Bytes() []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	cp := make([]byte, len(b.data))
	copy(cp, b.data)
	return cp
}
