package dsi

import (
	"errors"
	"sync"
)

// ErrInjectedFault is returned by FaultStorage when an armed fault trips.
var ErrInjectedFault = errors.New("dsi: injected storage fault")

// FaultStorage wraps a Storage with one-shot write-fault injection: after
// Arm(threshold), the next file opened or created fails its writes once
// more than threshold bytes have been written through it. It simulates
// receive-side failures (disk errors, node crashes) for the checkpoint-
// restart experiments without touching the network layer.
type FaultStorage struct {
	Storage
	mu        sync.Mutex
	armed     bool
	threshold int64
	trips     int
}

// NewFaultStorage wraps backend.
func NewFaultStorage(backend Storage) *FaultStorage {
	return &FaultStorage{Storage: backend}
}

// Arm schedules a fault on the next opened/created file after threshold
// written bytes.
func (f *FaultStorage) Arm(threshold int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = true
	f.threshold = threshold
}

// Trips reports how many times an injected fault has fired.
func (f *FaultStorage) Trips() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.trips
}

// Create implements Storage.
func (f *FaultStorage) Create(user, p string) (File, error) {
	file, err := f.Storage.Create(user, p)
	if err != nil {
		return nil, err
	}
	return f.maybeWrap(file), nil
}

// Open implements Storage.
func (f *FaultStorage) Open(user, p string) (File, error) {
	file, err := f.Storage.Open(user, p)
	if err != nil {
		return nil, err
	}
	return f.maybeWrap(file), nil
}

func (f *FaultStorage) maybeWrap(file File) File {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.armed {
		return file
	}
	f.armed = false
	return &faultFile{File: file, threshold: f.threshold, owner: f}
}

type faultFile struct {
	File
	mu        sync.Mutex
	written   int64
	threshold int64
	tripped   bool
	owner     *FaultStorage
}

// WriteAt implements io.WriterAt, failing once the threshold is crossed.
func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	f.written += int64(len(p))
	trip := f.written > f.threshold
	first := trip && !f.tripped
	if trip {
		f.tripped = true
	}
	f.mu.Unlock()
	if trip {
		if first {
			f.owner.mu.Lock()
			f.owner.trips++
			f.owner.mu.Unlock()
		}
		return 0, ErrInjectedFault
	}
	return f.File.WriteAt(p, off)
}
