package integration

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/collector"
	"gridftp.dev/instant/internal/pam"
	"gridftp.dev/instant/internal/transfer"
)

// TestDistributedTraceAcrossThreeProcesses is the acceptance scenario for
// cross-process tracing: a hosted third-party transfer between two GCMU
// endpoints in different trust domains, where the service, the source
// server, and the destination server each record into their own obs
// bundle (as three separate processes would). Exporting all three into a
// collector must yield ONE connected trace — the task span tree from the
// service with the source's RETR and the destination's STOR stitched
// under it — plus a renderable critical-path timeline. The activation
// trace (service span + the endpoint MyProxy server's logon span) must
// stitch the same way.
//
// When TRACE_ARTIFACT_DIR is set (CI does this), the stitched trace is
// written there as JSON so failures can be debugged from the artifact.
func TestDistributedTraceAcrossThreeProcesses(t *testing.T) {
	nw := netsim.NewNetwork()
	srcObs, dstObs, svcObs := obs.Nop(), obs.Nop(), obs.Nop()
	srcEP := installLDAP(t, nw, "siteA", 1, nil, func(o *gcmu.Options) {
		o.Obs = srcObs
		o.MarkerInterval = 25 * time.Millisecond
	})
	dstEP := installLDAP(t, nw, "siteB", 1, nil, func(o *gcmu.Options) {
		o.Obs = dstObs
		o.MarkerInterval = 25 * time.Millisecond
	})

	svc := transfer.NewService(nw.Host("globusonline"), transfer.Config{
		RetryDelay: 25 * time.Millisecond,
		Obs:        svcObs,
	})
	for _, ep := range []*gcmu.Endpoint{srcEP, dstEP} {
		if err := svc.RegisterEndpoint(transfer.Endpoint{
			Name: ep.Name, GridFTPAddr: ep.GridFTPAddr, MyProxyAddr: ep.MyProxyAddr,
			Trust: ep.Trust, CADN: ep.SigningCA.DN(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.ActivateWithPassword("siteA", "user0", "pw0"); err != nil {
		t.Fatal(err)
	}
	if err := svc.ActivateWithPassword("siteB", "user0", "pw0"); err != nil {
		t.Fatal(err)
	}

	// Seed the source file over the wire.
	client, err := srcEP.Connect(nw.Host("laptop"), "user0", pam.PasswordConv("pw0"))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if _, err := client.Put("/trace.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	client.Close()

	task, err := svc.Submit("user0", "siteA", "/trace.bin", "siteB", "/trace.bin")
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.Wait(task.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != transfer.TaskSucceeded {
		t.Fatalf("task %s: %s (%s)", done.ID, done.Status, done.Error)
	}

	// Export each "process" into the collector, exactly as three daemons
	// pushing to /v1/spans (or being scraped via /debug/spans) would.
	c := collector.New()
	c.Add(collector.FromInfos("transfer-service", svcObs.Tracer().Spans())...)
	c.Add(collector.FromInfos("gridftp-siteA", srcObs.Tracer().Spans())...)
	c.Add(collector.FromInfos("gridftp-siteB", dstObs.Tracer().Spans())...)

	var taskTrace, taskSpanID string
	for _, si := range svcObs.Tracer().Spans() {
		if si.Name == "task" {
			taskTrace, taskSpanID = si.TraceID, si.SpanID
		}
	}
	if taskTrace == "" {
		t.Fatal("service recorded no task span")
	}
	tr := c.Stitch(taskTrace)
	if tr == nil {
		t.Fatal("collector has no spans for the task trace")
	}
	writeTraceArtifact(t, tr)

	// The tentpole assertion: one connected trace across three processes.
	if !tr.Connected() {
		t.Fatalf("task trace not connected: %d roots, %d orphans\n%s",
			len(tr.Roots), len(tr.Orphans), tr.Timeline())
	}
	root := tr.Roots[0]
	if root.Name != "task" || root.Process != "transfer-service" {
		t.Fatalf("root is %s@%s, want task@transfer-service", root.Name, root.Process)
	}
	wantSpans := map[string]string{ // name -> process
		"gridftp.retr": "gridftp-siteA",
		"gridftp.stor": "gridftp-siteB",
	}
	for name, proc := range wantSpans {
		found := false
		for _, s := range tr.Spans {
			if s.Name == name {
				found = true
				if s.Process != proc {
					t.Errorf("%s recorded by %s, want %s", name, s.Process, proc)
				}
				if s.ParentSpanID != taskSpanID {
					t.Errorf("%s parent %s, want the task span %s", name, s.ParentSpanID, taskSpanID)
				}
				if s.TraceID != taskTrace {
					t.Errorf("%s trace %s, want %s", name, s.TraceID, taskTrace)
				}
			}
		}
		if !found {
			t.Errorf("trace is missing %s:\n%s", name, tr.Timeline())
		}
	}
	for _, phase := range []string{"activate", "control", "data"} {
		found := false
		for _, ch := range tr.Children(taskSpanID) {
			if ch.Name == phase {
				found = true
			}
		}
		if !found {
			t.Errorf("task span missing %q child", phase)
		}
	}

	// The timeline renders with critical-path annotations.
	tl := tr.Timeline()
	if !strings.Contains(tl, "*") {
		t.Errorf("timeline has no critical-path markers:\n%s", tl)
	}
	for _, proc := range []string{"transfer-service", "gridftp-siteA", "gridftp-siteB"} {
		if !strings.Contains(tl, proc) {
			t.Errorf("timeline missing process %s:\n%s", proc, tl)
		}
	}
	cp := tr.CriticalPath()
	if len(cp) < 2 || cp[0].Name != "task" {
		t.Errorf("critical path %v should descend from the task root", cp)
	}

	// The activation trace stitches the same way: the service's
	// activation span is the root, the MyProxy server's logon span (a
	// different process) is its child.
	var actTrace, actSpanID string
	for _, si := range svcObs.Tracer().Spans() {
		if si.Name == "activation" && si.Attrs["endpoint"] == "siteA" {
			actTrace, actSpanID = si.TraceID, si.SpanID
		}
	}
	if actTrace == "" {
		t.Fatal("service recorded no activation span for siteA")
	}
	atr := c.Stitch(actTrace)
	if !atr.Connected() {
		t.Fatalf("activation trace not connected: %d roots, %d orphans",
			len(atr.Roots), len(atr.Orphans))
	}
	logonOK := false
	for _, s := range atr.Spans {
		if s.Name == "myproxy.logon" && s.Process == "gridftp-siteA" && s.ParentSpanID == actSpanID {
			logonOK = true
		}
	}
	if !logonOK {
		t.Errorf("MyProxy logon span did not join the activation trace:\n%s", atr.Timeline())
	}
}

// writeTraceArtifact dumps the stitched trace as JSON into
// TRACE_ARTIFACT_DIR (when set) so CI can attach it to failed runs.
func writeTraceArtifact(t *testing.T, tr *collector.Trace) {
	t.Helper()
	dir := os.Getenv("TRACE_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("trace artifact: %v", err)
		return
	}
	doc, err := json.MarshalIndent(map[string]any{
		"id":            tr.ID,
		"connected":     tr.Connected(),
		"spans":         tr.Spans,
		"roots":         tr.Roots,
		"orphans":       tr.Orphans,
		"critical_path": tr.CriticalPath(),
		"gaps":          tr.Gaps(),
		"timeline":      tr.Timeline(),
	}, "", "  ")
	if err != nil {
		t.Logf("trace artifact: %v", err)
		return
	}
	path := filepath.Join(dir, "stitched-trace.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Logf("trace artifact: %v", err)
		return
	}
	t.Logf("stitched trace written to %s", path)
}
