// Package integration holds cross-package scenario tests that exercise
// the full stack in combinations the per-package tests do not: real-disk
// (POSIX) storage behind GridFTP, archival staging latency, multi-user
// concurrency, and mixed identity backends.
package integration

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
	"gridftp.dev/instant/internal/usagestats"
)

// installLDAP builds a GCMU endpoint with an LDAP stack and n users
// (user0..userN with password "pw<i>").
func installLDAP(t *testing.T, nw *netsim.Network, name string, users int, storage dsi.Storage, mut ...func(*gcmu.Options)) *gcmu.Endpoint {
	t.Helper()
	dir := pam.NewLDAPDirectory("dc=" + name)
	accounts := pam.NewAccountDB()
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("user%d", i)
		dir.AddEntry(u, fmt.Sprintf("pw%d", i))
		accounts.Add(pam.Account{Name: u})
	}
	stack := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	opts := gcmu.Options{
		Name: name, Host: nw.Host(name), Auth: stack, Accounts: accounts, Storage: storage,
	}
	for _, m := range mut {
		m(&opts)
	}
	ep, err := gcmu.Install(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ep.Close)
	return ep
}

func TestPosixBackedEndpoint(t *testing.T) {
	// Real files on real disk through the whole protocol stack.
	nw := netsim.NewNetwork()
	posix, err := dsi.NewPosixStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := posix.AddUser(fmt.Sprintf("user%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ep := installLDAP(t, nw, "diskside", 2, posix)
	client, err := ep.Connect(nw.Host("laptop"), "user0", pam.PasswordConv("pw0"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	payload := bytes.Repeat([]byte("on-disk"), 100000)
	if err := client.Mkdir("/results"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Put("/results/run.out", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	// Verify through the DSI (i.e. the actual file on disk).
	f, err := posix.Open("user0", "/results/run.out")
	if err != nil {
		t.Fatal(err)
	}
	got, err := dsi.ReadAll(f)
	f.Close()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("disk content mismatch (%d bytes, err=%v)", len(got), err)
	}
	// And back out over the wire.
	dst := dsi.NewBufferFile(nil)
	if _, err := client.Get("/results/run.out", dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("round-trip mismatch")
	}
}

func TestArchivalColdReadPaysStageLatency(t *testing.T) {
	nw := netsim.NewNetwork()
	mem := dsi.NewMemStorage()
	mem.AddUser("user0")
	// Pre-populate the backend directly (file exists but is "on tape").
	f, _ := mem.Create("user0", "/tape.bin")
	dsi.WriteAll(f, bytes.Repeat([]byte("x"), 4096))
	f.Close()
	arch := dsi.NewArchivalStorage(mem, 150*time.Millisecond, time.Minute)
	ep := installLDAP(t, nw, "archive", 1, arch)
	client, err := ep.Connect(nw.Host("laptop"), "user0", pam.PasswordConv("pw0"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	if _, err := client.Get("/tape.bin", dsi.NewBufferFile(nil)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 140*time.Millisecond {
		t.Fatalf("cold read took %v; stage latency not paid", d)
	}
	// Second read is hot.
	start = time.Now()
	if _, err := client.Get("/tape.bin", dsi.NewBufferFile(nil)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("warm read took %v; should be staged", d)
	}
}

func TestManyUsersConcurrently(t *testing.T) {
	// Several users hammer one endpoint at once; sandboxes must hold.
	const users = 6
	nw := netsim.NewNetwork()
	ep := installLDAP(t, nw, "shared", users, nil)

	var wg sync.WaitGroup
	errs := make(chan error, users)
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u := fmt.Sprintf("user%d", i)
			client, err := ep.Connect(nw.Host(fmt.Sprintf("laptop%d", i)), u, pam.PasswordConv(fmt.Sprintf("pw%d", i)))
			if err != nil {
				errs <- fmt.Errorf("%s connect: %w", u, err)
				return
			}
			defer client.Close()
			mine := bytes.Repeat([]byte{byte(i)}, 50000)
			for round := 0; round < 3; round++ {
				if _, err := client.Put("/mine.bin", dsi.NewBufferFile(mine)); err != nil {
					errs <- fmt.Errorf("%s put: %w", u, err)
					return
				}
				dst := dsi.NewBufferFile(nil)
				if _, err := client.Get("/mine.bin", dst); err != nil {
					errs <- fmt.Errorf("%s get: %w", u, err)
					return
				}
				if !bytes.Equal(dst.Bytes(), mine) {
					errs <- fmt.Errorf("%s: cross-user data bleed", u)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestUsageStatsFlowThroughServer(t *testing.T) {
	nw := netsim.NewNetwork()
	collector := usagestats.NewCollector()
	ep := installLDAP(t, nw, "metered", 1, nil, func(o *gcmu.Options) {
		o.Usage = collector
	})
	client, err := ep.Connect(nw.Host("laptop"), "user0", pam.PasswordConv("pw0"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	payload := bytes.Repeat([]byte("y"), 12345)
	for i := 0; i < 4; i++ {
		if _, err := client.Put(fmt.Sprintf("/f%d", i), dsi.NewBufferFile(payload)); err != nil {
			t.Fatal(err)
		}
	}
	dst := dsi.NewBufferFile(nil)
	if _, err := client.Get("/f0", dst); err != nil {
		t.Fatal(err)
	}
	transfers, bytesMoved := collector.Totals()
	if transfers != 5 {
		t.Fatalf("collector saw %d transfers, want 5", transfers)
	}
	if bytesMoved != 5*12345 {
		t.Fatalf("collector saw %d bytes, want %d", bytesMoved, 5*12345)
	}
	if collector.EndpointCount() != 1 {
		t.Fatalf("endpoints %d", collector.EndpointCount())
	}
}

func TestOTPBackedEndpoint(t *testing.T) {
	// GCMU over an OTP-only PAM stack: each logon consumes a fresh code.
	nw := netsim.NewNetwork()
	otp := pam.NewOTPAuthority()
	otp.Enroll("user0", []byte("hw-token-seed"))
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "user0"})
	stack := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.OTPModule{Authority: otp}})
	ep, err := gcmu.Install(gcmu.Options{
		Name: "otpsite", Host: nw.Host("otpsite"), Auth: stack, Accounts: accounts,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	code, err := otp.NextCode("user0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := ep.Connect(nw.Host("laptop"), "user0", pam.PasswordConv(code))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Put("/x", dsi.NewBufferFile([]byte("ok"))); err != nil {
		t.Fatal(err)
	}
	// Replaying the same code must fail.
	if _, err := ep.Logon(nw.Host("laptop"), "user0", pam.PasswordConv(code)); err == nil {
		t.Fatal("OTP replay produced a credential")
	}
}

func TestWanShapedEndToEnd(t *testing.T) {
	// Whole-stack sanity under a shaped WAN: GCMU endpoint, 30ms RTT,
	// parallel transfer completes and respects the bandwidth cap.
	nw := netsim.NewNetwork()
	nw.SetDefaultLink(netsim.LinkParams{
		Bandwidth: 10e6, RTT: 30 * time.Millisecond, StreamWindow: 1 << 20,
	})
	ep := installLDAP(t, nw, "far", 1, nil)
	client, err := ep.Connect(nw.Host("laptop"), "user0", pam.PasswordConv("pw0"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("wan"), 400000) // 1.2 MB
	start := time.Now()
	if _, err := client.Put("/wan.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 1.2 MB at 10 MB/s floor is 120 ms; with RTTs it must exceed that,
	// and it cannot beat the physical minimum.
	if elapsed < 100*time.Millisecond {
		t.Fatalf("transfer took %v; faster than the link allows", elapsed)
	}
	dst := dsi.NewBufferFile(nil)
	if _, err := client.Get("/wan.bin", dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("content mismatch over shaped WAN")
	}
}
