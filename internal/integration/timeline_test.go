package integration

// End-to-end flight-recorder scenario: a hosted third-party transfer
// through two GCMU endpoints with a tsdb recorder installed as the obs
// bundle's series sink, asserting the task's PERF-marker-driven
// throughput timeline comes out non-empty and monotone in time — the
// contract /debug/timeseries and the benchreport dashboard rely on.

import (
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/tsdb"
	"gridftp.dev/instant/internal/transfer"
)

func TestTaskThroughputTimelineEndToEnd(t *testing.T) {
	o := obs.Nop()
	rec := tsdb.New(tsdb.Options{})
	o.Series = rec

	nw := netsim.NewNetwork()
	// Shape the WAN so the 1 MiB payload takes a few hundred ms: the
	// 10ms marker interval then yields many aggregate reports, and the
	// throughput series (computed from deltas between reports) is
	// guaranteed at least one point even on a fast machine.
	nw.SetDefaultLink(netsim.LinkParams{
		Bandwidth: 2e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 20,
	})
	mem := map[string]*dsi.MemStorage{}
	endpoints := map[string]*gcmu.Endpoint{}
	for _, name := range []string{"siteA", "siteB"} {
		m := dsi.NewMemStorage()
		m.AddUser("user0")
		mem[name] = m
		// Fast markers so even a quick test transfer produces several
		// timeline samples.
		endpoints[name] = installLDAP(t, nw, name, 1, m, func(op *gcmu.Options) {
			op.MarkerInterval = 10 * time.Millisecond
			op.Obs = o
		})
	}

	svc := transfer.NewService(nw.Host("globusonline"), transfer.Config{Obs: o})
	for _, name := range []string{"siteA", "siteB"} {
		ep := endpoints[name]
		if err := svc.RegisterEndpoint(transfer.Endpoint{
			Name:        ep.Name,
			GridFTPAddr: ep.GridFTPAddr,
			MyProxyAddr: ep.MyProxyAddr,
			Trust:       ep.Trust,
			CADN:        ep.SigningCA.DN(),
		}); err != nil {
			t.Fatal(err)
		}
	}

	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	f, err := mem["siteA"].Create("user0", "/flight.bin")
	if err != nil {
		t.Fatal(err)
	}
	if err := dsi.WriteAll(f, payload); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, name := range []string{"siteA", "siteB"} {
		if err := svc.ActivateWithPassword(name, "user0", "pw0"); err != nil {
			t.Fatal(err)
		}
	}
	task, err := svc.Submit("user0", "siteA", "/flight.bin", "siteB", "/flight.bin")
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.Wait(task.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != transfer.TaskSucceeded {
		t.Fatalf("task %s: %s (%s)", done.ID, done.Status, done.Error)
	}

	// The recorder holds the task's byte and throughput timelines, fed
	// from the scheduler's PERF aggregation as markers arrived.
	prefix := "transfer.task." + done.ID
	bytesSeries := rec.Query(prefix+".bytes", time.Time{}, 0)
	if len(bytesSeries) == 0 {
		t.Fatalf("no %s.bytes timeline; recorded series: %v", prefix, rec.SeriesNames())
	}
	last := bytesSeries[len(bytesSeries)-1]
	if last.V != float64(len(payload)) {
		t.Errorf("final bytes sample = %v, want %d", last.V, len(payload))
	}
	// Timestamps strictly increase and values (cumulative bytes) never
	// decrease — the monotone-timeline contract.
	for i := 1; i < len(bytesSeries); i++ {
		if !bytesSeries[i].T.After(bytesSeries[i-1].T) {
			t.Fatalf("bytes timeline timestamps not strictly increasing at %d: %v", i, bytesSeries)
		}
		if bytesSeries[i].V < bytesSeries[i-1].V {
			t.Fatalf("cumulative bytes decreased at %d: %v", i, bytesSeries)
		}
	}

	// A throughput timeline exists once two aggregate reports have been
	// seen; every sample is non-negative with increasing timestamps.
	thr := rec.Query(prefix+".throughput", time.Time{}, 0)
	if len(thr) == 0 {
		t.Fatalf("no %s.throughput timeline; recorded series: %v", prefix, rec.SeriesNames())
	}
	for i, p := range thr {
		if p.V < 0 {
			t.Errorf("throughput sample %d negative: %v", i, p)
		}
		if i > 0 && !p.T.After(thr[i-1].T) {
			t.Fatalf("throughput timestamps not strictly increasing at %d: %v", i, thr)
		}
	}

	// Per-worker timelines carry the same task prefix.
	workers := 0
	for _, name := range rec.SeriesNames() {
		if strings.HasPrefix(name, prefix+".worker.") {
			workers++
		}
	}
	if workers == 0 {
		t.Errorf("no per-worker throughput series recorded: %v", rec.SeriesNames())
	}
}
