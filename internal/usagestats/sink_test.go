package usagestats

import (
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
)

func record(endpoint string, bytes int64) TransferRecord {
	return TransferRecord{
		Endpoint: endpoint, User: "alice", Op: "STOR", Path: "/x.bin",
		Bytes: bytes, Duration: 100 * time.Millisecond, When: time.Now(),
	}
}

// TestMultiSinkDropsTypedNil pins the typed-nil regression: a nil
// *Collector assigned into an optional Sink config field passes a bare
// != nil check and panics on Report. MultiSink must normalize it away.
func TestMultiSinkDropsTypedNil(t *testing.T) {
	var c *Collector // typed nil
	if s := MultiSink(c); s != nil {
		t.Fatalf("MultiSink(typed nil) = %#v, want nil", s)
	}
	if s := MultiSink(nil, c, nil); s != nil {
		t.Fatalf("MultiSink(nils only) = %#v, want nil", s)
	}

	live := NewCollector()
	s := MultiSink(c, live, nil)
	if s == nil {
		t.Fatal("MultiSink dropped the live sink")
	}
	s.Report(record("siteA", 10)) // must not panic on the dropped nils
	if n, _ := live.Totals(); n != 1 {
		t.Fatalf("live collector saw %d transfers, want 1", n)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	reg := obs.NewRegistry()
	s := MultiSink(a, MetricsSink(reg), b)
	s.Report(record("siteA", 500))
	s.Report(record("siteB", 300))

	for name, c := range map[string]*Collector{"a": a, "b": b} {
		if n, bytes := c.Totals(); n != 2 || bytes != 800 {
			t.Errorf("collector %s: %d transfers / %d bytes, want 2 / 800", name, n, bytes)
		}
	}
	if v := reg.Counter("usage.transfers_total").Value(); v != 2 {
		t.Errorf("usage.transfers_total = %d, want 2", v)
	}
	if v := reg.Counter("usage.bytes_total").Value(); v != 800 {
		t.Errorf("usage.bytes_total = %d, want 800", v)
	}
	if v := reg.Counter(obs.Name("usage.endpoint.bytes", "siteA")).Value(); v != 500 {
		t.Errorf("per-endpoint bytes = %d, want 500", v)
	}
	if n := reg.Histogram("usage.transfer_seconds", obs.DefaultDurationBuckets).Count(); n != 2 {
		t.Errorf("duration histogram count = %d, want 2", n)
	}
}

func TestMetricsSinkNilRegistry(t *testing.T) {
	if s := MetricsSink(nil); s != nil {
		t.Fatalf("MetricsSink(nil) = %#v, want nil", s)
	}
}
