package usagestats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func day(d int) time.Time {
	return time.Date(2012, 2, d, 12, 0, 0, 0, time.UTC)
}

func TestCollectorAggregatesByDay(t *testing.T) {
	c := NewCollector()
	c.Report(TransferRecord{Endpoint: "a", Op: "RETR", Bytes: 100, When: day(1)})
	c.Report(TransferRecord{Endpoint: "b", Op: "STOR", Bytes: 200, When: day(1)})
	c.Report(TransferRecord{Endpoint: "a", Op: "RETR", Bytes: 50, When: day(2)})

	days := c.Days()
	if len(days) != 2 {
		t.Fatalf("days %v", days)
	}
	if days[0].Day != "2012-02-01" || days[0].Transfers != 2 || days[0].Bytes != 300 {
		t.Fatalf("day0 %+v", days[0])
	}
	if len(days[0].Endpoints) != 2 || len(days[1].Endpoints) != 1 {
		t.Fatalf("endpoint sets %+v", days)
	}
	tr, by := c.Totals()
	if tr != 3 || by != 350 {
		t.Fatalf("totals %d %d", tr, by)
	}
	if c.EndpointCount() != 2 {
		t.Fatalf("endpoints %d", c.EndpointCount())
	}
}

func TestTopEndpoints(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 5; i++ {
		c.Report(TransferRecord{Endpoint: "busy", When: day(1)})
	}
	c.Report(TransferRecord{Endpoint: "idle", When: day(1)})
	top := c.TopEndpoints(1)
	if len(top) != 1 || top[0] != "busy" {
		t.Fatalf("top %v", top)
	}
	if got := c.TopEndpoints(10); len(got) != 2 {
		t.Fatalf("top overflow %v", got)
	}
}

func TestFormatTable(t *testing.T) {
	c := NewCollector()
	c.Report(TransferRecord{Endpoint: "a", Bytes: 42, When: day(3)})
	table := c.FormatTable()
	if !strings.Contains(table, "2012-02-03") || !strings.Contains(table, "42") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestCollectorConcurrentReports(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Report(TransferRecord{Endpoint: "e", Bytes: 1, When: day(1 + w%3)})
			}
		}(w)
	}
	wg.Wait()
	tr, by := c.Totals()
	if tr != 4000 || by != 4000 {
		t.Fatalf("totals %d %d", tr, by)
	}
}
