// Package usagestats implements the opt-in usage reporting stream behind
// the paper's Figure 1 ("more than 10 million transfers totaling
// approximately half a petabyte of data every day", aggregated from
// servers that choose to enable reporting). Servers post per-transfer
// records to a Collector; the aggregator reduces them to per-day series of
// transfer counts and bytes moved, which is exactly the chart Fig 1 plots.
package usagestats

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// TransferRecord is one completed transfer as reported by a server.
type TransferRecord struct {
	Endpoint string
	User     string
	Op       string // RETR or STOR
	Path     string
	Bytes    int64
	Duration time.Duration
	When     time.Time
}

// Sink receives per-transfer usage reports. Collector is the canonical
// aggregating sink; MetricsSink bridges records into an obs metrics
// registry, and MultiSink fans one report out to several sinks — which is
// how a live GridFTP server feeds both the fleet collector and its own
// metrics registry from a single Report call.
type Sink interface {
	Report(TransferRecord)
}

// MultiSink returns a sink that forwards each record to every non-nil
// sink in order. It returns nil when no usable sinks are given, so the
// result can be assigned directly to an optional config field. Typed nils
// (a nil *Collector stored in a Sink variable) are dropped too, which
// makes MultiSink(s) the canonical way to normalize an optional sink.
func MultiSink(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if !isNilSink(s) {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Report(r TransferRecord) {
	for _, s := range m {
		s.Report(r)
	}
}

// isNilSink reports whether s is nil or an interface wrapping a nil
// pointer — calling Report on either would panic.
func isNilSink(s Sink) bool {
	if s == nil {
		return true
	}
	v := reflect.ValueOf(s)
	switch v.Kind() {
	case reflect.Ptr, reflect.Map, reflect.Func, reflect.Chan, reflect.Slice:
		return v.IsNil()
	}
	return false
}

// MetricsSink adapts an obs metrics registry into a Sink: each record
// bumps fleet-wide transfer/byte counters, a per-endpoint counter, and a
// transfer-duration histogram.
func MetricsSink(reg *obs.Registry) Sink {
	if reg == nil {
		return nil
	}
	return &metricsSink{reg: reg}
}

type metricsSink struct {
	reg *obs.Registry
}

func (m *metricsSink) Report(r TransferRecord) {
	m.reg.Counter("usage.transfers_total").Inc()
	m.reg.Counter("usage.bytes_total").Add(r.Bytes)
	if r.Endpoint != "" {
		m.reg.Counter(obs.Name("usage.endpoint.transfers", r.Endpoint)).Inc()
		m.reg.Counter(obs.Name("usage.endpoint.bytes", r.Endpoint)).Add(r.Bytes)
	}
	m.reg.Histogram("usage.transfer_seconds", obs.DefaultDurationBuckets).
		Observe(r.Duration.Seconds())
}

// Collector receives usage reports. It is safe for concurrent use by many
// servers.
type Collector struct {
	mu         sync.Mutex
	byDay      map[string]*DayStats
	byEndpoint map[string]int64
}

// DayStats aggregates one day of fleet activity — one point of Fig 1.
type DayStats struct {
	Day       string // "2012-02-01"
	Transfers int64
	Bytes     int64
	Endpoints map[string]bool
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		byDay:      make(map[string]*DayStats),
		byEndpoint: make(map[string]int64),
	}
}

// Report records one transfer.
func (c *Collector) Report(r TransferRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	day := r.When.UTC().Format("2006-01-02")
	ds, ok := c.byDay[day]
	if !ok {
		ds = &DayStats{Day: day, Endpoints: make(map[string]bool)}
		c.byDay[day] = ds
	}
	ds.Transfers++
	ds.Bytes += r.Bytes
	ds.Endpoints[r.Endpoint] = true
	c.byEndpoint[r.Endpoint]++
}

// ReportBatch records a server's daily summary in one call — the form
// real fleet reporting takes (servers batch their counters rather than
// streaming every transfer).
func (c *Collector) ReportBatch(endpoint string, when time.Time, transfers, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	day := when.UTC().Format("2006-01-02")
	ds, ok := c.byDay[day]
	if !ok {
		ds = &DayStats{Day: day, Endpoints: make(map[string]bool)}
		c.byDay[day] = ds
	}
	ds.Transfers += transfers
	ds.Bytes += bytes
	ds.Endpoints[endpoint] = true
	c.byEndpoint[endpoint] += transfers
}

// Days returns the per-day aggregates in chronological order.
func (c *Collector) Days() []DayStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DayStats, 0, len(c.byDay))
	for _, ds := range c.byDay {
		cp := *ds
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out
}

// Totals returns fleet-wide transfer count and bytes.
func (c *Collector) Totals() (transfers int64, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ds := range c.byDay {
		transfers += ds.Transfers
		bytes += ds.Bytes
	}
	return
}

// EndpointCount returns how many distinct endpoints have reported.
func (c *Collector) EndpointCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byEndpoint)
}

// TopEndpoints returns the n busiest endpoints by transfer count.
func (c *Collector) TopEndpoints(n int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	type ec struct {
		name  string
		count int64
	}
	all := make([]ec, 0, len(c.byEndpoint))
	for name, count := range c.byEndpoint {
		all = append(all, ec{name, count})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].name < all[j].name
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].name
	}
	return out
}

// FormatTable renders the Fig 1-style per-day series as an aligned text
// table (day, transfers, bytes, active endpoints).
func (c *Collector) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %16s %10s\n", "day", "transfers", "bytes", "endpoints")
	for _, ds := range c.Days() {
		fmt.Fprintf(&b, "%-12s %14d %16d %10d\n", ds.Day, ds.Transfers, ds.Bytes, len(ds.Endpoints))
	}
	return b.String()
}
