package transfer

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
)

// TestRecursiveDirectoryTransfer submits a directory: the service walks
// the tree, recreates it at the destination, and moves every file —
// Globus Online's recursive transfer behaviour.
func TestRecursiveDirectoryTransfer(t *testing.T) {
	w := buildWorld(t, Config{}, false)
	activateBoth(t, w)

	// Build a small tree on the source.
	mk := func(path string, content []byte) {
		f, err := w.epA.Storage.Create("alice", path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		dsi.WriteAll(f, content)
		f.Close()
	}
	for _, d := range []string{"/run", "/run/raw", "/run/raw/day1", "/run/plots"} {
		if err := w.epA.Storage.Mkdir("alice", d); err != nil {
			t.Fatal(err)
		}
	}
	contents := map[string][]byte{
		"/run/readme.txt":        []byte("results of run 42"),
		"/run/raw/day1/a.dat":    pattern(200000),
		"/run/raw/day1/b.dat":    pattern(100001),
		"/run/plots/energy.png":  pattern(50000),
		"/run/plots/spectra.png": pattern(70007),
	}
	for p, c := range contents {
		mk(p, c)
	}

	task, err := w.svc.Submit("alice", "siteA", "/run", "siteB", "/run-copy")
	if err != nil {
		t.Fatal(err)
	}
	done, err := w.svc.Wait(task.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskSucceeded {
		t.Fatalf("task: %s (%s)", done.Status, done.Error)
	}
	if done.TotalFiles != len(contents) || done.CompletedFiles != len(contents) {
		t.Fatalf("files %d/%d, want %d", done.CompletedFiles, done.TotalFiles, len(contents))
	}

	for p, want := range contents {
		dstPath := "/run-copy" + p[len("/run"):]
		f, err := w.epB.Storage.Open("alice", dstPath)
		if err != nil {
			t.Fatalf("%s missing at destination: %v", dstPath, err)
		}
		got, _ := dsi.ReadAll(f)
		f.Close()
		if !bytes.Equal(got, want) {
			t.Fatalf("%s content mismatch", dstPath)
		}
	}
}

// TestDirectoryTransferResumesAtFailedFile injects a fault partway
// through the file list: the retry must resume from the failed file, not
// re-send the completed ones.
func TestDirectoryTransferResumesAtFailedFile(t *testing.T) {
	w := buildWorld(t, Config{RetryDelay: 10 * time.Millisecond}, false)
	activateBoth(t, w)
	if err := w.epA.Storage.Mkdir("alice", "/batch"); err != nil {
		t.Fatal(err)
	}
	const n = 6
	const fileSize = 300000
	for i := 0; i < n; i++ {
		f, err := w.epA.Storage.Create("alice", fmt.Sprintf("/batch/f%d.bin", i))
		if err != nil {
			t.Fatal(err)
		}
		dsi.WriteAll(f, pattern(fileSize))
		f.Close()
	}
	// Fault after roughly 2.5 files' worth of received bytes. FaultStorage
	// arms per-file (it wraps the next opened file), so arm mid-stream via
	// a watcher that arms once a couple of files have landed.
	w.faultB.Arm(fileSize / 2)

	task, err := w.svc.Submit("alice", "siteA", "/batch", "siteB", "/batch")
	if err != nil {
		t.Fatal(err)
	}
	done, err := w.svc.Wait(task.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskSucceeded {
		t.Fatalf("task: %s (%s)", done.Status, done.Error)
	}
	if done.Attempts < 2 {
		t.Fatalf("fault did not trigger a retry (attempts=%d)", done.Attempts)
	}
	if done.CompletedFiles != n {
		t.Fatalf("completed %d of %d", done.CompletedFiles, n)
	}
	// Checkpointing must have kept total bytes well under attempts×total.
	total := int64(n * fileSize)
	if done.BytesTransferred > total+total/2 {
		t.Fatalf("resume ineffective: moved %d of %d total", done.BytesTransferred, total)
	}
	for i := 0; i < n; i++ {
		f, err := w.epB.Storage.Open("alice", fmt.Sprintf("/batch/f%d.bin", i))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := dsi.ReadAll(f)
		f.Close()
		if !bytes.Equal(got, pattern(fileSize)) {
			t.Fatalf("file %d mismatch", i)
		}
	}
}
