package transfer

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/oauth"
	"gridftp.dev/instant/internal/pam"
)

// world wires two GCMU endpoints (separate CAs) plus the hosted service.
type world struct {
	nw     *netsim.Network
	svc    *Service
	epA    *gcmu.Endpoint
	epB    *gcmu.Endpoint
	faultB *dsi.FaultStorage
}

func buildWorld(t *testing.T, cfg Config, withOAuth bool) *world {
	t.Helper()
	nw := netsim.NewNetwork()
	mk := func(name, password string, oauthOn bool) (*gcmu.Endpoint, *dsi.FaultStorage) {
		dir := pam.NewLDAPDirectory("dc=" + name)
		dir.AddEntry("alice", password)
		accounts := pam.NewAccountDB()
		accounts.Add(pam.Account{Name: "alice"})
		stack := pam.NewStack("myproxy", accounts,
			pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
		mem := dsi.NewMemStorage()
		mem.AddUser("alice")
		faulty := dsi.NewFaultStorage(mem)
		ep, err := gcmu.Install(gcmu.Options{
			Name:           name,
			Host:           nw.Host(name),
			Auth:           stack,
			Accounts:       accounts,
			Storage:        faulty,
			WithOAuth:      oauthOn,
			MarkerInterval: 20 * time.Millisecond,
			DataTimeout:    2 * time.Second,
			Obs:            cfg.Obs,
			Streams:        cfg.Streams,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ep.Close)
		return ep, faulty
	}
	epA, _ := mk("siteA", "pwA", withOAuth)
	epB, faultB := mk("siteB", "pwB", withOAuth)

	svc := NewService(nw.Host("globusonline"), cfg)
	for _, ep := range []*gcmu.Endpoint{epA, epB} {
		rec := Endpoint{
			Name:        ep.Name,
			GridFTPAddr: ep.GridFTPAddr,
			MyProxyAddr: ep.MyProxyAddr,
			OAuthAddr:   ep.OAuthAddr,
			Trust:       ep.Trust,
			CADN:        ep.SigningCA.DN(),
		}
		if err := svc.RegisterEndpoint(rec); err != nil {
			t.Fatal(err)
		}
		if ep.OAuth != nil {
			ep.OAuth.RegisterClient(OAuthClient)
		}
	}
	return &world{nw: nw, svc: svc, epA: epA, epB: epB, faultB: faultB}
}

func (w *world) putSrc(t *testing.T, path string, content []byte) {
	t.Helper()
	f, err := w.epA.Storage.Create("alice", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dsi.WriteAll(f, content); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func (w *world) readDst(t *testing.T, path string) []byte {
	t.Helper()
	f, err := w.epB.Storage.Open("alice", path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := dsi.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func activateBoth(t *testing.T, w *world) {
	t.Helper()
	if err := w.svc.ActivateWithPassword("siteA", "alice", "pwA"); err != nil {
		t.Fatal(err)
	}
	if err := w.svc.ActivateWithPassword("siteB", "alice", "pwB"); err != nil {
		t.Fatal(err)
	}
}

func TestHostedCrossCATransfer(t *testing.T) {
	// The flagship scenario: two GCMU endpoints with unrelated CAs, all
	// transfers third-party — only possible because the service applies
	// DCSC automatically (§VIII).
	w := buildWorld(t, Config{}, false)
	activateBoth(t, w)
	payload := pattern(2 << 20)
	w.putSrc(t, "/data.bin", payload)

	task, err := w.svc.Submit("alice", "siteA", "/data.bin", "siteB", "/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	done, err := w.svc.Wait(task.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskSucceeded {
		t.Fatalf("task %s: %s (%s)", done.ID, done.Status, done.Error)
	}
	if done.Parallelism != 2 {
		t.Fatalf("autotune picked %d for a 2 MiB file, want 2", done.Parallelism)
	}
	if !bytes.Equal(w.readDst(t, "/data.bin"), payload) {
		t.Fatal("content mismatch")
	}
}

func TestSubmitRequiresActivation(t *testing.T) {
	w := buildWorld(t, Config{}, false)
	if _, err := w.svc.Submit("alice", "siteA", "/x", "siteB", "/x"); err == nil {
		t.Fatal("submit without activation accepted")
	}
	if err := w.svc.ActivateWithPassword("siteA", "alice", "wrong"); err == nil {
		t.Fatal("activation with wrong password accepted")
	}
	if _, err := w.svc.Submit("alice", "ghost", "/x", "siteB", "/x"); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
}

func TestCheckpointRestartMovesOnlyMissingBytes(t *testing.T) {
	w := buildWorld(t, Config{RetryDelay: 10 * time.Millisecond}, false)
	activateBoth(t, w)
	payload := pattern(4 << 20)
	w.putSrc(t, "/big.bin", payload)
	// Slow the inter-site link so markers fire before the fault.
	w.nw.SetLink("siteA", "siteB", netsim.LinkParams{
		Bandwidth: 30e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22,
	})
	w.faultB.Arm(1 << 20) // fail after ~25% received

	task, err := w.svc.Submit("alice", "siteA", "/big.bin", "siteB", "/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	done, err := w.svc.Wait(task.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskSucceeded {
		t.Fatalf("task: %s (%s)", done.Status, done.Error)
	}
	if done.Attempts < 2 {
		t.Fatalf("fault did not trigger a retry (attempts=%d)", done.Attempts)
	}
	if w.faultB.Trips() == 0 {
		t.Fatal("fault never fired")
	}
	// With checkpointing, total bytes moved stays well under 2x the file.
	if done.BytesTransferred > int64(len(payload))*3/2 {
		t.Fatalf("checkpointing ineffective: moved %d of %d-byte file", done.BytesTransferred, len(payload))
	}
	if !bytes.Equal(w.readDst(t, "/big.bin"), payload) {
		t.Fatal("content mismatch after recovery")
	}
	t.Logf("attempts=%d moved=%d file=%d", done.Attempts, done.BytesTransferred, len(payload))
}

func TestRetryExhaustionFailsTask(t *testing.T) {
	w := buildWorld(t, Config{RetryLimit: 2, RetryDelay: 5 * time.Millisecond}, false)
	activateBoth(t, w)
	w.putSrc(t, "/f.bin", pattern(1<<20))
	w.faultB.Arm(1000)
	// Re-arm on every attempt by arming a huge number of trips: the
	// FaultStorage is one-shot, so arm again from a watcher.
	go func() {
		for i := 0; i < 10; i++ {
			time.Sleep(20 * time.Millisecond)
			w.faultB.Arm(1000)
		}
	}()
	task, _ := w.svc.Submit("alice", "siteA", "/f.bin", "siteB", "/f.bin")
	done, err := w.svc.Wait(task.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskFailed && done.Status != TaskSucceeded {
		t.Fatalf("unexpected status %s", done.Status)
	}
	// With aggressive re-arming and only 2 attempts, failure is expected;
	// if timing let it through, content must at least be correct.
	if done.Status == TaskFailed && done.Error == "" {
		t.Fatal("failed task carries no error")
	}
}

func TestOAuthActivationHidesPassword(t *testing.T) {
	w := buildWorld(t, Config{}, true)

	// The user's login happens from the user's own host, directly with
	// the site: the service's PasswordsSeen stays zero.
	login := func(base, session string) (string, error) {
		userHTTP := oauth.HTTPClient(w.nw.Host("laptop"), w.epA.Trust)
		return oauth.Login(userHTTP, base, session, "alice", "pwA")
	}
	if err := w.svc.ActivateWithOAuth("siteA", "alice", login); err != nil {
		t.Fatal(err)
	}
	loginB := func(base, session string) (string, error) {
		userHTTP := oauth.HTTPClient(w.nw.Host("laptop"), w.epB.Trust)
		return oauth.Login(userHTTP, base, session, "alice", "pwB")
	}
	if err := w.svc.ActivateWithOAuth("siteB", "alice", loginB); err != nil {
		t.Fatal(err)
	}
	if w.svc.PasswordsSeen != 0 {
		t.Fatalf("OAuth activation leaked %d passwords through the service", w.svc.PasswordsSeen)
	}

	// And the activations actually work for transfers.
	payload := pattern(256 << 10)
	w.putSrc(t, "/oauth.bin", payload)
	task, err := w.svc.Submit("alice", "siteA", "/oauth.bin", "siteB", "/oauth.bin")
	if err != nil {
		t.Fatal(err)
	}
	done, err := w.svc.Wait(task.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskSucceeded {
		t.Fatalf("task: %s (%s)", done.Status, done.Error)
	}
	if !bytes.Equal(w.readDst(t, "/oauth.bin"), payload) {
		t.Fatal("content mismatch")
	}

	// Contrast: password activation increments the counter (Fig 6 risk).
	if err := w.svc.ActivateWithPassword("siteA", "alice", "pwA"); err != nil {
		t.Fatal(err)
	}
	if w.svc.PasswordsSeen != 1 {
		t.Fatalf("PasswordsSeen=%d after password activation", w.svc.PasswordsSeen)
	}
}

func TestRESTAPI(t *testing.T) {
	w := buildWorld(t, Config{}, false)
	rest := &RESTServer{Service: w.svc}
	addr, err := rest.ListenAndServe(w.nw.Host("globusonline"), 8443)
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	base := "https://" + addr.String()
	hc := oauth.HTTPClient(w.nw.Host("laptop"), nil)

	post := func(path string, body any) (*http.Response, map[string]any) {
		b, _ := json.Marshal(body)
		resp, err := hc.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		return resp, out
	}

	// Activate both endpoints via the API.
	for _, ep := range []struct{ name, pw string }{{"siteA", "pwA"}, {"siteB", "pwB"}} {
		resp, out := post("/activate", activateRequest{Endpoint: ep.name, User: "alice", Password: ep.pw})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("activate %s: %v %v", ep.name, resp.StatusCode, out)
		}
	}
	// Bad password path.
	if resp, _ := post("/activate", activateRequest{Endpoint: "siteA", User: "alice", Password: "no"}); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad activation status %d", resp.StatusCode)
	}

	w.putSrc(t, "/api.bin", pattern(64<<10))
	resp, out := post("/transfer", submitRequest{User: "alice", Src: "siteA", SrcPath: "/api.bin", Dst: "siteB", DstPath: "/api.bin"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, out)
	}
	taskID, _ := out["ID"].(string)
	if taskID == "" {
		t.Fatalf("no task id in %v", out)
	}

	// Poll the task endpoint until terminal.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := hc.Get(base + "/task/" + taskID)
		if err != nil {
			t.Fatal(err)
		}
		var task Task
		json.NewDecoder(resp.Body).Decode(&task)
		resp.Body.Close()
		if task.Status == TaskSucceeded {
			break
		}
		if task.Status == TaskFailed {
			t.Fatalf("task failed: %s", task.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("task stuck in %s", task.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Endpoint listing.
	resp2, err := hc.Get(base + "/endpoints")
	if err != nil {
		t.Fatal(err)
	}
	var eps map[string][]string
	json.NewDecoder(resp2.Body).Decode(&eps)
	resp2.Body.Close()
	if len(eps["endpoints"]) != 2 {
		t.Fatalf("endpoints: %v", eps)
	}
	if !strings.Contains(strings.Join(eps["endpoints"], ","), "siteA") {
		t.Fatalf("endpoints: %v", eps)
	}
}

// pattern generates deterministic position-dependent test data.
func pattern(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte((i*7 + i/251) % 256)
	}
	return data
}
