package transfer

import (
	"bytes"
	"testing"
	"time"

	"gridftp.dev/instant/internal/netsim"
)

// TestNetworkFaultRecovery cuts the inter-site fiber mid-transfer: every
// data and control connection between the endpoints dies at once. The
// service must reauthenticate with the stored short-term certificates and
// restart from the last checkpoint once the link heals — the §VI.B
// recovery story for a *network* failure rather than a storage one.
func TestNetworkFaultRecovery(t *testing.T) {
	w := buildWorld(t, Config{RetryLimit: 8, RetryDelay: 30 * time.Millisecond}, false)
	activateBoth(t, w)
	payload := pattern(4 << 20)
	w.putSrc(t, "/net.bin", payload)
	// Slow the link so the cut lands mid-transfer.
	w.nw.SetLink("siteA", "siteB", netsim.LinkParams{
		Bandwidth: 20e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22,
	})

	task, err := w.svc.Submit("alice", "siteA", "/net.bin", "siteB", "/net.bin")
	if err != nil {
		t.Fatal(err)
	}

	// Cut the fiber once the transfer is underway, heal it shortly after.
	go func() {
		time.Sleep(60 * time.Millisecond)
		w.nw.CutLink("siteA", "siteB")
		time.Sleep(80 * time.Millisecond)
		w.nw.RestoreLink("siteA", "siteB")
	}()

	done, err := w.svc.Wait(task.ID, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskSucceeded {
		t.Fatalf("task %s: %s (%s)", done.ID, done.Status, done.Error)
	}
	if !bytes.Equal(w.readDst(t, "/net.bin"), payload) {
		t.Fatal("content mismatch after network fault recovery")
	}
	t.Logf("recovered from link cut: attempts=%d bytes moved=%d (file %d)",
		done.Attempts, done.BytesTransferred, len(payload))
}
