package transfer

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/streamstats"
)

// This file is the concurrent transfer scheduler: a task's file plan fans
// out to K worker pairs of control sessions, each draining a shared
// per-task queue of pending files and running third-party transfers
// concurrently, with the service-wide total bounded by the
// Config.MaxActiveTransfers semaphore. Checkpointing is a per-file
// completion set plus per-file restart markers, so an attempt that dies
// with files in flight on several workers resumes only what is actually
// unfinished.

// maxTaskWorkers caps a single task's fan-out regardless of file count.
const maxTaskWorkers = 8

// planFile is one file of a task's plan: its path relative to the task
// root ("" for a single-file task) and its size, learned from the MLSx
// Size fact during the walk — the scheduler never issues per-file SIZE.
type planFile struct {
	rel  string
	size int64
}

// transferPlan is the durable state a task carries across attempts: the
// file list, the per-file completion set, and per-file restart markers
// for files that died in flight. Workers on several goroutines update it
// concurrently.
type transferPlan struct {
	mu      sync.Mutex
	files   []planFile
	done    []bool
	markers [][]gridftp.Range
}

func newTransferPlan(files []planFile) *transferPlan {
	return &transferPlan{
		files:   files,
		done:    make([]bool, len(files)),
		markers: make([][]gridftp.Range, len(files)),
	}
}

// pending returns the indices of files not yet completed.
func (p *transferPlan) pending() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var idx []int
	for i, d := range p.done {
		if !d {
			idx = append(idx, i)
		}
	}
	return idx
}

// complete marks file i done and drops its markers.
func (p *transferPlan) complete(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done[i] = true
	p.markers[i] = nil
}

// doneCount returns how many files have completed.
func (p *transferPlan) doneCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, d := range p.done {
		if d {
			n++
		}
	}
	return n
}

// saveMarkers records the latest restart markers for an in-flight file.
func (p *transferPlan) saveMarkers(i int, rs []gridftp.Range) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.markers[i] = rs
}

// takeMarkers returns file i's saved restart markers.
func (p *transferPlan) takeMarkers(i int) []gridftp.Range {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.markers[i]
}

// clearMarkers drops every file's restart markers (the checkpointing
// ablation: retries restart each unfinished file from byte 0).
func (p *transferPlan) clearMarkers() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.markers {
		p.markers[i] = nil
	}
}

// sessionPair is one worker's pair of authenticated, delegated control
// sessions (source + destination).
type sessionPair struct {
	src, dst *gridftp.Client
}

func (p *sessionPair) Close() {
	if p.src != nil {
		p.src.Close()
	}
	if p.dst != nil {
		p.dst.Close()
	}
}

// measureRTT times one NOOP round trip on the source control channel —
// the task's estimate of per-command latency, which sizes the fan-out
// and the autotuner's stream budget.
func (p *sessionPair) measureRTT() time.Duration {
	start := time.Now()
	if err := p.src.Noop(); err != nil {
		return 0
	}
	return time.Since(start)
}

// dialPair opens one worker's session pair: dial both endpoints,
// delegate, join the caller's trace, set the marker cadence, label both
// sessions with the task id for stream telemetry (SITE TASK — the
// destination publishes its streams as "<task>", the source as
// "<task>-src"), and — for cross-CA endpoint pairs — install the source
// credential on the destination via DCSC once per session instead of
// once per file.
func (s *Service) dialPair(srcEP, dstEP *Endpoint, srcProxy, dstProxy *gsi.Credential, sc obs.SpanContext, crossCA bool, taskLabel string) (*sessionPair, error) {
	dialOpts := gridftp.DialOptions{Obs: s.cfg.Obs, Streams: s.cfg.Streams}
	src, err := gridftp.DialWithOptions(s.host, srcEP.GridFTPAddr, srcProxy, srcEP.Trust, dialOpts)
	if err != nil {
		return nil, err
	}
	dst, err := gridftp.DialWithOptions(s.host, dstEP.GridFTPAddr, dstProxy, dstEP.Trust, dialOpts)
	if err != nil {
		src.Close()
		return nil, err
	}
	pair := &sessionPair{src: src, dst: dst}
	for _, step := range []func() error{
		func() error { return src.Delegate(2 * time.Hour) },
		func() error { return dst.Delegate(2 * time.Hour) },
		// Bind both servers' transfer spans to the caller's trace (SITE
		// TRACE). Endpoints without the feature keep rooting locally.
		func() error { _, err := src.PropagateTrace(sc); return err },
		func() error { _, err := dst.PropagateTrace(sc); return err },
		func() error { return dst.SetMarkerInterval(s.cfg.MarkerInterval) },
		// Label both legs for the stream-telemetry plane. SetTask
		// tolerates endpoints without the SITE TASK extension.
		func() error {
			if taskLabel == "" {
				return nil
			}
			return src.SetTask(taskLabel)
		},
		func() error {
			if taskLabel == "" {
				return nil
			}
			return dst.SetTask(taskLabel)
		},
	} {
		if err := step(); err != nil {
			pair.Close()
			return nil, err
		}
	}
	if crossCA {
		if err := dst.SendDCSC(srcProxy); err != nil {
			pair.Close()
			return nil, err
		}
	}
	return pair, nil
}

// workerCount sizes a task's fan-out: an explicit Config.TaskConcurrency
// wins; otherwise one worker per dozen pending files, twice as many on
// high-RTT paths where per-file control latency dominates, clamped to
// [1, maxTaskWorkers] and to the pending file count.
func (s *Service) workerCount(pending int, rtt time.Duration) int {
	k := s.cfg.TaskConcurrency
	if k <= 0 {
		per := 12
		if rtt >= 10*time.Millisecond {
			per = 6
		}
		k = (pending + per - 1) / per
		if k > maxTaskWorkers {
			k = maxTaskWorkers
		}
	}
	if k > pending {
		k = pending
	}
	if k < 1 {
		k = 1
	}
	return k
}

// autotuner implements the §VI.A "automatically tune GridFTP transfer
// options" policy, upgraded from a static size table: per-file
// parallelism seeds from the file size, the task's total stream budget
// scales with the measured control RTT (long fat links need more
// concurrent streams to fill), the budget is divided across the task's
// workers, and live throughput feedback backs the budget off when the
// workers share a bottleneck link.
type autotuner struct {
	disabled bool

	mu      sync.Mutex
	workers int
	budget  int     // total streams across all workers
	best    float64 // best per-stream throughput observed (bytes/sec)
}

func newAutotuner(cfg Config, rtt time.Duration, workers int) *autotuner {
	a := &autotuner{disabled: cfg.DisableAutotune, workers: workers, budget: 8}
	if rtt >= 5*time.Millisecond {
		a.budget = 16
	}
	if a.budget < workers {
		a.budget = workers
	}
	return a
}

// sizeStreams is the size-seeded parallelism (the original static
// autotune table).
func sizeStreams(size int64) int {
	switch {
	case size >= 100<<20:
		return 8
	case size >= 10<<20:
		return 4
	case size >= 1<<20:
		return 2
	default:
		return 1
	}
}

// streamsFor picks the parallelism for one file: the size seed clamped
// to this worker's share of the task budget.
func (a *autotuner) streamsFor(size int64) int {
	if a.disabled {
		return 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	share := a.budget / a.workers
	if share < 1 {
		share = 1
	}
	n := sizeStreams(size)
	if n > share {
		n = share
	}
	return n
}

// Block-size autotuning bounds: the BDP estimate is clamped to
// [64 KiB, 2 MiB] so short paths keep framing overhead low without
// degenerating into tiny blocks, and long fat paths stop growing before a
// single block monopolizes the receive pool.
const (
	minAutoBlockSize = 64 << 10
	maxAutoBlockSize = 2 << 20
)

// blockSizeFor picks the MODE E block size from the path's
// bandwidth-delay product: each stream should be able to keep roughly one
// block in flight, so the per-stream share of throughput×RTT is rounded
// down to a power of two and clamped. The wire evidence comes from the
// stream-telemetry plane (per-stream RTT and EWMA throughput, with
// cwnd×MSS as the cold-start fallback); with no evidence the negotiated
// default stands.
func (a *autotuner) blockSizeFor(ws streamstats.WireSummary, streams int) int {
	if a.disabled {
		return gridftp.DefaultBlockSize
	}
	bdp := ws.Throughput * ws.RTT.Seconds()
	if bdp <= 0 && ws.CwndSegments > 0 {
		// Cold start: no throughput EWMA yet, but the kernel's congestion
		// window says how much this path keeps in flight per stream.
		bdp = float64(ws.CwndSegments) * 1460
	}
	if bdp <= 0 {
		return gridftp.DefaultBlockSize
	}
	if streams > 1 {
		bdp /= float64(streams)
	}
	bs := minAutoBlockSize
	for bs*2 <= maxAutoBlockSize && float64(bs*2) <= bdp {
		bs *= 2
	}
	return bs
}

// budgetNow reports the current total stream budget (for metrics).
func (a *autotuner) budgetNow() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget
}

// observe feeds one completed file's achieved throughput back (the same
// signal the live 112 PERF markers carry, measured at file granularity).
// A per-stream rate that collapses below half the best seen means the
// workers are sharing a bottleneck — adding streams is not adding
// bandwidth — so the total budget backs off toward one stream per worker
// instead of letting K workers each push a full complement.
func (a *autotuner) observe(bytes int64, dur time.Duration, streams int) {
	if a.disabled || dur <= 0 || streams <= 0 {
		return
	}
	perStream := float64(bytes) / dur.Seconds() / float64(streams)
	a.mu.Lock()
	defer a.mu.Unlock()
	if perStream > a.best {
		a.best = perStream
		return
	}
	if perStream < a.best/2 && a.budget > a.workers {
		a.budget /= 2
		if a.budget < a.workers {
			a.budget = a.workers
		}
	}
}

// perfAgg aggregates in-flight 112 PERF-marker progress across a task's
// workers into the task's live PerfBytes/PerfMarkers view.
type perfAgg struct {
	svc  *Service
	task *Task

	mu      sync.Mutex
	bytes   []int64
	markers []int
	// Per-worker and per-task throughput timeline state: the previous
	// snapshot each rate is computed against.
	workerT []time.Time
	lastSum int64
	lastT   time.Time
}

func newPerfAgg(svc *Service, task *Task, workers int) *perfAgg {
	return &perfAgg{
		svc: svc, task: task,
		bytes: make([]int64, workers), markers: make([]int, workers),
		workerT: make([]time.Time, workers),
	}
}

// report records worker slot's latest per-session perf snapshot and
// refreshes the task's aggregate view. Each report also feeds the
// time-series flight recorder with the task's live timeline — cumulative
// bytes, task throughput, and the reporting worker's own throughput — so
// /debug/timeseries can answer "what was this transfer doing 30 seconds
// ago, and which worker was slow".
func (g *perfAgg) report(slot int, total int64, markers int) {
	now := time.Now()
	g.mu.Lock()
	prevWorker, prevWorkerT := g.bytes[slot], g.workerT[slot]
	g.bytes[slot] = total
	g.markers[slot] = markers
	g.workerT[slot] = now
	var sumBytes int64
	sumMarkers := 0
	for i := range g.bytes {
		sumBytes += g.bytes[i]
		sumMarkers += g.markers[i]
	}
	prevSum, prevT := g.lastSum, g.lastT
	g.lastSum, g.lastT = sumBytes, now
	g.mu.Unlock()

	sink := g.svc.cfg.Obs.TimeSeries()
	prefix := "transfer.task." + g.task.ID
	sink.Observe(prefix+".bytes", now, float64(sumBytes))
	if !prevT.IsZero() {
		if dt := now.Sub(prevT).Seconds(); dt > 0 && sumBytes >= prevSum {
			sink.Observe(prefix+".throughput", now, float64(sumBytes-prevSum)/dt)
		}
	}
	if !prevWorkerT.IsZero() {
		if dt := now.Sub(prevWorkerT).Seconds(); dt > 0 && total >= prevWorker {
			sink.Observe(fmt.Sprintf("%s.worker.%d.throughput", prefix, slot),
				now, float64(total-prevWorker)/dt)
		}
	}

	g.svc.cfg.Obs.Registry().Counter("transfer.perf_markers").Inc()
	g.svc.update(g.task, func(t *Task) {
		t.PerfBytes = sumBytes
		t.PerfMarkers = sumMarkers
	})
}

// workerRun is the shared context one scheduler worker drains.
type workerRun struct {
	task   *Task
	plan   *transferPlan
	tuner  *autotuner
	agg    *perfAgg
	queue  chan int
	stop   chan struct{}
	parent *obs.Span // span the worker's data spans attach to
	slot   int
}

// runWorker drains the task queue over one session pair until the queue
// is empty, a file fails, or another worker signals stop.
func (s *Service) runWorker(r workerRun, pair *sessionPair) error {
	pair.dst.OnPerf(func(gridftp.PerfMarker) {
		total, _, markers := pair.dst.PerfSnapshot()
		r.agg.report(r.slot, total, markers)
	})
	for i := range r.queue {
		select {
		case <-r.stop:
			return nil
		default:
		}
		if err := s.transferOne(r, pair, i); err != nil {
			return err
		}
	}
	return nil
}

// transferOne moves one plan file third-party, bounded by the global
// MaxActiveTransfers semaphore, resuming from the file's saved restart
// markers and checkpointing new ones as the destination reports them.
func (s *Service) transferOne(r workerRun, pair *sessionPair, i int) error {
	reg := s.cfg.Obs.Registry()

	// Global admission: a million-user fleet degrades gracefully instead
	// of thundering. The wait is observable per file.
	waitStart := time.Now()
	s.sem <- struct{}{}
	var traceID string
	if r.parent != nil {
		traceID = r.parent.TraceID.String()
	}
	wait := time.Since(waitStart)
	reg.Histogram("transfer.queue_wait_seconds", obs.DefaultDurationBuckets).
		ObserveExemplar(wait.Seconds(), traceID)
	s.cfg.Tenants.QueueWait(r.task.DN, wait)
	s.cfg.Tenants.TransferStarted(r.task.DN)
	active := reg.Gauge("transfer.active_transfers")
	active.Add(1)
	reg.Gauge("transfer.active_transfers_peak").Max(active.Value())
	defer func() {
		active.Add(-1)
		s.cfg.Tenants.TransferEnded(r.task.DN)
		<-s.sem
	}()

	f := r.plan.files[i]
	srcPath, dstPath := r.task.SrcPath, r.task.DstPath
	if f.rel != "" {
		srcPath = strings.TrimSuffix(r.task.SrcPath, "/") + "/" + f.rel
		dstPath = strings.TrimSuffix(r.task.DstPath, "/") + "/" + f.rel
	}

	par := r.tuner.streamsFor(f.size)
	s.update(r.task, func(t *Task) { t.FileSize = f.size; t.Parallelism = par })
	// SetParallelism is a no-op round trip when the value is unchanged,
	// so steady-state small-file streaks negotiate once per worker.
	if err := pair.src.SetParallelism(par); err != nil {
		return err
	}
	if err := pair.dst.SetParallelism(par); err != nil {
		return err
	}
	reg.Gauge("transfer.stream_budget").Set(int64(r.tuner.budgetNow()))

	// Wire-aware block sizing: size MODE E blocks to the path's
	// bandwidth-delay product as observed by the stream-telemetry plane.
	// Best-effort — SetBlockSize is a no-op round trip when the value is
	// unchanged, and an endpoint rejecting the OPTS extension keeps its
	// negotiated default.
	ws, _ := s.cfg.Streams.WireSummary(r.task.ID)
	if bs := r.tuner.blockSizeFor(ws, par); bs > 0 {
		if err := pair.src.SetBlockSize(bs); err == nil {
			pair.dst.SetBlockSize(bs)
		}
		reg.Gauge("transfer.block_size").Set(int64(bs))
	}

	restart := r.plan.takeMarkers(i)
	already := gridftp.FromRanges(restart).Covered()
	latest := restart
	opts := gridftp.ThirdPartyOptions{
		Restart: restart,
		OnMarker: func(rs []gridftp.Range) {
			latest = rs
			r.plan.saveMarkers(i, rs)
			s.update(r.task, func(t *Task) { t.Markers = rs })
		},
	}

	// Data phase: one span per file, third-party MODE E transfer.
	dataSpan := r.parent.Child("data")
	dataSpan.SetAttr("path", srcPath)
	dataSpan.SetAttr("size", f.size)
	dataSpan.SetAttr("parallelism", par)
	start := time.Now()
	_, terr := gridftp.ThirdParty(pair.src, srcPath, pair.dst, dstPath, opts)
	if terr != nil {
		dataSpan.SetError(terr)
		dataSpan.End()
		movedNow := gridftp.FromRanges(latest).Covered() - already
		if movedNow < 0 {
			movedNow = 0
		}
		r.plan.saveMarkers(i, latest)
		s.update(r.task, func(t *Task) { t.BytesTransferred += movedNow })
		reg.Counter("transfer.bytes_total").Add(movedNow)
		s.cfg.Tenants.BytesMoved(r.task.DN, movedNow)
		return terr
	}
	dataSpan.End()
	r.tuner.observe(f.size-already, time.Since(start), par)
	r.plan.complete(i)
	done := r.plan.doneCount()
	s.update(r.task, func(t *Task) {
		t.BytesTransferred += f.size - already
		t.CompletedFiles = done
		t.Markers = nil
	})
	reg.Counter("transfer.bytes_total").Add(f.size - already)
	reg.Counter("transfer.files_total").Inc()
	s.cfg.Tenants.BytesMoved(r.task.DN, f.size-already)
	return nil
}

// schedule fans the plan's pending files out across workers: worker 0
// reuses the primary session pair, workers 1..K-1 dial their own, and
// all drain the shared queue until it is empty or a file fails. With a
// single worker the task span owns the data spans directly (the
// sequential shape); with K > 1 each worker gets a child span.
func (s *Service) schedule(task *Task, plan *transferPlan, primary *sessionPair,
	srcEP, dstEP *Endpoint, srcProxy, dstProxy *gsi.Credential,
	taskSpan *obs.Span, pending []int, workers int, tuner *autotuner) error {

	queue := make(chan int, len(pending))
	for _, i := range pending {
		queue <- i
	}
	close(queue)
	stop := make(chan struct{})
	agg := newPerfAgg(s, task, workers)

	if workers == 1 {
		return s.runWorker(workerRun{
			task: task, plan: plan, tuner: tuner, agg: agg,
			queue: queue, stop: stop, parent: taskSpan, slot: 0,
		}, primary)
	}

	crossCA := task.crossCA(srcEP, dstEP)
	activeWorkers := s.cfg.Obs.Registry().Gauge("transfer.active_workers")
	var (
		wg       sync.WaitGroup
		stopOnce sync.Once
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wspan := taskSpan.Child("worker")
			wspan.SetAttr("worker", w)
			defer wspan.End()
			activeWorkers.Add(1)
			defer activeWorkers.Add(-1)
			pair := primary
			if w != 0 {
				var err error
				pair, err = s.dialPair(srcEP, dstEP, srcProxy, dstProxy, wspan.Context(), crossCA, task.ID)
				if err != nil {
					wspan.SetError(err)
					fail(err)
					return
				}
				defer pair.Close()
			}
			if err := s.runWorker(workerRun{
				task: task, plan: plan, tuner: tuner, agg: agg,
				queue: queue, stop: stop, parent: wspan, slot: w,
			}, pair); err != nil {
				wspan.SetError(err)
				fail(err)
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// buildPlan resolves the task source into a file plan with sizes —
// single files via the MLST Size fact, directories via WalkEntries, so
// no per-file SIZE command is ever needed — and creates the destination
// directory tree for recursive transfers.
func (s *Service) buildPlan(task *Task, src, dst *gridftp.Client) (*transferPlan, error) {
	entry, err := src.StatEntry(task.SrcPath)
	if err != nil {
		return nil, err
	}
	if !entry.IsDir {
		return newTransferPlan([]planFile{{rel: "", size: entry.Size}}), nil
	}
	entries, err := src.WalkEntries(task.SrcPath)
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Rel < entries[j].Rel })
	files := make([]planFile, len(entries))
	for i, e := range entries {
		files[i] = planFile{rel: e.Rel, size: e.Size}
	}
	// Create the destination tree (root plus every parent directory).
	dirs := map[string]bool{strings.TrimSuffix(task.DstPath, "/"): true}
	for _, f := range files {
		d := strings.TrimSuffix(task.DstPath, "/")
		parts := strings.Split(f.rel, "/")
		for _, p := range parts[:len(parts)-1] {
			d += "/" + p
			dirs[d] = true
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted) // parents before children
	for _, d := range sorted {
		if err := dst.Mkdir(d); err != nil {
			// Tolerate pre-existing directories.
			if _, serr := dst.StatEntry(d); serr != nil {
				return nil, err
			}
		}
	}
	return newTransferPlan(files), nil
}
