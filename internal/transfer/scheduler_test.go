package transfer

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/streamstats"
)

// slowLinks puts every hop of the hosted-transfer triangle (service to
// both sites, plus the inter-site path) on a long fat link, so per-file
// control round trips dominate a sequential small-files task.
func slowLinks(w *world, rtt time.Duration) {
	p := netsim.LinkParams{Bandwidth: 40e6, RTT: rtt, StreamWindow: 1 << 20}
	w.nw.SetLink("globusonline", "siteA", p)
	w.nw.SetLink("globusonline", "siteB", p)
	w.nw.SetLink("siteA", "siteB", p)
}

// makeTree creates a flat directory of n patterned files on the source.
func makeTree(t *testing.T, w *world, dir string, n, fileSize int) {
	t.Helper()
	if err := w.epA.Storage.Mkdir("alice", dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f, err := w.epA.Storage.Create("alice", fmt.Sprintf("%s/f%03d.bin", dir, i))
		if err != nil {
			t.Fatal(err)
		}
		dsi.WriteAll(f, pattern(fileSize))
		f.Close()
	}
}

func runDirTask(t *testing.T, w *world, dir string) (*Task, time.Duration) {
	t.Helper()
	start := time.Now()
	task, err := w.svc.Submit("alice", "siteA", dir, "siteB", dir)
	if err != nil {
		t.Fatal(err)
	}
	done, err := w.svc.Wait(task.ID, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskSucceeded {
		t.Fatalf("task: %s (%s)", done.Status, done.Error)
	}
	return done, time.Since(start)
}

// TestSchedulerBeatsSequentialOnHighRTT is the tentpole acceptance
// scenario: 50 x 64 KiB files over 20 ms RTT links. The sequential path
// (TaskConcurrency=1) pays the full control-channel latency per file; the
// scheduler fans the queue out across worker session pairs and must cut
// wall-clock by at least 2x. It also proves the control-channel diet: the
// directory attempt issues zero per-file SIZE commands (sizes ride the
// MLSD facts), asserted via the per-verb command counters.
func TestSchedulerBeatsSequentialOnHighRTT(t *testing.T) {
	const nFiles = 50
	const fileSize = 64 << 10
	const rtt = 20 * time.Millisecond

	run := func(concurrency int) (*Task, time.Duration, *obs.Obs) {
		o := obs.Nop()
		w := buildWorld(t, Config{Obs: o, TaskConcurrency: concurrency}, false)
		slowLinks(w, rtt)
		activateBoth(t, w)
		makeTree(t, w, "/many", nFiles, fileSize)
		done, elapsed := runDirTask(t, w, "/many")
		if done.CompletedFiles != nFiles {
			t.Fatalf("completed %d of %d", done.CompletedFiles, nFiles)
		}
		return done, elapsed, o
	}

	seqDone, seqElapsed, seqObs := run(1)
	schedDone, schedElapsed, schedObs := run(0) // auto-sized fan-out

	if schedDone.Workers < 2 {
		t.Fatalf("auto-sizing picked %d workers for %d files at %v RTT, want >= 2",
			schedDone.Workers, nFiles, rtt)
	}
	if seqDone.Workers != 1 {
		t.Fatalf("sequential run used %d workers", seqDone.Workers)
	}
	t.Logf("sequential %v, scheduled %v (%d workers) — %.1fx",
		seqElapsed.Round(time.Millisecond), schedElapsed.Round(time.Millisecond),
		schedDone.Workers, float64(seqElapsed)/float64(schedElapsed))
	if schedElapsed*2 > seqElapsed {
		t.Fatalf("scheduler not >= 2x faster: sequential %v vs scheduled %v",
			seqElapsed, schedElapsed)
	}

	// Zero per-file SIZE commands on either path; the counters are live
	// (RETR fired once per file), so zero means "not issued", not
	// "not counted".
	for name, o := range map[string]*obs.Obs{"sequential": seqObs, "scheduled": schedObs} {
		reg := o.Metrics
		if v := reg.Counter(obs.Name("gridftp.client.commands", "cmd=SIZE")).Value(); v != 0 {
			t.Errorf("%s run issued %d SIZE commands, want 0", name, v)
		}
		if v := reg.Counter(obs.Name("gridftp.client.commands", "cmd=RETR")).Value(); v != nFiles {
			t.Errorf("%s run counted %d RETR commands, want %d", name, v, nFiles)
		}
	}

	// Scheduler observability: per-worker child spans under the task
	// span, each owning data spans, plus the queue-wait histogram and the
	// active-transfers gauge having seen traffic.
	var taskRoot obs.SpanInfo
	for _, r := range schedObs.Trace.Roots() {
		if r.Name == "task" {
			taskRoot = r
		}
	}
	workerSpans := 0
	dataUnderWorkers := 0
	for _, child := range schedObs.Trace.Children(taskRoot.ID) {
		if child.Name != "worker" {
			continue
		}
		workerSpans++
		for _, g := range schedObs.Trace.Children(child.ID) {
			if g.Name == "data" {
				dataUnderWorkers++
			}
		}
	}
	if workerSpans != schedDone.Workers {
		t.Errorf("%d worker spans, want %d:\n%s", workerSpans, schedDone.Workers,
			schedObs.Trace.TreeString())
	}
	if dataUnderWorkers != nFiles {
		t.Errorf("%d data spans under workers, want %d", dataUnderWorkers, nFiles)
	}
	reg := schedObs.Metrics
	if c := reg.Histogram("transfer.queue_wait_seconds", obs.DefaultDurationBuckets).Count(); c != nFiles {
		t.Errorf("queue_wait_seconds observed %d waits, want %d", c, nFiles)
	}
	if v := reg.Gauge("transfer.active_transfers").Value(); v != 0 {
		t.Errorf("active_transfers gauge left at %d, want 0", v)
	}
}

// TestConcurrentSubmitsShareService drives N simultaneous Submits through
// one service instance with a small MaxActiveTransfers, exercising the
// global admission semaphore and the shared task map under -race.
func TestConcurrentSubmitsShareService(t *testing.T) {
	o := obs.Nop()
	w := buildWorld(t, Config{Obs: o, MaxActiveTransfers: 2}, false)
	activateBoth(t, w)

	const nTasks = 4
	payloads := make([][]byte, nTasks)
	for i := range payloads {
		payloads[i] = pattern(128<<10 + i*1000)
		w.putSrc(t, fmt.Sprintf("/con%d.bin", i), payloads[i])
	}

	var wg sync.WaitGroup
	ids := make([]string, nTasks)
	errs := make([]error, nTasks)
	for i := 0; i < nTasks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/con%d.bin", i)
			task, err := w.svc.Submit("alice", "siteA", path, "siteB", path)
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = task.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i, id := range ids {
		done, err := w.svc.Wait(id, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if done.Status != TaskSucceeded {
			t.Fatalf("task %d: %s (%s)", i, done.Status, done.Error)
		}
		if !bytes.Equal(w.readDst(t, fmt.Sprintf("/con%d.bin", i)), payloads[i]) {
			t.Fatalf("task %d content mismatch", i)
		}
	}
	if v := o.Metrics.Gauge("transfer.active_transfers").Value(); v != 0 {
		t.Errorf("active_transfers gauge left at %d, want 0", v)
	}
	if v := o.Metrics.Gauge("transfer.active_transfers_peak").Value(); v > 2 {
		t.Errorf("active_transfers peaked at %d, semaphore cap is 2", v)
	}
}

// TestSchedulerCheckpointResume kills one file mid-flight while several
// workers are transferring: the per-file completion set must resume only
// the unfinished files, never re-transferring completed ones, and the
// failed file must restart from its saved markers rather than byte 0.
func TestSchedulerCheckpointResume(t *testing.T) {
	const nFiles = 16
	const fileSize = 128 << 10
	o := obs.Nop()
	w := buildWorld(t, Config{Obs: o, TaskConcurrency: 4, RetryDelay: 10 * time.Millisecond}, false)
	activateBoth(t, w)
	makeTree(t, w, "/ckpt", nFiles, fileSize)
	// Slow the data path so markers land before the fault trips.
	w.nw.SetLink("siteA", "siteB", netsim.LinkParams{
		Bandwidth: 30e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22,
	})
	w.faultB.Arm(fileSize / 2) // first file opened after arming dies halfway

	done, _ := runDirTask(t, w, "/ckpt")
	if done.Attempts < 2 {
		t.Fatalf("fault did not trigger a retry (attempts=%d)", done.Attempts)
	}
	if done.CompletedFiles != nFiles {
		t.Fatalf("completed %d of %d", done.CompletedFiles, nFiles)
	}
	// Every file completed exactly once across all attempts: a completed
	// file is never queued again, so the files counter hits nFiles, not
	// nFiles plus re-transfers.
	if v := o.Metrics.Counter("transfer.files_total").Value(); v != nFiles {
		t.Errorf("transfer.files_total = %d, want %d (files re-transferred?)", v, nFiles)
	}
	// And the failed file resumed from markers: total bytes moved stays
	// well under re-sending even one extra full file list.
	total := int64(nFiles * fileSize)
	if done.BytesTransferred > total+total/2 {
		t.Errorf("resume ineffective: moved %d of %d total", done.BytesTransferred, total)
	}
	for i := 0; i < nFiles; i++ {
		path := fmt.Sprintf("/ckpt/f%03d.bin", i)
		f, err := w.epB.Storage.Open("alice", path)
		if err != nil {
			t.Fatalf("%s missing at destination: %v", path, err)
		}
		got, _ := dsi.ReadAll(f)
		f.Close()
		if !bytes.Equal(got, pattern(fileSize)) {
			t.Fatalf("file %d mismatch", i)
		}
	}
}

func TestBlockSizeForBDP(t *testing.T) {
	a := &autotuner{workers: 1, budget: 8}
	cases := []struct {
		name    string
		ws      streamstats.WireSummary
		streams int
		want    int
	}{
		{"no evidence keeps default", streamstats.WireSummary{}, 4, gridftp.DefaultBlockSize},
		{"lan path clamps low", streamstats.WireSummary{
			RTT: 200 * time.Microsecond, Throughput: 10e6}, 1, minAutoBlockSize},
		{"wan path sizes to bdp", streamstats.WireSummary{
			RTT: 50 * time.Millisecond, Throughput: 40e6}, 1, 1 << 20},
		{"streams share the bdp", streamstats.WireSummary{
			RTT: 50 * time.Millisecond, Throughput: 40e6}, 4, 256 << 10},
		{"long fat path clamps high", streamstats.WireSummary{
			RTT: 200 * time.Millisecond, Throughput: 1e9}, 1, maxAutoBlockSize},
		{"cwnd cold start", streamstats.WireSummary{CwndSegments: 100}, 1, 128 << 10},
	}
	for _, tc := range cases {
		if got := a.blockSizeFor(tc.ws, tc.streams); got != tc.want {
			t.Errorf("%s: blockSizeFor = %d, want %d", tc.name, got, tc.want)
		}
	}
	a.disabled = true
	if got := a.blockSizeFor(streamstats.WireSummary{RTT: time.Second, Throughput: 1e9}, 1); got != gridftp.DefaultBlockSize {
		t.Errorf("disabled tuner: blockSizeFor = %d, want default", got)
	}
}
