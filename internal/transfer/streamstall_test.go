package transfer

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gridftp.dev/instant/internal/admin"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/obs/tsdb"
)

// TestStreamStallWatchdogRecovery is the data-path X-ray end-to-end: a
// transfer's bandwidth collapses mid-flight (without the link dying, so
// nothing errors on its own — the classic silent stall), the stall
// watchdog notices the wire going quiet and aborts the attempt, the
// stream-stall alert fires off the gridftp.streams.stalled series, the
// scheduler retries the file from its checkpoint once the path heals,
// and the whole episode is queryable afterwards through the admin
// plane's /debug/timeseries and /debug/streams endpoints.
func TestStreamStallWatchdogRecovery(t *testing.T) {
	o := obs.New(io.Discard, obs.LevelInfo)
	rec := tsdb.New(tsdb.Options{})
	o.Series = rec

	// The stock stream-stall rule with For collapsed to zero so the test
	// doesn't have to hold the stall for a wall-clock second.
	rules := []tsdb.Rule{{
		Name: "stream-stall", Series: streamstats.StalledSeries,
		Kind: tsdb.KindThreshold, Op: tsdb.OpGreater, Value: 0,
		Severity: "page",
	}}
	eng := tsdb.NewEngine(rec, o, rules)

	var (
		transMu     sync.Mutex
		transitions []tsdb.Transition
	)
	removeTap := eng.Tap(func(tr tsdb.Transition) {
		transMu.Lock()
		transitions = append(transitions, tr)
		transMu.Unlock()
	})
	defer removeTap()

	// Evaluate continuously at a cadence well under the poller interval
	// so the stalled>0 sample cannot slip between evals.
	evalStop := make(chan struct{})
	defer close(evalStop)
	go func() {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-evalStop:
				return
			case <-tick.C:
				eng.Eval(time.Now())
			}
		}
	}()

	streams := streamstats.New(streamstats.Options{
		Obs:          o,
		Interval:     20 * time.Millisecond,
		Stall:        120 * time.Millisecond,
		AbortOnStall: true,
	})
	defer streams.Close()

	adm := admin.New(o)
	adm.SetTelemetry(rec, eng)
	adm.SetStreamStats(streams)
	admAddr, err := adm.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()

	// RetryDelay is deliberately longer than the heal-watcher's reaction
	// time below: the retry must dial its fresh data channels on the
	// healed link, not while the path is still collapsed.
	w := buildWorld(t, Config{
		RetryLimit: 8,
		RetryDelay: 250 * time.Millisecond,
		Obs:        o,
		Streams:    streams,
	}, false)
	activateBoth(t, w)
	payload := pattern(4 << 20)
	w.putSrc(t, "/stall.bin", payload)

	// A capacious but finite link; the trickle of loss keeps the wire
	// counters honest (retransmits > 0 in the per-attempt evidence).
	fast := netsim.LinkParams{
		Bandwidth: 20e6, RTT: 2 * time.Millisecond,
		Loss: 0.002, StreamWindow: 1 << 22,
	}
	w.nw.SetLink("siteA", "siteB", fast)

	task, err := w.svc.Submit("alice", "siteA", "/stall.bin", "siteB", "/stall.bin")
	if err != nil {
		t.Fatal(err)
	}

	// Mid-flight, collapse the path to a few hundred bytes per second:
	// connections stay up, writes just stop making progress. Only the
	// watchdog can turn this into a retry.
	events := o.EventLog()
	go func() {
		time.Sleep(70 * time.Millisecond)
		w.nw.SetLink("siteA", "siteB", netsim.LinkParams{
			Bandwidth: 200, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22,
		})
		// Heal the path as soon as the watchdog has tripped so the
		// checkpoint retry runs at full speed.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if countEvents(events, eventlog.StreamStalled) > 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		w.nw.SetLink("siteA", "siteB", fast)
	}()

	done, err := w.svc.Wait(task.ID, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskSucceeded {
		t.Fatalf("task %s: %s (%s)", done.ID, done.Status, done.Error)
	}
	if done.Attempts < 2 {
		t.Fatalf("stall did not trigger a retry (attempts=%d)", done.Attempts)
	}
	if !bytes.Equal(w.readDst(t, "/stall.bin"), payload) {
		t.Fatal("content mismatch after stall recovery")
	}

	// The watchdog's paper trail: a stall, a paired recovery, and the
	// scheduler's per-attempt wire-evidence record.
	if n := countEvents(events, eventlog.StreamStalled); n == 0 {
		t.Fatal("no stream.stalled event recorded")
	}
	if n := countEvents(events, eventlog.StreamRecovered); n == 0 {
		t.Fatal("no stream.recovered event recorded")
	}
	if n := countEvents(events, eventlog.TransferWire); n == 0 {
		t.Fatal("no transfer.wire evidence event recorded")
	}

	// The alert must have gone through a full fire/resolve cycle. The
	// firing edge lands while the stall is live; the resolve edge needs
	// one more poller pass after the aborted transfers drain, so give
	// the background evaluator a moment.
	waitFor(t, 5*time.Second, "stream-stall alert fire+resolve", func() bool {
		transMu.Lock()
		defer transMu.Unlock()
		var fired, resolved bool
		for _, tr := range transitions {
			if tr.Rule != "stream-stall" {
				continue
			}
			if tr.To == tsdb.StateFiring {
				fired = true
			}
			if tr.From == tsdb.StateFiring && tr.To == tsdb.StateInactive {
				resolved = true
			}
		}
		return fired && resolved
	})

	// The stall must have been the watchdog's doing, not a random error:
	// at least one retained transfer is marked stall-aborted.
	var aborted bool
	for _, th := range streams.Health() {
		if th.Aborted {
			aborted = true
		}
	}
	if !aborted {
		t.Fatal("no transfer marked stall-aborted in the health table")
	}

	// And the whole episode is queryable over the admin plane.
	base := "http://" + admAddr.String()
	series := httpGetBody(t, base+"/debug/timeseries?series=gridftp.stream")
	if !strings.Contains(series, streamstats.StalledSeries) {
		t.Fatalf("timeseries dump missing %s:\n%s", streamstats.StalledSeries, series)
	}
	if !strings.Contains(series, streamstats.SeriesPrefix+task.ID) {
		t.Fatalf("timeseries dump missing per-stream series for task %s", task.ID)
	}
	if !strings.Contains(series, ".throughput") {
		t.Fatal("timeseries dump missing per-stream throughput series")
	}
	health := httpGetBody(t, base+"/debug/streams")
	if !strings.Contains(strings.ReplaceAll(health, " ", ""), `"stall_aborted":true`) {
		t.Fatalf("/debug/streams does not show the stall-aborted transfer:\n%s", health)
	}
	if !strings.Contains(health, task.ID) {
		t.Fatalf("/debug/streams does not label transfers with task %s", task.ID)
	}
	table := httpGetBody(t, base+"/debug/streams?format=text")
	if !strings.Contains(table, "retrans") || !strings.Contains(table, "stall-aborted") {
		t.Fatalf("text health table missing expected columns/state:\n%s", table)
	}
	t.Logf("attempts=%d moved=%d stalls=%d", done.Attempts, done.BytesTransferred,
		countEvents(events, eventlog.StreamStalled))
}

func countEvents(l *eventlog.Log, typ string) int {
	n := 0
	for _, e := range l.Events() {
		if e.Type == typ {
			n++
		}
	}
	return n
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}
