package transfer

import (
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// TestHostedTransferObservability is the acceptance scenario for the
// observability layer: one hosted third-party transfer must produce a
// span tree covering activation -> control -> data, in-flight 112
// performance markers surfaced on the task, and a metrics snapshot whose
// bytes-transferred counter equals the file size.
func TestHostedTransferObservability(t *testing.T) {
	o := obs.Nop()
	w := buildWorld(t, Config{Obs: o, RetryDelay: 20 * time.Millisecond}, false)
	activateBoth(t, w)

	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	w.putSrc(t, "/obs.bin", payload)

	task, err := w.svc.Submit("alice", "siteA", "/obs.bin", "siteB", "/obs.bin")
	if err != nil {
		t.Fatal(err)
	}
	done, err := w.svc.Wait(task.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskSucceeded {
		t.Fatalf("task %s: %s (%s)", done.ID, done.Status, done.Error)
	}

	// In-flight progress: the destination client parsed 112 markers while
	// the transfer ran (the final one is emitted before the completion
	// reply, so a successful task always saw at least one per stripe).
	if done.PerfMarkers < 1 {
		t.Errorf("task observed %d perf markers, want >= 1", done.PerfMarkers)
	}
	if done.PerfBytes != int64(len(payload)) {
		t.Errorf("task perf bytes %d, want %d", done.PerfBytes, len(payload))
	}

	// Metrics: the service-level byte counter must equal the file size.
	reg := o.Metrics
	if v := reg.Counter("transfer.bytes_total").Value(); v != int64(len(payload)) {
		t.Errorf("transfer.bytes_total = %d, want %d", v, len(payload))
	}
	if v := reg.Counter("transfer.files_total").Value(); v != 1 {
		t.Errorf("transfer.files_total = %d, want 1", v)
	}
	if v := reg.Counter("transfer.tasks_succeeded").Value(); v != 1 {
		t.Errorf("transfer.tasks_succeeded = %d, want 1", v)
	}
	if v := reg.Counter("transfer.perf_markers").Value(); int(v) != done.PerfMarkers {
		t.Errorf("transfer.perf_markers = %d, task counted %d", v, done.PerfMarkers)
	}

	// Spans: one root "task" covering the activate/control/data phases,
	// plus one "activation" root per activated endpoint (each its own
	// distributed trace joined by the MyProxy server).
	var taskRoots, actRoots []obs.SpanInfo
	for _, r := range o.Trace.Roots() {
		switch r.Name {
		case "task":
			taskRoots = append(taskRoots, r)
		case "activation":
			actRoots = append(actRoots, r)
		}
	}
	if len(taskRoots) != 1 {
		t.Fatalf("%d root task spans, want 1:\n%s", len(taskRoots), o.Trace.TreeString())
	}
	if len(actRoots) != 2 {
		t.Errorf("%d activation root spans, want 2 (one per endpoint)", len(actRoots))
	}
	root := taskRoots[0]
	if !root.Ended || root.Err != "" {
		t.Fatalf("root span %+v, want ended error-free \"task\"", root)
	}
	if root.Attrs["task"] != done.ID {
		t.Errorf("root span task attr %q, want %q", root.Attrs["task"], done.ID)
	}
	phases := map[string]bool{}
	for _, child := range o.Trace.Children(root.ID) {
		if !child.Ended {
			t.Errorf("child span %s left open", child.Name)
		}
		if child.Err != "" {
			t.Errorf("child span %s carries error %q", child.Name, child.Err)
		}
		phases[child.Name] = true
	}
	for _, want := range []string{"activate", "control", "data"} {
		if !phases[want] {
			t.Errorf("span tree missing %q phase:\n%s", want, o.Trace.TreeString())
		}
	}

	// The content actually landed.
	if got := w.readDst(t, "/obs.bin"); len(got) != len(payload) {
		t.Fatalf("destination has %d bytes, want %d", len(got), len(payload))
	}

	// And the whole thing renders as one debug snapshot.
	snap := o.DebugSnapshot()
	if snap == "" {
		t.Fatal("empty debug snapshot")
	}
}

// TestFailedTaskSpanCarriesError checks the failure path: a task whose
// source file does not exist ends with an errored root span and a
// tasks_failed counter.
func TestFailedTaskSpanCarriesError(t *testing.T) {
	o := obs.Nop()
	w := buildWorld(t, Config{Obs: o, RetryDelay: time.Millisecond, RetryLimit: 1}, false)
	activateBoth(t, w)

	task, err := w.svc.Submit("alice", "siteA", "/no-such-file.bin", "siteB", "/x.bin")
	if err != nil {
		t.Fatal(err)
	}
	done, err := w.svc.Wait(task.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != TaskFailed {
		t.Skipf("transfer unexpectedly succeeded (%s); failure-path span not exercised", done.Status)
	}
	if v := o.Metrics.Counter("transfer.tasks_failed").Value(); v != 1 {
		t.Errorf("transfer.tasks_failed = %d, want 1", v)
	}
	var taskRoots []obs.SpanInfo
	for _, r := range o.Trace.Roots() {
		if r.Name == "task" {
			taskRoots = append(taskRoots, r)
		}
	}
	if len(taskRoots) != 1 {
		t.Fatalf("%d root task spans, want 1", len(taskRoots))
	}
	if taskRoots[0].Err == "" {
		t.Errorf("failed task's root span has no error:\n%s", o.Trace.TreeString())
	}
	if !taskRoots[0].Ended {
		t.Errorf("failed task's root span left open")
	}
}
