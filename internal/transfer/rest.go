package transfer

import (
	"crypto/tls"
	"encoding/json"
	"net"
	"net/http"
	"time"

	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

// The paper (§VI.A) lists three Globus Online interfaces: a web GUI, an
// SSH command line, and "a REST API [that] facilitates integration for
// system builders". This file provides the REST API; the CLI lives in
// cmd/transfer-service.

// RESTServer exposes the service over HTTPS.
type RESTServer struct {
	Service *Service
	httpSrv *http.Server
}

// activateRequest is the POST /activate body.
type activateRequest struct {
	Endpoint string `json:"endpoint"`
	User     string `json:"user"`
	Password string `json:"password"`
}

// submitRequest is the POST /transfer body.
type submitRequest struct {
	User    string `json:"user"`
	Src     string `json:"src"`
	SrcPath string `json:"src_path"`
	Dst     string `json:"dst"`
	DstPath string `json:"dst_path"`
}

// ListenAndServe starts the API on the service's host.
func (r *RESTServer) ListenAndServe(host *netsim.Host, port int) (net.Addr, error) {
	cred, err := gsi.SelfSignedCredential("/O=Globus Online/CN=transfer.api", 365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	l, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /activate", r.handleActivate)
	mux.HandleFunc("POST /transfer", r.handleSubmit)
	mux.HandleFunc("GET /task/{id}", r.handleTask)
	mux.HandleFunc("GET /endpoints", r.handleEndpoints)
	r.httpSrv = &http.Server{
		Handler: mux,
		TLSConfig: &tls.Config{
			Certificates: []tls.Certificate{cred.TLSCertificate()},
			MinVersion:   tls.VersionTLS12,
		},
	}
	go r.httpSrv.ServeTLS(l, "", "")
	return l.Addr(), nil
}

// Close stops the API server.
func (r *RESTServer) Close() error {
	if r.httpSrv != nil {
		return r.httpSrv.Close()
	}
	return nil
}

func respond(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (r *RESTServer) handleActivate(w http.ResponseWriter, req *http.Request) {
	var body activateRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		respond(w, http.StatusBadRequest, map[string]string{"error": "bad request"})
		return
	}
	if err := r.Service.ActivateWithPassword(body.Endpoint, body.User, body.Password); err != nil {
		respond(w, http.StatusUnauthorized, map[string]string{"error": err.Error()})
		return
	}
	respond(w, http.StatusOK, map[string]string{"status": "activated"})
}

func (r *RESTServer) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var body submitRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		respond(w, http.StatusBadRequest, map[string]string{"error": "bad request"})
		return
	}
	task, err := r.Service.Submit(body.User, body.Src, body.SrcPath, body.Dst, body.DstPath)
	if err != nil {
		respond(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	respond(w, http.StatusAccepted, task)
}

func (r *RESTServer) handleTask(w http.ResponseWriter, req *http.Request) {
	task, err := r.Service.TaskStatus(req.PathValue("id"))
	if err != nil {
		respond(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	respond(w, http.StatusOK, task)
}

func (r *RESTServer) handleEndpoints(w http.ResponseWriter, req *http.Request) {
	respond(w, http.StatusOK, map[string][]string{"endpoints": r.Service.Endpoints()})
}
