// Package transfer implements a Globus Online-style hosted transfer
// service (§VI of the paper): a third-party mediator that activates GCMU
// endpoints on the user's behalf (username/password via MyProxy, or OAuth
// so the password never reaches the service), runs third-party GridFTP
// transfers between them, auto-tunes transfer options, monitors progress
// via restart markers, and on failure reauthenticates with the stored
// short-term certificate and restarts from the last checkpoint.
package transfer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/myproxy"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/oauth"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/obs/tenant"
	"gridftp.dev/instant/internal/pam"
)

// Endpoint is a GridFTP endpoint registered with the service (what a GCMU
// install publishes when the admin opts in, §VI.B).
type Endpoint struct {
	Name        string
	GridFTPAddr string
	MyProxyAddr string
	OAuthAddr   string // optional; enables password-less activation
	// Trust holds the endpoint's CA root(s), published at registration.
	Trust *gsi.TrustStore
	// CADN is the endpoint CA's DN, used to detect cross-CA transfers.
	CADN gsi.DN
}

// activation is a live short-term credential for (endpoint, user).
type activation struct {
	cred    *gsi.Credential
	expires time.Time
}

// TaskStatus is a transfer task's lifecycle state.
type TaskStatus string

// Task states.
const (
	TaskQueued    TaskStatus = "QUEUED"
	TaskActive    TaskStatus = "ACTIVE"
	TaskSucceeded TaskStatus = "SUCCEEDED"
	TaskFailed    TaskStatus = "FAILED"
)

// Task is one submitted transfer.
type Task struct {
	ID   string
	User string
	// DN is the tenant identity: the distinguished name of the user's
	// activation credential on the source endpoint, captured at submit.
	// It is what the per-tenant accounting plane keys on — usernames are
	// per-endpoint local accounts, the DN is the global identity.
	DN       string
	Src, Dst string // endpoint names
	SrcPath  string
	DstPath  string

	Status   TaskStatus
	Attempts int
	// TotalFiles/CompletedFiles track directory (recursive) transfers;
	// a single-file task has TotalFiles == 1.
	TotalFiles     int
	CompletedFiles int
	// BytesTransferred counts bytes moved across all attempts; with
	// checkpointing, retries move only the missing remainder.
	BytesTransferred int64
	FileSize         int64
	// PerfBytes is the in-flight progress of the current attempt as
	// reported by 112 performance markers, summed across stripes and
	// across the task's scheduler workers; PerfMarkers counts how many
	// markers the current attempt has observed. Unlike BytesTransferred
	// (updated at file completion), these move *during* the transfer —
	// they are the service's live progress view.
	PerfBytes   int64
	PerfMarkers int
	Error       string
	Markers     []gridftp.Range
	Started     time.Time
	Finished    time.Time
	Parallelism int
	// Workers is the scheduler fan-out the last attempt used (K control
	// session pairs draining the task's file queue).
	Workers int
}

// Config tunes the service.
type Config struct {
	// RetryLimit is the number of attempts per task (default 5).
	RetryLimit int
	// RetryDelay between attempts (default 50ms in simulation).
	RetryDelay time.Duration
	// DisableCheckpointing makes retries start from byte 0 — the
	// ablation that quantifies what restart markers buy (E6).
	DisableCheckpointing bool
	// DisableAutotune pins parallelism to 1 instead of sizing it to the
	// file (ablation).
	DisableAutotune bool
	// TaskConcurrency fixes the number of worker session pairs a task
	// fans its file plan out to. 0 (the default) auto-sizes from the
	// pending file count and the measured control-channel RTT.
	TaskConcurrency int
	// MaxActiveTransfers bounds concurrent file transfers service-wide
	// (across all tasks and workers), so a large fleet degrades
	// gracefully instead of thundering. Default 32.
	MaxActiveTransfers int
	// MarkerInterval is the restart/perf marker cadence requested from
	// destination servers (OPTS RETR Markers). Default 25ms.
	MarkerInterval time.Duration
	// Obs receives structured logs, metrics, and per-task span trees
	// (activation → control → data, plus per-worker spans when a task
	// fans out). Nil disables observability.
	Obs *obs.Obs
	// Streams is the stream-telemetry registry the scheduler consults for
	// per-attempt wire evidence (retransmits, inter-stream imbalance,
	// stall aborts). The scheduler labels every worker session pair with
	// the task id via SITE TASK so endpoints sharing this registry — the
	// in-process simulation shape — publish their data streams under it.
	// Nil disables wire-evidence records.
	Streams *streamstats.Registry
	// Tenants is the per-DN accounting plane: submissions, outcomes,
	// queue waits, active transfers, and bytes moved are attributed to
	// the task's credential DN. Nil disables attribution.
	Tenants *tenant.Accountant
	// RetireGrace delays the retirement of a completed task's
	// "transfer.task.<id>.*" series past the terminal state, for
	// stragglers (late PERF markers from a worker still draining).
	// Retirement itself is soft — the recorder keeps tombstoned series
	// queryable for its RetireHorizon — so the default 0 retires at
	// completion and lets the horizon be the grace window.
	RetireGrace time.Duration
}

// Service is the hosted transfer service.
type Service struct {
	host *netsim.Host
	cfg  Config
	log  *obs.Logger

	mu          sync.Mutex
	endpoints   map[string]*Endpoint
	activations map[string]*activation // key: endpoint + "\x00" + user
	tasks       map[string]*Task
	nextTask    int

	// sem is the global MaxActiveTransfers admission semaphore: one slot
	// per in-flight file transfer, across all tasks and workers.
	sem chan struct{}

	// PasswordsSeen counts secrets that flowed through the service —
	// the quantity OAuth activation drives to zero (§VI, Fig 7).
	PasswordsSeen int
}

// NewService creates a transfer service living on the given host.
func NewService(host *netsim.Host, cfg Config) *Service {
	if cfg.RetryLimit == 0 {
		cfg.RetryLimit = 5
	}
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = 50 * time.Millisecond
	}
	if cfg.MaxActiveTransfers <= 0 {
		cfg.MaxActiveTransfers = 32
	}
	if cfg.MarkerInterval <= 0 {
		cfg.MarkerInterval = 25 * time.Millisecond
	}
	return &Service{
		host:        host,
		cfg:         cfg,
		log:         cfg.Obs.Logger().With("component", "transfer-service"),
		endpoints:   make(map[string]*Endpoint),
		activations: make(map[string]*activation),
		tasks:       make(map[string]*Task),
		sem:         make(chan struct{}, cfg.MaxActiveTransfers),
	}
}

// RegisterEndpoint publishes an endpoint to the service.
func (s *Service) RegisterEndpoint(ep Endpoint) error {
	if ep.Name == "" || ep.GridFTPAddr == "" || ep.Trust == nil {
		return errors.New("transfer: endpoint needs name, gridftp address, and trust")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoints[ep.Name] = &ep
	return nil
}

// Endpoints lists registered endpoint names.
func (s *Service) Endpoints() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.endpoints))
	for name := range s.endpoints {
		out = append(out, name)
	}
	return out
}

func (s *Service) endpoint(name string) (*Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep, ok := s.endpoints[name]
	if !ok {
		return nil, fmt.Errorf("transfer: unknown endpoint %q", name)
	}
	return ep, nil
}

func actKey(endpoint, user string) string { return endpoint + "\x00" + user }

// ActivateWithPassword activates an endpoint with the user's site
// username/password: the service passes them to the endpoint's MyProxy CA
// and stores the returned short-term certificate (Fig 6). The password
// does flow through the service — "Globus Online does not store the
// password", and neither do we, but it is *seen*, which PasswordsSeen
// records.
func (s *Service) ActivateWithPassword(endpointName, user, password string) error {
	ep, err := s.endpoint(endpointName)
	if err != nil {
		return err
	}
	if ep.MyProxyAddr == "" {
		return fmt.Errorf("transfer: endpoint %q has no MyProxy service", endpointName)
	}
	s.mu.Lock()
	s.PasswordsSeen++
	s.mu.Unlock()
	// The activation is its own distributed trace: the endpoint's MyProxy
	// server joins it via the traceparent riding on the LOGON request.
	span := s.cfg.Obs.Tracer().StartSpan("activation")
	span.SetAttr("endpoint", endpointName)
	span.SetAttr("user", user)
	defer span.End()
	cred, err := myproxy.Logon(s.host, ep.MyProxyAddr, user, pam.PasswordConv(password),
		myproxy.LogonOptions{Trust: ep.Trust, Trace: span.Context()})
	if err != nil {
		span.SetError(err)
		return fmt.Errorf("transfer: activation of %q failed: %w", endpointName, err)
	}
	s.storeActivation(endpointName, user, cred)
	return nil
}

// UserLoginFunc represents the user's own browser completing the site
// login during OAuth activation: it receives the OAuth base URL and
// session id, performs the login directly with the site, and returns the
// authorization code. The service never handles the password.
type UserLoginFunc func(oauthBaseURL, session string) (code string, err error)

// OAuthClientID is the client identity GCMU OAuth servers know us by.
var OAuthClient = oauth.Client{ID: "globusonline", Secret: "globusonline-secret"}

// ActivateWithOAuth activates an endpoint via its OAuth server: the user
// logs in at the site (login callback), the service exchanges the
// resulting code for a short-term certificate (Fig 7).
func (s *Service) ActivateWithOAuth(endpointName, user string, login UserLoginFunc) error {
	ep, err := s.endpoint(endpointName)
	if err != nil {
		return err
	}
	if ep.OAuthAddr == "" {
		return fmt.Errorf("transfer: endpoint %q has no OAuth service", endpointName)
	}
	base := "https://" + ep.OAuthAddr
	hc := oauth.HTTPClient(s.host, ep.Trust)
	session, err := oauth.Authorize(hc, base, OAuthClient.ID, "activate-"+endpointName)
	if err != nil {
		return err
	}
	code, err := login(base, session)
	if err != nil {
		return fmt.Errorf("transfer: user login failed: %w", err)
	}
	cred, err := oauth.ExchangeCode(hc, base, OAuthClient, code)
	if err != nil {
		return err
	}
	if cred.DN().LastCN() != user {
		return fmt.Errorf("transfer: OAuth credential is for %q, not %q", cred.DN().LastCN(), user)
	}
	s.storeActivation(endpointName, user, cred)
	return nil
}

func (s *Service) storeActivation(endpointName, user string, cred *gsi.Credential) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.activations[actKey(endpointName, user)] = &activation{
		cred:    cred,
		expires: cred.Cert.NotAfter,
	}
}

// Activated reports whether (endpoint, user) holds a live activation.
func (s *Service) Activated(endpointName, user string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.activations[actKey(endpointName, user)]
	return ok && time.Now().Before(a.expires)
}

func (s *Service) credentialFor(endpointName, user string) (*gsi.Credential, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.activations[actKey(endpointName, user)]
	if !ok || time.Now().After(a.expires) {
		return nil, fmt.Errorf("transfer: endpoint %q not activated for %q", endpointName, user)
	}
	return a.cred, nil
}

// Submit queues a transfer task and starts processing it asynchronously.
func (s *Service) Submit(user, srcEndpoint, srcPath, dstEndpoint, dstPath string) (*Task, error) {
	if _, err := s.endpoint(srcEndpoint); err != nil {
		return nil, err
	}
	if _, err := s.endpoint(dstEndpoint); err != nil {
		return nil, err
	}
	if !s.Activated(srcEndpoint, user) || !s.Activated(dstEndpoint, user) {
		return nil, errors.New("transfer: both endpoints must be activated first")
	}
	// The tenant identity is the DN of the activation credential just
	// verified above; endpoint-local usernames are not globally unique.
	var dn string
	if cred, err := s.credentialFor(srcEndpoint, user); err == nil {
		dn = string(cred.DN())
	}
	s.mu.Lock()
	s.nextTask++
	task := &Task{
		ID:      fmt.Sprintf("task-%06d", s.nextTask),
		User:    user,
		DN:      dn,
		Src:     srcEndpoint,
		SrcPath: srcPath,
		Dst:     dstEndpoint,
		DstPath: dstPath,
		Status:  TaskQueued,
		Started: time.Now(),
	}
	s.tasks[task.ID] = task
	snapshot := *task
	s.mu.Unlock()
	s.cfg.Tenants.TaskSubmitted(dn)
	go s.run(task)
	// Return a snapshot: the live task is mutated concurrently by run().
	return &snapshot, nil
}

// Wait blocks until the task reaches a terminal state (or the timeout).
func (s *Service) Wait(taskID string, timeout time.Duration) (*Task, error) {
	deadline := time.Now().Add(timeout)
	for {
		t, err := s.TaskStatus(taskID)
		if err != nil {
			return nil, err
		}
		if t.Status == TaskSucceeded || t.Status == TaskFailed {
			return t, nil
		}
		if time.Now().After(deadline) {
			return t, fmt.Errorf("transfer: task %s still %s after %v", taskID, t.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TaskStatus returns a snapshot of the task.
func (s *Service) TaskStatus(taskID string) (*Task, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[taskID]
	if !ok {
		return nil, fmt.Errorf("transfer: unknown task %q", taskID)
	}
	cp := *t
	cp.Markers = append([]gridftp.Range(nil), t.Markers...)
	return &cp, nil
}

func (s *Service) update(task *Task, f func(*Task)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(task)
}

// run drives one task to completion, retrying from restart markers.
func (s *Service) run(task *Task) {
	s.update(task, func(t *Task) { t.Status = TaskActive })
	reg := s.cfg.Obs.Registry()
	ev := s.cfg.Obs.EventLog()
	reg.Counter("transfer.tasks_total").Inc()
	log := s.log.With("task", task.ID, "src", task.Src, "dst", task.Dst)
	log.Info("task started", "user", task.User)
	span := s.cfg.Obs.Tracer().StartSpan("task")
	span.SetAttr("task", task.ID)
	span.SetAttr("src", task.Src)
	span.SetAttr("dst", task.Dst)
	ev.Append(eventlog.TaskStart, "component", "transfer-service",
		"task", task.ID, "user", task.User, "src", task.Src, "dst", task.Dst,
		"trace", span.TraceID.String(), "span", span.SpanID.String())
	var plan *transferPlan
	var lastErr error
	for attempt := 1; attempt <= s.cfg.RetryLimit; attempt++ {
		s.update(task, func(t *Task) { t.Attempts = attempt })
		err := s.attempt(task, &plan, span)
		s.recordWireEvidence(task, attempt, span.TraceID.String())
		if err == nil {
			s.update(task, func(t *Task) {
				t.Status = TaskSucceeded
				t.Finished = time.Now()
				t.Error = ""
			})
			span.SetAttr("attempts", attempt)
			span.End()
			reg.Counter("transfer.tasks_succeeded").Inc()
			s.cfg.Tenants.TaskDone(task.DN, true)
			s.retireTaskSeries(task.ID)
			s.observeTask(time.Since(task.Started), true, span.TraceID.String())
			log.Info("task succeeded", "attempts", attempt,
				"bytes", task.BytesTransferred,
				"dur", time.Since(task.Started).Round(time.Microsecond))
			ev.Append(eventlog.TaskComplete, "component", "transfer-service",
				"task", task.ID, "status", string(TaskSucceeded),
				"attempts", attempt, "bytes", task.BytesTransferred,
				"trace", span.TraceID.String())
			return
		}
		lastErr = err
		reg.Counter("transfer.attempt_failures").Inc()
		log.Warn("attempt failed", "attempt", attempt, "err", err)
		ev.Append(eventlog.TransferRetry, "component", "transfer-service",
			"task", task.ID, "attempt", attempt, "err", err.Error(),
			"trace", span.TraceID.String())
		if s.cfg.DisableCheckpointing && plan != nil {
			plan.clearMarkers()
		}
		// Sleep only between attempts: a permanently failing task should
		// report failure immediately after its last attempt.
		if attempt < s.cfg.RetryLimit {
			time.Sleep(s.cfg.RetryDelay)
		}
	}
	s.update(task, func(t *Task) {
		t.Status = TaskFailed
		t.Finished = time.Now()
		t.Error = lastErr.Error()
	})
	span.SetError(lastErr)
	span.End()
	reg.Counter("transfer.tasks_failed").Inc()
	s.cfg.Tenants.TaskDone(task.DN, false)
	s.retireTaskSeries(task.ID)
	s.observeTask(time.Since(task.Started), false, span.TraceID.String())
	log.Error("task failed", "err", lastErr)
	ev.Append(eventlog.TaskComplete, "component", "transfer-service",
		"task", task.ID, "status", string(TaskFailed), "err", lastErr.Error(),
		"trace", span.TraceID.String())
}

// retireTaskSeries hands the task's tsdb timelines back at terminal
// state: everything minted under "transfer.task.<id>." — the perfAgg's
// bytes/throughput/per-worker series and the wire-evidence series — is
// tombstoned (after RetireGrace, when configured), stays queryable for
// the recorder's horizon, then has its memory reclaimed. This is what
// keeps series cardinality bounded by the active task set plus the
// horizon instead of growing with every task ever run.
func (s *Service) retireTaskSeries(taskID string) {
	prefix := "transfer.task." + taskID + "."
	if s.cfg.RetireGrace <= 0 {
		s.cfg.Obs.RetireSeries(prefix)
		return
	}
	time.AfterFunc(s.cfg.RetireGrace, func() { s.cfg.Obs.RetireSeries(prefix) })
}

// recordWireEvidence closes out one attempt against the stream-telemetry
// plane: it aggregates every tracked transfer labeled with the task id
// (both the "<task>" destination and "<task>-src" source legs, installed
// on the endpoints via SITE TASK) and records the attempt's retransmit
// total, worst inter-stream imbalance, and stall-abort count as a
// transfer.wire event plus per-task series. This is the wire-level
// counterpart of the 112 PERF progress view: PERF says how far the
// attempt got, the wire evidence says why it went no faster.
func (s *Service) recordWireEvidence(task *Task, attempt int, traceID string) {
	ws, ok := s.cfg.Streams.WireSummary(task.ID)
	if !ok {
		return
	}
	now := time.Now()
	sink := s.cfg.Obs.TimeSeries()
	prefix := "transfer.task." + task.ID
	sink.Observe(prefix+".imbalance", now, ws.Imbalance)
	sink.Observe(prefix+".retransmits", now, float64(ws.Retransmits))
	if ws.Retransmits > 0 {
		s.cfg.Obs.Registry().Counter("transfer.wire_retransmits").Add(ws.Retransmits)
	}
	if ws.Stalls > 0 {
		s.cfg.Obs.Registry().Counter("transfer.stall_aborts").Add(int64(ws.Stalls))
	}
	s.cfg.Obs.EventLog().Append(eventlog.TransferWire,
		"component", "transfer-service", "task", task.ID, "attempt", attempt,
		"transfers", ws.Transfers, "retransmits", ws.Retransmits,
		"imbalance", ws.Imbalance, "stalls", ws.Stalls, "trace", traceID)
}

// observeTask records the task duration on the aggregate histogram and on
// the outcome-labeled series, carrying the task span's trace id as the
// bucket exemplar.
func (s *Service) observeTask(dur time.Duration, ok bool, traceID string) {
	reg := s.cfg.Obs.Registry()
	reg.Histogram("transfer.task_seconds", obs.DefaultDurationBuckets).
		ObserveExemplar(dur.Seconds(), traceID)
	outcome := "outcome=ok"
	if !ok {
		outcome = "outcome=err"
	}
	reg.Histogram(obs.Name("transfer.task_seconds", outcome), obs.DefaultDurationBuckets).
		ObserveExemplar(dur.Seconds(), traceID)
}

// attempt reauthenticates to both endpoints with the stored short-term
// certificates (§VI.B) and advances the plan as far as it can: building it
// on the first attempt (single file, or a recursive directory walk that
// captures sizes, so no per-file SIZE commands are ever issued), then
// fanning the pending files out across the scheduler's worker session
// pairs, each file resuming from its saved restart markers.
func (s *Service) attempt(task *Task, planp **transferPlan, taskSpan *obs.Span) error {
	srcEP, err := s.endpoint(task.Src)
	if err != nil {
		return err
	}
	dstEP, err := s.endpoint(task.Dst)
	if err != nil {
		return err
	}

	// Activation phase: resolve the stored short-term certificates and
	// derive the per-attempt proxies (§VI.B reauthentication).
	actSpan := taskSpan.Child("activate")
	srcCred, err := s.credentialFor(task.Src, task.User)
	if err != nil {
		actSpan.SetError(err)
		actSpan.End()
		return err
	}
	dstCred, err := s.credentialFor(task.Dst, task.User)
	if err != nil {
		actSpan.SetError(err)
		actSpan.End()
		return err
	}
	srcProxy, err := gsi.NewProxy(srcCred, gsi.ProxyOptions{})
	if err != nil {
		actSpan.SetError(err)
		actSpan.End()
		return err
	}
	dstProxy, err := gsi.NewProxy(dstCred, gsi.ProxyOptions{})
	if err != nil {
		actSpan.SetError(err)
		actSpan.End()
		return err
	}
	actSpan.End()

	// Control phase: dial the primary session pair — authenticate,
	// delegate, join the task trace, set marker cadence, and (cross-CA,
	// §V) install the source credential on the destination via DCSC once
	// for the whole session instead of once per file.
	ctlSpan := taskSpan.Child("control")
	crossCA := task.crossCA(srcEP, dstEP)
	primary, err := s.dialPair(srcEP, dstEP, srcProxy, dstProxy, taskSpan.Context(), crossCA, task.ID)
	if err != nil {
		ctlSpan.SetError(err)
		ctlSpan.End()
		return err
	}
	defer primary.Close()
	// One timed NOOP estimates the control-channel RTT; it sizes the
	// fan-out and the autotuner's stream budget.
	rtt := primary.measureRTT()
	ctlSpan.SetAttr("rtt_ms", float64(rtt)/float64(time.Millisecond))
	ctlSpan.End()

	s.update(task, func(t *Task) { t.PerfBytes = 0; t.PerfMarkers = 0 })

	if *planp == nil {
		plan, err := s.buildPlan(task, primary.src, primary.dst)
		if err != nil {
			return err
		}
		*planp = plan
		s.update(task, func(t *Task) { t.TotalFiles = len(plan.files) })
	}
	plan := *planp

	pending := plan.pending()
	if len(pending) == 0 {
		return nil
	}
	workers := s.workerCount(len(pending), rtt)
	tuner := newAutotuner(s.cfg, rtt, workers)
	s.update(task, func(t *Task) { t.Workers = workers })
	taskSpan.SetAttr("workers", workers)
	s.cfg.Obs.Registry().Gauge("transfer.task_workers").Max(int64(workers))
	return s.schedule(task, plan, primary, srcEP, dstEP, srcProxy, dstProxy,
		taskSpan, pending, workers, tuner)
}

// crossCA reports whether the two endpoints live in different trust
// domains (the destination does not trust the source's CA).
func (t *Task) crossCA(src, dst *Endpoint) bool {
	if src.CADN == "" || dst.CADN == "" {
		return false
	}
	if src.CADN == dst.CADN {
		return false
	}
	for _, dn := range dst.Trust.CAs() {
		if dn == src.CADN {
			return false
		}
	}
	return true
}
