// Package transfer implements a Globus Online-style hosted transfer
// service (§VI of the paper): a third-party mediator that activates GCMU
// endpoints on the user's behalf (username/password via MyProxy, or OAuth
// so the password never reaches the service), runs third-party GridFTP
// transfers between them, auto-tunes transfer options, monitors progress
// via restart markers, and on failure reauthenticates with the stored
// short-term certificate and restarts from the last checkpoint.
package transfer

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/myproxy"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/oauth"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/pam"
)

// Endpoint is a GridFTP endpoint registered with the service (what a GCMU
// install publishes when the admin opts in, §VI.B).
type Endpoint struct {
	Name        string
	GridFTPAddr string
	MyProxyAddr string
	OAuthAddr   string // optional; enables password-less activation
	// Trust holds the endpoint's CA root(s), published at registration.
	Trust *gsi.TrustStore
	// CADN is the endpoint CA's DN, used to detect cross-CA transfers.
	CADN gsi.DN
}

// activation is a live short-term credential for (endpoint, user).
type activation struct {
	cred    *gsi.Credential
	expires time.Time
}

// TaskStatus is a transfer task's lifecycle state.
type TaskStatus string

// Task states.
const (
	TaskQueued    TaskStatus = "QUEUED"
	TaskActive    TaskStatus = "ACTIVE"
	TaskSucceeded TaskStatus = "SUCCEEDED"
	TaskFailed    TaskStatus = "FAILED"
)

// Task is one submitted transfer.
type Task struct {
	ID       string
	User     string
	Src, Dst string // endpoint names
	SrcPath  string
	DstPath  string

	Status   TaskStatus
	Attempts int
	// TotalFiles/CompletedFiles track directory (recursive) transfers;
	// a single-file task has TotalFiles == 1.
	TotalFiles     int
	CompletedFiles int
	// BytesTransferred counts bytes moved across all attempts; with
	// checkpointing, retries move only the missing remainder.
	BytesTransferred int64
	FileSize         int64
	// PerfBytes is the in-flight progress of the current file as reported
	// by 112 performance markers (sum across stripes); PerfMarkers counts
	// how many markers the current attempt has observed. Unlike
	// BytesTransferred (updated at file completion), these move *during*
	// the transfer — they are the service's live progress view.
	PerfBytes   int64
	PerfMarkers int
	Error       string
	Markers     []gridftp.Range
	Started     time.Time
	Finished    time.Time
	Parallelism int
}

// Config tunes the service.
type Config struct {
	// RetryLimit is the number of attempts per task (default 5).
	RetryLimit int
	// RetryDelay between attempts (default 50ms in simulation).
	RetryDelay time.Duration
	// DisableCheckpointing makes retries start from byte 0 — the
	// ablation that quantifies what restart markers buy (E6).
	DisableCheckpointing bool
	// DisableAutotune pins parallelism to 1 instead of sizing it to the
	// file (ablation).
	DisableAutotune bool
	// Obs receives structured logs, metrics, and per-task span trees
	// (activation → control → data). Nil disables observability.
	Obs *obs.Obs
}

// Service is the hosted transfer service.
type Service struct {
	host *netsim.Host
	cfg  Config
	log  *obs.Logger

	mu          sync.Mutex
	endpoints   map[string]*Endpoint
	activations map[string]*activation // key: endpoint + "\x00" + user
	tasks       map[string]*Task
	nextTask    int

	// PasswordsSeen counts secrets that flowed through the service —
	// the quantity OAuth activation drives to zero (§VI, Fig 7).
	PasswordsSeen int
}

// NewService creates a transfer service living on the given host.
func NewService(host *netsim.Host, cfg Config) *Service {
	if cfg.RetryLimit == 0 {
		cfg.RetryLimit = 5
	}
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = 50 * time.Millisecond
	}
	return &Service{
		host:        host,
		cfg:         cfg,
		log:         cfg.Obs.Logger().With("component", "transfer-service"),
		endpoints:   make(map[string]*Endpoint),
		activations: make(map[string]*activation),
		tasks:       make(map[string]*Task),
	}
}

// RegisterEndpoint publishes an endpoint to the service.
func (s *Service) RegisterEndpoint(ep Endpoint) error {
	if ep.Name == "" || ep.GridFTPAddr == "" || ep.Trust == nil {
		return errors.New("transfer: endpoint needs name, gridftp address, and trust")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoints[ep.Name] = &ep
	return nil
}

// Endpoints lists registered endpoint names.
func (s *Service) Endpoints() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.endpoints))
	for name := range s.endpoints {
		out = append(out, name)
	}
	return out
}

func (s *Service) endpoint(name string) (*Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep, ok := s.endpoints[name]
	if !ok {
		return nil, fmt.Errorf("transfer: unknown endpoint %q", name)
	}
	return ep, nil
}

func actKey(endpoint, user string) string { return endpoint + "\x00" + user }

// ActivateWithPassword activates an endpoint with the user's site
// username/password: the service passes them to the endpoint's MyProxy CA
// and stores the returned short-term certificate (Fig 6). The password
// does flow through the service — "Globus Online does not store the
// password", and neither do we, but it is *seen*, which PasswordsSeen
// records.
func (s *Service) ActivateWithPassword(endpointName, user, password string) error {
	ep, err := s.endpoint(endpointName)
	if err != nil {
		return err
	}
	if ep.MyProxyAddr == "" {
		return fmt.Errorf("transfer: endpoint %q has no MyProxy service", endpointName)
	}
	s.mu.Lock()
	s.PasswordsSeen++
	s.mu.Unlock()
	// The activation is its own distributed trace: the endpoint's MyProxy
	// server joins it via the traceparent riding on the LOGON request.
	span := s.cfg.Obs.Tracer().StartSpan("activation")
	span.SetAttr("endpoint", endpointName)
	span.SetAttr("user", user)
	defer span.End()
	cred, err := myproxy.Logon(s.host, ep.MyProxyAddr, user, pam.PasswordConv(password),
		myproxy.LogonOptions{Trust: ep.Trust, Trace: span.Context()})
	if err != nil {
		span.SetError(err)
		return fmt.Errorf("transfer: activation of %q failed: %w", endpointName, err)
	}
	s.storeActivation(endpointName, user, cred)
	return nil
}

// UserLoginFunc represents the user's own browser completing the site
// login during OAuth activation: it receives the OAuth base URL and
// session id, performs the login directly with the site, and returns the
// authorization code. The service never handles the password.
type UserLoginFunc func(oauthBaseURL, session string) (code string, err error)

// OAuthClientID is the client identity GCMU OAuth servers know us by.
var OAuthClient = oauth.Client{ID: "globusonline", Secret: "globusonline-secret"}

// ActivateWithOAuth activates an endpoint via its OAuth server: the user
// logs in at the site (login callback), the service exchanges the
// resulting code for a short-term certificate (Fig 7).
func (s *Service) ActivateWithOAuth(endpointName, user string, login UserLoginFunc) error {
	ep, err := s.endpoint(endpointName)
	if err != nil {
		return err
	}
	if ep.OAuthAddr == "" {
		return fmt.Errorf("transfer: endpoint %q has no OAuth service", endpointName)
	}
	base := "https://" + ep.OAuthAddr
	hc := oauth.HTTPClient(s.host, ep.Trust)
	session, err := oauth.Authorize(hc, base, OAuthClient.ID, "activate-"+endpointName)
	if err != nil {
		return err
	}
	code, err := login(base, session)
	if err != nil {
		return fmt.Errorf("transfer: user login failed: %w", err)
	}
	cred, err := oauth.ExchangeCode(hc, base, OAuthClient, code)
	if err != nil {
		return err
	}
	if cred.DN().LastCN() != user {
		return fmt.Errorf("transfer: OAuth credential is for %q, not %q", cred.DN().LastCN(), user)
	}
	s.storeActivation(endpointName, user, cred)
	return nil
}

func (s *Service) storeActivation(endpointName, user string, cred *gsi.Credential) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.activations[actKey(endpointName, user)] = &activation{
		cred:    cred,
		expires: cred.Cert.NotAfter,
	}
}

// Activated reports whether (endpoint, user) holds a live activation.
func (s *Service) Activated(endpointName, user string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.activations[actKey(endpointName, user)]
	return ok && time.Now().Before(a.expires)
}

func (s *Service) credentialFor(endpointName, user string) (*gsi.Credential, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.activations[actKey(endpointName, user)]
	if !ok || time.Now().After(a.expires) {
		return nil, fmt.Errorf("transfer: endpoint %q not activated for %q", endpointName, user)
	}
	return a.cred, nil
}

// Submit queues a transfer task and starts processing it asynchronously.
func (s *Service) Submit(user, srcEndpoint, srcPath, dstEndpoint, dstPath string) (*Task, error) {
	if _, err := s.endpoint(srcEndpoint); err != nil {
		return nil, err
	}
	if _, err := s.endpoint(dstEndpoint); err != nil {
		return nil, err
	}
	if !s.Activated(srcEndpoint, user) || !s.Activated(dstEndpoint, user) {
		return nil, errors.New("transfer: both endpoints must be activated first")
	}
	s.mu.Lock()
	s.nextTask++
	task := &Task{
		ID:      fmt.Sprintf("task-%06d", s.nextTask),
		User:    user,
		Src:     srcEndpoint,
		SrcPath: srcPath,
		Dst:     dstEndpoint,
		DstPath: dstPath,
		Status:  TaskQueued,
		Started: time.Now(),
	}
	s.tasks[task.ID] = task
	snapshot := *task
	s.mu.Unlock()
	go s.run(task)
	// Return a snapshot: the live task is mutated concurrently by run().
	return &snapshot, nil
}

// Wait blocks until the task reaches a terminal state (or the timeout).
func (s *Service) Wait(taskID string, timeout time.Duration) (*Task, error) {
	deadline := time.Now().Add(timeout)
	for {
		t, err := s.TaskStatus(taskID)
		if err != nil {
			return nil, err
		}
		if t.Status == TaskSucceeded || t.Status == TaskFailed {
			return t, nil
		}
		if time.Now().After(deadline) {
			return t, fmt.Errorf("transfer: task %s still %s after %v", taskID, t.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TaskStatus returns a snapshot of the task.
func (s *Service) TaskStatus(taskID string) (*Task, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[taskID]
	if !ok {
		return nil, fmt.Errorf("transfer: unknown task %q", taskID)
	}
	cp := *t
	cp.Markers = append([]gridftp.Range(nil), t.Markers...)
	return &cp, nil
}

func (s *Service) update(task *Task, f func(*Task)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(task)
}

// autotune picks the parallelism Globus Online would (§VI.A: "the ability
// to automatically tune GridFTP transfer options for high performance").
func (s *Service) autotune(size int64) int {
	if s.cfg.DisableAutotune {
		return 1
	}
	switch {
	case size >= 100<<20:
		return 8
	case size >= 10<<20:
		return 4
	case size >= 1<<20:
		return 2
	default:
		return 1
	}
}

// run drives one task to completion, retrying from restart markers.
// transferPlan is the durable state a task carries across attempts: the
// file list (one empty-string entry for a single-file task), the index of
// the first incomplete file, and the restart markers for it.
type transferPlan struct {
	files   []string
	next    int
	markers []gridftp.Range
}

func (s *Service) run(task *Task) {
	s.update(task, func(t *Task) { t.Status = TaskActive })
	reg := s.cfg.Obs.Registry()
	ev := s.cfg.Obs.EventLog()
	reg.Counter("transfer.tasks_total").Inc()
	log := s.log.With("task", task.ID, "src", task.Src, "dst", task.Dst)
	log.Info("task started", "user", task.User)
	span := s.cfg.Obs.Tracer().StartSpan("task")
	span.SetAttr("task", task.ID)
	span.SetAttr("src", task.Src)
	span.SetAttr("dst", task.Dst)
	ev.Append(eventlog.TaskStart, "component", "transfer-service",
		"task", task.ID, "user", task.User, "src", task.Src, "dst", task.Dst,
		"trace", span.TraceID.String(), "span", span.SpanID.String())
	var plan *transferPlan
	var lastErr error
	for attempt := 1; attempt <= s.cfg.RetryLimit; attempt++ {
		s.update(task, func(t *Task) { t.Attempts = attempt })
		err := s.attempt(task, &plan, span)
		if err == nil {
			s.update(task, func(t *Task) {
				t.Status = TaskSucceeded
				t.Finished = time.Now()
				t.Error = ""
			})
			span.SetAttr("attempts", attempt)
			span.End()
			reg.Counter("transfer.tasks_succeeded").Inc()
			s.observeTask(time.Since(task.Started), true)
			log.Info("task succeeded", "attempts", attempt,
				"bytes", task.BytesTransferred,
				"dur", time.Since(task.Started).Round(time.Microsecond))
			ev.Append(eventlog.TaskComplete, "component", "transfer-service",
				"task", task.ID, "status", string(TaskSucceeded),
				"attempts", attempt, "bytes", task.BytesTransferred,
				"trace", span.TraceID.String())
			return
		}
		lastErr = err
		reg.Counter("transfer.attempt_failures").Inc()
		log.Warn("attempt failed", "attempt", attempt, "err", err)
		ev.Append(eventlog.TransferRetry, "component", "transfer-service",
			"task", task.ID, "attempt", attempt, "err", err.Error(),
			"trace", span.TraceID.String())
		if s.cfg.DisableCheckpointing && plan != nil {
			plan.markers = nil
		}
		time.Sleep(s.cfg.RetryDelay)
	}
	s.update(task, func(t *Task) {
		t.Status = TaskFailed
		t.Finished = time.Now()
		t.Error = lastErr.Error()
	})
	span.SetError(lastErr)
	span.End()
	reg.Counter("transfer.tasks_failed").Inc()
	s.observeTask(time.Since(task.Started), false)
	log.Error("task failed", "err", lastErr)
	ev.Append(eventlog.TaskComplete, "component", "transfer-service",
		"task", task.ID, "status", string(TaskFailed), "err", lastErr.Error(),
		"trace", span.TraceID.String())
}

// observeTask records the task duration on the aggregate histogram and on
// the outcome-labeled series.
func (s *Service) observeTask(dur time.Duration, ok bool) {
	reg := s.cfg.Obs.Registry()
	reg.Histogram("transfer.task_seconds", obs.DefaultDurationBuckets).Observe(dur.Seconds())
	outcome := "outcome=ok"
	if !ok {
		outcome = "outcome=err"
	}
	reg.Histogram(obs.Name("transfer.task_seconds", outcome), obs.DefaultDurationBuckets).
		Observe(dur.Seconds())
}

// attempt reauthenticates to both endpoints with the stored short-term
// certificates (§VI.B) and advances the plan as far as it can: building it
// on the first attempt (single file, or a recursive directory walk) and
// then transferring the remaining files third-party, resuming the first
// incomplete file from its restart markers.
func (s *Service) attempt(task *Task, planp **transferPlan, taskSpan *obs.Span) error {
	srcEP, err := s.endpoint(task.Src)
	if err != nil {
		return err
	}
	dstEP, err := s.endpoint(task.Dst)
	if err != nil {
		return err
	}

	// Activation phase: resolve the stored short-term certificates and
	// derive the per-attempt proxies (§VI.B reauthentication).
	actSpan := taskSpan.Child("activate")
	srcCred, err := s.credentialFor(task.Src, task.User)
	if err != nil {
		actSpan.SetError(err)
		actSpan.End()
		return err
	}
	dstCred, err := s.credentialFor(task.Dst, task.User)
	if err != nil {
		actSpan.SetError(err)
		actSpan.End()
		return err
	}
	srcProxy, err := gsi.NewProxy(srcCred, gsi.ProxyOptions{})
	if err != nil {
		actSpan.SetError(err)
		actSpan.End()
		return err
	}
	dstProxy, err := gsi.NewProxy(dstCred, gsi.ProxyOptions{})
	if err != nil {
		actSpan.SetError(err)
		actSpan.End()
		return err
	}
	actSpan.End()

	// Control phase: dial both endpoints, authenticate, delegate.
	ctlSpan := taskSpan.Child("control")
	dialOpts := gridftp.DialOptions{Obs: s.cfg.Obs}
	srcClient, err := gridftp.DialWithOptions(s.host, srcEP.GridFTPAddr, srcProxy, srcEP.Trust, dialOpts)
	if err != nil {
		ctlSpan.SetError(err)
		ctlSpan.End()
		return err
	}
	defer srcClient.Close()
	dstClient, err := gridftp.DialWithOptions(s.host, dstEP.GridFTPAddr, dstProxy, dstEP.Trust, dialOpts)
	if err != nil {
		ctlSpan.SetError(err)
		ctlSpan.End()
		return err
	}
	defer dstClient.Close()
	if err := srcClient.Delegate(2 * time.Hour); err != nil {
		ctlSpan.SetError(err)
		ctlSpan.End()
		return err
	}
	if err := dstClient.Delegate(2 * time.Hour); err != nil {
		ctlSpan.SetError(err)
		ctlSpan.End()
		return err
	}
	// Bind both servers' transfer spans to this task's trace (SITE TRACE).
	// Endpoints without the TRACE feature keep rooting spans locally.
	if _, err := srcClient.PropagateTrace(taskSpan.Context()); err != nil {
		ctlSpan.SetError(err)
		ctlSpan.End()
		return err
	}
	if _, err := dstClient.PropagateTrace(taskSpan.Context()); err != nil {
		ctlSpan.SetError(err)
		ctlSpan.End()
		return err
	}
	ctlSpan.End()
	dstClient.SetMarkerInterval(25 * time.Millisecond)

	// In-flight progress: the destination parses the server's 112
	// performance markers during the transfer; each one refreshes the
	// task's live PerfBytes/PerfMarkers view.
	reg := s.cfg.Obs.Registry()
	s.update(task, func(t *Task) { t.PerfBytes = 0; t.PerfMarkers = 0 })
	dstClient.OnPerf(func(m gridftp.PerfMarker) {
		total, _, markers := dstClient.PerfSnapshot()
		reg.Counter("transfer.perf_markers").Inc()
		s.update(task, func(t *Task) {
			t.PerfBytes = total
			t.PerfMarkers = markers
		})
	})

	if *planp == nil {
		plan, err := s.buildPlan(task, srcClient, dstClient)
		if err != nil {
			return err
		}
		*planp = plan
		s.update(task, func(t *Task) { t.TotalFiles = len(plan.files) })
	}
	plan := *planp

	baseOpts := gridftp.ThirdPartyOptions{}
	// Cross-CA endpoints need DCSC (§V): hand the source credential to
	// the destination so both ends present/accept the same identity.
	if task.crossCA(srcEP, dstEP) {
		baseOpts.DCSC = srcProxy
		baseOpts.DCSCTarget = gridftp.DCSCDest
	}

	for plan.next < len(plan.files) {
		rel := plan.files[plan.next]
		srcPath, dstPath := task.SrcPath, task.DstPath
		if rel != "" {
			srcPath = strings.TrimSuffix(task.SrcPath, "/") + "/" + rel
			dstPath = strings.TrimSuffix(task.DstPath, "/") + "/" + rel
		}
		size, err := srcClient.Size(srcPath)
		if err != nil {
			return err
		}
		par := s.autotune(size)
		s.update(task, func(t *Task) { t.FileSize = size; t.Parallelism = par })
		if err := srcClient.SetParallelism(par); err != nil {
			return err
		}
		if err := dstClient.SetParallelism(par); err != nil {
			return err
		}

		opts := baseOpts
		opts.Restart = plan.markers
		latest := plan.markers
		opts.OnMarker = func(rs []gridftp.Range) { latest = rs }
		already := gridftp.FromRanges(plan.markers).Covered()

		// Data phase: one span per file, third-party MODE E transfer.
		dataSpan := taskSpan.Child("data")
		dataSpan.SetAttr("path", srcPath)
		dataSpan.SetAttr("size", size)
		dataSpan.SetAttr("parallelism", par)
		_, terr := gridftp.ThirdParty(srcClient, srcPath, dstClient, dstPath, opts)
		if terr != nil {
			dataSpan.SetError(terr)
			dataSpan.End()
			movedNow := gridftp.FromRanges(latest).Covered() - already
			if movedNow < 0 {
				movedNow = 0
			}
			plan.markers = latest
			s.update(task, func(t *Task) {
				t.BytesTransferred += movedNow
				t.Markers = latest
			})
			reg.Counter("transfer.bytes_total").Add(movedNow)
			return terr
		}
		dataSpan.End()
		plan.next++
		plan.markers = nil
		s.update(task, func(t *Task) {
			t.BytesTransferred += size - already
			t.CompletedFiles = plan.next
			t.Markers = nil
		})
		reg.Counter("transfer.bytes_total").Add(size - already)
		reg.Counter("transfer.files_total").Inc()
	}
	return nil
}

// buildPlan resolves the task source into a file list, creating the
// destination directory tree for recursive transfers.
func (s *Service) buildPlan(task *Task, src, dst *gridftp.Client) (*transferPlan, error) {
	entry, err := src.StatEntry(task.SrcPath)
	if err != nil {
		return nil, err
	}
	if !entry.IsDir {
		return &transferPlan{files: []string{""}}, nil
	}
	files, err := src.Walk(task.SrcPath)
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	// Create the destination tree (root plus every parent directory).
	dirs := map[string]bool{strings.TrimSuffix(task.DstPath, "/"): true}
	for _, rel := range files {
		d := strings.TrimSuffix(task.DstPath, "/")
		parts := strings.Split(rel, "/")
		for _, p := range parts[:len(parts)-1] {
			d += "/" + p
			dirs[d] = true
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted) // parents before children
	for _, d := range sorted {
		if err := dst.Mkdir(d); err != nil {
			// Tolerate pre-existing directories.
			if _, serr := dst.StatEntry(d); serr != nil {
				return nil, err
			}
		}
	}
	return &transferPlan{files: files}, nil
}

// crossCA reports whether the two endpoints live in different trust
// domains (the destination does not trust the source's CA).
func (t *Task) crossCA(src, dst *Endpoint) bool {
	if src.CADN == "" || dst.CADN == "" {
		return false
	}
	if src.CADN == dst.CADN {
		return false
	}
	for _, dn := range dst.Trust.CAs() {
		if dn == src.CADN {
			return false
		}
	}
	return true
}
