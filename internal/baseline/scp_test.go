package baseline

import (
	"bytes"
	"testing"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

func scpServer(t *testing.T, nw *netsim.Network, hostName string) (*SCPServer, string, *dsi.MemStorage) {
	t.Helper()
	ca, err := gsi.NewCA("/O=x/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	hostCred, err := ca.Issue(gsi.IssueOptions{Subject: gsi.DN("/O=x/CN=" + hostName), Lifetime: time.Hour, Host: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := pam.NewLDAPDirectory("dc=x")
	dir.AddEntry("alice", "pw")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	stack := pam.NewStack("sshd", accounts, pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	storage := dsi.NewMemStorage()
	storage.AddUser("alice")
	srv := &SCPServer{HostCred: hostCred, Auth: stack, Storage: storage}
	addr, err := srv.ListenAndServe(nw.Host(hostName), SCPPort)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String(), storage
}

func TestSCPPutGet(t *testing.T) {
	nw := netsim.NewNetwork()
	_, addr, storage := scpServer(t, nw, "server")
	payload := bytes.Repeat([]byte("scp"), 50000)
	n, err := SCPPut(nw.Host("laptop"), addr, "alice", "pw", "/f.bin", dsi.NewBufferFile(payload))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("put %d bytes", n)
	}
	f, err := storage.Open("alice", "/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dsi.ReadAll(f)
	if !bytes.Equal(got, payload) {
		t.Fatal("server content mismatch")
	}
	dst := dsi.NewBufferFile(nil)
	if _, err := SCPGet(nw.Host("laptop"), addr, "alice", "pw", "/f.bin", dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("download mismatch")
	}
}

func TestSCPWrongPassword(t *testing.T) {
	nw := netsim.NewNetwork()
	_, addr, _ := scpServer(t, nw, "server")
	if _, err := SCPGet(nw.Host("laptop"), addr, "alice", "bad", "/f", dsi.NewBufferFile(nil)); err == nil {
		t.Fatal("wrong password accepted")
	}
}

func TestSCPMissingFile(t *testing.T) {
	nw := netsim.NewNetwork()
	_, addr, _ := scpServer(t, nw, "server")
	if _, err := SCPGet(nw.Host("laptop"), addr, "alice", "pw", "/ghost", dsi.NewBufferFile(nil)); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestSCPRelayRoutesThroughClient(t *testing.T) {
	// Two servers on a fast mutual link; the client hangs off a slow
	// link. SCP relay must pay the slow path twice.
	nw := netsim.NewNetwork()
	fast := netsim.LinkParams{Bandwidth: 100e6, RTT: time.Millisecond, StreamWindow: 1 << 22}
	slow := netsim.LinkParams{Bandwidth: 2e6, RTT: 20 * time.Millisecond, StreamWindow: 1 << 22}
	nw.SetLink("srcsrv", "dstsrv", fast)
	nw.SetLink("laptop", "srcsrv", slow)
	nw.SetLink("laptop", "dstsrv", slow)

	_, srcAddr, srcStorage := scpServer(t, nw, "srcsrv")
	_, dstAddr, dstStorage := scpServer(t, nw, "dstsrv")

	payload := bytes.Repeat([]byte("x"), 400*1024)
	f, _ := srcStorage.Create("alice", "/src.bin")
	dsi.WriteAll(f, payload)
	f.Close()

	start := time.Now()
	n, err := SCPRelay(nw.Host("laptop"), srcAddr, "alice", "pw", "/src.bin",
		dstAddr, "alice", "pw", "/dst.bin")
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if n != int64(len(payload)) {
		t.Fatalf("relayed %d bytes", n)
	}
	g, _ := dstStorage.Open("alice", "/dst.bin")
	got, _ := dsi.ReadAll(g)
	if !bytes.Equal(got, payload) {
		t.Fatal("relay content mismatch")
	}
	// 400 KiB over a 2 MB/s slow link, twice (down then up) >= ~400 ms.
	if elapsed < 300*time.Millisecond {
		t.Fatalf("relay finished in %v; should be bottlenecked by the client uplink", elapsed)
	}
}
