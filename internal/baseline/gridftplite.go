package baseline

import (
	"bufio"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

// GridFTP-Lite (§III.B of the paper): "GridFTP-Lite uses SSH for user
// authentication. Specifically, it uses SSH to dynamically start a GridFTP
// server on a target machine and then uses that SSH session to tunnel the
// GridFTP control channel." The SSH transport is modelled with TLS
// (equivalent cryptography) plus PAM password authentication, exactly as
// the SCP baseline does; after authentication the connection is handed to
// a GridFTP session running in lite mode, which enforces the §III.B
// limitations (no data channel security, no delegation, no striping).

// LitePort is the SSH port the lite launcher listens on.
const LitePort = 22

// LiteServer is the sshd-side launcher.
type LiteServer struct {
	HostCred *gsi.Credential
	Auth     *pam.Stack
	// GridFTP is the server whose storage/config lite sessions use.
	GridFTP *gridftp.Server

	listener net.Listener
}

// ListenAndServe starts the launcher.
func (s *LiteServer) ListenAndServe(host *netsim.Host, port int) (net.Addr, error) {
	if s.HostCred == nil || s.Auth == nil || s.GridFTP == nil {
		return nil, errors.New("baseline: lite server needs host cred, auth, and a gridftp server")
	}
	l, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	s.listener = l
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return l.Addr(), nil
}

// Close stops the launcher.
func (s *LiteServer) Close() error {
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

func (s *LiteServer) serve(raw net.Conn) {
	tc := tls.Server(raw, gsi.ServerTLSConfigNoClientAuth(s.HostCred))
	raw.SetDeadline(time.Now().Add(time.Minute))
	if err := tc.Handshake(); err != nil {
		raw.Close()
		return
	}
	raw.SetDeadline(time.Time{})
	br := bufio.NewReader(tc)
	line, err := br.ReadString('\n')
	if err != nil {
		tc.Close()
		return
	}
	fields := strings.SplitN(strings.TrimRight(line, "\n"), " ", 3)
	if len(fields) != 3 || fields[0] != "AUTH" {
		fmt.Fprintf(tc, "ERR expected AUTH\n")
		tc.Close()
		return
	}
	acct, err := s.Auth.Authenticate(fields[1], pam.PasswordConv(fields[2]))
	if err != nil {
		fmt.Fprintf(tc, "ERR permission denied\n")
		tc.Close()
		return
	}
	fmt.Fprintf(tc, "OK\n")
	// "ssh ... gridftp-server -i": the tunneled connection becomes the
	// control channel of a per-session lite server.
	s.GridFTP.ServeLite(&bufferedConn{Conn: tc, r: br}, acct.Name)
}

// bufferedConn keeps any bytes the auth exchange buffered ahead of the
// GridFTP session.
type bufferedConn struct {
	net.Conn
	r *bufio.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }

// LiteDial opens a GridFTP-Lite session: an SSH-style password logon whose
// tunnel then carries the GridFTP control channel. The returned client has
// no credential — data channels run without security.
func LiteDial(host *netsim.Host, addr, user, password string) (*gridftp.Client, error) {
	raw, err := host.Dial(addr)
	if err != nil {
		return nil, err
	}
	tc := tls.Client(raw, &tls.Config{InsecureSkipVerify: true, MinVersion: tls.VersionTLS12})
	if err := tc.Handshake(); err != nil {
		raw.Close()
		return nil, err
	}
	fmt.Fprintf(tc, "AUTH %s %s\n", user, password)
	br := bufio.NewReader(tc)
	line, err := br.ReadString('\n')
	if err != nil {
		tc.Close()
		return nil, err
	}
	if !strings.HasPrefix(line, "OK") {
		tc.Close()
		return nil, fmt.Errorf("baseline: lite logon: %s", strings.TrimSpace(line))
	}
	return gridftp.DialLite(host, &bufferedConn{Conn: tc, r: br})
}
