// Package baseline implements the comparison tools the paper positions
// GridFTP against (§I, §VII): an SCP-like secure copy — password
// authentication, one encrypted TCP stream, no restart, and third-party
// copies routed through the client — plus a legacy stream-mode FTP profile
// (provided by running the GridFTP client in MODE S with one stream).
package baseline

import (
	"bufio"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

// SCPPort is the SSH port the SCP-like server listens on.
const SCPPort = 22

// SCPServer is a minimal sshd/scp analog: TLS stands in for the SSH
// transport (equivalent cryptography), PAM passwords for SSH auth.
type SCPServer struct {
	HostCred *gsi.Credential
	Auth     *pam.Stack
	Storage  dsi.Storage

	listener net.Listener
}

// ListenAndServe starts the server.
func (s *SCPServer) ListenAndServe(host *netsim.Host, port int) (net.Addr, error) {
	if s.HostCred == nil || s.Auth == nil || s.Storage == nil {
		return nil, errors.New("baseline: scp server needs host cred, auth, storage")
	}
	l, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	s.listener = l
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return l.Addr(), nil
}

// Close stops the server.
func (s *SCPServer) Close() error {
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

func (s *SCPServer) serve(raw net.Conn) {
	defer raw.Close()
	tc := tls.Server(raw, gsi.ServerTLSConfigNoClientAuth(s.HostCred))
	raw.SetDeadline(time.Now().Add(time.Minute))
	if err := tc.Handshake(); err != nil {
		return
	}
	raw.SetDeadline(time.Time{})
	br := bufio.NewReader(tc)

	// AUTH <user> <password>
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.SplitN(strings.TrimRight(line, "\n"), " ", 3)
	if len(fields) != 3 || fields[0] != "AUTH" {
		fmt.Fprintf(tc, "ERR expected AUTH\n")
		return
	}
	acct, err := s.Auth.Authenticate(fields[1], pam.PasswordConv(fields[2]))
	if err != nil {
		fmt.Fprintf(tc, "ERR permission denied\n")
		return
	}
	fmt.Fprintf(tc, "OK\n")

	// One command per session, like scp spawning a remote process.
	line, err = br.ReadString('\n')
	if err != nil {
		return
	}
	fields = strings.SplitN(strings.TrimRight(line, "\n"), " ", 3)
	switch {
	case len(fields) == 2 && fields[0] == "READ":
		f, err := s.Storage.Open(acct.Name, fields[1])
		if err != nil {
			fmt.Fprintf(tc, "ERR %s\n", err)
			return
		}
		defer f.Close()
		size, err := f.Size()
		if err != nil {
			fmt.Fprintf(tc, "ERR %s\n", err)
			return
		}
		fmt.Fprintf(tc, "OK %d\n", size)
		buf := make([]byte, 128*1024)
		for off := int64(0); off < size; {
			n := int64(len(buf))
			if off+n > size {
				n = size - off
			}
			if _, err := f.ReadAt(buf[:n], off); err != nil && err != io.EOF {
				return
			}
			if _, err := tc.Write(buf[:n]); err != nil {
				return
			}
			off += n
		}
	case len(fields) == 3 && fields[0] == "WRITE":
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || size < 0 {
			fmt.Fprintf(tc, "ERR bad size\n")
			return
		}
		f, err := s.Storage.Create(acct.Name, fields[1])
		if err != nil {
			fmt.Fprintf(tc, "ERR %s\n", err)
			return
		}
		defer f.Close()
		fmt.Fprintf(tc, "OK\n")
		buf := make([]byte, 128*1024)
		for off := int64(0); off < size; {
			n := int64(len(buf))
			if off+n > size {
				n = size - off
			}
			if _, err := io.ReadFull(br, buf[:n]); err != nil {
				return
			}
			if _, err := f.WriteAt(buf[:n], off); err != nil {
				return
			}
			off += n
		}
		fmt.Fprintf(tc, "DONE\n")
	default:
		fmt.Fprintf(tc, "ERR unknown command\n")
	}
}

// scpSession opens an authenticated session.
func scpSession(host *netsim.Host, addr, user, password string) (*tls.Conn, *bufio.Reader, error) {
	raw, err := host.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	tc := tls.Client(raw, &tls.Config{InsecureSkipVerify: true, MinVersion: tls.VersionTLS12})
	if err := tc.Handshake(); err != nil {
		raw.Close()
		return nil, nil, err
	}
	br := bufio.NewReader(tc)
	fmt.Fprintf(tc, "AUTH %s %s\n", user, password)
	line, err := br.ReadString('\n')
	if err != nil {
		tc.Close()
		return nil, nil, err
	}
	if !strings.HasPrefix(line, "OK") {
		tc.Close()
		return nil, nil, fmt.Errorf("baseline: %s", strings.TrimSpace(line))
	}
	return tc, br, nil
}

// SCPGet downloads a file over a single encrypted stream.
func SCPGet(host *netsim.Host, addr, user, password, path string, dst dsi.File) (int64, error) {
	tc, br, err := scpSession(host, addr, user, password)
	if err != nil {
		return 0, err
	}
	defer tc.Close()
	fmt.Fprintf(tc, "READ %s\n", path)
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, err
	}
	if !strings.HasPrefix(line, "OK ") {
		return 0, fmt.Errorf("baseline: %s", strings.TrimSpace(line))
	}
	size, err := strconv.ParseInt(strings.TrimSpace(line[3:]), 10, 64)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 128*1024)
	for off := int64(0); off < size; {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if _, err := io.ReadFull(br, buf[:n]); err != nil {
			return off, err
		}
		if _, err := dst.WriteAt(buf[:n], off); err != nil {
			return off, err
		}
		off += n
	}
	return size, nil
}

// SCPPut uploads a file over a single encrypted stream.
func SCPPut(host *netsim.Host, addr, user, password, path string, src dsi.File) (int64, error) {
	size, err := src.Size()
	if err != nil {
		return 0, err
	}
	tc, br, err := scpSession(host, addr, user, password)
	if err != nil {
		return 0, err
	}
	defer tc.Close()
	fmt.Fprintf(tc, "WRITE %s %d\n", path, size)
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, err
	}
	if !strings.HasPrefix(line, "OK") {
		return 0, fmt.Errorf("baseline: %s", strings.TrimSpace(line))
	}
	buf := make([]byte, 128*1024)
	for off := int64(0); off < size; {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if _, err := src.ReadAt(buf[:n], off); err != nil && err != io.EOF {
			return off, err
		}
		if _, err := tc.Write(buf[:n]); err != nil {
			return off, err
		}
		off += n
	}
	if _, err := br.ReadString('\n'); err != nil {
		return size, err
	}
	return size, nil
}

// SCPRelay copies src@srcAddr:srcPath to dst@dstAddr:dstPath *through the
// client host* — SCP "routes data through the client for transfers between
// two remote hosts" (§VII), even when the two servers share a fast link
// and the client sits behind a slow one.
func SCPRelay(client *netsim.Host, srcAddr, srcUser, srcPassword, srcPath,
	dstAddr, dstUser, dstPassword, dstPath string) (int64, error) {
	buf := dsi.NewBufferFile(nil)
	n, err := SCPGet(client, srcAddr, srcUser, srcPassword, srcPath, buf)
	if err != nil {
		return n, fmt.Errorf("baseline: relay read: %w", err)
	}
	if _, err := SCPPut(client, dstAddr, dstUser, dstPassword, dstPath, buf); err != nil {
		return n, fmt.Errorf("baseline: relay write: %w", err)
	}
	return n, nil
}
