package baseline

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/authz"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/ftp"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

// liteEnv builds a GridFTP-Lite deployment: sshd-style launcher in front
// of a GridFTP server.
func liteEnv(t *testing.T) (*netsim.Network, string, *dsi.MemStorage) {
	t.Helper()
	nw := netsim.NewNetwork()
	ca, err := gsi.NewCA("/O=x/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	hostCred, err := ca.Issue(gsi.IssueOptions{Subject: "/O=x/CN=host", Lifetime: time.Hour, Host: true})
	if err != nil {
		t.Fatal(err)
	}
	stack, _ := func() (*pam.Stack, *pam.AccountDB) {
		dir := pam.NewLDAPDirectory("dc=x")
		dir.AddEntry("alice", "pw")
		accounts := pam.NewAccountDB()
		accounts.Add(pam.Account{Name: "alice"})
		return pam.NewStack("sshd", accounts,
			pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}}), accounts
	}()
	storage := dsi.NewMemStorage()
	storage.AddUser("alice")
	trust := gsi.NewTrustStore()
	trust.AddCA(ca.Certificate())
	gfs, err := gridftp.NewServer(nw.Host("server"), gridftp.ServerConfig{
		HostCred: hostCred, Trust: trust, Authz: authz.NewGridmap(), Storage: storage,
	})
	if err != nil {
		t.Fatal(err)
	}
	lite := &LiteServer{HostCred: hostCred, Auth: stack, GridFTP: gfs}
	addr, err := lite.ListenAndServe(nw.Host("server"), LitePort)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lite.Close() })
	return nw, addr.String(), storage
}

func TestLiteTransferWorks(t *testing.T) {
	nw, addr, storage := liteEnv(t)
	c, err := LiteDial(nw.Host("laptop"), addr, "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte("lite"), 50000)
	if _, err := c.Put("/l.bin", dsi.NewBufferFile(payload)); err != nil {
		t.Fatal(err)
	}
	f, err := storage.Open("alice", "/l.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dsi.ReadAll(f)
	f.Close()
	if !bytes.Equal(got, payload) {
		t.Fatal("content mismatch")
	}
	dst := dsi.NewBufferFile(nil)
	if _, err := c.Get("/l.bin", dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("download mismatch")
	}
	// Parallelism still works (it is orthogonal to security).
	if err := c.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("/l.bin", dst); err != nil {
		t.Fatal(err)
	}
}

func TestLiteWrongPassword(t *testing.T) {
	nw, addr, _ := liteEnv(t)
	if _, err := LiteDial(nw.Host("laptop"), addr, "alice", "bad"); err == nil {
		t.Fatal("wrong password accepted")
	}
}

func TestLiteLimitationNoDelegation(t *testing.T) {
	// §III.B limitation 2: "since SSH does not support delegation, users
	// cannot hand off SSH-based GridFTP transfers to transfer agents such
	// as Globus Online."
	nw, addr, _ := liteEnv(t)
	c, err := LiteDial(nw.Host("laptop"), addr, "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Delegate(time.Hour); !errors.Is(err, gridftp.ErrLiteNoDelegation) {
		t.Fatalf("want ErrLiteNoDelegation, got %v", err)
	}
}

func TestLiteLimitationNoDataSecurity(t *testing.T) {
	// §III.B limitation 1: "the data channel has no security."
	nw, addr, _ := liteEnv(t)
	c, err := LiteDial(nw.Host("laptop"), addr, "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.SetProt(gridftp.ProtPrivate)
	var re *ftp.ReplyError
	if !errors.As(err, &re) || re.Reply.Code != ftp.CodeNotImplemented {
		t.Fatalf("PROT P on lite session: want 502, got %v", err)
	}
	if err := c.SetDCAU(gridftp.DCAUSelf); err == nil {
		t.Fatal("DCAU A accepted on a lite session")
	}
}

func TestLiteLimitationNoStriping(t *testing.T) {
	// §III.B limitation 3: no security between control node and data
	// movers — lite mode refuses striping outright.
	nw, addr, _ := liteEnv(t)
	c, err := LiteDial(nw.Host("laptop"), addr, "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Passive(true) // SPAS
	if err == nil || !strings.Contains(err.Error(), "striping") {
		t.Fatalf("SPAS on lite session: %v", err)
	}
}
