package netsim

import (
	"io"
	"testing"
	"time"
)

func TestCutLinkAbortsAndBlocksDials(t *testing.T) {
	nw := NewNetwork()
	l, err := nw.Listen("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c.(*Conn)
	}()
	c, err := nw.Dial("a", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted

	nw.CutLink("a", "b")

	// Both ends must see hard errors immediately.
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil || err == io.EOF {
		t.Fatalf("dialer read after cut: %v", err)
	}
	if _, err := srv.Read(buf); err == nil || err == io.EOF {
		t.Fatalf("listener read after cut: %v", err)
	}
	// New dials fail while down.
	if _, err := nw.Dial("a", "b:1"); err == nil {
		t.Fatal("dial across cut link succeeded")
	}
	// Restore: dialing works again.
	nw.RestoreLink("a", "b")
	go func() {
		c2, err := l.Accept()
		if err == nil {
			c2.Write([]byte{1})
			c2.Close()
		}
	}()
	c2, err := nw.Dial("a", "b:1")
	if err != nil {
		t.Fatalf("dial after restore: %v", err)
	}
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c2, buf); err != nil {
		t.Fatalf("read after restore: %v", err)
	}
	c2.Close()
}

func TestCutLinkDoesNotAffectOtherLinks(t *testing.T) {
	nw := NewNetwork()
	l, _ := nw.Listen("b", 1)
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()
	nw.CutLink("x", "b") // unrelated pair
	c, err := nw.Dial("a", "b:1")
	if err != nil {
		t.Fatalf("unrelated cut affected a-b: %v", err)
	}
	c.Write([]byte("hi"))
	buf := make([]byte, 2)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	c.Close()
}
