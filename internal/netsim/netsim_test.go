package netsim

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func TestListenDialRoundTrip(t *testing.T) {
	nw := NewNetwork()
	l, err := nw.Listen("server", 2811)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write(bytes.ToUpper(buf))
		done <- err
	}()

	c, err := nw.Dial("client", "server:2811")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "HELLO" {
		t.Fatalf("got %q, want HELLO", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialErrors(t *testing.T) {
	nw := NewNetwork()
	nw.Host("server") // exists but not listening
	if _, err := nw.Dial("client", "server:99"); err == nil {
		t.Fatal("dial to non-listening port should fail")
	}
	if _, err := nw.Dial("client", "ghost:99"); err == nil {
		t.Fatal("dial to unknown host should fail")
	}
	if _, err := nw.Dial("client", "bogus-address"); err == nil {
		t.Fatal("dial to malformed address should fail")
	}
}

func TestListenPortReuse(t *testing.T) {
	nw := NewNetwork()
	l, err := nw.Listen("h", 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Listen("h", 100); err == nil {
		t.Fatal("double listen on same port should fail")
	}
	l.Close()
	l2, err := nw.Listen("h", 100)
	if err != nil {
		t.Fatalf("listen after close should succeed: %v", err)
	}
	l2.Close()
}

func TestAutoAssignedPortsDistinct(t *testing.T) {
	nw := NewNetwork()
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		l, err := nw.Listen("h", 0)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		a := l.Addr().String()
		if seen[a] {
			t.Fatalf("duplicate auto port %s", a)
		}
		seen[a] = true
	}
}

func TestHalfClose(t *testing.T) {
	nw := NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		io.Copy(c, c) // echo until EOF
		c.(*Conn).CloseWrite()
	}()
	c, err := nw.Dial("c", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 10000)
	go func() {
		c.Write(payload)
		c.(*Conn).CloseWrite()
	}()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo mismatch: got %d bytes want %d", len(got), len(payload))
	}
}

func TestAbortFailsPeerReads(t *testing.T) {
	nw := NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	c, err := nw.Dial("c", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	c.(*Conn).Abort()
	buf := make([]byte, 1)
	if _, err := srv.Read(buf); err == nil || err == io.EOF {
		t.Fatalf("read after abort: want hard error, got %v", err)
	}
}

func TestReadDeadline(t *testing.T) {
	nw := NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		defer c.Close()
		time.Sleep(time.Second)
	}()
	c, err := nw.Dial("c", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = c.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
}

func TestDialContextCancel(t *testing.T) {
	nw := NewNetwork()
	nw.SetDefaultLink(LinkParams{RTT: 5 * time.Second})
	nw.Listen("s", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := nw.Host("c").DialContext(ctx, "s:1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context deadline, got %v", err)
	}
}

// transferRate sends n bytes across a link with the given params and
// returns the measured bytes/sec.
func transferRate(t *testing.T, p LinkParams, n int, streams int) float64 {
	t.Helper()
	nw := NewNetwork()
	nw.SetLink("a", "b", p)
	l, err := nw.Listen("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	var recvMu sync.Mutex
	received := 0
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				m, _ := io.Copy(io.Discard, c)
				recvMu.Lock()
				received += int(m)
				recvMu.Unlock()
			}()
		}
	}()

	per := n / streams
	start := time.Now()
	var sendWg sync.WaitGroup
	for i := 0; i < streams; i++ {
		sendWg.Add(1)
		go func() {
			defer sendWg.Done()
			c, err := nw.Dial("a", "b:1")
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 32*1024)
			left := per
			for left > 0 {
				m := len(buf)
				if m > left {
					m = left
				}
				if _, err := c.Write(buf[:m]); err != nil {
					t.Error(err)
					return
				}
				left -= m
			}
			c.(*Conn).CloseWrite()
			// Wait for receiver to drain before closing.
			io.ReadAll(c)
			c.Close()
		}()
	}
	sendWg.Wait()
	wg.Wait()
	elapsed := time.Since(start)
	if received != per*streams {
		t.Fatalf("received %d bytes, want %d", received, per*streams)
	}
	return float64(received) / elapsed.Seconds()
}

func TestWindowLimitedThroughput(t *testing.T) {
	// 64 KiB window over 40 ms RTT caps a stream near 1.6 MB/s even though
	// the link itself is 100 MB/s.
	p := LinkParams{Bandwidth: 100e6, RTT: 40 * time.Millisecond, StreamWindow: 64 * 1024}
	rate := transferRate(t, p, 512*1024, 1)
	want := p.StreamCap()
	if rate > want*1.3 || rate < want*0.4 {
		t.Fatalf("rate %.0f not near window-limited cap %.0f", rate, want)
	}
}

func TestParallelStreamsScaleOnWindowLimitedLink(t *testing.T) {
	p := LinkParams{Bandwidth: 100e6, RTT: 40 * time.Millisecond, StreamWindow: 64 * 1024}
	r1 := transferRate(t, p, 256*1024, 1)
	r4 := transferRate(t, p, 1024*1024, 4)
	if r4 < 2.5*r1 {
		t.Fatalf("4 streams should be >2.5x faster than 1: r1=%.0f r4=%.0f", r1, r4)
	}
}

func TestSharedBandwidthCap(t *testing.T) {
	// Many streams cannot exceed the aggregate link bandwidth.
	p := LinkParams{Bandwidth: 4e6, RTT: 5 * time.Millisecond, StreamWindow: 1 << 20}
	rate := transferRate(t, p, 2*1024*1024, 8)
	if rate > p.Bandwidth*1.4 {
		t.Fatalf("aggregate rate %.0f exceeds link bandwidth %.0f", rate, p.Bandwidth)
	}
}

func TestMathisLossCap(t *testing.T) {
	p := LinkParams{Bandwidth: 1e9, RTT: 50 * time.Millisecond, Loss: 0.001, StreamWindow: 1 << 30}
	mathis := float64(p.mss()) / p.RTT.Seconds() * mathisC / math.Sqrt(p.Loss)
	if got := p.StreamCap(); math.Abs(got-mathis) > 1 {
		t.Fatalf("StreamCap=%v want mathis=%v", got, mathis)
	}
}

func TestStreamCapUnshaped(t *testing.T) {
	var p LinkParams
	if !math.IsInf(p.StreamCap(), 1) {
		t.Fatal("unshaped link should have infinite stream cap")
	}
}

func TestRTTDelaysDelivery(t *testing.T) {
	nw := NewNetwork()
	nw.SetLink("a", "b", LinkParams{RTT: 60 * time.Millisecond})
	l, _ := nw.Listen("b", 1)
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		buf := make([]byte, 4)
		io.ReadFull(c, buf)
		c.Write(buf) // pong
	}()
	start := time.Now()
	c, err := nw.Dial("a", "b:1") // costs 1 RTT (handshake)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// handshake RTT + request/response RTT = 120ms minimum
	if elapsed < 115*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~120ms", elapsed)
	}
}

func TestLoopbackUnshapedByDefault(t *testing.T) {
	nw := NewNetwork()
	nw.SetDefaultLink(LinkParams{RTT: time.Second})
	l, _ := nw.Listen("h", 1)
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		io.Copy(c, c)
	}()
	start := time.Now()
	c, err := nw.Dial("h", "h:1")
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("x"))
	buf := make([]byte, 1)
	io.ReadFull(c, buf)
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("loopback should not be shaped by the default WAN link")
	}
}

func TestConnAddrs(t *testing.T) {
	nw := NewNetwork()
	l, _ := nw.Listen("srv", 2811)
	defer l.Close()
	go l.Accept()
	c, err := nw.Dial("cli", "srv:2811")
	if err != nil {
		t.Fatal(err)
	}
	if c.RemoteAddr().String() != "srv:2811" {
		t.Fatalf("remote addr %s", c.RemoteAddr())
	}
	if host, _, _ := net.SplitHostPort(c.LocalAddr().String()); host != "cli" {
		t.Fatalf("local addr %s", c.LocalAddr())
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	nw := NewNetwork()
	l, _ := nw.Listen("s", 1)
	defer l.Close()
	go l.Accept()
	c, _ := nw.Dial("c", "s:1")
	c.Close()
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after close should fail")
	}
}
