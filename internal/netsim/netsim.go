// Package netsim provides an in-process network simulator used as the
// evaluation substrate for the Instant GridFTP reproduction.
//
// A Network holds named hosts connected by links with configurable
// bandwidth, round-trip time, and packet-loss rate. Connections obtained
// from Network.Dial / Listener.Accept implement net.Conn (including
// deadlines, so crypto/tls works on top of them) and are shaped according
// to a simple but well-established TCP throughput model:
//
//   - each stream is capped at window/RTT (window-limited TCP),
//   - on lossy links each stream is additionally capped by the Mathis
//     formula MSS/RTT * C/sqrt(loss),
//   - all streams crossing a link share its aggregate bandwidth,
//   - every byte is delivered no earlier than one-way latency (RTT/2)
//     after it was written, so request/response exchanges pay full RTTs.
//
// This preserves the phenomena the paper's claims rest on — parallel TCP
// streams outperforming a single stream on lossy high-RTT paths, and
// per-command RTT costs dominating lots-of-small-files workloads — while
// remaining deterministic enough for tests and benchmarks.
package netsim

import (
	"context"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// mathisC is the constant of the Mathis et al. TCP throughput upper bound
// rate <= MSS/RTT * C/sqrt(p).
const mathisC = 1.22

// LinkParams describes one (bidirectional) link between two hosts.
type LinkParams struct {
	// Bandwidth is the aggregate link capacity in bytes per second,
	// shared by all streams crossing the link. Zero means unshaped.
	Bandwidth float64
	// RTT is the round-trip time across the link.
	RTT time.Duration
	// Loss is the packet loss probability (e.g. 0.001 = 0.1%). It caps
	// per-stream throughput via the Mathis formula; it does not corrupt
	// data, mirroring TCP's reliable delivery.
	Loss float64
	// MSS is the segment size used by the loss model. Defaults to 1460.
	MSS int
	// StreamWindow is the maximum TCP window per stream in bytes; it caps
	// a single stream at StreamWindow/RTT. Defaults to 64 KiB (the classic
	// untuned-host window the paper's parallel streams compensate for).
	StreamWindow int
}

func (p LinkParams) mss() int {
	if p.MSS <= 0 {
		return 1460
	}
	return p.MSS
}

func (p LinkParams) window() int {
	if p.StreamWindow <= 0 {
		return 64 * 1024
	}
	return p.StreamWindow
}

// StreamCap returns the per-stream throughput ceiling in bytes/sec implied
// by the window and loss model (not counting shared-bandwidth contention).
// It returns +Inf for an unshaped link.
func (p LinkParams) StreamCap() float64 {
	cap := math.Inf(1)
	if p.RTT > 0 {
		cap = float64(p.window()) / p.RTT.Seconds()
		if p.Loss > 0 {
			mathis := float64(p.mss()) / p.RTT.Seconds() * mathisC / math.Sqrt(p.Loss)
			if mathis < cap {
				cap = mathis
			}
		}
	}
	if p.Bandwidth > 0 && p.Bandwidth < cap {
		cap = p.Bandwidth
	}
	return cap
}

// Network is a collection of simulated hosts and links.
type Network struct {
	mu          sync.Mutex
	hosts       map[string]*Host
	links       map[linkKey]*link
	defaultLink LinkParams // applied between hosts with no explicit link
	loopback    LinkParams // applied to same-host connections
}

type linkKey struct{ a, b string }

func keyFor(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// NewNetwork creates an empty network. Hosts with no explicit link between
// them communicate over an unshaped (infinite, zero-latency) default link
// until SetDefaultLink is called.
func NewNetwork() *Network {
	return &Network{
		hosts: make(map[string]*Host),
		links: make(map[linkKey]*link),
	}
}

// SetDefaultLink sets the link parameters used between host pairs that have
// no explicit link configured.
func (n *Network) SetDefaultLink(p LinkParams) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultLink = p
}

// SetLink configures the link between hosts a and b (in both directions).
// If the link already exists it is reshaped in place: live connections see
// the new bandwidth, RTT, loss, and window on their next write, which makes
// repeated SetLink calls a mid-transfer degradation injector (e.g. spiking
// Loss to starve a stream and trip the stall watchdog).
func (n *Network) SetLink(a, b string, p LinkParams) {
	n.mu.Lock()
	lk, ok := n.links[keyFor(a, b)]
	if !ok {
		n.links[keyFor(a, b)] = newLink(p)
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	lk.updateParams(p)
}

// Host returns the named host, creating it on first use.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hostLocked(name)
}

func (n *Network) hostLocked(name string) *Host {
	h, ok := n.hosts[name]
	if !ok {
		h = &Host{net: n, name: name, listeners: make(map[int]*listener)}
		n.hosts[name] = h
	}
	return h
}

// Hosts returns the names of all hosts, sorted.
func (n *Network) Hosts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	names := make([]string, 0, len(n.hosts))
	for name := range n.hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// linkBetween returns the shaping state for the a<->b path.
func (n *Network) linkBetween(a, b string) *link {
	n.mu.Lock()
	defer n.mu.Unlock()
	if a == b {
		k := linkKey{a, a}
		l, ok := n.links[k]
		if !ok {
			l = newLink(n.loopback)
			n.links[k] = l
		}
		return l
	}
	k := keyFor(a, b)
	l, ok := n.links[k]
	if !ok {
		l = newLink(n.defaultLink)
		n.links[k] = l
	}
	return l
}

// Listen starts a listener on host:port. Port 0 picks a free port.
func (n *Network) Listen(host string, port int) (net.Listener, error) {
	return n.Host(host).Listen(port)
}

// CutLink severs the path between a and b: every live connection crossing
// it is aborted (both ends see hard errors, like a fiber cut) and new
// dials fail until RestoreLink. The fault-injection experiments use this
// to exercise network-level (as opposed to storage-level) failures.
func (n *Network) CutLink(a, b string) {
	n.linkBetween(a, b).cut()
}

// RestoreLink brings a previously cut link back up.
func (n *Network) RestoreLink(a, b string) {
	n.linkBetween(a, b).restore()
}

// LinkStats returns the observability counters of the a<->b link (created
// on first use, like linkBetween).
func (n *Network) LinkStats(a, b string) LinkStats {
	return n.linkBetween(a, b).statsSnapshot()
}

// ReportMetrics publishes every configured link's counters into the given
// metrics registry under netsim.link.*{a-b} names. Counters are exported
// as gauges because the simulator owns the authoritative values; calling
// again overwrites with fresh snapshots.
func (n *Network) ReportMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	n.mu.Lock()
	type entry struct {
		name string
		lk   *link
	}
	entries := make([]entry, 0, len(n.links))
	for k, lk := range n.links {
		entries = append(entries, entry{k.a + "-" + k.b, lk})
	}
	n.mu.Unlock()
	for _, e := range entries {
		st := e.lk.statsSnapshot()
		reg.Gauge(obs.Name("netsim.link.bytes", e.name)).Set(st.Bytes)
		reg.Gauge(obs.Name("netsim.link.queue_depth", e.name)).Set(st.QueueDepth)
		reg.Gauge(obs.Name("netsim.link.queue_max", e.name)).Set(st.MaxQueue)
		reg.Gauge(obs.Name("netsim.link.drops", e.name)).Set(st.Drops)
		reg.Gauge(obs.Name("netsim.link.conns", e.name)).Set(st.Conns)
		reg.Gauge(obs.Name("netsim.link.retransmits", e.name)).Set(st.Retransmits)
	}
}

// Dial connects from one host to "otherhost:port".
func (n *Network) Dial(fromHost, target string) (net.Conn, error) {
	return n.Host(fromHost).Dial(target)
}

// Host is one simulated machine. It can listen on ports and dial other
// hosts; it satisfies the Dialer interface used throughout the codebase.
type Host struct {
	net       *Network
	name      string
	mu        sync.Mutex
	listeners map[int]*listener
	nextPort  int
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Listen opens a listening socket on the given port (0 = auto-assign).
func (h *Host) Listen(port int) (net.Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if port == 0 {
		if h.nextPort == 0 {
			h.nextPort = 40000
		}
		for {
			h.nextPort++
			if _, busy := h.listeners[h.nextPort]; !busy {
				port = h.nextPort
				break
			}
		}
	}
	if _, busy := h.listeners[port]; busy {
		return nil, &net.OpError{Op: "listen", Net: "sim", Addr: addr{h.name, port}, Err: errAddrInUse}
	}
	l := &listener{
		host:    h,
		port:    port,
		backlog: make(chan net.Conn, 64),
		done:    make(chan struct{}),
	}
	h.listeners[port] = l
	return l, nil
}

// Transport selects the per-stream throughput model of a connection.
type Transport int

const (
	// TransportTCP (default): per-stream throughput is window-limited
	// (window/RTT) and loss-limited (Mathis bound).
	TransportTCP Transport = iota
	// TransportUDT models a rate-based protocol (UDT [Gu & Grossman]):
	// the stream is bounded only by the link bandwidth — neither the TCP
	// window nor the loss-rate bound applies. GridFTP reaches such
	// protocols through its XIO driver interface (paper §II.A [9]).
	TransportUDT
)

// Dial connects to "host:port" over the simulated network.
func (h *Host) Dial(target string) (net.Conn, error) {
	return h.DialContext(context.Background(), target)
}

// DialTransport connects with an explicit transport model.
func (h *Host) DialTransport(target string, tr Transport) (net.Conn, error) {
	return h.dialContext(context.Background(), target, tr)
}

// DialContext connects to "host:port", honoring ctx cancellation while the
// connection is being established (including the simulated handshake RTT).
func (h *Host) DialContext(ctx context.Context, target string) (net.Conn, error) {
	return h.dialContext(ctx, target, TransportTCP)
}

func (h *Host) dialContext(ctx context.Context, target string, tr Transport) (net.Conn, error) {
	thost, tport, err := splitHostPort(target)
	if err != nil {
		return nil, err
	}
	h.net.mu.Lock()
	peer, ok := h.net.hosts[thost]
	h.net.mu.Unlock()
	if !ok {
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: addr{thost, tport}, Err: errHostUnreachable}
	}
	peer.mu.Lock()
	l, ok := peer.listeners[tport]
	peer.mu.Unlock()
	if !ok {
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: addr{thost, tport}, Err: errConnRefused}
	}
	lk := h.net.linkBetween(h.name, thost)
	if lk.isDown() {
		lk.stats.drops.Add(1)
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: addr{thost, tport}, Err: errHostUnreachable}
	}
	// TCP connection establishment costs one RTT before data can flow.
	if rtt := lk.getParams().RTT; rtt > 0 {
		t := leaseTimer(rtt)
		select {
		case <-t.C:
		case <-ctx.Done():
			releaseTimer(t)
			return nil, ctx.Err()
		}
		releaseTimer(t)
	}
	local, remote := newConnPair(lk, tr, addr{h.name, ephemeralPort()}, addr{thost, tport})
	if !lk.register(local) {
		local.Close()
		remote.Close()
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: addr{thost, tport}, Err: errHostUnreachable}
	}
	select {
	case l.backlog <- remote:
		return local, nil
	case <-l.done:
		local.Close()
		remote.Close()
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: addr{thost, tport}, Err: errConnRefused}
	case <-ctx.Done():
		local.Close()
		remote.Close()
		return nil, ctx.Err()
	}
}

var ephemeral struct {
	mu   sync.Mutex
	next int
}

func ephemeralPort() int {
	ephemeral.mu.Lock()
	defer ephemeral.mu.Unlock()
	if ephemeral.next < 50000 {
		ephemeral.next = 50000
	}
	ephemeral.next++
	return ephemeral.next
}

type listener struct {
	host    *Host
	port    int
	backlog chan net.Conn
	done    chan struct{}
	once    sync.Once
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, &net.OpError{Op: "accept", Net: "sim", Addr: l.Addr(), Err: errClosed}
	}
}

func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.host.mu.Lock()
		delete(l.host.listeners, l.port)
		l.host.mu.Unlock()
	})
	return nil
}

func (l *listener) Addr() net.Addr { return addr{l.host.name, l.port} }

// Dialer is the interface consumed by client code that must work over both
// the simulator and (in principle) real networks.
type Dialer interface {
	Dial(target string) (net.Conn, error)
}

// addr implements net.Addr for simulated endpoints.
type addr struct {
	host string
	port int
}

func (a addr) Network() string { return "sim" }
func (a addr) String() string  { return fmt.Sprintf("%s:%d", a.host, a.port) }

func splitHostPort(s string) (string, int, error) {
	host, portStr, err := net.SplitHostPort(s)
	if err != nil {
		return "", 0, err
	}
	var port int
	if _, err := fmt.Sscanf(portStr, "%d", &port); err != nil || port <= 0 {
		return "", 0, fmt.Errorf("netsim: bad port %q", portStr)
	}
	return host, port, nil
}
