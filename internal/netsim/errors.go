package netsim

import "errors"

var (
	errAddrInUse       = errors.New("address already in use")
	errConnRefused     = errors.New("connection refused")
	errHostUnreachable = errors.New("no route to host")
	errClosed          = errors.New("use of closed network connection")
)
