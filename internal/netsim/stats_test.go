package netsim

import (
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// TestLinkStatsAndMetrics checks the per-link instrumentation: bytes
// transferred, connection counts, cut-link drops, and the registry
// export.
func TestLinkStatsAndMetrics(t *testing.T) {
	nw := NewNetwork()
	nw.SetLink("a", "b", LinkParams{RTT: time.Millisecond})

	l, err := nw.Host("b").Listen(9000)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	conn, err := nw.Host("a").Dial("b:9000")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	<-done

	st := nw.LinkStats("a", "b")
	if st.Bytes < int64(len(payload)) {
		t.Errorf("link bytes %d, want >= %d", st.Bytes, len(payload))
	}
	if st.Conns < 1 {
		t.Errorf("link conns %d, want >= 1", st.Conns)
	}
	if st.MaxQueue <= 0 {
		t.Errorf("link max queue %d, want > 0", st.MaxQueue)
	}

	// A cut link counts refused dials as drops.
	nw.CutLink("a", "b")
	if _, err := nw.Host("a").Dial("b:9000"); err == nil {
		t.Fatal("dial across a cut link should fail")
	}
	if st = nw.LinkStats("a", "b"); st.Drops < 1 {
		t.Errorf("link drops %d, want >= 1", st.Drops)
	}

	reg := obs.NewRegistry()
	nw.ReportMetrics(reg)
	var found bool
	for _, m := range reg.Snapshot() {
		if strings.HasPrefix(m.Name, "netsim.link.bytes{") && m.Value >= int64(len(payload)) {
			found = true
		}
	}
	if !found {
		t.Errorf("ReportMetrics published no netsim.link.bytes series: %+v", reg.Snapshot())
	}
}
