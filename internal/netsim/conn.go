package netsim

import (
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// maxBufferedBytes bounds how much written-but-unread data one direction of
// a connection may hold, modelling TCP flow control: a writer outpacing its
// reader eventually blocks.
const maxBufferedBytes = 8 << 20

// chunk is a span of bytes plus the simulated time at which it arrives at
// the receiver. full retains the original allocation so a fully consumed
// chunk's buffer can return to the pool even after partial reads advanced
// data.
type chunk struct {
	data []byte
	full []byte
	at   time.Time
}

// Chunk buffers are pooled by power-of-two size class (4 KiB .. 4 MiB):
// the E2 profile showed pipeHalf.write's per-chunk make([]byte, n) as a
// top allocator, and MODE E traffic reuses a handful of sizes heavily.
const (
	chunkClassMin  = 12 // 4 KiB
	chunkClassMax  = 22 // 4 MiB
	chunkClassBits = chunkClassMax - chunkClassMin + 1
)

var chunkPools [chunkClassBits]sync.Pool

// chunkClass maps a byte count to (pool index, class capacity).
func chunkClass(n int) (int, int) {
	idx, size := 0, 1<<chunkClassMin
	for size < n && idx < chunkClassBits-1 {
		size <<= 1
		idx++
	}
	return idx, size
}

// leaseChunk returns an n-byte buffer, pooled when n fits a size class.
func leaseChunk(n int) []byte {
	if n > 1<<chunkClassMax {
		return make([]byte, n)
	}
	idx, size := chunkClass(n)
	if v := chunkPools[idx].Get(); v != nil {
		return (*v.(*[]byte))[:n]
	}
	return make([]byte, n, size)
}

// releaseChunk recycles a buffer leased by leaseChunk; foreign capacities
// (oversize one-offs) are left to the GC.
func releaseChunk(b []byte) {
	c := cap(b)
	idx, size := chunkClass(c)
	if size != c {
		return
	}
	b = b[:size]
	chunkPools[idx].Put(&b)
}

// pipeHalf is one direction of a connection: written by one end, read by
// the other. Delivery times are computed by the stream shaper at write time.
type pipeHalf struct {
	mu        sync.Mutex
	buf       []chunk
	buffered  int
	shaper    *streamShaper
	wclosed   bool          // writer called CloseWrite/Close
	dead      bool          // hard-closed; reads fail immediately
	dataReady chan struct{} // signalled when data or EOF becomes available
	spaceFree chan struct{} // signalled when buffer space frees up
	deadCh    chan struct{} // closed on hardClose; interrupts pacing sleeps
	deadOnce  sync.Once
}

func newPipeHalf(s *streamShaper) *pipeHalf {
	return &pipeHalf{
		shaper:    s,
		dataReady: make(chan struct{}, 1),
		spaceFree: make(chan struct{}, 1),
		deadCh:    make(chan struct{}),
	}
}

// sleepUntil blocks until t. It returns false if the half is hard-closed
// first: a paced writer sleeping out a multi-second transmission under an
// injected loss spike must release immediately when the watchdog or fault
// injector tears the connection down, or stall recovery would be gated on
// the very rate limit that caused the stall.
func (h *pipeHalf) sleepUntil(t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		select {
		case <-h.deadCh:
			return false
		default:
			return true
		}
	}
	tm := leaseTimer(d)
	defer releaseTimer(tm)
	select {
	case <-tm.C:
		return true
	case <-h.deadCh:
		return false
	}
}

// timerPool recycles timers for the blocking waits below: every paced
// write and deadline-bounded read of a busy transfer parks on a timer, and
// allocating a fresh runtime timer (plus its channel) per wait showed up
// in transfer allocation profiles.
var timerPool sync.Pool

func leaseTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func releaseTimer(t *time.Timer) {
	if !t.Stop() {
		// Drain a fire that raced the Stop so the next lease starts clean.
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// trackQueue moves the owning link's queue-depth counter by n bytes.
func (h *pipeHalf) trackQueue(n int64) {
	if h.shaper != nil && h.shaper.link != nil {
		h.shaper.link.stats.addQueue(n)
	}
}

// write appends p with a computed delivery time. It blocks (until deadline)
// while the buffer is full, and also blocks until the bytes have finished
// *transmitting* (not propagating), which paces the writer at the link rate.
// Hysteresis: once the buffer fills, the writer waits for a meaningful
// amount of space before resuming, so steady-state chunks never degrade
// into slivers (which would make per-chunk costs dominate).
func (h *pipeHalf) write(p []byte, deadline time.Time) (int, error) {
	bufs := [1][][]byte{{p}}
	return h.writev(bufs[0], deadline)
}

// writev is the gather form of write: all slices land contiguously, so a
// MODE E [header, payload] pair becomes one chunk (one delivery-time
// computation, one pooled buffer) instead of two — the simulated
// equivalent of writev(2) on a TCP socket.
func (h *pipeHalf) writev(bufs [][]byte, deadline time.Time) (int, error) {
	remaining := 0
	for _, b := range bufs {
		remaining += len(b)
	}
	total := 0
	bi, bo := 0, 0 // gather cursor: buffer index, offset within it
	for remaining > 0 {
		want := remaining
		if want > maxBufferedBytes/4 {
			want = maxBufferedBytes / 4
		}
		h.mu.Lock()
		for maxBufferedBytes-h.buffered < want && !h.wclosed && !h.dead {
			h.mu.Unlock()
			if err := waitSignal(h.spaceFree, deadline); err != nil {
				return total, err
			}
			h.mu.Lock()
		}
		if h.wclosed || h.dead {
			h.mu.Unlock()
			return total, net.ErrClosed
		}
		n := remaining
		if room := maxBufferedBytes - h.buffered; n > room {
			n = room
		}
		now := time.Now()
		at := now
		if h.shaper != nil {
			at = h.shaper.deliveryTime(n, now)
		}
		data := leaseChunk(n)
		for m := 0; m < n; {
			k := copy(data[m:], bufs[bi][bo:])
			m += k
			bo += k
			if bo == len(bufs[bi]) {
				bi++
				bo = 0
			}
		}
		h.buf = append(h.buf, chunk{data: data, full: data, at: at})
		h.buffered += n
		h.trackQueue(int64(n))
		h.mu.Unlock()
		signal(h.dataReady)
		total += n
		remaining -= n
		// Pace the writer: it regains control once transmission (finish
		// time minus one-way propagation) completes.
		if h.shaper != nil {
			sendDone := at.Add(-h.shaper.propagation())
			if time.Until(sendDone) > 0 {
				if !deadline.IsZero() && sendDone.After(deadline) {
					h.sleepUntil(deadline)
					return total, os.ErrDeadlineExceeded
				}
				if !h.sleepUntil(sendDone) {
					return total, net.ErrClosed
				}
			}
		}
	}
	return total, nil
}

// read pops delivered bytes into p, blocking until data is available (and
// has arrived, per its delivery timestamp) or the writer side is closed.
func (h *pipeHalf) read(p []byte, deadline time.Time) (int, error) {
	for {
		h.mu.Lock()
		if h.dead {
			h.mu.Unlock()
			return 0, net.ErrClosed
		}
		if len(h.buf) > 0 {
			at := h.buf[0].at
			if wait := time.Until(at); wait > 0 {
				h.mu.Unlock()
				if !deadline.IsZero() && at.After(deadline) {
					h.sleepUntil(deadline)
					return 0, os.ErrDeadlineExceeded
				}
				if !h.sleepUntil(at) {
					return 0, net.ErrClosed
				}
				continue
			}
			// Coalesce: drain as many *delivered* chunks as fit in p, so
			// large reads are not limited to one chunk per call.
			n := 0
			now := time.Now()
			for n < len(p) && len(h.buf) > 0 {
				c := &h.buf[0]
				if c.at.After(now) {
					break
				}
				m := copy(p[n:], c.data)
				n += m
				if m == len(c.data) {
					releaseChunk(c.full)
					h.buf[0] = chunk{}
					h.buf = h.buf[1:]
				} else {
					c.data = c.data[m:]
				}
			}
			h.buffered -= n
			h.trackQueue(-int64(n))
			h.mu.Unlock()
			signal(h.spaceFree)
			return n, nil
		}
		if h.wclosed {
			h.mu.Unlock()
			return 0, io.EOF
		}
		h.mu.Unlock()
		if err := waitSignal(h.dataReady, deadline); err != nil {
			return 0, err
		}
	}
}

// closeWrite marks the writer side done; readers drain then see EOF.
func (h *pipeHalf) closeWrite() {
	h.mu.Lock()
	h.wclosed = true
	h.mu.Unlock()
	signal(h.dataReady)
	signal(h.spaceFree)
}

// hardClose tears the direction down; pending and future reads fail.
func (h *pipeHalf) hardClose() {
	h.mu.Lock()
	h.wclosed = true
	h.dead = true
	for i := range h.buf {
		releaseChunk(h.buf[i].full)
	}
	h.buf = nil
	h.trackQueue(-int64(h.buffered))
	h.buffered = 0
	h.mu.Unlock()
	h.deadOnce.Do(func() { close(h.deadCh) })
	signal(h.dataReady)
	signal(h.spaceFree)
}

func waitSignal(ch chan struct{}, deadline time.Time) error {
	if deadline.IsZero() {
		<-ch
		return nil
	}
	d := time.Until(deadline)
	if d <= 0 {
		return os.ErrDeadlineExceeded
	}
	t := leaseTimer(d)
	defer releaseTimer(t)
	select {
	case <-ch:
		return nil
	case <-t.C:
		return os.ErrDeadlineExceeded
	}
}

// Conn is one end of a simulated connection. It implements net.Conn.
type Conn struct {
	rd, wr     *pipeHalf
	local      net.Addr
	remote     net.Addr
	mu         sync.Mutex
	rdeadline  time.Time
	wdeadline  time.Time
	closedOnce sync.Once
	closed     atomic.Bool
	dropped    atomic.Bool // torn down by Abort (fault injection / reset)
	peer       *Conn
}

// newConnPair builds both ends of a connection crossing the given link.
// Each direction gets its own stream shaper (full-duplex link usage).
func newConnPair(lk *link, tr Transport, dialerAddr, listenerAddr net.Addr) (*Conn, *Conn) {
	aToB := newPipeHalf(lk.newStreamShaper(tr))
	bToA := newPipeHalf(lk.newStreamShaper(tr))
	a := &Conn{rd: bToA, wr: aToB, local: dialerAddr, remote: listenerAddr}
	b := &Conn{rd: aToB, wr: bToA, local: listenerAddr, remote: dialerAddr}
	a.peer, b.peer = b, a
	return a, b
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	c.mu.Lock()
	dl := c.rdeadline
	c.mu.Unlock()
	n, err := c.rd.read(p, dl)
	if err != nil && err != io.EOF {
		err = &net.OpError{Op: "read", Net: "sim", Source: c.local, Addr: c.remote, Err: err}
	}
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dl := c.wdeadline
	c.mu.Unlock()
	n, err := c.wr.write(p, dl)
	if err != nil {
		err = &net.OpError{Op: "write", Net: "sim", Source: c.local, Addr: c.remote, Err: err}
	}
	return n, err
}

// WriteBuffers writes several slices as one wire operation — the
// simulated writev(2). The MODE E fast path uses it to put a block header
// and its payload (or a batch of small blocks) into a single shaped chunk
// instead of one per Write call.
func (c *Conn) WriteBuffers(bufs [][]byte) (int64, error) {
	c.mu.Lock()
	dl := c.wdeadline
	c.mu.Unlock()
	n, err := c.wr.writev(bufs, dl)
	if err != nil {
		err = &net.OpError{Op: "writev", Net: "sim", Source: c.local, Addr: c.remote, Err: err}
	}
	return int64(n), err
}

// Close shuts down both directions of this end. The peer sees EOF after
// draining already-delivered data, like a TCP FIN.
func (c *Conn) Close() error {
	c.closedOnce.Do(func() {
		c.closed.Store(true)
		c.wr.closeWrite()
		c.rd.hardClose()
	})
	return nil
}

// CloseWrite half-closes the connection (TCP shutdown(SHUT_WR)): the peer
// reads EOF after the buffered data, while this end can still read. GridFTP
// stream mode uses this to signal end-of-file on data channels.
func (c *Conn) CloseWrite() error {
	c.wr.closeWrite()
	return nil
}

// Abort tears the connection down without draining, so the peer's pending
// reads fail immediately (a TCP RST). The fault-injection harness uses this
// to kill in-flight transfers.
func (c *Conn) Abort() {
	c.closed.Store(true)
	c.dropped.Store(true)
	c.wr.hardClose()
	c.rd.hardClose()
	if c.peer != nil {
		c.peer.dropped.Store(true)
		c.peer.rd.hardClose()
		c.peer.wr.hardClose()
	}
}

// WireStatus reports simulated wire-level health for this connection:
// the path RTT, the loss model's cumulative retransmitted segments for
// the send direction, whether the connection was reset by fault
// injection (drops), and a congestion-window estimate in segments
// derived from the effective stream cap. It implements the WireStatuser
// contract the stream-telemetry plane (internal/obs/streamstats) probes
// for, so simulated transfers produce the same per-stream wire series
// real TCP sockets do via TCP_INFO.
func (c *Conn) WireStatus() (rtt time.Duration, retransmits, drops, cwnd int64, ok bool) {
	rtt = 2 * c.wr.shaper.propagation()
	retransmits = c.wr.shaper.retransmitted()
	cwnd = c.wr.shaper.cwndSegments()
	if c.dropped.Load() {
		drops = 1
	}
	return rtt, retransmits, drops, cwnd, true
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdeadline, c.wdeadline = t, t
	c.mu.Unlock()
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdeadline = t
	c.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdeadline = t
	c.mu.Unlock()
	return nil
}
