package netsim

import (
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// maxBufferedBytes bounds how much written-but-unread data one direction of
// a connection may hold, modelling TCP flow control: a writer outpacing its
// reader eventually blocks.
const maxBufferedBytes = 8 << 20

// chunk is a span of bytes plus the simulated time at which it arrives at
// the receiver.
type chunk struct {
	data []byte
	at   time.Time
}

// pipeHalf is one direction of a connection: written by one end, read by
// the other. Delivery times are computed by the stream shaper at write time.
type pipeHalf struct {
	mu        sync.Mutex
	buf       []chunk
	buffered  int
	shaper    *streamShaper
	wclosed   bool          // writer called CloseWrite/Close
	dead      bool          // hard-closed; reads fail immediately
	dataReady chan struct{} // signalled when data or EOF becomes available
	spaceFree chan struct{} // signalled when buffer space frees up
	deadCh    chan struct{} // closed on hardClose; interrupts pacing sleeps
	deadOnce  sync.Once
}

func newPipeHalf(s *streamShaper) *pipeHalf {
	return &pipeHalf{
		shaper:    s,
		dataReady: make(chan struct{}, 1),
		spaceFree: make(chan struct{}, 1),
		deadCh:    make(chan struct{}),
	}
}

// sleepUntil blocks until t. It returns false if the half is hard-closed
// first: a paced writer sleeping out a multi-second transmission under an
// injected loss spike must release immediately when the watchdog or fault
// injector tears the connection down, or stall recovery would be gated on
// the very rate limit that caused the stall.
func (h *pipeHalf) sleepUntil(t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		select {
		case <-h.deadCh:
			return false
		default:
			return true
		}
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return true
	case <-h.deadCh:
		return false
	}
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// trackQueue moves the owning link's queue-depth counter by n bytes.
func (h *pipeHalf) trackQueue(n int64) {
	if h.shaper != nil && h.shaper.link != nil {
		h.shaper.link.stats.addQueue(n)
	}
}

// write appends p with a computed delivery time. It blocks (until deadline)
// while the buffer is full, and also blocks until the bytes have finished
// *transmitting* (not propagating), which paces the writer at the link rate.
// Hysteresis: once the buffer fills, the writer waits for a meaningful
// amount of space before resuming, so steady-state chunks never degrade
// into slivers (which would make per-chunk costs dominate).
func (h *pipeHalf) write(p []byte, deadline time.Time) (int, error) {
	total := 0
	for len(p) > 0 {
		want := len(p)
		if want > maxBufferedBytes/4 {
			want = maxBufferedBytes / 4
		}
		h.mu.Lock()
		for maxBufferedBytes-h.buffered < want && !h.wclosed && !h.dead {
			h.mu.Unlock()
			if err := waitSignal(h.spaceFree, deadline); err != nil {
				return total, err
			}
			h.mu.Lock()
		}
		if h.wclosed || h.dead {
			h.mu.Unlock()
			return total, net.ErrClosed
		}
		n := len(p)
		if room := maxBufferedBytes - h.buffered; n > room {
			n = room
		}
		now := time.Now()
		at := now
		if h.shaper != nil {
			at = h.shaper.deliveryTime(n, now)
		}
		data := make([]byte, n)
		copy(data, p[:n])
		h.buf = append(h.buf, chunk{data: data, at: at})
		h.buffered += n
		h.trackQueue(int64(n))
		h.mu.Unlock()
		signal(h.dataReady)
		total += n
		p = p[n:]
		// Pace the writer: it regains control once transmission (finish
		// time minus one-way propagation) completes.
		if h.shaper != nil {
			sendDone := at.Add(-h.shaper.propagation())
			if time.Until(sendDone) > 0 {
				if !deadline.IsZero() && sendDone.After(deadline) {
					h.sleepUntil(deadline)
					return total, os.ErrDeadlineExceeded
				}
				if !h.sleepUntil(sendDone) {
					return total, net.ErrClosed
				}
			}
		}
	}
	return total, nil
}

// read pops delivered bytes into p, blocking until data is available (and
// has arrived, per its delivery timestamp) or the writer side is closed.
func (h *pipeHalf) read(p []byte, deadline time.Time) (int, error) {
	for {
		h.mu.Lock()
		if h.dead {
			h.mu.Unlock()
			return 0, net.ErrClosed
		}
		if len(h.buf) > 0 {
			at := h.buf[0].at
			if wait := time.Until(at); wait > 0 {
				h.mu.Unlock()
				if !deadline.IsZero() && at.After(deadline) {
					h.sleepUntil(deadline)
					return 0, os.ErrDeadlineExceeded
				}
				if !h.sleepUntil(at) {
					return 0, net.ErrClosed
				}
				continue
			}
			// Coalesce: drain as many *delivered* chunks as fit in p, so
			// large reads are not limited to one chunk per call.
			n := 0
			now := time.Now()
			for n < len(p) && len(h.buf) > 0 {
				c := &h.buf[0]
				if c.at.After(now) {
					break
				}
				m := copy(p[n:], c.data)
				n += m
				if m == len(c.data) {
					h.buf = h.buf[1:]
				} else {
					c.data = c.data[m:]
				}
			}
			h.buffered -= n
			h.trackQueue(-int64(n))
			h.mu.Unlock()
			signal(h.spaceFree)
			return n, nil
		}
		if h.wclosed {
			h.mu.Unlock()
			return 0, io.EOF
		}
		h.mu.Unlock()
		if err := waitSignal(h.dataReady, deadline); err != nil {
			return 0, err
		}
	}
}

// closeWrite marks the writer side done; readers drain then see EOF.
func (h *pipeHalf) closeWrite() {
	h.mu.Lock()
	h.wclosed = true
	h.mu.Unlock()
	signal(h.dataReady)
	signal(h.spaceFree)
}

// hardClose tears the direction down; pending and future reads fail.
func (h *pipeHalf) hardClose() {
	h.mu.Lock()
	h.wclosed = true
	h.dead = true
	h.buf = nil
	h.trackQueue(-int64(h.buffered))
	h.buffered = 0
	h.mu.Unlock()
	h.deadOnce.Do(func() { close(h.deadCh) })
	signal(h.dataReady)
	signal(h.spaceFree)
}

func waitSignal(ch chan struct{}, deadline time.Time) error {
	if deadline.IsZero() {
		<-ch
		return nil
	}
	d := time.Until(deadline)
	if d <= 0 {
		return os.ErrDeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return nil
	case <-t.C:
		return os.ErrDeadlineExceeded
	}
}

// Conn is one end of a simulated connection. It implements net.Conn.
type Conn struct {
	rd, wr     *pipeHalf
	local      net.Addr
	remote     net.Addr
	mu         sync.Mutex
	rdeadline  time.Time
	wdeadline  time.Time
	closedOnce sync.Once
	closed     atomic.Bool
	dropped    atomic.Bool // torn down by Abort (fault injection / reset)
	peer       *Conn
}

// newConnPair builds both ends of a connection crossing the given link.
// Each direction gets its own stream shaper (full-duplex link usage).
func newConnPair(lk *link, tr Transport, dialerAddr, listenerAddr net.Addr) (*Conn, *Conn) {
	aToB := newPipeHalf(lk.newStreamShaper(tr))
	bToA := newPipeHalf(lk.newStreamShaper(tr))
	a := &Conn{rd: bToA, wr: aToB, local: dialerAddr, remote: listenerAddr}
	b := &Conn{rd: aToB, wr: bToA, local: listenerAddr, remote: dialerAddr}
	a.peer, b.peer = b, a
	return a, b
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	c.mu.Lock()
	dl := c.rdeadline
	c.mu.Unlock()
	n, err := c.rd.read(p, dl)
	if err != nil && err != io.EOF {
		err = &net.OpError{Op: "read", Net: "sim", Source: c.local, Addr: c.remote, Err: err}
	}
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dl := c.wdeadline
	c.mu.Unlock()
	n, err := c.wr.write(p, dl)
	if err != nil {
		err = &net.OpError{Op: "write", Net: "sim", Source: c.local, Addr: c.remote, Err: err}
	}
	return n, err
}

// Close shuts down both directions of this end. The peer sees EOF after
// draining already-delivered data, like a TCP FIN.
func (c *Conn) Close() error {
	c.closedOnce.Do(func() {
		c.closed.Store(true)
		c.wr.closeWrite()
		c.rd.hardClose()
	})
	return nil
}

// CloseWrite half-closes the connection (TCP shutdown(SHUT_WR)): the peer
// reads EOF after the buffered data, while this end can still read. GridFTP
// stream mode uses this to signal end-of-file on data channels.
func (c *Conn) CloseWrite() error {
	c.wr.closeWrite()
	return nil
}

// Abort tears the connection down without draining, so the peer's pending
// reads fail immediately (a TCP RST). The fault-injection harness uses this
// to kill in-flight transfers.
func (c *Conn) Abort() {
	c.closed.Store(true)
	c.dropped.Store(true)
	c.wr.hardClose()
	c.rd.hardClose()
	if c.peer != nil {
		c.peer.dropped.Store(true)
		c.peer.rd.hardClose()
		c.peer.wr.hardClose()
	}
}

// WireStatus reports simulated wire-level health for this connection:
// the path RTT, the loss model's cumulative retransmitted segments for
// the send direction, whether the connection was reset by fault
// injection (drops), and a congestion-window estimate in segments
// derived from the effective stream cap. It implements the WireStatuser
// contract the stream-telemetry plane (internal/obs/streamstats) probes
// for, so simulated transfers produce the same per-stream wire series
// real TCP sockets do via TCP_INFO.
func (c *Conn) WireStatus() (rtt time.Duration, retransmits, drops, cwnd int64, ok bool) {
	rtt = 2 * c.wr.shaper.propagation()
	retransmits = c.wr.shaper.retransmitted()
	cwnd = c.wr.shaper.cwndSegments()
	if c.dropped.Load() {
		drops = 1
	}
	return rtt, retransmits, drops, cwnd, true
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdeadline, c.wdeadline = t, t
	c.mu.Unlock()
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdeadline = t
	c.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdeadline = t
	c.mu.Unlock()
	return nil
}
