package netsim

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// limiter is a virtual-finish-time rate limiter. reserve(n) returns the
// wall-clock time at which n bytes finish transmitting at the configured
// rate, serialized after all previously reserved bytes. Composing two
// limiters (per-stream and shared-link) by taking the max of their finish
// times models a stream that is capped individually while also sharing the
// link with its siblings.
type limiter struct {
	mu   sync.Mutex
	rate float64 // bytes per second; <= 0 means unlimited
	free time.Time
}

func newLimiter(rate float64) *limiter {
	return &limiter{rate: rate}
}

// reserve books n bytes and returns their transmission-finish time.
func (l *limiter) reserve(n int, now time.Time) time.Time {
	if l == nil {
		return now
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate <= 0 {
		return now
	}
	start := l.free
	if start.Before(now) {
		start = now
	}
	dur := time.Duration(float64(n) / l.rate * float64(time.Second))
	l.free = start.Add(dur)
	return l.free
}

// setRate changes the limiter's rate and re-prices the outstanding
// backlog at it: the bytes still "on the wire" (free minus now, valued at
// the old rate) are rebooked at the new rate. Without this, a bandwidth
// collapse that queued minutes of virtual transmission would keep the
// cursor in the far future after the link heals, and new reservations —
// serialized behind it — would see a dead link long after recovery.
func (l *limiter) setRate(rate float64) {
	if l == nil {
		return
	}
	now := time.Now()
	l.mu.Lock()
	if l.rate > 0 && l.free.After(now) {
		if rate <= 0 {
			l.free = now
		} else {
			backlog := l.free.Sub(now).Seconds() * l.rate // bytes not yet sent
			l.free = now.Add(time.Duration(backlog / rate * float64(time.Second)))
		}
	}
	l.rate = rate
	l.mu.Unlock()
}

// linkStats holds the observability counters of one link. All fields are
// atomics: data-path goroutines update them without taking the link lock.
type linkStats struct {
	bytes    atomic.Int64 // bytes reserved for transmission (both directions)
	queue    atomic.Int64 // written-but-not-yet-read bytes currently queued
	maxQueue atomic.Int64 // high watermark of queue
	drops    atomic.Int64 // conns aborted by cuts + dials refused while down
	conns    atomic.Int64 // connections established
	retrans  atomic.Int64 // segments retransmitted (expected value under Loss)
}

// addQueue moves the queue depth by n and maintains the high watermark.
func (st *linkStats) addQueue(n int64) {
	q := st.queue.Add(n)
	for {
		m := st.maxQueue.Load()
		if q <= m || st.maxQueue.CompareAndSwap(m, q) {
			return
		}
	}
}

// LinkStats is a point-in-time snapshot of one link's counters.
type LinkStats struct {
	// Bytes is the total bytes transmitted across the link, both
	// directions combined.
	Bytes int64
	// QueueDepth is the written-but-not-yet-read bytes currently queued
	// on the link; MaxQueue is its high watermark.
	QueueDepth int64
	MaxQueue   int64
	// Drops counts connections aborted by CutLink plus dials refused
	// while the link was down.
	Drops int64
	// Conns is how many connections have been established over the link.
	Conns int64
	// Retransmits is the summed retransmitted-segment count across every
	// stream that crossed the link: the loss model's expected value
	// (segments x loss), accumulated deterministically at write time. It
	// equals the sum of the per-connection WireStatus counters.
	Retransmits int64
}

// link holds the shared shaping state for one host pair.
type link struct {
	shared *limiter // aggregate bandwidth shared by all streams
	stats  linkStats

	mu     sync.Mutex
	params LinkParams
	down   bool
	conns  []*Conn // live connections crossing this link
}

func newLink(p LinkParams) *link {
	l := &link{params: p}
	if p.Bandwidth > 0 {
		l.shared = newLimiter(p.Bandwidth)
	}
	return l
}

// getParams returns the link's current parameters.
func (l *link) getParams() LinkParams {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.params
}

// updateParams reshapes the link in place: live connections see the new
// bandwidth, RTT, loss rate, and window on their very next write. This is
// what makes SetLink a usable mid-transfer fault/loss injector.
func (l *link) updateParams(p LinkParams) {
	l.mu.Lock()
	l.params = p
	if p.Bandwidth > 0 && l.shared == nil {
		l.shared = newLimiter(p.Bandwidth)
	} else if l.shared != nil {
		l.shared.setRate(p.Bandwidth)
	}
	conns := append([]*Conn(nil), l.conns...)
	l.mu.Unlock()
	for _, c := range conns {
		c.wr.shaper.setParams(p)
		c.rd.shaper.setParams(p)
	}
}

// register tracks a connection for fault injection; it returns false when
// the link is down (dial must fail).
func (l *link) register(c *Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		l.stats.drops.Add(1)
		return false
	}
	l.stats.conns.Add(1)
	// Prune closed connections occasionally so long-lived links do not
	// accumulate dead entries.
	if len(l.conns) > 256 {
		live := l.conns[:0]
		for _, old := range l.conns {
			if !old.closed.Load() {
				live = append(live, old)
			}
		}
		l.conns = live
	}
	l.conns = append(l.conns, c)
	return true
}

// cut marks the link down and aborts every live connection on it.
func (l *link) cut() {
	l.mu.Lock()
	l.down = true
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		if !c.closed.Load() {
			l.stats.drops.Add(1)
		}
		c.Abort()
	}
}

// statsSnapshot reads the counters coherently enough for reporting.
func (l *link) statsSnapshot() LinkStats {
	return LinkStats{
		Bytes:       l.stats.bytes.Load(),
		QueueDepth:  l.stats.queue.Load(),
		MaxQueue:    l.stats.maxQueue.Load(),
		Drops:       l.stats.drops.Load(),
		Conns:       l.stats.conns.Load(),
		Retransmits: l.stats.retrans.Load(),
	}
}

// restore brings the link back up.
func (l *link) restore() {
	l.mu.Lock()
	l.down = false
	l.mu.Unlock()
}

func (l *link) isDown() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// newStreamShaper creates the per-stream shaping state for a new connection
// crossing this link. TCP streams are capped at the window/Mathis bound;
// UDT (rate-based) streams see only the shared link bandwidth.
func (l *link) newStreamShaper(tr Transport) *streamShaper {
	p := l.getParams()
	s := &streamShaper{link: l, tr: tr}
	s.applyParams(p)
	return s
}

func isInf(f float64) bool { return f > 1e30 }

// streamShaper computes delivery times for one direction of one stream,
// and accounts the loss model's retransmitted segments for that
// direction. Its parameters are mutable: the loss injector updates them
// mid-connection through setParams.
type streamShaper struct {
	link *link
	tr   Transport

	mu      sync.Mutex
	stream  *limiter
	oneWay  time.Duration
	loss    float64
	mss     int
	credit  float64 // fractional retransmitted segments not yet counted
	retrans int64   // cumulative retransmitted segments (this direction)
}

// applyParams installs the per-stream cap, propagation delay, and loss
// model implied by p. Callers must not hold s.mu.
func (s *streamShaper) applyParams(p LinkParams) {
	cap := p.StreamCap()
	s.mu.Lock()
	s.oneWay = p.RTT / 2
	s.loss = p.Loss
	s.mss = p.mss()
	if s.tr == TransportUDT {
		// Rate-based transport: no per-stream window or loss cap.
		s.stream = nil
	} else if cap > 0 && !isInf(cap) {
		if s.stream == nil {
			s.stream = newLimiter(cap)
		} else {
			s.stream.setRate(cap)
		}
	} else {
		s.stream = nil
	}
	s.mu.Unlock()
}

// setParams is applyParams plus nil-safety for conns without shapers.
func (s *streamShaper) setParams(p LinkParams) {
	if s == nil {
		return
	}
	s.applyParams(p)
}

// propagation returns the current one-way latency.
func (s *streamShaper) propagation() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.oneWay
}

// retransmitted returns this direction's cumulative retransmit count.
func (s *streamShaper) retransmitted() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retrans
}

// cwndSegments derives a congestion-window estimate in segments from the
// current effective stream cap (rate * RTT / MSS) — the window TCP would
// need to sustain that rate on this path.
func (s *streamShaper) cwndSegments() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stream == nil || s.oneWay <= 0 {
		return 0
	}
	s.stream.mu.Lock()
	rate := s.stream.rate
	s.stream.mu.Unlock()
	if rate <= 0 || s.mss <= 0 {
		return 0
	}
	rtt := 2 * s.oneWay
	return int64(math.Ceil(rate * rtt.Seconds() / float64(s.mss)))
}

// deliveryTime reserves n bytes on both the stream and the shared link and
// returns when the last byte arrives at the receiver. It also accrues the
// loss model's expected retransmitted segments (segments x loss) into the
// per-direction and per-link counters; the throughput cost of those
// retransmissions is already captured by the Mathis bound, so they are
// pure accounting here.
func (s *streamShaper) deliveryTime(n int, now time.Time) time.Time {
	s.mu.Lock()
	stream := s.stream
	oneWay := s.oneWay
	if s.loss > 0 && s.mss > 0 && n > 0 {
		segs := (n + s.mss - 1) / s.mss
		s.credit += float64(segs) * s.loss
		if k := int64(s.credit); k > 0 {
			s.credit -= float64(k)
			s.retrans += k
			if s.link != nil {
				s.link.stats.retrans.Add(k)
			}
		}
	}
	s.mu.Unlock()

	t := now
	if s.link != nil {
		s.link.stats.bytes.Add(int64(n))
	}
	if stream != nil {
		if ft := stream.reserve(n, now); ft.After(t) {
			t = ft
		}
	}
	if s.link != nil && s.link.shared != nil {
		if ft := s.link.shared.reserve(n, now); ft.After(t) {
			t = ft
		}
	}
	return t.Add(oneWay)
}
