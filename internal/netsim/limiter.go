package netsim

import (
	"sync"
	"sync/atomic"
	"time"
)

// limiter is a virtual-finish-time rate limiter. reserve(n) returns the
// wall-clock time at which n bytes finish transmitting at the configured
// rate, serialized after all previously reserved bytes. Composing two
// limiters (per-stream and shared-link) by taking the max of their finish
// times models a stream that is capped individually while also sharing the
// link with its siblings.
type limiter struct {
	mu   sync.Mutex
	rate float64 // bytes per second; <= 0 means unlimited
	free time.Time
}

func newLimiter(rate float64) *limiter {
	return &limiter{rate: rate}
}

// reserve books n bytes and returns their transmission-finish time.
func (l *limiter) reserve(n int, now time.Time) time.Time {
	if l == nil || l.rate <= 0 {
		return now
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	start := l.free
	if start.Before(now) {
		start = now
	}
	dur := time.Duration(float64(n) / l.rate * float64(time.Second))
	l.free = start.Add(dur)
	return l.free
}

// linkStats holds the observability counters of one link. All fields are
// atomics: data-path goroutines update them without taking the link lock.
type linkStats struct {
	bytes    atomic.Int64 // bytes reserved for transmission (both directions)
	queue    atomic.Int64 // written-but-not-yet-read bytes currently queued
	maxQueue atomic.Int64 // high watermark of queue
	drops    atomic.Int64 // conns aborted by cuts + dials refused while down
	conns    atomic.Int64 // connections established
}

// addQueue moves the queue depth by n and maintains the high watermark.
func (st *linkStats) addQueue(n int64) {
	q := st.queue.Add(n)
	for {
		m := st.maxQueue.Load()
		if q <= m || st.maxQueue.CompareAndSwap(m, q) {
			return
		}
	}
}

// LinkStats is a point-in-time snapshot of one link's counters.
type LinkStats struct {
	// Bytes is the total bytes transmitted across the link, both
	// directions combined.
	Bytes int64
	// QueueDepth is the written-but-not-yet-read bytes currently queued
	// on the link; MaxQueue is its high watermark.
	QueueDepth int64
	MaxQueue   int64
	// Drops counts connections aborted by CutLink plus dials refused
	// while the link was down.
	Drops int64
	// Conns is how many connections have been established over the link.
	Conns int64
}

// link holds the shared shaping state for one host pair.
type link struct {
	params LinkParams
	shared *limiter // aggregate bandwidth shared by all streams
	stats  linkStats

	mu    sync.Mutex
	down  bool
	conns []*Conn // live connections crossing this link
}

func newLink(p LinkParams) *link {
	l := &link{params: p}
	if p.Bandwidth > 0 {
		l.shared = newLimiter(p.Bandwidth)
	}
	return l
}

// register tracks a connection for fault injection; it returns false when
// the link is down (dial must fail).
func (l *link) register(c *Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		l.stats.drops.Add(1)
		return false
	}
	l.stats.conns.Add(1)
	// Prune closed connections occasionally so long-lived links do not
	// accumulate dead entries.
	if len(l.conns) > 256 {
		live := l.conns[:0]
		for _, old := range l.conns {
			if !old.closed.Load() {
				live = append(live, old)
			}
		}
		l.conns = live
	}
	l.conns = append(l.conns, c)
	return true
}

// cut marks the link down and aborts every live connection on it.
func (l *link) cut() {
	l.mu.Lock()
	l.down = true
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		if !c.closed.Load() {
			l.stats.drops.Add(1)
		}
		c.Abort()
	}
}

// statsSnapshot reads the counters coherently enough for reporting.
func (l *link) statsSnapshot() LinkStats {
	return LinkStats{
		Bytes:      l.stats.bytes.Load(),
		QueueDepth: l.stats.queue.Load(),
		MaxQueue:   l.stats.maxQueue.Load(),
		Drops:      l.stats.drops.Load(),
		Conns:      l.stats.conns.Load(),
	}
}

// restore brings the link back up.
func (l *link) restore() {
	l.mu.Lock()
	l.down = false
	l.mu.Unlock()
}

func (l *link) isDown() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// newStreamShaper creates the per-stream shaping state for a new connection
// crossing this link. TCP streams are capped at the window/Mathis bound;
// UDT (rate-based) streams see only the shared link bandwidth.
func (l *link) newStreamShaper(tr Transport) *streamShaper {
	s := &streamShaper{link: l, oneWay: l.params.RTT / 2}
	if tr == TransportUDT {
		return s
	}
	if cap := l.params.StreamCap(); cap > 0 && !isInf(cap) {
		s.stream = newLimiter(cap)
	}
	return s
}

func isInf(f float64) bool { return f > 1e30 }

// streamShaper computes delivery times for one direction of one stream.
type streamShaper struct {
	link   *link
	stream *limiter
	oneWay time.Duration
}

// deliveryTime reserves n bytes on both the stream and the shared link and
// returns when the last byte arrives at the receiver.
func (s *streamShaper) deliveryTime(n int, now time.Time) time.Time {
	t := now
	if s.link != nil {
		s.link.stats.bytes.Add(int64(n))
	}
	if s.stream != nil {
		if ft := s.stream.reserve(n, now); ft.After(t) {
			t = ft
		}
	}
	if s.link != nil && s.link.shared != nil {
		if ft := s.link.shared.reserve(n, now); ft.After(t) {
			t = ft
		}
	}
	return t.Add(s.oneWay)
}
