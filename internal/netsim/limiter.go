package netsim

import (
	"sync"
	"time"
)

// limiter is a virtual-finish-time rate limiter. reserve(n) returns the
// wall-clock time at which n bytes finish transmitting at the configured
// rate, serialized after all previously reserved bytes. Composing two
// limiters (per-stream and shared-link) by taking the max of their finish
// times models a stream that is capped individually while also sharing the
// link with its siblings.
type limiter struct {
	mu   sync.Mutex
	rate float64 // bytes per second; <= 0 means unlimited
	free time.Time
}

func newLimiter(rate float64) *limiter {
	return &limiter{rate: rate}
}

// reserve books n bytes and returns their transmission-finish time.
func (l *limiter) reserve(n int, now time.Time) time.Time {
	if l == nil || l.rate <= 0 {
		return now
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	start := l.free
	if start.Before(now) {
		start = now
	}
	dur := time.Duration(float64(n) / l.rate * float64(time.Second))
	l.free = start.Add(dur)
	return l.free
}

// link holds the shared shaping state for one host pair.
type link struct {
	params LinkParams
	shared *limiter // aggregate bandwidth shared by all streams

	mu    sync.Mutex
	down  bool
	conns []*Conn // live connections crossing this link
}

func newLink(p LinkParams) *link {
	l := &link{params: p}
	if p.Bandwidth > 0 {
		l.shared = newLimiter(p.Bandwidth)
	}
	return l
}

// register tracks a connection for fault injection; it returns false when
// the link is down (dial must fail).
func (l *link) register(c *Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		return false
	}
	// Prune closed connections occasionally so long-lived links do not
	// accumulate dead entries.
	if len(l.conns) > 256 {
		live := l.conns[:0]
		for _, old := range l.conns {
			if !old.closed.Load() {
				live = append(live, old)
			}
		}
		l.conns = live
	}
	l.conns = append(l.conns, c)
	return true
}

// cut marks the link down and aborts every live connection on it.
func (l *link) cut() {
	l.mu.Lock()
	l.down = true
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		c.Abort()
	}
}

// restore brings the link back up.
func (l *link) restore() {
	l.mu.Lock()
	l.down = false
	l.mu.Unlock()
}

func (l *link) isDown() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// newStreamShaper creates the per-stream shaping state for a new connection
// crossing this link. TCP streams are capped at the window/Mathis bound;
// UDT (rate-based) streams see only the shared link bandwidth.
func (l *link) newStreamShaper(tr Transport) *streamShaper {
	s := &streamShaper{link: l, oneWay: l.params.RTT / 2}
	if tr == TransportUDT {
		return s
	}
	if cap := l.params.StreamCap(); cap > 0 && !isInf(cap) {
		s.stream = newLimiter(cap)
	}
	return s
}

func isInf(f float64) bool { return f > 1e30 }

// streamShaper computes delivery times for one direction of one stream.
type streamShaper struct {
	link   *link
	stream *limiter
	oneWay time.Duration
}

// deliveryTime reserves n bytes on both the stream and the shared link and
// returns when the last byte arrives at the receiver.
func (s *streamShaper) deliveryTime(n int, now time.Time) time.Time {
	t := now
	if s.stream != nil {
		if ft := s.stream.reserve(n, now); ft.After(t) {
			t = ft
		}
	}
	if s.link != nil && s.link.shared != nil {
		if ft := s.link.shared.reserve(n, now); ft.After(t) {
			t = ft
		}
	}
	return t.Add(s.oneWay)
}
