package netsim

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestWireStatusAgreesWithLinkStats drives several connections across a
// link, spikes the loss rate mid-traffic via SetLink, and checks that the
// per-connection WireStatus counters (what the stream-telemetry plane
// reads) agree with the per-link LinkStats aggregates (what the metrics
// exporter reads): summed retransmits match exactly, and after a cut every
// connection reports itself dropped, matching the link drop count.
func TestWireStatusAgreesWithLinkStats(t *testing.T) {
	nw := NewNetwork()
	params := LinkParams{
		Bandwidth:    64 << 20,
		RTT:          2 * time.Millisecond,
		StreamWindow: 1 << 20,
	}
	nw.SetLink("a", "b", params)

	l, err := nw.Host("b").Listen(9000)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				io.Copy(io.Discard, conn)
			}()
		}
	}()

	const streams = 3
	conns := make([]*Conn, streams)
	for i := range conns {
		c, err := nw.Host("a").Dial("b:9000")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c.(*Conn)
	}

	payload := make([]byte, 1<<20)
	writeAll := func() {
		var ww sync.WaitGroup
		for _, c := range conns {
			ww.Add(1)
			go func(c *Conn) {
				defer ww.Done()
				if _, err := c.Write(payload); err != nil {
					t.Errorf("write: %v", err)
				}
			}(c)
		}
		ww.Wait()
	}

	// Phase 1: clean link — no retransmits anywhere.
	writeAll()
	for i, c := range conns {
		rtt, retrans, drops, _, ok := c.WireStatus()
		if !ok {
			t.Fatalf("conn %d: WireStatus not supported", i)
		}
		if rtt != params.RTT {
			t.Errorf("conn %d: rtt %v, want %v", i, rtt, params.RTT)
		}
		if retrans != 0 || drops != 0 {
			t.Errorf("conn %d: retrans=%d drops=%d on a clean link", i, retrans, drops)
		}
	}
	if st := nw.LinkStats("a", "b"); st.Retransmits != 0 {
		t.Errorf("link retransmits %d on a clean link", st.Retransmits)
	}

	// Phase 2: loss spike injected into the live link. Keep the window
	// large so the Mathis cap (not the window) becomes binding but the
	// writes still finish quickly.
	spiked := params
	spiked.Loss = 0.01
	nw.SetLink("a", "b", spiked)
	writeAll()

	var perConn int64
	for i, c := range conns {
		_, retrans, _, cwnd, _ := c.WireStatus()
		if retrans <= 0 {
			t.Errorf("conn %d: no retransmits recorded under 1%% loss", i)
		}
		if cwnd <= 0 {
			t.Errorf("conn %d: cwnd %d, want > 0 on a capped stream", i, cwnd)
		}
		perConn += retrans
	}
	st := nw.LinkStats("a", "b")
	if st.Retransmits != perConn {
		t.Errorf("link retransmits %d != sum of per-conn counters %d", st.Retransmits, perConn)
	}
	// ~1% of the segments of streams x 1 MiB should have been counted;
	// each shaper may hold back up to one fractional segment of credit.
	wantMin := int64(float64(streams*len(payload)/1460)*spiked.Loss) - streams
	if perConn < wantMin {
		t.Errorf("retransmits %d, want >= %d for %d bytes at %.0f%% loss",
			perConn, wantMin, streams*len(payload), spiked.Loss*100)
	}

	// Phase 3: cut the link — every conn reports dropped, and the link
	// counts each of them.
	nw.CutLink("a", "b")
	var perConnDrops int64
	for i, c := range conns {
		_, _, drops, _, _ := c.WireStatus()
		if drops != 1 {
			t.Errorf("conn %d: drops=%d after cut, want 1", i, drops)
		}
		perConnDrops += drops
	}
	if st := nw.LinkStats("a", "b"); st.Drops != perConnDrops {
		t.Errorf("link drops %d != sum of per-conn drops %d", st.Drops, perConnDrops)
	}

	l.Close()
	wg.Wait()
}

// TestSetLinkReshapesLiveConns checks that SetLink on an existing link
// updates connections in flight: a stream that starts on a fast link and
// is then squeezed to a trickle observes the new cap without redialing.
func TestSetLinkReshapesLiveConns(t *testing.T) {
	nw := NewNetwork()
	fast := LinkParams{RTT: time.Millisecond, StreamWindow: 8 << 20}
	nw.SetLink("a", "b", fast)

	l, err := nw.Host("b").Listen(9000)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, conn)
	}()

	conn, err := nw.Host("a").Dial("b:9000")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Fast phase: 1 MiB at ~8 GB/s cap is effectively instant.
	payload := make([]byte, 1<<20)
	start := time.Now()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("fast-phase write took %v", d)
	}

	// Squeeze the live link to ~64 KiB/s and verify the next write is
	// paced by the new cap (64 KiB should take on the order of a second;
	// accept anything clearly slower than the fast phase).
	slow := LinkParams{RTT: time.Second, StreamWindow: 64 << 10}
	nw.SetLink("a", "b", slow)
	start = time.Now()
	if _, err := conn.Write(make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("squeezed write finished in %v; SetLink did not reshape the live conn", d)
	}
}
