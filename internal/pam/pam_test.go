package pam

import (
	"errors"
	"testing"
	"testing/quick"
)

func ldapStack(t *testing.T) (*Stack, *LDAPDirectory, *AccountDB) {
	t.Helper()
	dir := NewLDAPDirectory("dc=siteA,dc=org")
	dir.AddEntry("alice", "s3cret")
	accounts := NewAccountDB()
	accounts.Add(Account{Name: "alice"})
	stack := NewStack("myproxy", accounts, Entry{Required, &LDAPModule{Dir: dir}})
	return stack, dir, accounts
}

func TestLDAPStackSuccess(t *testing.T) {
	stack, _, _ := ldapStack(t)
	acct, err := stack.Authenticate("alice", PasswordConv("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	if acct.Name != "alice" || acct.UID == 0 || acct.Home != "/home/alice" {
		t.Fatalf("account %+v", acct)
	}
}

func TestLDAPStackWrongPassword(t *testing.T) {
	stack, _, _ := ldapStack(t)
	if _, err := stack.Authenticate("alice", PasswordConv("wrong")); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("want ErrAuthFailed, got %v", err)
	}
}

func TestLDAPStackUnknownUser(t *testing.T) {
	stack, _, _ := ldapStack(t)
	if _, err := stack.Authenticate("mallory", PasswordConv("s3cret")); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("want ErrUnknownUser, got %v", err)
	}
}

func TestLockedAccountRejectedAfterAuth(t *testing.T) {
	stack, _, accounts := ldapStack(t)
	accounts.SetLocked("alice", true)
	if _, err := stack.Authenticate("alice", PasswordConv("s3cret")); !errors.Is(err, ErrLocked) {
		t.Fatalf("want ErrLocked, got %v", err)
	}
	accounts.SetLocked("alice", false)
	if _, err := stack.Authenticate("alice", PasswordConv("s3cret")); err != nil {
		t.Fatal(err)
	}
}

func TestNISModule(t *testing.T) {
	maps := NewNISMaps("siteB")
	maps.AddUser("bob", "hunter2")
	accounts := NewAccountDB()
	accounts.Add(Account{Name: "bob"})
	stack := NewStack("myproxy", accounts, Entry{Required, &NISModule{Maps: maps}})
	if _, err := stack.Authenticate("bob", PasswordConv("hunter2")); err != nil {
		t.Fatal(err)
	}
	if _, err := stack.Authenticate("bob", PasswordConv("hunter3")); err == nil {
		t.Fatal("wrong NIS password accepted")
	}
}

func TestRADIUSModule(t *testing.T) {
	srv := NewRADIUSServer("nas-secret")
	srv.AddUser("carol", "pw")
	accounts := NewAccountDB()
	accounts.Add(Account{Name: "carol"})
	stack := NewStack("myproxy", accounts, Entry{Required, &RADIUSModule{Server: srv, Secret: "nas-secret"}})
	if _, err := stack.Authenticate("carol", PasswordConv("pw")); err != nil {
		t.Fatal(err)
	}
	if _, err := stack.Authenticate("carol", PasswordConv("nope")); err == nil {
		t.Fatal("wrong RADIUS password accepted")
	}
	// Wrong shared secret on the NAS side.
	bad := NewStack("myproxy", accounts, Entry{Required, &RADIUSModule{Server: srv, Secret: "wrong"}})
	if _, err := bad.Authenticate("carol", PasswordConv("pw")); err == nil {
		t.Fatal("wrong shared secret accepted")
	}
}

func TestOTPSingleUse(t *testing.T) {
	auth := NewOTPAuthority()
	auth.Enroll("dave", []byte("seed-material"))
	code, err := auth.NextCode("dave")
	if err != nil {
		t.Fatal(err)
	}
	if err := auth.Verify("dave", code); err != nil {
		t.Fatal(err)
	}
	if err := auth.Verify("dave", code); err == nil {
		t.Fatal("OTP code replay accepted")
	}
	// Next code still works.
	code2, _ := auth.NextCode("dave")
	if code2 == code {
		t.Fatal("consecutive OTP codes identical")
	}
	if err := auth.Verify("dave", code2); err != nil {
		t.Fatal(err)
	}
}

func TestOTPWindowSkip(t *testing.T) {
	auth := NewOTPAuthority()
	auth.Enroll("eve", []byte("seed"))
	auth.NextCode("eve") // generated but never used
	code, _ := auth.NextCode("eve")
	if err := auth.Verify("eve", code); err != nil {
		t.Fatalf("code within look-ahead window rejected: %v", err)
	}
}

func TestOTPModuleViaStack(t *testing.T) {
	auth := NewOTPAuthority()
	auth.Enroll("dave", []byte("seed"))
	accounts := NewAccountDB()
	accounts.Add(Account{Name: "dave"})
	stack := NewStack("myproxy", accounts, Entry{Required, &OTPModule{Authority: auth}})
	code, _ := auth.NextCode("dave")
	if _, err := stack.Authenticate("dave", PasswordConv(code)); err != nil {
		t.Fatal(err)
	}
	if _, err := stack.Authenticate("dave", PasswordConv("00000000")); err == nil {
		t.Fatal("bogus OTP accepted")
	}
}

// failModule always fails; okModule always succeeds.
type failModule struct{}

func (failModule) Name() string { return "pam_deny" }
func (failModule) Authenticate(string, string, Conversation) error {
	return ErrAuthFailed
}

type okModule struct{}

func (okModule) Name() string                                    { return "pam_permit" }
func (okModule) Authenticate(string, string, Conversation) error { return nil }

func TestControlSemantics(t *testing.T) {
	accounts := NewAccountDB()
	accounts.Add(Account{Name: "u"})
	cases := []struct {
		name    string
		entries []Entry
		wantOK  bool
	}{
		{"required fail", []Entry{{Required, failModule{}}, {Optional, okModule{}}}, false},
		{"requisite fail aborts", []Entry{{Requisite, failModule{}}, {Sufficient, okModule{}}}, false},
		{"sufficient short-circuits", []Entry{{Sufficient, okModule{}}, {Required, failModule{}}}, true},
		{"sufficient after required failure does not rescue", []Entry{{Required, failModule{}}, {Sufficient, okModule{}}}, false},
		{"optional failure ignored", []Entry{{Optional, failModule{}}, {Required, okModule{}}}, true},
		{"all required pass", []Entry{{Required, okModule{}}, {Required, okModule{}}}, true},
	}
	for _, tc := range cases {
		stack := NewStack("svc", accounts, tc.entries...)
		_, err := stack.Authenticate("u", PasswordConv("x"))
		if (err == nil) != tc.wantOK {
			t.Errorf("%s: err=%v wantOK=%v", tc.name, err, tc.wantOK)
		}
	}
}

func TestEmptyStackFails(t *testing.T) {
	stack := NewStack("svc", NewAccountDB())
	if _, err := stack.Authenticate("u", PasswordConv("x")); err == nil {
		t.Fatal("empty stack must fail closed")
	}
}

func TestAccountDB(t *testing.T) {
	db := NewAccountDB()
	a := db.Add(Account{Name: "x"})
	b := db.Add(Account{Name: "y"})
	if a.UID == b.UID {
		t.Fatal("UIDs must be distinct")
	}
	if _, err := db.Lookup("z"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("want ErrUnknownUser, got %v", err)
	}
	got, err := db.Lookup("x")
	if err != nil {
		t.Fatal(err)
	}
	// Lookup returns a copy: mutating it must not affect the DB.
	got.Locked = true
	again, _ := db.Lookup("x")
	if again.Locked {
		t.Fatal("Lookup must return a copy")
	}
	if len(db.Names()) != 2 {
		t.Fatalf("Names: %v", db.Names())
	}
}

func TestHashVerifyProperty(t *testing.T) {
	f := func(secret, other string) bool {
		h := hashSecret(newSalt(), secret)
		if !verifySecret(h, secret) {
			return false
		}
		if other != secret && verifySecret(h, other) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySecretMalformed(t *testing.T) {
	for _, bad := range []string{"", "plain", "$1$x$y", "$5$saltonly"} {
		if verifySecret(bad, "x") {
			t.Errorf("verifySecret(%q) accepted", bad)
		}
	}
}

func TestControlString(t *testing.T) {
	for c, want := range map[Control]string{
		Required: "required", Requisite: "requisite",
		Sufficient: "sufficient", Optional: "optional",
	} {
		if c.String() != want {
			t.Errorf("%v", c)
		}
	}
}
