// Package pam implements a Pluggable Authentication Modules facility in
// the spirit of OSF RFC 86.0, which GCMU's MyProxy Online CA uses to tie
// certificate issuance to a site's existing identity domain (LDAP, NIS,
// RADIUS, one-time passwords) — step 2 of the paper's Fig 3 workflow.
//
// A Stack is the analog of an /etc/pam.d service file: an ordered list of
// modules with required / requisite / sufficient / optional control flags.
// Modules talk to the applicant through a Conversation, so challenge-
// response schemes (OTP, RADIUS access-challenge) work as well as plain
// passwords.
package pam

import (
	"errors"
	"fmt"
	"sync"
)

// Common sentinel errors.
var (
	// ErrAuthFailed is returned when a module positively rejects the user.
	ErrAuthFailed = errors.New("pam: authentication failure")
	// ErrUnknownUser is returned when the module has no record of the user.
	ErrUnknownUser = errors.New("pam: unknown user")
	// ErrIgnore signals the module has no opinion (treated as pass for
	// optional modules, failure for required ones).
	ErrIgnore = errors.New("pam: ignore")
	// ErrLocked is returned when the account is administratively locked.
	ErrLocked = errors.New("pam: account locked")
)

// Conversation lets modules interact with the applicant: prompt for a
// password, an OTP code, etc. echo=false indicates a secret prompt.
type Conversation func(prompt string, echo bool) (string, error)

// PasswordConv adapts a fixed password to the Conversation interface —
// what the myproxy-logon client uses after reading the password once.
func PasswordConv(password string) Conversation {
	return func(prompt string, echo bool) (string, error) {
		return password, nil
	}
}

// Module authenticates users for a service.
type Module interface {
	// Name identifies the module in configuration and error messages.
	Name() string
	// Authenticate verifies the user, prompting through conv as needed.
	Authenticate(service, username string, conv Conversation) error
}

// Control is the stack-entry control flag, with standard PAM semantics.
type Control int

const (
	// Required: failure marks the stack failed but later modules still run.
	Required Control = iota
	// Requisite: failure aborts the stack immediately.
	Requisite
	// Sufficient: success short-circuits the stack (if nothing failed yet).
	Sufficient
	// Optional: result ignored unless it is the only module.
	Optional
)

// String implements fmt.Stringer.
func (c Control) String() string {
	switch c {
	case Required:
		return "required"
	case Requisite:
		return "requisite"
	case Sufficient:
		return "sufficient"
	case Optional:
		return "optional"
	}
	return fmt.Sprintf("control(%d)", int(c))
}

// Entry is one line of a PAM service configuration.
type Entry struct {
	Control Control
	Module  Module
}

// Stack is an ordered module list for one service, plus the account
// database consulted after authentication.
type Stack struct {
	Service  string
	Entries  []Entry
	Accounts *AccountDB
}

// NewStack builds a stack for a service backed by the given account DB.
func NewStack(service string, accounts *AccountDB, entries ...Entry) *Stack {
	return &Stack{Service: service, Entries: entries, Accounts: accounts}
}

// Authenticate runs the stack with standard control-flag semantics and, on
// success, resolves the local account.
func (s *Stack) Authenticate(username string, conv Conversation) (*Account, error) {
	if len(s.Entries) == 0 {
		return nil, fmt.Errorf("pam: service %q has no modules configured", s.Service)
	}
	var failed error
	for _, e := range s.Entries {
		err := e.Module.Authenticate(s.Service, username, conv)
		switch e.Control {
		case Required:
			if err != nil && !errors.Is(err, ErrIgnore) && failed == nil {
				failed = moduleErr(e.Module, err)
			}
		case Requisite:
			if err != nil && !errors.Is(err, ErrIgnore) {
				return nil, moduleErr(e.Module, err)
			}
		case Sufficient:
			if err == nil && failed == nil {
				return s.resolve(username)
			}
		case Optional:
			// Result ignored.
		}
	}
	if failed != nil {
		return nil, failed
	}
	return s.resolve(username)
}

func (s *Stack) resolve(username string) (*Account, error) {
	if s.Accounts == nil {
		return &Account{Name: username}, nil
	}
	acct, err := s.Accounts.Lookup(username)
	if err != nil {
		return nil, err
	}
	if acct.Locked {
		return nil, ErrLocked
	}
	return acct, nil
}

func moduleErr(m Module, err error) error {
	return fmt.Errorf("pam: module %s: %w", m.Name(), err)
}

// Account is a local user account (the paper's "local user id" the GridFTP
// server runs requests as after the authorization callout).
type Account struct {
	Name   string
	UID    int
	Home   string
	Locked bool
}

// AccountDB is a thread-safe local account database (an /etc/passwd
// analog).
type AccountDB struct {
	mu      sync.RWMutex
	byName  map[string]*Account
	nextUID int
}

// NewAccountDB returns an empty account database.
func NewAccountDB() *AccountDB {
	return &AccountDB{byName: make(map[string]*Account), nextUID: 1000}
}

// Add creates an account; UID 0 auto-assigns, empty Home defaults to
// /home/<name>.
func (db *AccountDB) Add(a Account) *Account {
	db.mu.Lock()
	defer db.mu.Unlock()
	if a.UID == 0 {
		db.nextUID++
		a.UID = db.nextUID
	}
	if a.Home == "" {
		a.Home = "/home/" + a.Name
	}
	cp := a
	db.byName[a.Name] = &cp
	return &cp
}

// Lookup finds an account by name.
func (db *AccountDB) Lookup(name string) (*Account, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	a, ok := db.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, name)
	}
	cp := *a
	return &cp, nil
}

// SetLocked flips the account lock flag.
func (db *AccountDB) SetLocked(name string, locked bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	a, ok := db.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownUser, name)
	}
	a.Locked = locked
	return nil
}

// Names returns all account names (unordered).
func (db *AccountDB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.byName))
	for n := range db.byName {
		out = append(out, n)
	}
	return out
}
