package pam

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
)

// hashSecret computes a salted SHA-256 password hash in a crypt(3)-like
// "$5$salt$hex" form.
func hashSecret(salt, secret string) string {
	h := sha256.Sum256([]byte(salt + "$" + secret))
	return "$5$" + salt + "$" + hex.EncodeToString(h[:])
}

// newSalt returns a random 8-byte hex salt.
func newSalt() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// verifySecret checks a secret against a stored "$5$salt$hex" hash in
// constant time.
func verifySecret(stored, secret string) bool {
	parts := strings.SplitN(stored, "$", 4)
	if len(parts) != 4 || parts[1] != "5" {
		return false
	}
	want := hashSecret(parts[2], secret)
	return subtle.ConstantTimeCompare([]byte(stored), []byte(want)) == 1
}

// --- LDAP ---

// LDAPDirectory simulates an LDAP server: a DIT of user entries bound to
// by DN template. GCMU sites commonly back PAM with LDAP (§IV, [21]).
type LDAPDirectory struct {
	// BaseDN is the directory suffix, e.g. "dc=siteA,dc=org".
	BaseDN string
	mu     sync.RWMutex
	// entries maps uid -> password hash.
	entries map[string]string
}

// NewLDAPDirectory creates an empty directory.
func NewLDAPDirectory(baseDN string) *LDAPDirectory {
	return &LDAPDirectory{BaseDN: baseDN, entries: make(map[string]string)}
}

// AddEntry provisions a user with a password.
func (d *LDAPDirectory) AddEntry(uid, password string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[uid] = hashSecret(newSalt(), password)
}

// Bind performs a simple bind: DN must be "uid=<user>,<BaseDN>".
func (d *LDAPDirectory) Bind(dn, password string) error {
	prefix := "uid="
	suffix := "," + d.BaseDN
	if !strings.HasPrefix(dn, prefix) || !strings.HasSuffix(dn, suffix) {
		return fmt.Errorf("ldap: invalid DN %q", dn)
	}
	uid := strings.TrimSuffix(strings.TrimPrefix(dn, prefix), suffix)
	d.mu.RLock()
	stored, ok := d.entries[uid]
	d.mu.RUnlock()
	if !ok {
		return ErrUnknownUser
	}
	if !verifySecret(stored, password) {
		return ErrAuthFailed
	}
	return nil
}

// LDAPModule is the pam_ldap analog.
type LDAPModule struct {
	Dir *LDAPDirectory
}

// Name implements Module.
func (m *LDAPModule) Name() string { return "pam_ldap" }

// Authenticate implements Module by simple-binding as the user.
func (m *LDAPModule) Authenticate(service, username string, conv Conversation) error {
	password, err := conv("Password: ", false)
	if err != nil {
		return err
	}
	return m.Dir.Bind(fmt.Sprintf("uid=%s,%s", username, m.Dir.BaseDN), password)
}

// --- NIS ---

// NISMaps simulates a NIS domain's passwd map.
type NISMaps struct {
	Domain string
	mu     sync.RWMutex
	passwd map[string]string // user -> hash
}

// NewNISMaps creates an empty NIS domain.
func NewNISMaps(domain string) *NISMaps {
	return &NISMaps{Domain: domain, passwd: make(map[string]string)}
}

// AddUser provisions a passwd-map entry.
func (n *NISMaps) AddUser(user, password string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.passwd[user] = hashSecret(newSalt(), password)
}

// Match performs a yp match against the passwd map.
func (n *NISMaps) Match(user string) (string, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.passwd[user]
	if !ok {
		return "", ErrUnknownUser
	}
	return h, nil
}

// NISModule is the pam_unix-over-NIS analog.
type NISModule struct {
	Maps *NISMaps
}

// Name implements Module.
func (m *NISModule) Name() string { return "pam_nis" }

// Authenticate implements Module by matching the passwd map and verifying
// the hash locally, as ypclients do.
func (m *NISModule) Authenticate(service, username string, conv Conversation) error {
	stored, err := m.Maps.Match(username)
	if err != nil {
		return err
	}
	password, err := conv("Password: ", false)
	if err != nil {
		return err
	}
	if !verifySecret(stored, password) {
		return ErrAuthFailed
	}
	return nil
}

// --- RADIUS ---

// RADIUSServer simulates a RADIUS server reachable with a shared secret
// (RFC 2865). Access-Request carries an HMAC of the password under the
// shared secret, standing in for the RFC's MD5-based hiding.
type RADIUSServer struct {
	sharedSecret string
	mu           sync.RWMutex
	users        map[string]string
}

// NewRADIUSServer creates a RADIUS server with a client shared secret.
func NewRADIUSServer(sharedSecret string) *RADIUSServer {
	return &RADIUSServer{sharedSecret: sharedSecret, users: make(map[string]string)}
}

// AddUser provisions a user.
func (r *RADIUSServer) AddUser(user, password string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.users[user] = hashSecret(newSalt(), password)
}

// AccessRequest validates a hidden password attribute produced by
// HidePassword with the same shared secret.
func (r *RADIUSServer) AccessRequest(clientSecret, user string, hidden []byte, authenticator []byte) error {
	if clientSecret != r.sharedSecret {
		return fmt.Errorf("radius: bad shared secret")
	}
	r.mu.RLock()
	stored, ok := r.users[user]
	r.mu.RUnlock()
	if !ok {
		return ErrUnknownUser
	}
	// The server cannot invert the hiding, so it recomputes the expected
	// attribute from its stored credential and the request authenticator
	// and compares in constant time.
	if !verifyHidden(r.sharedSecret, stored, hidden, authenticator) {
		return ErrAuthFailed
	}
	return nil
}

// HidePassword hides a password for transport, given the stored-hash salt
// discovery is not available to real clients; instead the protocol hides
// the cleartext and the server verifies. To keep the store hashed, the
// hiding binds the cleartext to the request authenticator; the server
// verifies by re-deriving from its stored hash's salt.
func HidePassword(sharedSecret, password string, authenticator []byte, salt string) []byte {
	mac := hmac.New(sha256.New, []byte(sharedSecret))
	mac.Write(authenticator)
	mac.Write([]byte(hashSecret(salt, password)))
	return mac.Sum(nil)
}

func verifyHidden(sharedSecret, stored string, hidden, authenticator []byte) bool {
	parts := strings.SplitN(stored, "$", 4)
	if len(parts) != 4 {
		return false
	}
	mac := hmac.New(sha256.New, []byte(sharedSecret))
	mac.Write(authenticator)
	mac.Write([]byte(stored))
	return hmac.Equal(hidden, mac.Sum(nil))
}

// Salt exposes the salt of a user's stored credential — simulating the
// out-of-band state a NAS and server share; tests and the module use it.
func (r *RADIUSServer) Salt(user string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	stored, ok := r.users[user]
	if !ok {
		return "", ErrUnknownUser
	}
	parts := strings.SplitN(stored, "$", 4)
	if len(parts) != 4 {
		return "", fmt.Errorf("radius: corrupt store")
	}
	return parts[2], nil
}

// RADIUSModule is the pam_radius analog.
type RADIUSModule struct {
	Server *RADIUSServer
	Secret string // shared secret configured on this NAS
}

// Name implements Module.
func (m *RADIUSModule) Name() string { return "pam_radius" }

// Authenticate implements Module via an Access-Request exchange.
func (m *RADIUSModule) Authenticate(service, username string, conv Conversation) error {
	password, err := conv("Password: ", false)
	if err != nil {
		return err
	}
	var authenticator [16]byte
	rand.Read(authenticator[:])
	salt, err := m.Server.Salt(username)
	if err != nil {
		return err
	}
	hidden := HidePassword(m.Secret, password, authenticator[:], salt)
	return m.Server.AccessRequest(m.Secret, username, hidden, authenticator[:])
}
