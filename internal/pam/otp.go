package pam

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// OTPAuthority is an HOTP-style (RFC 4226 shape) counter-based one-time
// password authority. The paper notes MyProxy Online CA accepts "username/
// password, OTP, etc." (§IV.A); this is the OTP backend.
type OTPAuthority struct {
	mu       sync.Mutex
	seeds    map[string][]byte
	counters map[string]uint64
	// Window is how many counter values ahead the verifier will accept,
	// tolerating generated-but-unused codes. Default 4.
	Window int
}

// NewOTPAuthority returns an empty OTP authority.
func NewOTPAuthority() *OTPAuthority {
	return &OTPAuthority{seeds: make(map[string][]byte), counters: make(map[string]uint64)}
}

// Enroll provisions a user with a seed (as a hardware token would carry).
func (o *OTPAuthority) Enroll(user string, seed []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	cp := make([]byte, len(seed))
	copy(cp, seed)
	o.seeds[user] = cp
	o.counters[user] = 0
}

// hotp computes the 8-digit code for a seed and counter.
func hotp(seed []byte, counter uint64) string {
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	mac := hmac.New(sha256.New, seed)
	mac.Write(c[:])
	sum := mac.Sum(nil)
	off := sum[len(sum)-1] & 0x0f
	v := binary.BigEndian.Uint32(sum[off:off+4]) & 0x7fffffff
	return fmt.Sprintf("%08d", v%100000000)
}

// NextCode generates the next code for a user's token (the token side).
func (o *OTPAuthority) NextCode(user string) (string, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	seed, ok := o.seeds[user]
	if !ok {
		return "", ErrUnknownUser
	}
	c := o.counters[user]
	o.counters[user] = c + 1
	return hotp(seed, c), nil
}

// Verify checks a code within the look-ahead window and burns counters up
// to and including the matched one (each code is single-use).
func (o *OTPAuthority) Verify(user, code string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	seed, ok := o.seeds[user]
	if !ok {
		return ErrUnknownUser
	}
	window := o.Window
	if window <= 0 {
		window = 4
	}
	// verified counter tracks the highest counter already consumed.
	base := o.verifiedCounter(user)
	for i := 0; i < window; i++ {
		if hotp(seed, base+uint64(i)) == code {
			o.setVerifiedCounter(user, base+uint64(i)+1)
			return nil
		}
	}
	return ErrAuthFailed
}

// verified counters are stored separately from generation counters so a
// server-side verifier does not share state with the client token.
var verifiedKey = "\x00verified\x00"

func (o *OTPAuthority) verifiedCounter(user string) uint64 {
	return o.counters[user+verifiedKey]
}

func (o *OTPAuthority) setVerifiedCounter(user string, v uint64) {
	o.counters[user+verifiedKey] = v
}

// OTPModule is the pam_otp analog.
type OTPModule struct {
	Authority *OTPAuthority
}

// Name implements Module.
func (m *OTPModule) Name() string { return "pam_otp" }

// Authenticate implements Module by prompting for a one-time code.
func (m *OTPModule) Authenticate(service, username string, conv Conversation) error {
	code, err := conv("One-time code: ", true)
	if err != nil {
		return err
	}
	return m.Authority.Verify(username, code)
}
