package myproxy

import (
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/ca"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

// env builds a site with an online CA behind an LDAP PAM stack and a
// running MyProxy server.
func env(t *testing.T) (*netsim.Network, *Server, string, *gsi.TrustStore, *pam.OTPAuthority) {
	t.Helper()
	signing, err := gsi.NewCA("/O=Grid/OU=siteA/CN=MyProxy CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	dir := pam.NewLDAPDirectory("dc=siteA")
	dir.AddEntry("alice", "s3cret")
	otp := pam.NewOTPAuthority()
	otp.Enroll("alice", []byte("token-seed"))
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	stack := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}},
	)
	online := ca.New(signing, stack, "/O=Grid/OU=siteA")
	hostCred, err := signing.Issue(gsi.IssueOptions{Subject: "/O=Grid/OU=siteA/CN=myproxy-host", Lifetime: time.Hour, Host: true})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	srv := &Server{OnlineCA: online, HostCred: hostCred}
	addr, err := srv.ListenAndServe(nw.Host("siteA"), DefaultPort)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	trust := gsi.NewTrustStore()
	trust.AddCA(signing.Certificate())
	return nw, srv, addr.String(), trust, otp
}

func TestLogonIssuesShortLivedCert(t *testing.T) {
	nw, srv, addr, trust, _ := env(t)
	cred, err := Logon(nw.Host("laptop"), addr, "alice", pam.PasswordConv("s3cret"),
		LogonOptions{Trust: trust, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Username embedded in the DN (§IV.A) — the whole point of GCMU.
	if cred.DN() != "/O=Grid/OU=siteA/CN=alice" {
		t.Fatalf("issued DN %q", cred.DN())
	}
	if cred.DN().LastCN() != "alice" {
		t.Fatal("username not the final CN")
	}
	if cred.Key == nil {
		t.Fatal("client credential missing locally generated key")
	}
	// Short-lived: expires within the requested hour (+ slack).
	if time.Until(cred.Cert.NotAfter) > 2*time.Hour {
		t.Fatalf("certificate not short-lived: %v", cred.Cert.NotAfter)
	}
	// Verifies against the site trust store.
	if _, err := trust.Verify(cred.FullChain(), time.Now()); err != nil {
		t.Fatal(err)
	}
	// Usable as a proxy issuer (the client makes a proxy for sessions).
	proxy, err := gsi.NewProxy(cred, gsi.ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trust.Verify(proxy.FullChain(), time.Now()); err != nil {
		t.Fatal(err)
	}
	if srv.OnlineCA.Issued() != 1 {
		t.Fatalf("issued count %d", srv.OnlineCA.Issued())
	}
}

func TestLogonWrongPassword(t *testing.T) {
	nw, _, addr, trust, _ := env(t)
	_, err := Logon(nw.Host("laptop"), addr, "alice", pam.PasswordConv("wrong"),
		LogonOptions{Trust: trust})
	if err == nil || !strings.Contains(err.Error(), "authentication failure") {
		t.Fatalf("want authentication failure, got %v", err)
	}
}

func TestLogonUnknownUser(t *testing.T) {
	nw, _, addr, trust, _ := env(t)
	if _, err := Logon(nw.Host("laptop"), addr, "mallory", pam.PasswordConv("x"),
		LogonOptions{Trust: trust}); err == nil {
		t.Fatal("unknown user logon accepted")
	}
}

func TestLogonExcessiveLifetimeRefused(t *testing.T) {
	nw, _, addr, trust, _ := env(t)
	_, err := Logon(nw.Host("laptop"), addr, "alice", pam.PasswordConv("s3cret"),
		LogonOptions{Trust: trust, Lifetime: 1000 * time.Hour})
	if err == nil || !strings.Contains(err.Error(), "lifetime") {
		t.Fatalf("want lifetime error, got %v", err)
	}
}

func TestLogonBootstrapTrust(t *testing.T) {
	// -b mode: no trust store, accept the server cert on first use.
	nw, _, addr, _, _ := env(t)
	cred, err := Logon(nw.Host("laptop"), addr, "alice", pam.PasswordConv("s3cret"), LogonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cred.DN().LastCN() != "alice" {
		t.Fatalf("DN %q", cred.DN())
	}
}

func TestLogonWithOTPStack(t *testing.T) {
	// Swap the PAM stack for OTP: the prompt tunnels over the protocol.
	nw, srv, addr, trust, otp := env(t)
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	srv.OnlineCA.Auth = pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.OTPModule{Authority: otp}},
	)
	code, err := otp.NextCode("alice")
	if err != nil {
		t.Fatal(err)
	}
	var sawSecretPrompt bool
	conv := func(prompt string, echo bool) (string, error) {
		if echo {
			sawSecretPrompt = true
		}
		return code, nil
	}
	cred, err := Logon(nw.Host("laptop"), addr, "alice", conv, LogonOptions{Trust: trust})
	if err != nil {
		t.Fatal(err)
	}
	if !sawSecretPrompt {
		t.Fatal("OTP prompt metadata lost in tunneling")
	}
	if cred.DN().LastCN() != "alice" {
		t.Fatalf("DN %q", cred.DN())
	}
	// The code is single-use: a replayed logon must fail.
	if _, err := Logon(nw.Host("laptop"), addr, "alice", conv, LogonOptions{Trust: trust}); err == nil {
		t.Fatal("OTP replay logon accepted")
	}
}

func TestOnlineCADirect(t *testing.T) {
	signing, _ := gsi.NewCA("/O=x/CN=CA", time.Hour)
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "u"})
	dir := pam.NewLDAPDirectory("dc=x")
	dir.AddEntry("u", "pw")
	stack := pam.NewStack("svc", accounts, pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	online := ca.New(signing, stack, "/O=x")
	cred, err := online.Logon("u", pam.PasswordConv("pw"), pubkeyOf(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cred.DN() != "/O=x/CN=u" {
		t.Fatalf("DN %q", cred.DN())
	}
	if _, err := online.Logon("u", pam.PasswordConv("bad"), pubkeyOf(t), 0); err == nil {
		t.Fatal("bad password accepted")
	}
	if _, err := online.Logon("u", pam.PasswordConv("pw"), pubkeyOf(t), -time.Hour); err == nil {
		t.Fatal("negative lifetime accepted")
	}
}

func pubkeyOf(t *testing.T) interface{} {
	t.Helper()
	cred, err := gsi.SelfSignedCredential("/CN=tmp", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return &cred.Key.PublicKey
}
