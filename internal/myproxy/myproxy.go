// Package myproxy implements the MyProxy logon protocol ([20] in the
// paper): a TLS service through which a user exchanges site credentials
// (username/password, OTP, ...) for a short-lived X.509 certificate issued
// by the site's Online CA. The client generates its key pair locally and
// sends only the public key; the PAM conversation is tunneled over the
// session so challenge-response backends work end to end.
//
// Wire protocol (CRLF-free, one line per message, over TLS):
//
//	C: LOGON <username> <lifetime-seconds> [traceparent]
//	S: PROMPT <0|1> <text>        (repeated; 0 = secret prompt)
//	C: RESPONSE <text>
//	S: ERR <message>              (terminal)  |  S: OK
//	C: PUBKEY <base64 PKIX DER>
//	S: CERT <base64 PEM bundle>   (certificate + chain, no key)
package myproxy

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"encoding/base64"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"gridftp.dev/instant/internal/ca"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/pam"
)

// DefaultPort is the registered MyProxy port.
const DefaultPort = 7512

// Server serves MyProxy logons for one online CA.
type Server struct {
	// OnlineCA issues the certificates.
	OnlineCA *ca.OnlineCA
	// HostCred is the server's TLS identity.
	HostCred *gsi.Credential
	// Obs receives logon logs and metrics (nil disables).
	Obs *obs.Obs

	listener net.Listener
}

// ListenAndServe starts the server on host:port (0 auto-assigns).
func (s *Server) ListenAndServe(host *netsim.Host, port int) (net.Addr, error) {
	if s.OnlineCA == nil || s.HostCred == nil {
		return nil, errors.New("myproxy: server requires an online CA and host credential")
	}
	l, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	s.listener = l
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return l.Addr(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

func (s *Server) serve(raw net.Conn) {
	defer raw.Close()
	log := s.Obs.Logger().With("component", "myproxy", "remote", raw.RemoteAddr().String())
	reg := s.Obs.Registry()
	start := time.Now()
	tc := tls.Server(raw, gsi.ServerTLSConfigNoClientAuth(s.HostCred))
	raw.SetDeadline(time.Now().Add(time.Minute))
	if err := tc.Handshake(); err != nil {
		reg.Counter("myproxy.handshake_failures").Inc()
		log.Warn("handshake failed", "err", err)
		return
	}
	raw.SetDeadline(time.Time{})
	br := bufio.NewReader(tc)

	line, err := readLine(br)
	if err != nil {
		return
	}
	fields := strings.Fields(line)
	if (len(fields) != 3 && len(fields) != 4) || fields[0] != "LOGON" {
		fmt.Fprintf(tc, "ERR expected LOGON <user> <lifetime>\n")
		return
	}
	username := fields[1]
	seconds, err := strconv.Atoi(fields[2])
	if err != nil || seconds < 0 {
		fmt.Fprintf(tc, "ERR bad lifetime\n")
		return
	}
	// The optional fourth field carries the caller's traceparent. It is
	// best-effort telemetry: a malformed value degrades to a fresh local
	// trace rather than failing the logon.
	var sc obs.SpanContext
	if len(fields) == 4 {
		sc, _ = obs.Extract(fields[3])
	}
	span := s.Obs.Tracer().StartSpanContext("myproxy.logon", sc)
	span.SetAttr("user", username)
	defer span.End()

	// Tunnel the PAM conversation to the client.
	conv := func(prompt string, echo bool) (string, error) {
		e := "0"
		if echo {
			e = "1"
		}
		if _, err := fmt.Fprintf(tc, "PROMPT %s %s\n", e, strings.ReplaceAll(prompt, "\n", " ")); err != nil {
			return "", err
		}
		reply, err := readLine(br)
		if err != nil {
			return "", err
		}
		resp, ok := strings.CutPrefix(reply, "RESPONSE ")
		if !ok {
			return "", fmt.Errorf("myproxy: expected RESPONSE, got %q", reply)
		}
		return resp, nil
	}

	// Authenticate before accepting a key: run PAM through the online CA
	// by doing a two-phase issue — authenticate first so failures are
	// reported before the client sends its key.
	acct, err := s.OnlineCA.Auth.Authenticate(username, conv)
	if err != nil {
		reg.Counter("myproxy.logons_denied").Inc()
		span.SetError(err)
		log.Warn("logon denied", "user", username, "err", err)
		s.Obs.EventLog().Append(eventlog.AuthFailure,
			traceEventKV(span, "component", "myproxy", "user", username, "err", err.Error())...)
		fmt.Fprintf(tc, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		return
	}
	if _, err := fmt.Fprintf(tc, "OK\n"); err != nil {
		return
	}

	line, err = readLine(br)
	if err != nil {
		return
	}
	keyB64, ok := strings.CutPrefix(line, "PUBKEY ")
	if !ok {
		fmt.Fprintf(tc, "ERR expected PUBKEY\n")
		return
	}
	keyDER, err := base64.StdEncoding.DecodeString(keyB64)
	if err != nil {
		fmt.Fprintf(tc, "ERR bad key encoding\n")
		return
	}
	pub, err := x509.ParsePKIXPublicKey(keyDER)
	if err != nil {
		fmt.Fprintf(tc, "ERR unparsable public key\n")
		return
	}
	cred, err := s.OnlineCA.IssuePreauthed(acct.Name, pub, time.Duration(seconds)*time.Second)
	if err != nil {
		reg.Counter("myproxy.issue_failures").Inc()
		span.SetError(err)
		log.Warn("issue failed", "user", username, "err", err)
		fmt.Fprintf(tc, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		return
	}
	bundle, err := cred.EncodePEM()
	if err != nil {
		fmt.Fprintf(tc, "ERR encoding failure\n")
		return
	}
	fmt.Fprintf(tc, "CERT %s\n", base64.StdEncoding.EncodeToString(bundle))
	reg.Counter("myproxy.logons_total").Inc()
	reg.Histogram("myproxy.logon_seconds", obs.DefaultDurationBuckets).
		Observe(time.Since(start).Seconds())
	log.Info("logon issued", "user", username,
		"dn", string(cred.Identity()), "dur", time.Since(start).Round(time.Microsecond))
	s.Obs.EventLog().Append(eventlog.AuthSuccess,
		traceEventKV(span, "component", "myproxy", "user", username, "dn", string(cred.Identity()))...)
}

// traceEventKV appends the span's trace/span ids (when tracing is active)
// so MyProxy events cross-reference with the distributed trace.
func traceEventKV(span *obs.Span, kv ...any) []any {
	if span != nil {
		kv = append(kv, "trace", span.TraceID.String(), "span", span.SpanID.String())
	}
	return kv
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// LogonOptions configure a client logon.
type LogonOptions struct {
	// Lifetime requested for the certificate (server default if zero).
	Lifetime time.Duration
	// Trust validates the MyProxy server's certificate ("-b" bootstraps
	// trust on first use when nil — see Bootstrap).
	Trust *gsi.TrustStore
	// Trace, when valid, rides on the LOGON request so the server's logon
	// span joins the caller's distributed trace.
	Trace obs.SpanContext
}

// Logon is the myproxy-logon client: it authenticates to the server with
// the PAM conversation conv and returns a fresh short-lived credential
// whose private key was generated locally.
func Logon(host *netsim.Host, addr, username string, conv pam.Conversation, opts LogonOptions) (*gsi.Credential, error) {
	raw, err := host.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("myproxy: dial %s: %w", addr, err)
	}
	defer raw.Close()

	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if opts.Trust != nil {
		cfg = gsi.ClientTLSConfig(nil, opts.Trust)
	} else {
		// -b / bootstrap mode: accept the server's certificate on first
		// use (the GCMU client install does this, then pins the CA).
		cfg.InsecureSkipVerify = true
	}
	tc := tls.Client(raw, cfg)
	raw.SetDeadline(time.Now().Add(time.Minute))
	if err := tc.Handshake(); err != nil {
		return nil, fmt.Errorf("myproxy: handshake: %w", err)
	}
	raw.SetDeadline(time.Time{})
	br := bufio.NewReader(tc)

	req := fmt.Sprintf("LOGON %s %d", username, int(opts.Lifetime/time.Second))
	if opts.Trace.Valid() {
		req += " " + obs.Inject(opts.Trace)
	}
	if _, err := fmt.Fprintf(tc, "%s\n", req); err != nil {
		return nil, err
	}
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("myproxy: %w", err)
		}
		switch {
		case strings.HasPrefix(line, "PROMPT "):
			rest := strings.TrimPrefix(line, "PROMPT ")
			echoStr, prompt, _ := strings.Cut(rest, " ")
			resp, err := conv(prompt, echoStr == "1")
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Fprintf(tc, "RESPONSE %s\n", resp); err != nil {
				return nil, err
			}
		case line == "OK":
			return finishLogon(tc, br)
		case strings.HasPrefix(line, "ERR "):
			return nil, fmt.Errorf("myproxy: %s", strings.TrimPrefix(line, "ERR "))
		default:
			return nil, fmt.Errorf("myproxy: unexpected server message %q", line)
		}
	}
}

func finishLogon(tc *tls.Conn, br *bufio.Reader) (*gsi.Credential, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	pubDER, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(tc, "PUBKEY %s\n", base64.StdEncoding.EncodeToString(pubDER)); err != nil {
		return nil, err
	}
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(line, "ERR ") {
		return nil, fmt.Errorf("myproxy: %s", strings.TrimPrefix(line, "ERR "))
	}
	certB64, ok := strings.CutPrefix(line, "CERT ")
	if !ok {
		return nil, fmt.Errorf("myproxy: unexpected server message %q", line)
	}
	bundle, err := base64.StdEncoding.DecodeString(certB64)
	if err != nil {
		return nil, err
	}
	cred, err := gsi.DecodePEM(bundle)
	if err != nil {
		return nil, err
	}
	cred.Key = key
	return cred, nil
}
