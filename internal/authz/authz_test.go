package authz

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/pam"
)

func identity(t *testing.T, caDN, subject gsi.DN) (*gsi.VerifiedIdentity, *gsi.CA) {
	t.Helper()
	ca, err := gsi.NewCA(caDN, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.Issue(gsi.IssueOptions{Subject: subject, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore()
	trust.AddCA(ca.Certificate())
	id, err := trust.Verify(cred.FullChain(), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return id, ca
}

func TestGridmapMapping(t *testing.T) {
	id, _ := identity(t, "/O=Grid/CN=CA", "/O=Grid/CN=alice smith")
	g := NewGridmap()
	g.AddEntry("/O=Grid/CN=alice smith", "asmith")
	user, err := g.Map(id)
	if err != nil || user != "asmith" {
		t.Fatalf("map: %q %v", user, err)
	}
	g.RemoveEntry("/O=Grid/CN=alice smith")
	if _, err := g.Map(id); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("after removal: %v", err)
	}
}

func TestGridmapProxyIdentityMapping(t *testing.T) {
	// Gridmaps map the base identity, not the proxy subject.
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", time.Hour)
	user, _ := ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/CN=bob", Lifetime: time.Hour})
	proxy, _ := gsi.NewProxy(user, gsi.ProxyOptions{})
	trust := gsi.NewTrustStore()
	trust.AddCA(ca.Certificate())
	id, err := trust.Verify(proxy.FullChain(), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	g := NewGridmap()
	g.AddEntry("/O=Grid/CN=bob", "bob")
	if u, err := g.Map(id); err != nil || u != "bob" {
		t.Fatalf("proxy map: %q %v", u, err)
	}
}

func TestGridmapParseFormat(t *testing.T) {
	text := `# comment
"/O=Grid/CN=alice" alice
"/O=Grid/OU=x/CN=bob jones" bjones
`
	g, err := ParseGridmap(text)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("entries %d", g.Len())
	}
	// Round trip.
	g2, err := ParseGridmap(g.Format())
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != 2 {
		t.Fatalf("round trip entries %d", g2.Len())
	}
	if !strings.Contains(g.Format(), `"/O=Grid/CN=alice" alice`) {
		t.Fatalf("format: %s", g.Format())
	}
}

func TestGridmapParseErrors(t *testing.T) {
	for _, bad := range []string{
		`/O=Grid/CN=x user`,  // unquoted DN
		`"/O=Grid/CN=x user`, // unterminated
		`"/O=Grid/CN=x"`,     // missing user
		`"/O=Grid/CN=x" a b`, // user with spaces
		`"not-a-dn" user`,    // invalid DN
	} {
		if _, err := ParseGridmap(bad); err == nil {
			t.Errorf("ParseGridmap(%q) should fail", bad)
		}
	}
}

func TestGCMUCalloutParsesUsernameFromDN(t *testing.T) {
	id, ca := identity(t, "/O=GCMU/OU=siteA/CN=CA", "/O=GCMU/OU=siteA/CN=alice")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	co := &GCMUCallout{LocalCA: ca.DN(), Accounts: accounts}
	user, err := co.Map(id)
	if err != nil || user != "alice" {
		t.Fatalf("map: %q %v", user, err)
	}
}

func TestGCMUCalloutRejectsForeignIssuer(t *testing.T) {
	id, _ := identity(t, "/O=Other/CN=CA", "/O=Other/CN=alice")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	co := &GCMUCallout{LocalCA: "/O=GCMU/OU=siteA/CN=CA", Accounts: accounts}
	if _, err := co.Map(id); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("foreign issuer: %v", err)
	}
}

func TestGCMUCalloutRejectsUnknownAccount(t *testing.T) {
	id, ca := identity(t, "/O=GCMU/OU=siteA/CN=CA", "/O=GCMU/OU=siteA/CN=ghost")
	co := &GCMUCallout{LocalCA: ca.DN(), Accounts: pam.NewAccountDB()}
	if _, err := co.Map(id); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("unknown account: %v", err)
	}
}

func TestChainFallsThrough(t *testing.T) {
	id, ca := identity(t, "/O=Grid/CN=Legacy CA", "/O=Grid/CN=carol")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "carol"})
	gcmuCo := &GCMUCallout{LocalCA: "/O=GCMU/OU=siteA/CN=CA", Accounts: accounts}
	gm := NewGridmap()
	gm.AddEntry("/O=Grid/CN=carol", "carol")
	chain := Chain{gcmuCo, gm}
	user, err := chain.Map(id)
	if err != nil || user != "carol" {
		t.Fatalf("chain: %q %v", user, err)
	}
	if !strings.Contains(chain.Name(), "gcmu-authz") || !strings.Contains(chain.Name(), "gridmap") {
		t.Fatalf("chain name %q", chain.Name())
	}
	_ = ca
	// Empty chain fails closed.
	if _, err := (Chain{}).Map(id); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("empty chain: %v", err)
	}
	// Chain with no matching callout reports all reasons.
	gm.RemoveEntry("/O=Grid/CN=carol")
	if _, err := chain.Map(id); err == nil || !strings.Contains(err.Error(), "gridmap") {
		t.Fatalf("chain failure detail: %v", err)
	}
}
