// Package authz implements GridFTP authorization callouts: the dynamically
// linked hook that maps an authenticated Grid identity to the local user
// id the request executes as (§II.C of the paper). Two callouts are
// provided — the conventional gridmap file, and the GCMU callout that
// parses the username out of certificates issued by the site's own MyProxy
// Online CA, eliminating the gridmap entirely (§IV.C).
package authz

import (
	"bufio"
	"errors"
	"fmt"
	"strings"
	"sync"

	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/pam"
)

// ErrNoMapping is returned when no local account can be determined.
var ErrNoMapping = errors.New("authz: no local mapping for identity")

// Callout maps a verified Grid identity to a local username.
type Callout interface {
	// Name identifies the callout in logs and errors.
	Name() string
	// Map returns the local username for the identity.
	Map(id *gsi.VerifiedIdentity) (string, error)
}

// --- Gridmap ---

// Gridmap is the conventional DN-to-username mapping file, "a frequent
// source of errors and complaints" per the paper (§IV.C). It is kept here
// both as the legacy path and as the baseline for the setup-complexity
// experiment.
type Gridmap struct {
	mu      sync.RWMutex
	entries map[gsi.DN]string
}

// NewGridmap returns an empty gridmap.
func NewGridmap() *Gridmap {
	return &Gridmap{entries: make(map[gsi.DN]string)}
}

// ParseGridmap parses the classic format: one `"<DN>" <username>` pair per
// line, '#' comments.
func ParseGridmap(data string) (*Gridmap, error) {
	g := NewGridmap()
	sc := bufio.NewScanner(strings.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, `"`) {
			return nil, fmt.Errorf("authz: gridmap line %d: DN must be quoted", lineNo)
		}
		end := strings.Index(line[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("authz: gridmap line %d: unterminated DN", lineNo)
		}
		dn := gsi.DN(line[1 : 1+end])
		user := strings.TrimSpace(line[end+2:])
		if user == "" || strings.ContainsAny(user, " \t") {
			return nil, fmt.Errorf("authz: gridmap line %d: bad username %q", lineNo, user)
		}
		if !dn.Valid() {
			return nil, fmt.Errorf("authz: gridmap line %d: bad DN %q", lineNo, dn)
		}
		g.entries[dn] = user
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// Format renders the gridmap in its file format, sorted for stability.
func (g *Gridmap) Format() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	dns := make([]string, 0, len(g.entries))
	for dn := range g.entries {
		dns = append(dns, string(dn))
	}
	sortStrings(dns)
	var b strings.Builder
	for _, dn := range dns {
		fmt.Fprintf(&b, "%q %s\n", dn, g.entries[gsi.DN(dn)])
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// AddEntry maps a DN to a username.
func (g *Gridmap) AddEntry(dn gsi.DN, user string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries[dn] = user
}

// RemoveEntry deletes a mapping.
func (g *Gridmap) RemoveEntry(dn gsi.DN) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.entries, dn)
}

// Len returns the number of entries.
func (g *Gridmap) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// Name implements Callout.
func (g *Gridmap) Name() string { return "gridmap" }

// Map implements Callout by exact identity-DN lookup.
func (g *Gridmap) Map(id *gsi.VerifiedIdentity) (string, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	user, ok := g.entries[id.Identity]
	if !ok {
		return "", fmt.Errorf("%w: %q not in gridmap", ErrNoMapping, id.Identity)
	}
	return user, nil
}

// --- GCMU callout ---

// GCMUCallout is the paper's custom authorization callout (§IV.C): when
// the certificate was issued by the site's own MyProxy Online CA, the
// local username is parsed directly out of the certificate subject's
// final CN — no gridmap needed.
type GCMUCallout struct {
	// LocalCA is the DN of the site's MyProxy Online CA.
	LocalCA gsi.DN
	// Accounts validates that the parsed username is a real local account.
	Accounts *pam.AccountDB
}

// Name implements Callout.
func (c *GCMUCallout) Name() string { return "gcmu-authz" }

// Map implements Callout.
func (c *GCMUCallout) Map(id *gsi.VerifiedIdentity) (string, error) {
	if id.IssuerCA != c.LocalCA {
		return "", fmt.Errorf("%w: issuer %q is not the local MyProxy Online CA", ErrNoMapping, id.IssuerCA)
	}
	user := id.Identity.LastCN()
	if user == "" {
		return "", fmt.Errorf("%w: certificate subject %q has no CN", ErrNoMapping, id.Identity)
	}
	if c.Accounts != nil {
		if _, err := c.Accounts.Lookup(user); err != nil {
			return "", fmt.Errorf("%w: %q parsed from DN but not a local account", ErrNoMapping, user)
		}
	}
	return user, nil
}

// --- Chain ---

// Chain tries callouts in order, returning the first successful mapping.
// GCMU installs [GCMUCallout, Gridmap] so legacy DN mappings still work.
type Chain []Callout

// Name implements Callout.
func (c Chain) Name() string {
	names := make([]string, len(c))
	for i, co := range c {
		names[i] = co.Name()
	}
	return "chain(" + strings.Join(names, ",") + ")"
}

// Map implements Callout.
func (c Chain) Map(id *gsi.VerifiedIdentity) (string, error) {
	if len(c) == 0 {
		return "", fmt.Errorf("%w: no callouts configured", ErrNoMapping)
	}
	var errs []string
	for _, co := range c {
		user, err := co.Map(id)
		if err == nil {
			return user, nil
		}
		errs = append(errs, co.Name()+": "+err.Error())
	}
	return "", fmt.Errorf("%w (%s)", ErrNoMapping, strings.Join(errs, "; "))
}
