// Package obs is the observability core of the Instant GridFTP
// reproduction: a leveled structured logger, a concurrency-safe metrics
// registry (counters, gauges, histograms), and lightweight spans for
// tracing a transfer across its phases (MyProxy activation, control
// channel, data channel, hosted-service retry).
//
// The package is stdlib-only by design. Every other layer — the GridFTP
// protocol engine, the hosted transfer service, the network simulator,
// GCMU packaging, MyProxy — accepts an *Obs and reports into it; the
// paper's hosted service (§VI) monitors transfers via markers, and this
// layer is the measurement substrate those markers (and all perf work)
// feed into.
package obs

import (
	"io"
	"os"
	"strings"

	"gridftp.dev/instant/internal/obs/eventlog"
)

// Obs bundles the observability facilities a component needs. A nil *Obs
// is valid everywhere: all methods degrade to no-ops, so call sites never
// have to guard.
type Obs struct {
	Log     *Logger
	Metrics *Registry
	Trace   *Tracer
	// Events is the bounded structured lifecycle/audit event ring
	// (session open/close, auth outcomes, transfer progress); the admin
	// plane serves it at /debug/events.
	Events *eventlog.Log
	// Series, when set, receives explicit timestamped observations (the
	// time-series flight recorder, internal/obs/tsdb). Nil discards them;
	// use TimeSeries() at call sites.
	Series SeriesSink
	// Profile, when set, is the always-on continuous profiler
	// (internal/obs/profile). Nil degrades to a no-op; use Profiler() at
	// call sites.
	Profile ContinuousProfiler
}

// New returns a fully wired Obs: logger writing to w at the given level,
// a fresh metrics registry (carrying the process.* identity gauges), a
// fresh tracer, and a fresh event log.
func New(w io.Writer, level Level) *Obs {
	o := &Obs{
		Log:     NewLogger(w, level),
		Metrics: NewRegistry(),
		Trace:   NewTracer(),
		Events:  eventlog.New(eventlog.DefaultCapacity),
	}
	registerProcessMetrics(o.Metrics)
	registerRuntimeMetrics(o.Metrics)
	return o
}

// Nop returns an Obs that records metrics, spans, and events but writes
// no log output — the default for tests that only assert on telemetry.
func Nop() *Obs {
	o := &Obs{
		Log:     NewLogger(io.Discard, LevelError),
		Metrics: NewRegistry(),
		Trace:   NewTracer(),
		Events:  eventlog.New(eventlog.DefaultCapacity),
	}
	registerProcessMetrics(o.Metrics)
	registerRuntimeMetrics(o.Metrics)
	return o
}

// FromEnv builds an Obs honoring the OBS_LOG_LEVEL environment variable
// (debug|info|warn|error; anything else silences logging). Logs go to
// stderr.
func FromEnv() *Obs {
	lvl, ok := ParseLevel(os.Getenv("OBS_LOG_LEVEL"))
	if !ok {
		return Nop()
	}
	return New(os.Stderr, lvl)
}

// Logger returns the bundle's logger, or a silent one when o is nil or
// has no logger.
func (o *Obs) Logger() *Logger {
	if o == nil || o.Log == nil {
		return nopLogger
	}
	return o.Log
}

// Registry returns the bundle's metrics registry, or a discard registry
// when o is nil or has no registry. The discard registry is real (it
// accumulates), just unreachable — which keeps call sites branch-free.
func (o *Obs) Registry() *Registry {
	if o == nil || o.Metrics == nil {
		return discardRegistry
	}
	return o.Metrics
}

// Tracer returns the bundle's tracer, or a discard tracer when o is nil.
func (o *Obs) Tracer() *Tracer {
	if o == nil || o.Trace == nil {
		return discardTracer
	}
	return o.Trace
}

// EventLog returns the bundle's event log, or a discard log when o is nil
// or has no event log. Like the discard registry, the discard log is real
// (and bounded), just unreachable — call sites stay branch-free.
func (o *Obs) EventLog() *eventlog.Log {
	if o == nil || o.Events == nil {
		return discardEvents
	}
	return o.Events
}

// DebugSnapshot renders the current metrics and finished spans as one
// human-readable text block — the "dump everything" surface behind the
// binaries' -metrics flag.
func (o *Obs) DebugSnapshot() string {
	var b strings.Builder
	b.WriteString("# metrics\n")
	o.Registry().WriteMetrics(&b)
	b.WriteString("# spans\n")
	b.WriteString(o.Tracer().TreeString())
	return b.String()
}

var (
	nopLogger       = NewLogger(io.Discard, LevelError+1)
	discardRegistry = NewRegistry()
	discardTracer   = NewTracer()
	discardEvents   = eventlog.New(64)
)
