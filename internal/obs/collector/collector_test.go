package collector

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// threeProcessTrace simulates the hosted third-party scenario in-memory:
// a service tracer owns the task span tree, and two server tracers join
// the task's trace via propagated span context (what SITE TRACE does on
// the wire). Returns the collector exports and the task's trace id.
func threeProcessTrace(t *testing.T) (svc, src, dst []Span, traceID string) {
	t.Helper()
	svcTr := obs.NewTracer()
	task := svcTr.StartSpan("task")
	act := task.Child("activate")
	act.End()
	ctl := task.Child("control")
	ctl.End()

	srcTr := obs.NewTracer()
	retr := srcTr.StartSpanContext("gridftp.retr", task.Context())
	retr.End()
	dstTr := obs.NewTracer()
	stor := dstTr.StartSpanContext("gridftp.stor", task.Context())
	stor.End()

	data := task.Child("data")
	data.End()
	task.End()

	return FromInfos("transfer-service", svcTr.Spans()),
		FromInfos("gridftp-src", srcTr.Spans()),
		FromInfos("gridftp-dst", dstTr.Spans()),
		task.TraceID.String()
}

func TestStitchThreeProcesses(t *testing.T) {
	svc, src, dst, traceID := threeProcessTrace(t)
	c := New()
	c.Add(svc...)
	c.Add(src...)
	c.Add(dst...)

	ids := c.TraceIDs()
	if len(ids) != 1 || ids[0] != traceID {
		t.Fatalf("TraceIDs() = %v, want [%s]", ids, traceID)
	}
	tr := c.Stitch(traceID)
	if tr == nil {
		t.Fatal("Stitch returned nil")
	}
	if !tr.Connected() {
		t.Fatalf("trace not connected: %d roots, %d orphans\n%s",
			len(tr.Roots), len(tr.Orphans), tr.Timeline())
	}
	if len(tr.Spans) != 6 {
		t.Fatalf("%d spans, want 6", len(tr.Spans))
	}
	root := tr.Roots[0]
	if root.Name != "task" || root.Process != "transfer-service" {
		t.Fatalf("root = %s@%s, want task@transfer-service", root.Name, root.Process)
	}
	// Every non-root span must link (transitively) back to the root.
	names := map[string]string{}
	for _, s := range tr.Spans {
		names[s.SpanID] = s.Name
	}
	for _, s := range tr.Spans {
		if s.SpanID == root.SpanID {
			continue
		}
		if _, ok := names[s.ParentSpanID]; !ok {
			t.Errorf("span %s has dangling parent %s", s.Name, s.ParentSpanID)
		}
	}
	// The remote server spans are children of the task span.
	for _, want := range []string{"gridftp.retr", "gridftp.stor"} {
		found := false
		for _, ch := range tr.Children(root.SpanID) {
			if ch.Name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not stitched under the task span", want)
		}
	}

	cp := tr.CriticalPath()
	if len(cp) == 0 || cp[0].Name != "task" {
		t.Fatalf("critical path %v should start at the task root", cp)
	}
	tl := tr.Timeline()
	for _, want := range []string{"transfer-service", "gridftp-src", "gridftp-dst", "task", "*"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	if strings.Contains(tl, "DISCONNECTED") {
		t.Errorf("connected trace rendered as disconnected:\n%s", tl)
	}
}

// TestStitchMissingProcess drops one process's export (the service's) and
// checks the collector flags the damage instead of pretending the trace
// is whole.
func TestStitchMissingProcess(t *testing.T) {
	_, src, dst, traceID := threeProcessTrace(t)
	c := New()
	c.Add(src...)
	c.Add(dst...)

	tr := c.Stitch(traceID)
	if tr == nil {
		t.Fatal("Stitch returned nil")
	}
	if tr.Connected() {
		t.Fatal("trace with a missing process must not be connected")
	}
	if len(tr.Roots) != 0 {
		t.Errorf("%d roots, want 0 (the root lived in the missing process)", len(tr.Roots))
	}
	if len(tr.Orphans) != 2 {
		t.Errorf("%d orphans, want 2 (retr and stor lost their parent)", len(tr.Orphans))
	}
	tl := tr.Timeline()
	if !strings.Contains(tl, "DISCONNECTED") {
		t.Errorf("timeline should flag the disconnect:\n%s", tl)
	}
	if !strings.Contains(tl, "orphan") {
		t.Errorf("timeline should mark orphans:\n%s", tl)
	}
}

// mk builds a synthetic span with millisecond offsets from a fixed epoch.
func mk(trace, id, parent, process, name string, startMS, endMS int) Span {
	epoch := time.Unix(1700000000, 0)
	return Span{
		TraceID: trace, SpanID: id, ParentSpanID: parent,
		Process: process, Name: name,
		Start: epoch.Add(time.Duration(startMS) * time.Millisecond),
		End:   epoch.Add(time.Duration(endMS) * time.Millisecond),
	}
}

func TestCriticalPathPicksLatestEndingChain(t *testing.T) {
	c := New()
	c.Add(
		mk("t1", "a", "", "p1", "root", 0, 100),
		mk("t1", "b", "a", "p1", "fast", 0, 20),
		mk("t1", "c", "a", "p2", "slow", 10, 90),
		mk("t1", "d", "c", "p2", "inner", 20, 85),
	)
	tr := c.Stitch("t1")
	cp := tr.CriticalPath()
	var names []string
	for _, s := range cp {
		names = append(names, s.Name)
	}
	want := "root/slow/inner"
	if got := strings.Join(names, "/"); got != want {
		t.Fatalf("critical path %s, want %s", got, want)
	}
}

func TestGapsFindUncoveredTime(t *testing.T) {
	c := New()
	c.Add(
		mk("t2", "a", "", "p1", "phase1", 0, 30),
		mk("t2", "b", "a", "p2", "phase2", 60, 100),
	)
	tr := c.Stitch("t2")
	gaps := tr.Gaps()
	if len(gaps) != 1 {
		t.Fatalf("%d gaps, want 1: %v", len(gaps), gaps)
	}
	if d := gaps[0].Duration(); d != 30*time.Millisecond {
		t.Errorf("gap duration %v, want 30ms", d)
	}
	if !strings.Contains(tr.Timeline(), "gaps") {
		t.Errorf("timeline should list the gap:\n%s", tr.Timeline())
	}

	// A root covering the whole extent means no blind spots.
	c2 := New()
	c2.Add(
		mk("t3", "a", "", "p1", "root", 0, 100),
		mk("t3", "b", "a", "p1", "early", 0, 30),
		mk("t3", "c", "a", "p1", "late", 60, 100),
	)
	if gaps := c2.Stitch("t3").Gaps(); len(gaps) != 0 {
		t.Errorf("covered trace reports gaps: %v", gaps)
	}
}

func TestHTTPPushAndStitch(t *testing.T) {
	c := New()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	svc, src, dst, traceID := threeProcessTrace(t)
	for _, export := range [][]Span{svc, src, dst} {
		infos := export // Push takes obs.SpanInfo; re-marshal via payload instead
		body, _ := json.Marshal(pushPayload{Spans: infos})
		resp, err := http.Post(ts.URL+"/v1/spans", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("push: %s", resp.Status)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	if err := json.NewDecoder(resp.Body).Decode(&ids); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ids) != 1 || ids[0] != traceID {
		t.Fatalf("/v1/traces = %v, want [%s]", ids, traceID)
	}

	resp, err = http.Get(ts.URL + "/v1/trace?id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Connected bool   `json:"connected"`
		Spans     []Span `json:"spans"`
		Timeline  string `json:"timeline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !out.Connected || len(out.Spans) != 6 {
		t.Fatalf("stitched over HTTP: connected=%v spans=%d", out.Connected, len(out.Spans))
	}
	if out.Timeline == "" {
		t.Error("empty timeline in /v1/trace response")
	}

	// Unknown id is a 404, bad method a 405.
	if resp, _ := http.Get(ts.URL + "/v1/trace?id=nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: %s", resp.Status)
	}
	if resp, _ := http.Get(ts.URL + "/v1/spans"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/spans: %s", resp.Status)
	}
}

func TestPushHelper(t *testing.T) {
	c := New()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	tr := obs.NewTracer()
	root := tr.StartSpan("work")
	root.Child("step").End()
	root.End()
	open := tr.StartSpan("still-open") // must be skipped by the export
	_ = open

	if err := Push(ts.URL+"/v1/spans", "testproc", tr.Spans()); err != nil {
		t.Fatal(err)
	}
	got := c.Stitch(root.TraceID.String())
	if got == nil || len(got.Spans) != 2 {
		t.Fatalf("pushed trace has %v", got)
	}
	for _, s := range got.Spans {
		if s.Process != "testproc" {
			t.Errorf("span %s process %q, want testproc", s.Name, s.Process)
		}
	}
}

// TestParseExportAdminShape feeds the collector the nested tree the admin
// plane's /debug/spans serves (duration_ms + ended + children) and checks
// it flattens into the same span model.
func TestParseExportAdminShape(t *testing.T) {
	epoch := time.Unix(1700000000, 0).UTC()
	doc := map[string]any{
		"spans": []any{
			map[string]any{
				"id": 1, "name": "task",
				"trace_id":    "0123456789abcdef0123456789abcdef",
				"span_id":     "0123456789abcdef",
				"start":       epoch.Format(time.RFC3339Nano),
				"duration_ms": 50.0, "ended": true,
				"children": []any{
					map[string]any{
						"id": 2, "name": "data",
						"trace_id":       "0123456789abcdef0123456789abcdef",
						"span_id":        "aaaabbbbccccdddd",
						"parent_span_id": "0123456789abcdef",
						"start":          epoch.Add(10 * time.Millisecond).Format(time.RFC3339Nano),
						"duration_ms":    30.0, "ended": true,
					},
					map[string]any{
						"id": 3, "name": "open-span",
						"trace_id": "0123456789abcdef0123456789abcdef",
						"span_id":  "eeeeffff00001111",
						"start":    epoch.Format(time.RFC3339Nano),
						"ended":    false,
					},
				},
			},
		},
	}
	data, _ := json.Marshal(doc)
	spans, err := ParseExport(data, "scraped-proc")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("%d spans parsed, want 2 (open span skipped): %v", len(spans), spans)
	}
	if spans[0].Process != "scraped-proc" {
		t.Errorf("default process not applied: %q", spans[0].Process)
	}
	if got := spans[0].End.Sub(spans[0].Start); got != 50*time.Millisecond {
		t.Errorf("End reconstructed from duration_ms: got %v, want 50ms", got)
	}
	if spans[1].ParentSpanID != "0123456789abcdef" {
		t.Errorf("nested parent link lost: %q", spans[1].ParentSpanID)
	}

	c := New()
	c.Add(spans...)
	if tr := c.Stitch("0123456789abcdef0123456789abcdef"); !tr.Connected() {
		t.Error("admin-shaped export did not stitch into a connected trace")
	}
}

func TestIdempotentIngest(t *testing.T) {
	// A retried POST /v1/spans (or an exporter re-pushing its whole
	// snapshot) must not duplicate spans in the stitched trace.
	svc, src, dst, traceID := threeProcessTrace(t)
	c := New()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	push := func(export []Span) {
		t.Helper()
		body, _ := json.Marshal(pushPayload{Spans: export})
		resp, err := http.Post(ts.URL+"/v1/spans", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("push: %s", resp.Status)
		}
	}
	for _, export := range [][]Span{svc, src, dst} {
		push(export)
	}
	want := c.SpanCount(traceID)
	if want != 6 {
		t.Fatalf("SpanCount = %d, want 6", want)
	}

	// Re-push every export twice more: span count and stitch must not move.
	for i := 0; i < 2; i++ {
		for _, export := range [][]Span{svc, src, dst} {
			push(export)
		}
	}
	if got := c.SpanCount(traceID); got != want {
		t.Fatalf("SpanCount after re-push = %d, want %d", got, want)
	}
	tr := c.Stitch(traceID)
	if !tr.Connected() || len(tr.Spans) != want || len(tr.Roots) != 1 {
		t.Fatalf("stitch after re-push: connected=%v spans=%d roots=%d",
			tr.Connected(), len(tr.Spans), len(tr.Roots))
	}

	// The resolution endpoint sees the trace; an unknown id resolves false.
	var has struct {
		Found bool `json:"found"`
		Spans int  `json:"spans"`
	}
	resp, err := http.Get(ts.URL + "/v1/has?id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&has); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !has.Found || has.Spans != want {
		t.Fatalf("/v1/has = %+v, want found with %d spans", has, want)
	}
	if !c.HasTrace(traceID) || c.HasTrace("feedfacefeedfacefeedfacefeedface") {
		t.Error("HasTrace misresolves")
	}
}
