package collector

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// pushPayload is the body of a POST /v1/spans: the exporting process's
// name plus its completed spans. Span.Process, when empty, defaults to
// the payload-level name so exporters need not repeat it per span.
type pushPayload struct {
	Process string `json:"process"`
	Spans   []Span `json:"spans"`
}

// Handler returns the collector's HTTP plane:
//
//	POST /v1/spans      ingest a span export ({"process": ..., "spans": [...]})
//	GET  /v1/traces     list known trace ids (JSON array)
//	GET  /v1/has?id=    exemplar→trace resolution: {"found": bool, "spans": n}
//	GET  /v1/trace?id=  one stitched trace: spans, roots, orphans,
//	                    critical path, gaps, and the rendered timeline
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/spans", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spans, err := ParseExport(body, "")
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.Add(spans...)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/traces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.TraceIDs())
	})
	mux.HandleFunc("/v1/has", func(w http.ResponseWriter, r *http.Request) {
		// Lightweight exemplar→trace resolution: a fleet dashboard holding
		// an exemplar trace id asks whether the collector can expand it
		// before linking, without paying for a full stitch.
		id := r.URL.Query().Get("id")
		writeJSON(w, map[string]any{
			"id": id, "found": c.HasTrace(id), "spans": c.SpanCount(id),
		})
	})
	mux.HandleFunc("/v1/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		t := c.Stitch(id)
		if t == nil {
			http.Error(w, "unknown trace id", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"id":            t.ID,
			"connected":     t.Connected(),
			"spans":         t.Spans,
			"roots":         t.Roots,
			"orphans":       t.Orphans,
			"critical_path": t.CriticalPath(),
			"gaps":          t.Gaps(),
			"timeline":      t.Timeline(),
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Push exports a tracer snapshot to a collector's /v1/spans endpoint.
// It is best-effort by design — daemons call it on shutdown — so the
// caller decides whether a failure is worth logging.
func Push(url, process string, infos []obs.SpanInfo) error {
	spans := FromInfos(process, infos)
	body, err := json.Marshal(pushPayload{Process: process, Spans: spans})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("collector: push to %s: %w", url, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("collector: push to %s: %s", url, resp.Status)
	}
	return nil
}

// exportNode is the tolerant union of the two span export shapes: the
// collector's flat push payload (start/end timestamps) and the admin
// plane's nested /debug/spans tree (duration_ms + ended + children).
type exportNode struct {
	TraceID      string            `json:"trace_id"`
	SpanID       string            `json:"span_id"`
	ParentSpanID string            `json:"parent_span_id"`
	Process      string            `json:"process"`
	Name         string            `json:"name"`
	Start        time.Time         `json:"start"`
	End          time.Time         `json:"end"`
	DurationMS   float64           `json:"duration_ms"`
	Ended        bool              `json:"ended"`
	Attrs        map[string]string `json:"attrs"`
	Err          string            `json:"err"`
	Children     []exportNode      `json:"children"`
}

// ParseExport decodes a span export in either supported shape — a push
// payload or an admin /debug/spans snapshot — into flat spans. Spans
// without trace identity or without an end (still open, or from a build
// predating trace context) are skipped, not errors: scraping a live
// process must not fail because some spans are in flight. defaultProcess
// labels spans that carry no process name of their own.
func ParseExport(data []byte, defaultProcess string) ([]Span, error) {
	var payload struct {
		Process string       `json:"process"`
		Spans   []exportNode `json:"spans"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, fmt.Errorf("collector: bad span export: %w", err)
	}
	fallback := payload.Process
	if fallback == "" {
		fallback = defaultProcess
	}
	var out []Span
	var walk func(n exportNode)
	walk = func(n exportNode) {
		end := n.End
		if end.IsZero() && n.Ended {
			end = n.Start.Add(time.Duration(n.DurationMS * float64(time.Millisecond)))
		}
		if n.TraceID != "" && n.SpanID != "" && !end.IsZero() {
			proc := n.Process
			if proc == "" {
				proc = fallback
			}
			out = append(out, Span{
				TraceID:      n.TraceID,
				SpanID:       n.SpanID,
				ParentSpanID: n.ParentSpanID,
				Process:      proc,
				Name:         n.Name,
				Start:        n.Start,
				End:          end,
				Attrs:        n.Attrs,
				Err:          n.Err,
			})
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, n := range payload.Spans {
		walk(n)
	}
	return out, nil
}
