// Package collector stitches span exports from multiple processes into
// distributed traces. Each process exports its completed spans as JSON
// (pushed to a collector URL, or scraped from the admin plane's
// /debug/spans); the collector groups them by trace id, reconnects
// parent/child links across process boundaries, computes the critical
// path, and flags gaps — time inside the trace covered by no span, which
// is where un-instrumented work (or queueing) hides.
//
// The wire model is deliberately flat: a span is complete when exported
// (it has both start and end), identity is the lowercase-hex trace/span
// ids from internal/obs, and the process name is carried per span so one
// collector can hold exports from many daemons.
package collector

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// Span is one completed span as exported by a process.
type Span struct {
	TraceID      string            `json:"trace_id"`
	SpanID       string            `json:"span_id"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Process      string            `json:"process"`
	Name         string            `json:"name"`
	Start        time.Time         `json:"start"`
	End          time.Time         `json:"end"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Err          string            `json:"err,omitempty"`
}

// Duration returns the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// FromInfos converts a tracer snapshot into exportable spans, labeling
// each with the process name. Open spans and spans without a trace id
// (from tracers predating trace-context support) are skipped: the
// collector only stitches completed work.
func FromInfos(process string, infos []obs.SpanInfo) []Span {
	out := make([]Span, 0, len(infos))
	for _, si := range infos {
		if !si.Ended || si.TraceID == "" || si.SpanID == "" {
			continue
		}
		out = append(out, Span{
			TraceID:      si.TraceID,
			SpanID:       si.SpanID,
			ParentSpanID: si.ParentSpanID,
			Process:      process,
			Name:         si.Name,
			Start:        si.Start,
			End:          si.Start.Add(si.Duration),
			Attrs:        si.Attrs,
			Err:          si.Err,
		})
	}
	return out
}

// Collector accumulates spans from any number of processes.
type Collector struct {
	mu     sync.Mutex
	traces map[string][]Span
	// seen indexes ingested (trace id, span id) pairs so a retried
	// export is idempotent: the exporter side pushes periodically and on
	// network errors re-sends whole snapshots, and duplicated spans would
	// corrupt stitched traces (double roots, inflated critical paths).
	seen map[string]map[string]bool
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		traces: make(map[string][]Span),
		seen:   make(map[string]map[string]bool),
	}
}

// Add ingests spans, grouping them by trace id. Spans without identity
// or without an end time are dropped (the export side should already
// have filtered them). Ingest is idempotent per (trace id, span id):
// the first copy of a span wins and later copies are ignored, so
// re-pushing the same export is safe.
func (c *Collector) Add(spans ...Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range spans {
		if s.TraceID == "" || s.SpanID == "" || s.End.IsZero() {
			continue
		}
		ids := c.seen[s.TraceID]
		if ids == nil {
			ids = make(map[string]bool)
			c.seen[s.TraceID] = ids
		}
		if ids[s.SpanID] {
			continue
		}
		ids[s.SpanID] = true
		c.traces[s.TraceID] = append(c.traces[s.TraceID], s)
	}
}

// HasTrace reports whether the collector holds any span of the given
// trace — the lookup behind exemplar resolution: a fleet exemplar's
// trace id is resolvable when the trace exists here.
func (c *Collector) HasTrace(traceID string) bool {
	if c == nil || traceID == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces[traceID]) > 0
}

// SpanCount returns the number of spans held for the given trace id.
func (c *Collector) SpanCount(traceID string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces[traceID])
}

// TraceIDs lists the trace ids seen so far, sorted.
func (c *Collector) TraceIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.traces))
	for id := range c.traces {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Trace is one stitched multi-process trace.
type Trace struct {
	ID string
	// Spans holds every span of the trace in start order.
	Spans []Span
	// Roots are spans with no parent link — a healthy distributed trace
	// has exactly one.
	Roots []Span
	// Orphans reference a parent span id that no exported span carries:
	// a process in the trace did not export (or lost) its spans.
	Orphans []Span
}

// Stitch assembles the trace with the given id. The result is a snapshot;
// later Adds are not reflected. Returns nil if the trace id is unknown.
func (c *Collector) Stitch(traceID string) *Trace {
	c.mu.Lock()
	spans := append([]Span(nil), c.traces[traceID]...)
	c.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	byID := make(map[string]bool, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = true
	}
	t := &Trace{ID: traceID, Spans: spans}
	for _, s := range spans {
		switch {
		case s.ParentSpanID == "":
			t.Roots = append(t.Roots, s)
		case !byID[s.ParentSpanID]:
			t.Orphans = append(t.Orphans, s)
		}
	}
	return t
}

// Connected reports whether the trace forms a single tree: exactly one
// root and no orphaned parent references.
func (t *Trace) Connected() bool {
	return t != nil && len(t.Roots) == 1 && len(t.Orphans) == 0
}

// Children returns the direct children of the span with the given id,
// in start order.
func (t *Trace) Children(spanID string) []Span {
	var out []Span
	for _, s := range t.Spans {
		if s.ParentSpanID == spanID {
			out = append(out, s)
		}
	}
	return out
}

// CriticalPath walks from the earliest root down through the child that
// ends latest at each level — the chain of spans that bounds the trace's
// wall-clock time. Shortening any span on the path shortens the trace;
// spans off the path overlap something slower.
func (t *Trace) CriticalPath() []Span {
	if t == nil || len(t.Roots) == 0 {
		return nil
	}
	cur := t.Roots[0]
	path := []Span{cur}
	for {
		children := t.Children(cur.SpanID)
		if len(children) == 0 {
			return path
		}
		next := children[0]
		for _, ch := range children[1:] {
			if ch.End.After(next.End) {
				next = ch
			}
		}
		path = append(path, next)
		cur = next
	}
}

// Gap is an interval inside the trace's extent covered by no span.
type Gap struct {
	Start time.Time
	End   time.Time
}

// Duration returns the gap's extent.
func (g Gap) Duration() time.Duration { return g.End.Sub(g.Start) }

// Gaps returns the subintervals of [trace start, trace end] that no span
// covers. Under nested instrumentation these are the blind spots: work
// (or waiting) that happened inside the trace but inside no span.
func (t *Trace) Gaps() []Gap {
	if t == nil || len(t.Spans) == 0 {
		return nil
	}
	type iv struct{ s, e time.Time }
	ivs := make([]iv, 0, len(t.Spans))
	for _, s := range t.Spans {
		ivs = append(ivs, iv{s.Start, s.End})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s.Before(ivs[j].s) })
	var gaps []Gap
	covered := ivs[0].e
	for _, v := range ivs[1:] {
		if v.s.After(covered) {
			gaps = append(gaps, Gap{Start: covered, End: v.s})
		}
		if v.e.After(covered) {
			covered = v.e
		}
	}
	return gaps
}

// timelineWidth is the character width of the Gantt bars.
const timelineWidth = 40

// Timeline renders the stitched trace as a per-process Gantt chart: one
// row per span in tree order (orphans last), with the process name, the
// offset from trace start, the duration, a scaled bar, and a '*' marker
// on critical-path spans. Gaps are listed below the chart.
func (t *Trace) Timeline() string {
	if t == nil || len(t.Spans) == 0 {
		return ""
	}
	start, end := t.Spans[0].Start, t.Spans[0].End
	for _, s := range t.Spans {
		if s.Start.Before(start) {
			start = s.Start
		}
		if s.End.After(end) {
			end = s.End
		}
	}
	total := end.Sub(start)
	if total <= 0 {
		total = time.Nanosecond
	}
	critical := make(map[string]bool)
	for _, s := range t.CriticalPath() {
		critical[s.SpanID] = true
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  %d spans  %v total", t.ID, len(t.Spans), total.Round(time.Microsecond))
	if !t.Connected() {
		fmt.Fprintf(&b, "  [DISCONNECTED: %d roots, %d orphans]", len(t.Roots), len(t.Orphans))
	}
	b.WriteByte('\n')

	row := func(s Span, depth int, orphan bool) {
		off := s.Start.Sub(start)
		lo := int(float64(off) / float64(total) * timelineWidth)
		hi := int(float64(s.End.Sub(start)) / float64(total) * timelineWidth)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > timelineWidth {
			hi = timelineWidth
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", timelineWidth-hi)
		mark := " "
		if critical[s.SpanID] {
			mark = "*"
		}
		label := strings.Repeat("  ", depth) + s.Name
		if orphan {
			label += " (orphan)"
		}
		if s.Err != "" {
			label += " !err"
		}
		fmt.Fprintf(&b, "%s %-16s %-28s +%-10v %-10v |%s|\n",
			mark, s.Process, label, off.Round(time.Microsecond), s.Duration().Round(time.Microsecond), bar)
	}
	var render func(s Span, depth int, orphan bool)
	render = func(s Span, depth int, orphan bool) {
		row(s, depth, orphan)
		for _, ch := range t.Children(s.SpanID) {
			render(ch, depth+1, false)
		}
	}
	for _, r := range t.Roots {
		render(r, 0, false)
	}
	for _, o := range t.Orphans {
		render(o, 0, true)
	}
	if gaps := t.Gaps(); len(gaps) > 0 {
		b.WriteString("gaps (time inside trace covered by no span):\n")
		for _, g := range gaps {
			fmt.Fprintf(&b, "  +%v .. +%v  (%v)\n",
				g.Start.Sub(start).Round(time.Microsecond),
				g.End.Sub(start).Round(time.Microsecond),
				g.Duration().Round(time.Microsecond))
		}
	}
	return b.String()
}
