// Package tsdb is the in-memory time-series flight recorder: fixed-size
// ring buffers of (timestamp, value) points with two-tier downsampling,
// periodically sampled from an obs.Registry (counters become rates,
// gauges values, histograms windowed quantiles) and fed directly by
// components with per-event timelines (the transfer scheduler's PERF
// markers). It answers the questions a point-in-time /metrics scrape
// cannot — "what was the transfer rate 30 seconds ago?", "is p99
// latency degrading?" — without an external Prometheus, per the
// self-contained production-service goal.
//
// Data model: each series keeps a raw tier at the sampling cadence
// (default 1s, retained ~5 minutes) and an aggregated tier of
// step-averaged points (default 15s, retained ~2 hours). Memory per
// series is bounded by the two ring capacities, so a daemon recording
// hundreds of series for weeks stays flat. Out-of-order observations
// (PERF markers carry sender clocks) are inserted in time order into the
// raw tier; samples older than the aggregation tier's open bucket only
// land in the raw tier.
//
// The package is stdlib-only and depends on internal/obs alone; the
// alert engine over it lives in alerts.go.
package tsdb

import (
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// Point is one sample of a series.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// Options size the recorder's tiers. Zero fields take the defaults.
type Options struct {
	// RawStep is the sampling cadence of the raw tier and of the
	// background registry sampler (default 1s).
	RawStep time.Duration
	// RawRetention is how much history the raw tier keeps (default 5m).
	RawRetention time.Duration
	// AggStep is the aggregated tier's resolution: raw points are
	// averaged per AggStep bucket as they age out (default 15s).
	AggStep time.Duration
	// AggRetention is the aggregated tier's span (default 2h).
	AggRetention time.Duration
	// RetireHorizon is how long a retired (tombstoned) series stays
	// queryable before its memory is reclaimed (default 1m). The horizon
	// is the grace window: dashboards and alert rules keep seeing the
	// final points of a completed task's timeline for RetireHorizon, then
	// the series disappears from the map entirely.
	RetireHorizon time.Duration
}

func (o Options) withDefaults() Options {
	if o.RawStep <= 0 {
		o.RawStep = time.Second
	}
	if o.RawRetention <= 0 {
		o.RawRetention = 5 * time.Minute
	}
	if o.AggStep <= 0 {
		o.AggStep = 15 * time.Second
	}
	if o.AggRetention <= 0 {
		o.AggRetention = 2 * time.Hour
	}
	if o.AggStep < o.RawStep {
		o.AggStep = o.RawStep
	}
	if o.RetireHorizon <= 0 {
		o.RetireHorizon = time.Minute
	}
	return o
}

// ring is a fixed-capacity circular buffer of points ordered by time.
type ring struct {
	buf  []Point
	head int // index of the oldest point
	n    int
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		capacity = 1
	}
	return &ring{buf: make([]Point, capacity)}
}

func (r *ring) at(i int) Point { return r.buf[(r.head+i)%len(r.buf)] }

func (r *ring) setAt(i int, p Point) { r.buf[(r.head+i)%len(r.buf)] = p }

// push appends p at the newest end, evicting the oldest point when full.
func (r *ring) push(p Point) {
	if r.n < len(r.buf) {
		r.setAt(r.n, p)
		r.n++
		return
	}
	r.buf[r.head] = p
	r.head = (r.head + 1) % len(r.buf)
}

// insert places p in time order. The common case (p at or after the
// newest point) is an O(1) push; an out-of-order point shifts newer
// points right. A point older than everything in a full ring is dropped
// — storing it would evict a newer, more valuable point.
func (r *ring) insert(p Point) {
	if r.n == 0 || !p.T.Before(r.at(r.n-1).T) {
		r.push(p)
		return
	}
	// Find the first logical index whose point is after p.
	i := sort.Search(r.n, func(i int) bool { return r.at(i).T.After(p.T) })
	if r.n == len(r.buf) {
		if i == 0 {
			return // older than the whole full ring
		}
		// Evict the oldest to make room; the insert position shifts left.
		r.head = (r.head + 1) % len(r.buf)
		r.n--
		i--
	}
	for j := r.n; j > i; j-- {
		r.setAt(j, r.at(j-1))
	}
	r.setAt(i, p)
	r.n++
}

// points returns the ring's contents oldest first.
func (r *ring) points() []Point {
	out := make([]Point, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.at(i)
	}
	return out
}

func (r *ring) oldest() (Point, bool) {
	if r.n == 0 {
		return Point{}, false
	}
	return r.at(0), true
}

// series is one named timeline: the raw ring, the aggregated ring, and
// the open aggregation bucket raw points accumulate into before rolling
// over.
type series struct {
	raw *ring
	agg *ring

	bucketStart time.Time // zero when no bucket is open
	bucketSum   float64
	bucketN     int

	// retiredAt is the series' lifecycle tombstone: zero while live,
	// set by Retire. A tombstoned series keeps serving queries until
	// retiredAt+RetireHorizon, when the sweep reclaims it. A fresh
	// Observe before the sweep revives the series (re-mint in place);
	// one after the sweep mints a brand-new series under the old name.
	retiredAt time.Time
}

// Recorder is the concurrency-safe recorder. The zero value is not
// usable; construct with New.
type Recorder struct {
	opts Options

	mu           sync.Mutex
	series       map[string]*series
	retiredTotal int64 // cumulative tombstones created (survives reclaim)

	// Sampler state: previous cumulative values, so counters and
	// histogram buckets turn into windowed rates/quantiles.
	smu          sync.Mutex
	lastSample   time.Time
	lastCounters map[string]int64
	lastBuckets  map[string][]int64

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// New returns an empty recorder with the given tier geometry.
func New(opts Options) *Recorder {
	o := opts.withDefaults()
	return &Recorder{
		opts:         o,
		series:       make(map[string]*series),
		lastCounters: make(map[string]int64),
		lastBuckets:  make(map[string][]int64),
	}
}

// Options reports the recorder's effective (defaulted) geometry.
func (r *Recorder) Options() Options { return r.opts }

func (r *Recorder) rawCap() int {
	return int(r.opts.RawRetention / r.opts.RawStep)
}

func (r *Recorder) aggCap() int {
	return int(r.opts.AggRetention / r.opts.AggStep)
}

func (r *Recorder) seriesFor(name string) *series {
	s, ok := r.series[name]
	if !ok {
		s = &series{raw: newRing(r.rawCap()), agg: newRing(r.aggCap())}
		r.series[name] = s
	}
	return s
}

// Observe records value v for the named series at time t. NaN and ±Inf
// values are dropped (they would poison downstream averages and alert
// comparisons), as are zero timestamps. Observe implements
// obs.SeriesSink, so a Recorder can sit in Obs.Series.
func (r *Recorder) Observe(name string, t time.Time, v float64) {
	if r == nil || name == "" || t.IsZero() || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesFor(name)
	s.retiredAt = time.Time{} // a fresh observation revives a tombstoned series
	s.raw.insert(Point{T: t, V: v})
	r.aggregate(s, t, v)
}

// aggregate folds one observation into the series' aggregated tier:
// accumulate while t lands in the open bucket, roll the bucket's average
// into the agg ring when t crosses into a later bucket. Observations
// older than the open bucket stay raw-only — the agg tier is append-only
// by design, so a straggling out-of-order marker cannot rewrite history
// that queries may already have served.
func (r *Recorder) aggregate(s *series, t time.Time, v float64) {
	bucket := t.Truncate(r.opts.AggStep)
	switch {
	case s.bucketN == 0 || s.bucketStart.IsZero():
		s.bucketStart, s.bucketSum, s.bucketN = bucket, v, 1
	case bucket.Equal(s.bucketStart):
		s.bucketSum += v
		s.bucketN++
	case bucket.After(s.bucketStart):
		s.agg.push(Point{T: s.bucketStart, V: s.bucketSum / float64(s.bucketN)})
		s.bucketStart, s.bucketSum, s.bucketN = bucket, v, 1
	}
	// bucket before bucketStart: raw tier only.
}

// SeriesNames returns every recorded series name, sorted.
func (r *Recorder) SeriesNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.series))
	for name := range r.series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Query returns the named series' points at or after since (zero = all
// retained history), oldest first: aggregated-tier points for the span
// the raw tier no longer covers, then the raw points. A step > 0
// re-buckets the result by averaging per step — the ?step= selection of
// the admin endpoint.
func (r *Recorder) Query(name string, since time.Time, step time.Duration) []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s, ok := r.series[name]
	var out []Point
	if ok {
		raw := s.raw.points()
		if oldestRaw, any := s.raw.oldest(); any {
			for _, p := range s.agg.points() {
				// Stitch on the bucket's END: an agg bucket that overlaps
				// the raw span would double-count the raw points it
				// averaged, so only buckets wholly before raw coverage
				// contribute.
				if !p.T.Add(r.opts.AggStep).After(oldestRaw.T) {
					out = append(out, p)
				}
			}
		} else {
			out = s.agg.points()
		}
		out = append(out, raw...)
	}
	r.mu.Unlock()
	if !since.IsZero() {
		i := sort.Search(len(out), func(i int) bool { return !out[i].T.Before(since) })
		out = out[i:]
	}
	if step > 0 {
		out = rebucket(out, step)
	}
	return out
}

// rebucket averages time-ordered points per step-aligned bucket.
func rebucket(pts []Point, step time.Duration) []Point {
	var out []Point
	var start time.Time
	sum, n := 0.0, 0
	flush := func() {
		if n > 0 {
			out = append(out, Point{T: start, V: sum / float64(n)})
		}
	}
	for _, p := range pts {
		b := p.T.Truncate(step)
		if n == 0 || !b.Equal(start) {
			flush()
			start, sum, n = b, 0, 0
		}
		sum += p.V
		n++
	}
	flush()
	return out
}

// Latest returns the newest point of the series, ok=false when the
// series is unknown or empty.
func (r *Recorder) Latest(name string) (Point, bool) {
	if r == nil {
		return Point{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok || s.raw.n == 0 {
		return Point{}, false
	}
	return s.raw.at(s.raw.n - 1), true
}

// SeriesDump is one series in the /debug/timeseries response shape.
type SeriesDump struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// DumpSeries renders every series whose name matches one of the given
// prefixes (nil/empty = all) through Query(since, step), skipping series
// with no points in range. A prefix matches exactly or as a name prefix,
// so "transfer.task." selects every task timeline.
func (r *Recorder) DumpSeries(prefixes []string, since time.Time, step time.Duration) []SeriesDump {
	var out []SeriesDump
	for _, name := range r.SeriesNames() {
		if !matchesAny(name, prefixes) {
			continue
		}
		pts := r.Query(name, since, step)
		if len(pts) == 0 {
			continue
		}
		out = append(out, SeriesDump{Name: name, Points: pts})
	}
	return out
}

func matchesAny(name string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if p != "" && (name == p || strings.HasPrefix(name, p)) {
			return true
		}
	}
	return false
}

// SampleRegistry takes one sampling pass over the registry at time now:
// every counter becomes a windowed rate on "<name>.rate" (negative
// deltas after a registry reset clamp to zero), every gauge a value
// sample on its own name, and every histogram a windowed observation
// rate plus windowed p50/p90/p99 ("<name>.p50"...) computed from the
// bucket deltas since the previous pass — the burn over the window, not
// the all-time cumulative distribution, so quantile alerts can resolve
// when the storm stops. A window with no new observations records 0 for
// rate and quantiles. The first pass establishes baselines and records
// only gauges.
func (r *Recorder) SampleRegistry(reg *obs.Registry, now time.Time) {
	if r == nil || reg == nil {
		return
	}
	r.SampleSnapshot(reg.Snapshot(), reg.HistogramSnapshots(), now)
}

// SampleSnapshot is SampleRegistry over already-captured snapshots
// instead of a live registry — the seam the fleet federator uses to run
// the same counter-rate / windowed-quantile derivation over merged fleet
// aggregates. Callers must not interleave SampleSnapshot with
// SampleRegistry on the same Recorder for overlapping metric names: the
// delta baselines are shared per name.
func (r *Recorder) SampleSnapshot(metrics []obs.Metric, hists []obs.HistogramSnapshot, now time.Time) {
	if r == nil {
		return
	}
	r.smu.Lock()
	defer r.smu.Unlock()
	r.sweepBaselines(now) // reclaim tombstoned series past their horizon
	interval := now.Sub(r.lastSample)
	first := r.lastSample.IsZero()
	r.lastSample = now

	for _, m := range metrics {
		switch m.Kind {
		case "gauge":
			r.Observe(m.Name, now, float64(m.Value))
		case "counter":
			prev, seen := r.lastCounters[m.Name]
			r.lastCounters[m.Name] = m.Value
			if first || !seen || interval <= 0 {
				continue
			}
			delta := m.Value - prev
			if delta < 0 {
				delta = 0 // registry reset: a rate is never negative
			}
			r.Observe(m.Name+".rate", now, float64(delta)/interval.Seconds())
		}
	}
	for _, h := range hists {
		prev, seen := r.lastBuckets[h.Name]
		r.lastBuckets[h.Name] = h.Counts
		if first || !seen || interval <= 0 {
			continue
		}
		window := windowCounts(h.Counts, prev)
		total := int64(0)
		if len(window) > 0 {
			total = window[len(window)-1]
		}
		r.Observe(h.Name+".rate", now, float64(total)/interval.Seconds())
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{".p50", 0.50}, {".p90", 0.90}, {".p99", 0.99}} {
			v := 0.0
			if total > 0 {
				v = obs.QuantileFromBuckets(h.Bounds, window, q.q)
			}
			r.Observe(h.Name+q.suffix, now, v)
		}
	}

	// Self-accounting: the recorder's own cardinality, recorded as
	// series so the watermark alert (DefaultRules) and dashboards see
	// them on any sampled recorder — daemon or fleet head alike.
	live, _, retired := r.LifecycleStats()
	r.Observe("obs.tsdb.series_active", now, float64(live))
	r.Observe("obs.tsdb.series_retired_total", now, float64(retired))
}

// windowCounts computes the cumulative bucket counts of the window
// between two cumulative snapshots, clamping negative deltas (registry
// reset) to zero and re-monotonizing.
func windowCounts(cur, prev []int64) []int64 {
	out := make([]int64, len(cur))
	var run int64
	for i := range cur {
		d := cur[i]
		if i < len(prev) {
			d -= prev[i]
		}
		if d < run {
			d = run // cumulative counts never decrease
		}
		out[i] = d
		run = d
	}
	return out
}

// Start launches the background sampling loop: every RawStep it samples
// reg and, when engine is non-nil, evaluates the alert rules against the
// fresh samples. The returned stop function halts the loop and waits for
// it to exit; it is idempotent. Start may be called at most once per
// Recorder.
func (r *Recorder) Start(reg *obs.Registry, engine *Engine) (stop func()) {
	r.stopCh = make(chan struct{})
	r.doneCh = make(chan struct{})
	go func() {
		defer close(r.doneCh)
		tick := time.NewTicker(r.opts.RawStep)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				now := time.Now()
				r.SampleRegistry(reg, now)
				engine.Eval(now)
			case <-r.stopCh:
				return
			}
		}
	}()
	return func() {
		r.stopOnce.Do(func() { close(r.stopCh) })
		<-r.doneCh
	}
}
