package tsdb

import (
	"sort"
	"strings"
	"time"
)

// This file is the recorder's series lifecycle governance. Series are
// minted implicitly on first Observe, which is the right ergonomics for
// telemetry producers but — unchecked — an unbounded-memory liability:
// per-task ("transfer.task.<id>.*") and per-transfer
// ("gridftp.stream.<label>.*") timelines accumulate forever at fleet
// scale. Retire gives mint sites a teardown half:
//
//	live --Retire--> tombstoned --horizon elapses--> reclaimed
//	        ^            |
//	        +--Observe---+   (revive: a straggler re-mints in place)
//
// A tombstoned series keeps serving Query/Latest/DumpSeries until
// RetireHorizon elapses (the grace window for dashboards and For-based
// alert hysteresis), then the background sweep deletes it — and its
// sampler delta baselines — outright. An Observe after reclaim mints a
// brand-new series under the old name with no history, which is exactly
// re-mint semantics: lifecycle state is per-incarnation, not per-name.

// Retire tombstones every live series matching prefix (exact name or
// name prefix, same matching as DumpSeries) as of now, and returns how
// many series it tombstoned. Already-tombstoned series are left on
// their original clock. Retire implements the write half of
// obs.SeriesRetirer via RetireSeries.
func (r *Recorder) Retire(prefix string) int {
	return r.RetireAt(prefix, time.Now())
}

// RetireAt is Retire on an explicit clock — the testable entry point,
// mirroring how Engine.Eval takes synthetic times.
func (r *Recorder) RetireAt(prefix string, now time.Time) int {
	if r == nil || prefix == "" {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name, s := range r.series {
		if !matchesAny(name, []string{prefix}) || !s.retiredAt.IsZero() {
			continue
		}
		s.retiredAt = now
		r.retiredTotal++
		n++
	}
	return n
}

// RetireSeries adapts Retire to the obs.SeriesRetirer interface so
// producers holding only an obs.SeriesSink (the transfer scheduler,
// streamstats) can retire their series without importing tsdb.
func (r *Recorder) RetireSeries(prefix string) int { return r.Retire(prefix) }

// Sweep reclaims every tombstoned series whose horizon has elapsed at
// now and returns how many it deleted. The registry sampling pass calls
// it on every tick; it is exported for synthetic-clock tests.
func (r *Recorder) Sweep(now time.Time) int {
	if r == nil {
		return 0
	}
	r.smu.Lock()
	defer r.smu.Unlock()
	return r.sweepBaselines(now)
}

// sweepBaselines does the reclaim under smu (already held by the
// sampling pass): deletes expired series under mu, then drops the
// sampler's delta baselines for derived series so a later re-mint
// starts from a fresh baseline instead of a stale cumulative value.
func (r *Recorder) sweepBaselines(now time.Time) int {
	r.mu.Lock()
	var reclaimed []string
	for name, s := range r.series {
		if !s.retiredAt.IsZero() && !now.Before(s.retiredAt.Add(r.opts.RetireHorizon)) {
			delete(r.series, name)
			reclaimed = append(reclaimed, name)
		}
	}
	r.mu.Unlock()
	for _, name := range reclaimed {
		// "<counter>.rate" and "<histogram>.rate/.p50/.p90/.p99" series
		// carry per-name cumulative baselines in the sampler.
		if base, ok := strings.CutSuffix(name, ".rate"); ok {
			delete(r.lastCounters, base)
			delete(r.lastBuckets, base)
		}
		for _, q := range [...]string{".p50", ".p90", ".p99"} {
			if base, ok := strings.CutSuffix(name, q); ok {
				delete(r.lastBuckets, base)
			}
		}
	}
	return len(reclaimed)
}

// LifecycleStats reports the recorder's cardinality counters: live is
// the number of series currently serving queries (including tombstoned
// ones still inside their horizon), tombstoned how many of those are
// awaiting reclaim, and retiredTotal the cumulative tombstones created
// over the recorder's life.
func (r *Recorder) LifecycleStats() (live, tombstoned int, retiredTotal int64) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.series {
		if !s.retiredAt.IsZero() {
			tombstoned++
		}
	}
	return len(r.series), tombstoned, r.retiredTotal
}

// SeriesInfo is one series in the /debug/series inventory: its
// lifecycle state, retained point count, and — for tombstoned series —
// when it was retired and when the sweep will reclaim it.
type SeriesInfo struct {
	Name      string     `json:"name"`
	State     string     `json:"state"` // "live" | "retired"
	Points    int        `json:"points"`
	RetiredAt *time.Time `json:"retired_at,omitempty"`
	ReclaimAt *time.Time `json:"reclaim_at,omitempty"`
}

// Inventory returns every series' lifecycle record, sorted by name —
// the cardinality-debugging view behind GET /debug/series.
func (r *Recorder) Inventory() []SeriesInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SeriesInfo, 0, len(r.series))
	for name, s := range r.series {
		info := SeriesInfo{Name: name, State: "live", Points: s.raw.n + s.agg.n}
		if !s.retiredAt.IsZero() {
			info.State = "retired"
			at := s.retiredAt
			reclaim := s.retiredAt.Add(r.opts.RetireHorizon)
			info.RetiredAt, info.ReclaimAt = &at, &reclaim
		}
		out = append(out, info)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
