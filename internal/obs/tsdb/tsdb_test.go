package tsdb

import (
	"math"
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// t0 is an arbitrary fixed epoch aligned to every step used in these
// tests, so bucket boundaries are exact.
var t0 = time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)

func testRecorder() *Recorder {
	// Tiny geometry: 5 raw points, 3s agg buckets, 10 agg points.
	return New(Options{
		RawStep: time.Second, RawRetention: 5 * time.Second,
		AggStep: 3 * time.Second, AggRetention: 30 * time.Second,
	})
}

func TestTwoTierDownsamplingRollover(t *testing.T) {
	r := testRecorder()
	// Nine 1s samples: buckets [0,3) [3,6) close when crossed; [6,9) stays
	// open until a 10th point arrives.
	for i := 0; i < 9; i++ {
		r.Observe("s", t0.Add(time.Duration(i)*time.Second), float64(i))
	}

	// Raw ring (cap 5) keeps the newest five: values 4..8.
	raw := r.Query("s", t0.Add(4*time.Second), 0)
	if len(raw) != 5 || raw[0].V != 4 || raw[4].V != 8 {
		t.Fatalf("raw tail = %v, want values 4..8", raw)
	}

	// Aggregated tier holds the two closed buckets, stamped at the bucket
	// start, averaging their three members: (0+1+2)/3=1, (3+4+5)/3=4.
	all := r.Query("s", time.Time{}, 0)
	// Raw retains 4..8 (oldest raw is t0+4s); agg points strictly before
	// that: only the [0,3) bucket at t0. The [3,6) bucket (t0+3s) overlaps
	// the raw span and must not be duplicated into the result.
	if len(all) != 6 {
		t.Fatalf("merged query = %v, want 1 agg + 5 raw points", all)
	}
	if !all[0].T.Equal(t0) || all[0].V != 1 {
		t.Errorf("agg point = %+v, want t0 avg 1", all[0])
	}
	for i := 1; i < len(all); i++ {
		if !all[i].T.After(all[i-1].T) {
			t.Errorf("merged points not strictly increasing at %d: %v", i, all)
		}
	}

	// The open [6,9) bucket has not rolled over: a query stepping at 3s
	// over the raw tail still sees its raw members.
	stepped := r.Query("s", time.Time{}, 3*time.Second)
	// Buckets: t0 (agg avg 1), t0+3 (raw 4,5 → wait raw starts at 4s) —
	// compute: points are (t0,1) (4s,4) (5s,5) (6s,6) (7s,7) (8s,8):
	// t0→1, t0+3s→(4+5)/2=4.5, t0+6s→(6+7+8)/3=7.
	want := []Point{{t0, 1}, {t0.Add(3 * time.Second), 4.5}, {t0.Add(6 * time.Second), 7}}
	if len(stepped) != len(want) {
		t.Fatalf("stepped = %v, want %v", stepped, want)
	}
	for i := range want {
		if !stepped[i].T.Equal(want[i].T) || math.Abs(stepped[i].V-want[i].V) > 1e-9 {
			t.Errorf("stepped[%d] = %+v, want %+v", i, stepped[i], want[i])
		}
	}
}

func TestExactTierBoundary(t *testing.T) {
	r := testRecorder()
	// A point exactly on an agg-bucket boundary opens the next bucket; the
	// previous bucket's average lands at the previous bucket's start.
	r.Observe("s", t0.Add(2*time.Second), 10)
	r.Observe("s", t0.Add(3*time.Second), 20) // exactly on the [3,6) edge
	all := r.Query("s", time.Time{}, 0)
	if len(all) != 2 {
		t.Fatalf("points = %v", all)
	}
	// Force the open bucket to roll and check its stamp.
	r.Observe("s", t0.Add(6*time.Second), 30)
	r.mu.Lock()
	agg := r.series["s"].agg.points()
	r.mu.Unlock()
	if len(agg) != 2 {
		t.Fatalf("agg = %v, want 2 closed buckets", agg)
	}
	if !agg[0].T.Equal(t0) || agg[0].V != 10 {
		t.Errorf("agg[0] = %+v, want {t0 10}", agg[0])
	}
	if !agg[1].T.Equal(t0.Add(3*time.Second)) || agg[1].V != 20 {
		t.Errorf("agg[1] = %+v, want {t0+3s 20}", agg[1])
	}
}

func TestOutOfOrderObserve(t *testing.T) {
	r := testRecorder()
	r.Observe("s", t0.Add(1*time.Second), 1)
	r.Observe("s", t0.Add(4*time.Second), 4)
	r.Observe("s", t0.Add(2*time.Second), 2) // late marker, still in raw span

	pts := r.Query("s", time.Time{}, 0)
	for i := 1; i < len(pts); i++ {
		if pts[i].T.Before(pts[i-1].T) {
			t.Fatalf("raw points out of order: %v", pts)
		}
	}
	if len(pts) != 3 || pts[1].V != 2 {
		t.Fatalf("points = %v, want the late sample in the middle", pts)
	}

	// The agg tier is append-only: the late point must not reopen or
	// rewrite a closed bucket.
	r.Observe("s", t0.Add(7*time.Second), 7) // closes [3,6)
	r.mu.Lock()
	aggBefore := r.series["s"].agg.points()
	r.mu.Unlock()
	r.Observe("s", t0.Add(5*time.Second), 100) // straggler into closed [3,6)
	r.mu.Lock()
	aggAfter := r.series["s"].agg.points()
	r.mu.Unlock()
	if len(aggAfter) != len(aggBefore) {
		t.Fatalf("straggler reopened agg tier: %v -> %v", aggBefore, aggAfter)
	}
	for i := range aggBefore {
		if aggAfter[i] != aggBefore[i] {
			t.Fatalf("straggler rewrote closed bucket %d: %v -> %v", i, aggBefore, aggAfter)
		}
	}
	// ...but it does land in the raw tier.
	if pts := r.Query("s", time.Time{}, 0); len(pts) != 5 {
		t.Fatalf("raw points = %v, want straggler inserted", pts)
	}

	// A point older than every retained raw point in a full ring drops.
	for i := 10; i < 15; i++ { // fill the 5-slot ring
		r.Observe("s", t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	before := len(r.Query("s", time.Time{}, 0))
	r.Observe("s", t0.Add(1*time.Second), 999)
	after := r.Query("s", time.Time{}, 0)
	if len(after) != before {
		t.Fatalf("too-old point was stored: %v", after)
	}
	for _, p := range after {
		if p.V == 999 {
			t.Fatalf("too-old point present: %v", after)
		}
	}
}

func TestObserveRejectsGarbage(t *testing.T) {
	r := testRecorder()
	r.Observe("", t0, 1)
	r.Observe("s", time.Time{}, 1)
	r.Observe("s", t0, math.NaN())
	r.Observe("s", t0, math.Inf(1))
	if names := r.SeriesNames(); len(names) != 0 {
		t.Fatalf("garbage observations created series %v", names)
	}
	var nilRec *Recorder
	nilRec.Observe("s", t0, 1) // must not panic
	if _, ok := nilRec.Latest("s"); ok {
		t.Fatal("nil recorder returned a point")
	}
}

func TestSampleRegistryRatesAndReset(t *testing.T) {
	r := New(Options{})
	reg := obs.NewRegistry()
	reg.Counter("c").Add(100)
	reg.Gauge("g").Set(7)

	r.SampleRegistry(reg, t0) // baseline pass: gauges only
	if _, ok := r.Latest("c.rate"); ok {
		t.Fatal("first pass recorded a counter rate")
	}
	if p, ok := r.Latest("g"); !ok || p.V != 7 {
		t.Fatalf("gauge sample = %v %v, want 7", p, ok)
	}

	reg.Counter("c").Add(50)
	r.SampleRegistry(reg, t0.Add(2*time.Second))
	if p, ok := r.Latest("c.rate"); !ok || math.Abs(p.V-25) > 1e-9 {
		t.Fatalf("c.rate = %v %v, want 25/s (50 over 2s)", p, ok)
	}

	// A registry reset (fresh registry, same names, lower counts) must
	// clamp the negative delta to a zero rate, not a negative one.
	reg2 := obs.NewRegistry()
	reg2.Counter("c").Add(10)
	r.SampleRegistry(reg2, t0.Add(3*time.Second))
	if p, ok := r.Latest("c.rate"); !ok || p.V != 0 {
		t.Fatalf("post-reset c.rate = %v %v, want clamped 0", p, ok)
	}
}

func TestSampleRegistryWindowedQuantiles(t *testing.T) {
	r := New(Options{})
	reg := obs.NewRegistry()
	h := reg.Histogram("lat", []float64{0.1, 1, 10})
	h.Observe(0.05)

	r.SampleRegistry(reg, t0) // baseline

	// A burst of slow observations: the windowed p99 reflects only them.
	for i := 0; i < 20; i++ {
		h.Observe(5)
	}
	r.SampleRegistry(reg, t0.Add(time.Second))
	p, ok := r.Latest("lat.p99")
	if !ok || p.V <= 1 {
		t.Fatalf("windowed p99 = %v %v, want > 1 (burst of 5s observations)", p, ok)
	}
	if rate, ok := r.Latest("lat.rate"); !ok || math.Abs(rate.V-20) > 1e-9 {
		t.Fatalf("lat.rate = %v %v, want 20/s", rate, ok)
	}

	// Quiet window: rate and quantiles drop to the 0 sentinel, which is
	// what lets quantile alerts resolve.
	r.SampleRegistry(reg, t0.Add(2*time.Second))
	if p, ok := r.Latest("lat.p99"); !ok || p.V != 0 {
		t.Fatalf("quiet-window p99 = %v %v, want 0", p, ok)
	}
	if p, ok := r.Latest("lat.rate"); !ok || p.V != 0 {
		t.Fatalf("quiet-window rate = %v %v, want 0", p, ok)
	}
}

func TestDumpSeriesPrefixes(t *testing.T) {
	r := New(Options{})
	r.Observe("transfer.task.t1.throughput", t0, 1)
	r.Observe("transfer.task.t2.throughput", t0, 2)
	r.Observe("gridftp.server.command_seconds.p99", t0, 3)

	all := r.DumpSeries(nil, time.Time{}, 0)
	if len(all) != 3 {
		t.Fatalf("DumpSeries(nil) = %d series, want 3", len(all))
	}
	tasks := r.DumpSeries([]string{"transfer.task."}, time.Time{}, 0)
	if len(tasks) != 2 {
		t.Fatalf("prefix dump = %v, want the 2 task series", tasks)
	}
	exact := r.DumpSeries([]string{"gridftp.server.command_seconds.p99"}, time.Time{}, 0)
	if len(exact) != 1 || len(exact[0].Points) != 1 {
		t.Fatalf("exact dump = %v", exact)
	}
	// since beyond all points → series with no in-range points are skipped.
	if got := r.DumpSeries(nil, t0.Add(time.Hour), 0); len(got) != 0 {
		t.Fatalf("future since dump = %v, want empty", got)
	}
}

func TestStartSamplesAndStops(t *testing.T) {
	r := New(Options{RawStep: 5 * time.Millisecond})
	reg := obs.NewRegistry()
	reg.Gauge("g").Set(42)
	stop := r.Start(reg, nil)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if p, ok := r.Latest("g"); ok && p.V == 42 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never recorded the gauge")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}

func TestConcurrentObserveAndQuery(t *testing.T) {
	r := New(Options{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r.Observe("s", t0.Add(time.Duration(i)*time.Millisecond), float64(i))
		}
	}()
	for i := 0; i < 200; i++ {
		r.Query("s", time.Time{}, 0)
		r.Latest("s")
		r.SeriesNames()
	}
	<-done
}
