package tsdb

import (
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// TestRetireHorizonAndReclaim walks one series through the full
// lifecycle: live → tombstoned (still queryable for the whole horizon)
// → reclaimed (gone), with the cardinality counters tracking each step.
func TestRetireHorizonAndReclaim(t *testing.T) {
	r := New(Options{RetireHorizon: time.Minute})
	t0 := time.Unix(50000, 0)
	r.Observe("task-1.throughput", t0, 42)

	if n := r.RetireAt("task-1.", t0); n != 1 {
		t.Fatalf("RetireAt tombstoned %d series, want 1", n)
	}
	if n := r.RetireAt("task-1.", t0.Add(time.Second)); n != 0 {
		t.Fatalf("second RetireAt re-tombstoned %d series, want 0 (original clock kept)", n)
	}
	live, tomb, total := r.LifecycleStats()
	if live != 1 || tomb != 1 || total != 1 {
		t.Fatalf("after retire: live %d tomb %d total %d, want 1/1/1", live, tomb, total)
	}

	// The grace window: still fully queryable right up to the horizon.
	if pts := r.Query("task-1.throughput", time.Time{}, 0); len(pts) != 1 || pts[0].V != 42 {
		t.Fatalf("tombstoned series lost its points: %+v", pts)
	}
	if n := r.Sweep(t0.Add(time.Minute - time.Nanosecond)); n != 0 {
		t.Fatalf("sweep inside horizon reclaimed %d series", n)
	}

	if n := r.Sweep(t0.Add(time.Minute)); n != 1 {
		t.Fatalf("sweep at horizon reclaimed %d series, want 1", n)
	}
	if pts := r.Query("task-1.throughput", time.Time{}, 0); len(pts) != 0 {
		t.Fatalf("reclaimed series still serving points: %+v", pts)
	}
	live, tomb, total = r.LifecycleStats()
	if live != 0 || tomb != 0 || total != 1 {
		t.Fatalf("after reclaim: live %d tomb %d total %d, want 0/0/1 (retiredTotal survives)", live, tomb, total)
	}
}

// TestObserveRevivesTombstone: a straggler observation inside the
// horizon re-mints the series in place — tombstone cleared, history
// intact.
func TestObserveRevivesTombstone(t *testing.T) {
	r := New(Options{})
	t0 := time.Unix(60000, 0)
	r.Observe("s", t0, 1)
	r.RetireAt("s", t0)
	r.Observe("s", t0.Add(time.Second), 2)

	if _, tomb, _ := r.LifecycleStats(); tomb != 0 {
		t.Fatalf("observe did not clear the tombstone (%d tombstoned)", tomb)
	}
	if pts := r.Query("s", time.Time{}, 0); len(pts) != 2 {
		t.Fatalf("revived series history = %+v, want both points", pts)
	}
	// A revived series survives sweeps indefinitely again.
	if n := r.Sweep(t0.Add(24 * time.Hour)); n != 0 {
		t.Fatalf("sweep reclaimed a revived series (%d)", n)
	}
}

// TestReMintAfterReclaim: an observation after the sweep mints a fresh
// incarnation under the old name — no history carryover.
func TestReMintAfterReclaim(t *testing.T) {
	r := New(Options{RetireHorizon: time.Second})
	t0 := time.Unix(70000, 0)
	r.Observe("s", t0, 1)
	r.RetireAt("s", t0)
	r.Sweep(t0.Add(time.Second))

	r.Observe("s", t0.Add(time.Minute), 9)
	pts := r.Query("s", time.Time{}, 0)
	if len(pts) != 1 || pts[0].V != 9 {
		t.Fatalf("re-minted series = %+v, want only the fresh point", pts)
	}
	if live, tomb, total := r.LifecycleStats(); live != 1 || tomb != 0 || total != 1 {
		t.Fatalf("after re-mint: live %d tomb %d total %d, want 1/0/1", live, tomb, total)
	}
}

// TestRetirePrefixDotBoundary: mint sites retire with a trailing dot,
// and the prefix match must not bleed into sibling identifiers that
// share a textual prefix (task-1 vs task-10).
func TestRetirePrefixDotBoundary(t *testing.T) {
	r := New(Options{})
	t0 := time.Unix(80000, 0)
	r.Observe("transfer.task.task-1.throughput", t0, 1)
	r.Observe("transfer.task.task-10.throughput", t0, 2)

	if n := r.RetireAt("transfer.task.task-1.", t0); n != 1 {
		t.Fatalf("retired %d series, want exactly task-1's", n)
	}
	inv := r.Inventory()
	if len(inv) != 2 {
		t.Fatalf("inventory = %+v", inv)
	}
	for _, si := range inv {
		want := "live"
		if si.Name == "transfer.task.task-1.throughput" {
			want = "retired"
			if si.RetiredAt == nil || si.ReclaimAt == nil {
				t.Fatalf("retired entry missing clocks: %+v", si)
			}
		}
		if si.State != want {
			t.Fatalf("%s state %q, want %q", si.Name, si.State, want)
		}
	}
}

// TestSamplerBaselineCleanupOnReclaim: reclaiming a derived ".rate"
// series must drop the sampler's cumulative baseline so a re-minted
// counter starts a fresh window instead of inheriting a stale delta.
func TestSamplerBaselineCleanupOnReclaim(t *testing.T) {
	r := New(Options{RetireHorizon: time.Second})
	t0 := time.Unix(90000, 0)
	snap := func(v int64) []obs.Metric {
		return []obs.Metric{{Name: "c", Kind: "counter", Value: v}}
	}
	r.SampleSnapshot(snap(100), nil, t0)
	r.SampleSnapshot(snap(400), nil, t0.Add(time.Second))
	if p, ok := r.Latest("c.rate"); !ok || p.V != 300 {
		t.Fatalf("rate = %+v, want 300/s", p)
	}

	r.RetireAt("c.rate", t0.Add(time.Second))
	// The sampling pass itself sweeps: the next snapshot past the
	// horizon reclaims the series and its baseline, so this pass is a
	// baseline-establishing pass again — no rate point re-minted yet,
	// even though the counter jumped.
	r.SampleSnapshot(snap(1_000_000), nil, t0.Add(3*time.Second))
	if _, ok := r.Latest("c.rate"); ok {
		t.Fatal("rate re-minted on the baseline-establishing pass after reclaim")
	}
	r.SampleSnapshot(snap(1_000_050), nil, t0.Add(4*time.Second))
	if p, ok := r.Latest("c.rate"); !ok || p.V != 50 {
		t.Fatalf("re-minted rate = %+v, want a fresh 50/s window", p)
	}
}

// TestSampleSnapshotRecordsCardinality: every sampling pass records the
// recorder's own live/retired gauges — the feed for the
// cardinality-watermark alert on daemons and fleet heads alike.
func TestSampleSnapshotRecordsCardinality(t *testing.T) {
	r := New(Options{})
	t0 := time.Unix(95000, 0)
	r.Observe("a", t0, 1)
	r.Observe("b", t0, 1)
	r.RetireAt("b", t0)
	r.SampleSnapshot(nil, nil, t0.Add(time.Second))

	p, ok := r.Latest("obs.tsdb.series_active")
	// a + b (tombstoned, inside horizon) + the two self-accounting
	// series as they mint.
	if !ok || p.V < 2 {
		t.Fatalf("series_active = %+v, want >= 2", p)
	}
	if p, ok := r.Latest("obs.tsdb.series_retired_total"); !ok || p.V != 1 {
		t.Fatalf("series_retired_total = %+v, want 1", p)
	}
}
