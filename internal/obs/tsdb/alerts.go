package tsdb

import (
	"fmt"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
)

// This file is the SLO alert engine over the recorder: declarative rules
// evaluated on every sampling tick, with for-duration hysteresis in both
// directions (a rule must hold for For before firing and must stay clear
// for For before resolving — flap suppression). Transitions land in the
// event log (alert.firing / alert.resolved), on the obs.alerts_active /
// obs.alerts_fired_total metrics, and on subscriber taps (the SSE live
// stream).

// Kind selects how a rule turns series points into a test value.
type Kind string

const (
	// KindThreshold compares the series' latest point.
	KindThreshold Kind = "threshold"
	// KindRateOfChange compares the series' slope (units/sec) over the
	// rule window.
	KindRateOfChange Kind = "rate-of-change"
	// KindBurnRate compares the series' average over the rule window —
	// applied to a windowed quantile series ("….p99", maintained by
	// SampleRegistry), this is a quantile burn-rate rule: it fires while
	// the window keeps burning above the objective and resolves once the
	// windowed quantile falls back (an empty window records 0).
	KindBurnRate Kind = "burn-rate"
)

// Op is a comparison direction.
type Op string

// Comparison directions.
const (
	OpGreater Op = ">"
	OpLess    Op = "<"
)

// Rule is one declarative alert rule.
type Rule struct {
	// Name identifies the rule in events, metrics, and /alerts.
	Name string `json:"name"`
	// Series is the recorder series the rule watches (for registry-fed
	// series: "<gauge name>", "<counter name>.rate", "<histogram>.p99").
	Series string `json:"series"`
	Kind   Kind   `json:"kind"`
	Op     Op     `json:"op"`
	// Value is the comparison threshold.
	Value float64 `json:"value"`
	// For is the hysteresis duration: the condition must hold this long
	// before the alert fires, and must stay clear this long before a
	// firing alert resolves. Zero fires/resolves on the first tick.
	For time.Duration `json:"for_ns"`
	// Window is the lookback for rate-of-change and burn-rate rules
	// (default 60s).
	Window time.Duration `json:"window_ns,omitempty"`
	// Severity is free-form operator routing ("page", "warn", "info").
	Severity string `json:"severity,omitempty"`
}

// State is an alert's lifecycle state.
type State string

// Alert states.
const (
	StateInactive State = "inactive"
	StatePending  State = "pending"
	StateFiring   State = "firing"
)

// Alert is the live state of one rule.
type Alert struct {
	Rule  Rule  `json:"rule"`
	State State `json:"state"`
	// Value is the most recently evaluated test value.
	Value float64 `json:"value"`
	// Since is when the alert entered its current state.
	Since time.Time `json:"since"`
	// Fires counts pending→firing transitions over the engine's life.
	Fires int `json:"fires"`
}

// Transition is one state change, delivered to taps and (for
// firing/resolved) the event log.
type Transition struct {
	Rule     string    `json:"rule"`
	Series   string    `json:"series"`
	From     State     `json:"from"`
	To       State     `json:"to"`
	At       time.Time `json:"at"`
	Value    float64   `json:"value"`
	Severity string    `json:"severity,omitempty"`
}

// alertState is the engine's mutable per-rule record.
type alertState struct {
	rule       Rule
	state      State
	since      time.Time
	value      float64
	fires      int
	clearSince time.Time // while firing: when the condition last went clear
}

// Engine evaluates rules against a recorder.
type Engine struct {
	rec *Recorder
	o   *obs.Obs

	mu      sync.Mutex
	alerts  []*alertState
	taps    map[int]func(Transition)
	nextTap int
}

// NewEngine builds an engine over rec reporting into o (both may be nil
// for a disconnected engine, which then never fires).
func NewEngine(rec *Recorder, o *obs.Obs, rules []Rule) *Engine {
	e := &Engine{rec: rec, o: o, taps: make(map[int]func(Transition))}
	for _, r := range rules {
		if r.Window <= 0 {
			r.Window = time.Minute
		}
		e.alerts = append(e.alerts, &alertState{rule: r, state: StateInactive})
	}
	return e
}

// DefaultRules is the rule set the daemons install: SLOs over the series
// the stack already exports. Thresholds suit the simulated-WAN scale the
// binaries run at; operators replace them the way they would a
// Prometheus rule file.
func DefaultRules() []Rule {
	return []Rule{
		{
			// The scheduler's admission queue: if the p99 wait burns above
			// 500ms, MaxActiveTransfers is saturated and tasks are starving.
			Name: "transfer-queue-wait-p99-burn", Series: "transfer.queue_wait_seconds.p99",
			Kind: KindBurnRate, Op: OpGreater, Value: 0.5,
			For: 2 * time.Second, Window: 15 * time.Second, Severity: "page",
		},
		{
			// Control-channel health: sustained slow commands mean the
			// endpoint (or the path to it) is degrading.
			Name: "command-latency-p99", Series: "gridftp.server.command_seconds.p99",
			Kind: KindThreshold, Op: OpGreater, Value: 2.0,
			For: 5 * time.Second, Severity: "warn",
		},
		{
			// A retry storm: attempts failing faster than one per two
			// seconds across the service.
			Name: "transfer-retry-storm", Series: "transfer.attempt_failures.rate",
			Kind: KindThreshold, Op: OpGreater, Value: 0.5,
			For: 3 * time.Second, Severity: "warn",
		},
		{
			// Mid-flight throughput collapse: aggregate transfer progress
			// dropping fast while transfers are supposed to be active.
			Name: "transfer-throughput-collapse", Series: "transfer.bytes_total.rate",
			Kind: KindRateOfChange, Op: OpLess, Value: -1 << 20,
			For: 3 * time.Second, Window: 10 * time.Second, Severity: "info",
		},
		{
			// The stream-stall watchdog (internal/obs/streamstats): one or
			// more data streams past the no-progress window. The series is
			// written by the streamstats poller, so it reflects wire-level
			// reality, not queue state — a firing alert means bytes stopped
			// moving on a live transfer.
			Name: "stream-stall", Series: "gridftp.streams.stalled",
			Kind: KindThreshold, Op: OpGreater, Value: 0,
			For: time.Second, Severity: "page",
		},
		{
			// Inter-stream imbalance: the worst max/min per-stream EWMA
			// throughput ratio across active transfers. Parallel streams
			// should split a path roughly evenly; a sustained 4x skew means
			// one stream is starved (lossy path, unfair shaping) and the
			// transfer is running at a fraction of its negotiated
			// parallelism.
			Name: "stream-imbalance", Series: "gridftp.streams.imbalance",
			Kind: KindThreshold, Op: OpGreater, Value: 4.0,
			For: 5 * time.Second, Severity: "warn",
		},
		{
			// Continuous-profiler attribution: this window's allocation
			// rate a multiple of the previous window's. The profiler holds
			// the ratio for a whole capture window, so For spans at least
			// two windows at the default 10s cadence — a step change in
			// alloc behavior, not one busy window. The firing alert's
			// diagnostic bundle carries the profile window and the
			// top-regressed frames that own the growth.
			Name: "profile-alloc-regression", Series: "obs.profile.alloc.regression_ratio",
			Kind: KindThreshold, Op: OpGreater, Value: 3.0,
			For: 15 * time.Second, Severity: "page",
		},
		{
			// CPU-hotspot regression from the same plane: the profiled
			// busy fraction jumping versus the previous window.
			Name: "profile-cpu-regression", Series: "obs.profile.cpu.regression_ratio",
			Kind: KindThreshold, Op: OpGreater, Value: 3.0,
			For: 15 * time.Second, Severity: "warn",
		},
		{
			// Single-tenant fleet capture: one DN moving >90% of the
			// instance's bytes while at least two tenants are active (the
			// tenant plane writes 0 when fewer than two tenants moved bytes
			// in the window, so a single-user box never warns). The series
			// is published by internal/obs/tenant from its top-K sketch.
			Name: "tenant-share-of-fleet", Series: "tenant.top_share",
			Kind: KindThreshold, Op: OpGreater, Value: 0.9,
			For: 10 * time.Second, Severity: "warn",
		},
		{
			// Tenant error burn: the worst per-tenant error rate among the
			// top-K (failed tasks + failed commands over events) burning
			// above 50% — one user's workload is systematically failing,
			// which is either their credential/quota or our bug; page.
			Name: "tenant-error-burn", Series: "tenant.error_burn",
			Kind: KindBurnRate, Op: OpGreater, Value: 0.5,
			For: 5 * time.Second, Window: 15 * time.Second, Severity: "page",
		},
		{
			// Cardinality watermark: the recorder's live series count past
			// the level the lifecycle plane should be holding it under. A
			// sustained breach means a mint site is leaking series without
			// retiring them (or K/retention is misconfigured) — the exact
			// failure mode series lifecycle governance exists to prevent.
			Name: "tsdb-cardinality-watermark", Series: "obs.tsdb.series_active",
			Kind: KindThreshold, Op: OpGreater, Value: 4000,
			For: 30 * time.Second, Severity: "warn",
		},
	}
}

// DefaultFleetRules is the rule set a fleet federation head installs
// over the fleet-level recorder. The watched series are the derived
// "fleet.*" aggregates the federator maintains from merged per-instance
// snapshots (see internal/obs/fleet): staleness and outlier counts are
// computed gauges, goodput deficit is floor−goodput clamped at zero and
// only nonzero while the fleet has active transfers, and the queue-wait
// quantile comes from bucket-wise merged histograms.
func DefaultFleetRules() []Rule {
	return []Rule{
		{
			// One or more registered instances stopped reporting: pushes
			// and scrapes both went quiet past the staleness horizon.
			Name: "fleet-instance-stale", Series: "fleet.instances.stale",
			Kind: KindThreshold, Op: OpGreater, Value: 0,
			For: 2 * time.Second, Severity: "page",
		},
		{
			// Fleet-wide goodput under the configured floor while transfers
			// are supposed to be moving — the deficit series is zero when
			// the fleet is idle, so an idle fleet never pages.
			Name: "fleet-goodput-floor", Series: "fleet.goodput.deficit",
			Kind: KindBurnRate, Op: OpGreater, Value: 0,
			For: 3 * time.Second, Window: 10 * time.Second, Severity: "page",
		},
		{
			// One endpoint dragging the fleet: an instance contributing
			// outlier-low goodput relative to the fleet median.
			Name: "fleet-instance-outlier", Series: "fleet.goodput.outlier_ratio",
			Kind: KindThreshold, Op: OpGreater, Value: 0.8,
			For: 5 * time.Second, Severity: "warn",
		},
		{
			// Fleet admission queue burning: the merged-bucket p99 queue
			// wait holding above 500ms across the fleet. The histogram name
			// is the canonical wire form (dots underscored on ingest).
			Name: "fleet-queue-wait-p99-burn", Series: "fleet.transfer_queue_wait_seconds.p99",
			Kind: KindBurnRate, Op: OpGreater, Value: 0.5,
			For: 2 * time.Second, Window: 15 * time.Second, Severity: "warn",
		},
	}
}

// Tap registers fn to receive every subsequent transition synchronously
// from Eval; the returned function removes the tap.
func (e *Engine) Tap(fn func(Transition)) (remove func()) {
	if e == nil || fn == nil {
		return func() {}
	}
	e.mu.Lock()
	id := e.nextTap
	e.nextTap++
	e.taps[id] = fn
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		delete(e.taps, id)
		e.mu.Unlock()
	}
}

// Alerts returns the live state of every rule.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, len(e.alerts))
	for i, a := range e.alerts {
		out[i] = Alert{Rule: a.rule, State: a.state, Value: a.value, Since: a.since, Fires: a.fires}
	}
	return out
}

// Active returns the alerts currently firing.
func (e *Engine) Active() []Alert {
	var out []Alert
	for _, a := range e.Alerts() {
		if a.State == StateFiring {
			out = append(out, a)
		}
	}
	return out
}

// Eval runs one evaluation pass at the given time. It is driven by the
// recorder's sampling loop in production and called directly with
// synthetic clocks in tests, which is what makes hysteresis testable
// without sleeping.
func (e *Engine) Eval(now time.Time) {
	if e == nil {
		return
	}
	var fired []Transition
	e.mu.Lock()
	for _, a := range e.alerts {
		value, ok := e.measure(a.rule, now)
		a.value = value
		condition := ok && compare(value, a.rule.Op, a.rule.Value)
		switch a.state {
		case StateInactive:
			if condition {
				a.state, a.since = StatePending, now
			}
		case StatePending:
			if !condition {
				a.state, a.since = StateInactive, now
			}
		case StateFiring:
			if condition {
				a.clearSince = time.Time{} // flap: the clear streak resets
			} else {
				if a.clearSince.IsZero() {
					a.clearSince = now
				}
				if now.Sub(a.clearSince) >= a.rule.For {
					a.state, a.since, a.clearSince = StateInactive, now, time.Time{}
					fired = append(fired, Transition{
						Rule: a.rule.Name, Series: a.rule.Series,
						From: StateFiring, To: StateInactive,
						At: now, Value: value, Severity: a.rule.Severity,
					})
				}
			}
		}
		// Promote in the same pass so For == 0 fires immediately.
		if a.state == StatePending && condition && now.Sub(a.since) >= a.rule.For {
			a.state, a.since, a.clearSince = StateFiring, now, time.Time{}
			a.fires++
			fired = append(fired, Transition{
				Rule: a.rule.Name, Series: a.rule.Series,
				From: StatePending, To: StateFiring,
				At: now, Value: value, Severity: a.rule.Severity,
			})
		}
	}
	active := 0
	for _, a := range e.alerts {
		if a.state == StateFiring {
			active++
		}
	}
	var taps []func(Transition)
	if len(fired) > 0 && len(e.taps) > 0 {
		taps = make([]func(Transition), 0, len(e.taps))
		for _, fn := range e.taps {
			taps = append(taps, fn)
		}
	}
	e.mu.Unlock()

	reg := e.o.Registry()
	reg.Gauge("obs.alerts_active").Set(int64(active))
	for _, tr := range fired {
		typ := eventlog.AlertFiring
		if tr.To == StateInactive {
			typ = eventlog.AlertResolved
		} else {
			reg.Counter("obs.alerts_fired_total").Inc()
		}
		e.o.EventLog().Append(typ, "component", "tsdb",
			"alert", tr.Rule, "series", tr.Series, "severity", tr.Severity,
			"value", fmt.Sprintf("%g", tr.Value))
		for _, fn := range taps {
			fn(tr)
		}
	}
}

// measure turns a rule's series into its test value at now; ok is false
// when the series has no usable points yet.
func (e *Engine) measure(r Rule, now time.Time) (float64, bool) {
	if e.rec == nil {
		return 0, false
	}
	switch r.Kind {
	case KindRateOfChange:
		pts := e.rec.Query(r.Series, now.Add(-r.Window), 0)
		if len(pts) < 2 {
			return 0, false
		}
		first, last := pts[0], pts[len(pts)-1]
		dt := last.T.Sub(first.T).Seconds()
		if dt <= 0 {
			return 0, false
		}
		return (last.V - first.V) / dt, true
	case KindBurnRate:
		pts := e.rec.Query(r.Series, now.Add(-r.Window), 0)
		if len(pts) == 0 {
			return 0, false
		}
		sum := 0.0
		for _, p := range pts {
			sum += p.V
		}
		return sum / float64(len(pts)), true
	default: // KindThreshold
		p, ok := e.rec.Latest(r.Series)
		if !ok {
			return 0, false
		}
		return p.V, true
	}
}

func compare(v float64, op Op, threshold float64) bool {
	if op == OpLess {
		return v < threshold
	}
	return v > threshold
}
