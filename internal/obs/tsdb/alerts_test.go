package tsdb

import (
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
)

// step advances the scenario one virtual second: observe v on the rule's
// series, then evaluate.
func stepEval(e *Engine, r *Recorder, series string, at time.Time, v float64) {
	r.Observe(series, at, v)
	e.Eval(at)
}

func stateOf(t *testing.T, e *Engine, rule string) State {
	t.Helper()
	for _, a := range e.Alerts() {
		if a.Rule.Name == rule {
			return a.State
		}
	}
	t.Fatalf("rule %q not found", rule)
	return ""
}

func TestThresholdHysteresisAndFlapSuppression(t *testing.T) {
	rec := New(Options{})
	o := obs.Nop()
	rule := Rule{Name: "hot", Series: "temp", Kind: KindThreshold,
		Op: OpGreater, Value: 10, For: 3 * time.Second}
	e := NewEngine(rec, o, []Rule{rule})

	var transitions []Transition
	e.Tap(func(tr Transition) { transitions = append(transitions, tr) })

	at := func(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

	// A 2s blip shorter than For must never fire (pending → inactive).
	stepEval(e, rec, "temp", at(0), 50)
	stepEval(e, rec, "temp", at(1), 50)
	stepEval(e, rec, "temp", at(2), 5)
	if got := stateOf(t, e, "hot"); got != StateInactive {
		t.Fatalf("after short blip: state = %s, want inactive", got)
	}
	if len(transitions) != 0 {
		t.Fatalf("short blip produced transitions: %v", transitions)
	}

	// Held for For: pending at t=3, fires at t=6 (3s held).
	for sec := 3; sec <= 6; sec++ {
		stepEval(e, rec, "temp", at(sec), 50)
	}
	if got := stateOf(t, e, "hot"); got != StateFiring {
		t.Fatalf("after held breach: state = %s, want firing", got)
	}
	if len(transitions) != 1 || transitions[0].To != StateFiring {
		t.Fatalf("transitions = %v, want one firing", transitions)
	}

	// Flapping while firing: brief clears interleaved with re-breaches
	// reset the clear streak — the alert must stay firing (no resolve
	// storm).
	stepEval(e, rec, "temp", at(7), 5)
	stepEval(e, rec, "temp", at(8), 50) // clear streak resets here
	stepEval(e, rec, "temp", at(9), 5)
	stepEval(e, rec, "temp", at(10), 50)
	if got := stateOf(t, e, "hot"); got != StateFiring {
		t.Fatalf("during flapping: state = %s, want still firing", got)
	}
	if len(transitions) != 1 {
		t.Fatalf("flapping produced extra transitions: %v", transitions)
	}

	// Clear held for For: resolves at t=14 (clear since t=11).
	for sec := 11; sec <= 14; sec++ {
		stepEval(e, rec, "temp", at(sec), 5)
	}
	if got := stateOf(t, e, "hot"); got != StateInactive {
		t.Fatalf("after held clear: state = %s, want inactive", got)
	}
	if len(transitions) != 2 || transitions[1].To != StateInactive {
		t.Fatalf("transitions = %v, want firing then resolved", transitions)
	}

	// Metrics and events mirror the lifecycle.
	if v := o.Registry().Counter("obs.alerts_fired_total").Value(); v != 1 {
		t.Errorf("obs.alerts_fired_total = %d, want 1", v)
	}
	if v := o.Registry().Gauge("obs.alerts_active").Value(); v != 0 {
		t.Errorf("obs.alerts_active = %d, want 0 after resolve", v)
	}
	var types []string
	for _, ev := range o.EventLog().Events() {
		types = append(types, ev.Type)
	}
	if len(types) != 2 || types[0] != eventlog.AlertFiring || types[1] != eventlog.AlertResolved {
		t.Errorf("event types = %v, want [alert.firing alert.resolved]", types)
	}
}

func TestForZeroFiresImmediately(t *testing.T) {
	rec := New(Options{})
	e := NewEngine(rec, obs.Nop(), []Rule{{
		Name: "instant", Series: "x", Kind: KindThreshold, Op: OpGreater, Value: 1,
	}})
	stepEval(e, rec, "x", t0, 5)
	if got := stateOf(t, e, "instant"); got != StateFiring {
		t.Fatalf("For=0 state = %s, want firing on first tick", got)
	}
}

func TestRateOfChangeRule(t *testing.T) {
	rec := New(Options{})
	e := NewEngine(rec, obs.Nop(), []Rule{{
		Name: "collapse", Series: "bytes.rate", Kind: KindRateOfChange,
		Op: OpLess, Value: -100, Window: 10 * time.Second,
	}})
	// Rising series: slope positive, no fire.
	stepEval(e, rec, "bytes.rate", t0, 1000)
	stepEval(e, rec, "bytes.rate", t0.Add(time.Second), 2000)
	if got := stateOf(t, e, "collapse"); got != StateInactive {
		t.Fatalf("rising slope state = %s, want inactive", got)
	}
	// Collapse: 2000 → 0 over 2s is -1000/s < -100.
	stepEval(e, rec, "bytes.rate", t0.Add(2*time.Second), 500)
	stepEval(e, rec, "bytes.rate", t0.Add(3*time.Second), 0)
	if got := stateOf(t, e, "collapse"); got != StateFiring {
		t.Fatalf("collapsing slope state = %s, want firing", got)
	}
}

// TestQueueWaitBurnRateFiresAndResolves is the fault-injection test the
// issue requires: drive the real transfer.queue_wait_seconds histogram
// through the sampler the way a saturated admission queue would, and
// assert the stock rule fires — visible in the event log, /alerts
// (Active), and obs.alerts_fired_total — then resolves once the
// starvation stops.
func TestQueueWaitBurnRateFiresAndResolves(t *testing.T) {
	rec := New(Options{})
	o := obs.Nop()
	e := NewEngine(rec, o, DefaultRules())
	const ruleName = "transfer-queue-wait-p99-burn"

	reg := obs.NewRegistry()
	h := reg.Histogram("transfer.queue_wait_seconds",
		[]float64{0.001, 0.01, 0.1, 0.5, 1, 5, 30})

	at := func(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }
	tick := func(sec int) {
		rec.SampleRegistry(reg, at(sec))
		e.Eval(at(sec))
	}

	tick(0) // baseline sampling pass

	// Fault injection: admission-control starvation — every second a batch
	// of transfers reports multi-second queue waits, pushing the windowed
	// p99 far above the 500ms objective.
	fired := false
	for sec := 1; sec <= 10; sec++ {
		for i := 0; i < 8; i++ {
			h.Observe(2.0) // 2s queue wait
		}
		tick(sec)
		if stateOf(t, e, ruleName) == StateFiring {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatalf("queue-wait burn-rate rule never fired; alerts: %+v", e.Alerts())
	}
	if active := e.Active(); len(active) != 1 || active[0].Rule.Name != ruleName {
		t.Fatalf("Active() = %+v, want the queue-wait rule firing", active)
	}
	if v := o.Registry().Counter("obs.alerts_fired_total").Value(); v != 1 {
		t.Fatalf("obs.alerts_fired_total = %d, want 1", v)
	}
	if v := o.Registry().Gauge("obs.alerts_active").Value(); v != 1 {
		t.Fatalf("obs.alerts_active = %d, want 1", v)
	}
	foundFiring := false
	for _, ev := range o.EventLog().Events() {
		if ev.Type == eventlog.AlertFiring && ev.Fields["alert"] == ruleName {
			foundFiring = true
			if ev.Fields["series"] != "transfer.queue_wait_seconds.p99" {
				t.Errorf("firing event series = %q", ev.Fields["series"])
			}
		}
	}
	if !foundFiring {
		t.Fatalf("no alert.firing event in the event log: %v", o.EventLog().Events())
	}

	// Starvation ends: no new observations, so the windowed p99 drops to
	// the 0 sentinel each pass, the 15s window average burns down below
	// 0.5, and after the 2s clear hysteresis the alert resolves.
	resolved := false
	for sec := 11; sec <= 60; sec++ {
		tick(sec)
		if stateOf(t, e, ruleName) == StateInactive {
			resolved = true
			break
		}
	}
	if !resolved {
		t.Fatalf("alert never resolved after starvation stopped; alerts: %+v", e.Alerts())
	}
	if v := o.Registry().Gauge("obs.alerts_active").Value(); v != 0 {
		t.Fatalf("obs.alerts_active = %d after resolve, want 0", v)
	}
	foundResolved := false
	for _, ev := range o.EventLog().Events() {
		if ev.Type == eventlog.AlertResolved && ev.Fields["alert"] == ruleName {
			foundResolved = true
		}
	}
	if !foundResolved {
		t.Fatal("no alert.resolved event in the event log")
	}
	// Firing counter is monotone: resolve must not decrement it.
	if v := o.Registry().Counter("obs.alerts_fired_total").Value(); v != 1 {
		t.Fatalf("obs.alerts_fired_total = %d after resolve, want 1", v)
	}
}

func TestNilEngineAndRecorderSafe(t *testing.T) {
	var e *Engine
	e.Eval(t0) // must not panic
	if e.Active() != nil || e.Alerts() != nil {
		t.Fatal("nil engine returned alerts")
	}
	e2 := NewEngine(nil, nil, []Rule{{Name: "r", Series: "s", Kind: KindThreshold, Op: OpGreater}})
	e2.Eval(t0) // nil recorder and nil obs: evaluates to not-ok, no panic
	if got := stateOf(t, e2, "r"); got != StateInactive {
		t.Fatalf("disconnected engine state = %s, want inactive", got)
	}
}
