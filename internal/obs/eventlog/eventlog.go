// Package eventlog is a bounded in-memory ring of structured lifecycle
// and audit events: session open/close, authentication success/failure
// (with the subject DN), transfer start/complete/retry, restart-marker
// checkpoints, endpoint installs. It complements the metrics registry —
// metrics answer "how many / how fast", the event log answers "what
// happened, in order, to whom".
//
// The ring is fixed-capacity: a long-running daemon keeps the most recent
// events and discards the oldest, so memory stays bounded no matter the
// traffic. Subscriber taps receive every appended event synchronously,
// which gives tests a deterministic hook without polling.
//
// Like the rest of internal/obs, a nil *Log is valid everywhere: all
// methods degrade to no-ops.
package eventlog

import (
	"fmt"
	"sync"
	"time"
)

// Common event types. Components qualify them with a "component" field
// rather than inventing per-component type names, so /debug/events?type=
// filtering works uniformly across the daemons.
const (
	SessionOpen      = "session.open"
	SessionClose     = "session.close"
	AuthSuccess      = "auth.success"
	AuthFailure      = "auth.failure"
	TransferStart    = "transfer.start"
	TransferComplete = "transfer.complete"
	TransferAbort    = "transfer.abort"
	TransferRetry    = "transfer.retry"
	Checkpoint       = "transfer.checkpoint"
	// TransferWire is the scheduler's per-attempt wire-evidence record:
	// retransmit totals, worst inter-stream imbalance, and stall-abort
	// count aggregated from the stream-telemetry plane for one attempt.
	TransferWire    = "transfer.wire"
	TaskStart       = "task.start"
	TaskComplete    = "task.complete"
	EndpointInstall = "endpoint.install"
	// AlertFiring/AlertResolved record SLO alert transitions from the
	// tsdb alert engine, so firings live in the same audit stream as the
	// lifecycle events that explain them.
	AlertFiring   = "alert.firing"
	AlertResolved = "alert.resolved"
	// StreamStalled/StreamRecovered record the stream-stall watchdog's
	// transitions (internal/obs/streamstats): a data stream with no
	// progress past the stall window, and its later recovery (renewed
	// progress, or the transfer ending).
	StreamStalled   = "stream.stalled"
	StreamRecovered = "stream.recovered"
)

// Event is one recorded occurrence. Seq increases monotonically per log
// and never resets, so a scraper can detect both gaps (ring overflow) and
// its own resume point.
type Event struct {
	Seq    int64             `json:"seq"`
	Time   time.Time         `json:"time"`
	Type   string            `json:"type"`
	Fields map[string]string `json:"fields,omitempty"`
}

// Log is a concurrency-safe bounded event ring with subscriber taps.
type Log struct {
	mu   sync.Mutex
	cap  int
	seq  int64
	buf  []Event
	head int // index of the oldest retained event
	n    int // number of retained events

	taps    map[int]func(Event)
	nextTap int
}

// DefaultCapacity is the ring size New uses for capacity <= 0.
const DefaultCapacity = 1024

// New returns an empty log retaining at most capacity events.
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{cap: capacity, buf: make([]Event, capacity), taps: make(map[int]func(Event))}
}

// Append records an event of the given type; kv are key/value pairs
// (values are rendered with fmt.Sprint, a trailing odd key is dropped).
// The recorded event is returned.
func (l *Log) Append(typ string, kv ...any) Event {
	if l == nil {
		return Event{}
	}
	fields := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		fields[fmt.Sprint(kv[i])] = fmt.Sprint(kv[i+1])
	}
	l.mu.Lock()
	l.seq++
	ev := Event{Seq: l.seq, Time: time.Now(), Type: typ, Fields: fields}
	if l.n < l.cap {
		l.buf[(l.head+l.n)%l.cap] = ev
		l.n++
	} else {
		l.buf[l.head] = ev
		l.head = (l.head + 1) % l.cap
	}
	var taps []func(Event)
	if len(l.taps) > 0 {
		taps = make([]func(Event), 0, len(l.taps))
		for _, fn := range l.taps {
			taps = append(taps, fn)
		}
	}
	l.mu.Unlock()
	for _, fn := range taps {
		fn(ev)
	}
	return ev
}

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.head+i)%l.cap]
	}
	return out
}

// Last returns at most n of the most recent events, oldest first.
func (l *Log) Last(n int) []Event {
	evs := l.Events()
	if n >= 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Seq returns the sequence number of the most recent event (0 when none
// have been appended).
func (l *Log) Seq() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Tap registers fn to be called synchronously with every subsequent
// event; the returned function removes the tap. Taps are the test hook:
// subscribe, drive the system, assert on what arrived.
func (l *Log) Tap(fn func(Event)) (remove func()) {
	if l == nil || fn == nil {
		return func() {}
	}
	l.mu.Lock()
	id := l.nextTap
	l.nextTap++
	l.taps[id] = fn
	l.mu.Unlock()
	return func() {
		l.mu.Lock()
		delete(l.taps, id)
		l.mu.Unlock()
	}
}
