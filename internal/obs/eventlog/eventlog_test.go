package eventlog

import (
	"fmt"
	"sync"
	"testing"
)

func TestRingBoundsAndOrder(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Append(TransferStart, "i", i)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest-first, the last 4 of 10, with monotone Seq.
	for i, ev := range evs {
		if want := fmt.Sprint(6 + i); ev.Fields["i"] != want {
			t.Errorf("event %d: field i = %q, want %q", i, ev.Fields["i"], want)
		}
		if ev.Seq != int64(7+i) {
			t.Errorf("event %d: seq = %d, want %d", i, ev.Seq, 7+i)
		}
	}
	if l.Seq() != 10 {
		t.Errorf("Seq() = %d, want 10 (overflow must not reset numbering)", l.Seq())
	}
	if got := l.Last(2); len(got) != 2 || got[1].Seq != 10 {
		t.Errorf("Last(2) = %+v, want the two newest", got)
	}
}

func TestTapDeliversAndRemoves(t *testing.T) {
	l := New(8)
	var got []Event
	remove := l.Tap(func(ev Event) { got = append(got, ev) })
	l.Append(AuthSuccess, "dn", "/O=Grid/CN=alice")
	remove()
	l.Append(AuthFailure, "dn", "/O=Grid/CN=mallory")
	if len(got) != 1 {
		t.Fatalf("tap saw %d events, want 1", len(got))
	}
	if got[0].Type != AuthSuccess || got[0].Fields["dn"] != "/O=Grid/CN=alice" {
		t.Errorf("tap event = %+v", got[0])
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

// TestConcurrentAppend is the -race proof: many writers, concurrent
// snapshot readers and a tap, then exact counts.
func TestConcurrentAppend(t *testing.T) {
	const (
		workers = 8
		rounds  = 500
	)
	l := New(workers * rounds)
	var tapped sync.Map
	var tapCount sync.WaitGroup
	tapCount.Add(workers * rounds)
	l.Tap(func(ev Event) {
		tapped.Store(ev.Seq, true)
		tapCount.Done()
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l.Append(SessionOpen, "worker", w, "i", i)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Events()
				l.Last(10)
				l.Len()
			}
		}()
	}
	wg.Wait()
	tapCount.Wait()
	if l.Len() != workers*rounds {
		t.Fatalf("Len = %d, want %d", l.Len(), workers*rounds)
	}
	for seq := int64(1); seq <= workers*rounds; seq++ {
		if _, ok := tapped.Load(seq); !ok {
			t.Fatalf("tap missed seq %d", seq)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var l *Log
	l.Append(SessionOpen, "k", "v")
	if l.Events() != nil || l.Len() != 0 || l.Seq() != 0 {
		t.Error("nil log should be empty")
	}
	l.Tap(func(Event) {})()
	if got := l.Last(3); got != nil {
		t.Errorf("nil log Last = %v", got)
	}
}
