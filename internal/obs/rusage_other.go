//go:build !unix

package obs

// processCPUSeconds has no portable implementation off unix; the
// process.cpu_seconds_total counter simply stays at zero there.
func processCPUSeconds() float64 { return 0 }
