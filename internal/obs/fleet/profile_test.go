package fleet_test

// Tests for the federated continuous-profiling plane: the regression
// alert's full fault-injection lifecycle (idle baseline → allocation
// burst → firing + diagnostic bundle with the profile window → idle →
// resolved), the bundle's capture → disk → /fleet/bundles round trip
// preserving the window and top-regressed frames, and the fleet-wide
// hot-function merge over pushed per-instance summaries.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/admin"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
	"gridftp.dev/instant/internal/obs/fleet"
	"gridftp.dev/instant/internal/obs/profile"
	"gridftp.dev/instant/internal/obs/tsdb"
)

// profileRules extracts the continuous-profiling rules from the default
// daemon rule set — asserting along the way that they are, in fact,
// installed by default.
func profileRules(t *testing.T) []tsdb.Rule {
	t.Helper()
	var out []tsdb.Rule
	for _, r := range tsdb.DefaultRules() {
		if strings.HasPrefix(r.Name, "profile-") {
			out = append(out, r)
		}
	}
	if len(out) < 2 {
		t.Fatalf("DefaultRules carries %d profile-* rules, want >= 2", len(out))
	}
	return out
}

//go:noinline
func burnAllocations(n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, make([]byte, 1<<20))
	}
	return out
}

func TestProfileRegressionAlertLifecycle(t *testing.T) {
	clk := &fleetClock{now: time.Unix(1_700_000_000, 0)}
	o := obs.Nop()
	prof := profile.New(profile.Options{
		Interval:    10 * time.Second,
		CPUDuration: -1, // heap attribution only: keeps the test fast and race-clean
		TopN:        10,
		Obs:         o,
		Now:         func() time.Time { return clk.Now() },
	})
	o.Profile = prof

	svc := fleet.New(fleet.Options{
		Obs:    o,
		Rules:  profileRules(t),
		Bundle: fleet.BundleOptions{Dir: t.TempDir(), ProfileDuration: time.Millisecond},
		Now:    clk.Now,
	})
	// The profiler's obs.profile.* series land in the fleet recorder the
	// alert rules watch.
	o.Series = svc.Recorder()

	capture := func() obs.ProfileSummary {
		t.Helper()
		clk.Advance(10 * time.Second)
		sum, err := prof.CaptureOnce()
		if err != nil {
			t.Fatalf("capture: %v", err)
		}
		return sum
	}
	evalUntil := func(rule string, want tsdb.State, ticks int) {
		t.Helper()
		for i := 0; i < ticks; i++ {
			svc.Tick(clk.Advance(time.Second))
			if alertState(svc.Engine(), rule) == want {
				return
			}
		}
		t.Fatalf("alert %s never reached %s (state %s)", rule, want, alertState(svc.Engine(), rule))
	}

	// Baseline + two idle windows establish a small steady alloc rate.
	capture()
	capture()
	idle := capture()
	if idle.AllocRegression > 3 {
		t.Fatalf("idle window regression ratio %v, want modest", idle.AllocRegression)
	}
	svc.Tick(clk.Advance(time.Second))
	if got := alertState(svc.Engine(), "profile-alloc-regression"); got != tsdb.StateInactive {
		t.Fatalf("alert %s before fault, want inactive", got)
	}

	// Fault injection: a 96 MiB allocation burst inside one window. The
	// heap profile publishes allocations at GC boundaries, so force two
	// cycles to make the burst visible to the capture deterministically.
	sink := burnAllocations(96)
	runtime.GC()
	runtime.GC()
	burst := capture()
	runtime.KeepAlive(sink)
	if burst.AllocRegression <= 3 {
		t.Fatalf("burst window regression ratio %v, want > 3", burst.AllocRegression)
	}
	if len(burst.TopRegressed) == 0 {
		t.Fatal("burst window has no top-regressed frames")
	}

	// The ratio point persists in the recorder; 15s of For plus margin.
	evalUntil("profile-alloc-regression", tsdb.StateFiring, 30)

	// Firing triggered an async bundle capture; wait for it on real time.
	var bundles []fleet.BundleMeta
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if bundles = svc.Bundler().Bundles(); len(bundles) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(bundles) == 0 {
		t.Fatal("no diagnostic bundle captured for the firing regression alert")
	}
	meta := bundles[len(bundles)-1]
	if meta.Rule != "profile-alloc-regression" {
		t.Fatalf("bundle rule %q, want profile-alloc-regression", meta.Rule)
	}
	if meta.Profile == nil {
		t.Fatal("bundle meta carries no continuous-profile window")
	}
	if meta.Profile.Window.ID != burst.Window.ID {
		t.Fatalf("bundle profile window %d, want burst window %d", meta.Profile.Window.ID, burst.Window.ID)
	}
	if len(meta.Profile.TopRegressed) == 0 {
		t.Fatal("bundle profile window has no top-regressed frames")
	}

	// Recovery: idle windows drive the ratio back down and the alert
	// resolves after the clear streak outlasts For.
	capture()
	evalUntil("profile-alloc-regression", tsdb.StateInactive, 30)

	fired, resolved := false, false
	for _, ev := range o.EventLog().Events() {
		if ev.Fields["alert"] != "profile-alloc-regression" {
			continue
		}
		switch ev.Type {
		case eventlog.AlertFiring:
			fired = true
		case eventlog.AlertResolved:
			resolved = true
		}
	}
	if !fired || !resolved {
		t.Fatalf("event log: firing=%v resolved=%v, want both", fired, resolved)
	}
}

// TestBundleProfileRoundTrip asserts the continuous-profile window and
// its top-regressed frames survive capture → disk → /fleet/bundles.
func TestBundleProfileRoundTrip(t *testing.T) {
	clk := &fleetClock{now: time.Unix(1_700_000_000, 0)}
	o := obs.Nop()
	prof := profile.New(profile.Options{
		Interval: 10 * time.Second, CPUDuration: -1, Obs: o,
		Now: func() time.Time { return clk.Now() },
	})
	o.Profile = prof
	svc := fleet.New(fleet.Options{
		Obs: o, Rules: profileRules(t),
		Bundle: fleet.BundleOptions{Dir: t.TempDir(), ProfileDuration: time.Millisecond},
		Now:    clk.Now,
	})

	clk.Advance(10 * time.Second)
	prof.CaptureOnce() // baseline
	clk.Advance(10 * time.Second)
	prof.CaptureOnce() // quiet window
	sink := burnAllocations(32)
	runtime.GC() // publish the burst to the heap profile (flushed at GC)
	runtime.GC()
	clk.Advance(10 * time.Second)
	sum, err := prof.CaptureOnce()
	runtime.KeepAlive(sink)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if len(sum.TopRegressed) == 0 {
		t.Fatal("burst window has no regressed frames to round-trip")
	}

	// Synchronous capture, as the engine tap would run it.
	name, err := svc.Bundler().Capture(tsdb.Transition{
		Rule: "profile-alloc-regression", Series: "obs.profile.alloc.regression_ratio",
		To: tsdb.StateFiring, At: clk.Now(), Value: sum.AllocRegression, Severity: "page",
	}, 1)
	if err != nil {
		t.Fatalf("bundle capture: %v", err)
	}

	// Serve the bundle plane over real HTTP through the admin mount.
	adm := admin.New(o)
	adm.SetFleet(svc.Handler())
	ts := httptest.NewServer(adm.Handler())
	defer ts.Close()

	var listing struct {
		Bundles []fleet.BundleMeta `json:"bundles"`
	}
	getJSON(t, ts.Client(), ts.URL+"/fleet/bundles", &listing)
	if len(listing.Bundles) != 1 {
		t.Fatalf("bundle listing has %d entries, want 1", len(listing.Bundles))
	}
	m := listing.Bundles[0]
	if m.Name != name {
		t.Fatalf("listed bundle %q, want %q", m.Name, name)
	}
	if m.Profile == nil {
		t.Fatal("profile window lost on the disk round trip")
	}
	if m.Profile.Window.ID != sum.Window.ID {
		t.Fatalf("round-tripped window id %d, want %d", m.Profile.Window.ID, sum.Window.ID)
	}
	if len(m.Profile.TopRegressed) != len(sum.TopRegressed) ||
		m.Profile.TopRegressed[0].Func != sum.TopRegressed[0].Func ||
		m.Profile.TopRegressed[0].Delta != sum.TopRegressed[0].Delta {
		t.Fatalf("top-regressed frames mutated in transit:\n  got  %+v\n  want %+v",
			m.Profile.TopRegressed, sum.TopRegressed)
	}
	found := false
	for _, f := range m.Files {
		if f == "profile.json" {
			found = true
		}
	}
	if !found {
		t.Fatalf("profile.json missing from bundle files %v", m.Files)
	}

	// And the artifact itself is fetchable and parses.
	var artifact struct {
		Window *obs.ProfileSummary `json:"window"`
	}
	getJSON(t, ts.Client(), ts.URL+"/fleet/bundles/"+name+"/profile.json", &artifact)
	if artifact.Window == nil || artifact.Window.Window.ID != sum.Window.ID {
		t.Fatalf("profile.json artifact window = %+v, want id %d", artifact.Window, sum.Window.ID)
	}
}

// TestFleetProfileMerge pushes two instances' summaries over HTTP and
// asserts the fleet-wide ranking sums shared functions.
func TestFleetProfileMerge(t *testing.T) {
	clk := &fleetClock{now: time.Unix(1_700_000_000, 0)}
	o := obs.Nop()
	svc := fleet.New(fleet.Options{Obs: o, Now: clk.Now})
	adm := admin.New(o)
	adm.SetFleet(svc.Handler())
	ts := httptest.NewServer(adm.Handler())
	defer ts.Close()

	mk := func(id int, fn string, flat int64) obs.ProfileSummary {
		return obs.ProfileSummary{
			Window:           obs.ProfileWindow{ID: id, Start: clk.Now(), End: clk.Now()},
			AllocBytesPerSec: float64(flat),
			TopAlloc: []obs.ProfileFrame{
				{Func: fn, Flat: flat, Cum: flat},
				{Func: "shared.hot", Flat: 100, Cum: 100},
			},
			TopCPU:       []obs.ProfileFrame{{Func: "cpu." + fn, Flat: flat}},
			TopRegressed: []obs.ProfileFrame{{Func: fn, Flat: flat, Delta: flat / 2}},
		}
	}
	if err := fleet.PushProfile(ts.URL+"/v1/profile", "ep-a", mk(3, "a.alloc", 1000)); err != nil {
		t.Fatalf("push a: %v", err)
	}
	if err := fleet.PushProfile(ts.URL+"/v1/profile", "ep-b", mk(5, "b.alloc", 400)); err != nil {
		t.Fatalf("push b: %v", err)
	}

	var fp fleet.FleetProfile
	getJSON(t, ts.Client(), ts.URL+"/fleet/profile", &fp)
	if len(fp.Instances) != 2 {
		t.Fatalf("fleet profile lists %d instances, want 2", len(fp.Instances))
	}
	if got := fp.Instances["ep-a"].Window.ID; got != 3 {
		t.Fatalf("ep-a window id %d, want 3", got)
	}
	if len(fp.TopAlloc) == 0 || fp.TopAlloc[0].Func != "a.alloc" {
		t.Fatalf("fleet TopAlloc[0] = %+v, want a.alloc leading", fp.TopAlloc)
	}
	var shared *obs.ProfileFrame
	for i := range fp.TopAlloc {
		if fp.TopAlloc[i].Func == "shared.hot" {
			shared = &fp.TopAlloc[i]
		}
	}
	if shared == nil || shared.Flat != 200 {
		t.Fatalf("shared.hot not summed across instances: %+v", fp.TopAlloc)
	}
	if len(fp.TopRegressed) == 0 || fp.TopRegressed[0].Func != "a.alloc" {
		t.Fatalf("fleet TopRegressed = %+v, want a.alloc leading by delta", fp.TopRegressed)
	}

	// Staleness: advance past the horizon; rankings empty but the
	// per-instance summaries stay listed. Fresh struct: the ranking
	// fields are omitempty, so re-decoding into fp would keep old data.
	clk.Advance(time.Minute)
	var stale fleet.FleetProfile
	getJSON(t, ts.Client(), ts.URL+"/fleet/profile", &stale)
	if len(stale.TopAlloc) != 0 {
		t.Fatalf("stale instances still ranked: %+v", stale.TopAlloc)
	}
	if len(stale.Instances) != 2 {
		t.Fatalf("stale instances dropped from listing: %d", len(stale.Instances))
	}
}

func getJSON(t *testing.T, c *http.Client, url string, v any) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("GET %s: unmarshal: %v", url, err)
	}
}
