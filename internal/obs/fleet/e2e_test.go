package fleet_test

// End-to-end acceptance for the fleet observability plane: a dozen
// in-process "instances" (each with its own obs bundle, spans, and
// exemplar-carrying histograms) push their snapshots over real HTTP
// through the admin-mounted federation handler; the test then asserts
// the three tentpole behaviors — fleet quantiles computed from merged
// buckets match a pooled-observation reference exactly, a silent
// instance drives the stale alert through firing and back to resolved,
// and the firing transition captures a diagnostic bundle whose exemplar
// trace ids resolve against the span collector.

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gridftp.dev/instant/internal/admin"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/collector"
	"gridftp.dev/instant/internal/obs/fleet"
	"gridftp.dev/instant/internal/obs/tsdb"
)

// fleetClock is a mutex-guarded fake clock shared by the test and the
// service's HTTP handlers.
type fleetClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fleetClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fleetClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// instanceSim is one simulated fleet member: its own obs bundle, a
// completed transfer span per push round, and latency observations that
// carry the span's trace id as exemplar.
type instanceSim struct {
	name string
	o    *obs.Obs
	durs []float64
}

func (in *instanceSim) observe(col *collector.Collector) {
	sp := in.o.Tracer().StartSpan("gridftp.retr")
	sp.SetAttr("endpoint", in.name)
	traceID := sp.TraceID.String()
	h := in.o.Registry().Histogram("gridftp.server.transfer_seconds", obs.DefaultDurationBuckets)
	for _, d := range in.durs {
		h.ObserveExemplar(d, traceID)
	}
	in.o.Registry().Counter("gridftp.server.bytes_in").Add(int64(1 << 20))
	in.o.Registry().Gauge("transfer.active").Set(1)
	sp.End()
	col.Add(collector.FromInfos(in.name, in.o.Tracer().Spans())...)
}

func (in *instanceSim) push(t *testing.T, url string) {
	t.Helper()
	if err := fleet.Push(url+"/v1/metrics", in.name, in.o.Registry()); err != nil {
		t.Fatalf("push %s: %v", in.name, err)
	}
}

func alertState(eng *tsdb.Engine, rule string) tsdb.State {
	for _, a := range eng.Alerts() {
		if a.Rule.Name == rule {
			return a.State
		}
	}
	return tsdb.StateInactive
}

func TestFleetEndToEnd(t *testing.T) {
	clock := &fleetClock{now: time.Unix(1_700_000_000, 0)}
	col := collector.New()
	headObs := obs.Nop()

	svc := fleet.New(fleet.Options{
		StaleAfter: 3 * time.Second,
		Collector:  col,
		Obs:        headObs,
		Now:        clock.Now,
		Bundle: fleet.BundleOptions{
			Dir:             t.TempDir(),
			ProfileDuration: 20 * time.Millisecond,
		},
	})

	// The federation plane mounts into the admin server exactly as the
	// daemons wire it; the pushes below travel through real HTTP.
	adm := admin.New(headObs)
	adm.SetFleet(svc.Handler())
	ts := httptest.NewServer(adm.Handler())
	defer ts.Close()

	const n = 12
	instances := make([]*instanceSim, n)
	var pooled []float64
	for i := 0; i < n; i++ {
		// Distinct latency profiles per instance: instance i observes
		// durations spread across the default buckets, so the fleet
		// quantiles genuinely depend on cross-instance merging.
		durs := []float64{
			0.001 * float64(i+1),
			0.01 * float64(i+1),
			0.1 * float64(i+1),
			0.5,
		}
		pooled = append(pooled, durs...)
		instances[i] = &instanceSim{
			name: "ep-" + string(rune('a'+i)),
			o:    obs.Nop(),
			durs: durs,
		}
	}

	pushAll := func(skip int) {
		for i, in := range instances {
			if i == skip {
				continue
			}
			in.push(t, ts.URL)
		}
	}

	for _, in := range instances {
		in.observe(col)
	}
	pushAll(-1)
	svc.Tick(clock.Now())
	pushAll(-1)
	svc.Tick(clock.Advance(time.Second))

	insts := svc.Instances()
	if len(insts) != n {
		t.Fatalf("registry has %d instances, want %d", len(insts), n)
	}
	for _, in := range insts {
		if !in.Up || in.Pushes != 2 {
			t.Fatalf("instance %s: up=%v pushes=%d, want up with 2 pushes", in.Name, in.Up, in.Pushes)
		}
	}

	// Tentpole 1: the fleet histogram's quantiles must equal a histogram
	// that observed every instance's stream directly — same buckets, so
	// the bucket-wise merge is exact, not approximate.
	ref := obs.Nop()
	refHist := ref.Registry().Histogram("ref", obs.DefaultDurationBuckets)
	for _, d := range pooled {
		refHist.Observe(d)
	}
	var want obs.HistogramSnapshot
	for _, h := range ref.Registry().HistogramSnapshots() {
		if h.Name == "ref" {
			want = h
		}
	}
	var got obs.HistogramSnapshot
	for _, h := range svc.Aggregate().Histograms {
		if h.Name == "fleet.gridftp_server_transfer_seconds" {
			got = h
		}
	}
	if got.Count != want.Count {
		t.Fatalf("fleet histogram count %d, pooled reference %d", got.Count, want.Count)
	}
	for _, q := range []struct {
		name     string
		got, ref float64
	}{{"p50", got.P50, want.P50}, {"p90", got.P90, want.P90}, {"p99", got.P99, want.P99}} {
		if math.Abs(q.got-q.ref) > 1e-9 {
			t.Errorf("fleet %s = %v, pooled reference %v", q.name, q.got, q.ref)
		}
	}
	if len(got.Exemplars) == 0 {
		t.Fatal("fleet histogram lost its exemplars in the merge")
	}

	// The text rendering of the aggregate carries OpenMetrics exemplar
	// annotations a fleet dashboard can follow to the collector.
	resp, err := http.Get(ts.URL + "/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "fleet_gridftp_server_transfer_seconds_bucket") ||
		!strings.Contains(string(text), `# {trace_id="`) {
		t.Fatalf("/fleet/metrics missing merged histogram or exemplars:\n%.600s", text)
	}

	// Tentpole 2: silence one instance; the stale alert must walk
	// inactive → firing as the For window elapses, and the firing
	// transition must capture a diagnostic bundle.
	const quiet = 0
	firedAt := -1
	for tick := 0; tick < 12; tick++ {
		pushAll(quiet)
		svc.Tick(clock.Advance(time.Second))
		if alertState(svc.Engine(), "fleet-instance-stale") == tsdb.StateFiring {
			firedAt = tick
			break
		}
	}
	if firedAt < 0 {
		t.Fatalf("fleet-instance-stale never fired; alerts: %+v", svc.Engine().Alerts())
	}
	stale := 0
	for _, in := range svc.Instances() {
		if in.Stale {
			stale++
		}
	}
	if stale != 1 {
		t.Fatalf("%d stale instances while alert firing, want 1", stale)
	}

	// Tentpole 3: the bundle appears on disk (capture is asynchronous;
	// the profile alone takes ProfileDuration) with exemplar trace ids
	// that resolve in the collector.
	var bundles []fleet.BundleMeta
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if bundles = svc.Bundler().Bundles(); len(bundles) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(bundles) == 0 {
		t.Fatal("no diagnostic bundle captured after the stale alert fired")
	}
	meta := bundles[0]
	if meta.Rule != "fleet-instance-stale" {
		t.Errorf("bundle rule = %q, want fleet-instance-stale", meta.Rule)
	}
	if len(meta.ExemplarTraceIDs) == 0 {
		t.Fatal("bundle carries no exemplar trace ids")
	}
	tr := col.Stitch(meta.ExemplarTraceIDs[0])
	if tr == nil || len(tr.Spans) == 0 {
		t.Fatalf("exemplar trace %s does not resolve in the collector", meta.ExemplarTraceIDs[0])
	}
	found := false
	for _, f := range meta.Files {
		if f == "spans.json" {
			found = true
		}
	}
	if !found {
		t.Errorf("bundle files %v missing spans.json", meta.Files)
	}
	if resp, err := http.Get(ts.URL + "/fleet/bundles/" + meta.Name + "/meta.json"); err == nil {
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET bundle meta.json: %s", resp.Status)
		}
		resp.Body.Close()
	} else {
		t.Errorf("GET bundle meta.json: %v", err)
	}

	// Recovery: the instance pushes again and the alert resolves.
	resolved := false
	for tick := 0; tick < 6; tick++ {
		pushAll(-1)
		svc.Tick(clock.Advance(time.Second))
		if alertState(svc.Engine(), "fleet-instance-stale") == tsdb.StateInactive {
			resolved = true
			break
		}
	}
	if !resolved {
		t.Fatalf("fleet-instance-stale did not resolve after the instance returned; alerts: %+v",
			svc.Engine().Alerts())
	}
	for _, in := range svc.Instances() {
		if in.Stale {
			t.Fatalf("instance %s still stale after recovery", in.Name)
		}
	}
}
