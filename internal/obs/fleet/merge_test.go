package fleet

import (
	"math"
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/expfmt"
)

func histSnap(name string, bounds []float64, values []float64) obs.HistogramSnapshot {
	r := obs.NewRegistry()
	h := r.Histogram(name, bounds)
	for _, v := range values {
		h.Observe(v)
	}
	for _, s := range r.HistogramSnapshots() {
		if s.Name == name {
			return s
		}
	}
	return obs.HistogramSnapshot{}
}

func TestMergeMatchesPooledObservations(t *testing.T) {
	// Same bounds across instances: the merge must equal a histogram that
	// observed the pooled stream directly — counts, sum, and quantiles.
	bounds := obs.DefaultDurationBuckets
	a := []float64{0.002, 0.03, 0.2, 1.5}
	b := []float64{0.004, 0.07, 3, 8, 20}
	merged := MergeHistograms("h", histSnap("h", bounds, a), histSnap("h", bounds, b))
	pooled := histSnap("h", bounds, append(append([]float64(nil), a...), b...))

	if merged.Count != pooled.Count || math.Abs(merged.Sum-pooled.Sum) > 1e-9 {
		t.Fatalf("merged count/sum %d/%v, pooled %d/%v", merged.Count, merged.Sum, pooled.Count, pooled.Sum)
	}
	if len(merged.Counts) != len(pooled.Counts) {
		t.Fatalf("bounds diverged: %v vs %v", merged.Bounds, pooled.Bounds)
	}
	for i := range merged.Counts {
		if merged.Counts[i] != pooled.Counts[i] {
			t.Errorf("bucket %d: merged %d, pooled %d", i, merged.Counts[i], pooled.Counts[i])
		}
	}
	for _, q := range []struct{ m, p float64 }{{merged.P50, pooled.P50}, {merged.P90, pooled.P90}, {merged.P99, pooled.P99}} {
		if math.Abs(q.m-q.p) > 1e-9 {
			t.Errorf("quantile mismatch: merged %v, pooled %v", q.m, q.p)
		}
	}
}

func TestMergeMismatchedBounds(t *testing.T) {
	// Instances with different bucket layouts: the union must preserve
	// every input's own boundary so no count crosses a boundary it was
	// recorded under.
	a := histSnap("h", []float64{1, 10}, []float64{0.5, 5, 50})
	b := histSnap("h", []float64{2, 20}, []float64{1.5, 15, 150})
	m := MergeHistograms("h", a, b)

	wantBounds := []float64{1, 2, 10, 20, math.Inf(1)}
	if len(m.Bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", m.Bounds, wantBounds)
	}
	for i := range wantBounds {
		if m.Bounds[i] != wantBounds[i] {
			t.Fatalf("bounds = %v, want %v", m.Bounds, wantBounds)
		}
	}
	// Cumulative: ≤1: {0.5}; ≤2: +{1.5}; ≤10: +{5}; ≤20: +{15}; +Inf: +{50,150}.
	wantCounts := []int64{1, 2, 3, 4, 6}
	for i := range wantCounts {
		if m.Counts[i] != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", m.Counts, wantCounts)
		}
	}
	if m.Count != 6 {
		t.Errorf("count = %d, want 6", m.Count)
	}
}

func TestMergeEmptyHistograms(t *testing.T) {
	empty := obs.HistogramSnapshot{Name: "h"}
	loaded := histSnap("h", []float64{1}, []float64{0.5})

	m := MergeHistograms("h", empty, loaded, empty)
	if m.Count != 1 || len(m.Bounds) != 2 {
		t.Fatalf("empty+loaded merge: %+v", m)
	}

	m = MergeHistograms("h", empty, empty)
	if m.Count != 0 || len(m.Bounds) != 1 || !math.IsInf(m.Bounds[0], 1) {
		t.Fatalf("all-empty merge: %+v", m)
	}
	if m.P50 != 0 || m.P99 != 0 {
		t.Errorf("all-empty quantiles: %+v", m)
	}
}

func TestMergeTornExportRemonotonized(t *testing.T) {
	// Non-monotone cumulative counts (a torn concurrent export) must not
	// produce negative bucket deltas.
	torn := obs.HistogramSnapshot{
		Name:   "h",
		Bounds: []float64{1, 2, math.Inf(1)},
		Counts: []int64{5, 3, 7}, // dips at index 1
		Count:  7, Sum: 9,
	}
	m := MergeHistograms("h", torn)
	var prev int64 = -1
	for i, c := range m.Counts {
		if c < prev {
			t.Fatalf("merged counts not monotone at %d: %v", i, m.Counts)
		}
		prev = c
	}
	if m.Count != 7 {
		t.Errorf("count = %d, want 7 (re-monotonized total)", m.Count)
	}
}

func TestMergeKeepsNewestExemplar(t *testing.T) {
	early := time.Unix(1000, 0)
	late := time.Unix(2000, 0)
	a := obs.HistogramSnapshot{
		Name: "h", Bounds: []float64{1, math.Inf(1)}, Counts: []int64{1, 1},
		Exemplars: []obs.Exemplar{{TraceID: "aaaa", Value: 0.5, Time: early}, {}},
	}
	b := obs.HistogramSnapshot{
		Name: "h", Bounds: []float64{1, math.Inf(1)}, Counts: []int64{2, 3},
		Exemplars: []obs.Exemplar{{TraceID: "bbbb", Value: 0.7, Time: late}, {TraceID: "cccc", Value: 9}},
	}
	m := MergeHistograms("h", a, b)
	if m.Exemplars[0].TraceID != "bbbb" {
		t.Errorf("bucket 0 exemplar = %+v, want the newer bbbb", m.Exemplars[0])
	}
	// A timestampless exemplar still beats no exemplar at all.
	if m.Exemplars[1].TraceID != "cccc" {
		t.Errorf("bucket 1 exemplar = %+v, want cccc", m.Exemplars[1])
	}
}

func TestIngestCounterResetAccumulates(t *testing.T) {
	// An instance restart (new process.start_time_seconds, counters back
	// to zero) must not make fleet counters go backwards: prior epochs
	// fold into the base and the fleet sum stays monotone.
	now := time.Unix(10000, 0)
	s := New(Options{Obs: obs.Nop(), Now: func() time.Time { return now }})

	snap := func(start, bytes int64) expfmt.Snapshot {
		return expfmt.Snapshot{Metrics: []obs.Metric{
			{Name: "process.start_time_seconds", Kind: "gauge", Value: start},
			{Name: "gridftp.server.bytes_in", Kind: "counter", Value: bytes},
		}}
	}
	if err := s.Ingest("ep1", "", snap(100, 500), now); err != nil {
		t.Fatal(err)
	}
	s.Tick(now)
	now = now.Add(time.Second)
	// Restart: new start time, counter reset to 80.
	if err := s.Ingest("ep1", "", snap(200, 80), now); err != nil {
		t.Fatal(err)
	}
	s.Tick(now)

	agg := s.Aggregate()
	var got int64 = -1
	for _, m := range agg.Metrics {
		if m.Name == "fleet.gridftp_server_bytes_in" {
			got = m.Value
		}
	}
	if got != 580 {
		t.Fatalf("fleet counter after restart = %d, want 580 (500 folded + 80 new epoch)", got)
	}
	insts := s.Instances()
	if len(insts) != 1 || insts[0].Restarts != 1 {
		t.Fatalf("instances = %+v, want one with 1 restart", insts)
	}

	// The fleet rate derivation must see the monotone sum: 80 bytes over
	// 1s, never a negative clamped to zero-with-a-spike.
	pts := s.Recorder().Query("fleet.gridftp_server_bytes_in.rate", time.Time{}, 0)
	if len(pts) != 1 || math.Abs(pts[0].V-80) > 1e-9 {
		t.Fatalf("rate points = %+v, want one point at 80 B/s", pts)
	}
}

func TestIngestCounterDecreaseWithoutIdentity(t *testing.T) {
	// Exporters without process.start_time_seconds still get restart
	// detection from a counter running backwards.
	now := time.Unix(5000, 0)
	s := New(Options{Obs: obs.Nop(), Now: func() time.Time { return now }})
	snap := func(v int64) expfmt.Snapshot {
		return expfmt.Snapshot{Metrics: []obs.Metric{
			{Name: "transfer.bytes_total", Kind: "counter", Value: v},
		}}
	}
	s.Ingest("ep", "", snap(900), now)
	s.Ingest("ep", "", snap(40), now.Add(time.Second)) // went backwards
	s.Tick(now.Add(time.Second))
	for _, m := range s.Aggregate().Metrics {
		if m.Name == "fleet.transfer_bytes_total" && m.Value != 940 {
			t.Fatalf("fleet counter = %d, want 940", m.Value)
		}
	}
	if s.Instances()[0].Restarts != 1 {
		t.Fatalf("restart not detected from counter decrease")
	}
}

func TestOutlierRatio(t *testing.T) {
	cases := []struct {
		rates []float64
		want  float64
	}{
		{nil, 0},
		{[]float64{1, 2}, 0},            // too few for a median
		{[]float64{10, 10, 10}, 0},      // healthy
		{[]float64{0, 10, 10, 10}, 1},   // one dead instance
		{[]float64{8, 10, 10, 10}, 0.2}, // mild lag
		{[]float64{0, 0, 0}, 0},         // idle fleet: no outlier signal
		{[]float64{20, 10, 10, 10}, 0},  // min == median
	}
	for _, c := range cases {
		if got := outlierRatio(c.rates); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("outlierRatio(%v) = %v, want %v", c.rates, got, c.want)
		}
	}
}
