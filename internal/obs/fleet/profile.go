package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// This file federates the continuous-profiling plane: instances push
// their newest profile summary (POST /v1/profile, JSON) alongside the
// metric push, and the head merges the per-instance top-N tables into
// fleet-wide hot-function rankings at GET /fleet/profile — "what is the
// fleet as a whole burning CPU and allocation on", with the per-
// instance summaries preserved for drill-down. Merging top-N tables is
// approximate (each instance already truncated its tail) but that tail
// is exactly what a hot-function ranking doesn't need.

// maxProfilePush bounds one profile-summary push body.
const maxProfilePush = 4 << 20

// instanceProfile is one instance's pushed summary plus receipt time
// (staleness for profiles follows the same horizon as metric pushes).
type instanceProfile struct {
	summary obs.ProfileSummary
	seen    time.Time
}

// FleetProfile is the merged view served at /fleet/profile.
type FleetProfile struct {
	// Instances maps instance name to its newest pushed summary.
	Instances map[string]obs.ProfileSummary `json:"instances"`
	// TopCPU/TopAlloc/TopRegressed are the fleet-wide rankings: frames
	// summed across every fresh instance's table, sorted by flat value
	// (Delta for TopRegressed).
	TopCPU       []obs.ProfileFrame `json:"top_cpu,omitempty"`
	TopAlloc     []obs.ProfileFrame `json:"top_alloc,omitempty"`
	TopRegressed []obs.ProfileFrame `json:"top_regressed,omitempty"`
}

// IngestProfile stores an instance's newest profile summary. The
// instance registry cap applies: profiles from unknown instances are
// accepted (a profile push may land before the first metric push) but
// the combined name space stays bounded.
func (s *Service) IngestProfile(instance string, sum obs.ProfileSummary, now time.Time) error {
	if instance == "" {
		return fmt.Errorf("fleet: profile push without instance name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.profiles == nil {
		s.profiles = make(map[string]*instanceProfile)
	}
	if _, ok := s.profiles[instance]; !ok {
		if _, known := s.instances[instance]; !known && len(s.profiles) >= maxInstances {
			return fmt.Errorf("fleet: profile registry full (%d), rejecting %q", maxInstances, instance)
		}
	}
	s.profiles[instance] = &instanceProfile{summary: sum, seen: now}
	return nil
}

// Profile merges the fresh per-instance summaries into the fleet view.
// Summaries older than the staleness horizon drop out of the rankings
// but stay listed per instance (marked only by their window timestamps).
func (s *Service) Profile(topN int) FleetProfile {
	if topN <= 0 {
		topN = 10
	}
	now := s.opts.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := FleetProfile{Instances: make(map[string]obs.ProfileSummary, len(s.profiles))}
	var cpu, alloc, regressed []obs.ProfileFrame
	for name, ip := range s.profiles {
		out.Instances[name] = ip.summary
		if now.Sub(ip.seen) > s.opts.StaleAfter {
			continue
		}
		cpu = append(cpu, ip.summary.TopCPU...)
		alloc = append(alloc, ip.summary.TopAlloc...)
		regressed = append(regressed, ip.summary.TopRegressed...)
	}
	out.TopCPU = mergeFrames(cpu, topN, false)
	out.TopAlloc = mergeFrames(alloc, topN, false)
	out.TopRegressed = mergeFrames(regressed, topN, true)
	return out
}

// mergeFrames sums frames by function and returns the top n by flat
// value (byDelta ranks and sums on Delta instead, for regression
// tables).
func mergeFrames(frames []obs.ProfileFrame, n int, byDelta bool) []obs.ProfileFrame {
	if len(frames) == 0 {
		return nil
	}
	byFunc := make(map[string]*obs.ProfileFrame)
	for _, f := range frames {
		agg := byFunc[f.Func]
		if agg == nil {
			agg = &obs.ProfileFrame{Func: f.Func}
			byFunc[f.Func] = agg
		}
		agg.Flat += f.Flat
		agg.Cum += f.Cum
		agg.Delta += f.Delta
	}
	out := make([]obs.ProfileFrame, 0, len(byFunc))
	for _, f := range byFunc {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := out[i].Flat, out[j].Flat
		if byDelta {
			ki, kj = out[i].Delta, out[j].Delta
		}
		if ki != kj {
			return ki > kj
		}
		return out[i].Func < out[j].Func
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

func (s *Service) handleProfilePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	instance := r.Header.Get("X-Fleet-Instance")
	if instance == "" {
		instance = r.URL.Query().Get("instance")
	}
	if instance == "" {
		http.Error(w, "missing instance (X-Fleet-Instance header or ?instance=)", http.StatusBadRequest)
		return
	}
	var sum obs.ProfileSummary
	body := http.MaxBytesReader(w, r.Body, maxProfilePush)
	if err := json.NewDecoder(body).Decode(&sum); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.IngestProfile(instance, sum, s.opts.Now()); err != nil {
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleProfile(w http.ResponseWriter, r *http.Request) {
	topN := 10
	if v := r.URL.Query().Get("n"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &topN); err != nil || topN <= 0 {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
	}
	writeJSON(w, s.Profile(topN))
}

// PushProfile exports one profile summary to a fleet head's POST
// /v1/profile under the given instance name.
func PushProfile(url, instance string, sum obs.ProfileSummary) error {
	data, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Fleet-Instance", instance)
	resp, err := pushClient.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: profile push to %s: %w", url, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("fleet: profile push to %s: %s", url, resp.Status)
	}
	return nil
}
